module tinystm

go 1.24

// No requirements — deliberately. The stmlint analyzers under
// internal/analysis would normally build on golang.org/x/tools/go/analysis
// (pinned), but this repository is developed and built offline with no
// module proxy, so internal/analysis/framework re-implements the minimal
// Analyzer/Pass/Diagnostic surface on the standard library (go/ast,
// go/types, go/importer). If a network-enabled toolchain adopts x/tools
// later, the analyzers port mechanically: the framework mirrors its API.
