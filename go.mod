module tinystm

go 1.24
