GO ?= go

.PHONY: all build test lint lint-negative race bench

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs the exact script CI runs: gofmt, go vet, stmlint, and
# staticcheck when installed.
lint:
	./scripts/lint.sh

# lint-negative proves the stmlint gate rejects an injected violation.
lint-negative:
	./scripts/stmlint_negative.sh

race:
	$(GO) test -race -short ./internal/core/... ./internal/cm/... \
		./internal/tuning/... ./internal/kvstore/... ./internal/kvserver/... \
		./internal/kvproto/... ./internal/kvclient/... \
		./internal/mvcc/... ./internal/reclaim/... ./internal/wal/... \
		./internal/analysis/...

bench:
	$(GO) test -bench=. -benchtime=1x -count=1 -run '^$$' \
		./internal/microbench ./internal/core ./internal/tl2 \
		./internal/kvproto .
