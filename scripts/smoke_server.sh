#!/usr/bin/env bash
# smoke_server.sh — end-to-end service smoke: boot stmkvd with a fast
# tuning cadence, drive >= 10k operations of open-loop Zipf traffic with a
# mid-run phase shift through stmkv-loadgen, and assert that the live
# autotuner actually reconfigured the TM at least once (/tuning) and that
# the store served the traffic (/stats). CI runs this on every push; it is
# also runnable locally: ./scripts/smoke_server.sh [bindir]
set -euo pipefail

BIN="${1:-bin}"
ADDR="127.0.0.1:18080"
BASE="http://$ADDR"
LOG="$(mktemp)"

"$BIN/stmkvd" -addr "$ADDR" -period 200ms -samples 1 -geometry 2^8,0,1 >"$LOG" 2>&1 &
SRV=$!
trap 'kill $SRV 2>/dev/null || true; cat "$LOG"' EXIT

# Wait for the server to come up.
for i in $(seq 1 50); do
  if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 $SRV 2>/dev/null; then echo "stmkvd died at startup"; exit 1; fi
  sleep 0.1
done
curl -sf "$BASE/healthz" >/dev/null

# Open-loop load: 3000 req/s for 5s with a phase shift = 15k scheduled
# arrivals; -min-ops makes the generator itself fail below 10k completions.
"$BIN/stmkv-loadgen" -addr "$BASE" -rate 3000 -duration 5s -workers 16 \
  -keys 2048 -theta 0.9 -shift -min-ops 10000

# The autotuner must have moved the live geometry at least once.
TUNING="$(curl -sf "$BASE/tuning")"
STATS="$(curl -sf "$BASE/stats")"
python3 - "$TUNING" "$STATS" <<'PY'
import json, sys
tuning, stats = json.loads(sys.argv[1]), json.loads(sys.argv[2])
assert tuning["enabled"] and tuning["running"], "tuning runtime not running"
assert tuning["reconfigurations"] >= 1, f"no reconfiguration events: {tuning}"
assert stats["reconfigs"] >= 1, f"TM never reconfigured: {stats}"
assert stats["commits"] >= 10000, f"too few commits: {stats['commits']}"
assert len(tuning["events"]) >= 5, f"trace too short: {len(tuning['events'])} events"
print(f"smoke ok: {stats['commits']} commits, {stats['reconfigs']} reconfigs, "
      f"{len(tuning['events'])} tuning periods, final geometry {stats['params']}")
PY

kill $SRV
wait $SRV 2>/dev/null || true
trap - EXIT
