#!/usr/bin/env bash
# smoke_server.sh — end-to-end service smoke: boot stmkvd with a fast
# tuning cadence, drive >= 10k operations of open-loop Zipf traffic with a
# mid-run phase shift through stmkv-loadgen, and assert that the live
# autotuner actually reconfigured the TM at least once (/tuning) and that
# the store served the traffic (/stats). CI runs this on every push; it is
# also runnable locally: ./scripts/smoke_server.sh [bindir]
set -euo pipefail

BIN="${1:-bin}"
LOG="$(mktemp)"

# Ephemeral port: the daemon binds :0 and logs the concrete address, so
# parallel CI jobs (and local runs next to a real server) never collide.
"$BIN/stmkvd" -addr 127.0.0.1:0 -period 200ms -samples 1 -geometry 2^8,0,1 >"$LOG" 2>&1 &
SRV=$!
trap 'kill $SRV 2>/dev/null || true; cat "$LOG"' EXIT

ADDR=""
for i in $(seq 1 100); do
  ADDR="$(sed -n 's/^stmkvd: http listening on //p' "$LOG" | head -1)"
  if [ -n "$ADDR" ]; then break; fi
  if ! kill -0 $SRV 2>/dev/null; then echo "stmkvd died at startup"; exit 1; fi
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "server never logged its bound address"; exit 1; }
BASE="http://$ADDR"

# Wait for the server to come up.
for i in $(seq 1 50); do
  if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 $SRV 2>/dev/null; then echo "stmkvd died at startup"; exit 1; fi
  sleep 0.1
done
curl -sf "$BASE/healthz" >/dev/null

# Open-loop load: 3000 req/s for 5s with a phase shift = 15k scheduled
# arrivals; -min-ops makes the generator itself fail below 10k completions.
# The generator runs in the background so read-only snapshot traffic —
# full-table /scan and all-Get /batch — can be driven AGAINST the
# phase-shifting write load; those reads must finish with zero read-only
# aborts (the MVCC sidecar serves them wait-free).
"$BIN/stmkv-loadgen" -addr "$BASE" -rate 3000 -duration 5s -workers 16 \
  -keys 2048 -theta 0.9 -shift -min-ops 10000 &
GEN=$!

SCANS=0
BATCHES=0
for i in $(seq 1 40); do
  SCAN="$(curl -sf "$BASE/scan?limit=8")" || { echo "/scan failed"; exit 1; }
  case "$SCAN" in *'"snapshot":true'*) SCANS=$((SCANS+1));; esac
  BATCH="$(curl -sf -X POST "$BASE/batch" -d \
    '{"ops":[{"op":"get","key":1},{"op":"get","key":2},{"op":"get","key":3},{"op":"get","key":4}]}')" \
    || { echo "/batch failed"; exit 1; }
  case "$BATCH" in *'"results"'*) BATCHES=$((BATCHES+1));; esac
  sleep 0.1
done

# Scrape /metrics while the generator is still loading the server: the
# exposition must be well-formed text format with a live commit counter
# and request-latency bucket series (histograms recorded on the hot path,
# rendered under load).
METRICS="$(curl -sf "$BASE/metrics")" || { echo "/metrics failed"; exit 1; }
python3 - "$METRICS" <<'PY'
import sys
body = sys.argv[1]
commits = None
latency_buckets = 0
for line in body.splitlines():
    if not line or line.startswith("#"):
        continue
    series, _, value = line.rpartition(" ")
    assert series and value, f"malformed exposition line: {line!r}"
    float(value)  # every sample value must parse
    if series == "stm_commits_total":
        commits = float(value)
    if series.startswith("stmkvd_request_seconds_bucket{"):
        assert 'le="' in series, f"bucket series without le label: {line!r}"
        latency_buckets += 1
assert commits is not None and commits > 0, f"stm_commits_total missing or zero: {commits}"
assert latency_buckets > 0, "no stmkvd_request_seconds bucket series in exposition"
print(f"metrics ok mid-load: {int(commits)} commits, {latency_buckets} latency bucket series")
PY

wait $GEN

# The autotuner must have moved the live geometry at least once, and the
# snapshot reads driven above must have completed without a single
# read-only abort (only bounded snapshot-too-old retries would even be
# legal, and at this scale there must be none).
TUNING="$(curl -sf "$BASE/tuning")"
STATS="$(curl -sf "$BASE/stats")"
FINAL_SCAN="$(curl -sf "$BASE/scan?limit=4")"
python3 - "$TUNING" "$STATS" "$FINAL_SCAN" "$SCANS" "$BATCHES" <<'PY'
import json, sys
tuning, stats = json.loads(sys.argv[1]), json.loads(sys.argv[2])
scan, scans, batches = json.loads(sys.argv[3]), int(sys.argv[4]), int(sys.argv[5])
assert tuning["enabled"] and tuning["running"], "tuning runtime not running"
assert tuning["reconfigurations"] >= 1, f"no reconfiguration events: {tuning}"
assert stats["reconfigs"] >= 1, f"TM never reconfigured: {stats}"
assert stats["commits"] >= 10000, f"too few commits: {stats['commits']}"
assert len(tuning["events"]) >= 5, f"trace too short: {len(tuning['events'])} events"
lat_events = [e for e in tuning["events"] if e.get("lat_p50_ns", 0) > 0]
assert lat_events, "no tuning event carries request-latency quantiles"
assert all(e["lat_p99_ns"] >= e["lat_p50_ns"] for e in lat_events), "p99 below p50"
assert scans >= 30, f"only {scans} snapshot scans completed under load"
assert batches >= 30, f"only {batches} all-Get batches completed under load"
snap = stats["snapshots"]
assert snap["enabled"], f"snapshots not enabled: {snap}"
assert snap["aborts_snapshot_too_old"] == 0, f"snapshot reads aborted: {snap}"
assert snap["reads_live"] + snap["reads_sidecar"] > 0, f"no snapshot reads recorded: {snap}"
assert scan["keys"] >= 1000, f"final scan saw only {scan['keys']} keys"
print(f"smoke ok: {stats['commits']} commits, {stats['reconfigs']} reconfigs, "
      f"{len(tuning['events'])} tuning periods, final geometry {stats['params']}, "
      f"{scans} scans + {batches} ro-batches under load with 0 RO aborts "
      f"({snap['reads_live']} live + {snap['reads_sidecar']} sidecar snapshot reads)")
PY

kill $SRV
wait $SRV 2>/dev/null || true
trap - EXIT
