#!/usr/bin/env bash
# smoke_proto.sh — binary-protocol end-to-end smoke: boot stmkvd with the
# kvproto listener and the tuned admission gate, drive pipelined
# open-loop traffic through stmkv-loadgen -proto binary with a mid-run
# phase shift (calm read-heavy -> hot-key write-heavy), and assert that
# (a) the admission controller adapted the gate width at least once
# (/tuning), and (b) the binary listener served the whole run with zero
# protocol-level errors and zero malformed frames (/stats). CI runs this
# on every push; locally: ./scripts/smoke_proto.sh [bindir]
set -euo pipefail

BIN="${1:-bin}"
LOG="$(mktemp)"
GENLOG="$(mktemp)"

# Ephemeral ports on both surfaces; the concrete addresses are parsed
# from the daemon's log.
"$BIN/stmkvd" -addr 127.0.0.1:0 -proto-addr 127.0.0.1:0 \
  -admission 32 -period 150ms -samples 1 -geometry 2^16,0,1 >"$LOG" 2>&1 &
SRV=$!
trap 'kill $SRV 2>/dev/null || true; cat "$LOG"' EXIT

HTTP_ADDR=""
PROTO_ADDR=""
for i in $(seq 1 100); do
  HTTP_ADDR="$(sed -n 's/^stmkvd: http listening on //p' "$LOG" | head -1)"
  PROTO_ADDR="$(sed -n 's/^stmkvd: proto listening on //p' "$LOG" | head -1)"
  if [ -n "$HTTP_ADDR" ] && [ -n "$PROTO_ADDR" ]; then break; fi
  if ! kill -0 $SRV 2>/dev/null; then echo "stmkvd died at startup"; exit 1; fi
  sleep 0.1
done
[ -n "$HTTP_ADDR" ] && [ -n "$PROTO_ADDR" ] \
  || { echo "server never logged its bound addresses"; exit 1; }
BASE="http://$HTTP_ADDR"

for i in $(seq 1 50); do
  if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 $SRV 2>/dev/null; then echo "stmkvd died at startup"; exit 1; fi
  sleep 0.1
done
curl -sf "$BASE/healthz" >/dev/null

# Pipelined binary load with a phase shift: the first half is read-heavy
# and lightly skewed (the gate should probe wider), the second half is a
# hot-key write storm (aborts climb, the gate should shrink). Either
# direction counts as an adaptation; at 150ms periods over a 6s run the
# controller gets ~40 decisions.
"$BIN/stmkv-loadgen" -addr "$PROTO_ADDR" -proto binary -conns 4 \
  -rate 4000 -duration 6s -workers 24 \
  -keys 2048 -theta 0.7 -read 90 -shift -read2 5 -theta2 0.99 \
  -min-ops 10000 >"$GENLOG" 2>&1 &
GEN=$!

wait $GEN || { echo "binary loadgen failed:"; cat "$GENLOG"; exit 1; }
cat "$GENLOG"

TUNING="$(curl -sf "$BASE/tuning")"
STATS="$(curl -sf "$BASE/stats")"
python3 - "$TUNING" "$STATS" <<'PY'
import json, sys
tuning, stats = json.loads(sys.argv[1]), json.loads(sys.argv[2])
assert tuning["enabled"] and tuning["running"], "tuning runtime not running"
assert tuning["admission_tuning"], f"admission controller not enabled: {tuning}"
assert tuning["admission_moves"] >= 1, \
    f"admission width never adapted: {tuning['admission_moves']} moves at width {tuning['admission_width']}"
adm = stats["admission"]
assert adm["enabled"] and adm["tuned"], f"admission gate not live: {adm}"
assert adm["admitted"] > 0, f"no update transactions passed the gate: {adm}"
proto = stats["proto"]
assert proto["ops"] >= 10000, f"binary listener served only {proto['ops']} ops"
assert proto["err_ops"] == 0, f"binary listener answered {proto['err_ops']} errors"
assert proto["bad_frames"] == 0, f"binary listener saw {proto['bad_frames']} malformed frames"
print(f"proto smoke ok: {proto['ops']} pipelined ops over {proto['accepted']} conns, "
      f"0 protocol errors; admission width {adm['width']} after "
      f"{tuning['admission_moves']} adaptations ({adm['admitted']} admitted, "
      f"{adm['waited']} waited)")
PY

kill $SRV
wait $SRV 2>/dev/null || true
trap - EXIT
