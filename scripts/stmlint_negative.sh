#!/usr/bin/env bash
# Negative test for the lint gate: inject a known transactional-invariant
# violation into a scratch package and require stmlint to reject it. A
# gate that cannot fail is not a gate.
set -euo pipefail
cd "$(dirname "$0")/.."

dir="internal/stmlintcanary"
if [ -e "$dir" ]; then
  echo "refusing to overwrite existing $dir" >&2
  exit 1
fi
trap 'rm -rf "$dir"' EXIT
mkdir -p "$dir"
cat > "$dir/canary.go" <<'EOF'
// Package stmlintcanary is written by scripts/stmlint_negative.sh and
// deleted afterwards: it exists only to prove the lint gate rejects a
// transactional-invariant violation.
package stmlintcanary

import "tinystm/internal/core"

// Leak mints a descriptor and drops it; the release analyzer must flag
// the missing Release on the way out.
func Leak(tm *core.TM) uint64 {
	tx := tm.NewTx()
	var v uint64
	tm.Atomic(tx, func(tx *core.Tx) {
		tx.Store(0, 1)
		v = tx.Load(0)
	})
	return v
}
EOF

# The canary must type-check: a broken package would make stmlint exit 2
# and the gate would "pass" the negative test for the wrong reason.
go build "./$dir"

if go run ./cmd/stmlint "./$dir"; then
  echo "FAIL: stmlint accepted an injected descriptor leak" >&2
  exit 1
fi
echo "ok: stmlint rejected the injected violation"
