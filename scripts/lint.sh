#!/usr/bin/env bash
# Single lint entry point, identical locally (`make lint`) and in CI:
# gofmt, go vet, the repo's own stmlint analyzers, and staticcheck when
# it is installed (CI installs a pinned version; locally it is optional
# because this repo builds offline).
set -u
cd "$(dirname "$0")/.."

fail=0

out="$(gofmt -l .)"
if [ -n "$out" ]; then
  echo "gofmt needed on:"
  echo "$out"
  fail=1
fi

go vet ./... || fail=1

# stmlint: static enforcement of the STM's transactional invariants
# (see README "Static analysis"). Covers every package in the module,
# including examples/ and cmd/.
go run ./cmd/stmlint ./... || fail=1

if command -v staticcheck >/dev/null 2>&1; then
  staticcheck ./... || fail=1
else
  echo "staticcheck not installed; skipped (CI runs the pinned version)"
fi

exit "$fail"
