#!/usr/bin/env bash
# smoke_chaos.sh — resilience end-to-end smoke under injected network
# faults. Boots a durable stmkvd behind two netchaos proxies (binary
# traffic through byte corruption + resets + a timed blackout window;
# HTTP writes through connection resets) and asserts the whole
# resilience stack held:
#
#   1. zero acked-write loss: every HTTP write acked through the chaos
#      proxy reads back with the right value afterwards;
#   2. retries are bounded by the shared retry budget (every retry the
#      loadgen performed was granted by the budget, none snuck past);
#   3. the circuit breaker ran at least one full open -> half-open ->
#      closed cycle over the blackout;
#   4. a deadline-expired request is never admitted to a worker: the
#      shed-by-stage counters on /metrics show the gate refusing them;
#   5. the desync kill-path fired: injected corruption produced at least
#      one bad frame, and the server dropped only those connections.
#
# CI runs this on every push; locally: ./scripts/smoke_chaos.sh [bindir]
set -euo pipefail

BIN="${1:-bin}"
LOG="$(mktemp)"
GENLOG="$(mktemp)"
CHAOSP="$(mktemp)"
CHAOSH="$(mktemp)"
WALDIR="$(mktemp -d)"

"$BIN/stmkvd" -addr 127.0.0.1:0 -proto-addr 127.0.0.1:0 \
  -admission 1 -tune-admission=false \
  -durability group -wal-dir "$WALDIR" -wal-batch 25ms \
  -brownout-slo 2s -period 150ms -samples 1 \
  -geometry 2^16,0,1 >"$LOG" 2>&1 &
SRV=$!
PROXY_PIDS=""
trap 'kill $SRV $PROXY_PIDS 2>/dev/null || true; cat "$LOG"' EXIT

HTTP_ADDR=""
PROTO_ADDR=""
for i in $(seq 1 100); do
  HTTP_ADDR="$(sed -n 's/^stmkvd: http listening on //p' "$LOG" | head -1)"
  PROTO_ADDR="$(sed -n 's/^stmkvd: proto listening on //p' "$LOG" | head -1)"
  if [ -n "$HTTP_ADDR" ] && [ -n "$PROTO_ADDR" ]; then break; fi
  if ! kill -0 $SRV 2>/dev/null; then echo "stmkvd died at startup"; exit 1; fi
  sleep 0.1
done
[ -n "$HTTP_ADDR" ] && [ -n "$PROTO_ADDR" ] \
  || { echo "server never logged its bound addresses"; exit 1; }
BASE="http://$HTTP_ADDR"

for i in $(seq 1 100); do
  if curl -sf "$BASE/readyz" >/dev/null 2>&1; then break; fi
  if ! kill -0 $SRV 2>/dev/null; then echo "stmkvd died at startup"; exit 1; fi
  sleep 0.1
done
curl -sf "$BASE/readyz" >/dev/null

# Chaos proxy in front of the binary listener: a byte flipped every ~32KiB
# per direction (CRC kill-path fodder), a reset every ~256KiB, and a full
# 1s blackout starting 3s in — the breaker-cycle window.
"$BIN/netchaos" -target "$PROTO_ADDR" -seed 7 \
  -corrupt-every 32768 -reset-every 262144 \
  -blackout-at 3s -blackout-for 1s >"$CHAOSP" 2>&1 &
PROXY_PIDS="$PROXY_PIDS $!"
# Chaos proxy in front of HTTP: frequent connection resets for the
# acked-write-loss check (threshold ~[300,900) bytes, around one request).
"$BIN/netchaos" -target "$HTTP_ADDR" -seed 11 -reset-every 600 >"$CHAOSH" 2>&1 &
PROXY_PIDS="$PROXY_PIDS $!"

PROTO_PROXY=""
HTTP_PROXY_ADDR=""
for i in $(seq 1 100); do
  PROTO_PROXY="$(sed -n 's/^netchaos: netchaos listening on \([^ ]*\).*/\1/p' "$CHAOSP" | head -1)"
  HTTP_PROXY_ADDR="$(sed -n 's/^netchaos: netchaos listening on \([^ ]*\).*/\1/p' "$CHAOSH" | head -1)"
  if [ -n "$PROTO_PROXY" ] && [ -n "$HTTP_PROXY_ADDR" ]; then break; fi
  sleep 0.1
done
[ -n "$PROTO_PROXY" ] && [ -n "$HTTP_PROXY_ADDR" ] \
  || { echo "netchaos never logged its bound addresses"; cat "$CHAOSP" "$CHAOSH"; exit 1; }

# Pipelined binary load through the chaos proxy. Read-heavy (the width-1
# group-commit gate serializes updates at ~40/s) with per-op deadlines,
# a shared retry budget and an aggressive breaker so the blackout trips
# a full cycle.
"$BIN/stmkv-loadgen" -addr "$PROTO_PROXY" -proto binary -conns 4 \
  -rate 2000 -duration 6s -workers 16 -keys 512 -theta 0.7 \
  -read 97 -cas 0 -batch 0 \
  -op-timeout 1s -retry-tokens 64 -retry-attempts 6 \
  -breaker-threshold 3 -breaker-cooldown 300ms \
  -min-ops 5000 >"$GENLOG" 2>&1 \
  || { echo "chaos loadgen failed:"; cat "$GENLOG"; exit 1; }
cat "$GENLOG"

RETRIES="$(sed -n 's/.* retries=\([0-9]*\)$/\1/p' "$GENLOG" | head -1)"
ALLOWED="$(sed -n 's/.*allowed=\([0-9]*\) denied=.*/\1/p' "$GENLOG" | head -1)"
DENIED="$(sed -n 's/.*denied=\([0-9]*\)$/\1/p' "$GENLOG" | head -1)"
OPENS="$(sed -n 's/.*breaker opens=\([0-9]*\) .*/\1/p' "$GENLOG" | head -1)"
CLOSES="$(sed -n 's/.*closes=\([0-9]*\) state=.*/\1/p' "$GENLOG" | head -1)"
[ -n "$RETRIES" ] && [ -n "$ALLOWED" ] && [ -n "$OPENS" ] && [ -n "$CLOSES" ] \
  || { echo "loadgen summary missing resilience lines"; exit 1; }
[ "$RETRIES" -ge 1 ] || { echo "chaos run finished without a single retry"; exit 1; }
# Bounded by budget: every retry performed was granted by the shared
# bucket — the retrier never retries past a denial.
[ "$RETRIES" -eq "$ALLOWED" ] \
  || { echo "retries ($RETRIES) != budget grants ($ALLOWED): retries escaped the budget"; exit 1; }
[ "$OPENS" -ge 1 ] || { echo "breaker never opened over a 1s blackout"; exit 1; }
[ "$CLOSES" -ge 1 ] || { echo "breaker opened but never closed: no full cycle"; exit 1; }
echo "breaker cycle ok: opens=$OPENS closes=$CLOSES retries=$RETRIES (denied=$DENIED)"

# Let the gate backlog drain and any brownout escalation walk back.
sleep 2

# Acked-write-loss check: 60 writes through the resetting HTTP proxy,
# each retried until acked (200). Afterwards every acked key must read
# back with its exact value DIRECTLY from the server.
ACKED=""
for k in $(seq 1 60); do
  v=$((1000 + k))
  for attempt in $(seq 1 10); do
    code="$(curl -s -o /dev/null -w '%{http_code}' -m 2 \
      -X PUT -d "$v" "http://$HTTP_PROXY_ADDR/kv/$k" 2>/dev/null || echo 000)"
    if [ "$code" = "200" ]; then ACKED="$ACKED $k"; break; fi
    sleep 0.05
  done
done
NACKED=$(echo "$ACKED" | wc -w)
[ "$NACKED" -ge 40 ] \
  || { echo "only $NACKED/60 writes acked through chaos; proxy too hostile to test loss"; exit 1; }
LOST=0
for k in $ACKED; do
  v=$((1000 + k))
  got="$(curl -sf "$BASE/kv/$k" | sed -n 's/.*"val":\([0-9]*\).*/\1/p')"
  if [ "$got" != "$v" ]; then
    echo "ACKED WRITE LOST: key $k acked val $v, reads back '${got:-missing}'"
    LOST=$((LOST + 1))
  fi
done
[ "$LOST" -eq 0 ] || { echo "$LOST acked writes lost"; exit 1; }
echo "acked-write loss ok: $NACKED/60 acked through resets, 0 lost"

# Deadline shedding: saturate the width-1 gate with a burst of untimed
# updates (each holds it ~25ms for the WAL group commit), then send
# writes with a 1ms budget — they must be refused at the gate, never
# executed.
BURST_PIDS=""
for i in $(seq 1 30); do
  curl -s -o /dev/null -X PUT -d 1 "$BASE/kv/7$i" &
  BURST_PIDS="$BURST_PIDS $!"
done
sleep 0.1
SHED=0
for i in $(seq 1 15); do
  code="$(curl -s -o /dev/null -w '%{http_code}' \
    -H 'X-Timeout-Ms: 1' -X PUT -d 1 "$BASE/kv/8$i")"
  [ "$code" = "504" ] && SHED=$((SHED + 1))
done
wait $BURST_PIDS
[ "$SHED" -ge 1 ] || { echo "no 1ms-budget write was shed at the busy gate"; exit 1; }

METRICS="$(curl -sf "$BASE/metrics")"
STATS="$(curl -sf "$BASE/stats")"
python3 - "$STATS" "$METRICS" <<'PY'
import json, sys
stats = json.loads(sys.argv[1])
metrics = sys.argv[2]

def sample(series):
    for line in metrics.splitlines():
        if line.startswith(series + " "):
            return float(line.rsplit(" ", 1)[1])
    raise AssertionError(f"series {series} missing from /metrics")

gate = sample('stmkvd_deadline_shed_total{stage="gate",surface="http"}')
assert gate >= 1, f"no gate-stage deadline sheds on /metrics: {gate}"
assert sample("stmkvd_admission_expired_total") >= 1, "gate never counted an expired claim"
# The one-hot brownout gauge must expose exactly one live state.
states = ["off", "shed-scans", "shed-writes", "shed-all"]
hot = [s for s in states if sample('stmkvd_brownout_state{state="%s"}' % s) == 1]
assert len(hot) == 1, f"brownout one-hot invariant broken: {hot}"
assert stats["brownout"]["enabled"], "brownout ladder not attached despite -brownout-slo"
bad = stats["proto"]["bad_frames"]
assert bad >= 1, f"corruption injected but no bad frame counted: {bad}"
dl = stats["deadline"]["shed"]
print(f"chaos smoke ok: deadline sheds http={dl['http']} proto={dl['proto']}, "
      f"bad_frames={bad}, brownout={hot[0]}")
PY

kill $SRV $PROXY_PIDS 2>/dev/null || true
wait $SRV 2>/dev/null || true
trap - EXIT
