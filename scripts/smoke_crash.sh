#!/usr/bin/env bash
# smoke_crash.sh — crash-durability smoke: boot stmkvd with -durability
# group, drive open-loop traffic over BOTH wire surfaces (HTTP and the
# pipelined binary protocol) plus a tracker that records every PUT the
# server ACKED, kill -9 the daemon mid-run, restart it on the same WAL
# directory, and assert (a) every acked write is readable again — zero
# acked-write loss, (b) /stats shows the recovery actually replayed the
# log, and (c) both load generators rode through the outage on their retry
# policies. The binary leg matters for durability: a pipelined connection
# must never see an ack before the commit's WAL ticket resolves, and the
# restart proves acked pipelined writes were really on disk. CI runs this
# on every push; locally: ./scripts/smoke_crash.sh [bindir]
set -euo pipefail

BIN="${1:-bin}"
WAL="$(mktemp -d)"
LOG="$(mktemp)"
GENLOG="$(mktemp)"
BGENLOG="$(mktemp)"
ACKED="$(mktemp)"

# First boot binds ephemeral ports; parse_addrs pins them so the restart
# reuses the same concrete addresses (the generators retry against them).
HTTP_ADDR="127.0.0.1:0"
PROTO_ADDR="127.0.0.1:0"

start_server() {
  "$BIN/stmkvd" -addr "$HTTP_ADDR" -proto-addr "$PROTO_ADDR" \
    -durability group -wal-dir "$WAL" \
    -period 200ms -samples 1 >>"$LOG" 2>&1 &
  SRV=$!
}

parse_addrs() {
  for i in $(seq 1 100); do
    HTTP_ADDR="$(sed -n 's/^stmkvd: http listening on //p' "$LOG" | head -1)"
    PROTO_ADDR="$(sed -n 's/^stmkvd: proto listening on //p' "$LOG" | head -1)"
    if [ -n "$HTTP_ADDR" ] && [ -n "$PROTO_ADDR" ]; then
      BASE="http://$HTTP_ADDR"
      return 0
    fi
    if ! kill -0 "$SRV" 2>/dev/null; then
      echo "stmkvd died at startup"; cat "$LOG"; exit 1
    fi
    sleep 0.1
  done
  echo "server never logged its bound addresses"; cat "$LOG"; exit 1
}

wait_ready() {
  for i in $(seq 1 100); do
    if curl -sf "$BASE/readyz" >/dev/null 2>&1; then return 0; fi
    if ! kill -0 "$SRV" 2>/dev/null; then
      echo "stmkvd died at startup"; cat "$LOG"; exit 1
    fi
    sleep 0.1
  done
  echo "server never became ready"; cat "$LOG"; exit 1
}

# state_metric reads the one-hot stmkvd_durability_state gauge from
# /metrics (admitted in every lifecycle state) and prints the active
# state's label.
state_metric() {
  curl -sf "$BASE/metrics" \
    | sed -n 's/^stmkvd_durability_state{state="\([a-z]*\)"} 1$/\1/p'
}

start_server
trap 'kill -9 $SRV 2>/dev/null || true; cat "$LOG"' EXIT
parse_addrs
wait_ready

ST="$(state_metric)"
[ "$ST" = "ready" ] || { echo "durability-state metric is '$ST' pre-kill, want ready"; exit 1; }

# Open-loop load in the background; its capped-backoff retry window
# (~15s) is what lets the same run span the kill and the restart.
"$BIN/stmkv-loadgen" -addr "$BASE" -rate 1000 -duration 8s -workers 8 \
  -keys 1024 -theta 0.9 -min-ops 3000 >"$GENLOG" 2>&1 &
GEN=$!

# Same shape over the pipelined binary protocol: acks on this connection
# are only sent after the server's store call returns, which itself
# blocks on the commit's WAL ticket — so every completed op here was
# durable before its response frame was written.
"$BIN/stmkv-loadgen" -addr "$PROTO_ADDR" -proto binary -conns 2 \
  -rate 1000 -duration 8s -workers 8 \
  -keys 1024 -theta 0.9 -min-ops 3000 >"$BGENLOG" 2>&1 &
BGEN=$!

# Tracker: sequential PUTs in a keyspace far above the generator's. A key
# is recorded as acked only AFTER its 200 came back, so the recorded set
# is exactly what -durability group promised to keep.
(
  i=0
  while :; do
    k=$((9000000000 + i))
    v=$((i * 3 + 1))
    if curl -sf -X PUT "$BASE/kv/$k" -d "$v" >/dev/null 2>&1; then
      echo "$k $v" >>"$ACKED"
    fi
    i=$((i + 1))
  done
) &
TRK=$!

# Let writes accumulate, then kill -9: no shutdown path, no final flush.
sleep 2
kill -9 "$SRV"
wait "$SRV" 2>/dev/null || true
sleep 0.5 # in-flight tracker request fails; its ack was never recorded
kill "$TRK" 2>/dev/null || true
wait "$TRK" 2>/dev/null || true

N_ACKED="$(wc -l <"$ACKED")"
if [ "$N_ACKED" -lt 10 ]; then
  echo "tracker recorded only $N_ACKED acked writes before the kill"; exit 1
fi

start_server
parse_restart_state() {
  # Right after the restart the metric must read a legal boot state —
  # starting (mid-replay) or ready (replay won the race) — never
  # degraded/failed/empty; after wait_ready it must be exactly ready.
  for i in $(seq 1 100); do
    ST="$(state_metric || true)"
    if [ -n "$ST" ]; then
      case "$ST" in
        starting|ready) return 0 ;;
        *) echo "durability-state metric is '$ST' during restart"; exit 1 ;;
      esac
    fi
    if ! kill -0 "$SRV" 2>/dev/null; then
      echo "stmkvd died at restart"; cat "$LOG"; exit 1
    fi
    sleep 0.1
  done
  echo "/metrics never served a durability state during restart"; exit 1
}
parse_restart_state
wait_ready
ST="$(state_metric)"
[ "$ST" = "ready" ] || { echo "durability-state metric is '$ST' after recovery, want ready"; exit 1; }

# (a) Zero acked-write loss: every recorded ack is served with its value.
while read -r k v; do
  GOT="$(curl -sf "$BASE/kv/$k")" || { echo "acked key $k lost after crash"; exit 1; }
  case "$GOT" in
    *"\"val\":$v"*) ;;
    *) echo "acked key $k: wrote $v, got $GOT"; exit 1 ;;
  esac
done <"$ACKED"

# (c) Both generators outlived the restart on retries alone.
wait "$GEN" || { echo "HTTP loadgen failed across the restart:"; cat "$GENLOG"; exit 1; }
grep -Eo 'retries=[0-9]+' "$GENLOG" | grep -qv 'retries=0$' \
  || { echo "HTTP loadgen reports zero retries — did the kill land mid-run?"; cat "$GENLOG"; exit 1; }
wait "$BGEN" || { echo "binary loadgen failed across the restart:"; cat "$BGENLOG"; exit 1; }
grep -Eo 'retries=[0-9]+' "$BGENLOG" | grep -qv 'retries=0$' \
  || { echo "binary loadgen reports zero retries — did the kill land mid-run?"; cat "$BGENLOG"; exit 1; }

# (b) /stats tells the recovery story.
STATS="$(curl -sf "$BASE/stats")"
python3 - "$STATS" "$N_ACKED" <<'PY'
import json, sys
stats, n_acked = json.loads(sys.argv[1]), int(sys.argv[2])
d = stats["durability"]
assert d["mode"] == "group", f"mode {d['mode']}"
assert d["state"] == "ready", f"state {d['state']}"
rec = d["recovery"]
assert rec["records"] >= n_acked, f"replayed {rec['records']} records < {n_acked} acked"
assert "error" not in rec, f"recovery error: {rec}"
proto = stats["proto"]
assert proto["ops"] > 0, f"no binary-protocol ops reached the restarted server: {proto}"
assert proto["bad_frames"] == 0, f"binary listener saw malformed frames: {proto}"
print(f"crash smoke ok: {n_acked} acked tracker writes survived kill -9; "
      f"recovery replayed {rec['records']} records / {rec['ops']} ops "
      f"(torn_bytes={rec['torn_bytes']}, checkpoint_found={rec['checkpoint_found']})")
PY
cat "$GENLOG"
cat "$BGENLOG"

kill "$SRV"
wait "$SRV" 2>/dev/null || true
trap - EXIT
rm -rf "$WAL"
