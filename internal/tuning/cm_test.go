package tuning

import (
	"sync"
	"testing"
	"time"

	"tinystm/internal/cm"
	"tinystm/internal/core"
)

// cmTuner unit tests: the ladder climber is a pure decision engine.

func TestCMTunerEscalatesOnHighAbortRatio(t *testing.T) {
	ct := newCMTuner(CMConfig{Enable: true, HoldPeriods: 1}, cm.Suicide)
	next, switched := ct.step(1000, 10, 90, true) // ratio 0.9
	if !switched || next != cm.Backoff {
		t.Fatalf("step = (%v, %v), want escalate to backoff", next, switched)
	}
	// Hold: the fresh policy runs unchallenged for HoldPeriods.
	if next, switched = ct.step(1000, 10, 90, true); switched {
		t.Fatalf("switched during hold to %v", next)
	}
	if next, switched = ct.step(1000, 10, 90, true); !switched || next != cm.Karma {
		t.Fatalf("step = (%v, %v), want escalate to karma after hold", next, switched)
	}
}

func TestCMTunerRetreatsToBestOnThroughputDrop(t *testing.T) {
	ct := newCMTuner(CMConfig{Enable: true, HoldPeriods: 1}, cm.Suicide)
	// Suicide measures 10000 at a healthy ratio: no move.
	if _, switched := ct.step(10000, 100, 1, true); switched {
		t.Fatal("moved off a healthy best policy")
	}
	// Livelock storm: escalate to backoff...
	if next, _ := ct.step(9000, 10, 90, true); next != cm.Backoff {
		t.Fatal("did not escalate")
	}
	ct.step(2000, 100, 1, true) // hold period: the fresh policy gets its grace
	// ...then backoff keeps measuring far below the best seen, at a calm
	// ratio: retreat to the winner.
	next, switched := ct.step(2000, 100, 1, true)
	if !switched || next != cm.Suicide {
		t.Fatalf("step = (%v, %v), want retreat to suicide", next, switched)
	}
	if ct.switches() != 2 {
		t.Errorf("switches = %d, want 2", ct.switches())
	}
}

func TestCMTunerDeescalatesWhenCalm(t *testing.T) {
	ct := newCMTuner(CMConfig{Enable: true, HoldPeriods: 1}, cm.Karma)
	next, switched := ct.step(5000, 1000, 1, true) // ratio ~0.001: probe down
	if !switched || next != cm.Backoff {
		t.Fatalf("step = (%v, %v), want de-escalate to backoff", next, switched)
	}
	ct.step(2000, 1000, 1, true) // hold period
	// The rung below then measures much worse: back up it goes.
	next, switched = ct.step(2000, 1000, 1, true)
	if !switched || next != cm.Karma {
		t.Fatalf("step = (%v, %v), want retreat to karma", next, switched)
	}
	ct.step(5000, 1000, 1, true) // hold period
	// And with karma re-measured best and the floor known-worse, calm
	// ratios no longer bounce it down: the memory damps oscillation.
	if next, switched = ct.step(5000, 1000, 1, true); switched {
		t.Fatalf("oscillated down again to %v", next)
	}
}

func TestCMTunerStartOffLadder(t *testing.T) {
	ct := newCMTuner(CMConfig{Enable: true, Ladder: []cm.Kind{cm.Karma, cm.Serializer}, HoldPeriods: 0}, cm.Suicide)
	if got := ct.current(); got != cm.Suicide {
		t.Fatalf("current = %v, want the system's actual policy", got)
	}
	if next, switched := ct.step(100, 5, 95, true); !switched || next != cm.Karma {
		t.Fatalf("first escalation = %v, want karma (first ladder rung)", next)
	}
}

// cmVirtualEnv is a fake CMSystem under a fake clock: commits and aborts
// accrue at a synthetic rate/abort-ratio profile that depends on both the
// geometry and the contention-management policy. Deterministic end to end.
type cmVirtualEnv struct {
	mu          sync.Mutex
	now         time.Time
	commits     uint64
	aborts      uint64
	params      core.Params
	kind        cm.Kind
	profile     func(core.Params, cm.Kind) (rate, abortRatio float64)
	ticks       int
	maxTicks    int
	reached     chan struct{}
	reachedOnce sync.Once
	cmSwitches  int
}

func newCMVirtualEnv(start core.Params, kind cm.Kind,
	profile func(core.Params, cm.Kind) (float64, float64), maxTicks int) *cmVirtualEnv {
	return &cmVirtualEnv{
		now: time.Unix(0, 0), params: start, kind: kind,
		profile: profile, maxTicks: maxTicks, reached: make(chan struct{}),
	}
}

func (v *cmVirtualEnv) CommitAbortCounts() (uint64, uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.commits, v.aborts
}

func (v *cmVirtualEnv) Reconfigure(p core.Params) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.params = p
	return nil
}

func (v *cmVirtualEnv) Params() core.Params {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.params
}

func (v *cmVirtualEnv) CM() cm.Kind {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.kind
}

func (v *cmVirtualEnv) SetCM(k cm.Kind, _ cm.Knobs) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.kind = k
	v.cmSwitches++
	return nil
}

func (v *cmVirtualEnv) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

func (v *cmVirtualEnv) After(d time.Duration) <-chan time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	ch := make(chan time.Time, 1)
	if v.ticks >= v.maxTicks {
		v.reachedOnce.Do(func() { close(v.reached) })
		return ch // never fires; the runtime parks until Stop
	}
	v.ticks++
	v.now = v.now.Add(d)
	rate, ar := v.profile(v.params, v.kind)
	dc := rate * d.Seconds()
	v.commits += uint64(dc)
	if ar > 0 && ar < 1 {
		v.aborts += uint64(dc * ar / (1 - ar)) // so aborts/(commits+aborts) == ar
	}
	ch <- v.now
	return ch
}

// The acceptance scenario: a livelock-prone configuration (Suicide under a
// retry storm) that no geometry move can fix — only a policy switch drops
// the abort rate. The runtime, on a fully deterministic fake clock, must
// escape by climbing the policy ladder, the observed abort ratio must
// drop, and the final (geometry, policy) point must yield throughput
// within 10% of the best the run ever saw.
func TestRuntimeEscapesLivelockBySwitchingPolicy(t *testing.T) {
	start := p(8, 0, 1)
	opt := p(16, 2, 4)
	geom := synthetic(opt) // geometry component: peaks at opt
	// Policy component: Suicide livelocks (high abort ratio, tiny
	// throughput); heavier policies trade a little overhead for
	// progressively saner abort rates, peaking at Karma.
	base := map[cm.Kind]struct{ factor, ratio float64 }{
		cm.Suicide:    {0.10, 0.92},
		cm.Backoff:    {0.45, 0.70},
		cm.Karma:      {1.00, 0.30},
		cm.Timestamp:  {0.90, 0.25},
		cm.Serializer: {0.70, 0.04},
	}
	profile := func(pp core.Params, k cm.Kind) (float64, float64) {
		b := base[k]
		return geom(pp) * b.factor, b.ratio
	}
	const periods = 300
	env := newCMVirtualEnv(start, cm.Suicide, profile, periods*3)
	rt := NewRuntime(env, RuntimeConfig{
		Tuner:   Config{Initial: start, Seed: 7},
		Period:  time.Second,
		Samples: 3,
		CM:      CMConfig{Enable: true},
		Now:     env.Now,
		After:   env.After,
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	<-env.reached
	rt.Stop()

	trace := rt.Trace()
	if len(trace) < periods-1 {
		t.Fatalf("trace has %d events, want ~%d", len(trace), periods)
	}
	switched := 0
	bestTp := 0.0
	for _, ev := range trace {
		if ev.CMSwitched {
			switched++
		}
		if ev.Throughput > bestTp {
			bestTp = ev.Throughput
		}
	}
	if switched == 0 || rt.CMSwitches() == 0 || env.cmSwitches == 0 {
		t.Fatal("runtime never switched the contention-management policy")
	}
	if final := rt.CM(); final == cm.Suicide {
		t.Fatal("runtime is still on the livelock-prone policy")
	}
	// The abort ratio must have dropped: compare the first period against
	// the last.
	ratio := func(ev Event) float64 {
		if ev.Commits+ev.Aborts == 0 {
			return 0
		}
		return float64(ev.Aborts) / float64(ev.Commits+ev.Aborts)
	}
	firstR, lastR := ratio(trace[0]), ratio(trace[len(trace)-1])
	if lastR >= firstR {
		t.Errorf("abort ratio did not drop: %.2f -> %.2f", firstR, lastR)
	}
	if lastR > 0.5 {
		t.Errorf("final abort ratio %.2f still in livelock territory", lastR)
	}
	// Final (geometry, policy) throughput within 10% of the best seen.
	finalRate, _ := profile(env.Params(), env.CM())
	if finalRate < bestTp*0.9 {
		t.Errorf("final point yields %.0f, more than 10%% below best seen %.0f (params %v, cm %v)",
			finalRate, bestTp, env.Params(), env.CM())
	}
}

// Same seed, same profile: the combined geometry+policy walk must be
// reproducible event for event (the controller adds no nondeterminism).
func TestRuntimeCMDeterministicUnderSeed(t *testing.T) {
	profile := func(pp core.Params, k cm.Kind) (float64, float64) {
		r := synthetic(p(14, 1, 2))(pp)
		if k == cm.Suicide {
			return r * 0.2, 0.8
		}
		return r, 0.1
	}
	run := func() []Event {
		env := newCMVirtualEnv(p(8, 0, 1), cm.Suicide, profile, 80*3)
		rt := NewRuntime(env, RuntimeConfig{
			Tuner: Config{Initial: p(8, 0, 1), Seed: 42}, Period: time.Second,
			Samples: 3, CM: CMConfig{Enable: true}, Now: env.Now, After: env.After,
		})
		if err := rt.Start(); err != nil {
			t.Fatal(err)
		}
		<-env.reached
		rt.Stop()
		return rt.Trace()
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("trace lengths differ or empty: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at period %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// Enabling the controller against a System that cannot switch policies
// must fail loudly at Start, not silently tune nothing.
func TestRuntimeCMRequiresCMSystem(t *testing.T) {
	env := newVirtualEnv(p(8, 0, 1), synthetic(p(12, 0, 1)), 10)
	rt := NewRuntime(env, RuntimeConfig{
		Tuner: Config{Initial: p(8, 0, 1), Seed: 1}, CM: CMConfig{Enable: true},
		Now: env.Now, After: env.After,
	})
	if err := rt.Start(); err == nil {
		rt.Stop()
		t.Fatal("Start succeeded without a CMSystem")
	}
}

// The live core.TM satisfies CMSystem and applies switches end to end.
func TestCoreTMIsCMSystem(t *testing.T) {
	var _ CMSystem = (*core.TM)(nil)
}

// A ladder containing invalid kinds must be sanitized before the
// controller can climb onto a rung SetCM would reject.
func TestCMConfigDropsInvalidLadderKinds(t *testing.T) {
	cfg := CMConfig{Enable: true, Ladder: []cm.Kind{cm.Suicide, cm.Kind(9), cm.Karma}}.withDefaults()
	if len(cfg.Ladder) != 2 || cfg.Ladder[0] != cm.Suicide || cfg.Ladder[1] != cm.Karma {
		t.Fatalf("ladder not sanitized: %v", cfg.Ladder)
	}
	// All-invalid ladders fall back to the default.
	cfg = CMConfig{Enable: true, Ladder: []cm.Kind{cm.Kind(9)}}.withDefaults()
	if len(cfg.Ladder) != len(cm.AllKinds) {
		t.Fatalf("all-invalid ladder did not fall back: %v", cfg.Ladder)
	}
}

// A failed SetCM must roll the controller back so its rung tracking never
// drifts from the policy actually installed.
func TestCMTunerRevertOnFailedSwitch(t *testing.T) {
	ct := newCMTuner(CMConfig{Enable: true, HoldPeriods: 1}, cm.Suicide)
	next, switched := ct.step(1000, 10, 90, true)
	if !switched || next != cm.Backoff {
		t.Fatalf("step = (%v, %v), want escalate", next, switched)
	}
	ct.revert()
	if ct.current() != cm.Suicide || ct.switches() != 0 {
		t.Fatalf("revert left cur=%v switches=%d", ct.current(), ct.switches())
	}
	// The escalation trigger fires again on the next period (no hold).
	if next, switched = ct.step(1000, 10, 90, true); !switched || next != cm.Backoff {
		t.Fatalf("retry after revert = (%v, %v), want escalate", next, switched)
	}
}
