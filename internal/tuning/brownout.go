package tuning

// The brownout controller: the runtime's period loop feeds the server's
// overload ladder (resilience.Brownout) with the same per-period
// request-latency measurement it already stamps onto every Event. The
// ladder itself decides nothing about WHAT to shed — the server maps
// levels to request classes — the controller's job is only the single-
// stepper discipline: exactly one goroutine calls Step, once per period,
// INCLUDING idle periods. Idle matters: an overloaded server that sheds
// its way back to quiescence must walk the ladder down again, and the
// only evidence of calm is periods with no (or few) requests.

import "tinystm/internal/resilience"

// BrownoutConfig wires the overload controller into the runtime.
type BrownoutConfig struct {
	// Enable turns the controller on; Brown must then be non-nil.
	Enable bool
	// Brown is the server's ladder. The runtime is its single stepper;
	// the server reads Level() concurrently on every request.
	Brown *resilience.Brownout
}
