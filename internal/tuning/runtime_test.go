package tuning

import (
	"strings"
	"sync"
	"testing"
	"time"

	"tinystm/internal/core"
	"tinystm/internal/harness"
	"tinystm/internal/mem"
	"tinystm/internal/obs"
	"tinystm/internal/resilience"
)

// virtualEnv is a fake System plus fake clock: time only advances when the
// runtime waits for a sample, and commits accrue at a synthetic
// per-configuration rate. After maxTicks waits it hands the runtime a
// channel that never fires and signals the test, making the whole
// controller loop deterministic — no goroutine coordination, no wall
// clock.
type virtualEnv struct {
	mu          sync.Mutex
	now         time.Time
	commits     uint64
	params      core.Params
	rate        func(core.Params) float64
	ticks       int
	maxTicks    int
	reached     chan struct{} // closed (once) when maxTicks waits have elapsed
	reachedOnce sync.Once
	reconfigs   int
	// onTick, when set, runs on the runtime goroutine after each clock
	// advance — a deterministic injection point for per-period inputs
	// (e.g. latency recordings for the brownout controller).
	onTick func(tick int)
}

func newVirtualEnv(start core.Params, rate func(core.Params) float64, maxTicks int) *virtualEnv {
	return &virtualEnv{
		now: time.Unix(0, 0), params: start, rate: rate,
		maxTicks: maxTicks, reached: make(chan struct{}),
	}
}

func (v *virtualEnv) CommitAbortCounts() (uint64, uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.commits, 0
}

func (v *virtualEnv) Reconfigure(p core.Params) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.params = p
	v.reconfigs++
	return nil
}

func (v *virtualEnv) Params() core.Params {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.params
}

func (v *virtualEnv) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

func (v *virtualEnv) After(d time.Duration) <-chan time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	ch := make(chan time.Time, 1)
	if v.ticks >= v.maxTicks {
		v.reachedOnce.Do(func() { close(v.reached) })
		return ch // never fires; the runtime parks until Stop
	}
	v.ticks++
	v.now = v.now.Add(d)
	v.commits += uint64(v.rate(v.params) * d.Seconds())
	if v.onTick != nil {
		v.onTick(v.ticks)
	}
	ch <- v.now
	return ch
}

func (v *virtualEnv) config(tcfg Config) RuntimeConfig {
	return RuntimeConfig{
		Tuner: tcfg, Period: time.Second, Samples: 3,
		Now: v.Now, After: v.After,
	}
}

// The runtime under a fake clock must escape the deliberately bad 2^8
// start of Section 4.3 and park on a configuration within 10% of the best
// throughput it ever saw — without any manual driving of the tuner.
func TestRuntimeConvergesDeterministically(t *testing.T) {
	start := p(8, 0, 1)
	opt := p(18, 3, 4)
	rate := synthetic(opt)
	const periods = 300
	env := newVirtualEnv(start, rate, periods*3)
	rt := NewRuntime(env, env.config(Config{Initial: start, Seed: 7}))
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	<-env.reached
	rt.Stop()

	best, bestTp := rt.Best()
	if best.Locks <= 1<<8 {
		t.Errorf("tuner never escaped the 2^8 start: best %v", best)
	}
	final := rt.Current()
	if got := rate(final); got < bestTp*0.9 {
		t.Errorf("final configuration %v yields %.1f, more than 10%% below best seen %.1f (at %v)",
			final, got, bestTp, best)
	}
	if env.reconfigs == 0 {
		t.Error("runtime never reconfigured the system")
	}
	if len(rt.Trace()) < periods-1 {
		t.Errorf("trace has %d events, want ~%d", len(rt.Trace()), periods)
	}
}

// Same seed, same synthetic surface, same fake clock: two runs must take
// exactly the same configuration path.
func TestRuntimeDeterministicUnderSeed(t *testing.T) {
	run := func() []Event {
		env := newVirtualEnv(p(8, 0, 1), synthetic(p(16, 2, 4)), 60*3)
		rt := NewRuntime(env, env.config(Config{Initial: p(8, 0, 1), Seed: 42}))
		if err := rt.Start(); err != nil {
			t.Fatal(err)
		}
		<-env.reached
		rt.Stop()
		return rt.Trace()
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("trace lengths differ or empty: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at period %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// A quiescent application must pause the tuner, not teach it that the
// current configuration is worthless.
func TestRuntimePausesOnIdle(t *testing.T) {
	start := p(10, 0, 1)
	env := newVirtualEnv(start, func(core.Params) float64 { return 0 }, 10*3)
	rt := NewRuntime(env, env.config(Config{Initial: start, Seed: 1}))
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	<-env.reached
	rt.Stop()
	trace := rt.Trace()
	if len(trace) == 0 {
		t.Fatal("no events recorded")
	}
	for _, ev := range trace {
		if !ev.Idle {
			t.Fatalf("event not marked idle: %+v", ev)
		}
		if ev.Next != start {
			t.Fatalf("idle period moved the configuration: %+v", ev)
		}
	}
	if env.reconfigs != 0 {
		t.Errorf("idle runtime reconfigured %d times", env.reconfigs)
	}
	if cur := rt.Current(); cur != start {
		t.Errorf("tuner moved while idle: %v", cur)
	}
}

// Start/Stop lifecycle: double Start fails, Stop is idempotent, and a
// stopped runtime restarts and keeps tuning from its memory.
func TestRuntimeLifecycle(t *testing.T) {
	env := newVirtualEnv(p(8, 0, 1), synthetic(p(12, 0, 1)), 1<<30)
	rt := NewRuntime(env, env.config(Config{Initial: p(8, 0, 1), Seed: 5}))
	rt.Stop() // never started: no-op
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err == nil {
		t.Fatal("second Start did not fail")
	}
	if !rt.Running() {
		t.Fatal("not running after Start")
	}
	rt.Stop()
	rt.Stop() // idempotent
	if rt.Running() {
		t.Fatal("running after Stop")
	}
	if err := rt.Start(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	rt.Stop()
}

// slowReconfEnv parks the controller inside Reconfigure for a while and
// reports when it got there, so the test can probe the Stop-in-progress
// window deterministically.
type slowReconfEnv struct {
	mu      sync.Mutex
	params  core.Params
	commits uint64
	entered chan struct{}
	once    sync.Once
	delay   time.Duration
}

func (s *slowReconfEnv) CommitAbortCounts() (uint64, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.commits += 1000 // always busy: never the idle path
	return s.commits, 0
}

func (s *slowReconfEnv) Reconfigure(p core.Params) error {
	s.once.Do(func() { close(s.entered) })
	time.Sleep(s.delay)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.params = p
	return nil
}

func (s *slowReconfEnv) Params() core.Params {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.params
}

// While Stop is draining a controller that is mid-period, Start must keep
// failing: clearing `running` before the drain completes would let a
// second controller goroutine run concurrently with the old one (double-
// feeding the tuner and issuing interleaved Reconfigures).
func TestRuntimeStartBlockedUntilStopCompletes(t *testing.T) {
	start := p(8, 0, 1)
	env := &slowReconfEnv{params: start, entered: make(chan struct{}), delay: 500 * time.Millisecond}
	immediate := func(time.Duration) <-chan time.Time {
		ch := make(chan time.Time, 1)
		ch <- time.Now()
		return ch
	}
	rt := NewRuntime(env, RuntimeConfig{
		Tuner:  Config{Initial: start, Seed: 1},
		Period: time.Second, Samples: 1,
		Now: time.Now, After: immediate,
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	<-env.entered // controller is now inside Reconfigure for ~delay
	stopped := make(chan struct{})
	go func() { rt.Stop(); close(stopped) }()
	time.Sleep(50 * time.Millisecond) // let Stop close the stop channel
	// The controller is still sleeping inside Reconfigure (delay >> 50ms),
	// so Stop cannot have completed and Start must be refused.
	if err := rt.Start(); err == nil {
		t.Fatal("Start succeeded while Stop was still draining the controller")
	}
	<-stopped
	if err := rt.Start(); err != nil {
		t.Fatalf("Start after completed Stop: %v", err)
	}
	rt.Stop()
}

// Live end-to-end under the race detector: real workers on a real TM, the
// runtime reconfiguring underneath them, concurrent Stats()/sampler
// polling, and a mid-run workload phase shift (update-rate and
// working-set-size flip).
func TestRuntimeLiveWorkersPhaseShift(t *testing.T) {
	sp := mem.NewSpace(1 << 18)
	start := core.Params{Locks: 1 << 8, Shifts: 0, Hier: 1}
	tm := core.MustNew(core.Config{Space: sp, Locks: start.Locks})

	base := harness.IntsetParams{Kind: harness.KindList, InitialSize: 128, UpdatePct: 10}
	set := harness.BuildIntset[*core.Tx](tm, base, 3)
	hot := base
	hot.UpdatePct = 80
	hot.Range = 64 // shrink the working set: hotter conflicts
	phased := harness.IntsetPhases[*core.Tx](tm, set, base, hot)
	workers := harness.StartWorkers[*core.Tx](tm, 4, 3, phased.Op())
	defer workers.Stop()

	const totalPeriods = 16
	traceCh := make(chan Event, totalPeriods*2)
	rt := NewRuntime(tm, RuntimeConfig{
		Tuner: Config{
			Initial: start, Seed: 3,
			// Small bounds keep lock-array allocations cheap in a race
			// test; the walk still has room to move.
			Bounds: Bounds{MinLocks: 1 << 6, MaxLocks: 1 << 14,
				MaxShifts: 4, MinHier: 1, MaxHier: 8},
		},
		Period: 10 * time.Millisecond, Samples: 2, Trace: traceCh,
	})

	pollStop := make(chan struct{})
	var pollWg sync.WaitGroup
	pollWg.Add(1)
	go func() {
		defer pollWg.Done()
		for {
			select {
			case <-pollStop:
				return
			default:
			}
			tm.Stats()
			tm.CommitAbortCounts()
			time.Sleep(200 * time.Microsecond)
		}
	}()

	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	periods := 0
	deadline := time.After(30 * time.Second)
	for periods < totalPeriods {
		select {
		case <-traceCh:
			periods++
			if periods == totalPeriods/2 {
				phased.SetPhase(1)
			}
		case <-deadline:
			t.Fatal("runtime produced too few periods before deadline")
		}
	}
	rt.Stop()
	close(pollStop)
	pollWg.Wait()

	trace := rt.Trace()
	if len(trace) < totalPeriods {
		t.Fatalf("trace has %d events, want >= %d", len(trace), totalPeriods)
	}
	moved := false
	for _, ev := range trace {
		if !ev.Idle && ev.Next != ev.Params {
			moved = true
		}
		if ev.Err != nil {
			t.Errorf("reconfigure failed: %v", ev.Err)
		}
	}
	if !moved {
		t.Error("runtime never moved the configuration")
	}
	if s := tm.Stats(); s.Reconfigs == 0 {
		t.Error("no reconfigurations reached the TM")
	}
}

func TestRuntimeTraceCap(t *testing.T) {
	r := &Runtime{cfg: RuntimeConfig{TraceCap: 3}.withDefaults()}
	for i := 0; i < 10; i++ {
		r.appendTrace(Event{Period: i})
	}
	tr := r.Trace()
	if len(tr) != 3 || tr[0].Period != 7 || tr[2].Period != 9 {
		t.Fatalf("capped trace wrong: %+v", tr)
	}
	if r.Periods() != 0 {
		// appendTrace does not advance the period counter; step does.
		t.Fatalf("Periods = %d", r.Periods())
	}
}

// An attached latency histogram must stamp per-period p50/p99 deltas on
// every event, with the baseline re-taken after each decision so one
// period's requests are never charged to the next.
func TestRuntimeLatencyDeltas(t *testing.T) {
	start := p(10, 0, 1)
	env := newVirtualEnv(start, func(core.Params) float64 { return 1000 }, 6*3)
	h := obs.NewHistogram()
	cfg := env.config(Config{Initial: start, Seed: 1})
	cfg.Latency = h
	// Each sample wait contributes ten requests of 1..10µs, so every
	// period's delta holds exactly Samples*10 observations.
	cfg.After = func(d time.Duration) <-chan time.Time {
		for i := uint64(1); i <= 10; i++ {
			h.Record(i * 1000)
		}
		return env.After(d)
	}
	rt := NewRuntime(env, cfg)
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	<-env.reached
	rt.Stop()

	events := rt.Trace()
	if len(events) == 0 {
		t.Fatal("no events")
	}
	for i, e := range events {
		if e.LatSamples != uint64(cfg.Samples*10) {
			t.Fatalf("event %d: LatSamples = %d, want %d (baseline not re-taken?)",
				i, e.LatSamples, cfg.Samples*10)
		}
		if e.LatP50 <= 0 || e.LatP99 < e.LatP50 || e.LatP99 > 11*time.Microsecond {
			t.Fatalf("event %d: implausible quantiles p50=%v p99=%v", i, e.LatP50, e.LatP99)
		}
		if s := e.String(); !strings.Contains(s, "lat p50=") && !e.Idle {
			t.Fatalf("event %d: String() misses latency: %q", i, s)
		}
	}
}

// TestRuntimeBrownoutLadderFollowsLatency drives the brownout controller
// through a full escalation and walk-back using latency injected on the
// runtime's own goroutine: sustained p99 over the SLO climbs the ladder
// one rung per EscalateAfter periods, sustained calm walks it back down.
func TestRuntimeBrownoutLadderFollowsLatency(t *testing.T) {
	start := p(8, 0, 1)
	env := newVirtualEnv(start, func(core.Params) float64 { return 100 }, 42)
	hist := obs.NewHistogram()
	const samplesPerPeriod = 3
	env.onTick = func(tick int) {
		lat := uint64(20 * time.Millisecond) // hot: p99 over the 10ms SLO
		if tick > 6*samplesPerPeriod {
			lat = uint64(time.Millisecond) // calm
		}
		hist.Record(lat)
		hist.Record(lat)
	}
	brown := resilience.NewBrownout(resilience.BrownoutConfig{
		SLO: 10 * time.Millisecond, EscalateAfter: 2, CalmAfter: 2, MinSamples: 4,
	})
	cfg := env.config(Config{Initial: start, Seed: 1})
	cfg.Latency = hist
	cfg.Brownout = BrownoutConfig{Enable: true, Brown: brown}
	rt := NewRuntime(env, cfg)
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	<-env.reached
	rt.Stop()

	maxLevel := resilience.LevelOff
	changes := 0
	for _, ev := range rt.Trace() {
		if ev.BrownoutChanged {
			changes++
			if ev.NextBrownout > maxLevel {
				maxLevel = ev.NextBrownout
			}
		}
	}
	if maxLevel != resilience.LevelShedAll {
		t.Errorf("ladder peaked at %v, want shed-all under sustained overload", maxLevel)
	}
	if brown.Level() != resilience.LevelOff {
		t.Errorf("ladder parked at %v after sustained calm, want off", brown.Level())
	}
	esc, deesc := brown.Moves()
	if esc != 3 || deesc != 3 {
		t.Errorf("moves = (%d escalations, %d deescalations), want (3, 3)", esc, deesc)
	}
	if changes != 6 {
		t.Errorf("trace carries %d brownout changes, want 6", changes)
	}
}

// TestRuntimeBrownoutStepsOnIdlePeriods pins the idle rule: an escalated
// server whose load vanished entirely (zero commits — every other
// controller holds) must still walk the ladder back down, and the Idle
// trace events must carry the change.
func TestRuntimeBrownoutStepsOnIdlePeriods(t *testing.T) {
	start := p(8, 0, 1)
	env := newVirtualEnv(start, func(core.Params) float64 { return 0 }, 12)
	brown := resilience.NewBrownout(resilience.BrownoutConfig{
		SLO: 10 * time.Millisecond, EscalateAfter: 2, CalmAfter: 2, MinSamples: 4,
	})
	// Pre-escalate to shed-scans before the runtime becomes the single
	// stepper.
	brown.Step(20*time.Millisecond, 100)
	brown.Step(20*time.Millisecond, 100)
	if brown.Level() != resilience.LevelShedScans {
		t.Fatalf("pre-escalation landed at %v, want shed-scans", brown.Level())
	}
	cfg := env.config(Config{Initial: start, Seed: 1})
	cfg.Brownout = BrownoutConfig{Enable: true, Brown: brown}
	rt := NewRuntime(env, cfg)
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	<-env.reached
	rt.Stop()

	if brown.Level() != resilience.LevelOff {
		t.Errorf("idle periods never walked the ladder back: level %v", brown.Level())
	}
	idleChange := false
	for _, ev := range rt.Trace() {
		if ev.Idle && ev.BrownoutChanged {
			idleChange = true
		}
	}
	if !idleChange {
		t.Error("no Idle trace event carries the brownout walk-back")
	}
}

// TestRuntimeBrownoutEnableRequiresLadder mirrors the other controllers'
// Start-time validation.
func TestRuntimeBrownoutEnableRequiresLadder(t *testing.T) {
	start := p(8, 0, 1)
	env := newVirtualEnv(start, func(core.Params) float64 { return 1 }, 3)
	cfg := env.config(Config{Initial: start})
	cfg.Brownout = BrownoutConfig{Enable: true}
	rt := NewRuntime(env, cfg)
	if err := rt.Start(); err == nil {
		rt.Stop()
		t.Fatal("Start accepted an enabled brownout controller with a nil ladder")
	}
}
