package tuning

import (
	"tinystm/internal/cm"
)

// CMSystem is the optional extension of System for STMs whose
// contention-management policy can be switched live. *core.TM satisfies
// it; enable the controller with RuntimeConfig.CM.Enable.
type CMSystem interface {
	System
	// CM returns the active policy kind.
	CM() cm.Kind
	// SetCM switches the policy on the live system (no world freeze; a
	// zero Knobs keeps the system's construction-time knobs).
	SetCM(k cm.Kind, kn cm.Knobs) error
}

// CMConfig parameterizes the adaptive contention-management controller:
// a rule-based ladder climber layered beside the geometry hill-climber,
// driven by the same per-period (throughput, commits, aborts) measurement.
//
// The controller escalates to a heavier policy when the abort ratio says
// the current one is livelocking, retreats to the best-measured policy
// when throughput decays below it, and probes one rung down when
// contention subsides — the adaptive-transaction-scheduling idea applied
// to the whole policy ladder.
type CMConfig struct {
	// Enable turns the controller on. The Runtime's System must then
	// implement CMSystem (Start fails otherwise).
	Enable bool
	// Ladder is the escalation order, lightest first. Default
	// cm.AllKinds (suicide, backoff, karma, timestamp, serializer).
	Ladder []cm.Kind
	// Knobs travels with every switch (zero: the system's own knobs).
	Knobs cm.Knobs
	// EscalateAbortRatio is the abort ratio aborts/(commits+aborts) at
	// or above which the controller climbs one rung. Default 0.6.
	EscalateAbortRatio float64
	// DeescalateAbortRatio is the ratio at or below which it probes one
	// rung down (cheaper policies win when contention is gone).
	// Default 0.05.
	DeescalateAbortRatio float64
	// DropBest is the fractional throughput gap below the best-measured
	// rung that triggers a switch back to it. Default 0.10 — the same
	// tolerance the geometry tuner applies (Section 4.2).
	DropBest float64
	// HoldPeriods is how many periods a freshly installed policy runs
	// unchallenged before the controller re-decides: a switch perturbs
	// the measurement it would be judged by. Default 3.
	HoldPeriods int
}

func (c CMConfig) withDefaults() CMConfig {
	// Drop invalid kinds from a custom ladder: cmTuner would otherwise
	// climb onto a rung SetCM rejects and park there forever.
	if len(c.Ladder) > 0 {
		valid := c.Ladder[:0:0]
		for _, k := range c.Ladder {
			if k.Valid() {
				valid = append(valid, k)
			}
		}
		c.Ladder = valid
	}
	if len(c.Ladder) == 0 {
		c.Ladder = cm.AllKinds
	}
	if c.EscalateAbortRatio == 0 {
		c.EscalateAbortRatio = 0.6
	}
	if c.DeescalateAbortRatio == 0 {
		c.DeescalateAbortRatio = 0.05
	}
	if c.DropBest == 0 {
		c.DropBest = 0.10
	}
	if c.HoldPeriods == 0 {
		c.HoldPeriods = 3
	}
	return c
}

// cmTuner is the controller state. Like the geometry Tuner it is a pure
// decision engine — deterministic given the measurement sequence — so the
// fake-clock runtime tests cover it end to end.
type cmTuner struct {
	cfg    CMConfig
	ladder []cm.Kind
	cur    int
	seen   []bool
	tp     []float64 // latest throughput measured per rung
	hold   int
	moves  int
	prev   int // rung before the last switch (for revert on failed SetCM)
}

func newCMTuner(cfg CMConfig, start cm.Kind) *cmTuner {
	cfg = cfg.withDefaults()
	ladder := cfg.Ladder
	cur := -1
	for i, k := range ladder {
		if k == start {
			cur = i
			break
		}
	}
	if cur < 0 {
		// The system's current policy is not on the ladder: treat it as
		// the lightest rung so the first escalation moves onto the
		// ladder proper.
		ladder = append([]cm.Kind{start}, ladder...)
		cur = 0
	}
	return &cmTuner{
		cfg:    cfg,
		ladder: ladder,
		cur:    cur,
		seen:   make([]bool, len(ladder)),
		tp:     make([]float64, len(ladder)),
	}
}

// current returns the rung the controller believes is installed.
func (t *cmTuner) current() cm.Kind { return t.ladder[t.cur] }

// switches returns how many policy changes the controller decided.
func (t *cmTuner) switches() int { return t.moves }

// best returns the index of the best-measured rung (the current one when
// nothing else was measured yet).
func (t *cmTuner) best() int {
	best := t.cur
	for i := range t.ladder {
		if t.seen[i] && (!t.seen[best] || t.tp[i] > t.tp[best]) {
			best = i
		}
	}
	return best
}

// step records one period's measurement at the current rung and returns
// the rung to install for the next period (switched reports a change).
//
// geomSettled reports that the geometry hill-climber decided to hold its
// configuration this period: throughput measured then is attributable to
// the policy rung, so only those periods feed the per-rung memory and the
// throughput-comparison rules — otherwise a rung would be credited (or
// blamed) for whatever geometry happened to be live, and the retreat rule
// would bounce between rungs chasing geometry noise. The abort-ratio
// escalation stays always-on: a livelock signal is exactly the situation
// no geometry move fixes, and waiting for the geometry walk to settle
// inside a retry storm could take forever.
func (t *cmTuner) step(tp float64, commits, aborts uint64, geomSettled bool) (next cm.Kind, switched bool) {
	if geomSettled {
		t.seen[t.cur] = true
		t.tp[t.cur] = tp
	}
	if t.hold > 0 {
		t.hold--
		return t.ladder[t.cur], false
	}
	ratio := 0.0
	if commits+aborts > 0 {
		ratio = float64(aborts) / float64(commits+aborts)
	}
	ok := func(i int) bool { // candidate rung not known to be worse
		return !t.seen[i] || t.tp[i] >= tp*(1-t.cfg.DropBest)
	}
	target := t.cur
	switch best := t.best(); {
	case ratio >= t.cfg.EscalateAbortRatio && t.cur+1 < len(t.ladder) && ok(t.cur+1):
		// Livelock signal: climb to a heavier policy — unless the rung
		// above already measured clearly worse than where we stand.
		target = t.cur + 1
	case !geomSettled:
		// The throughput rules below compare across rungs; without a
		// settled geometry the comparison is not apples-to-apples.
	case best != t.cur && t.tp[best] > 0 && tp < t.tp[best]*(1-t.cfg.DropBest):
		// The current rung fell well below the best-measured one:
		// retreat to the winner.
		target = best
	case ratio <= t.cfg.DeescalateAbortRatio && t.cur > 0 && ok(t.cur-1):
		// Contention subsided: probe the cheaper rung below.
		target = t.cur - 1
	}
	if target == t.cur {
		return t.ladder[t.cur], false
	}
	t.prev = t.cur
	t.cur = target
	t.hold = t.cfg.HoldPeriods
	t.moves++
	return t.ladder[t.cur], true
}

// revert rolls the last switch back: the runtime calls it when SetCM
// failed, so the controller's notion of the installed rung never drifts
// from reality (otherwise every later measurement would be credited to a
// rung that was never live, and the switch would never be retried).
func (t *cmTuner) revert() {
	t.cur = t.prev
	t.hold = 0
	t.moves--
}
