package tuning

import (
	"math"
	"math/bits"
	"testing"

	"tinystm/internal/core"
)

func p(locksExp int, shifts uint, hier uint64) core.Params {
	return core.Params{Locks: 1 << locksExp, Shifts: shifts, Hier: hier}
}

// synthetic builds a smooth unimodal throughput surface peaking at the
// given optimum; distance in (log-locks, shifts, log-h) space.
func synthetic(opt core.Params) func(core.Params) float64 {
	return func(q core.Params) float64 {
		dl := float64(bits.TrailingZeros64(q.Locks) - bits.TrailingZeros64(opt.Locks))
		ds := float64(int(q.Shifts) - int(opt.Shifts))
		dh := float64(bits.TrailingZeros64(q.Hier) - bits.TrailingZeros64(opt.Hier))
		d2 := dl*dl + ds*ds + dh*dh
		return 1000 * math.Exp(-d2/40)
	}
}

func TestMovesApply(t *testing.T) {
	base := p(10, 3, 4)
	cases := []struct {
		m    Move
		want core.Params
	}{
		{MoveDoubleLocks, p(11, 3, 4)},
		{MoveHalveLocks, p(9, 3, 4)},
		{MoveIncShifts, p(10, 4, 4)},
		{MoveDecShifts, p(10, 2, 4)},
		{MoveDoubleHier, p(10, 3, 8)},
		{MoveHalveHier, p(10, 3, 2)},
		{MoveNop, base},
	}
	for _, c := range cases {
		if got := apply(base, c.m); got != c.want {
			t.Errorf("apply(%v) = %+v, want %+v", c.m, got, c.want)
		}
	}
}

func TestLegalRespectsBounds(t *testing.T) {
	tr := New(Config{Initial: p(8, 0, 1), Bounds: Bounds{
		MinLocks: 1 << 8, MaxLocks: 1 << 10,
		MinShifts: 0, MaxShifts: 2,
		MinHier: 1, MaxHier: 4,
	}})
	if tr.legal(p(10, 0, 1), MoveDoubleLocks) {
		t.Error("doubling locks past MaxLocks allowed")
	}
	if tr.legal(p(8, 0, 1), MoveHalveLocks) {
		t.Error("halving locks past MinLocks allowed")
	}
	if tr.legal(p(9, 2, 1), MoveIncShifts) {
		t.Error("shift increase past MaxShifts allowed")
	}
	if tr.legal(p(9, 0, 1), MoveDecShifts) {
		t.Error("shift decrease below zero allowed")
	}
	if tr.legal(p(9, 0, 4), MoveDoubleHier) {
		t.Error("hier growth past MaxHier allowed")
	}
	if tr.legal(p(9, 0, 1), MoveHalveHier) {
		t.Error("halving hier below 1 allowed")
	}
	// h may never exceed the lock count.
	tr2 := New(Config{Initial: p(2, 0, 4), Bounds: Bounds{
		MinLocks: 1 << 1, MaxLocks: 1 << 10,
		MaxShifts: 2, MinHier: 1, MaxHier: 256,
	}})
	if tr2.legal(p(2, 0, 4), MoveDoubleHier) {
		t.Error("hier allowed to exceed lock count")
	}
	if tr2.legal(p(2, 0, 4), MoveHalveLocks) {
		t.Error("locks allowed to drop below hier")
	}
}

func TestStepExploresUncharted(t *testing.T) {
	tr := New(Config{Initial: p(10, 2, 4), Seed: 1})
	next, move := tr.Step(100)
	if move < MoveDoubleLocks || move > MoveHalveHier {
		t.Fatalf("first move = %v, want an exploratory move 1-6", move)
	}
	if next == p(10, 2, 4) {
		t.Fatal("tuner did not move")
	}
	if _, seen := tr.memory[next]; seen {
		t.Fatal("moved to a charted configuration")
	}
}

func TestReverseOnTwoPercentDrop(t *testing.T) {
	tr := New(Config{Initial: p(10, 0, 1), Seed: 3})
	tr.Step(1000)           // at initial, move somewhere
	_, move := tr.Step(900) // 10% drop: must reverse (and explore from best)
	if !tr.trace[1].Reversed && move != MoveReverse {
		t.Fatalf("no reverse after big drop (move=%v, trace=%+v)", move, tr.trace[1])
	}
}

func TestNoReverseOnSmallDrop(t *testing.T) {
	tr := New(Config{Initial: p(10, 0, 1), Seed: 3})
	tr.Step(1000)
	tr.Step(995) // 0.5% drop: keep climbing
	if tr.trace[1].Reversed {
		t.Fatal("reversed on a 0.5% drop")
	}
}

func TestForbiddenAreaAfterBigShiftDrop(t *testing.T) {
	tr := New(Config{Initial: p(10, 2, 1), Seed: 1})
	// Manufacture the state: pretend the last move was IncShifts to 3 and
	// the throughput collapsed.
	tr.memory[p(10, 2, 1)] = 1000
	tr.cur = p(10, 3, 1)
	tr.last = MoveIncShifts
	tr.prevTp, tr.hasPrev = 1000, true
	tr.Step(500)
	if tr.maxShifts != 2 {
		t.Errorf("maxShifts = %d, want clamped to 2", tr.maxShifts)
	}
	if tr.legal(p(10, 2, 1), MoveIncShifts) {
		t.Error("move into forbidden area still legal")
	}
}

func TestForbiddenAreaAfterBigHierDrop(t *testing.T) {
	tr := New(Config{Initial: p(10, 0, 4), Seed: 1})
	tr.memory[p(10, 0, 4)] = 1000
	tr.cur = p(10, 0, 8)
	tr.last = MoveDoubleHier
	tr.prevTp, tr.hasPrev = 1000, true
	tr.Step(500)
	if tr.maxHier != 4 {
		t.Errorf("maxHier = %d, want clamped to 4", tr.maxHier)
	}
}

func TestNopAtExploredOptimum(t *testing.T) {
	// Tiny space: 2 lock sizes only, no shifts, no hier.
	b := Bounds{MinLocks: 1 << 8, MaxLocks: 1 << 9, MinShifts: 0, MaxShifts: 0, MinHier: 1, MaxHier: 1}
	tr := New(Config{Initial: p(8, 0, 1), Bounds: b, Seed: 1})
	tr.Step(1000) // explores the only neighbour 2^9
	tr.Step(1100) // better; neighbours of 2^9: only 2^8, charted
	_, move := tr.Step(1100)
	if move != MoveNop {
		t.Errorf("move = %v, want nop at fully-explored optimum", move)
	}
}

func TestSecondBestSwitch(t *testing.T) {
	b := Bounds{MinLocks: 1 << 8, MaxLocks: 1 << 9, MinShifts: 0, MaxShifts: 0, MinHier: 1, MaxHier: 1}
	tr := New(Config{Initial: p(8, 0, 1), Bounds: b, Seed: 1})
	tr.Step(1000) // memory[2^8]=1000, move to 2^9
	tr.Step(1100) // memory[2^9]=1100, best; no uncharted → nop
	// Throughput at best collapses below second best (1000): switch.
	next, move := tr.Step(900)
	if move != MoveSecondBest {
		t.Fatalf("move = %v, want second-best switch", move)
	}
	if next != p(8, 0, 1) {
		t.Fatalf("next = %+v, want the second-best configuration", next)
	}
}

func TestConvergesToSyntheticOptimum(t *testing.T) {
	opt := p(18, 3, 4)
	f := synthetic(opt)
	for seed := uint64(1); seed <= 5; seed++ {
		tr := New(Config{Initial: p(8, 0, 1), Seed: seed})
		cur := tr.Current()
		for i := 0; i < 400; i++ {
			cur, _ = tr.Step(f(cur))
		}
		best, bestTp := tr.Best()
		if bestTp < f(opt)*0.85 {
			t.Errorf("seed %d: best %+v tp %.1f < 85%% of optimum %.1f",
				seed, best, bestTp, f(opt))
		}
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	f := synthetic(p(16, 2, 4))
	run := func() []TraceEntry {
		tr := New(Config{Initial: p(8, 0, 1), Seed: 42})
		cur := tr.Current()
		for i := 0; i < 100; i++ {
			cur, _ = tr.Step(f(cur))
		}
		return tr.Trace()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("trace lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestTraceRecordsMeasurements(t *testing.T) {
	tr := New(Config{Initial: p(10, 0, 1), Seed: 9})
	tr.Step(500)
	tr.Step(600)
	trace := tr.Trace()
	if len(trace) != 2 {
		t.Fatalf("trace length = %d, want 2", len(trace))
	}
	if trace[0].Throughput != 500 || trace[1].Throughput != 600 {
		t.Error("throughputs not recorded in order")
	}
	if trace[0].Params != p(10, 0, 1) {
		t.Error("first measured config wrong")
	}
	if trace[0].Next != trace[1].Params {
		t.Error("trace chain broken: Next[0] != Params[1]")
	}
}

func TestBestTracksMostRecentThroughput(t *testing.T) {
	// Memory keeps the most recent throughput per configuration: a stale
	// high reading must be replaced.
	b := Bounds{MinLocks: 1 << 8, MaxLocks: 1 << 9, MinShifts: 0, MaxShifts: 0, MinHier: 1, MaxHier: 1}
	tr := New(Config{Initial: p(8, 0, 1), Bounds: b, Seed: 1})
	tr.Step(1000)
	tr.Step(500) // memory: 2^8→1000 (best), 2^9→500; reverses to 2^8
	if best, tp := tr.Best(); best != p(8, 0, 1) || tp != 1000 {
		t.Fatalf("best = %+v/%.0f", best, tp)
	}
	// Re-measure 2^8 lower: best record must update.
	tr.Step(400)
	if _, tp := tr.Best(); tp != 500 {
		t.Fatalf("best tp = %.0f, want 500 (2^9's most recent)", tp)
	}
}
