package tuning

import (
	"fmt"
	"sync"
	"time"

	"tinystm/internal/cm"
	"tinystm/internal/core"
	"tinystm/internal/obs"
	"tinystm/internal/resilience"
)

// System is the runtime's view of a tunable STM: an O(1) lock-free sampler
// for the commit/abort totals, live reconfiguration, and the current
// parameters. *core.TM satisfies it.
type System interface {
	// CommitAbortCounts returns monotonically increasing aggregate
	// counters. The runtime differentiates them per sample, so the call
	// must be cheap and must not perturb the transaction hot path.
	CommitAbortCounts() (commits, aborts uint64)
	// Reconfigure atomically replaces the tunable triple on the live
	// system.
	Reconfigure(core.Params) error
	// Params returns the currently installed triple.
	Params() core.Params
}

var _ System = (*core.TM)(nil)

// Event is one tuning period as observed by the runtime, published on the
// trace channel (observability) and retained in the runtime's own trace.
type Event struct {
	// Period is the zero-based index of the tuning period.
	Period int
	// Params is the configuration that was live during the period.
	Params core.Params
	// Throughput is the maximum commits/second over the period's samples
	// (Section 4.3 measures three times and keeps the maximum).
	Throughput float64
	// Commits and Aborts are the raw counter deltas over the whole period.
	Commits, Aborts uint64
	// Idle marks a paused period: the system was (nearly) quiescent, so
	// the measurement was discarded instead of being charged to the
	// current configuration, and no move was made.
	Idle bool
	// Move is the hill-climber's decision; Reversed marks the paper's "-x"
	// notation (reverse to best, then move x). Meaningless when Idle.
	Move     Move
	Reversed bool
	// Next is the configuration installed for the following period.
	Next core.Params
	// CM is the contention-management policy live during the period and
	// NextCM the one installed for the following period; CMSwitched
	// marks a change. Only meaningful with the policy controller
	// enabled (RuntimeConfig.CM.Enable).
	CM         cm.Kind
	NextCM     cm.Kind
	CMSwitched bool
	// SnapTooOld and SnapReads are the period's snapshot-too-old abort
	// and sidecar-read deltas; Budget is the version budget live during
	// the period and NextBudget the one installed for the following one
	// (BudgetChanged marks a move). Only meaningful with the snapshot
	// controller enabled (RuntimeConfig.Snapshot.Enable).
	SnapTooOld    uint64
	SnapReads     uint64
	Budget        int
	NextBudget    int
	BudgetChanged bool
	// AdmWidth is the update-admission gate width live during the period
	// and NextAdmWidth the one installed for the following one
	// (AdmChanged marks a move). Only meaningful with the admission
	// controller enabled (RuntimeConfig.Admission.Enable).
	AdmWidth     int
	NextAdmWidth int
	AdmChanged   bool
	// LatP50 and LatP99 are the period's request-latency quantiles and
	// LatSamples its request count, differenced from the attached
	// latency histogram (RuntimeConfig.Latency). Zero without one: the
	// controller then steers on throughput alone.
	LatP50, LatP99 time.Duration
	LatSamples     uint64
	// Brownout is the overload-shed level live during the period and
	// NextBrownout the one after stepping the ladder on the period's p99;
	// BrownoutChanged marks a move. Only meaningful with the brownout
	// controller enabled (RuntimeConfig.Brownout.Enable). Unlike every
	// other dimension, the ladder also steps on Idle periods — idleness
	// is the calm that walks it back down.
	Brownout        resilience.Level
	NextBrownout    resilience.Level
	BrownoutChanged bool
	// Err reports a failed Reconfigure (the system keeps its previous
	// parameters; the tuner's memory still records the move). CMErr
	// reports a failed SetCM, SnapErr a failed SetVersionBudget and
	// AdmErr a failed SetWidth likewise.
	Err     error
	CMErr   error
	SnapErr error
	AdmErr  error
}

// String renders one trace line ("cfg → tp via move").
func (e Event) String() string {
	switch {
	case e.Idle:
		s := fmt.Sprintf("period %d: %v idle (%d commits), holding", e.Period, e.Params, e.Commits)
		if e.BrownoutChanged {
			s += fmt.Sprintf(", brownout %v -> %v", e.Brownout, e.NextBrownout)
		}
		return s
	case e.Err != nil:
		return fmt.Sprintf("period %d: %v %.0f txs/s, move %v failed: %v", e.Period, e.Params, e.Throughput, e.Move, e.Err)
	default:
		m := e.Move.String()
		if e.Reversed {
			m = "-" + m
		}
		s := fmt.Sprintf("period %d: %v %.0f txs/s, move %v -> %v", e.Period, e.Params, e.Throughput, m, e.Next)
		if e.LatSamples > 0 {
			s += fmt.Sprintf(", lat p50=%v p99=%v (%d reqs)", e.LatP50, e.LatP99, e.LatSamples)
		}
		if e.CMSwitched {
			s += fmt.Sprintf(", cm %v -> %v", e.CM, e.NextCM)
		}
		if e.CMErr != nil {
			s += fmt.Sprintf(" (cm switch failed: %v)", e.CMErr)
		}
		if e.BudgetChanged {
			s += fmt.Sprintf(", version budget %d -> %d (%d too-old)", e.Budget, e.NextBudget, e.SnapTooOld)
		}
		if e.AdmChanged {
			s += fmt.Sprintf(", admission %d -> %d", e.AdmWidth, e.NextAdmWidth)
		}
		if e.AdmErr != nil {
			s += fmt.Sprintf(" (admission move failed: %v)", e.AdmErr)
		}
		if e.BrownoutChanged {
			s += fmt.Sprintf(", brownout %v -> %v", e.Brownout, e.NextBrownout)
		}
		return s
	}
}

// RuntimeConfig parameterizes a Runtime.
type RuntimeConfig struct {
	// Tuner configures the hill-climbing engine. A zero Initial is
	// replaced by the system's current parameters at Start.
	Tuner Config
	// Period is one throughput sample interval (the paper measures "over
	// a period of approximately one second"). Default 1s.
	Period time.Duration
	// Samples is the number of Period-long samples per tuning decision;
	// the maximum is kept (Section 4.3's max-of-3). Default 3.
	Samples int
	// MinPeriodCommits is the pause-on-idle threshold: when fewer commits
	// than this land during a whole period, the runtime discards the
	// measurement and holds the configuration — an idle application must
	// not teach the tuner that its current configuration is bad. Default 1
	// (pause only when fully quiescent).
	MinPeriodCommits uint64
	// Trace, when non-nil, receives one Event per period. Sends never
	// block: if the channel is full the event is dropped (the controller
	// must not stall behind a slow observer). Size the buffer to the run
	// when completeness matters.
	Trace chan<- Event
	// TraceCap, when positive, bounds the runtime's retained in-memory
	// trace to the most recent TraceCap events (oldest dropped). Long-
	// running servers must set it: at one event per period the unbounded
	// default grows forever. Zero keeps everything (experiment runs that
	// read the full path afterwards).
	TraceCap int

	// CM configures the adaptive contention-management controller. With
	// CM.Enable the System must also implement CMSystem: each period the
	// controller reads the same measurement as the geometry tuner and
	// may switch the live conflict-resolution policy (cm.Kind ladder)
	// when the abort ratio or throughput says the current one lost.
	CM CMConfig

	// Snapshot configures the version-budget controller. With
	// Snapshot.Enable the System must also implement SnapshotSystem with
	// the MVCC sidecar attached: each period the controller meters
	// snapshot-too-old aborts and sidecar reads and walks the per-shard
	// version budget so buffer memory tracks the live read/write mix.
	Snapshot SnapshotConfig

	// Admission configures the proactive admission-control controller.
	// With Admission.Enable, Admission.Gate must carry the live
	// update-admission token bucket (it is not part of the System): each
	// period the controller reads the same abort-ratio measurement and
	// walks the gate's width — shrink when aborts climb, probe wider
	// when calm.
	Admission AdmissionConfig

	// Brownout configures the overload-shed controller. With
	// Brownout.Enable, Brownout.Brown must carry the server's ladder and
	// Latency should carry the request histogram (without it the ladder
	// only ever sees calm): each period the controller feeds the ladder
	// the period's p99 and sample count, stepping it up under sustained
	// SLO violation and back down under sustained calm — including idle
	// periods, which every other controller skips.
	Brownout BrownoutConfig

	// Latency, when non-nil, is the server's request-latency histogram
	// (nanoseconds). The runtime snapshots it once per period and
	// carries the period's p50/p99 deltas on every Event — the measured
	// service-level consequence of each tuning move, next to the raw
	// throughput the climbers steer on.
	Latency *obs.Histogram

	// Now and After inject a clock for deterministic tests. Defaults:
	// time.Now and time.After.
	Now   func() time.Time
	After func(time.Duration) <-chan time.Time
}

func (c RuntimeConfig) withDefaults() RuntimeConfig {
	if c.Period <= 0 {
		c.Period = time.Second
	}
	if c.Samples <= 0 {
		c.Samples = 3
	}
	if c.MinPeriodCommits == 0 {
		c.MinPeriodCommits = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.After == nil {
		c.After = time.After
	}
	return c
}

// Runtime is the online auto-tuning controller (the paper's Section 4
// "dynamic tuning" running inside the system rather than in a benchmark
// harness): a background goroutine meters live commit throughput from the
// system's aggregate counters, feeds the hill-climbing Tuner one
// measurement per period, and applies the chosen moves to the live system
// via Reconfigure.
//
// Start launches the controller; Stop halts it and waits for it to exit.
// A stopped Runtime can be started again and continues from the tuner's
// accumulated memory.
type Runtime struct {
	sys System
	cfg RuntimeConfig

	mu       sync.Mutex // guards tuner, trace, running/starting/stopping/stop/done, cmt/cmLive
	tuner    *Tuner
	trace    []Event
	periods  int
	running  bool
	starting bool // Start in progress: installing the initial configuration
	stopping bool // Stop in progress: stop closed, controller still draining
	stop     chan struct{}
	done     chan struct{}

	// Contention-management controller (nil when disabled): cmSys is the
	// System's CMSystem view, cmt the ladder climber, cmLive the policy
	// the runtime believes is installed.
	cmSys  CMSystem
	cmt    *cmTuner
	cmLive cm.Kind

	// Snapshot version-budget controller (nil when disabled): snapSys is
	// the System's SnapshotSystem view, snapT the rule engine; the
	// too-old/read baselines live in the controller goroutine.
	snapSys SnapshotSystem
	snapT   *snapTuner

	// Admission-width controller (nil when disabled): admGate is the
	// server's token bucket, admT the rule engine.
	admGate AdmissionGate
	admT    *admTuner

	// Overload-shed ladder (nil when disabled); the runtime is its
	// single stepper.
	brown *resilience.Brownout
}

// NewRuntime builds a controller over sys. The tuner starts at
// cfg.Tuner.Initial, or at the system's current parameters when unset.
func NewRuntime(sys System, cfg RuntimeConfig) *Runtime {
	cfg = cfg.withDefaults()
	if cfg.Tuner.Initial == (core.Params{}) {
		cfg.Tuner.Initial = sys.Params()
	}
	r := &Runtime{sys: sys, cfg: cfg, tuner: New(cfg.Tuner)}
	if cs, ok := sys.(CMSystem); ok {
		// Report the system's actual policy even with the controller
		// off; the controller itself only engages with CM.Enable.
		r.cmLive = cs.CM()
		if cfg.CM.Enable {
			r.cmSys = cs
			r.cmt = newCMTuner(cfg.CM, r.cmLive)
		}
	}
	if ss, ok := sys.(SnapshotSystem); ok && cfg.Snapshot.Enable && ss.SnapshotsEnabled() {
		r.snapSys = ss
		r.snapT = newSnapTuner(cfg.Snapshot, ss.VersionBudget())
	}
	if cfg.Admission.Enable && cfg.Admission.Gate != nil {
		r.admGate = cfg.Admission.Gate
		r.admT = newAdmTuner(cfg.Admission, r.admGate.Width())
	}
	if cfg.Brownout.Enable && cfg.Brownout.Brown != nil {
		r.brown = cfg.Brownout.Brown
	}
	return r
}

// Start launches the controller goroutine. It first reconfigures the
// system to the tuner's current configuration if the two disagree (e.g. a
// non-zero Tuner.Initial differing from the system's construction
// parameters).
func (r *Runtime) Start() error {
	r.mu.Lock()
	if r.running || r.starting {
		r.mu.Unlock()
		return fmt.Errorf("tuning: runtime already running")
	}
	if r.cfg.CM.Enable && r.cmSys == nil {
		r.mu.Unlock()
		return fmt.Errorf("tuning: CM controller enabled but the system does not implement CMSystem")
	}
	if r.cfg.Snapshot.Enable && r.snapSys == nil {
		r.mu.Unlock()
		return fmt.Errorf("tuning: snapshot controller enabled but the system has no MVCC sidecar (SnapshotSystem with Snapshots on)")
	}
	if r.cfg.Admission.Enable && r.admGate == nil {
		r.mu.Unlock()
		return fmt.Errorf("tuning: admission controller enabled but AdmissionConfig.Gate is nil")
	}
	if r.cfg.Brownout.Enable && r.brown == nil {
		r.mu.Unlock()
		return fmt.Errorf("tuning: brownout controller enabled but BrownoutConfig.Brown is nil")
	}
	// Claim the start before the unlocked Reconfigure below: a concurrent
	// Start must fail here rather than race in — its stale Reconfigure
	// could otherwise revert parameters the winner's controller has
	// already moved past.
	r.starting = true
	cur := r.tuner.Current()
	r.mu.Unlock()

	// The initial Reconfigure runs outside r.mu: it freezes the world and
	// can block behind in-flight transactions, and Running/Best/Trace/Stop
	// must stay responsive meanwhile (same invariant as step).
	var err error
	if cur != r.sys.Params() {
		if e := r.sys.Reconfigure(cur); e != nil {
			err = fmt.Errorf("tuning: installing initial configuration %v: %w", cur, e)
		}
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	r.starting = false
	if err != nil {
		return err
	}
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	r.running = true
	go r.run(r.stop, r.done)
	return nil
}

// Stop halts the controller and waits for the goroutine to exit. Safe to
// call multiple times and on a never-started runtime. The runtime stays
// `running` (a concurrent Start fails) until the controller has actually
// exited: clearing the flag before the drain would let a Start race in a
// second controller goroutine against the old one mid-period.
func (r *Runtime) Stop() {
	r.mu.Lock()
	if !r.running {
		r.mu.Unlock()
		return
	}
	if !r.stopping {
		r.stopping = true
		close(r.stop)
	}
	done := r.done
	r.mu.Unlock()
	<-done
	r.mu.Lock()
	if r.done == done {
		// Still our generation (a concurrent Stop may have completed the
		// transition already, and a subsequent Start may have begun a new
		// one — never clobber that).
		r.running = false
		r.stopping = false
	}
	r.mu.Unlock()
}

// Running reports whether the controller goroutine is active.
func (r *Runtime) Running() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.running
}

// Best returns the best configuration seen so far and its throughput.
// Safe to call while the runtime is running.
func (r *Runtime) Best() (core.Params, float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tuner.Best()
}

// Current returns the configuration the tuner is currently measuring.
func (r *Runtime) Current() core.Params {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tuner.Current()
}

// Periods returns the total number of tuning periods observed, including
// any whose events TraceCap has already evicted from Trace.
func (r *Runtime) Periods() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.periods
}

// CM returns the contention-management policy the runtime believes is
// installed (the system's initial policy when the controller is off).
func (r *Runtime) CM() cm.Kind {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cmLive
}

// CMSwitches returns how many live policy switches the controller decided
// (zero when disabled).
func (r *Runtime) CMSwitches() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cmt == nil {
		return 0
	}
	return r.cmt.switches()
}

// BudgetMoves returns how many version-budget moves the snapshot
// controller decided (zero when disabled).
func (r *Runtime) BudgetMoves() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.snapT == nil {
		return 0
	}
	return r.snapT.switches()
}

// VersionBudget returns the per-shard version budget the snapshot
// controller believes is installed (zero when disabled).
func (r *Runtime) VersionBudget() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.snapT == nil {
		return 0
	}
	return r.snapT.budget
}

// AdmissionMoves returns how many gate-width moves the admission
// controller decided (zero when disabled).
func (r *Runtime) AdmissionMoves() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.admT == nil {
		return 0
	}
	return r.admT.switches()
}

// AdmissionWidth returns the gate width the admission controller
// believes is installed (zero when disabled).
func (r *Runtime) AdmissionWidth() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.admT == nil {
		return 0
	}
	return r.admT.width
}

// Trace returns a copy of the per-period event log (the most recent
// TraceCap events when a cap is configured).
func (r *Runtime) Trace() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.trace))
	copy(out, r.trace)
	return out
}

// run is the controller loop. stop/done are captured at Start so a
// concurrent Stop+Start pair cannot cross wires.
func (r *Runtime) run(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	lastC, lastA := r.sys.CommitAbortCounts()
	var lastTooOld, lastReads uint64
	if r.snapSys != nil {
		lastTooOld, lastReads, _, _ = r.snapSys.SnapshotCounts()
	}
	var latBase obs.Snapshot
	if r.cfg.Latency != nil {
		latBase = r.cfg.Latency.Snapshot()
	}
	lastT := r.cfg.Now()
	for {
		maxTp := 0.0
		var commits, aborts uint64
		for s := 0; s < r.cfg.Samples; s++ {
			select {
			case <-stop:
				return
			case <-r.cfg.After(r.cfg.Period):
			}
			c, a := r.sys.CommitAbortCounts()
			t := r.cfg.Now()
			dc, da := c-lastC, a-lastA
			secs := t.Sub(lastT).Seconds()
			lastC, lastA, lastT = c, a, t
			commits += dc
			aborts += da
			if secs > 0 {
				if tp := float64(dc) / secs; tp > maxTp {
					maxTp = tp
				}
			}
		}
		var snapTooOld, snapReads uint64
		if r.snapSys != nil {
			to, rd, _, _ := r.snapSys.SnapshotCounts()
			snapTooOld, snapReads = to-lastTooOld, rd-lastReads
		}
		var lat obs.Snapshot
		if r.cfg.Latency != nil {
			cur := r.cfg.Latency.Snapshot()
			lat = cur.Sub(&latBase)
		}
		r.step(maxTp, commits, aborts, snapTooOld, snapReads, &lat)
		// Re-baseline after the decision: step can block arbitrarily long
		// in Reconfigure's world-freeze, during which commits are
		// suppressed. Without a fresh baseline the new configuration's
		// first sample window would include that pause and read
		// systematically low — every move would look like a throughput
		// drop, spuriously triggering the tuner's reverse/forbid rules.
		// The latency baseline follows the same rule: requests stalled
		// behind the freeze must not be charged to the next period.
		lastC, lastA = r.sys.CommitAbortCounts()
		if r.snapSys != nil {
			lastTooOld, lastReads, _, _ = r.snapSys.SnapshotCounts()
		}
		if r.cfg.Latency != nil {
			latBase = r.cfg.Latency.Snapshot()
		}
		lastT = r.cfg.Now()
	}
}

// step makes one tuning decision from a period's measurement and applies
// it to the live system.
func (r *Runtime) step(maxTp float64, commits, aborts, snapTooOld, snapReads uint64, lat *obs.Snapshot) {
	r.mu.Lock()
	ev := Event{
		Period:     r.periods,
		Params:     r.tuner.Current(),
		Throughput: maxTp,
		Commits:    commits,
		Aborts:     aborts,
		CM:         r.cmLive,
		NextCM:     r.cmLive,
	}
	if lat.Count > 0 {
		ev.LatP50 = time.Duration(lat.Quantile(0.50))
		ev.LatP99 = time.Duration(lat.Quantile(0.99))
		ev.LatSamples = lat.Count
	}
	if r.snapT != nil {
		ev.SnapTooOld, ev.SnapReads = snapTooOld, snapReads
		ev.Budget, ev.NextBudget = r.snapT.budget, r.snapT.budget
	}
	if r.admT != nil {
		ev.AdmWidth, ev.NextAdmWidth = r.admT.width, r.admT.width
	}
	if r.brown != nil {
		// The ladder steps on EVERY period, idle ones included: idle is
		// exactly the calm evidence that walks an escalated server back.
		// Step applies the level atomically itself (the request paths read
		// it lock-free), so unlike the other dimensions there is nothing
		// to install outside the lock and no error path to roll back.
		ev.Brownout = r.brown.Level()
		ev.NextBrownout, ev.BrownoutChanged = r.brown.Step(ev.LatP99, ev.LatSamples)
	}
	r.periods++
	if commits < r.cfg.MinPeriodCommits {
		// Pause on idle: hold the configuration and teach the tuner
		// nothing — near-zero offered load says nothing about the
		// configuration's quality.
		ev.Idle = true
		ev.Next = ev.Params
		r.appendTrace(ev)
		r.mu.Unlock()
		r.emit(ev)
		return
	}
	next, move := r.tuner.Step(maxTp)
	ev.Move = move
	ev.Next = next
	if tr := r.tuner.Trace(); len(tr) > 0 {
		ev.Reversed = tr[len(tr)-1].Reversed
	}
	reconfigure := next != ev.Params
	if r.cmt != nil {
		// The policy controller reads the same measurement; its switch
		// (if any) is applied below, outside the lock, like Reconfigure.
		// A period whose geometry is about to move is flagged unsettled
		// so the rung memory is not polluted by geometry churn.
		ev.NextCM, ev.CMSwitched = r.cmt.step(maxTp, commits, aborts, !reconfigure)
	}
	if r.snapT != nil {
		// The budget controller is independent of geometry churn: a
		// too-old abort means live snapshots lost versions no geometry
		// move restores, and the knob applies with no world freeze.
		ev.NextBudget, ev.BudgetChanged = r.snapT.step(snapTooOld, snapReads)
	}
	if r.admT != nil {
		// The admission controller walks the gate width from the same
		// abort-ratio measurement; the gate lives outside the STM, so
		// the move needs no world freeze either.
		ev.NextAdmWidth, ev.AdmChanged = r.admT.step(commits, aborts)
	}
	r.mu.Unlock()

	// Reconfigure outside r.mu: it freezes the world and can block behind
	// in-flight transactions, and Stop/Best/Trace must stay responsive.
	if reconfigure {
		if err := r.sys.Reconfigure(next); err != nil {
			ev.Err = err
		}
	}
	if ev.CMSwitched {
		if err := r.cmSys.SetCM(ev.NextCM, r.cfg.CM.Knobs); err != nil {
			ev.CMErr = err
		}
	}
	if ev.BudgetChanged {
		if err := r.snapSys.SetVersionBudget(ev.NextBudget); err != nil {
			ev.SnapErr = err
		}
	}
	if ev.AdmChanged {
		if err := r.admGate.SetWidth(ev.NextAdmWidth); err != nil {
			ev.AdmErr = err
		}
	}
	r.mu.Lock()
	if ev.CMSwitched {
		if ev.CMErr == nil {
			r.cmLive = ev.NextCM
		} else {
			// The switch never landed: roll the ladder climber back so
			// its rung memory keeps tracking the policy actually live.
			r.cmt.revert()
		}
	}
	if ev.BudgetChanged && ev.SnapErr != nil {
		// The budget never landed: resynchronize the rule engine with
		// whatever the system actually runs.
		r.snapT.budget = r.snapSys.VersionBudget()
		r.snapT.moves--
	}
	if ev.AdmChanged && ev.AdmErr != nil {
		// The width never landed: resynchronize with the live gate.
		r.admT.width = r.admGate.Width()
		r.admT.moves--
	}
	r.appendTrace(ev)
	r.mu.Unlock()
	r.emit(ev)
}

// appendTrace records an event, enforcing TraceCap. Caller holds r.mu.
func (r *Runtime) appendTrace(ev Event) {
	r.trace = append(r.trace, ev)
	if limit := r.cfg.TraceCap; limit > 0 && len(r.trace) > limit {
		n := copy(r.trace, r.trace[len(r.trace)-limit:])
		r.trace = r.trace[:n]
	}
}

// emit publishes an event on the trace channel without ever blocking.
func (r *Runtime) emit(ev Event) {
	if r.cfg.Trace == nil {
		return
	}
	select {
	case r.cfg.Trace <- ev:
	default:
	}
}
