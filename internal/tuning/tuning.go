// Package tuning implements the paper's dynamic tuning strategy (Section
// 4.2): "a hill climbing algorithm with a memory and forbidden areas" over
// the triple (#locks, #shifts, h).
//
// The tuner is a pure decision engine: callers feed it one throughput
// measurement per period (the maximum of three samples, as in Section 4.3)
// and apply the configuration it returns, typically via core.TM's
// Reconfigure. Keeping the engine free of clocks and goroutines makes the
// strategy deterministic under a seeded generator and directly testable.
//
// The eight moves of the paper:
//
//	1/2: double / halve the number of locks
//	3/4: increase / decrease the number of shifts
//	5/6: double / halve the size of the hierarchical array
//	7:   nop
//	8:   reverse to the configuration with the maximum throughput
//
// Rules, quoting Section 4.2: a move is verified during the next period;
// if performance decreased by more than 2% — or the configuration is more
// than 10% below the best seen — the tuner reverses to the best
// configuration. A drop of more than 10% after changing shifts or the
// hierarchical array from x to y forbids moving beyond x in that
// direction. Moves are chosen randomly among moves 1–6 leading to
// so-far-uncharted configurations; with none available the tuner reverses
// to the best configuration, and at the best configuration it performs a
// nop. If throughput drops below the second best configuration's, the
// tuner switches to that configuration.
package tuning

import (
	"fmt"

	"tinystm/internal/core"
	"tinystm/internal/rng"
)

// Move identifies one of the paper's eight tuning moves (plus the
// second-best switch, which the paper describes but does not number).
type Move int

// Move values match the paper's numbering.
const (
	MoveNone        Move = 0
	MoveDoubleLocks Move = 1
	MoveHalveLocks  Move = 2
	MoveIncShifts   Move = 3
	MoveDecShifts   Move = 4
	MoveDoubleHier  Move = 5
	MoveHalveHier   Move = 6
	MoveNop         Move = 7
	MoveReverse     Move = 8
	// MoveSecondBest switches to the second-best configuration when the
	// current best's throughput degrades below it.
	MoveSecondBest Move = 9
)

// String renders the paper's move numbers.
func (m Move) String() string {
	switch m {
	case MoveNone:
		return "start"
	case MoveNop:
		return "7 (nop)"
	case MoveReverse:
		return "8 (reverse)"
	case MoveSecondBest:
		return "switch-2nd"
	default:
		return fmt.Sprintf("%d", int(m))
	}
}

// Bounds limits the explorable configuration space.
type Bounds struct {
	MinLocks, MaxLocks uint64 // powers of two
	MinShifts          uint
	MaxShifts          uint
	MinHier, MaxHier   uint64 // powers of two; MinHier >= 1
}

// DefaultBounds covers the region the paper's sweeps explore.
func DefaultBounds() Bounds {
	return Bounds{
		MinLocks: 1 << 4, MaxLocks: 1 << 24,
		MinShifts: 0, MaxShifts: 8,
		MinHier: 1, MaxHier: 256,
	}
}

// Config parameterizes a Tuner.
type Config struct {
	// Initial is the starting configuration (the paper starts production
	// use at locks=2^16, shifts=0, h=1; the evaluation starts at 2^8).
	Initial core.Params
	Bounds  Bounds
	Seed    uint64
	// DropReverse is the fractional decrease versus the previous
	// configuration that triggers a reverse (paper: 0.02).
	DropReverse float64
	// DropBest is the fractional gap below the best configuration that
	// triggers a reverse (paper: 0.10).
	DropBest float64
	// DropForbid is the fractional decrease that forbids moving further
	// in the same direction (paper: 0.10).
	DropForbid float64
}

func (c Config) withDefaults() Config {
	if c.Bounds == (Bounds{}) {
		c.Bounds = DefaultBounds()
	}
	if c.DropReverse == 0 {
		c.DropReverse = 0.02
	}
	if c.DropBest == 0 {
		c.DropBest = 0.10
	}
	if c.DropForbid == 0 {
		c.DropForbid = 0.10
	}
	return c
}

// TraceEntry records one tuning period for the Figure 10/11 plots.
type TraceEntry struct {
	Index      int
	Params     core.Params
	Throughput float64
	// Move is the move that produced the *next* configuration; Reversed
	// marks the paper's "-x" notation (reverse followed by move x).
	Move     Move
	Reversed bool
	Next     core.Params
}

// Tuner is the hill-climbing engine. Not safe for concurrent use.
type Tuner struct {
	cfg Config
	rng *rng.Rand

	cur     core.Params
	prevTp  float64 // throughput measured at the configuration we moved from
	hasPrev bool
	last    Move // move that led to cur

	// memory: most recent throughput per visited configuration.
	memory map[core.Params]float64

	// forbidden areas (dynamic clamps tightened on big drops).
	minShifts, maxShifts uint
	minHier, maxHier     uint64

	trace []TraceEntry
	steps int
}

// New builds a tuner starting at cfg.Initial.
func New(cfg Config) *Tuner {
	cfg = cfg.withDefaults()
	t := &Tuner{
		cfg:       cfg,
		rng:       rng.New(cfg.Seed),
		cur:       cfg.Initial,
		memory:    make(map[core.Params]float64),
		minShifts: cfg.Bounds.MinShifts,
		maxShifts: cfg.Bounds.MaxShifts,
		minHier:   cfg.Bounds.MinHier,
		maxHier:   cfg.Bounds.MaxHier,
	}
	return t
}

// Current returns the configuration the tuner wants measured next.
func (t *Tuner) Current() core.Params { return t.cur }

// Best returns the best configuration seen and its recorded throughput.
func (t *Tuner) Best() (core.Params, float64) {
	best, _, tp, _ := t.ranked()
	return best, tp
}

// Trace returns the per-period log (Figures 10 and 11).
func (t *Tuner) Trace() []TraceEntry { return t.trace }

// ranked scans the memory for the best and second-best configurations.
func (t *Tuner) ranked() (best, second core.Params, bestTp, secondTp float64) {
	first := true
	hasSecond := false
	for p, tp := range t.memory {
		switch {
		case first || tp > bestTp:
			if !first {
				second, secondTp, hasSecond = best, bestTp, true
			}
			best, bestTp = p, tp
			first = false
		case !hasSecond || tp > secondTp:
			second, secondTp, hasSecond = p, tp, true
		}
	}
	if !hasSecond {
		second, secondTp = best, bestTp
	}
	return best, second, bestTp, secondTp
}

// apply returns p after applying move m (caller checked legality).
func apply(p core.Params, m Move) core.Params {
	switch m {
	case MoveDoubleLocks:
		p.Locks *= 2
	case MoveHalveLocks:
		p.Locks /= 2
	case MoveIncShifts:
		p.Shifts++
	case MoveDecShifts:
		p.Shifts--
	case MoveDoubleHier:
		p.Hier *= 2
	case MoveHalveHier:
		p.Hier /= 2
	}
	return p
}

// legal reports whether move m from p stays inside bounds and outside
// forbidden areas.
func (t *Tuner) legal(p core.Params, m Move) bool {
	b := t.cfg.Bounds
	switch m {
	case MoveDoubleLocks:
		return p.Locks*2 <= b.MaxLocks
	case MoveHalveLocks:
		return p.Locks/2 >= b.MinLocks && p.Locks/2 >= t.minHier && p.Locks/2 >= p.Hier
	case MoveIncShifts:
		return p.Shifts+1 <= t.maxShifts
	case MoveDecShifts:
		return p.Shifts > t.minShifts
	case MoveDoubleHier:
		return p.Hier*2 <= t.maxHier && p.Hier*2 <= p.Locks
	case MoveHalveHier:
		return p.Hier > 1 && p.Hier/2 >= t.minHier
	default:
		return false
	}
}

// unchartedMoves lists moves 1-6 from p that lead to configurations not
// yet in memory.
func (t *Tuner) unchartedMoves(p core.Params) []Move {
	var out []Move
	for m := MoveDoubleLocks; m <= MoveHalveHier; m++ {
		if !t.legal(p, m) {
			continue
		}
		if _, seen := t.memory[apply(p, m)]; seen {
			continue
		}
		out = append(out, m)
	}
	return out
}

// forbidIfBigDrop tightens the dynamic clamps after a >DropForbid drop on
// a shifts or hierarchy move from x to y: never again beyond x.
func (t *Tuner) forbidIfBigDrop(tp float64) {
	if !t.hasPrev || t.prevTp <= 0 {
		return
	}
	if tp >= t.prevTp*(1-t.cfg.DropForbid) {
		return
	}
	switch t.last {
	case MoveIncShifts:
		if x := t.cur.Shifts - 1; x < t.maxShifts {
			t.maxShifts = x
		}
	case MoveDecShifts:
		if x := t.cur.Shifts + 1; x > t.minShifts {
			t.minShifts = x
		}
	case MoveDoubleHier:
		if x := t.cur.Hier / 2; x < t.maxHier {
			t.maxHier = x
		}
	case MoveHalveHier:
		if x := t.cur.Hier * 2; x > t.minHier {
			t.minHier = x
		}
	}
}

// Step records the throughput measured at the current configuration and
// returns the next configuration together with the move chosen.
func (t *Tuner) Step(throughput float64) (core.Params, Move) {
	measured := t.cur
	var prevBest core.Params
	hadMemory := len(t.memory) > 0
	if hadMemory {
		prevBest, _, _, _ = t.ranked()
	}
	t.memory[measured] = throughput
	t.forbidIfBigDrop(throughput)
	best, _, bestTp, _ := t.ranked()

	reversed := false
	from := t.cur
	var move Move

	if hadMemory && measured == prevBest && measured != best {
		// The best configuration degraded below the old second best:
		// switch to the new best automatically (Section 4.2's "if the
		// throughput drops below that of the second best configuration,
		// we automatically switch to that configuration").
		move = MoveSecondBest
		t.cur = best
		t.prevTp = bestTp
		t.hasPrev = true
		return t.finishStep(measured, throughput, move, false)
	}

	badVsPrev := t.hasPrev && t.prevTp > 0 && throughput < t.prevTp*(1-t.cfg.DropReverse)
	farFromBest := bestTp > 0 && throughput < bestTp*(1-t.cfg.DropBest)

	if (badVsPrev || farFromBest) && measured != best {
		// Reverse to the best configuration, then immediately take a new
		// exploratory move from there (the paper's "-x" bundling).
		reversed = true
		from = best
	}

	if moves := t.unchartedMoves(from); len(moves) > 0 {
		move = moves[t.rng.Intn(len(moves))]
		t.cur = apply(from, move)
		t.prevTp = t.memory[from]
		t.hasPrev = true
	} else if reversed || from != best {
		// Nothing uncharted remains (or everything is forbidden):
		// reverse to the best configuration and hold (a bare move 8).
		reversed = reversed || from != best
		move = MoveReverse
		t.cur = best
		t.prevTp = bestTp
		t.hasPrev = true
	} else {
		move = MoveNop
		t.cur = from
		t.prevTp = throughput
		t.hasPrev = true
	}
	return t.finishStep(measured, throughput, move, reversed)
}

func (t *Tuner) finishStep(measured core.Params, tp float64, move Move, reversed bool) (core.Params, Move) {
	t.last = move
	t.trace = append(t.trace, TraceEntry{
		Index:      t.steps,
		Params:     measured,
		Throughput: tp,
		Move:       move,
		Reversed:   reversed,
		Next:       t.cur,
	})
	t.steps++
	return t.cur, move
}
