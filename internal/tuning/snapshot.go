package tuning

// SnapshotSystem is the optional extension of System for STMs with an
// MVCC snapshot sidecar whose per-shard version budget can be walked
// live. *core.TM (built with Config.Snapshots) satisfies it; enable the
// controller with RuntimeConfig.Snapshot.Enable.
type SnapshotSystem interface {
	System
	// SnapshotsEnabled reports whether the sidecar is attached at all.
	SnapshotsEnabled() bool
	// SnapshotCounts returns monotonically increasing aggregates: too-old
	// aborts, sidecar-served snapshot reads, versions published and
	// versions trimmed. Must be O(1) like CommitAbortCounts.
	SnapshotCounts() (tooOld, sidecarReads, published, trimmed uint64)
	// VersionBudget returns the current per-shard version budget.
	VersionBudget() int
	// SetVersionBudget replaces it on the live system (no world freeze).
	SetVersionBudget(int) error
}

// SnapshotConfig parameterizes the version-budget controller: the paper's
// dynamic-tuning loop applied to the snapshot subsystem's one knob. Each
// period it reads the same measurement cadence as the geometry tuner and
// walks the per-shard version budget:
//
//   - snapshot-too-old aborts during the period mean live snapshots fell
//     off the retained horizon — the buffer is too small for the current
//     scan length / write rate mix: double the budget (up to Max);
//   - no too-old aborts AND no sidecar reads for ShrinkAfter consecutive
//     periods mean the workload turned write-heavy with no snapshot
//     traffic to serve — halve the budget (down to Min), handing the
//     memory back. Periods with sidecar reads hold: a budget that is
//     serving scans without too-old aborts is exactly right, and
//     shrinking it would oscillate.
type SnapshotConfig struct {
	// Enable turns the controller on. The Runtime's System must then
	// implement SnapshotSystem with snapshots attached (Start fails
	// otherwise).
	Enable bool
	// Min and Max bound the walk. Defaults 64 and 65536.
	Min, Max int
	// ShrinkAfter is how many consecutive calm periods (no too-old
	// aborts, no sidecar reads) trigger a halving. Default 4.
	ShrinkAfter int
	// HoldPeriods is how many periods a freshly moved budget runs
	// unchallenged. Default 2.
	HoldPeriods int
}

func (c SnapshotConfig) withDefaults() SnapshotConfig {
	if c.Min <= 0 {
		c.Min = 64
	}
	if c.Max <= 0 {
		c.Max = 65536
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.ShrinkAfter <= 0 {
		c.ShrinkAfter = 4
	}
	if c.HoldPeriods <= 0 {
		c.HoldPeriods = 2
	}
	return c
}

// snapTuner is the controller state: a deterministic rule engine like
// cmTuner, so the fake-clock runtime tests cover it end to end.
type snapTuner struct {
	cfg    SnapshotConfig
	budget int
	calm   int // consecutive periods with no too-old aborts and no reads
	hold   int
	moves  int
}

func newSnapTuner(cfg SnapshotConfig, budget int) *snapTuner {
	cfg = cfg.withDefaults()
	if budget < cfg.Min {
		budget = cfg.Min
	}
	if budget > cfg.Max {
		budget = cfg.Max
	}
	return &snapTuner{cfg: cfg, budget: budget}
}

// switches returns how many budget moves the controller decided.
func (t *snapTuner) switches() int { return t.moves }

// step consumes one period's deltas and returns the budget for the next
// period (changed reports a move).
func (t *snapTuner) step(tooOld, sidecarReads uint64) (next int, changed bool) {
	if tooOld == 0 && sidecarReads == 0 {
		t.calm++
	} else {
		t.calm = 0
	}
	if t.hold > 0 {
		t.hold--
		return t.budget, false
	}
	switch {
	case tooOld > 0 && t.budget < t.cfg.Max:
		// Live snapshots are falling off the horizon: grow.
		t.budget *= 2
		if t.budget > t.cfg.Max {
			t.budget = t.cfg.Max
		}
	case tooOld == 0 && t.calm >= t.cfg.ShrinkAfter && t.budget > t.cfg.Min:
		// No snapshot traffic at all for a while: hand memory back.
		t.budget /= 2
		if t.budget < t.cfg.Min {
			t.budget = t.cfg.Min
		}
		t.calm = 0
	default:
		return t.budget, false
	}
	t.hold = t.cfg.HoldPeriods
	t.moves++
	return t.budget, true
}
