package tuning

import (
	"testing"
	"time"
)

func TestSnapTunerRules(t *testing.T) {
	st := newSnapTuner(SnapshotConfig{Min: 64, Max: 1024, ShrinkAfter: 2, HoldPeriods: 1}, 64)
	// Too-old aborts: grow, then hold one period.
	if next, ch := st.step(5, 100); !ch || next != 128 {
		t.Fatalf("grow step = (%d, %v), want (128, true)", next, ch)
	}
	if next, ch := st.step(5, 100); ch || next != 128 {
		t.Fatalf("hold step = (%d, %v), want (128, false)", next, ch)
	}
	if next, ch := st.step(5, 100); !ch || next != 256 {
		t.Fatalf("second grow = (%d, %v), want (256, true)", next, ch)
	}
	// Serving reads with no too-old aborts: exactly right, hold forever.
	st.step(0, 50)
	for i := 0; i < 5; i++ {
		if next, ch := st.step(0, 50); ch || next != 256 {
			t.Fatalf("serving step = (%d, %v), want (256, false)", next, ch)
		}
	}
	// Fully calm (no reads either): shrink after ShrinkAfter periods.
	st.step(0, 0)
	if next, ch := st.step(0, 0); !ch || next != 128 {
		t.Fatalf("shrink step = (%d, %v), want (128, true)", next, ch)
	}
	// Clamped at Max and Min.
	top := newSnapTuner(SnapshotConfig{Min: 64, Max: 100, HoldPeriods: 1}, 64)
	if next, _ := top.step(1, 0); next != 100 {
		t.Fatalf("grow past Max = %d, want clamp at 100", next)
	}
	top.step(1, 0)
	if next, ch := top.step(1, 0); ch || next != 100 {
		t.Fatalf("grow at Max = (%d, %v), want hold", next, ch)
	}
}

// snapEnv extends virtualEnv with a synthetic snapshot subsystem: during
// the scan-heavy phase, snapshots keep falling off the horizon (too-old
// aborts accrue) until the budget reaches enough, and sidecar reads flow;
// after the flip to the write-heavy phase both signals stop.
type snapEnv struct {
	*virtualEnv
	flipTick int // phase boundary, in After ticks

	budget     int
	enough     int
	tooOld     uint64
	reads      uint64
	budgetSets int
}

func (e *snapEnv) SnapshotsEnabled() bool { return true }
func (e *snapEnv) VersionBudget() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.budget
}
func (e *snapEnv) SetVersionBudget(n int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.budget = n
	e.budgetSets++
	return nil
}
func (e *snapEnv) SnapshotCounts() (uint64, uint64, uint64, uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tooOld, e.reads, 0, 0
}

// After advances the fake clock via the embedded env, then accrues the
// phase's snapshot signals.
func (e *snapEnv) After(d time.Duration) <-chan time.Time {
	ch := e.virtualEnv.After(d)
	e.mu.Lock()
	if e.ticks <= e.flipTick {
		e.reads += 1000
		if e.budget < e.enough {
			e.tooOld += 10
		}
	}
	e.mu.Unlock()
	return ch
}

// TestRuntimeAdaptsVersionBudget is the deterministic fake-clock check of
// the acceptance criterion: the budget grows while the scan-heavy phase
// keeps producing snapshot-too-old aborts, and shrinks back once the
// phase flips write-heavy (no snapshot traffic at all).
func TestRuntimeAdaptsVersionBudget(t *testing.T) {
	const periods = 60
	env := &snapEnv{
		virtualEnv: newVirtualEnv(p(10, 0, 1), synthetic(p(10, 0, 1)), periods),
		flipTick:   periods / 2,
		budget:     64,
		enough:     512,
	}
	rt := NewRuntime(env, RuntimeConfig{
		Tuner:   Config{Initial: p(10, 0, 1), Seed: 3},
		Period:  time.Second,
		Samples: 1,
		Snapshot: SnapshotConfig{
			Enable: true, Min: 64, Max: 4096, ShrinkAfter: 3, HoldPeriods: 1,
		},
		Now:   env.Now,
		After: env.After,
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	<-env.reached
	rt.Stop()

	trace := rt.Trace()
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	// Phase 1: the budget must have grown to at least `enough` (the
	// synthetic surface keeps producing too-old aborts until then).
	maxBudget := 0
	for _, ev := range trace {
		if ev.Period <= env.flipTick && ev.NextBudget > maxBudget {
			maxBudget = ev.NextBudget
		}
	}
	if maxBudget < env.enough {
		t.Fatalf("scan-heavy phase grew the budget only to %d, want >= %d", maxBudget, env.enough)
	}
	// Phase 2: with snapshot traffic gone, the budget must shrink back
	// toward Min by the end of the run.
	final := trace[len(trace)-1].NextBudget
	if final > 64 {
		t.Fatalf("write-heavy phase ended with budget %d, want shrunk to 64", final)
	}
	if rt.BudgetMoves() == 0 || env.budgetSets == 0 {
		t.Fatalf("controller made no budget moves (moves=%d, sets=%d)", rt.BudgetMoves(), env.budgetSets)
	}
	if env.budget != final {
		t.Fatalf("system budget %d diverged from controller's %d", env.budget, final)
	}
}

// TestRuntimeSnapshotControllerRequiresSidecar pins the Start-time check.
func TestRuntimeSnapshotControllerRequiresSidecar(t *testing.T) {
	env := newVirtualEnv(p(10, 0, 1), synthetic(p(10, 0, 1)), 3)
	rt := NewRuntime(env, RuntimeConfig{
		Tuner:    Config{Initial: p(10, 0, 1)},
		Snapshot: SnapshotConfig{Enable: true},
		Now:      env.Now, After: env.After,
	})
	if err := rt.Start(); err == nil {
		t.Fatal("Start accepted the snapshot controller without a SnapshotSystem")
	}
}
