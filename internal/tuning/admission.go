package tuning

// AdmissionGate is the runtime's view of an update-admission token
// bucket whose width can be walked live. admission.Gate satisfies it.
// Unlike the CM and snapshot knobs the gate is not part of the STM — it
// sits in front of it, at the server door — so it is handed to the
// runtime through AdmissionConfig.Gate instead of being discovered on
// the System.
type AdmissionGate interface {
	// Width returns the current number of concurrent-updater tokens.
	Width() int
	// SetWidth replaces it on the live gate (floor 1; no world freeze).
	SetWidth(int) error
}

// AdmissionConfig parameterizes the proactive admission controller: the
// paper's dynamic-tuning loop applied to the one knob the contention
// managers cannot reach — how many update transactions run AT ALL.
//
// The cost-of-concurrency observation (Ravi): past a workload-dependent
// point, admitting more concurrent updaters reduces committed
// throughput, because each admitted transaction mostly manufactures
// aborts for the others. internal/cm reacts to those conflicts after
// the fact; this controller prevents them, bounding updaters at the
// door. Each period it reads the same (commits, aborts) measurement as
// the geometry tuner and walks the gate width:
//
//   - abort ratio at or above ShrinkAbortRatio: the updaters are eating
//     each other — halve the width (multiplicative decrease, floor Min);
//   - abort ratio at or below GrowAbortRatio for GrowAfter consecutive
//     periods: contention is gone — probe wider (additive increase,
//     width += max(1, width/4), up to Max) so a calmed workload gets its
//     concurrency back;
//   - in between: hold. A freshly moved width additionally runs
//     HoldPeriods unchallenged, because a move perturbs the measurement
//     it would be judged by.
//
// The floor is 1, never 0: admission control may serialize updates but
// must never starve them.
type AdmissionConfig struct {
	// Enable turns the controller on. Gate must then be non-nil (Start
	// fails otherwise).
	Enable bool
	// Gate is the live token bucket to walk (the server's gate).
	Gate AdmissionGate
	// Min and Max bound the walk. Defaults 1 and 1024.
	Min, Max int
	// ShrinkAbortRatio is the abort ratio aborts/(commits+aborts) at or
	// above which the width halves. Default 0.5.
	ShrinkAbortRatio float64
	// GrowAbortRatio is the ratio at or below which the controller
	// counts a calm period. Default 0.1.
	GrowAbortRatio float64
	// GrowAfter is how many consecutive calm periods trigger a widening
	// probe. Default 2.
	GrowAfter int
	// HoldPeriods is how many periods a freshly moved width runs
	// unchallenged. Default 2.
	HoldPeriods int
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.Min < 1 {
		c.Min = 1
	}
	if c.Max <= 0 {
		c.Max = 1024
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.ShrinkAbortRatio == 0 {
		c.ShrinkAbortRatio = 0.5
	}
	if c.GrowAbortRatio == 0 {
		c.GrowAbortRatio = 0.1
	}
	if c.GrowAfter <= 0 {
		c.GrowAfter = 2
	}
	if c.HoldPeriods <= 0 {
		c.HoldPeriods = 2
	}
	return c
}

// admTuner is the controller state: a deterministic rule engine like
// cmTuner and snapTuner, so the fake-clock runtime tests cover it end
// to end.
type admTuner struct {
	cfg   AdmissionConfig
	width int
	calm  int // consecutive periods at or below GrowAbortRatio
	hold  int
	moves int
}

func newAdmTuner(cfg AdmissionConfig, width int) *admTuner {
	cfg = cfg.withDefaults()
	if width < cfg.Min {
		width = cfg.Min
	}
	if width > cfg.Max {
		width = cfg.Max
	}
	return &admTuner{cfg: cfg, width: width}
}

// switches returns how many width moves the controller decided.
func (t *admTuner) switches() int { return t.moves }

// step consumes one period's (commits, aborts) deltas and returns the
// width for the next period (changed reports a move).
func (t *admTuner) step(commits, aborts uint64) (next int, changed bool) {
	ratio := 0.0
	if commits+aborts > 0 {
		ratio = float64(aborts) / float64(commits+aborts)
	}
	if ratio <= t.cfg.GrowAbortRatio {
		t.calm++
	} else {
		t.calm = 0
	}
	if t.hold > 0 {
		t.hold--
		return t.width, false
	}
	switch {
	case ratio >= t.cfg.ShrinkAbortRatio && t.width > t.cfg.Min:
		// Abort churn: the admitted updaters are mostly killing each
		// other. Multiplicative decrease.
		t.width /= 2
		if t.width < t.cfg.Min {
			t.width = t.cfg.Min
		}
	case t.calm >= t.cfg.GrowAfter && t.width < t.cfg.Max:
		// Sustained calm: probe wider so a workload whose storm passed
		// gets its concurrency back. Additive-ish increase — gentle on
		// purpose, the shrink is the sharp edge.
		t.width += max(1, t.width/4)
		if t.width > t.cfg.Max {
			t.width = t.cfg.Max
		}
		t.calm = 0
	default:
		return t.width, false
	}
	t.hold = t.cfg.HoldPeriods
	t.moves++
	return t.width, true
}
