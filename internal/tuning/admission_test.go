package tuning

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestAdmTunerRules(t *testing.T) {
	at := newAdmTuner(AdmissionConfig{Min: 1, Max: 64, GrowAfter: 2, HoldPeriods: 1}, 32)
	// Abort storm (ratio 0.75): multiplicative decrease, then hold one
	// period even though the storm continues.
	if next, ch := at.step(25, 75); !ch || next != 16 {
		t.Fatalf("shrink step = (%d, %v), want (16, true)", next, ch)
	}
	if next, ch := at.step(25, 75); ch || next != 16 {
		t.Fatalf("hold step = (%d, %v), want (16, false)", next, ch)
	}
	if next, ch := at.step(25, 75); !ch || next != 8 {
		t.Fatalf("second shrink = (%d, %v), want (8, true)", next, ch)
	}
	// Middling ratio (between Grow and Shrink): hold forever.
	at.step(60, 40)
	for i := 0; i < 5; i++ {
		if next, ch := at.step(60, 40); ch || next != 8 {
			t.Fatalf("middling step = (%d, %v), want (8, false)", next, ch)
		}
	}
	// Calm (ratio 0): grow only after GrowAfter consecutive calm periods.
	if next, ch := at.step(100, 0); ch || next != 8 {
		t.Fatalf("first calm step = (%d, %v), want (8, false)", next, ch)
	}
	if next, ch := at.step(100, 0); !ch || next != 10 {
		t.Fatalf("grow step = (%d, %v), want (10, true)", next, ch)
	}
	// A single noisy period resets the calm streak.
	at.step(100, 0) // hold period
	at.step(60, 40) // noise: calm = 0
	if next, ch := at.step(100, 0); ch || next != 10 {
		t.Fatalf("calm after noise = (%d, %v), want (10, false)", next, ch)
	}
	// An idle period (no traffic at all) counts as calm: ratio 0.
	if next, ch := at.step(0, 0); !ch || next != 12 {
		t.Fatalf("grow after idle = (%d, %v), want (12, true)", next, ch)
	}
}

func TestAdmTunerNeverStarves(t *testing.T) {
	// The floor is Min (>= 1): a permanent abort storm must serialize
	// updates, never shut them off.
	at := newAdmTuner(AdmissionConfig{Min: 1, Max: 64, HoldPeriods: 1}, 64)
	for i := 0; i < 100; i++ {
		if next, _ := at.step(0, 100); next < 1 {
			t.Fatalf("width fell to %d under a permanent storm", next)
		}
	}
	if at.width != 1 {
		t.Fatalf("storm parked the width at %d, want the floor 1", at.width)
	}
	// At the floor a storm period is not a move: nothing to shrink.
	before := at.switches()
	if _, ch := at.step(0, 100); ch {
		t.Fatal("shrink reported at the floor")
	}
	if at.switches() != before {
		t.Fatal("move counted at the floor")
	}
}

func TestAdmTunerClamps(t *testing.T) {
	// Start above Max / below Min: clamped on construction.
	if at := newAdmTuner(AdmissionConfig{Min: 2, Max: 8}, 100); at.width != 8 {
		t.Fatalf("start width clamped to %d, want 8", at.width)
	}
	if at := newAdmTuner(AdmissionConfig{Min: 2, Max: 8}, 0); at.width != 2 {
		t.Fatalf("start width clamped to %d, want 2", at.width)
	}
	// Growth stops at Max.
	at := newAdmTuner(AdmissionConfig{Min: 1, Max: 10, GrowAfter: 1, HoldPeriods: 1}, 8)
	if next, ch := at.step(100, 0); !ch || next != 10 {
		t.Fatalf("grow toward Max = (%d, %v), want clamp at (10, true)", next, ch)
	}
	at.step(100, 0) // hold
	if next, ch := at.step(100, 0); ch || next != 10 {
		t.Fatalf("grow at Max = (%d, %v), want hold", next, ch)
	}
}

// fakeGate is an AdmissionGate for the fake-clock runtime tests: it
// records every width the controller installs.
type fakeGate struct {
	mu       sync.Mutex
	width    int
	sets     int
	minSeen  int
	failSets bool
}

func newFakeGate(width int) *fakeGate {
	return &fakeGate{width: width, minSeen: width}
}

func (g *fakeGate) Width() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.width
}

func (g *fakeGate) SetWidth(w int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.failSets {
		return fmt.Errorf("fake gate: SetWidth disabled")
	}
	g.width = w
	g.sets++
	if w < g.minSeen {
		g.minSeen = w
	}
	return nil
}

// admEnv extends virtualEnv with a synthetic abort source: during the
// write-storm phase, any gate width above hotWidth makes the admitted
// updaters mostly kill each other (abort ratio 0.75); at or below it —
// and after the flip to the calm phase — aborts stop.
type admEnv struct {
	*virtualEnv
	gate     *fakeGate
	flipTick int // phase boundary, in After ticks
	hotWidth int

	aborts uint64
}

func (e *admEnv) CommitAbortCounts() (uint64, uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.commits, e.aborts
}

// After advances the fake clock via the embedded env, then accrues the
// phase's abort signal from the commit delta and the live gate width.
func (e *admEnv) After(d time.Duration) <-chan time.Time {
	e.mu.Lock()
	before := e.commits
	e.mu.Unlock()
	ch := e.virtualEnv.After(d)
	w := e.gate.Width()
	e.mu.Lock()
	if dc := e.commits - before; e.ticks <= e.flipTick && w > e.hotWidth {
		e.aborts += 3 * dc
	}
	e.mu.Unlock()
	return ch
}

// TestRuntimeAdaptsAdmissionWidth is the deterministic fake-clock check
// of the acceptance criterion: the gate narrows while the write storm
// keeps manufacturing aborts, and probes back open once the storm ends.
func TestRuntimeAdaptsAdmissionWidth(t *testing.T) {
	const periods = 60
	gate := newFakeGate(32)
	env := &admEnv{
		virtualEnv: newVirtualEnv(p(10, 0, 1), synthetic(p(10, 0, 1)), periods),
		gate:       gate,
		flipTick:   periods / 2,
		hotWidth:   2,
	}
	rt := NewRuntime(env, RuntimeConfig{
		Tuner:   Config{Initial: p(10, 0, 1), Seed: 3},
		Period:  time.Second,
		Samples: 1,
		Admission: AdmissionConfig{
			Enable: true, Gate: gate, Min: 1, Max: 64,
			GrowAfter: 2, HoldPeriods: 2,
		},
		Now:   env.Now,
		After: env.After,
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	<-env.reached
	rt.Stop()

	trace := rt.Trace()
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	// Phase 1: the storm must have squeezed the gate down to the calm
	// width (the synthetic surface keeps aborting until width <= hotWidth).
	if gate.minSeen > env.hotWidth {
		t.Fatalf("storm phase narrowed the gate only to %d, want <= %d", gate.minSeen, env.hotWidth)
	}
	// Phase 2: with the storm gone, the gate must have probed back open.
	final := trace[len(trace)-1].NextAdmWidth
	if final < 2*env.hotWidth {
		t.Fatalf("calm phase reopened the gate only to %d, want >= %d", final, 2*env.hotWidth)
	}
	if rt.AdmissionMoves() == 0 || gate.sets == 0 {
		t.Fatalf("controller made no width moves (moves=%d, sets=%d)", rt.AdmissionMoves(), gate.sets)
	}
	if gate.Width() != final || rt.AdmissionWidth() != final {
		t.Fatalf("gate width %d / controller width %d diverged from trace's %d",
			gate.Width(), rt.AdmissionWidth(), final)
	}
}

// TestRuntimeAdmissionResyncOnFailedMove pins the revert path: a width
// that never lands must not be counted as a move, and the rule engine
// must resynchronize with the live gate.
func TestRuntimeAdmissionResyncOnFailedMove(t *testing.T) {
	const periods = 12
	gate := newFakeGate(4)
	gate.failSets = true
	env := &admEnv{
		virtualEnv: newVirtualEnv(p(10, 0, 1), synthetic(p(10, 0, 1)), periods),
		gate:       gate,
		flipTick:   -1, // calm from the start: every decided move is a grow
		hotWidth:   0,
	}
	rt := NewRuntime(env, RuntimeConfig{
		Tuner:   Config{Initial: p(10, 0, 1), Seed: 3},
		Period:  time.Second,
		Samples: 1,
		Admission: AdmissionConfig{
			Enable: true, Gate: gate, Min: 1, Max: 64,
			GrowAfter: 1, HoldPeriods: 1,
		},
		Now:   env.Now,
		After: env.After,
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	<-env.reached
	rt.Stop()

	sawErr := false
	for _, ev := range rt.Trace() {
		if ev.AdmErr != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("no AdmErr recorded although every SetWidth failed")
	}
	if rt.AdmissionMoves() != 0 {
		t.Fatalf("AdmissionMoves = %d although no move ever landed", rt.AdmissionMoves())
	}
	if rt.AdmissionWidth() != 4 {
		t.Fatalf("controller width %d diverged from the live gate's 4", rt.AdmissionWidth())
	}
}

// TestRuntimeAdmissionRequiresGate pins the Start-time check.
func TestRuntimeAdmissionRequiresGate(t *testing.T) {
	env := newVirtualEnv(p(10, 0, 1), synthetic(p(10, 0, 1)), 3)
	rt := NewRuntime(env, RuntimeConfig{
		Tuner:     Config{Initial: p(10, 0, 1)},
		Admission: AdmissionConfig{Enable: true},
		Now:       env.Now, After: env.After,
	})
	if err := rt.Start(); err == nil {
		t.Fatal("Start accepted the admission controller without a gate")
	}
}
