package tuning

import (
	"math/bits"
	"testing"
	"testing/quick"

	"tinystm/internal/core"
)

// Property: whatever throughput feedback the tuner receives, every
// configuration it proposes stays inside its bounds, keeps all fields
// powers of two (locks, hier), and keeps h <= locks.
func TestQuickTunerStaysInBounds(t *testing.T) {
	b := Bounds{
		MinLocks: 1 << 6, MaxLocks: 1 << 14,
		MinShifts: 0, MaxShifts: 5,
		MinHier: 1, MaxHier: 64,
	}
	f := func(feedback []uint16, seed uint64) bool {
		tr := New(Config{Initial: p(8, 1, 2), Bounds: b, Seed: seed})
		cur := tr.Current()
		for _, fb := range feedback {
			cur, _ = tr.Step(float64(fb) + 1)
			if cur.Locks < b.MinLocks || cur.Locks > b.MaxLocks {
				return false
			}
			if bits.OnesCount64(cur.Locks) != 1 || bits.OnesCount64(cur.Hier) != 1 {
				return false
			}
			if cur.Shifts > b.MaxShifts {
				return false
			}
			if cur.Hier > b.MaxHier || cur.Hier > cur.Locks {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the tuner's trace always chains (Next of step i equals Params
// of step i+1) and records the throughput it was fed.
func TestQuickTraceChains(t *testing.T) {
	f := func(feedback []uint16, seed uint64) bool {
		if len(feedback) == 0 {
			return true
		}
		tr := New(Config{Initial: p(10, 0, 1), Seed: seed})
		for _, fb := range feedback {
			tr.Step(float64(fb) + 1)
		}
		trace := tr.Trace()
		for i := 0; i+1 < len(trace); i++ {
			if trace[i].Next != trace[i+1].Params {
				return false
			}
		}
		return len(trace) == len(feedback)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the best configuration's recorded throughput is the maximum
// of the most recent measurement per configuration.
func TestQuickBestIsMaxOfMemory(t *testing.T) {
	f := func(feedback []uint16, seed uint64) bool {
		if len(feedback) == 0 {
			return true
		}
		tr := New(Config{Initial: p(10, 0, 1), Seed: seed})
		latest := map[core.Params]float64{}
		cur := tr.Current()
		for _, fb := range feedback {
			tp := float64(fb) + 1
			latest[cur] = tp
			cur, _ = tr.Step(tp)
		}
		_, bestTp := tr.Best()
		max := 0.0
		for _, tp := range latest {
			if tp > max {
				max = tp
			}
		}
		return bestTp == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
