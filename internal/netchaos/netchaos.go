// Package netchaos is a deterministic in-process TCP fault injector: a
// proxy that sits between a client and a real server and mangles the
// byte stream on the way through — added latency, mid-stream stalls,
// connection resets, partial writes, and byte corruption (the last
// proving the protocol's CRC layer actually earns its keep).
//
// Faults fire at byte-count thresholds drawn from a seeded generator,
// not from timers or real randomness, so a given (seed, byte stream)
// replays the same faults every run — chaos tests stay debuggable.
// This is the network-layer sibling of wal.MemFS's filesystem fault
// injection: same philosophy (deterministic, in-process, no external
// tooling), one layer down the stack.
//
// The proxy makes one simplification against real TCP: it does not
// forward half-closes. Any stream error, EOF, or injected reset severs
// BOTH directions (resets with SO_LINGER=0, so the client sees RST,
// not FIN). For request/response protocols that is indistinguishable
// from a middlebox dropping the connection, which is the failure being
// simulated.
package netchaos

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tinystm/internal/rng"
)

// Config configures a Proxy. Every fault defaults to off; a zero
// Config is a faithful forwarder.
type Config struct {
	// Target is the upstream address to forward to. Required.
	Target string
	// Listen is the address to listen on (default "127.0.0.1:0").
	Listen string
	// Seed seeds the deterministic fault generator (default 1). Each
	// connection direction derives its own stream from it.
	Seed uint64

	// Latency is a fixed delay added before forwarding each read (per
	// direction) — cheap one-way latency simulation.
	Latency time.Duration

	// StallEvery injects a StallFor pause roughly every N forwarded
	// bytes per direction (threshold drawn uniformly from [N/2, 3N/2)).
	// Models a congested or half-frozen middlebox.
	StallEvery int64
	StallFor   time.Duration

	// ResetEvery severs the connection (RST) after roughly N forwarded
	// bytes in one direction.
	ResetEvery int64

	// CorruptEvery flips one byte roughly every N forwarded bytes per
	// direction.
	CorruptEvery int64

	// ChunkBytes splits every forward into writes of at most this many
	// bytes (partial-write torture for readers that assume one Read per
	// frame). 0 forwards reads whole.
	ChunkBytes int
}

// Stats are the proxy's cumulative fault counters.
type Stats struct {
	// Accepted counts client connections accepted (including ones
	// refused by a blackout); Active is the current live count.
	Accepted, Active uint64
	// Resets counts injected severs (ResetEvery + blackout kills),
	// Corrupted flipped bytes, Stalls injected pauses.
	Resets, Corrupted, Stalls uint64
}

// Proxy is a running chaos proxy. Create with New, stop with Close.
type Proxy struct {
	cfg Config
	l   net.Listener

	closed   chan struct{}
	wg       sync.WaitGroup
	blackout atomic.Bool

	mu    sync.Mutex
	conns map[*link]struct{}
	seq   uint64

	accepted  atomic.Uint64
	resets    atomic.Uint64
	corrupted atomic.Uint64
	stalls    atomic.Uint64
}

// link is one proxied connection pair.
type link struct {
	client, server net.Conn
	once           sync.Once
}

// sever tears down both directions. reset=true sends RST to the client
// (SO_LINGER=0) instead of a clean FIN.
func (ln *link) sever(reset bool) {
	ln.once.Do(func() {
		if reset {
			if tc, ok := ln.client.(*net.TCPConn); ok {
				tc.SetLinger(0)
			}
		}
		ln.client.Close()
		ln.server.Close()
	})
}

// New starts a proxy for cfg and begins accepting.
func New(cfg Config) (*Proxy, error) {
	if cfg.Target == "" {
		return nil, fmt.Errorf("netchaos: Config.Target is required")
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	l, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, err
	}
	p := &Proxy{cfg: cfg, l: l, closed: make(chan struct{}), conns: make(map[*link]struct{})}
	p.wg.Add(1)
	go p.accept()
	return p, nil
}

// Addr returns the proxy's listen address (point clients here).
func (p *Proxy) Addr() string { return p.l.Addr().String() }

// SetBlackout switches outage mode: while on, new connections are
// accepted and immediately reset and every live connection is killed —
// the deterministic way to trip a client's circuit breaker. Switching
// it off restores normal proxying.
func (p *Proxy) SetBlackout(on bool) {
	p.blackout.Store(on)
	if on {
		p.KillAll()
	}
}

// KillAll severs every live proxied connection with a reset.
func (p *Proxy) KillAll() {
	p.mu.Lock()
	links := make([]*link, 0, len(p.conns))
	for ln := range p.conns {
		links = append(links, ln)
	}
	p.mu.Unlock()
	for _, ln := range links {
		p.resets.Add(1)
		ln.sever(true)
	}
}

// Stats snapshots the fault counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	active := uint64(len(p.conns))
	p.mu.Unlock()
	return Stats{
		Accepted:  p.accepted.Load(),
		Active:    active,
		Resets:    p.resets.Load(),
		Corrupted: p.corrupted.Load(),
		Stalls:    p.stalls.Load(),
	}
}

// Close stops accepting, severs everything, and waits for the pumps.
func (p *Proxy) Close() {
	select {
	case <-p.closed:
		return
	default:
	}
	close(p.closed)
	p.l.Close()
	p.KillAll()
	p.wg.Wait()
}

func (p *Proxy) accept() {
	defer p.wg.Done()
	for {
		c, err := p.l.Accept()
		if err != nil {
			return // listener closed
		}
		p.accepted.Add(1)
		if p.blackout.Load() {
			p.resets.Add(1)
			if tc, ok := c.(*net.TCPConn); ok {
				tc.SetLinger(0)
			}
			c.Close()
			continue
		}
		up, err := net.Dial("tcp", p.cfg.Target)
		if err != nil {
			c.Close()
			continue
		}
		ln := &link{client: c, server: up}
		p.mu.Lock()
		p.conns[ln] = struct{}{}
		id := p.seq
		p.seq++
		p.mu.Unlock()
		p.wg.Add(2)
		go p.pump(ln, c, up, p.dirSeed(id, 0))
		go p.pump(ln, up, c, p.dirSeed(id, 1))
	}
}

// dirSeed derives an independent deterministic stream per connection
// direction (SplitMix-style spread so nearby ids decorrelate).
func (p *Proxy) dirSeed(connID, dir uint64) *rng.Rand {
	return rng.New(p.cfg.Seed ^ (connID*2+dir+1)*0x9E3779B97F4A7C15)
}

// nextAfter draws the next fault threshold: every bytes on average,
// uniform in [every/2, 3*every/2). 0 disables the fault (returns -1).
func nextAfter(r *rng.Rand, every int64) int64 {
	if every <= 0 {
		return -1
	}
	return every/2 + int64(r.Uint64n(uint64(every)))
}

// pump forwards src→dst applying the configured faults, then severs
// the link on any error, EOF, or injected reset.
func (p *Proxy) pump(ln *link, src, dst net.Conn, r *rng.Rand) {
	defer p.wg.Done()
	defer p.unlink(ln)
	cfg := &p.cfg
	var forwarded int64
	stallAt := nextAfter(r, cfg.StallEvery)
	corruptAt := nextAfter(r, cfg.CorruptEvery)
	resetAt := nextAfter(r, cfg.ResetEvery)
	buf := make([]byte, 16<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if cfg.Latency > 0 && !p.sleep(cfg.Latency) {
				ln.sever(true)
				return
			}
			data := buf[:n]
			for len(data) > 0 {
				if resetAt >= 0 && forwarded >= resetAt {
					p.resets.Add(1)
					ln.sever(true)
					return
				}
				if stallAt >= 0 && forwarded >= stallAt {
					p.stalls.Add(1)
					if !p.sleep(cfg.StallFor) {
						ln.sever(true)
						return
					}
					stallAt = forwarded + nextAfter(r, cfg.StallEvery)
				}
				chunk := data
				if cfg.ChunkBytes > 0 && len(chunk) > cfg.ChunkBytes {
					chunk = chunk[:cfg.ChunkBytes]
				}
				// Cut the chunk at the next fault boundary so thresholds
				// fire at exact byte offsets regardless of read sizes.
				for _, at := range [...]int64{resetAt, stallAt} {
					if at >= 0 && at > forwarded && at < forwarded+int64(len(chunk)) {
						chunk = chunk[:at-forwarded]
					}
				}
				for corruptAt >= 0 && corruptAt < forwarded+int64(len(chunk)) {
					chunk[corruptAt-forwarded] ^= 0xFF
					p.corrupted.Add(1)
					corruptAt = corruptAt + 1 + nextAfter(r, cfg.CorruptEvery)
				}
				if _, werr := dst.Write(chunk); werr != nil {
					ln.sever(false)
					return
				}
				forwarded += int64(len(chunk))
				data = data[len(chunk):]
			}
		}
		if err != nil {
			ln.sever(false)
			return
		}
	}
}

// sleep waits d or until the proxy closes; false means closing.
func (p *Proxy) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-p.closed:
		return false
	}
}

func (p *Proxy) unlink(ln *link) {
	p.mu.Lock()
	delete(p.conns, ln)
	p.mu.Unlock()
}
