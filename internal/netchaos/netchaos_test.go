package netchaos

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// startEcho runs a TCP echo server and returns its address.
func startEcho(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
	t.Cleanup(func() { l.Close(); close(done); wg.Wait() })
	return l.Addr().String()
}

func startProxy(t *testing.T, cfg Config) *Proxy {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func dialT(t *testing.T, addr string) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestCleanForwarding(t *testing.T) {
	p := startProxy(t, Config{Target: startEcho(t)})
	c := dialT(t, p.Addr())
	msg := bytes.Repeat([]byte("hello chaos "), 1000)
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("zero-config proxy altered the stream")
	}
}

func TestPartialWritesPreserveBytes(t *testing.T) {
	p := startProxy(t, Config{Target: startEcho(t), ChunkBytes: 3})
	c := dialT(t, p.Addr())
	msg := bytes.Repeat([]byte{0xAB, 0xCD, 0xEF, 0x01}, 500)
	go c.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("chunked forwarding altered the stream")
	}
}

func TestCorruptionFlipsBytes(t *testing.T) {
	p := startProxy(t, Config{Target: startEcho(t), Seed: 7, CorruptEvery: 64})
	c := dialT(t, p.Addr())
	msg := bytes.Repeat([]byte{0x55}, 4096)
	go c.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	flipped := 0
	for _, b := range got {
		if b != 0x55 {
			if b != 0x55^0xFF {
				t.Fatalf("corrupted byte %#x is not a clean flip", b)
			}
			flipped++
		}
	}
	// ~8KiB forwarded (round trip), one flip per ~64B per direction.
	if flipped < 16 {
		t.Fatalf("only %d corrupted bytes across 8KiB at CorruptEvery=64", flipped)
	}
	if st := p.Stats(); st.Corrupted == 0 {
		t.Fatal("stats did not count corruption")
	}
}

func TestResetSeversDeterministically(t *testing.T) {
	countUntilDead := func() (n int, resets uint64) {
		p := startProxy(t, Config{Target: startEcho(t), Seed: 11, ResetEvery: 512})
		c := dialT(t, p.Addr())
		buf := make([]byte, 64)
		for {
			if _, err := c.Write(buf); err != nil {
				break
			}
			c.SetReadDeadline(time.Now().Add(time.Second))
			if _, err := io.ReadFull(c, buf); err != nil {
				break
			}
			n++
			if n > 1000 {
				break
			}
		}
		st := p.Stats()
		p.Close()
		return n, st.Resets
	}
	n1, r1 := countUntilDead()
	n2, _ := countUntilDead()
	if r1 == 0 {
		t.Fatal("no reset injected")
	}
	if n1 > 40 {
		t.Fatalf("survived %d round trips of 64B with ResetEvery=512", n1)
	}
	if n1 != n2 {
		t.Fatalf("same seed, different kill points: %d vs %d round trips", n1, n2)
	}
}

func TestStallDelaysDelivery(t *testing.T) {
	p := startProxy(t, Config{Target: startEcho(t), Seed: 3, StallEvery: 256, StallFor: 150 * time.Millisecond})
	c := dialT(t, p.Addr())
	msg := make([]byte, 2048)
	start := time.Now()
	go c.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 150*time.Millisecond {
		t.Fatalf("2KiB round trip took %v; expected at least one 150ms stall", d)
	}
	if st := p.Stats(); st.Stalls == 0 {
		t.Fatal("stats did not count stalls")
	}
}

func TestLatencyAddsDelay(t *testing.T) {
	p := startProxy(t, Config{Target: startEcho(t), Latency: 50 * time.Millisecond})
	c := dialT(t, p.Addr())
	start := time.Now()
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	one := make([]byte, 1)
	if _, err := io.ReadFull(c, one); err != nil {
		t.Fatal(err)
	}
	// 50ms per direction: the round trip carries at least 100ms.
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Fatalf("round trip took %v, want >= 100ms of injected latency", d)
	}
}

func TestBlackoutKillsAndRefuses(t *testing.T) {
	p := startProxy(t, Config{Target: startEcho(t)})
	c := dialT(t, p.Addr())
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	one := make([]byte, 1)
	if _, err := io.ReadFull(c, one); err != nil {
		t.Fatal(err)
	}

	p.SetBlackout(true)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c, one); err == nil {
		t.Fatal("live connection survived the blackout")
	}
	// New connections accept then die immediately: any I/O fails fast.
	c2 := dialT(t, p.Addr())
	c2.SetReadDeadline(time.Now().Add(2 * time.Second))
	c2.Write([]byte("x"))
	if _, err := io.ReadFull(c2, one); err == nil {
		t.Fatal("blackout proxy served a new connection")
	}

	p.SetBlackout(false)
	c3 := dialT(t, p.Addr())
	if _, err := c3.Write([]byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c3, one); err != nil || one[0] != 'y' {
		t.Fatalf("proxy did not recover after blackout: %v %q", err, one)
	}
}

func TestCloseIsIdempotentAndUnblocksStalls(t *testing.T) {
	p := startProxy(t, Config{Target: startEcho(t), StallEvery: 1, StallFor: time.Minute})
	c := dialT(t, p.Addr())
	go c.Write(make([]byte, 1024))
	time.Sleep(20 * time.Millisecond) // let the pump enter its stall
	done := make(chan struct{})
	go func() { p.Close(); p.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a stalled pump")
	}
}
