package core

import "sync/atomic"

// geometry bundles the runtime-tunable lock-array state: the versioned
// lock array itself, the address hash parameters, and the hierarchical
// counter array. A TM swaps in a fresh geometry during Reconfigure while
// the world is frozen; transactions capture the current geometry once per
// attempt at begin time.
type geometry struct {
	locks    []uint64 // versioned write-locks, len == lockMask+1
	lockMask uint64
	shifts   uint
	hier     []padCounter // h counters; nil when h == 1
	hierMask uint64       // h - 1
	// Second hierarchy level (extension; see Config.Hier2): each entry
	// covers hierMask+1 / (hier2Mask+1) first-level buckets.
	hier2     []padCounter // nil when disabled
	hier2Mask uint64
}

// padCounter keeps each hierarchical counter on its own cache line: the
// counters are incremented with atomic operations by every update
// transaction's first write per bucket (paper Section 3.2 cautions that
// these atomic operations are the cost side of the trade-off).
type padCounter struct {
	v atomic.Uint64
	_ [56]byte
}

func newGeometry(p Params, hier2 uint64) *geometry {
	g := &geometry{
		locks:     make([]uint64, p.Locks),
		lockMask:  p.Locks - 1,
		shifts:    p.Shifts,
		hierMask:  p.Hier - 1,
		hier2Mask: hier2 - 1,
	}
	if p.Hier > 1 {
		g.hier = make([]padCounter, p.Hier)
	}
	if hier2 > 1 && p.Hier > 1 {
		g.hier2 = make([]padCounter, hier2)
	}
	return g
}

func (g *geometry) params() Params {
	return Params{Locks: g.lockMask + 1, Shifts: g.shifts, Hier: g.hierMask + 1}
}

// lockIndex maps a word address to its lock (the paper's per-stripe hash:
// right-shift then modulo the lock-array size).
func (g *geometry) lockIndex(addr uint64) uint64 {
	return (addr >> g.shifts) & g.lockMask
}

// hierIndex maps a word address to its hierarchical counter. Because h
// divides l and both hashes shift identically, two addresses mapped to the
// same lock always map to the same counter (the consistency requirement of
// Section 3.2).
func (g *geometry) hierIndex(addr uint64) uint64 {
	return (addr >> g.shifts) & g.hierMask
}

func (g *geometry) hierEnabled() bool  { return g.hier != nil }
func (g *geometry) hier2Enabled() bool { return g.hier2 != nil }

// hier2Index maps a first-level bucket to its coarse group; since both
// sizes are powers of two with hier2 <= hier, masking keeps the mapping
// consistent (same bucket, same group).
func (g *geometry) hier2Index(bucket uint64) uint64 {
	return bucket & g.hier2Mask
}

func (g *geometry) loadLock(li uint64) uint64 {
	return atomic.LoadUint64(&g.locks[li])
}

func (g *geometry) storeLock(li uint64, lw uint64) {
	atomic.StoreUint64(&g.locks[li], lw)
}

func (g *geometry) casLock(li uint64, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&g.locks[li], old, new)
}

// resetVersions zeroes every lock word; used by clock roll-over ("we reset
// the clock and all version numbers"). Only called while the TM is frozen.
func (g *geometry) resetVersions() {
	for i := range g.locks {
		g.locks[i] = 0
	}
	for i := range g.hier {
		g.hier[i].v.Store(0)
	}
	for i := range g.hier2 {
		g.hier2[i].v.Store(0)
	}
}
