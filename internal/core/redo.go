package core

// Redo capture: the commit-side half of the durability subsystem
// (internal/wal). Transactional code that wants its logical effects to
// survive a crash records them on the descriptor with Tx.Redo while the
// atomic block runs; if the attempt aborts, the records die with it, and
// when the attempt commits, the TM hands them — tagged with the commit's
// clock epoch and timestamp — to the hook installed by SetRedoHook.
//
// The hook is invoked during commit publication, while every write lock
// the transaction acquired is still held. That placement is load-bearing:
// two update transactions that touched a common key serialize through that
// key's stripe lock, so their hook invocations are ordered exactly like
// their commit timestamps. A write-ahead log fed by the hook therefore
// sees per-key history in commit order without any locking of its own —
// the same publication-order discipline the MVCC sidecar relies on
// (mvcc.Publish), extended from version records to redo records.

import (
	"sync/atomic"

	"tinystm/internal/txn"
)

// redoHolder wraps the hook so it can sit behind one atomic.Pointer.
type redoHolder struct{ hook txn.RedoHook }

// SetRedoHook installs (or, with nil, removes) the redo hook on a live TM.
// No freeze is needed: descriptors read the hook once per commit, and a
// commit that raced the installation simply published to the old value —
// callers attach the hook BEFORE admitting traffic they need logged
// (kvserver attaches it after WAL replay, before readiness flips).
func (tm *TM) SetRedoHook(h txn.RedoHook) {
	if h == nil {
		tm.redoHook.Store(nil)
		return
	}
	tm.redoHook.Store(&redoHolder{hook: h})
}

// RedoHookInstalled reports whether a redo hook is attached (diagnostics).
func (tm *TM) RedoHookInstalled() bool { return tm.redoHook.Load() != nil }

// ClockEpoch returns the TM's clock epoch: bumped under the freeze barrier
// whenever the clock resets (roll-over, Reconfigure), so (epoch, commit
// timestamp) pairs order totally within one process lifetime. Stable while
// the calling goroutine is inside a transaction.
func (tm *TM) ClockEpoch() uint64 { return tm.clockEpoch.Load() }

// ClockEpoch on a descriptor mirrors TM.ClockEpoch; inside a transaction
// the value cannot change (epoch bumps happen behind the freeze barrier,
// which waits for in-flight transactions), so a checkpoint scan can stamp
// its snapshot with a stable (epoch, timestamp) position.
func (tx *Tx) ClockEpoch() uint64 { return tx.tm.clockEpoch.Load() }

// Redo records one logical state change of the current atomic block. The
// records accumulate per attempt (an aborted attempt discards them) and
// are delivered to the TM's redo hook if — and only if — this attempt
// commits as an update transaction. Calling Redo without a hook installed
// is a cheap no-op beyond the append.
func (tx *Tx) Redo(op txn.RedoOp) {
	if !tx.inTx {
		panic("core: Redo outside transaction")
	}
	tx.redo = append(tx.redo, op)
}

// RedoTicket returns the durability ticket the redo hook handed back for
// this descriptor's most recent commit (nil when the commit carried no
// redo records, no hook was installed, or the hook declined a ticket).
// Read it immediately after the atomic block: the next Begin on this
// descriptor clears it.
func (tx *Tx) RedoTicket() txn.DurableTicket { return tx.redoTicket }

// publishRedo hands the attempt's redo records to the installed hook at
// commit position (epoch, ts). Called from Commit while the write locks
// are held; see the package comment above for why.
func (tx *Tx) publishRedo(ts uint64) {
	h := tx.tm.redoHook.Load()
	if h == nil || len(tx.redo) == 0 {
		return
	}
	tx.redoTicket = h.hook(tx.tm.clockEpoch.Load(), ts, tx.redo)
	tx.redoRecords += uint64(len(tx.redo))
}

// redoHookPtr is the TM-side storage; declared here to keep every redo
// field greppable in one file.
type redoHookPtr = atomic.Pointer[redoHolder]
