package core

import (
	"sync"
	"testing"

	"tinystm/internal/cm"
	"tinystm/internal/mem"
)

// commitOnce runs one trivial update transaction on tx.
func commitOnce(tm *TM, tx *Tx, addr uint64) {
	tm.Atomic(tx, func(tx *Tx) { tx.Store(addr, tx.Load(addr)+1) })
}

// Release must recycle the slot: a NewTx after a Release hands back the
// same descriptor instead of burning a fresh slot.
func TestReleaseReusesDescriptor(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, nil)
	a := tm.NewTx()
	commitOnce(tm, a, 0)
	slot := a.Slot()
	a.Release()
	b := tm.NewTx()
	if b != a || b.Slot() != slot {
		t.Fatalf("NewTx after Release minted a fresh descriptor (slot %d, want %d)", b.Slot(), slot)
	}
	commitOnce(tm, b, 0)
	if got := tm.Stats().Commits; got != 2 {
		t.Fatalf("Stats().Commits = %d, want 2", got)
	}
}

// A released descriptor's counters must survive recycling: they are folded
// into the TM-level retired aggregate, and the reused descriptor restarts
// from zero without double counting.
func TestReleasePreservesStats(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, nil)
	tx := tm.NewTx()
	for i := 0; i < 5; i++ {
		commitOnce(tm, tx, uint64(i))
	}
	before := tm.Stats()
	tx.Release()
	after := tm.Stats()
	if before != after {
		t.Fatalf("Stats changed across Release:\nbefore %+v\nafter  %+v", before, after)
	}
	if after.Commits != 5 {
		t.Fatalf("Commits = %d, want 5", after.Commits)
	}
	// The recycled descriptor starts clean.
	re := tm.NewTx()
	if s := re.TxStats(); s.Commits != 0 || s.Aborts != 0 {
		t.Fatalf("recycled descriptor kept counters: %+v", s)
	}
	commitOnce(tm, re, 0)
	if got := tm.Stats().Commits; got != 6 {
		t.Fatalf("Commits after reuse = %d, want 6", got)
	}
}

// A server that keeps spawning short-lived workers must never exhaust
// maxSlots as long as workers release their descriptors. This is the
// regression for the unbounded tm.descs growth: without the free list the
// loop below panics at maxSlots descriptors.
func TestReleasePreventsSlotExhaustion(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, nil)
	const workers = 4
	rounds := maxSlots/workers + 16 // enough worker lifetimes to overflow without reuse
	if testing.Short() {
		rounds = 2048
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				tx := tm.NewTx()
				commitOnce(tm, tx, uint64(w))
				tx.Release()
			}
		}(w)
	}
	wg.Wait()
	if got, want := tm.Stats().Commits, uint64(workers*rounds); got != want {
		t.Fatalf("Commits = %d, want %d", got, want)
	}
	if minted, _ := tm.DescriptorCounts(); minted > workers {
		t.Fatalf("minted %d descriptors for %d concurrent workers", minted, workers)
	}
}

// Misuse panics: releasing twice, releasing mid-transaction, and running a
// released descriptor.
func TestReleaseMisusePanics(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, nil)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	tx := tm.NewTx()
	tx.Begin(false)
	mustPanic("Release inside transaction", tx.Release)
	tx.Commit()
	tx.Release()
	mustPanic("double Release", tx.Release)
	mustPanic("Begin on released descriptor", func() { tx.Begin(false) })
}

// The O(1) aggregate counters must agree with the full Stats snapshot,
// including across Release/recycle cycles and aborted transactions.
func TestAggregateCountsMatchStats(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, nil)
	tx := tm.NewTx()
	for i := 0; i < 10; i++ {
		commitOnce(tm, tx, 0)
	}
	// Force one abort: an explicit Retry aborts, then commits on the retry
	// attempt.
	first := true
	tm.Atomic(tx, func(tx *Tx) {
		tx.Store(1, 1)
		if first {
			first = false
			tx.Retry()
		}
	})
	tx.Release()
	re := tm.NewTx()
	commitOnce(tm, re, 2)

	s := tm.Stats()
	c, a := tm.CommitAbortCounts()
	if c != s.Commits || a != s.Aborts {
		t.Fatalf("CommitAbortCounts = (%d, %d), Stats = (%d, %d)", c, a, s.Commits, s.Aborts)
	}
	if c != 12 || a != 1 {
		t.Fatalf("counts = (%d, %d), want (12, 1)", c, a)
	}
}

// configFor must reproduce the TM's construction-time configuration with
// only the tunable triple substituted: Reconfigure validates through the
// same field set New saw (the regression: a hand-rolled Config in
// Reconfigure silently dropping fields added later).
func TestConfigForCarriesAllFields(t *testing.T) {
	sp := mem.NewSpace(1 << 12)
	base := Config{
		Space: sp, Locks: 1 << 10, Shifts: 2, Hier: 4, Hier2: 2,
		Design: WriteThrough, Clock: TicketBatch, ClockBatch: 16,
		MaxClock: 1 << 20, BackoffOnAbort: true, ConflictSpin: 7, YieldEvery: 3,
	}
	tm := MustNew(base)
	p := Params{Locks: 1 << 12, Shifts: 1, Hier: 8}
	got := tm.configFor(p)
	want := base
	want.Locks, want.Shifts, want.Hier = p.Locks, p.Shifts, p.Hier
	// The deprecated boolean maps to the Backoff policy in withDefaults,
	// and configFor reports the configuration as New saw it.
	want.CM = cm.Backoff
	if got != want {
		t.Fatalf("configFor dropped fields:\ngot  %+v\nwant %+v", got, want)
	}
	// Hier2 is clamped when the tuner shrinks h below it.
	small := tm.configFor(Params{Locks: 1 << 10, Shifts: 0, Hier: 1})
	if small.Hier2 != 1 {
		t.Fatalf("Hier2 = %d, want clamped to 1", small.Hier2)
	}
	if err := small.validate(); err != nil {
		t.Fatalf("clamped config invalid: %v", err)
	}
}
