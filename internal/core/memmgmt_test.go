package core

import (
	"testing"

	"tinystm/internal/txn"
)

// drainForTest flushes the reclamation limbo at a quiescence point.
func drainForTest(tm *TM) {
	tm.fz.freeze()
	tm.drainLimboAll()
	tm.fz.unfreeze()
}

func TestAbortReleasesAllocations(t *testing.T) {
	bothDesigns(t, func(t *testing.T, d Design) {
		tm, sp := newTestTM(t, d, nil)
		tx := tm.NewTx()
		before := sp.LiveWords()
		tx.Begin(false)
		if !attempt(func() {
			a := tx.Alloc(8)
			tx.Store(a, 1)
		}) {
			t.Fatal("unexpected abort")
		}
		tx.rollback(txn.AbortExplicit)
		if got := sp.LiveWords(); got != before {
			t.Errorf("live words after abort = %d, want %d", got, before)
		}
	})
}

func TestCommitKeepsAllocations(t *testing.T) {
	tm, sp := newTestTM(t, WriteBack, nil)
	tx := tm.NewTx()
	before := sp.LiveWords()
	tm.Atomic(tx, func(tx *Tx) { _ = tx.Alloc(8) })
	if got := sp.LiveWords(); got != before+8 {
		t.Errorf("live words = %d, want %d", got, before+8)
	}
}

func TestFreeDeferredToCommit(t *testing.T) {
	bothDesigns(t, func(t *testing.T, d Design) {
		tm, sp := newTestTM(t, d, nil)
		tx := tm.NewTx()
		var a uint64
		tm.Atomic(tx, func(tx *Tx) { a = tx.Alloc(4) })
		live := sp.LiveWords()

		// Freeing inside an aborted transaction must not release.
		tx.Begin(false)
		if !attempt(func() { tx.Free(a, 4) }) {
			t.Fatal("unexpected abort")
		}
		tx.rollback(txn.AbortExplicit)
		if got := sp.LiveWords(); got != live {
			t.Errorf("aborted free released memory: %d -> %d", live, got)
		}

		// Freeing inside a committed transaction retires the block; it
		// leaves LiveWords once the limbo drains.
		tm.Atomic(tx, func(tx *Tx) { tx.Free(a, 4) })
		drainForTest(tm)
		if got := sp.LiveWords(); got != live-4 {
			t.Errorf("live words after committed free = %d, want %d", got, live-4)
		}
	})
}

func TestFreeConflictsWithConcurrentReader(t *testing.T) {
	// Free must acquire the covering locks: a reader that has the block
	// in its read set must fail validation afterwards.
	bothDesigns(t, func(t *testing.T, d Design) {
		tm, _ := newTestTM(t, d, nil)
		t1, t2 := tm.NewTx(), tm.NewTx()
		var a, b uint64
		tm.Atomic(t1, func(tx *Tx) {
			a = tx.Alloc(2)
			b = tx.Alloc(1)
			tx.Store(a, 7)
		})

		t1.Begin(false)
		if !attempt(func() {
			_ = t1.Load(a)
			t1.Store(b, 1)
		}) {
			t.Fatal("unexpected abort")
		}
		tm.Atomic(t2, func(tx *Tx) { tx.Free(a, 2) })
		if t1.Commit() {
			t.Fatal("t1 must fail validation: its read was freed")
		}
	})
}

func TestFreeWhileLockedAborts(t *testing.T) {
	bothDesigns(t, func(t *testing.T, d Design) {
		tm, _ := newTestTM(t, d, nil)
		t1, t2 := tm.NewTx(), tm.NewTx()
		var a uint64
		tm.Atomic(t1, func(tx *Tx) { a = tx.Alloc(2); tx.Store(a, 1) })

		t1.Begin(false)
		if !attempt(func() { t1.Store(a, 2) }) {
			t.Fatal("unexpected abort")
		}
		t2.Begin(false)
		if attempt(func() { t2.Free(a, 2) }) {
			t.Fatal("free of a locked block must conflict")
		}
		if !t1.Commit() {
			t.Fatal("t1 commit failed")
		}
	})
}

func TestAllocZeroesReusedMemory(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, nil)
	tx := tm.NewTx()
	var a uint64
	tm.Atomic(tx, func(tx *Tx) {
		a = tx.Alloc(4)
		for i := uint64(0); i < 4; i++ {
			tx.Store(a+i, ^uint64(0))
		}
	})
	tm.Atomic(tx, func(tx *Tx) { tx.Free(a, 4) })
	drainForTest(tm) // force reuse eligibility
	tm.Atomic(tx, func(tx *Tx) {
		b := tx.Alloc(4)
		for i := uint64(0); i < 4; i++ {
			if got := tx.Load(b + i); got != 0 {
				t.Errorf("reused word %d = %d, want 0", i, got)
			}
		}
	})
}

func TestReclaimBlocksWhileReaderActive(t *testing.T) {
	// A doomed reader holding an old snapshot must keep the freed block
	// out of the allocator until it finishes.
	tm, sp := newTestTM(t, WriteBack, nil)
	t1, t2 := tm.NewTx(), tm.NewTx()
	var a uint64
	tm.Atomic(t1, func(tx *Tx) { a = tx.Alloc(2); tx.Store(a, 5) })
	live := sp.LiveWords()

	t1.Begin(false) // old snapshot, active
	if !attempt(func() { _ = t1.Load(a) }) {
		t.Fatal("unexpected abort")
	}
	tm.Atomic(t2, func(tx *Tx) { tx.Free(a, 2) })
	// Drive many retire+drain cycles; the block above must survive them
	// because t1 is still active with an older start.
	for i := 0; i < 300; i++ {
		tm.Atomic(t2, func(tx *Tx) {
			x := tx.Alloc(1)
			tx.Store(x, 1)
			tx.Free(x, 1)
		})
	}
	if got := sp.LiveWords(); got < live-2 {
		t.Errorf("block reclaimed under an active old snapshot: live=%d", got)
	}
	t1.rollback(txn.AbortExplicit)
}

func TestAllocInvalidSizes(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, nil)
	tx := tm.NewTx()
	defer func() {
		if recover() == nil {
			t.Error("Alloc(0) did not panic")
		}
		if tx.InTx() {
			// Clean up so other tests are unaffected.
			tx.rollback(txn.AbortExplicit)
		}
	}()
	tm.Atomic(tx, func(tx *Tx) { tx.Alloc(0) })
}
