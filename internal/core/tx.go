package core

import (
	"runtime"
	"sync/atomic"

	"tinystm/internal/cm"
	"tinystm/internal/mem"
	"tinystm/internal/mvcc"
	"tinystm/internal/txn"
)

// abortSignal is the private panic sentinel that unwinds an aborted
// transaction back to the Atomic retry loop. It never escapes the package.
type abortSignal struct{}

// wsetEntry is one write-back write-set record. Entries covered by the
// same lock are chained through next, and the lock word points at the
// chain head, giving O(1) read-after-write (paper Section 3.1: "the
// address stored in the owned lock allows a transaction to quickly locate
// in its write set the updated memory locations covered by the lock").
type wsetEntry struct {
	addr     mem.Addr
	value    uint64
	lockIdx  uint64
	prevLock uint64 // unlocked word to restore on abort (chain heads only)
	// old captures the committed value this entry is about to supersede;
	// filled during the commit write-back phase only when the MVCC
	// sidecar is attached (the pre-image it publishes).
	old  uint64
	next int32 // index of next entry under the same lock; -1 ends
}

// lockRec is one write-through owned-lock record: which lock we hold and
// the unlocked word it carried before acquisition.
type lockRec struct {
	lockIdx  uint64
	prevLock uint64
}

// undoEntry is one write-through undo-log record.
type undoEntry struct {
	addr mem.Addr
	old  uint64
}

// rsetEntry is one read-set record: the lock covering the read address and
// the version observed. Read sets are partitioned into h parts, one per
// hierarchical counter (Section 3.2).
type rsetEntry struct {
	lockIdx uint64
	version uint64
}

// allocRec tracks transactional memory management (Section 3.1, "Memory
// Management"): allocations are released on abort; frees take effect only
// at commit.
type allocRec struct {
	addr  mem.Addr
	words int
}

// Tx is a transaction descriptor. A descriptor belongs to one worker
// goroutine and is reused across transactions; it must not be shared.
//
// Typical use goes through TM.Atomic, which retries until commit. The
// low-level Begin/Load/Store/Commit API is exported for tests and for
// callers that need manual control over interleavings.
type Tx struct {
	tm   *TM
	slot int

	geo    *geometry
	design Design
	inTx   bool
	ro     bool // read-only attempt: no read set, abort instead of extend
	snap   bool // snapshot-mode attempt: reads served at a fixed timestamp
	upgr   bool // read-only attempt wrote; retry as update
	// released marks a descriptor handed back via Release: it sits on the
	// TM free list and must not run transactions until NewTx re-issues it.
	released bool

	// verShift is a hot-path cache set at Begin: it avoids a per-load
	// branch on the design (write-back versions sit at bit 1,
	// write-through at bit 4 past the incarnation field).
	verShift uint

	// Cooperative-yield state (Config.YieldEvery): simulates multi-core
	// interleaving on few-core hosts. opBudget counts DOWN so the Load
	// fast path pays one decrement-and-test instead of an enabled-check
	// plus a counter compare; loadTick (the cold half) refills it.
	yieldEvery int
	opBudget   int

	start uint64 // snapshot validity range [start, end]
	end   uint64

	// Write-back state.
	wset []wsetEntry

	// Write-through state.
	owned []lockRec
	undo  []undoEntry

	// Read set, partitioned by hierarchical bucket (one part when h==1).
	rparts  [][]rsetEntry
	nparts  int
	rmask   mask256
	hsnap   [MaxHier]uint64 // hierarchical counter values at first access
	hacq    [MaxHier]uint32 // own lock acquisitions per bucket
	hactive []uint8         // buckets touched this attempt (for reset)

	// Second hierarchy level (Config.Hier2).
	rmask2 mask256
	hsnap2 [MaxHier]uint64
	hacq2  [MaxHier]uint32

	allocs []allocRec
	frees  []allocRec

	// TicketBatch state: the drain position of the reserved timestamp
	// block — the INCLUSIVE interval [ticketNext, ticketEnd], empty when
	// ticketNext > ticketEnd — and the clock epoch it was minted in
	// (stale epochs — roll-over, Reconfigure — void the block).
	ticketNext  uint64
	ticketEnd   uint64
	ticketEpoch uint64

	// Hot-path counters batched into plain fields (the owning goroutine
	// is the only writer during an attempt) and flushed into the atomic
	// stats at commit/rollback.
	dupReads         uint64
	ticketsDiscarded uint64
	snapLiveReads    uint64
	snapVersionReads uint64

	// redo accumulates the attempt's logical redo records (Tx.Redo);
	// redoTicket is the durability ticket the hook returned for the most
	// recent commit; redoCommits batches the stats counter like the other
	// hot-path counters.
	redo        []txn.RedoOp
	redoTicket  txn.DurableTicket
	redoRecords uint64

	// pub is the reusable pre-image staging buffer publishVersions fills
	// each update commit when the MVCC sidecar is attached; pubSeen is
	// its reusable write-through dedupe scratch (first undo record per
	// address wins).
	pub     []mvcc.Version
	pubSeen map[mem.Addr]struct{}

	attempts int // retries of the current atomic block (for backoff)
	// lastAbort classifies the most recent rollback, read by the atomic
	// retry loop's instrumentation to bucket the failed attempt's
	// duration by cause.
	lastAbort txn.AbortKind
	rng       uint64

	// Contention management: cmst is this descriptor's policy-visible
	// state (priority, age, kill requests — competitors read it through
	// the TM's slot table); pol pins the active policy per attempt, like
	// geo, so a live SetCM never splits one attempt across policies.
	cmst cm.State
	pol  cm.Policy

	// startEpoch publishes start+1 while the transaction is active (zero
	// when idle); the reclaimer scans it to find the oldest snapshot any
	// live transaction may hold.
	startEpoch atomic.Uint64

	// lastCommitTS records the commit timestamp of the descriptor's most
	// recent update commit (zero for read-only commits). Serialization
	// order of update transactions is exactly timestamp order, which the
	// serializability tests exploit.
	lastCommitTS uint64

	stats txStats

	// Inline first segments for the read/write sets: small transactions
	// stay allocation-free because the initial slice headers point into
	// the descriptor itself; append falls back to the heap only when a
	// set outgrows its segment (and the grown backing is then reused for
	// the descriptor's lifetime).
	winline [6]wsetEntry
	oinline [6]lockRec
	uinline [6]undoEntry
	rinline [12]rsetEntry
}

// mask256 is a 256-bit mask for the read/write masks of Section 3.2.
type mask256 [4]uint64

func (m *mask256) set(i uint64)      { m[i>>6] |= 1 << (i & 63) }
func (m *mask256) has(i uint64) bool { return m[i>>6]&(1<<(i&63)) != 0 }
func (m *mask256) reset()            { *m = mask256{} }

// Begin starts a transaction attempt on this descriptor. Most callers use
// TM.Atomic instead. readOnly selects the no-read-set fast path.
func (tx *Tx) Begin(readOnly bool) {
	if tx.inTx {
		panic("core: Begin on descriptor already in a transaction")
	}
	if tx.released {
		panic("core: Begin on released descriptor")
	}
	tx.tm.fz.enter()
	tx.resetHier()
	tx.geo = tx.tm.geo.Load()
	tx.design = tx.tm.design
	tx.verShift = 1
	if tx.design == WriteThrough {
		tx.verShift = 1 + incBits
	}
	tx.yieldEvery = tx.tm.yieldN
	if tx.yieldEvery > 0 {
		tx.opBudget = tx.yieldEvery
	} else {
		tx.opBudget = opBudgetIdle
	}
	// Pin the contention-management policy for this attempt; a switched
	// policy releases whatever the old one granted (Serializer token)
	// and gets its block-scoped init immediately — a block already
	// retrying when SetCM lands would otherwise run the new policy
	// without an OnStart (e.g. no Timestamp age: it would lose every
	// conflict AND read as killable-youngest to everyone else, starving
	// exactly the long-retrying transactions wait/die protects).
	if p := tx.tm.policy(); tx.pol != p {
		if tx.pol != nil {
			tx.pol.Detach(&tx.cmst)
		}
		tx.pol = p
		p.OnStart(&tx.cmst)
	}
	tx.cmst.BeginAttempt()
	tx.inTx = true
	tx.ro = readOnly
	tx.snap = false
	tx.start = tx.tm.clk.now()
	tx.end = tx.start
	tx.startEpoch.Store(tx.start + 1)

	// Size the partitioned read set to the current h, reusing capacity.
	h := 1
	if tx.geo.hierEnabled() {
		h = int(tx.geo.hierMask + 1)
	}
	if tx.nparts != h {
		if cap(tx.rparts) < h {
			tx.rparts = make([][]rsetEntry, h)
		}
		tx.rparts = tx.rparts[:h]
		tx.nparts = h
	}
	for i := range tx.rparts {
		tx.rparts[i] = tx.rparts[i][:0]
	}
	if tx.rparts[0] == nil {
		tx.rparts[0] = tx.rinline[:0]
	}
	tx.wset = tx.wset[:0]
	tx.owned = tx.owned[:0]
	tx.undo = tx.undo[:0]
	tx.allocs = tx.allocs[:0]
	tx.frees = tx.frees[:0]
	tx.redo = tx.redo[:0]
	tx.redoTicket = nil
	tx.rmask.reset()
	tx.rmask2.reset()
	if h == 1 {
		// Hierarchy disabled: everything lives in partition 0 and the
		// per-access bucket bookkeeping is skipped entirely.
		tx.hactive = append(tx.hactive, 0)
	}
}

// resetHier clears the per-bucket acquisition counts of the previous
// attempt using the geometry that recorded them (a Reconfigure may swap
// the bucket mapping between attempts). Shared by Begin and BeginSnap —
// whichever runs next after an attempt must reset with the OLD geometry
// before swapping in the current one, or stale hacq counts under a new
// bucket mapping would poison the hierarchical validation fast path.
func (tx *Tx) resetHier() {
	if old := tx.geo; old != nil {
		for _, b := range tx.hactive {
			tx.hacq[b] = 0
			if old.hier2Enabled() {
				tx.hacq2[old.hier2Index(uint64(b))] = 0
			}
		}
	}
	tx.hactive = tx.hactive[:0]
}

// InTx reports whether the descriptor is inside an active transaction.
func (tx *Tx) InTx() bool { return tx.inTx }

// ReadOnly reports whether the current attempt runs in read-only mode.
func (tx *Tx) ReadOnly() bool { return tx.ro }

// Snapshot returns the current validity range [start, end] (for tests).
func (tx *Tx) Snapshot() (start, end uint64) { return tx.start, tx.end }

// abort rolls back the current attempt, classifies it, leaves the
// transaction, and unwinds to the retry loop via the abort sentinel.
func (tx *Tx) abort(kind txn.AbortKind) {
	tx.rollback(kind)
	panic(abortSignal{})
}

// rollback releases all transactional state without panicking; used both
// by abort and by commit-time validation failure.
func (tx *Tx) rollback(kind txn.AbortKind) {
	if !tx.inTx {
		panic("core: rollback outside transaction")
	}
	if tx.design == WriteThrough {
		// Restore memory newest-first so earlier values win.
		for i := len(tx.undo) - 1; i >= 0; i-- {
			u := tx.undo[i]
			tx.tm.space.Store(u.addr, u.old)
		}
		// Release locks with incremented incarnation so concurrent
		// readers between their two lock reads detect our interference
		// (Section 3.1's subtle write-through problem).
		for _, rec := range tx.owned {
			tx.releaseWTAborted(rec)
		}
	} else {
		// Write-back: nothing reached memory; restore lock words of
		// chain heads.
		for i := range tx.wset {
			e := &tx.wset[i]
			lw := tx.geo.loadLock(e.lockIdx)
			if isOwned(lw) && ownerSlot(lw) == tx.slot && ownerEntry(lw) == i {
				tx.geo.storeLock(e.lockIdx, e.prevLock)
			}
		}
	}
	// Release memory allocated by the failed transaction.
	for _, a := range tx.allocs {
		tx.tm.space.Free(a.addr, a.words)
	}
	tx.stats.aborts.Add(1)
	tx.stats.abortsByKind[kind].Add(1)
	tx.lastAbort = kind
	tx.tm.aggAborts.Add(1)
	if kind == txn.AbortSnapshotTooOld {
		tx.tm.aggSnapTooOld.Add(1)
	}
	tx.flushHotCounters()
	// Bank the attempt's work as contention-management priority (Karma)
	// and retire the attempt's kill epoch.
	tx.cmst.NoteAbort(tx.accessCount())
	tx.cmst.EndAttempt()
	if tx.snap {
		// Detach from the sidecar's horizon tracking: a finished snapshot
		// must not pin retained versions.
		tx.tm.mvcc.Leave(tx.slot)
		tx.snap = false
	}
	tx.inTx = false
	tx.startEpoch.Store(0)
	tx.tm.fz.exit()
}

// accessCount reports how many transactional accesses the current attempt
// performed (reads + writes): the work measure Karma accrues priority
// from.
func (tx *Tx) accessCount() uint64 {
	n := len(tx.wset) + len(tx.undo)
	for _, part := range tx.rparts {
		n += len(part)
	}
	return uint64(n)
}

// flushHotCounters moves the attempt's batched plain counters into the
// atomic stats (one atomic add per counter per attempt instead of one per
// event on the hot path).
func (tx *Tx) flushHotCounters() {
	if tx.dupReads != 0 {
		tx.stats.dupReadsSkipped.Add(tx.dupReads)
		tx.dupReads = 0
	}
	if tx.ticketsDiscarded != 0 {
		tx.stats.ticketsDiscarded.Add(tx.ticketsDiscarded)
		tx.ticketsDiscarded = 0
	}
	if tx.snapLiveReads != 0 {
		tx.stats.snapLiveReads.Add(tx.snapLiveReads)
		tx.snapLiveReads = 0
	}
	if tx.redoRecords != 0 {
		tx.stats.redoRecords.Add(tx.redoRecords)
		tx.redoRecords = 0
	}
	if tx.snapVersionReads != 0 {
		tx.stats.snapVersionReads.Add(tx.snapVersionReads)
		// The TM-level aggregate feeds the tuning runtime's O(1) sampler
		// (sidecar reads signal live snapshot traffic).
		tx.tm.aggSnapReads.Add(tx.snapVersionReads)
		tx.snapVersionReads = 0
	}
}

// releaseWTAborted releases one write-through lock after an abort,
// bumping the incarnation number; on overflow it takes a fresh version
// from the global clock (paper Section 3.1).
func (tx *Tx) releaseWTAborted(rec lockRec) {
	prev := rec.prevLock
	inc := incarnationWT(prev) + 1
	if inc > incMask {
		ver := tx.freshVersion()
		if ver >= tx.tm.maxClock {
			// The fresh version itself overflowed; the next transaction
			// to start or commit performs roll-over. Clamp so the word
			// stays representable.
			ver = tx.tm.maxClock
		}
		tx.geo.storeLock(rec.lockIdx, mkVersionWT(ver, 0))
		return
	}
	tx.geo.storeLock(rec.lockIdx, mkVersionWT(versionWT(prev), inc))
}

// Load returns the word at addr within the transaction's snapshot.
//
// The fast path — unlocked stripe, stable lock word, version inside the
// snapshot — is laid out branch-first; everything else (owned locks,
// racing writers, snapshot extension) lives in loadSlow. There is no
// freeze check on this path: a freeze initiator (clock roll-over or
// Reconfigure) parks new transactions at Begin and waits for in-flight
// ones to finish naturally, so per-operation checks would only shorten
// the initiator's wait at a cost on every access.
func (tx *Tx) Load(addr uint64) uint64 {
	if !tx.inTx {
		panic("core: Load outside transaction")
	}
	// One decrement-and-test replaces the old yieldEvery-enabled branch
	// plus counter compare: with yielding disabled the budget starts
	// effectively infinite and the cold refill below is never taken.
	tx.opBudget--
	if tx.opBudget <= 0 {
		tx.loadTick()
	}
	if tx.snap {
		return tx.loadSnap(addr)
	}
	a := mem.Addr(addr)
	g := tx.geo
	li := g.lockIndex(addr)

	lw := g.loadLock(li)
	if !isOwned(lw) {
		val := tx.tm.space.Load(a)
		if g.loadLock(li) == lw {
			if ver := lw >> tx.verShift; ver <= tx.end {
				tx.recordRead(addr, li, ver)
				return val
			}
		}
	}
	return tx.loadSlow(a, li)
}

// loadTick is the cold half of the per-load yield bookkeeping
// (Config.YieldEvery): refill the countdown and, when yielding is
// enabled, hand the processor over to simulate fine-grained interleaving.
func (tx *Tx) loadTick() {
	if tx.yieldEvery > 0 {
		tx.opBudget = tx.yieldEvery
		runtime.Gosched()
		return
	}
	tx.opBudget = opBudgetIdle
}

// recordRead appends one read-set entry (no-op for read-only attempts).
func (tx *Tx) recordRead(addr uint64, li uint64, ver uint64) {
	if tx.ro {
		return
	}
	b := uint64(0)
	if tx.geo.hierEnabled() {
		b = tx.hierRecordRead(addr)
	}
	part := tx.rparts[b]
	// Duplicate-read suppression: loop-heavy transactions re-read the
	// same stripe back-to-back (list traversals revisiting links, hot
	// fields read in every iteration); a second identical (lock, version)
	// entry only inflates validation cost. Comparing the partition tail
	// is exact for adjacent repeats and never unsound: dropping a
	// duplicate leaves the entry validation still checks.
	if n := len(part); n > 0 && part[n-1].lockIdx == li && part[n-1].version == ver {
		tx.dupReads++
		return
	}
	tx.rparts[b] = append(part, rsetEntry{lockIdx: li, version: ver})
}

// loadSlow handles the uncommon read cases: a lock owned by this or
// another transaction, a lock word that changed under the read, or a
// version beyond the snapshot (triggering LSA extension).
func (tx *Tx) loadSlow(a mem.Addr, li uint64) uint64 {
	if tx.cmst.Doomed() {
		tx.abort(txn.AbortKilled)
	}
	g := tx.geo
	var val, ver uint64
restart:
	for {
		lw := g.loadLock(li)
		if isOwned(lw) {
			if ownerSlot(lw) != tx.slot {
				// Conflict with another transaction's encounter-time
				// lock. The paper notes a transaction "can try to wait
				// for some time or abort immediately" and picks the
				// latter; here the configured contention-management
				// policy decides (Suicide, the default, reproduces the
				// paper). ConflictSpin still grants a bounded pre-policy
				// wait.
				if tx.spinUnlocked(li) {
					continue restart
				}
				if tx.resolveConflict(li, cm.ReadConflict) {
					continue restart
				}
				tx.abort(txn.AbortReadConflict)
			}
			return tx.loadOwn(a, lw)
		}

		// Unlocked: lock — value — lock, with the whole word compared so
		// a write-through abort (incarnation bump) in between is
		// detected.
		for {
			val = tx.tm.space.Load(a)
			lw2 := g.loadLock(li)
			if lw2 == lw {
				break
			}
			if isOwned(lw2) {
				tx.abort(txn.AbortReadConflict)
			}
			lw = lw2
		}

		ver = lw >> tx.verShift
		if ver <= tx.end {
			break
		}
		// The location changed after our snapshot; try to extend (LSA),
		// which read-only transactions cannot do without a read set,
		// then re-read the value under the extended snapshot.
		if !tx.extend() {
			tx.abort(txn.AbortExtend)
		}
		continue restart
	}

	tx.recordRead(uint64(a), li, ver)
	return val
}

// loadOwn serves a read of a location whose lock this transaction owns.
func (tx *Tx) loadOwn(a mem.Addr, lw uint64) uint64 {
	if tx.design == WriteThrough {
		// Memory always holds our latest value.
		return tx.tm.space.Load(a)
	}
	// Write-back: walk the per-lock chain for our pending value; a miss
	// means the address shares the lock but was never written, so the
	// (committed) memory value is correct and stable while we hold the
	// lock.
	for i := int32(ownerEntry(lw)); i >= 0; i = tx.wset[i].next {
		if tx.wset[i].addr == a {
			return tx.wset[i].value
		}
	}
	return tx.tm.space.Load(a)
}

// Store writes the word at addr within the transaction.
func (tx *Tx) Store(addr uint64, v uint64) {
	tx.store(addr, v, false)
}

func (tx *Tx) store(addr uint64, v uint64, lockOnly bool) {
	if !tx.inTx {
		panic("core: Store outside transaction")
	}
	if tx.ro {
		// Read-only attempts restart in update mode.
		tx.upgr = true
		tx.abort(txn.AbortUpgrade)
	}
	a := mem.Addr(addr)
	g := tx.geo
	li := g.lockIndex(addr)

	if tx.cmst.Doomed() {
		tx.abort(txn.AbortKilled)
	}
	for {
		lw := g.loadLock(li)
		if isOwned(lw) {
			if ownerSlot(lw) != tx.slot {
				if tx.spinUnlocked(li) {
					continue
				}
				if tx.resolveConflict(li, cm.WriteConflict) {
					continue
				}
				tx.abort(txn.AbortWriteConflict)
			}
			tx.storeOwned(a, v, li, lw, lockOnly)
			return
		}
		// Check the version before acquiring: if the location was
		// updated past our snapshot, extend first (otherwise commit
		// validation would abort us anyway — detecting early is the
		// encounter-time philosophy), then restart the acquisition.
		if ver := lw >> tx.verShift; ver > tx.end {
			if !tx.extend() {
				tx.abort(txn.AbortExtend)
			}
			continue
		}
		if tx.acquire(a, v, li, lw, lockOnly) {
			return
		}
		// CAS failed: another transaction grabbed the lock meanwhile;
		// re-read and either conflict or retry (paper: "the whole
		// procedure is restarted").
	}
}

// acquire attempts to take the lock at li (currently reading lw) and
// record the write. Returns false if the CAS lost a race.
func (tx *Tx) acquire(a mem.Addr, v uint64, li uint64, lw uint64, lockOnly bool) bool {
	if tx.geo.hierEnabled() {
		tx.hierRecordWrite(uint64(a))
	}
	if tx.design == WriteThrough {
		idx := len(tx.owned)
		if !tx.geo.casLock(li, lw, mkOwned(tx.slot, idx)) {
			return false
		}
		tx.owned = append(tx.owned, lockRec{lockIdx: li, prevLock: lw})
		old := tx.tm.space.Load(a)
		tx.undo = append(tx.undo, undoEntry{addr: a, old: old})
		if !lockOnly {
			tx.tm.space.Store(a, v)
		}
		return true
	}
	// Write-back: the new chain head is the entry we are about to add.
	idx := len(tx.wset)
	if !tx.geo.casLock(li, lw, mkOwned(tx.slot, idx)) {
		return false
	}
	val := v
	if lockOnly {
		val = tx.tm.space.Load(a) // keep the committed value
	}
	tx.wset = append(tx.wset, wsetEntry{
		addr: a, value: val, lockIdx: li, prevLock: lw, next: -1,
	})
	return true
}

// storeOwned handles a write to a location whose covering lock we already
// hold.
func (tx *Tx) storeOwned(a mem.Addr, v uint64, li uint64, lw uint64, lockOnly bool) {
	if tx.design == WriteThrough {
		old := tx.tm.space.Load(a)
		tx.undo = append(tx.undo, undoEntry{addr: a, old: old})
		if !lockOnly {
			tx.tm.space.Store(a, v)
		}
		return
	}
	head := int32(ownerEntry(lw))
	for i := head; i >= 0; i = tx.wset[i].next {
		if tx.wset[i].addr == a {
			if !lockOnly {
				tx.wset[i].value = v
			}
			return
		}
	}
	// New address under an already-owned lock: prepend as new chain
	// head, carrying the restore word, and repoint the lock.
	val := v
	if lockOnly {
		val = tx.tm.space.Load(a)
	}
	idx := len(tx.wset)
	tx.wset = append(tx.wset, wsetEntry{
		addr: a, value: val, lockIdx: li,
		prevLock: tx.wset[head].prevLock, next: head,
	})
	tx.geo.storeLock(li, mkOwned(tx.slot, idx))
}

// resolveConflict consults the contention-management policy about a lock
// held by another transaction. It returns true once the lock was observed
// free (the caller restarts the access) and false when the policy decided
// to abort; a competitor's kill request arriving while we wait aborts
// directly as AbortKilled. The wait/kill protocol itself — epoch-pinned
// cooperative kills, spin-count restart on ownership handoff — lives in
// cm.ResolveConflict, shared with TL2.
func (tx *Tx) resolveConflict(li uint64, k cm.ConflictKind) bool {
	g := tx.geo
	out := cm.ResolveConflict(tx.pol, &tx.cmst, k,
		func() (*cm.State, bool) {
			lw := g.loadLock(li)
			if !isOwned(lw) {
				return nil, false
			}
			return tx.tm.stateOf(ownerSlot(lw)), true
		})
	switch out {
	case cm.Freed:
		return true
	case cm.Killed:
		tx.abort(txn.AbortKilled)
	}
	return false
}

// spinUnlocked optionally waits — boundedly, to avoid deadlock — for a
// foreign lock to be released. Returns true once the lock was observed
// free; false when the spin budget (Config.ConflictSpin) is exhausted or
// spinning is disabled.
func (tx *Tx) spinUnlocked(li uint64) bool {
	g := tx.geo
	for i := 0; i < tx.tm.spin; i++ {
		if i&15 == 15 {
			// Let the lock owner run; essential on few-core hosts.
			runtime.Gosched()
		}
		if !isOwned(g.loadLock(li)) {
			return true
		}
	}
	return false
}

// extend tries to grow the snapshot's validity range to the current clock
// (LSA snapshot extension): every read must still be valid. Read-only
// transactions have no read set and therefore cannot extend.
func (tx *Tx) extend() bool {
	if tx.ro {
		return false
	}
	now := tx.tm.clk.now()
	if !tx.validate() {
		return false
	}
	tx.end = now
	tx.stats.extensions.Add(1)
	return true
}

// validate checks that every read-set entry is still valid: unlocked with
// the observed version, or locked by this very transaction with the
// observed pre-acquisition version. Hierarchical buckets whose counter
// proves the absence of competing writers are skipped wholesale (the fast
// path of Section 3.2); with a second level enabled, a clean coarse
// counter skips its whole group of buckets.
func (tx *Tx) validate() bool {
	g := tx.geo
	var checked, skipped uint64
	ok := true
	hier := g.hierEnabled()
	hier2 := g.hier2Enabled()
scan:
	for _, bb := range tx.hactive {
		b := uint64(bb)
		part := tx.rparts[b]
		if len(part) == 0 {
			continue
		}
		if hier {
			if hier2 {
				b2 := g.hier2Index(b)
				if g.hier2[b2].v.Load() == tx.hsnap2[b2]+uint64(tx.hacq2[b2]) {
					// No foreign acquisition anywhere in this coarse
					// group since we recorded it.
					skipped += uint64(len(part))
					continue
				}
			}
			if g.hier[b].v.Load() == tx.hsnap[b]+uint64(tx.hacq[b]) {
				// No foreign writer touched this bucket since we
				// recorded it: skip per-entry validation.
				skipped += uint64(len(part))
				continue
			}
		}
		for _, e := range part {
			checked++
			lw := g.loadLock(e.lockIdx)
			if isOwned(lw) {
				if ownerSlot(lw) != tx.slot {
					ok = false
					break scan
				}
				if tx.prevVersionOfOwned(lw) != e.version {
					ok = false
					break scan
				}
			} else if lw>>tx.verShift != e.version {
				ok = false
				break scan
			}
		}
	}
	tx.stats.locksValidated.Add(checked)
	tx.stats.locksSkipped.Add(skipped)
	return ok
}

// prevVersionOfOwned returns the version a lock we own carried before we
// acquired it, recovered via the entry index packed in the lock word.
func (tx *Tx) prevVersionOfOwned(lw uint64) uint64 {
	idx := ownerEntry(lw)
	if tx.design == WriteThrough {
		return versionWT(tx.owned[idx].prevLock)
	}
	return versionWB(tx.wset[idx].prevLock)
}

// isUpdate reports whether the attempt wrote anything (locks held).
func (tx *Tx) isUpdate() bool {
	return len(tx.wset) > 0 || len(tx.owned) > 0
}

// Commit attempts to commit the transaction. It returns false (with the
// transaction rolled back) if validation failed; callers then retry.
func (tx *Tx) Commit() bool {
	if !tx.inTx {
		panic("core: Commit outside transaction")
	}
	if tx.cmst.Doomed() {
		// A competitor's policy asked us to die; honoring it here —
		// before validation and publication — is always legal.
		tx.rollback(txn.AbortKilled)
		return false
	}
	if !tx.isUpdate() {
		// Read-only commit: the incrementally-validated snapshot is
		// consistent by construction; nothing to validate or publish.
		tx.lastCommitTS = 0
		tx.finishCommit()
		return true
	}

	ts, skipOK, ok := tx.commitTS()
	if !ok {
		// Clock exhausted: abort, then perform roll-over at the barrier.
		tx.rollback(txn.AbortFrozen)
		tx.tm.rollOver()
		return false
	}

	// If ts == start+1 — and the clock strategy guarantees that this
	// proves quiescence (see commitTS) — no transaction committed since
	// our snapshot began, so the read set cannot have changed (paper
	// Section 3.2's "notable exception").
	if !skipOK || ts != tx.start+1 {
		if !tx.validate() {
			tx.rollback(txn.AbortValidate)
			return false
		}
	}

	// Point of no return: publish values and release locks at version ts.
	// With the MVCC sidecar attached, the superseded values are captured
	// during the write-back (write-back design) or recovered from the
	// undo log (write-through) and delivered to the sidecar BEFORE the
	// locks are released: per-stripe publication then follows lock order,
	// and a snapshot reader that observes the released version ts knows
	// the matching pre-image is already retained (or trimmed into the
	// horizon) — never still in flight.
	g := tx.geo
	if tx.design == WriteBack {
		if tx.tm.mvcc != nil {
			for i := range tx.wset {
				e := &tx.wset[i]
				e.old = tx.tm.space.Load(e.addr)
				tx.tm.space.Store(e.addr, e.value)
			}
			tx.publishVersions(ts)
		} else {
			for i := range tx.wset {
				e := &tx.wset[i]
				tx.tm.space.Store(e.addr, e.value)
			}
		}
		// Redo records go out while the write locks are still held, like
		// the MVCC pre-images above: per-key hook order == commit order.
		tx.publishRedo(ts)
		newLW := mkVersionWB(ts)
		for i := range tx.wset {
			e := &tx.wset[i]
			lw := g.loadLock(e.lockIdx)
			if isOwned(lw) && ownerSlot(lw) == tx.slot && ownerEntry(lw) == i {
				g.storeLock(e.lockIdx, newLW)
			}
		}
	} else {
		if tx.tm.mvcc != nil {
			tx.publishVersions(ts)
		}
		tx.publishRedo(ts)
		newLW := mkVersionWT(ts, 0)
		for _, rec := range tx.owned {
			g.storeLock(rec.lockIdx, newLW)
		}
	}

	// Apply deferred frees now that the transaction is durable. Blocks
	// are retired rather than freed outright: doomed transactions that
	// started before ts may still dereference them (see package reclaim).
	for _, f := range tx.frees {
		tx.tm.pool.Retire(uint64(f.addr), f.words, ts)
	}
	tx.lastCommitTS = ts
	tx.finishCommit()
	if len(tx.frees) > 0 {
		tx.tm.maybeDrainLimbo()
	}
	return true
}

func (tx *Tx) finishCommit() {
	tx.stats.commits.Add(1)
	tx.tm.aggCommits.Add(1)
	tx.flushHotCounters()
	tx.cmst.NoteCommit()
	tx.cmst.EndAttempt()
	if tx.snap {
		tx.tm.mvcc.Leave(tx.slot)
		tx.snap = false
	}
	tx.inTx = false
	tx.startEpoch.Store(0)
	tx.tm.fz.exit()
}

// Retry aborts the current attempt explicitly; TM.Atomic will re-run the
// block. Useful for optimistic condition waiting.
func (tx *Tx) Retry() {
	if !tx.inTx {
		panic("core: Retry outside transaction")
	}
	tx.abort(txn.AbortExplicit)
}

// Slot returns the descriptor's slot index (diagnostics).
func (tx *Tx) Slot() int { return tx.slot }

// LastCommitTS returns the commit timestamp of the descriptor's most
// recent update commit (zero if it was read-only). Update transactions
// serialize in timestamp order.
func (tx *Tx) LastCommitTS() uint64 { return tx.lastCommitTS }

// TxStats returns this descriptor's counters as a snapshot.
func (tx *Tx) TxStats() txn.Stats {
	var s txn.Stats
	tx.stats.snapshotInto(&s)
	return s
}
