package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tinystm/internal/cm"
	"tinystm/internal/mem"
	"tinystm/internal/mvcc"
	"tinystm/internal/obs"
	"tinystm/internal/reclaim"
	"tinystm/internal/txn"
)

// TM is a TinySTM instance: the shared lock array, the global clock, the
// hierarchical counters and the bookkeeping needed to freeze the world for
// clock roll-over and dynamic reconfiguration. A TM protects exactly one
// mem.Space. All methods are safe for concurrent use.
type TM struct {
	space      *mem.Space
	design     Design
	maxClock   uint64
	spin       int
	yieldN     int
	hier2      uint64
	clockStrat ClockStrategy
	clockBatch uint64
	cmKnobs    cm.Knobs

	// baseCfg is the defaulted construction-time configuration. configFor
	// substitutes the tunable triple into a copy, so Reconfigure validates
	// through exactly the field set New saw and cannot drift as Config
	// grows.
	baseCfg Config

	// aggCommits/aggAborts are the O(1) aggregate counters: descriptors
	// flush into them once per commit/rollback, so samplers (the tuning
	// runtime's throughput meter) never take tm.mu or scan descriptors.
	// They intentionally duplicate the per-descriptor stats: Stats() keeps
	// its full snapshot path, CommitAbortCounts is the lock-free fast one.
	aggCommits atomic.Uint64
	aggAborts  atomic.Uint64
	// aggSnapTooOld/aggSnapReads are the snapshot-mode analogues: too-old
	// aborts and sidecar-served reads, the two signals the tuning
	// runtime's version-budget controller differentiates per period.
	aggSnapTooOld atomic.Uint64
	aggSnapReads  atomic.Uint64

	// mvcc is the commit-ordered version sidecar backing snapshot-mode
	// read-only transactions; nil unless Config.Snapshots.
	mvcc *mvcc.Store

	// redoHook is the installed durability hook (SetRedoHook); nil when
	// no durability layer is attached. Descriptors load it once per
	// update commit and call it while their write locks are held.
	redoHook redoHookPtr

	// obsHook is the installed observability sink (SetObs); nil when the
	// layer is not attached. The atomic retry loop loads it once per
	// block — disabled instrumentation costs one pointer load and a
	// predictable branch.
	obsHook atomic.Pointer[obs.TMObs]

	// cmh holds the active contention-management policy behind one
	// pointer load; descriptors pin it per attempt at Begin (like geo),
	// so SetCM switches policies on a live TM without a freeze.
	// cmSwitches counts live policy changes (the policy Reconfigs).
	cmh        atomic.Pointer[cmHolder]
	cmSwitches atomic.Uint64

	// descsPub is the lock-free owner-slot lookup table: a snapshot of
	// descs republished on every mint, so conflict resolution can map a
	// lock word's owner slot to its cm.State without taking mu.
	descsPub atomic.Pointer[[]*Tx]

	clk clock
	// clockEpoch invalidates per-descriptor ticket reservations: it is
	// bumped (under the freeze barrier, so no transaction is mid-commit)
	// whenever the clock resets, and TicketBatch commits discard batches
	// minted in an older epoch. This is the "drain reservations at
	// freeze" half of the strategy; the staleness check in commitTS is
	// the steady-state half.
	clockEpoch atomic.Uint64
	geo        atomic.Pointer[geometry]
	fz         freezer

	pool reclaim.Pool

	mu    sync.Mutex // descriptor registry
	descs []*Tx
	// free holds released descriptors for reuse: long-running servers that
	// keep spawning worker goroutines would otherwise exhaust maxSlots with
	// no way to recover. Guarded by mu.
	free []*Tx
	// retired accumulates the counters of released descriptors so Stats()
	// survives descriptor recycling (a reused descriptor restarts its
	// counters from zero). Guarded by mu.
	retired   txn.Stats
	rollOvers atomic.Uint64
	reconfigs atomic.Uint64
}

// cmHolder wraps the policy interface so it can sit behind one
// atomic.Pointer (interfaces cannot be stored atomically by themselves).
type cmHolder struct{ pol cm.Policy }

// policy returns the active contention-management policy.
func (tm *TM) policy() cm.Policy { return tm.cmh.Load().pol }

// stateOf maps an owner slot to its descriptor's contention-management
// state; nil when the slot is unknown. Lock-free: conflict resolution runs
// on the transaction slow path and must not take the registry mutex.
func (tm *TM) stateOf(slot int) *cm.State {
	ds := tm.descsPub.Load()
	if ds == nil || slot < 0 || slot >= len(*ds) {
		return nil
	}
	return &(*ds)[slot].cmst
}

// drainThreshold is the limbo size at which commits attempt reclamation.
const drainThreshold = 128

// minActiveStart returns the oldest snapshot start among active
// transactions, or the maximum value when none are active.
func (tm *TM) minActiveStart() uint64 {
	tm.mu.Lock()
	descs := tm.descs
	tm.mu.Unlock()
	min := ^uint64(0)
	for _, tx := range descs {
		if e := tx.startEpoch.Load(); e != 0 && e-1 < min {
			min = e - 1
		}
	}
	return min
}

// maybeDrainLimbo reclaims retired blocks whose freeing commit precedes
// every active snapshot.
func (tm *TM) maybeDrainLimbo() {
	if tm.pool.Len() < drainThreshold {
		return
	}
	for _, b := range tm.pool.Drain(tm.minActiveStart()) {
		tm.space.Free(mem.Addr(b.Addr), b.Words)
	}
}

// drainLimboAll reclaims every retired block. Only callable while frozen.
func (tm *TM) drainLimboAll() {
	for _, b := range tm.pool.DrainAll() {
		tm.space.Free(mem.Addr(b.Addr), b.Words)
	}
}

// New creates a TM over cfg.Space with the given parameters.
func New(cfg Config) (*TM, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	tm := &TM{
		space:      cfg.Space,
		design:     cfg.Design,
		maxClock:   cfg.MaxClock,
		spin:       cfg.ConflictSpin,
		yieldN:     cfg.YieldEvery,
		hier2:      cfg.Hier2,
		clockStrat: cfg.Clock,
		clockBatch: cfg.ClockBatch,
		cmKnobs:    cfg.CMKnobs,
		baseCfg:    cfg,
	}
	tm.fz.init()
	tm.geo.Store(newGeometry(Params{Locks: cfg.Locks, Shifts: cfg.Shifts, Hier: cfg.Hier}, cfg.Hier2))
	tm.cmh.Store(&cmHolder{pol: cm.New(cfg.CM, cfg.CMKnobs, tm.CommitAbortCounts)})
	if cfg.Snapshots {
		tm.mvcc = mvcc.New(mvcc.Config{
			Words:  cfg.Space.Cap(),
			Shards: cfg.SnapshotShards,
			Budget: cfg.SnapshotBudget,
		})
	}
	return tm, nil
}

// MustNew is New that panics on configuration errors; convenient in
// examples and tests where the configuration is a literal.
func MustNew(cfg Config) *TM {
	tm, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return tm
}

// Space returns the memory arena this TM protects.
func (tm *TM) Space() *mem.Space { return tm.space }

// Design returns the memory-access strategy of this TM.
func (tm *TM) Design() Design { return tm.design }

// Params returns the current tunable triple (#locks, #shifts, h).
func (tm *TM) Params() Params { return tm.geo.Load().params() }

// ClockValue returns the current global clock (diagnostics and tests).
func (tm *TM) ClockValue() uint64 { return tm.clk.now() }

// Clock returns the commit-clock strategy this TM runs.
func (tm *TM) Clock() ClockStrategy { return tm.clockStrat }

// CM returns the active contention-management policy kind.
func (tm *TM) CM() cm.Kind { return tm.policy().Kind() }

// SetObs installs (or, with nil, detaches) the observability sink:
// commit/abort duration histograms plus the sampled flight recorder.
// Safe on a live TM; blocks that already loaded the previous hook finish
// under it.
func (tm *TM) SetObs(o *obs.TMObs) { tm.obsHook.Store(o) }

// Obs returns the installed observability sink, nil when detached.
func (tm *TM) Obs() *obs.TMObs { return tm.obsHook.Load() }

// SetCM switches the contention-management policy of a live TM. Unlike
// Reconfigure it needs no world freeze: descriptors pin the policy per
// attempt at Begin, detach from the old instance (releasing any held
// resources, e.g. the Serializer token) and pick the new one up on their
// next attempt. A zero kn keeps the construction-time knobs.
func (tm *TM) SetCM(k cm.Kind, kn cm.Knobs) error {
	if !k.Valid() {
		return fmt.Errorf("core: unknown contention-management policy %d", int(k))
	}
	if kn == (cm.Knobs{}) {
		kn = tm.cmKnobs
	}
	prev := tm.CM()
	tm.cmh.Store(&cmHolder{pol: cm.New(k, kn, tm.CommitAbortCounts)})
	if k != prev {
		tm.cmSwitches.Add(1)
	}
	return nil
}

// NewTx registers and returns a fresh transaction descriptor. Descriptors
// are affine to one goroutine at a time and are reused across
// transactions; goroutines that exit for good should hand theirs back with
// Release so the slot can be recycled.
func (tm *TM) NewTx() *Tx {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	if n := len(tm.free); n > 0 {
		tx := tm.free[n-1]
		tm.free = tm.free[:n-1]
		tx.released = false
		return tx
	}
	if len(tm.descs) >= maxSlots {
		panic(fmt.Sprintf("core: more than %d transaction descriptors", maxSlots))
	}
	tx := &Tx{tm: tm, slot: len(tm.descs), rng: 0x9e3779b97f4a7c15 ^ uint64(len(tm.descs)+1)}
	tx.cmst.Seed(uint64(tx.slot + 1))
	tx.ticketNext, tx.ticketEnd = 1, 0 // empty reservation block (next > end)
	// Start the write sets on their inline segments so small transactions
	// never touch the heap (the read set is wired in Begin, which owns
	// the partition layout).
	tx.wset = tx.winline[:0]
	tx.owned = tx.oinline[:0]
	tx.undo = tx.uinline[:0]
	tm.descs = append(tm.descs, tx)
	// Republish the owner-slot lookup snapshot (copy: readers hold the
	// old slice while append may grow the backing array).
	pub := make([]*Tx, len(tm.descs))
	copy(pub, tm.descs)
	tm.descsPub.Store(&pub)
	if tm.mvcc != nil {
		tm.mvcc.EnsureSlots(len(tm.descs))
	}
	return tx
}

// Release returns a descriptor to its TM for reuse by a later NewTx. The
// descriptor must not be inside a transaction and must not be used again
// by the caller. Its counters are folded into the TM-level retired
// aggregate first, so Stats() loses nothing to recycling.
func (tx *Tx) Release() {
	if tx.inTx {
		panic("core: Release of descriptor inside a transaction")
	}
	tm := tx.tm
	tm.mu.Lock()
	defer tm.mu.Unlock()
	if tx.released {
		panic("core: descriptor released twice")
	}
	// Let the policy release anything it granted this descriptor (e.g.
	// the Serializer token) and clear the carried priority/age so the
	// next borrower starts fresh.
	if tx.pol != nil {
		tx.pol.Detach(&tx.cmst)
		tx.pol = nil
	}
	// Detach from the MVCC horizon tracking: a released descriptor must
	// never pin retained versions. Normally the registration is already
	// gone (commit/rollback clear it), but a slot recycled after an
	// abnormal unwind would otherwise hold the sidecar's horizon back
	// forever — trimming could never advance past its stale snapshot.
	if tm.mvcc != nil {
		tm.mvcc.Leave(tx.slot)
	}
	tx.cmst.NoteCommit()
	tx.stats.snapshotInto(&tm.retired)
	tx.stats.reset()
	tx.released = true
	tm.free = append(tm.free, tx)
}

// Atomic runs fn as an update-capable transaction, retrying on conflict
// until it commits. Panics from fn other than the STM's internal abort
// signal propagate to the caller after the transaction rolls back.
func (tm *TM) Atomic(tx *Tx, fn func(*Tx)) {
	tm.atomic(tx, fn, false)
}

// AtomicRO runs fn as a read-only transaction: no read set is maintained
// and the snapshot is never extended (paper Section 3.1: "read-only
// transactions are particularly efficient"). If fn writes, the attempt
// restarts transparently in update mode.
func (tm *TM) AtomicRO(tx *Tx, fn func(*Tx)) {
	tm.atomic(tx, fn, true)
}

func (tm *TM) atomic(tx *Tx, fn func(*Tx), ro bool) {
	if tx.tm != tm {
		panic("core: descriptor belongs to a different TM")
	}
	if tx.inTx {
		// Flat nesting: an inner atomic block merges into the enclosing
		// transaction (TinySTM's nesting model).
		fn(tx)
		return
	}
	o := tm.obsHook.Load()
	if o == nil {
		// Uninstrumented fast path: no clock reads, no sampling draw.
		tx.attempts = 0
		tx.upgr = false
		for {
			tx.attempts++
			tx.maybeRollOverOnBegin()
			tx.Begin(ro && !tx.upgr)
			if tx.attempts == 1 {
				tx.pol.OnStart(&tx.cmst)
			}
			if tx.runBody(fn) && tx.Commit() {
				tx.pol.OnCommit(&tx.cmst)
				return
			}
			// The attempt failed and rolled back (NoteAbort already
			// accrued its work as priority); the policy may block here —
			// backoff spinning, or waiting for the serialization token.
			tx.pol.OnAbort(&tx.cmst)
		}
	}
	tm.atomicObserved(tx, fn, ro, o)
}

// atomicObserved is the instrumented twin of the atomic retry loop: it
// times every attempt into the commit/abort histograms and, for sampled
// blocks, emits the begin/retry/abort/commit event trace.
func (tm *TM) atomicObserved(tx *Tx, fn func(*Tx), ro bool, o *obs.TMObs) {
	sampled := o.SampleTx()
	tx.attempts = 0
	tx.upgr = false
	for {
		tx.attempts++
		if sampled {
			tm.traceAttempt(tx, o)
		}
		t0 := time.Now()
		tx.maybeRollOverOnBegin()
		tx.Begin(ro && !tx.upgr)
		if tx.attempts == 1 {
			tx.pol.OnStart(&tx.cmst)
		}
		if tx.runBody(fn) && tx.Commit() {
			d := uint64(time.Since(t0))
			o.OnCommit(d)
			if sampled {
				tm.traceOutcome(tx, o, obs.EvCommit, 0, d)
			}
			tx.pol.OnCommit(&tx.cmst)
			return
		}
		d := uint64(time.Since(t0))
		o.OnAbort(d, tx.lastAbort)
		if sampled {
			tm.traceOutcome(tx, o, obs.EvAbort, tx.lastAbort, d)
		}
		tx.pol.OnAbort(&tx.cmst)
	}
}

// traceAttempt emits the begin (first attempt) or retry event for a
// sampled atomic block.
func (tm *TM) traceAttempt(tx *Tx, o *obs.TMObs) {
	kind := obs.EvRetry
	if tx.attempts == 1 {
		kind = obs.EvBegin
	}
	o.Trace(tm.baseEvent(tx, kind))
}

// traceOutcome emits the abort or commit event closing one attempt.
func (tm *TM) traceOutcome(tx *Tx, o *obs.TMObs, kind obs.EventKind, cause txn.AbortKind, durNs uint64) {
	e := tm.baseEvent(tx, kind)
	e.Cause = cause
	e.DurNs = durNs
	o.Trace(e)
}

func (tm *TM) baseEvent(tx *Tx, kind obs.EventKind) obs.Event {
	p := tm.geo.Load().params()
	return obs.Event{
		TimeUnixNano: time.Now().UnixNano(),
		Kind:         kind,
		CM:           tm.CM(),
		Slot:         uint32(tx.slot),
		Attempt:      uint32(tx.attempts),
		Locks:        p.Locks,
		Shifts:       uint32(p.Shifts),
		Hier:         p.Hier,
	}
}

// runBody executes fn, converting the abort sentinel into a false return.
// The transaction is already rolled back when the sentinel unwinds.
func (tx *Tx) runBody(fn func(*Tx)) (ok bool) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if _, is := r.(abortSignal); is {
			ok = false
			return
		}
		// Foreign panic: roll back cleanly, then propagate. The atomic
		// block is ending abnormally, so also release anything the
		// contention-management policy granted (the OnCommit/OnAbort
		// hooks will not run) and clear the per-block priority/age —
		// a recovered-and-reused descriptor (kvserver's 507 path) must
		// not carry them into an unrelated block.
		if tx.inTx {
			tx.rollback(txn.AbortExplicit)
		}
		if tx.pol != nil {
			tx.pol.Detach(&tx.cmst)
		}
		tx.cmst.NoteCommit()
		panic(r)
	}()
	fn(tx)
	return true
}

// rollOver resets the clock and all version numbers behind the freeze
// barrier (paper Section 3.1, "Clock Management"). Safe to call from
// multiple racing initiators: the reset is double-checked under the
// barrier.
func (tm *TM) rollOver() {
	tm.fz.freeze()
	// Double-check under the barrier: another initiator may have already
	// reset the clock while we waited. The reservation counter is checked
	// too: under TicketBatch the initiator may have exhausted a reserved
	// block while the visible clock still trails it.
	if tm.clk.exhausted(tm.maxClock) {
		tm.drainLimboAll() // old-epoch timestamps become meaningless
		tm.clk.reset()
		tm.clockEpoch.Add(1) // drain outstanding ticket reservations
		tm.geo.Load().resetVersions()
		if tm.mvcc != nil {
			// Retained versions carry old-epoch timestamps; drop them all
			// (no snapshot can be active behind the barrier).
			tm.mvcc.Reset()
		}
		tm.rollOvers.Add(1)
	}
	tm.fz.unfreeze()
}

// maybeRollOverOnBegin performs clock roll-over before starting a new
// attempt if the clock is exhausted (transactions also detect this at
// commit time; checking at begin keeps tiny MaxClock configurations live).
// Only the visible clock is consulted: loading the TicketBatch reservation
// counter here would drag its contended cache line into every Begin, and
// liveness does not need it — a commit whose block refill crosses the
// threshold reaches rollOver through ticketTS returning !ok, and the
// double-check there uses the dual-counter exhausted().
func (tx *Tx) maybeRollOverOnBegin() {
	if tx.tm.clk.now() >= tx.tm.maxClock-1 {
		tx.tm.rollOver()
	}
}

// backoffWindow returns the spin-window size for the given retry count:
// 2^min(5+attempts, 16) iterations. The implementation lives in package cm
// (shared with the Backoff policy); this wrapper keeps the original
// floor/cap regression tests pinned against the one true schedule.
func backoffWindow(attempts int) uint64 {
	return cm.Window(attempts, 0, 0)
}

// backoffSpins draws the next randomized spin count from the descriptor's
// private xorshift state (split out so tests can observe the distribution
// without spinning). The Backoff policy draws from the same generator via
// its per-descriptor cm.State.
func (tx *Tx) backoffSpins() uint64 {
	return cm.Spins(&tx.rng, tx.attempts, 0, 0)
}

// Reconfigure atomically replaces the tunable parameters (#locks, #shifts,
// h) of a live TM (paper Section 4.2). It freezes the world with the
// roll-over barrier, swaps in a fresh zeroed lock array, resets the clock
// (all versions restart from zero), and resumes. In-flight transactions
// abort and retry under the new geometry.
func (tm *TM) Reconfigure(p Params) error {
	cfg := tm.configFor(p)
	if err := cfg.validate(); err != nil {
		return err
	}
	hier2 := cfg.Hier2
	tm.fz.freeze()
	tm.drainLimboAll()
	tm.geo.Store(newGeometry(p, hier2))
	tm.clk.reset()
	tm.clockEpoch.Add(1) // drain outstanding ticket reservations
	if tm.mvcc != nil {
		// The clock reset invalidates every retained timestamp, and the
		// new geometry remaps stripes besides.
		tm.mvcc.Reset()
	}
	tm.reconfigs.Add(1)
	tm.fz.unfreeze()
	return nil
}

// configFor returns the TM's construction-time configuration with the
// tunable triple replaced by p. The static second hierarchy level is
// clamped to the new h (it cannot exceed the tunable first level; clamping
// rather than rejecting lets the tuner shrink h freely). Both New and
// Reconfigure validate through this one Config value.
func (tm *TM) configFor(p Params) Config {
	cfg := tm.baseCfg
	cfg.Locks, cfg.Shifts, cfg.Hier = p.Locks, p.Shifts, p.Hier
	if cfg.Hier2 > p.Hier {
		cfg.Hier2 = p.Hier
	}
	return cfg
}

// Stats sums commit/abort/validation counters across all descriptors plus
// the retired aggregate of released ones. This is the full snapshot path;
// samplers on a period cadence should prefer CommitAbortCounts, which
// reads two atomics instead of locking the registry and scanning.
func (tm *TM) Stats() txn.Stats {
	tm.mu.Lock()
	// The scan stays under mu so a concurrent Release cannot move counters
	// into retired after we copied it but before we reach the descriptor
	// (which would make successive snapshots non-monotonic).
	s := tm.retired
	for _, tx := range tm.descs {
		tx.stats.snapshotInto(&s)
	}
	tm.mu.Unlock()
	s.RollOvers = tm.rollOvers.Load()
	s.Reconfigs = tm.reconfigs.Load()
	s.CMSwitches = tm.cmSwitches.Load()
	if tm.mvcc != nil {
		s.VersionsPublished, s.VersionsTrimmed = tm.mvcc.Counts()
	}
	return s
}

// CommitAbortCounts returns the aggregate commit and abort counters. O(1),
// lock-free, and safe on any goroutine: this is the sampler the tuning
// runtime polls every period without perturbing the transaction hot path.
func (tm *TM) CommitAbortCounts() (commits, aborts uint64) {
	return tm.aggCommits.Load(), tm.aggAborts.Load()
}

// DescriptorCounts reports how many descriptors have been minted over the
// TM's lifetime and how many of those currently sit on the free list
// (diagnostics; leak tests).
func (tm *TM) DescriptorCounts() (minted, free int) {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return len(tm.descs), len(tm.free)
}

// Frozen reports whether the TM is currently at a barrier (tests).
func (tm *TM) Frozen() bool { return tm.fz.isFrozen() }

// Compile-time checks: *Tx satisfies the shared transaction interface and
// *TM the system interfaces used by the generic harness and store.
var (
	_ txn.Tx                  = (*Tx)(nil)
	_ txn.System[*Tx]         = (*TM)(nil)
	_ txn.SnapshotSystem[*Tx] = (*TM)(nil)
)
