package core

import (
	"testing"
	"testing/quick"
)

func TestLockWordOwnedRoundTrip(t *testing.T) {
	cases := []struct {
		slot, entry int
	}{
		{0, 0}, {1, 0}, {0, 1}, {7, 13}, {maxSlots - 1, 1<<entryBits - 1},
	}
	for _, c := range cases {
		lw := mkOwned(c.slot, c.entry)
		if !isOwned(lw) {
			t.Errorf("mkOwned(%d,%d) not owned", c.slot, c.entry)
		}
		if got := ownerSlot(lw); got != c.slot {
			t.Errorf("ownerSlot = %d, want %d", got, c.slot)
		}
		if got := ownerEntry(lw); got != c.entry {
			t.Errorf("ownerEntry = %d, want %d", got, c.entry)
		}
	}
}

func TestLockWordOwnedRoundTripQuick(t *testing.T) {
	f := func(slot uint16, entry uint32) bool {
		s := int(slot) % maxSlots
		e := int(entry) // always < 2^40
		lw := mkOwned(s, e)
		return isOwned(lw) && ownerSlot(lw) == s && ownerEntry(lw) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLockWordVersionWB(t *testing.T) {
	for _, ver := range []uint64{0, 1, 42, 1 << 40, maxVersion(WriteBack)} {
		lw := mkVersionWB(ver)
		if isOwned(lw) {
			t.Errorf("version word %d reads as owned", ver)
		}
		if got := versionWB(lw); got != ver {
			t.Errorf("versionWB = %d, want %d", got, ver)
		}
	}
}

func TestLockWordVersionWTRoundTripQuick(t *testing.T) {
	f := func(ver uint64, inc uint8) bool {
		v := ver % (maxVersion(WriteThrough) + 1)
		i := uint64(inc) & incMask
		lw := mkVersionWT(v, i)
		return !isOwned(lw) && versionWT(lw) == v && incarnationWT(lw) == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLockWordIncarnationDoesNotDisturbVersion(t *testing.T) {
	for inc := uint64(0); inc <= incMask; inc++ {
		lw := mkVersionWT(77, inc)
		if versionWT(lw) != 77 {
			t.Fatalf("incarnation %d corrupted version: %d", inc, versionWT(lw))
		}
		if incarnationWT(lw) != inc {
			t.Fatalf("incarnation round trip failed: got %d want %d", incarnationWT(lw), inc)
		}
	}
}

func TestVersionHelpersDispatch(t *testing.T) {
	if version(WriteBack, mkVersion(WriteBack, 9)) != 9 {
		t.Error("WB dispatch broken")
	}
	if version(WriteThrough, mkVersion(WriteThrough, 9)) != 9 {
		t.Error("WT dispatch broken")
	}
	if incarnationWT(mkVersion(WriteThrough, 9)) != 0 {
		t.Error("mkVersion should reset incarnation")
	}
}

func TestMask256(t *testing.T) {
	var m mask256
	for _, i := range []uint64{0, 1, 63, 64, 127, 128, 255} {
		if m.has(i) {
			t.Fatalf("fresh mask has bit %d", i)
		}
		m.set(i)
		if !m.has(i) {
			t.Fatalf("set bit %d not visible", i)
		}
	}
	if !m.has(255) || m.has(254) {
		t.Fatal("mask cross-talk")
	}
	m.reset()
	for _, i := range []uint64{0, 63, 64, 255} {
		if m.has(i) {
			t.Fatalf("reset left bit %d", i)
		}
	}
}
