package core

import "testing"

// The first retries must draw from a usefully large window: a bare
// 2^attempts window gives [0,1] at attempts=1, so hot conflicts re-collide
// immediately (the regression this pins).
func TestBackoffWindowFloorAndCap(t *testing.T) {
	cases := []struct {
		attempts int
		want     uint64
	}{
		{1, 1 << 6},
		{2, 1 << 7},
		{5, 1 << 10},
		{11, 1 << 16},
		{12, 1 << 16}, // capped
		{100, 1 << 16},
	}
	for _, c := range cases {
		if got := backoffWindow(c.attempts); got != c.want {
			t.Errorf("backoffWindow(%d) = %d, want %d", c.attempts, got, c.want)
		}
	}
	for a := 1; a < 20; a++ {
		if backoffWindow(a+1) < backoffWindow(a) {
			t.Errorf("window not monotone at attempts=%d", a)
		}
	}
}

// The drawn spin counts on the first retry must actually spread over the
// window: mean well above zero (a degenerate [0,1] window has mean 0.5)
// and every draw inside [0, 64).
func TestBackoffSpinDistributionFirstRetry(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, nil)
	tx := tm.NewTx()
	tx.attempts = 1
	const n = 4096
	var sum, max uint64
	for i := 0; i < n; i++ {
		s := tx.backoffSpins()
		sum += s
		if s > max {
			max = s
		}
		if s >= backoffWindow(1) {
			t.Fatalf("draw %d outside window [0,%d)", s, backoffWindow(1))
		}
	}
	mean := float64(sum) / n
	// Uniform over [0,64) has mean 31.5; anything below 20 indicates the
	// window collapsed back toward the old [0,1] behaviour.
	if mean < 20 {
		t.Errorf("mean spin count %.1f too small for a [0,%d) window", mean, backoffWindow(1))
	}
	if max < backoffWindow(1)/2 {
		t.Errorf("max spin count %d never reached the upper half of the window", max)
	}
}

// Later retries must keep growing the window up to the cap.
func TestBackoffSpinDistributionGrows(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, nil)
	tx := tm.NewTx()
	meanAt := func(attempts int) float64 {
		tx.attempts = attempts
		var sum uint64
		const n = 4096
		for i := 0; i < n; i++ {
			sum += tx.backoffSpins()
		}
		return float64(sum) / n
	}
	m1, m5, m20 := meanAt(1), meanAt(5), meanAt(20)
	if !(m1 < m5 && m5 < m20) {
		t.Errorf("means not increasing: attempts=1 %.0f, 5 %.0f, 20 %.0f", m1, m5, m20)
	}
	if m20 > float64(uint64(1)<<16) {
		t.Errorf("mean %.0f exceeds the 2^16 cap window", m20)
	}
}
