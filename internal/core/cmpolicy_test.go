package core

import (
	"runtime"
	"sync"
	"testing"

	"tinystm/internal/cm"
	"tinystm/internal/txn"
)

// Contention-management subsystem tests: the policy hook in the conflict
// paths, cooperative kills, live policy switching, and the correctness
// suites under every policy.

// The deprecated boolean must keep selecting randomized backoff.
func TestBackoffOnAbortShim(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, func(c *Config) { c.BackoffOnAbort = true })
	if got := tm.CM(); got != cm.Backoff {
		t.Errorf("BackoffOnAbort mapped to %v, want backoff", got)
	}
	// An explicit policy wins over the shim.
	tm2, _ := newTestTM(t, WriteBack, func(c *Config) {
		c.BackoffOnAbort = true
		c.CM = cm.Karma
	})
	if got := tm2.CM(); got != cm.Karma {
		t.Errorf("explicit CM overridden by shim: %v", got)
	}
}

// A kill request from a winning policy must abort the victim at its next
// commit checkpoint — cooperatively, with the victim classifying the abort
// as AbortKilled and releasing its locks.
func TestKillRequestAbortsVictimAtCommit(t *testing.T) {
	bothDesigns(t, func(t *testing.T, d Design) {
		tm, _ := newTestTM(t, d, func(c *Config) { c.CM = cm.Timestamp })
		t1, t2 := tm.NewTx(), tm.NewTx()
		var a uint64
		tm.Atomic(t1, func(tx *Tx) { a = tx.Alloc(1); tx.Store(a, 1) })

		// t1 takes the lock at the low-level API (no atomic block, so no
		// age: the Timestamp policy treats it as youngest and any tracked
		// transaction out-prioritizes it).
		t1.Begin(false)
		if !attempt(func() { t1.Store(a, 10) }) {
			t.Fatal("unexpected abort")
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			tm.Atomic(t2, func(tx *Tx) { tx.Store(a, tx.Load(a)+100) })
		}()
		// Wait until t2's conflict resolution has asked t1 to die.
		for !t1.cmst.Doomed() {
			runtime.Gosched()
		}
		if t1.Commit() {
			t.Fatal("doomed transaction committed")
		}
		wg.Wait()
		if got := t1.TxStats().AbortsByKind[txn.AbortKilled]; got != 1 {
			t.Errorf("killed aborts = %d, want 1", got)
		}
		tm.Atomic(t1, func(tx *Tx) {
			if got := tx.Load(a); got != 101 {
				t.Errorf("value = %d, want 101 (t2's update over the committed 1)", got)
			}
		})
	})
}

// A doomed victim parked in its read phase must also notice the request on
// the load slow path.
func TestKillRequestAbortsVictimOnLoad(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, func(c *Config) { c.CM = cm.Timestamp })
	t1, t2 := tm.NewTx(), tm.NewTx()
	var a, b uint64
	tm.Atomic(t1, func(tx *Tx) { a, b = tx.Alloc(1), tx.Alloc(1) })

	t1.Begin(false)
	if !attempt(func() { t1.Store(a, 1) }) {
		t.Fatal("unexpected abort")
	}
	// t2 locks b, then t1 is doomed and must abort when touching b.
	t2.Begin(false)
	if !attempt(func() { t2.Store(b, 2) }) {
		t.Fatal("unexpected abort")
	}
	if !t1.cmst.RequestKill(t1.cmst.Epoch()) {
		t.Fatal("RequestKill failed")
	}
	if attempt(func() { _ = t1.Load(b) }) {
		t.Fatal("doomed transaction survived a slow-path load")
	}
	if got := t1.TxStats().AbortsByKind[txn.AbortKilled]; got != 1 {
		t.Errorf("killed aborts = %d, want 1", got)
	}
	if !t2.Commit() {
		t.Fatal("t2 commit failed")
	}
}

// allCMPolicies runs f once per policy, like bothDesigns/allClockStrategies.
func allCMPolicies(t *testing.T, kinds []cm.Kind, f func(t *testing.T, k cm.Kind)) {
	t.Helper()
	for _, k := range kinds {
		k := k
		t.Run(k.String(), func(t *testing.T) { f(t, k) })
	}
}

// The bank-invariant stress suite must hold under every policy and both
// designs (the satellite requires Suicide, Backoff, Karma; the rest ride
// along for free).
func TestBankInvariantAllPolicies(t *testing.T) {
	allCMPolicies(t, cm.AllKinds, func(t *testing.T, k cm.Kind) {
		bothDesigns(t, func(t *testing.T, d Design) {
			tm, _ := newTestTM(t, d, func(c *Config) {
				c.CM = k
				// Make the serializer eager so its token path actually
				// runs inside the suite.
				c.CMKnobs = cm.Knobs{SerializerMinAborts: 1}
			})
			runBankStress(t, tm, 4, 300)
		})
	})
}

// Serializability (commit-timestamp replay) must hold under the policies
// that wait and kill, not just abort.
func TestSerializabilityAllPolicies(t *testing.T) {
	allCMPolicies(t, []cm.Kind{cm.Suicide, cm.Backoff, cm.Karma, cm.Timestamp, cm.Serializer},
		func(t *testing.T, k cm.Kind) {
			tm, _ := newTestTM(t, WriteBack, func(c *Config) {
				c.CM = k
				c.CMKnobs = cm.Knobs{SerializerMinAborts: 1}
			})
			runSerializabilityCheck(t, tm, 4, 200, 8)
		})
}

// Karma must actually accrue priority from the work of aborted attempts
// and clear it at commit.
func TestKarmaPriorityAccrues(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, func(c *Config) { c.CM = cm.Karma })
	tx := tm.NewTx()
	var a uint64
	tm.Atomic(tx, func(t *Tx) { a = t.Alloc(4) })

	first := true
	var prioFirst, prioRetry uint64
	tm.Atomic(tx, func(t *Tx) {
		for i := uint64(0); i < 4; i++ {
			t.Store(a+i, t.Load(a+i)+1)
		}
		if first {
			first = false
			prioFirst = tx.cmst.Priority()
			t.Retry()
		}
		prioRetry = tx.cmst.Priority()
	})
	if prioFirst != 0 {
		t.Errorf("priority = %d before any abort, want 0", prioFirst)
	}
	if prioRetry < 4 {
		t.Errorf("priority = %d on the retry, want >= 4 (the aborted attempt's accesses)", prioRetry)
	}
	if got := tx.cmst.Priority(); got != 0 {
		t.Errorf("priority = %d after commit, want 0", got)
	}
}

// CommitAbortCounts must stay monotonic under concurrent commit/abort
// traffic and Release/NewTx descriptor churn: the Serializer's abort-rate
// trigger and the tuning runtime both differentiate it.
func TestCommitAbortCountsMonotonicUnderChurn(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, nil)
	setup := tm.NewTx()
	var a uint64
	tm.Atomic(setup, func(tx *Tx) { a = tx.Alloc(1) })
	setup.Release()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Short-lived descriptors: mint, run one committing and
				// one aborting transaction, release.
				tx := tm.NewTx()
				tm.Atomic(tx, func(t *Tx) { t.Store(a, t.Load(a)+1) })
				first := true
				tm.Atomic(tx, func(t *Tx) {
					t.Store(a, t.Load(a))
					if first {
						first = false
						t.Retry() // deterministic abort
					}
				})
				tx.Release()
			}
		}(w)
	}
	var lastC, lastA, lastSC, lastSA uint64
	for i := 0; i < 5000; i++ {
		c, x := tm.CommitAbortCounts()
		if c < lastC || x < lastA {
			t.Fatalf("aggregates went backwards: (%d,%d) after (%d,%d)", c, x, lastC, lastA)
		}
		lastC, lastA = c, x
		if i%50 == 0 {
			// The full snapshot path must stay monotonic under the same
			// churn (Release folds counters into the retired aggregate).
			s := tm.Stats()
			if s.Commits < lastSC || s.Aborts < lastSA {
				t.Fatalf("Stats went backwards: (%d,%d) after (%d,%d)",
					s.Commits, s.Aborts, lastSC, lastSA)
			}
			lastSC, lastSA = s.Commits, s.Aborts
		}
	}
	close(stop)
	wg.Wait()
	c, x := tm.CommitAbortCounts()
	s := tm.Stats()
	if c != s.Commits || x != s.Aborts {
		t.Fatalf("aggregates (%d,%d) disagree with Stats (%d,%d) at quiescence",
			c, x, s.Commits, s.Aborts)
	}
}

// SetCM must switch the live policy without a freeze: in-flight
// descriptors pick it up on their next attempt and the switch count lands
// in Stats.
func TestSetCMLiveSwitch(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, nil)
	tx := tm.NewTx()
	var a uint64
	tm.Atomic(tx, func(t *Tx) { a = t.Alloc(1) })
	if tm.CM() != cm.Suicide {
		t.Fatalf("default policy = %v", tm.CM())
	}
	if err := tm.SetCM(cm.Karma, cm.Knobs{}); err != nil {
		t.Fatal(err)
	}
	if tm.CM() != cm.Karma {
		t.Errorf("CM() = %v after switch", tm.CM())
	}
	tm.Atomic(tx, func(t *Tx) { t.Store(a, 1) })
	if tx.pol.Kind() != cm.Karma {
		t.Errorf("descriptor still runs %v", tx.pol.Kind())
	}
	// Same-kind switch is not counted; invalid kinds are rejected.
	if err := tm.SetCM(cm.Karma, cm.Knobs{}); err != nil {
		t.Fatal(err)
	}
	if err := tm.SetCM(cm.Kind(42), cm.Knobs{}); err == nil {
		t.Error("SetCM accepted an invalid kind")
	}
	if got := tm.Stats().CMSwitches; got != 1 {
		t.Errorf("CMSwitches = %d, want 1", got)
	}
}

// An atomic block ending in a foreign panic must leave no policy resource
// behind: a leaked Serializer token would deadlock every later borrower.
func TestForeignPanicReleasesSerializerToken(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, func(c *Config) {
		c.CM = cm.Serializer
		c.CMKnobs = cm.Knobs{SerializerMinAborts: 1}
	})
	tx := tm.NewTx()
	var a uint64
	tm.Atomic(tx, func(t *Tx) { a = t.Alloc(1) })

	// Prime the policy's abort-ratio estimate past its threshold: each
	// block aborts once then commits, a sustained 0.5 ratio over well
	// more than one estimation window.
	for i := 0; i < 80; i++ {
		first := true
		tm.Atomic(tx, func(t *Tx) {
			t.Store(a, uint64(i))
			if first {
				first = false
				t.Retry()
			}
		})
	}

	// Abort once (acquiring the token), then panic out of the block with
	// the token held.
	tookToken := false
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		first := true
		tm.Atomic(tx, func(t *Tx) {
			t.Store(a, 1)
			if first {
				first = false
				t.Retry()
			}
			tookToken = tx.cmst.HoldsToken()
			panic("boom")
		})
	}()
	if !tookToken {
		t.Fatal("serializer never granted the token; the leak path was not exercised")
	}
	if tx.cmst.HoldsToken() {
		t.Fatal("token still held after the foreign panic")
	}
	// Liveness proof: a second descriptor can acquire the token and
	// finish (the test deadline catches a leak-induced hang).
	tx2 := tm.NewTx()
	first2 := true
	tm.Atomic(tx2, func(t *Tx) {
		t.Store(a, 3)
		if first2 {
			first2 = false
			t.Retry()
		}
	})
	tx2.Release()
	tx.Release()
}
