package core

import (
	"runtime"
	"testing"

	"tinystm/internal/mem"
	"tinystm/internal/txn"
)

// newTestTM builds a small TM over a fresh space. Callers pass overrides.
func newTestTM(t testing.TB, d Design, over func(*Config)) (*TM, *mem.Space) {
	t.Helper()
	sp := mem.NewSpace(1 << 20)
	cfg := Config{Space: sp, Locks: 1 << 10, Design: d}
	if over != nil {
		over(&cfg)
	}
	tm, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tm, sp
}

// attempt runs fn inside an already-begun transaction, reporting false if
// it aborted via the STM sentinel (white-box test helper).
func attempt(fn func()) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, is := r.(abortSignal); is {
				ok = false
				return
			}
			panic(r)
		}
	}()
	fn()
	return true
}

func bothDesigns(t *testing.T, f func(t *testing.T, d Design)) {
	t.Helper()
	for _, d := range []Design{WriteBack, WriteThrough} {
		d := d
		t.Run(d.String(), func(t *testing.T) { f(t, d) })
	}
}

func allClockStrategies(t *testing.T, f func(t *testing.T, cs ClockStrategy)) {
	t.Helper()
	for _, cs := range AllClockStrategies {
		cs := cs
		t.Run(cs.String(), func(t *testing.T) { f(t, cs) })
	}
}

// designsAndClocks runs f over the full design x clock-strategy matrix:
// the table-driven harness for the suites that must hold under every
// commit-clock strategy. Build TMs inside f with newTestTMClock so the
// strategy is applied by construction (passing cs to newTestTM by hand is
// easy to forget and fails silently — three subtests all running the
// default clock).
func designsAndClocks(t *testing.T, f func(t *testing.T, d Design, cs ClockStrategy)) {
	t.Helper()
	bothDesigns(t, func(t *testing.T, d Design) {
		allClockStrategies(t, func(t *testing.T, cs ClockStrategy) { f(t, d, cs) })
	})
}

// newTestTMClock is newTestTM with the clock strategy wired in before the
// caller's overrides run.
func newTestTMClock(t testing.TB, d Design, cs ClockStrategy, over func(*Config)) (*TM, *mem.Space) {
	t.Helper()
	return newTestTM(t, d, func(c *Config) {
		c.Clock = cs
		if over != nil {
			over(c)
		}
	})
}

func TestConfigValidation(t *testing.T) {
	sp := mem.NewSpace(16)
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"defaults", Config{Space: sp}, true},
		{"nil space", Config{}, false},
		{"non-pow2 locks", Config{Space: sp, Locks: 3}, false},
		{"non-pow2 hier", Config{Space: sp, Hier: 3}, false},
		{"hier too big", Config{Space: sp, Hier: 512}, false},
		{"hier gt locks", Config{Space: sp, Locks: 4, Hier: 8}, false},
		{"shift too big", Config{Space: sp, Shifts: 40}, false},
		{"bad design", Config{Space: sp, Design: Design(7)}, false},
		{"tiny maxclock", Config{Space: sp, MaxClock: 1}, false},
		{"huge maxclock wt", Config{Space: sp, Design: WriteThrough, MaxClock: 1 << 62}, false},
		{"valid full", Config{Space: sp, Locks: 1 << 8, Shifts: 2, Hier: 16, Design: WriteThrough}, true},
	}
	for _, c := range cases {
		_, err := New(c.cfg)
		if (err == nil) != c.ok {
			t.Errorf("%s: err = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestAtomicCommitPublishes(t *testing.T) {
	bothDesigns(t, func(t *testing.T, d Design) {
		tm, sp := newTestTM(t, d, nil)
		tx := tm.NewTx()
		var a uint64
		tm.Atomic(tx, func(tx *Tx) {
			a = tx.Alloc(2)
			tx.Store(a, 41)
			tx.Store(a+1, 42)
		})
		if got := sp.Load(mem.Addr(a)); got != 41 {
			t.Errorf("word 0 = %d, want 41", got)
		}
		if got := sp.Load(mem.Addr(a + 1)); got != 42 {
			t.Errorf("word 1 = %d, want 42", got)
		}
	})
}

func TestAtomicReadsOwnWrites(t *testing.T) {
	bothDesigns(t, func(t *testing.T, d Design) {
		tm, _ := newTestTM(t, d, nil)
		tx := tm.NewTx()
		tm.Atomic(tx, func(tx *Tx) {
			a := tx.Alloc(1)
			tx.Store(a, 7)
			if got := tx.Load(a); got != 7 {
				t.Errorf("read-after-write = %d, want 7", got)
			}
			tx.Store(a, 8)
			if got := tx.Load(a); got != 8 {
				t.Errorf("write-after-write read = %d, want 8", got)
			}
		})
	})
}

func TestReadAfterWriteSameLockDifferentAddr(t *testing.T) {
	// Force both addresses onto one lock with a high shift: the write-back
	// chain must serve the written address and memory the other.
	bothDesigns(t, func(t *testing.T, d Design) {
		tm, _ := newTestTM(t, d, func(c *Config) { c.Shifts = 8 })
		tx := tm.NewTx()
		var a uint64
		tm.Atomic(tx, func(tx *Tx) {
			a = tx.Alloc(4)
			tx.Store(a, 1)
			tx.Store(a+1, 2)
			tx.Store(a+2, 3)
		})
		tm.Atomic(tx, func(tx *Tx) {
			tx.Store(a, 10) // lock stripe now owned
			if got := tx.Load(a + 1); got != 2 {
				t.Errorf("unwritten word under owned lock = %d, want 2", got)
			}
			tx.Store(a+2, 30)
			if got := tx.Load(a + 2); got != 30 {
				t.Errorf("chained write read = %d, want 30", got)
			}
			if got := tx.Load(a); got != 10 {
				t.Errorf("chain head read = %d, want 10", got)
			}
		})
		tm.Atomic(tx, func(tx *Tx) {
			if tx.Load(a) != 10 || tx.Load(a+1) != 2 || tx.Load(a+2) != 30 {
				t.Error("committed chained values wrong")
			}
		})
	})
}

func TestAbortDiscardsWrites(t *testing.T) {
	bothDesigns(t, func(t *testing.T, d Design) {
		tm, sp := newTestTM(t, d, nil)
		tx := tm.NewTx()
		var a uint64
		tm.Atomic(tx, func(tx *Tx) {
			a = tx.Alloc(1)
			tx.Store(a, 100)
		})
		// Manually begin, write, roll back.
		tx.Begin(false)
		ok := attempt(func() {
			tx.Store(a, 999)
			if tx.Load(a) != 999 {
				t.Error("own write invisible")
			}
		})
		if !ok {
			t.Fatal("unexpected abort")
		}
		tx.rollback(txn.AbortExplicit)
		if got := sp.Load(mem.Addr(a)); got != 100 {
			t.Errorf("after abort memory = %d, want 100 restored", got)
		}
		// The lock must be released: a fresh transaction can write.
		tm.Atomic(tx, func(tx *Tx) { tx.Store(a, 101) })
		if got := sp.Load(mem.Addr(a)); got != 101 {
			t.Errorf("post-abort write = %d, want 101", got)
		}
	})
}

func TestWriteThroughAbortBumpsIncarnation(t *testing.T) {
	tm, _ := newTestTM(t, WriteThrough, nil)
	tx := tm.NewTx()
	var a uint64
	tm.Atomic(tx, func(tx *Tx) { a = tx.Alloc(1); tx.Store(a, 1) })
	g := tm.geo.Load()
	li := g.lockIndex(a)
	before := g.loadLock(li)
	tx.Begin(false)
	if !attempt(func() { tx.Store(a, 2) }) {
		t.Fatal("unexpected abort")
	}
	tx.rollback(txn.AbortExplicit)
	after := g.loadLock(li)
	if isOwned(after) {
		t.Fatal("lock still owned after abort")
	}
	if versionWT(after) != versionWT(before) {
		t.Errorf("version changed on abort: %d -> %d", versionWT(before), versionWT(after))
	}
	if incarnationWT(after) != incarnationWT(before)+1 {
		t.Errorf("incarnation = %d, want %d", incarnationWT(after), incarnationWT(before)+1)
	}
}

func TestIncarnationOverflowTakesFreshVersion(t *testing.T) {
	tm, _ := newTestTM(t, WriteThrough, nil)
	tx := tm.NewTx()
	var a uint64
	tm.Atomic(tx, func(tx *Tx) { a = tx.Alloc(1); tx.Store(a, 1) })
	g := tm.geo.Load()
	li := g.lockIndex(a)
	// Abort 2^incBits times to overflow the incarnation counter.
	for i := 0; i <= int(incMask); i++ {
		tx.Begin(false)
		if !attempt(func() { tx.Store(a, 2) }) {
			t.Fatal("unexpected abort")
		}
		tx.rollback(txn.AbortExplicit)
	}
	after := g.loadLock(li)
	if incarnationWT(after) != 0 {
		t.Errorf("incarnation after overflow = %d, want 0", incarnationWT(after))
	}
	if versionWT(after) < 2 {
		t.Errorf("version after overflow = %d, want fresh (>= 2)", versionWT(after))
	}
}

func TestAtomicRetriesOnConflict(t *testing.T) {
	bothDesigns(t, func(t *testing.T, d Design) {
		tm, _ := newTestTM(t, d, nil)
		t1, t2 := tm.NewTx(), tm.NewTx()
		var a uint64
		tm.Atomic(t1, func(tx *Tx) { a = tx.Alloc(1) })

		// t2 holds the lock; t1's Atomic must retry and eventually win
		// once t2 commits.
		t2.Begin(false)
		if !attempt(func() { t2.Store(a, 5) }) {
			t.Fatal("unexpected abort")
		}
		tries := 0
		done := make(chan struct{})
		go func() {
			tm.Atomic(t1, func(tx *Tx) {
				//stm:allow-effect deliberate attempt counter: the test measures conflict retries
				tries++
				tx.Store(a, tx.Load(a)+1)
			})
			close(done)
		}()
		// Wait until the worker has hit the conflict at least once, then
		// release the lock by committing t2.
		for t1.TxStats().Aborts == 0 {
			runtime.Gosched()
		}
		if !t2.Commit() {
			t.Fatal("t2 commit failed")
		}
		<-done
		if tries < 2 {
			t.Errorf("expected at least one retry, got %d attempts", tries)
		}
		tm.Atomic(t1, func(tx *Tx) {
			if got := tx.Load(a); got != 6 {
				t.Errorf("final value = %d, want 6", got)
			}
		})
	})
}

func TestReadOnlyUpgrades(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, nil)
	tx := tm.NewTx()
	var a uint64
	tm.Atomic(tx, func(tx *Tx) { a = tx.Alloc(1); tx.Store(a, 3) })
	runs := 0
	tm.AtomicRO(tx, func(tx *Tx) {
		//stm:allow-effect deliberate retry counter: the test asserts the upgrade re-runs the body
		runs++
		if runs == 1 && !tx.ReadOnly() {
			t.Error("first attempt should be read-only")
		}
		v := tx.Load(a)
		//stm:allow-write deliberate: the write IS the upgrade under test
		tx.Store(a, v+1) // forces upgrade
	})
	if runs != 2 {
		t.Errorf("runs = %d, want 2 (RO attempt + upgraded retry)", runs)
	}
	tm.Atomic(tx, func(tx *Tx) {
		if got := tx.Load(a); got != 4 {
			t.Errorf("value = %d, want 4", got)
		}
	})
	s := tm.Stats()
	if s.AbortsByKind[txn.AbortUpgrade] != 1 {
		t.Errorf("upgrade aborts = %d, want 1", s.AbortsByKind[txn.AbortUpgrade])
	}
}

func TestReadOnlyKeepsNoReadSet(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, nil)
	tx := tm.NewTx()
	var a uint64
	tm.Atomic(tx, func(tx *Tx) {
		a = tx.Alloc(8)
		for i := uint64(0); i < 8; i++ {
			tx.Store(a+i, i)
		}
	})
	tm.AtomicRO(tx, func(tx *Tx) {
		for i := uint64(0); i < 8; i++ {
			_ = tx.Load(a + i)
		}
		if tx.ReadSetSize() != 0 {
			t.Errorf("read-only read set size = %d, want 0", tx.ReadSetSize())
		}
	})
	tm.Atomic(tx, func(tx *Tx) {
		for i := uint64(0); i < 8; i++ {
			_ = tx.Load(a + i)
		}
		if tx.ReadSetSize() != 8 {
			t.Errorf("update read set size = %d, want 8", tx.ReadSetSize())
		}
	})
}

func TestFlatNesting(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, nil)
	tx := tm.NewTx()
	var a uint64
	tm.Atomic(tx, func(outer *Tx) {
		a = outer.Alloc(1)
		outer.Store(a, 1)
		//stm:allow-effect deliberate: flat nesting (inner block merges into the outer) is under test
		tm.Atomic(tx, func(inner *Tx) {
			inner.Store(a, inner.Load(a)+1)
		})
		if got := outer.Load(a); got != 2 {
			t.Errorf("after nested block = %d, want 2", got)
		}
	})
	if tm.Stats().Commits != 1 {
		t.Errorf("commits = %d, want 1 (flattened)", tm.Stats().Commits)
	}
}

func TestForeignPanicRollsBackAndPropagates(t *testing.T) {
	bothDesigns(t, func(t *testing.T, d Design) {
		tm, sp := newTestTM(t, d, nil)
		tx := tm.NewTx()
		var a uint64
		tm.Atomic(tx, func(tx *Tx) { a = tx.Alloc(1); tx.Store(a, 1) })
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Errorf("recovered %v, want boom", r)
				}
			}()
			tm.Atomic(tx, func(tx *Tx) {
				tx.Store(a, 99)
				panic("boom")
			})
		}()
		if got := sp.Load(mem.Addr(a)); got != 1 {
			t.Errorf("memory after panic = %d, want 1", got)
		}
		if tx.InTx() {
			t.Error("descriptor still in transaction after panic")
		}
		// The TM must be fully usable afterwards.
		tm.Atomic(tx, func(tx *Tx) { tx.Store(a, 2) })
		if got := sp.Load(mem.Addr(a)); got != 2 {
			t.Errorf("post-panic commit = %d, want 2", got)
		}
	})
}

func TestExplicitRetry(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, nil)
	tx := tm.NewTx()
	var a uint64
	tm.Atomic(tx, func(tx *Tx) { a = tx.Alloc(1) })
	runs := 0
	tm.Atomic(tx, func(tx *Tx) {
		//stm:allow-effect deliberate retry counter: the test asserts Retry re-runs the body
		runs++
		if runs < 3 {
			tx.Retry()
		}
		tx.Store(a, uint64(runs))
	})
	if runs != 3 {
		t.Errorf("runs = %d, want 3", runs)
	}
	if got := tm.Stats().AbortsByKind[txn.AbortExplicit]; got != 2 {
		t.Errorf("explicit aborts = %d, want 2", got)
	}
}

func TestCommitTimestampFastPathSkipsValidation(t *testing.T) {
	// A lone transaction committing with ts == start+1 must not validate.
	tm, _ := newTestTM(t, WriteBack, nil)
	tx := tm.NewTx()
	var a uint64
	tm.Atomic(tx, func(tx *Tx) { a = tx.Alloc(2) })
	before := tm.Stats()
	tm.Atomic(tx, func(tx *Tx) {
		_ = tx.Load(a + 1)
		tx.Store(a, 1)
	})
	d := tm.Stats().Sub(before)
	if d.LocksValidated != 0 || d.LocksSkipped != 0 {
		t.Errorf("validation ran on fast path: checked=%d skipped=%d",
			d.LocksValidated, d.LocksSkipped)
	}
}

func TestStatsCountCommitsAndAborts(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, nil)
	tx := tm.NewTx()
	var a uint64
	for i := 0; i < 10; i++ {
		tm.Atomic(tx, func(tx *Tx) {
			if a == 0 {
				a = tx.Alloc(1)
			}
			tx.Store(a, uint64(i))
		})
	}
	s := tm.Stats()
	if s.Commits != 10 {
		t.Errorf("commits = %d, want 10", s.Commits)
	}
	if s.Aborts != 0 {
		t.Errorf("aborts = %d, want 0", s.Aborts)
	}
}

func TestDescriptorTMBinding(t *testing.T) {
	tm1, _ := newTestTM(t, WriteBack, nil)
	tm2, _ := newTestTM(t, WriteBack, nil)
	tx := tm1.NewTx()
	defer func() {
		if recover() == nil {
			t.Error("foreign descriptor accepted")
		}
	}()
	tm2.Atomic(tx, func(tx *Tx) {})
}

func TestOperationsOutsideTransactionPanic(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, nil)
	tx := tm.NewTx()
	for name, f := range map[string]func(){
		"Load":   func() { tx.Load(1) },
		"Store":  func() { tx.Store(1, 2) },
		"Alloc":  func() { tx.Alloc(1) },
		"Free":   func() { tx.Free(1, 1) },
		"Commit": func() { tx.Commit() },
		"Retry":  func() { tx.Retry() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s outside transaction did not panic", name)
				}
			}()
			f()
		}()
	}
}
