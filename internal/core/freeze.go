package core

import (
	"sync"
	"sync/atomic"
)

// freezer implements the stop-the-world barrier the paper uses for both
// clock roll-over (Section 3.1) and dynamic reconfiguration (Section 4.2):
// "we use the same mechanisms as for clock roll-over to temporarily
// suspend transactions and update the tuning parameters".
//
// Protocol: an initiator raises the frozen flag and waits for the count of
// active transactions to drain to zero. Transactions observe the flag at
// begin and at every load/store/commit; in-flight transactions abort
// (releasing their locks) and park; new transactions park before starting.
// Once quiescent, the initiator mutates shared state (clock, lock array,
// geometry) and lowers the flag, waking everyone.
type freezer struct {
	frozen atomic.Uint32
	active atomic.Int64

	mu   sync.Mutex
	cond *sync.Cond
}

func (f *freezer) init() { f.cond = sync.NewCond(&f.mu) }

// enter marks one transaction active, parking first if the TM is frozen.
func (f *freezer) enter() {
	for {
		f.active.Add(1)
		if f.frozen.Load() == 0 {
			return
		}
		// Raced with a freeze: retreat, wake the initiator in case we
		// were the last active transaction it was waiting for, and park.
		f.active.Add(-1)
		f.mu.Lock()
		f.cond.Broadcast()
		for f.frozen.Load() != 0 {
			f.cond.Wait()
		}
		f.mu.Unlock()
	}
}

// exit marks one transaction inactive.
func (f *freezer) exit() {
	f.active.Add(-1)
	if f.frozen.Load() != 0 {
		f.mu.Lock()
		f.cond.Broadcast()
		f.mu.Unlock()
	}
}

// isFrozen is the cheap per-operation check.
func (f *freezer) isFrozen() bool { return f.frozen.Load() != 0 }

// freeze blocks until this caller holds the (unique) frozen state and all
// transactions are quiescent. The caller must not be inside a transaction.
func (f *freezer) freeze() {
	f.mu.Lock()
	for !f.frozen.CompareAndSwap(0, 1) {
		// Another initiator is mid-freeze; wait for it to finish, then
		// compete again.
		f.cond.Wait()
	}
	for f.active.Load() > 0 {
		f.cond.Wait()
	}
	f.mu.Unlock()
}

// unfreeze releases the barrier. Only the thread that won freeze may call.
func (f *freezer) unfreeze() {
	f.mu.Lock()
	f.frozen.Store(0)
	f.cond.Broadcast()
	f.mu.Unlock()
}
