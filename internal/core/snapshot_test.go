package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"tinystm/internal/txn"
)

// newSnapTM builds a TM with the MVCC sidecar attached.
func newSnapTM(t testing.TB, d Design, over func(*Config)) *TM {
	t.Helper()
	tm, _ := newTestTM(t, d, func(c *Config) {
		c.Snapshots = true
		c.SnapshotShards = 8
		c.SnapshotBudget = 64
		if over != nil {
			over(c)
		}
	})
	return tm
}

func TestSnapshotReadsLiveWord(t *testing.T) {
	bothDesigns(t, func(t *testing.T, d Design) {
		tm := newSnapTM(t, d, nil)
		tx := tm.NewTx()
		var a uint64
		tm.Atomic(tx, func(tx *Tx) {
			a = tx.Alloc(4)
			tx.Store(a, 10)
			tx.Store(a+1, 20)
		})
		var v0, v1 uint64
		tm.AtomicSnap(tx, func(tx *Tx) {
			v0, v1 = tx.Load(a), tx.Load(a+1)
		})
		if v0 != 10 || v1 != 20 {
			t.Fatalf("snapshot read (%d, %d), want (10, 20)", v0, v1)
		}
		st := tm.Stats()
		if st.SnapshotLiveReads == 0 {
			t.Fatal("live-word snapshot reads not counted")
		}
		if st.SnapshotVersionReads != 0 {
			t.Fatalf("%d sidecar reads with no concurrent writer", st.SnapshotVersionReads)
		}
	})
}

// TestSnapshotIsolatedFromWriter pins the core guarantee white-box: a
// snapshot begun before a writer's commit keeps reading the superseded
// values from the sidecar, with no abort.
func TestSnapshotIsolatedFromWriter(t *testing.T) {
	bothDesigns(t, func(t *testing.T, d Design) {
		tm := newSnapTM(t, d, nil)
		w := tm.NewTx()
		var a uint64
		tm.Atomic(w, func(tx *Tx) {
			a = tx.Alloc(2)
			tx.Store(a, 1)
			tx.Store(a+1, 2)
		})

		r := tm.NewTx()
		r.BeginSnap()
		if got := r.Load(a); got != 1 {
			t.Fatalf("pre-overwrite snapshot read %d, want 1", got)
		}
		// A writer commits new values mid-snapshot.
		tm.Atomic(w, func(tx *Tx) {
			tx.Store(a, 100)
			tx.Store(a+1, 200)
		})
		// The snapshot still sees the old values — now via the sidecar.
		if got := r.Load(a); got != 1 {
			t.Fatalf("post-overwrite snapshot read %d, want 1", got)
		}
		if got := r.Load(a + 1); got != 2 {
			t.Fatalf("post-overwrite snapshot read %d, want 2", got)
		}
		if !r.Commit() {
			t.Fatal("snapshot commit failed")
		}
		st := tm.Stats()
		if st.SnapshotVersionReads == 0 {
			t.Fatal("sidecar-served snapshot reads not counted")
		}
		if st.VersionsPublished == 0 {
			t.Fatal("writer commit published no versions")
		}
		if st.Aborts != 0 {
			t.Fatalf("%d aborts in a conflict-free snapshot scenario", st.Aborts)
		}
		// A fresh snapshot sees the new values from the live words.
		var now0 uint64
		tm.AtomicSnap(r, func(tx *Tx) { now0 = tx.Load(a) })
		if now0 != 100 {
			t.Fatalf("fresh snapshot read %d, want 100", now0)
		}
	})
}

func TestSnapshotTooOldRetries(t *testing.T) {
	tm := newSnapTM(t, WriteBack, func(c *Config) {
		c.SnapshotShards = 1
		c.SnapshotBudget = 1 // trim aggressively
	})
	w := tm.NewTx()
	var a uint64
	tm.Atomic(w, func(tx *Tx) {
		a = tx.Alloc(8)
		for i := uint64(0); i < 8; i++ {
			tx.Store(a+i, i)
		}
	})

	r := tm.NewTx()
	r.BeginSnap()
	_ = r.Load(a)
	// Overwrite every word repeatedly: the one-entry budget trims the
	// versions r's snapshot needs, raising the horizon past it. No
	// snapshot is pinning-exempt here because the hard cap (4*budget=4)
	// is tiny.
	for round := uint64(0); round < 8; round++ {
		tm.Atomic(w, func(tx *Tx) {
			for i := uint64(0); i < 8; i++ {
				tx.Store(a+i, 100*round+i)
			}
		})
	}
	aborted := !attempt(func() {
		for i := uint64(0); i < 8; i++ {
			_ = r.Load(a + i)
		}
	})
	if !aborted {
		// The spin budget may have served some reads; only a genuinely
		// trimmed-away version forces the abort. With budget 1 and 8
		// overwritten words this must have aborted.
		t.Fatal("stale snapshot survived aggressive trimming")
	}
	st := tm.Stats()
	if st.AbortsByKind[txn.AbortSnapshotTooOld] == 0 {
		t.Fatal("abort not classified snapshot-too-old")
	}
	tooOld, _, _, _ := tm.SnapshotCounts()
	if tooOld == 0 {
		t.Fatal("aggregate too-old counter did not advance")
	}
	// AtomicSnap retries transparently and lands on a fresh snapshot.
	var sum uint64
	tm.AtomicSnap(r, func(tx *Tx) {
		sum = 0
		for i := uint64(0); i < 8; i++ {
			sum += tx.Load(a + i)
		}
	})
	if want := uint64(700*8 + 28); sum != want {
		t.Fatalf("post-retry sum %d, want %d", sum, want)
	}
}

func TestSnapshotUpgradeOnWrite(t *testing.T) {
	tm := newSnapTM(t, WriteBack, nil)
	tx := tm.NewTx()
	var a uint64
	tm.Atomic(tx, func(tx *Tx) { a = tx.Alloc(1); tx.Store(a, 5) })
	tm.AtomicSnap(tx, func(tx *Tx) {
		v := tx.Load(a)
		//stm:allow-write deliberate: the write IS the snapshot-upgrade under test
		tx.Store(a, v+1) // snapshot mode cannot write: upgrade
	})
	var got uint64
	tm.AtomicSnap(tx, func(tx *Tx) { got = tx.Load(a) })
	if got != 6 {
		t.Fatalf("value %d after upgraded write, want 6", got)
	}
	if k := tm.Stats().AbortsByKind[txn.AbortUpgrade]; k == 0 {
		t.Fatal("upgrade abort not recorded")
	}
}

func TestAtomicSnapFallsBackWithoutSidecar(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, nil)
	if tm.SnapshotsEnabled() {
		t.Fatal("snapshots unexpectedly enabled")
	}
	tx := tm.NewTx()
	var a uint64
	tm.Atomic(tx, func(tx *Tx) { a = tx.Alloc(1); tx.Store(a, 7) })
	var got uint64
	tm.AtomicSnap(tx, func(tx *Tx) { got = tx.Load(a) })
	if got != 7 {
		t.Fatalf("fallback read %d, want 7", got)
	}
	if err := tm.SetVersionBudget(128); err == nil {
		t.Fatal("SetVersionBudget accepted with snapshots disabled")
	}
}

func TestVersionBudgetKnob(t *testing.T) {
	tm := newSnapTM(t, WriteBack, nil)
	if got := tm.VersionBudget(); got != 64 {
		t.Fatalf("VersionBudget = %d, want 64", got)
	}
	if err := tm.SetVersionBudget(128); err != nil {
		t.Fatal(err)
	}
	if got := tm.VersionBudget(); got != 128 {
		t.Fatalf("VersionBudget = %d after SetVersionBudget(128)", got)
	}
	if err := tm.SetVersionBudget(0); err == nil {
		t.Fatal("SetVersionBudget(0) accepted")
	}
}

// TestReleaseDetachesSnapshotHorizon is the leak regression for
// Tx.Release: descriptors cycled through snapshot transactions (including
// abnormal unwinds) and released must leave no registration behind, so
// sidecar trimming keeps advancing and retained versions stay bounded.
func TestReleaseDetachesSnapshotHorizon(t *testing.T) {
	tm := newSnapTM(t, WriteBack, func(c *Config) {
		c.SnapshotShards = 1
		c.SnapshotBudget = 8
	})
	w := tm.NewTx()
	var a uint64
	tm.Atomic(w, func(tx *Tx) { a = tx.Alloc(4); tx.Store(a, 0) })

	for i := 0; i < 10000; i++ {
		tx := tm.NewTx()
		tm.AtomicSnap(tx, func(tx *Tx) { _ = tx.Load(a) })
		if i%3 == 0 {
			// Abnormal unwind: a foreign panic mid-snapshot must also
			// leave no registration (runBody's recovery path).
			func() {
				defer func() { _ = recover() }()
				tm.AtomicSnap(tx, func(tx *Tx) { panic("boom") })
			}()
		}
		tx.Release()
		// Writers churn versions the whole time so trimming has work.
		tm.Atomic(w, func(tx *Tx) { tx.Store(a, uint64(i)); tx.Store(a+1, uint64(i)) })
	}
	if n := tm.ActiveSnapshots(); n != 0 {
		t.Fatalf("%d snapshot registrations leaked across release cycles", n)
	}
	// With no stale registration pinning the horizon, publications made
	// while one FRESH snapshot is registered (publishers skip retention
	// entirely when nothing is registered) trim the backlog down to the
	// budget: only the handful of versions superseded after the fresh
	// snapshot's start may be pinned above it.
	r := tm.NewTx()
	r.BeginSnap()
	for i := uint64(0); i < 4; i++ {
		tm.Atomic(w, func(tx *Tx) { tx.Store(a, i); tx.Store(a+2, i) })
	}
	if !r.Commit() {
		t.Fatal("fresh snapshot commit failed")
	}
	r.Release()
	if got := tm.RetainedVersions(); got > 8+8 {
		t.Fatalf("retained %d versions (budget 8): a stale registration pinned the horizon", got)
	}
}

// TestSnapshotOpacityModelCheck is the model-based opacity checker:
// concurrent writers apply a deterministic serial history to a small
// key table (each update transaction reads a sequence register, claims
// the next index i, and sets slot i%K to i), while snapshot readers
// assert that every observed state equals the unique state after some
// prefix of that history: seq == p implies slot k holds the largest
// i <= p with i%K == k. Any torn, stale-mixed or non-prefix state fails.
// Table-driven over designs x clock strategies; run with -race.
func TestSnapshotOpacityModelCheck(t *testing.T) {
	const (
		K        = 8 // key slots
		writers  = 4 //
		commits  = 300
		scanners = 2
	)
	designsAndClocks(t, func(t *testing.T, d Design, cs ClockStrategy) {
		tm, _ := newTestTMClock(t, d, cs, func(c *Config) {
			c.Snapshots = true
			c.SnapshotShards = 4
			c.SnapshotBudget = 4096 // ample: the checker wants zero too-old noise
			c.YieldEvery = 8        // interleave on few-core hosts
		})
		setup := tm.NewTx()
		var base uint64 // base+0 = seq register, base+1+k = slot k
		tm.Atomic(setup, func(tx *Tx) {
			base = tx.Alloc(1 + K)
			tx.Store(base, 0)
			for k := uint64(0); k < K; k++ {
				tx.Store(base+1+k, 0)
			}
		})
		setup.Release()

		var wg sync.WaitGroup
		var produced atomic.Uint64
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				tx := tm.NewTx()
				defer tx.Release()
				for produced.Load() < commits {
					tm.Atomic(tx, func(tx *Tx) {
						i := tx.Load(base) + 1
						tx.Store(base, i)
						tx.Store(base+1+(i%K), i)
					})
					produced.Add(1)
				}
			}()
		}

		var stop atomic.Bool
		var scans atomic.Uint64
		for s := 0; s < scanners; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				tx := tm.NewTx()
				defer tx.Release()
				var state [1 + K]uint64
				for !stop.Load() {
					tm.AtomicSnap(tx, func(tx *Tx) {
						for j := uint64(0); j < 1+K; j++ {
							state[j] = tx.Load(base + j)
						}
					})
					p := state[0]
					for k := uint64(0); k < K; k++ {
						// Model: largest i in [1, p] with i%K == k (zero
						// when no such commit happened yet).
						var want uint64
						if p >= k {
							if c := p - (p-k)%K; c >= 1 {
								want = c
							}
						}
						if state[1+k] != want {
							t.Errorf("%v/%v: snapshot at seq %d: slot %d = %d, want %d (state %v)",
								d, cs, p, k, state[1+k], want, state)
							stop.Store(true)
							return
						}
					}
					scans.Add(1)
					runtime.Gosched()
				}
			}()
		}

		// Writers finish AND at least one concurrent scan completed, then
		// scanners stop (on a busy host the writers can burn through
		// their commits before a scanner is ever scheduled).
		done := make(chan struct{})
		go func() { defer close(done); wg.Wait() }()
		go func() {
			for produced.Load() < commits || scans.Load() == 0 {
				runtime.Gosched()
			}
			stop.Store(true)
		}()
		<-done
		if scans.Load() == 0 {
			t.Fatal("no snapshot scans completed")
		}
		// Final state check against the sequential model.
		final := tm.NewTx()
		var seq uint64
		tm.AtomicSnap(final, func(tx *Tx) { seq = tx.Load(base) })
		if seq < commits {
			t.Fatalf("sequence register %d after %d produced commits", seq, produced.Load())
		}
	})
}
