package core

import (
	"tinystm/internal/mem"
	"tinystm/internal/txn"
)

// ErrSpaceExhausted is the panic value of a transactional Alloc that found
// the arena full (the shared txn sentinel; see txn.ErrSpaceExhausted).
// Servers that keep running when the store fills — cmd/stmkvd returns 507
// — match on it and re-panic on anything else.
var ErrSpaceExhausted = txn.ErrSpaceExhausted

// Transactional memory management (paper Section 3.1, "Memory
// Management"): allocations made by an aborting transaction are disposed
// of automatically, and freed memory is not disposed of until commit. A
// free acquires all covering locks first, because a free is semantically
// equivalent to an update.

// Alloc reserves n fresh contiguous words. If the transaction aborts the
// words are returned to the space. The words read as zero.
func (tx *Tx) Alloc(n int) uint64 {
	if !tx.inTx {
		panic("core: Alloc outside transaction")
	}
	if tx.ro {
		tx.upgr = true
		tx.abort(txn.AbortUpgrade)
	}
	a := tx.tm.space.Alloc(n)
	if a == mem.Nil {
		panic(ErrSpaceExhausted)
	}
	tx.allocs = append(tx.allocs, allocRec{addr: a, words: n})
	return uint64(a)
}

// Free schedules the n-word block at addr for release at commit time,
// after acquiring every lock covering it.
func (tx *Tx) Free(addr uint64, n int) {
	if !tx.inTx {
		panic("core: Free outside transaction")
	}
	if tx.ro {
		tx.upgr = true
		tx.abort(txn.AbortUpgrade)
	}
	// A duplicate free inside one transaction would retire the block
	// twice and corrupt the allocator; the frees list is tiny, so a
	// linear scan is a cheap safety net.
	for _, f := range tx.frees {
		if f.addr == mem.Addr(addr) {
			panic("core: double Free of the same block in one transaction")
		}
	}
	// Lock each word as if updating it (value unchanged). Contiguous
	// words often share a stripe, in which case the per-word call finds
	// the lock already owned and is cheap.
	for w := uint64(0); w < uint64(n); w++ {
		tx.store(addr+w, 0, true)
	}
	tx.frees = append(tx.frees, allocRec{addr: mem.Addr(addr), words: n})
}
