package core

// Lock-word layout (paper Section 3.1, Figure 1).
//
// Each entry of the lock array is one 64-bit word whose least significant
// bit says whether the lock is owned:
//
//	write-back, unlocked:    [ version:63                    | 0 ]
//	write-through, unlocked: [ version:60 | incarnation:3    | 0 ]
//	locked (both designs):   [ slot:23    | entry index:40   | 1 ]
//
// The paper stores a pointer to the owner transaction (write-through) or
// to a write-set entry (write-back) in the remaining bits; Go cannot hide
// pointers inside integers, so we store a (descriptor slot, entry index)
// pair instead. The entry index points at the owner's write-set chain head
// (write-back) or owned-lock record (write-through), preserving the O(1)
// read-after-write lookup the paper credits the design with.

const (
	lockBit = uint64(1)

	// Owned layout.
	entryBits = 40
	entryMask = (uint64(1) << entryBits) - 1
	slotBits  = 23
	slotMask  = (uint64(1) << slotBits) - 1

	// Write-through incarnation field (paper: three bits; overflow takes
	// a fresh version from the clock).
	incBits  = 3
	incMask  = (uint64(1) << incBits) - 1
	incShift = 1
)

func isOwned(lw uint64) bool { return lw&lockBit != 0 }

// mkOwned builds a locked word for owner slot and entry index.
func mkOwned(slot int, entry int) uint64 {
	return uint64(slot)<<(1+entryBits) | uint64(entry)<<1 | lockBit
}

func ownerSlot(lw uint64) int  { return int(lw >> (1 + entryBits) & slotMask) }
func ownerEntry(lw uint64) int { return int(lw >> 1 & entryMask) }

// Write-back unlocked words.

func mkVersionWB(ver uint64) uint64 { return ver << 1 }
func versionWB(lw uint64) uint64    { return lw >> 1 }

// Write-through unlocked words.

func mkVersionWT(ver, inc uint64) uint64 {
	return ver<<(1+incBits) | (inc&incMask)<<incShift
}
func versionWT(lw uint64) uint64     { return lw >> (1 + incBits) }
func incarnationWT(lw uint64) uint64 { return lw >> incShift & incMask }

// version extracts the version for the given design from an unlocked word.
func version(d Design, lw uint64) uint64 {
	if d == WriteThrough {
		return versionWT(lw)
	}
	return versionWB(lw)
}

// mkVersion builds an unlocked word carrying ver (incarnation zero for
// write-through; commits reset incarnations because the version changed).
func mkVersion(d Design, ver uint64) uint64 {
	if d == WriteThrough {
		return mkVersionWT(ver, 0)
	}
	return mkVersionWB(ver)
}

// maxVersion is the largest version representable for a design, which
// bounds the clock before roll-over (paper: 2^60 / 2^63 on 64-bit, minus
// the incarnation bits for write-through).
func maxVersion(d Design) uint64 {
	if d == WriteThrough {
		return 1<<60 - 1
	}
	return 1<<63 - 1
}
