// Package core implements TinySTM: the word-based, time-based software
// transactional memory of Felber, Fetzer and Riegel (PPoPP 2008).
//
// The design follows the paper's Section 3: a shared array of versioned
// locks protects stripes of the word-addressed memory space; transactions
// acquire locks at encounter time; a global time base (shared counter)
// orders commits; snapshots are extended lazily as in the LSA algorithm;
// and an optional hierarchical array of counters lets update transactions
// skip validating most of their read set (Section 3.2). Both the
// write-through and write-back access strategies are implemented, selected
// by Config.Design. Runtime parameters (#locks, #shifts, h) can be changed
// on a live TM via Reconfigure, which reuses the clock roll-over
// stop-the-world mechanism (Section 4.2).
package core

import (
	"fmt"
	"math/bits"

	"tinystm/internal/cm"
	"tinystm/internal/mem"
)

// Design selects how transactions write to memory (paper Section 3.1,
// "Write-through vs. Write-back").
type Design int

const (
	// WriteBack delays updates in a write log until commit. Lower abort
	// overhead; no incarnation numbers needed.
	WriteBack Design = iota
	// WriteThrough writes directly to memory and undoes on abort. Lower
	// commit overhead and O(1) read-after-write, but aborts must restore
	// memory and bump incarnation numbers.
	WriteThrough
)

// String returns the conventional short name used in the paper's figures.
func (d Design) String() string {
	switch d {
	case WriteBack:
		return "WB"
	case WriteThrough:
		return "WT"
	default:
		return fmt.Sprintf("Design(%d)", int(d))
	}
}

// MaxHier is the largest supported hierarchical array size (paper Figure 9
// explores h up to 256).
const MaxHier = 256

// maxSlots bounds the number of transaction descriptors a TM can mint;
// owner slots must fit the lock-word layout (23 bits available).
const maxSlots = 1 << 14

// Config parameterizes a TM instance. The three tunable parameters of
// Section 4 are Locks, Shifts and Hier.
type Config struct {
	// Space is the memory arena the TM protects. Required.
	Space *mem.Space
	// Locks is the number of entries in the lock array (the paper's
	// #locks, l). Must be a power of two. Default 2^16 (the paper's
	// "sensible" starting point).
	Locks uint64
	// Shifts is the number of extra right-shifts applied to an address
	// before indexing the lock array (the paper's #shifts). Controls how
	// many contiguous words map to the same lock. Addresses here are
	// word indices, so the paper's implicit word-alignment shift of 3 is
	// already accounted for. Default 0.
	Shifts uint
	// Hier is the size h of the hierarchical counter array. Must be a
	// power of two, 1 <= Hier <= MaxHier and Hier <= Locks. 1 disables
	// hierarchical locking. Default 1.
	Hier uint64
	// Hier2 enables the paper's proposed generalization of hierarchical
	// locking "to multiple levels of nesting" (Section 3.2): a second,
	// smaller array of Hier2 counters, each covering Hier/Hier2 first-
	// level buckets. Validation checks the coarse counter first and can
	// skip whole groups of buckets at once. Must be a power of two with
	// 1 <= Hier2 <= Hier; 1 (the default) disables the second level.
	// Unlike the triple (Locks, Shifts, Hier), Hier2 is not a dynamic
	// tuning parameter — it survives Reconfigure unchanged.
	Hier2 uint64
	// Design selects write-back (default) or write-through access.
	Design Design
	// Clock selects how update commits obtain timestamps from the global
	// time base: FetchInc (the default; one atomic increment per commit),
	// Lazy (GV5-style plain read + conditional advance; zero commit-time
	// contention, more snapshot extensions), or TicketBatch (one atomic
	// per ClockBatch commits). See ClockStrategy.
	Clock ClockStrategy
	// ClockBatch is the number of timestamps a descriptor reserves per
	// atomic operation under TicketBatch. Larger blocks amortize more but
	// waste more timestamps when commits interleave (stale reservations
	// are discarded, never reused). Default 8; ignored by the other
	// strategies.
	ClockBatch uint64
	// MaxClock overrides the roll-over threshold of the global clock.
	// Zero selects the design's natural maximum (2^60-ish). Tests use
	// small values to exercise roll-over.
	MaxClock uint64
	// CM selects the contention-management policy consulted on conflicts
	// and between retries (package cm): Suicide (the paper's immediate
	// retry; the default), Backoff, Karma, Timestamp or Serializer. The
	// policy can also be switched on a live TM via SetCM — it is a
	// dynamic tuning dimension like the (Locks, Shifts, Hier) triple.
	CM cm.Kind
	// CMKnobs tunes the selected policy (zero value: the cm package
	// defaults). The knobs travel with SetCM switches unless overridden.
	CMKnobs cm.Knobs
	// BackoffOnAbort enables bounded randomized exponential backoff
	// between retries.
	//
	// Deprecated: the boolean predates Config.CM and maps to CM =
	// cm.Backoff; it is still honored when CM is unset (Suicide).
	BackoffOnAbort bool
	// Snapshots enables the commit-ordered MVCC sidecar (package mvcc)
	// and with it the snapshot execution mode: TM.AtomicSnap runs
	// read-only transactions against a fixed start timestamp with no read
	// set, no commit-time validation and no conflict aborts — update
	// commits publish the values they supersede into the sidecar, and
	// snapshot reads fall back to it whenever a stripe has moved past
	// their snapshot. Off by default: publication costs one extra memory
	// read per written word at commit plus the sidecar insert.
	Snapshots bool
	// SnapshotShards is the number of sidecar shards (power of two).
	// Zero selects the mvcc default (64). Ignored without Snapshots.
	SnapshotShards int
	// SnapshotBudget is the per-shard retained-version budget, the
	// dynamic tuning knob of the snapshot subsystem (the tuning runtime
	// walks it via SetVersionBudget). Zero selects the mvcc default
	// (512). Ignored without Snapshots.
	SnapshotBudget int
	// ConflictSpin bounds how long an access spins waiting for a
	// foreign lock to be released before aborting. The paper notes a
	// transaction "can try to wait for some time or abort immediately"
	// and picks the latter (footnote 2 warns unbounded waiting risks
	// deadlock); 0 — the default — reproduces the paper's choice, while
	// a positive value re-checks the lock that many times.
	ConflictSpin int
	// YieldEvery, when positive, yields the processor after every N
	// transactional loads. This simulates the fine-grained interleaving
	// of the paper's 8-core testbed on hosts with fewer cores: without
	// it, transactions on a single CPU run to completion within one
	// scheduler slice and conflict-driven behaviour (aborts, doomed
	// traversals, snapshot extensions) never surfaces. Zero — the
	// default — disables yielding. See EXPERIMENTS.md.
	YieldEvery int
}

// withDefaults returns c with zero fields replaced by defaults.
func (c Config) withDefaults() Config {
	if c.Locks == 0 {
		c.Locks = 1 << 16
	}
	// Backward-compat shim: the legacy boolean selects the Backoff policy
	// unless a policy was chosen explicitly.
	if c.BackoffOnAbort && c.CM == cm.Suicide {
		c.CM = cm.Backoff
	}
	if c.Hier == 0 {
		c.Hier = 1
	}
	if c.Hier2 == 0 {
		c.Hier2 = 1
	}
	if c.ClockBatch == 0 {
		c.ClockBatch = 8
	}
	if c.MaxClock == 0 {
		if c.Design == WriteThrough {
			c.MaxClock = 1 << 59
		} else {
			c.MaxClock = 1 << 62
		}
	}
	return c
}

// validate reports whether the (defaulted) configuration is usable.
func (c Config) validate() error {
	if c.Space == nil {
		return fmt.Errorf("core: Config.Space is required")
	}
	if c.Locks == 0 || bits.OnesCount64(c.Locks) != 1 {
		return fmt.Errorf("core: Locks (%d) must be a power of two", c.Locks)
	}
	if c.Hier == 0 || bits.OnesCount64(c.Hier) != 1 {
		return fmt.Errorf("core: Hier (%d) must be a power of two", c.Hier)
	}
	if c.Hier > MaxHier {
		return fmt.Errorf("core: Hier (%d) exceeds MaxHier (%d)", c.Hier, MaxHier)
	}
	if c.Hier > c.Locks {
		return fmt.Errorf("core: Hier (%d) must not exceed Locks (%d)", c.Hier, c.Locks)
	}
	if c.Hier2 == 0 || bits.OnesCount64(c.Hier2) != 1 {
		return fmt.Errorf("core: Hier2 (%d) must be a power of two", c.Hier2)
	}
	if c.Hier2 > c.Hier {
		return fmt.Errorf("core: Hier2 (%d) must not exceed Hier (%d)", c.Hier2, c.Hier)
	}
	if c.Hier2 > 1 && c.Hier == 1 {
		return fmt.Errorf("core: Hier2 requires hierarchical locking (Hier > 1)")
	}
	if c.Shifts > 32 {
		return fmt.Errorf("core: Shifts (%d) out of range [0,32]", c.Shifts)
	}
	if c.Design != WriteBack && c.Design != WriteThrough {
		return fmt.Errorf("core: unknown Design %d", int(c.Design))
	}
	switch c.Clock {
	case FetchInc, Lazy, TicketBatch:
	default:
		return fmt.Errorf("core: unknown ClockStrategy %d", int(c.Clock))
	}
	if !c.CM.Valid() {
		return fmt.Errorf("core: unknown contention-management policy %d", int(c.CM))
	}
	if c.ClockBatch < 1 || c.ClockBatch > 1024 {
		return fmt.Errorf("core: ClockBatch (%d) out of range [1,1024]", c.ClockBatch)
	}
	if c.MaxClock < 2 {
		return fmt.Errorf("core: MaxClock (%d) too small", c.MaxClock)
	}
	if c.SnapshotShards < 0 || (c.SnapshotShards > 0 && bits.OnesCount(uint(c.SnapshotShards)) != 1) {
		return fmt.Errorf("core: SnapshotShards (%d) must be a power of two", c.SnapshotShards)
	}
	if c.SnapshotBudget < 0 {
		return fmt.Errorf("core: SnapshotBudget (%d) must be non-negative", c.SnapshotBudget)
	}
	if maxVer := maxVersion(c.Design); c.MaxClock > maxVer {
		return fmt.Errorf("core: MaxClock (%d) exceeds representable version (%d) for design %v",
			c.MaxClock, maxVer, c.Design)
	}
	return nil
}

// Params is the tunable triple of Section 4, reported and adjusted as a
// unit by the dynamic tuner.
type Params struct {
	Locks  uint64
	Shifts uint
	Hier   uint64
}

// String renders the triple like the paper's configuration labels.
func (p Params) String() string {
	return fmt.Sprintf("(locks=2^%d, shifts=%d, h=%d)", bits.TrailingZeros64(p.Locks), p.Shifts, p.Hier)
}
