package core

import (
	"sync"
	"testing"

	"tinystm/internal/txn"
)

func TestParseClockStrategy(t *testing.T) {
	cases := []struct {
		in   string
		want ClockStrategy
		ok   bool
	}{
		{"fetchinc", FetchInc, true},
		{"gv4", FetchInc, true},
		{"", FetchInc, true},
		{"lazy", Lazy, true},
		{"GV5", Lazy, true},
		{"ticket", TicketBatch, true},
		{"TicketBatch", TicketBatch, true},
		{"batch", TicketBatch, true},
		{" lazy ", Lazy, true},
		{"gv6", 0, false},
		{"bogus", 0, false},
	}
	for _, c := range cases {
		got, err := ParseClockStrategy(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseClockStrategy(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseClockStrategy(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, cs := range AllClockStrategies {
		back, err := ParseClockStrategy(cs.String())
		if err != nil || back != cs {
			t.Errorf("round-trip %v: got %v, err %v", cs, back, err)
		}
	}
}

func TestConfigClockValidation(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, nil)
	sp := tm.Space()
	if _, err := New(Config{Space: sp, Clock: ClockStrategy(9)}); err == nil {
		t.Error("unknown clock strategy accepted")
	}
	if _, err := New(Config{Space: sp, Clock: TicketBatch, ClockBatch: 4096}); err == nil {
		t.Error("oversized ClockBatch accepted")
	}
	if _, err := New(Config{Space: sp, Clock: TicketBatch, ClockBatch: 32}); err != nil {
		t.Errorf("valid TicketBatch config rejected: %v", err)
	}
}

func TestClockAdvanceTo(t *testing.T) {
	var c clock
	c.advanceTo(5)
	if c.now() != 5 {
		t.Fatalf("now = %d, want 5", c.now())
	}
	c.advanceTo(3) // never regress
	if c.now() != 5 {
		t.Fatalf("now after lower advance = %d, want 5", c.now())
	}
	c.advanceTo(5) // idempotent
	if c.now() != 5 {
		t.Fatalf("now after equal advance = %d, want 5", c.now())
	}

	// Concurrent advances: the clock must end at the maximum and never
	// be observed moving backwards.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			last := uint64(0)
			for i := uint64(1); i <= 1000; i++ {
				c.advanceTo(uint64(id)*1000 + i)
				if now := c.now(); now < last {
					t.Errorf("clock regressed: %d after %d", now, last)
					return
				} else {
					last = now
				}
			}
		}(w)
	}
	wg.Wait()
	if c.now() != 8000 {
		t.Fatalf("final clock = %d, want 8000", c.now())
	}
}

func TestClockReserveDisjoint(t *testing.T) {
	var c clock
	const workers, blocks, k = 8, 100, 8
	var mu sync.Mutex
	seen := make(map[uint64]bool)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < blocks; i++ {
				lo, hi := c.reserve(k)
				if hi != lo+k-1 {
					t.Errorf("reserve block [%d,%d] has wrong width", lo, hi)
					return
				}
				mu.Lock()
				for ts := lo; ts <= hi; ts++ {
					if seen[ts] {
						t.Errorf("timestamp %d reserved twice", ts)
						mu.Unlock()
						return
					}
					seen[ts] = true
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != workers*blocks*k {
		t.Fatalf("reserved %d timestamps, want %d", len(seen), workers*blocks*k)
	}
}

// TestTicketMonotonicNoLostTimestamps: a lone descriptor drains its blocks
// in order with nothing racing it, so commit timestamps must be strictly
// increasing AND dense — a gap would mean the strategy lost (discarded)
// a timestamp without cause.
func TestTicketMonotonicNoLostTimestamps(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, func(c *Config) { c.Clock = TicketBatch })
	tx := tm.NewTx()
	var a uint64
	tm.Atomic(tx, func(tx *Tx) { a = tx.Alloc(1); tx.Store(a, 0) })
	last := tx.LastCommitTS()
	if last != 1 {
		t.Fatalf("first commit ts = %d, want 1", last)
	}
	for i := 0; i < 100; i++ {
		tm.Atomic(tx, func(tx *Tx) { tx.Store(a, uint64(i)) })
		ts := tx.LastCommitTS()
		if ts != last+1 {
			t.Fatalf("commit %d: ts = %d, want %d (monotonic, no lost timestamps)",
				i, ts, last+1)
		}
		last = ts
	}
	if got := tm.Stats().TicketsDiscarded; got != 0 {
		t.Errorf("uncontended run discarded %d tickets, want 0", got)
	}
}

func TestTicketTimestampsUniqueConcurrent(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, func(c *Config) { c.Clock = TicketBatch; c.YieldEvery = 2 })
	const workers, iters = 4, 300
	var mu sync.Mutex
	seen := make(map[uint64]int)
	var wg sync.WaitGroup
	var base uint64
	setup := tm.NewTx()
	tm.Atomic(setup, func(tx *Tx) { base = tx.Alloc(workers) })
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tx := tm.NewTx()
			for i := 0; i < iters; i++ {
				tm.Atomic(tx, func(tx *Tx) {
					tx.Store(base+uint64(id), uint64(i))
				})
				mu.Lock()
				seen[tx.LastCommitTS()]++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	for ts, n := range seen {
		if n != 1 {
			t.Errorf("timestamp %d issued %d times", ts, n)
		}
	}
	if len(seen) != workers*iters {
		t.Errorf("%d distinct timestamps, want %d", len(seen), workers*iters)
	}
}

// TestTicketStaleBatchDiscarded pins the staleness check: descriptor A
// reserves [1..8] and uses ticket 1; B then reserves [9..16] and drives
// the visible clock to 16 with eight commits; A's next commit must discard
// its stale tickets 2..8 and commit at 17 from a fresh block.
func TestTicketStaleBatchDiscarded(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, func(c *Config) { c.Clock = TicketBatch })
	a, b := tm.NewTx(), tm.NewTx()
	var addr uint64
	tm.Atomic(a, func(tx *Tx) { addr = tx.Alloc(2); tx.Store(addr, 0) })
	if got := a.LastCommitTS(); got != 1 {
		t.Fatalf("A's first commit ts = %d, want 1", got)
	}
	for i := 0; i < 8; i++ {
		tm.Atomic(b, func(tx *Tx) { tx.Store(addr, uint64(i)) })
	}
	if got := b.LastCommitTS(); got != 16 {
		t.Fatalf("B's eighth commit ts = %d, want 16", got)
	}
	tm.Atomic(a, func(tx *Tx) { tx.Store(addr+1, 1) })
	if got := a.LastCommitTS(); got != 17 {
		t.Errorf("A's post-race commit ts = %d, want 17 (fresh block)", got)
	}
	if got := tm.Stats().TicketsDiscarded; got != 7 {
		t.Errorf("tickets discarded = %d, want 7 (stale 2..8)", got)
	}
}

// TestTicketReservationsDrainedOnReconfigure: Reconfigure resets the clock
// under the freeze barrier; a descriptor's partially-drained block from
// the old epoch must be voided, not drained into the new epoch (where its
// tickets would collide with fresh reservations).
func TestTicketReservationsDrainedOnReconfigure(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, func(c *Config) { c.Clock = TicketBatch })
	tx := tm.NewTx()
	var a uint64
	tm.Atomic(tx, func(tx *Tx) { a = tx.Alloc(1); tx.Store(a, 0) })
	tm.Atomic(tx, func(tx *Tx) { tx.Store(a, 1) })
	if got := tx.LastCommitTS(); got != 2 {
		t.Fatalf("pre-reconfigure ts = %d, want 2 (block [1..8] partially drained)", got)
	}
	if err := tm.Reconfigure(Params{Locks: 1 << 8, Shifts: 0, Hier: 1}); err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	tm.Atomic(tx, func(tx *Tx) { tx.Store(a, 2) })
	if got := tx.LastCommitTS(); got != 1 {
		t.Errorf("post-reconfigure ts = %d, want 1 (old block drained, fresh epoch)", got)
	}
}

// TestTicketReservationsDrainedOnRollOver is the roll-over twin: after the
// clock wraps, the first commit must restart from a fresh block.
func TestTicketReservationsDrainedOnRollOver(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, func(c *Config) { c.Clock = TicketBatch; c.MaxClock = 32 })
	tx := tm.NewTx()
	var a uint64
	tm.Atomic(tx, func(tx *Tx) { a = tx.Alloc(1) })
	for i := 0; i < 200; i++ {
		tm.Atomic(tx, func(tx *Tx) { tx.Store(a, tx.Load(a)+1) })
	}
	if tm.Stats().RollOvers == 0 {
		t.Fatal("expected roll-overs under tiny MaxClock")
	}
	if got := tm.ClockValue(); got >= 32 {
		t.Errorf("clock = %d, want < MaxClock after roll-overs", got)
	}
	tm.Atomic(tx, func(tx *Tx) {
		if got := tx.Load(a); got != 200 {
			t.Errorf("counter = %d, want 200", got)
		}
	})
	if ts := tx.LastCommitTS(); ts != 0 {
		t.Errorf("read-only commit reported ts %d, want 0", ts)
	}
}

// TestLazyAlwaysValidates: the ts == start+1 fast path is unsound when
// timestamps can collide, so Lazy must validate even a lone transaction.
func TestLazyAlwaysValidates(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, func(c *Config) { c.Clock = Lazy })
	tx := tm.NewTx()
	var a uint64
	tm.Atomic(tx, func(tx *Tx) { a = tx.Alloc(2) })
	before := tm.Stats()
	tm.Atomic(tx, func(tx *Tx) {
		_ = tx.Load(a + 1)
		tx.Store(a, 1)
	})
	d := tm.Stats().Sub(before)
	if d.LocksValidated+d.LocksSkipped == 0 {
		t.Error("Lazy commit skipped validation; unsound under timestamp collisions")
	}
}

// TestTicketSkipValidationSequential: with nothing racing it the
// TicketBatch staleness check proves quiescence, so the ts == start+1
// skip stays live (one of the strategy's advantages over Lazy).
func TestTicketSkipValidationSequential(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, func(c *Config) { c.Clock = TicketBatch })
	tx := tm.NewTx()
	var a uint64
	tm.Atomic(tx, func(tx *Tx) { a = tx.Alloc(2) })
	before := tm.Stats()
	tm.Atomic(tx, func(tx *Tx) {
		_ = tx.Load(a + 1)
		tx.Store(a, 1)
	})
	d := tm.Stats().Sub(before)
	if d.LocksValidated != 0 || d.LocksSkipped != 0 {
		t.Errorf("sequential TicketBatch commit validated (checked=%d skipped=%d), want fast path",
			d.LocksValidated, d.LocksSkipped)
	}
}

// TestLazyCommitConflictDetected: a conflicting write committed at the
// same would-be timestamp window must still abort the reader's commit.
func TestLazyCommitConflictDetected(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, func(c *Config) { c.Clock = Lazy })
	t1, t2 := tm.NewTx(), tm.NewTx()
	var a, b uint64
	tm.Atomic(t1, func(tx *Tx) { a, b = tx.Alloc(1), tx.Alloc(1) })

	t1.Begin(false)
	if !attempt(func() {
		_ = t1.Load(a)
		t1.Store(b, 1)
	}) {
		t.Fatal("unexpected abort")
	}
	tm.Atomic(t2, func(tx *Tx) { tx.Store(a, 11) })
	if t1.Commit() {
		t.Fatal("t1 commit should fail validation under Lazy")
	}
	if got := t1.TxStats().AbortsByKind[txn.AbortValidate]; got != 1 {
		t.Errorf("validate aborts = %d, want 1", got)
	}
}

func TestBankInvariantClockStrategies(t *testing.T) {
	designsAndClocks(t, func(t *testing.T, d Design, cs ClockStrategy) {
		tm, _ := newTestTMClock(t, d, cs, func(c *Config) { c.YieldEvery = 8 })
		runBankStress(t, tm, 4, 300)
	})
}
