package core

// Commit-timestamp acquisition for the three clock strategies
// (Config.Clock). The safety argument every strategy must satisfy: update
// transactions serialize in commit-timestamp order, so a committer's
// timestamp must exceed the timestamp of every conflicting transaction
// that committed before it. FetchInc gets this for free from the atomic
// increment; Lazy and TicketBatch re-establish it with a publication
// ordering (advance the visible clock before releasing locks, and before
// validating) plus, for TicketBatch, a commit-time staleness check.
//
// Versions-can-collide audit (the comparisons in tx.go this file's
// strategies lean on):
//
//   - Load/loadSlow use `ver <= tx.end`: collisions are harmless here —
//     a version equal to another commit's version still either fits the
//     snapshot or triggers extension.
//   - extend() sets end = now(): sound for all strategies because every
//     strategy advances the visible clock to a commit's timestamp BEFORE
//     releasing its locks, so any version a reader can observe is <= the
//     clock it extends to (no livelock re-extending toward an
//     unreachable version).
//   - validate() uses exact version equality, which is collision-proof.
//   - Commit's `ts == start+1` validation skip is the one comparison
//     that is NOT sound under collisions: with Lazy two conflicting
//     committers can both hold ts == start+1 and would both skip
//     validation. commitTS therefore reports per strategy whether the
//     skip may be used (see the proofs at skipOK below).

// opBudgetIdle is the Load-counter refill when yielding is disabled: large
// enough that the refill path is hit ~never, small enough to never
// underflow int across refills.
const opBudgetIdle = 1 << 30

// commitTS returns the commit timestamp for the current update commit.
// skipOK reports whether the ts == start+1 validation skip is sound under
// the TM's clock strategy; ok == false means the clock is exhausted and
// the caller must roll back and perform a roll-over.
//
// For Lazy and TicketBatch the visible clock is advanced to ts here —
// before validation and before lock release. Both orderings matter:
//
//   - advance-before-release gives extension liveness (a reader that
//     observes version ts can extend its snapshot to at least ts) and
//     per-location version monotonicity (the next writer of the same
//     location reads now() >= ts, so its timestamp exceeds ts);
//   - advance-before-validate makes the TicketBatch staleness check
//     airtight: any conflicting reader that validated its read of our
//     write target before we acquired the lock had already advanced the
//     clock to its own timestamp, so our check observes it.
func (tx *Tx) commitTS() (ts uint64, skipOK bool, ok bool) {
	tm := tx.tm
	switch tm.clockStrat {
	case FetchInc:
		ts = tm.clk.fetchInc()
		if ts >= tm.maxClock {
			return 0, false, false
		}
		// Timestamps are unique and dense, and the increment linearizes
		// commits: ts == start+1 proves no update transaction committed
		// since our snapshot began (Section 3.2's "notable exception").
		return ts, true, true

	case Lazy:
		ts = tm.clk.now() + 1
		if ts >= tm.maxClock {
			return 0, false, false
		}
		// Publish before validating and releasing; the conditional CAS
		// inside advanceTo is skipped when a concurrent committer
		// already advanced the clock — under contention most commits
		// touch the clock line read-only, which is the point of GV5.
		tm.clk.advanceTo(ts)
		// Collisions: two concurrent committers can share ts, so
		// ts == start+1 does not prove quiescence — a conflicting peer
		// may be mid-commit at the same timestamp. Never skip.
		return ts, false, true

	case TicketBatch:
		return tx.ticketTS()
	}
	panic("core: unknown clock strategy")
}

// ticketTS drains the descriptor's reserved timestamp block, refilling it
// with one fetch-and-add per Config.ClockBatch commits.
//
// Soundness of the staleness check (`t <= now()` discards): suppose we
// commit a write to x at ticket t, and a reader R validated its read of x
// (old version) at R's own commit before we acquired x's lock. R advanced
// the visible clock to ts_R before validating; our now() read happens
// after we acquired x's lock, hence after R's validation, hence after R's
// advance — so we observe now() >= ts_R and the check forces t > ts_R:
// R correctly serializes before us. Readers that validate after we
// acquired the lock fail validation outright.
//
// Soundness of keeping the ts == start+1 skip (skipOK true): the skip is
// dangerous only against a commit M that wrote a location we read at its
// pre-M version. Such a read happened while M did not yet hold the
// covering lock (an owned lock routes through loadSlow, a released one
// shows M's version), so M's check — which runs after M's last
// acquisition — read now() after our begin and therefore saw
// now() >= start, forcing ts_M >= start+1; ticket values are globally
// unique, so ts_M != t == start+1, giving ts_M >= start+2 — M serializes
// AFTER us, and our stale read of its target is consistent with that
// order. If instead M released before our own check, its
// advance-before-release makes our check read now() >= ts_M >= start+2
// and t is discarded, so the skip never fires. A mutual-skip cycle (we
// read M's write target and M reads ours, both skipping) is impossible:
// it would need both checks to read a clock below the other's begin
// snapshot, which monotonicity forbids.
func (tx *Tx) ticketTS() (uint64, bool, bool) {
	tm := tx.tm
	// Reservations die with the clock epoch (roll-over and Reconfigure
	// bump it while the world is frozen, so it is stable for the rest of
	// this commit once read here): stale tickets from a previous epoch
	// would collide with the reset clock.
	if e := tm.clockEpoch.Load(); e != tx.ticketEpoch {
		tx.ticketEpoch = e
		tx.ticketNext, tx.ticketEnd = 1, 0 // empty
	}
	for {
		if tx.ticketNext > tx.ticketEnd {
			lo, hi := tm.clk.reserve(tm.clockBatch)
			if lo >= tm.maxClock {
				return 0, false, false // exhausted; roll-over resets r
			}
			if hi >= tm.maxClock {
				hi = tm.maxClock - 1 // tickets past the threshold are unusable
			}
			tx.ticketNext, tx.ticketEnd = lo, hi
		}
		t := tx.ticketNext
		c0 := tm.clk.now()
		if t <= c0 {
			// Tickets t..min(c0, end) fell behind commits that already
			// advanced the visible clock; using one would serialize us
			// before a transaction that physically preceded us. Discard
			// them (never reuse) and try the rest of the block.
			stale := tx.ticketEnd
			if c0 < stale {
				stale = c0
			}
			tx.ticketsDiscarded += stale - t + 1
			tx.ticketNext = stale + 1
			continue
		}
		tx.ticketNext = t + 1
		tm.clk.advanceTo(t)
		return t, true, true
	}
}

// freshVersion issues a version for a lock word outside the commit path
// (write-through incarnation overflow). Per-location monotonicity is
// preserved under every strategy: the previous version of any released
// lock was advanced into the visible clock (FetchInc, Lazy) or issued
// from the reservation counter (TicketBatch) before it became observable.
func (tx *Tx) freshVersion() uint64 {
	tm := tx.tm
	switch tm.clockStrat {
	case FetchInc:
		return tm.clk.fetchInc()
	case Lazy:
		ts := tm.clk.now() + 1
		tm.clk.advanceTo(ts)
		return ts
	case TicketBatch:
		// A single-slot reservation rather than the descriptor's batch:
		// abort paths must not disturb commit-ordering state.
		_, hi := tm.clk.reserve(1)
		tm.clk.advanceTo(hi)
		return hi
	}
	panic("core: unknown clock strategy")
}
