package core

import "sync/atomic"

// clock is the global time base: a shared integer counter (paper Section
// 3.1, "Clock Management"). It is padded to its own cache line because
// every update commit increments it.
type clock struct {
	_ [64]byte
	v atomic.Uint64
	_ [64]byte
}

// now returns the timestamp of the last committed update transaction.
func (c *clock) now() uint64 { return c.v.Load() }

// fetchInc issues the next commit timestamp.
func (c *clock) fetchInc() uint64 { return c.v.Add(1) }

// reset rewinds the clock to zero during a roll-over (all transactions are
// quiescent when this runs).
func (c *clock) reset() { c.v.Store(0) }
