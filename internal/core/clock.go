package core

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// ClockStrategy selects how update commits obtain their timestamp from the
// global time base. The paper's Section 3.1 ("Clock Management") uses a
// single shared counter incremented at every update commit; the strategies
// below trade that commit-time contention against extra snapshot
// extensions or reserved-but-unused timestamps, following the GV4/GV5
// family of TL2 and the batching idea of ticket locks.
type ClockStrategy int

const (
	// FetchInc is the paper's baseline (and TL2's GV4 spirit): every
	// update commit performs one atomic fetch-and-increment on the shared
	// clock. Timestamps are unique and dense; the commit-time fast path
	// that skips validation when ts == start+1 is sound.
	FetchInc ClockStrategy = iota
	// Lazy is GV5-style: a committer takes now()+1 WITHOUT incrementing
	// the clock, then advances the clock to at least that value with a
	// single conditional compare-and-swap (skipped entirely when a
	// concurrent committer already advanced it). Under contention most
	// commits touch the clock's cache line read-only. The price:
	// timestamps can collide (concurrent committers sharing now()+1), so
	// the ts == start+1 validation skip is unsound and disabled, and
	// readers perform more snapshot extensions.
	Lazy
	// TicketBatch amortizes the atomic over a block: each descriptor
	// reserves clockBatch consecutive timestamps with one fetch-and-add
	// on a separate reservation counter and drains them across its next
	// commits. A commit-time staleness check (ticket must exceed the
	// visible clock) discards reservations that fell behind concurrent
	// commits, preserving the serialization order; reservations are also
	// drained wholesale at clock roll-over and Reconfigure via the TM's
	// clock epoch. Timestamps are unique but not dense (discarded tickets
	// are never reused).
	TicketBatch
)

// String names the strategy as the -clock flag spells it.
func (s ClockStrategy) String() string {
	switch s {
	case FetchInc:
		return "fetchinc"
	case Lazy:
		return "lazy"
	case TicketBatch:
		return "ticket"
	default:
		return fmt.Sprintf("ClockStrategy(%d)", int(s))
	}
}

// AllClockStrategies lists the strategies for table-driven tests, sweeps
// and CLI help.
var AllClockStrategies = []ClockStrategy{FetchInc, Lazy, TicketBatch}

// ParseClockStrategy converts a -clock flag value to a strategy.
func ParseClockStrategy(s string) (ClockStrategy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "fetchinc", "gv4", "":
		return FetchInc, nil
	case "lazy", "gv5":
		return Lazy, nil
	case "ticket", "ticketbatch", "batch":
		return TicketBatch, nil
	}
	return 0, fmt.Errorf("core: unknown clock strategy %q (want fetchinc, lazy or ticket)", s)
}

// clock is the global time base: a shared integer counter (paper Section
// 3.1, "Clock Management"). v is the visible clock — the timestamp of the
// last committed update transaction that snapshots are taken against. r is
// the reservation counter used only by TicketBatch: timestamps are handed
// out from r and become visible in v no later than the moment the commit
// that uses them releases its locks, so r >= v always holds. Both counters
// are padded to their own cache lines because every update commit touches
// at least one of them.
type clock struct {
	_ [64]byte
	v atomic.Uint64
	_ [64]byte
	r atomic.Uint64
	_ [64]byte
}

// now returns the timestamp of the last committed update transaction.
func (c *clock) now() uint64 { return c.v.Load() }

// fetchInc issues the next commit timestamp (FetchInc strategy).
func (c *clock) fetchInc() uint64 { return c.v.Add(1) }

// advanceTo raises the visible clock to at least ts. Callers must ensure
// ts was derived from the clock or the reservation counter so the value is
// never stale relative to the caller's own view; the loop terminates
// because every CAS failure means another committer advanced the clock.
func (c *clock) advanceTo(ts uint64) {
	for {
		cur := c.v.Load()
		if cur >= ts {
			return
		}
		if c.v.CompareAndSwap(cur, ts) {
			return
		}
	}
}

// reserve hands out k consecutive timestamps [lo, hi] from the reservation
// counter (TicketBatch strategy).
func (c *clock) reserve(k uint64) (lo, hi uint64) {
	hi = c.r.Add(k)
	return hi - k + 1, hi
}

// exhausted reports whether the clock (or, for TicketBatch, the
// reservation counter running ahead of it) has reached the roll-over
// threshold. Used by the roll-over double-check and the begin-time check.
func (c *clock) exhausted(maxClock uint64) bool {
	return c.v.Load() >= maxClock-1 || c.r.Load() >= maxClock-1
}

// reset rewinds the clock to zero during a roll-over (all transactions are
// quiescent when this runs). Descriptors holding reserved ticket batches
// are invalidated separately via the TM's clock epoch.
func (c *clock) reset() {
	c.v.Store(0)
	c.r.Store(0)
}
