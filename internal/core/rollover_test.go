package core

import (
	"sync"
	"testing"
	"time"
)

func TestClockRollOverSingleThread(t *testing.T) {
	designsAndClocks(t, func(t *testing.T, d Design, cs ClockStrategy) {
		tm, _ := newTestTMClock(t, d, cs, func(c *Config) { c.MaxClock = 64 })
		tx := tm.NewTx()
		var a uint64
		tm.Atomic(tx, func(tx *Tx) { a = tx.Alloc(1) })
		// Each committing update bumps the clock; far more commits than
		// MaxClock forces several roll-overs.
		for i := 0; i < 500; i++ {
			tm.Atomic(tx, func(tx *Tx) { tx.Store(a, tx.Load(a)+1) })
		}
		tm.Atomic(tx, func(tx *Tx) {
			if got := tx.Load(a); got != 500 {
				t.Errorf("counter = %d, want 500", got)
			}
		})
		if tm.Stats().RollOvers == 0 {
			t.Error("expected at least one roll-over")
		}
		if tm.ClockValue() >= 64 {
			t.Errorf("clock = %d, want < MaxClock", tm.ClockValue())
		}
	})
}

func TestClockRollOverConcurrent(t *testing.T) {
	designsAndClocks(t, func(t *testing.T, d Design, cs ClockStrategy) {
		tm, _ := newTestTMClock(t, d, cs, func(c *Config) { c.MaxClock = 32 })
		runBankStress(t, tm, 4, 300)
		if tm.Stats().RollOvers == 0 {
			t.Error("expected roll-overs under tiny MaxClock")
		}
	})
}

func TestRollOverResetsVersions(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, func(c *Config) { c.MaxClock = 16 })
	tx := tm.NewTx()
	var a uint64
	tm.Atomic(tx, func(tx *Tx) { a = tx.Alloc(1) })
	for i := 0; i < 40; i++ {
		tm.Atomic(tx, func(tx *Tx) { tx.Store(a, uint64(i)) })
	}
	g := tm.geo.Load()
	// After roll-overs every version must be below MaxClock.
	for li := range g.locks {
		lw := g.loadLock(uint64(li))
		if isOwned(lw) {
			t.Fatalf("lock %d owned at quiescence", li)
		}
		if versionWB(lw) >= 16 {
			t.Fatalf("lock %d version %d not reset", li, versionWB(lw))
		}
	}
}

func TestReconfigureChangesParams(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, nil)
	want := Params{Locks: 1 << 12, Shifts: 3, Hier: 16}
	if err := tm.Reconfigure(want); err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	if got := tm.Params(); got != want {
		t.Errorf("Params = %+v, want %+v", got, want)
	}
	if tm.Stats().Reconfigs != 1 {
		t.Errorf("reconfigs = %d, want 1", tm.Stats().Reconfigs)
	}
}

func TestReconfigureRejectsBadParams(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, nil)
	for _, p := range []Params{
		{Locks: 3, Shifts: 0, Hier: 1},
		{Locks: 1 << 10, Shifts: 0, Hier: 3},
		{Locks: 4, Shifts: 0, Hier: 8},
		{Locks: 1 << 10, Shifts: 60, Hier: 1},
	} {
		if err := tm.Reconfigure(p); err == nil {
			t.Errorf("Reconfigure(%+v) accepted", p)
		}
	}
}

func TestReconfigureUnderLoad(t *testing.T) {
	// Reconfigure repeatedly while workers hammer the bank; the invariant
	// must survive geometry changes and transactions must keep committing.
	// Run under every clock strategy: Reconfigure resets the clock, so
	// TicketBatch reservation draining (the epoch bump) is load-bearing
	// here.
	designsAndClocks(t, func(t *testing.T, d Design, cs ClockStrategy) {
		tm, _ := newTestTMClock(t, d, cs, nil)
		stop := make(chan struct{})
		// ready closes after the first reconfiguration: on a one-core host
		// the whole iteration-bounded stress can otherwise finish before
		// the reconfigure goroutine is ever scheduled, leaving Reconfigs
		// at zero and the test vacuous. The deferred Once also fires on
		// the error path, so a failed first Reconfigure reports instead of
		// hanging the main goroutine on <-ready.
		ready := make(chan struct{})
		var readyOnce sync.Once
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer readyOnce.Do(func() { close(ready) })
			params := []Params{
				{Locks: 1 << 6, Shifts: 0, Hier: 1},
				{Locks: 1 << 12, Shifts: 2, Hier: 4},
				{Locks: 1 << 8, Shifts: 4, Hier: 16},
				{Locks: 1 << 10, Shifts: 1, Hier: 64},
			}
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := tm.Reconfigure(params[i%len(params)]); err != nil {
					t.Errorf("Reconfigure: %v", err)
					return
				}
				if i == 0 {
					readyOnce.Do(func() { close(ready) })
				}
				i++
			}
		}()
		<-ready
		runBankStress(t, tm, 3, 300)
		close(stop)
		wg.Wait()
		if tm.Stats().Reconfigs == 0 {
			t.Error("no reconfigurations happened")
		}
	})
}

func TestFreezerBlocksNewTransactions(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, nil)
	tm.fz.freeze()
	if !tm.Frozen() {
		t.Fatal("not frozen")
	}
	started := make(chan struct{})
	committed := make(chan struct{})
	go func() {
		tx := tm.NewTx()
		close(started)
		tm.Atomic(tx, func(tx *Tx) {
			a := tx.Alloc(1)
			tx.Store(a, 1)
		})
		close(committed)
	}()
	<-started
	time.Sleep(20 * time.Millisecond) // let the worker reach the barrier
	select {
	case <-committed:
		t.Fatal("transaction committed while frozen")
	default:
	}
	tm.fz.unfreeze()
	<-committed
}
