package core

import (
	"runtime"
	"testing"

	"tinystm/internal/txn"
)

// Contention-management extension tests: bounded spinning on conflicts
// (Config.ConflictSpin) and randomized backoff (Config.BackoffOnAbort).

func TestSpinDisabledAbortsImmediately(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, nil) // ConflictSpin = 0
	t1, t2 := tm.NewTx(), tm.NewTx()
	var a uint64
	tm.Atomic(t1, func(tx *Tx) { a = tx.Alloc(1) })
	t1.Begin(false)
	if !attempt(func() { t1.Store(a, 1) }) {
		t.Fatal("unexpected abort")
	}
	t2.Begin(false)
	if attempt(func() { t2.Store(a, 2) }) {
		t.Fatal("expected immediate abort with spinning disabled")
	}
	if !t1.Commit() {
		t.Fatal("t1 commit failed")
	}
}

func TestSpinWaitsOutShortConflicts(t *testing.T) {
	// With a generous spin budget, a writer that conflicts with a
	// transaction about to commit should usually win without aborting.
	tm, _ := newTestTM(t, WriteBack, func(c *Config) { c.ConflictSpin = 1 << 20 })
	t1, t2 := tm.NewTx(), tm.NewTx()
	var a uint64
	tm.Atomic(t1, func(tx *Tx) { a = tx.Alloc(1) })

	t1.Begin(false)
	if !attempt(func() { t1.Store(a, 1) }) {
		t.Fatal("unexpected abort")
	}
	released := make(chan struct{})
	go func() {
		// Give t2 time to start spinning, then release the lock.
		for i := 0; i < 100; i++ {
			runtime.Gosched()
		}
		if !t1.Commit() {
			t.Error("t1 commit failed")
		}
		close(released)
	}()
	tm.Atomic(t2, func(tx *Tx) { tx.Store(a, tx.Load(a)+1) })
	<-released
	tm.Atomic(t1, func(tx *Tx) {
		if got := tx.Load(a); got != 2 {
			t.Errorf("value = %d, want 2", got)
		}
	})
}

func TestSpinBudgetExhaustionAborts(t *testing.T) {
	// A small budget against a lock that is never released must abort.
	tm, _ := newTestTM(t, WriteBack, func(c *Config) { c.ConflictSpin = 32 })
	t1, t2 := tm.NewTx(), tm.NewTx()
	var a uint64
	tm.Atomic(t1, func(tx *Tx) { a = tx.Alloc(1) })
	t1.Begin(false)
	if !attempt(func() { t1.Store(a, 1) }) {
		t.Fatal("unexpected abort")
	}
	t2.Begin(false)
	if attempt(func() { _ = t2.Load(a) }) {
		t.Fatal("expected abort after spin budget exhausted")
	}
	if got := t2.TxStats().AbortsByKind[txn.AbortReadConflict]; got != 1 {
		t.Errorf("read-conflict aborts = %d, want 1", got)
	}
	if !t1.Commit() {
		t.Fatal("t1 commit failed")
	}
}

func TestBankInvariantWithSpin(t *testing.T) {
	bothDesigns(t, func(t *testing.T, d Design) {
		tm, _ := newTestTM(t, d, func(c *Config) { c.ConflictSpin = 256 })
		runBankStress(t, tm, 4, 300)
	})
}

func TestSerializabilityWithSpin(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, func(c *Config) { c.ConflictSpin = 128 })
	runSerializabilityCheck(t, tm, 4, 200, 8)
}

func TestBankInvariantWithYield(t *testing.T) {
	// The interleaving simulation must not affect correctness.
	bothDesigns(t, func(t *testing.T, d Design) {
		tm, _ := newTestTM(t, d, func(c *Config) { c.YieldEvery = 4 })
		runBankStress(t, tm, 4, 200)
	})
}

func TestSerializabilityWithYield(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, func(c *Config) { c.YieldEvery = 2 })
	runSerializabilityCheck(t, tm, 4, 200, 8)
}

func TestYieldSurfacesConflicts(t *testing.T) {
	// With yielding every load, concurrent list traversals must overlap
	// and produce aborts even on a single-CPU host.
	tm, _ := newTestTM(t, WriteBack, func(c *Config) { c.YieldEvery = 1 })
	runBankStress(t, tm, 4, 400)
	if tm.Stats().Aborts == 0 {
		t.Log("no aborts surfaced; acceptable but unexpected under yield=1")
	}
}
