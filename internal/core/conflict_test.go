package core

import (
	"testing"

	"tinystm/internal/txn"
)

// These tests craft exact interleavings by stepping two descriptors from a
// single goroutine, which is possible because descriptors only assume
// affinity, not identity of the controlling goroutine.

func TestWriteWriteConflictAborts(t *testing.T) {
	bothDesigns(t, func(t *testing.T, d Design) {
		tm, _ := newTestTM(t, d, nil)
		t1, t2 := tm.NewTx(), tm.NewTx()
		var a uint64
		tm.Atomic(t1, func(tx *Tx) { a = tx.Alloc(1) })

		t1.Begin(false)
		if !attempt(func() { t1.Store(a, 1) }) {
			t.Fatal("t1 store aborted unexpectedly")
		}
		t2.Begin(false)
		if attempt(func() { t2.Store(a, 2) }) {
			t.Fatal("t2 store should conflict with t1's encounter-time lock")
		}
		if t2.InTx() {
			t.Error("t2 still in tx after abort")
		}
		if got := t2.TxStats().AbortsByKind[txn.AbortWriteConflict]; got != 1 {
			t.Errorf("write-conflict aborts = %d, want 1", got)
		}
		if !t1.Commit() {
			t.Fatal("t1 commit failed")
		}
	})
}

func TestReadLockedLocationAborts(t *testing.T) {
	bothDesigns(t, func(t *testing.T, d Design) {
		tm, _ := newTestTM(t, d, nil)
		t1, t2 := tm.NewTx(), tm.NewTx()
		var a uint64
		tm.Atomic(t1, func(tx *Tx) { a = tx.Alloc(1) })

		t1.Begin(false)
		if !attempt(func() { t1.Store(a, 1) }) {
			t.Fatal("unexpected abort")
		}
		t2.Begin(false)
		if attempt(func() { _ = t2.Load(a) }) {
			t.Fatal("t2 load of locked location should abort")
		}
		if got := t2.TxStats().AbortsByKind[txn.AbortReadConflict]; got != 1 {
			t.Errorf("read-conflict aborts = %d, want 1", got)
		}
		if !t1.Commit() {
			t.Fatal("t1 commit failed")
		}
	})
}

func TestSnapshotExtensionSucceeds(t *testing.T) {
	// t1 reads a; t2 commits a write to b (bumping the clock); t1 then
	// reads b, forcing an extension that succeeds because a is untouched.
	designsAndClocks(t, func(t *testing.T, d Design, cs ClockStrategy) {
		tm, _ := newTestTMClock(t, d, cs, nil)
		t1, t2 := tm.NewTx(), tm.NewTx()
		var a, b uint64
		tm.Atomic(t1, func(tx *Tx) {
			a, b = tx.Alloc(1), tx.Alloc(1)
			tx.Store(a, 10)
			tx.Store(b, 20)
		})

		t1.Begin(false)
		var got uint64
		if !attempt(func() { got = t1.Load(a) }) {
			t.Fatal("t1 read aborted")
		}
		if got != 10 {
			t.Fatalf("t1 read a = %d, want 10", got)
		}
		_, endBefore := t1.Snapshot()

		tm.Atomic(t2, func(tx *Tx) { tx.Store(b, 21) })

		if !attempt(func() { got = t1.Load(b) }) {
			t.Fatal("t1 read of b should extend, not abort")
		}
		if got != 21 {
			t.Errorf("t1 read b = %d, want 21 (extended snapshot)", got)
		}
		if _, endAfter := t1.Snapshot(); endAfter <= endBefore {
			t.Errorf("snapshot end not extended: %d -> %d", endBefore, endAfter)
		}
		if t1.TxStats().Extensions != 1 {
			t.Errorf("extensions = %d, want 1", t1.TxStats().Extensions)
		}
		// t1 wrote nothing; stores something to force validating commit.
		if !attempt(func() { t1.Store(a, 11) }) {
			t.Fatal("t1 store aborted")
		}
		if !t1.Commit() {
			t.Error("t1 commit failed after valid extension")
		}
	})
}

func TestSnapshotExtensionFailsOnStaleRead(t *testing.T) {
	// t1 reads a; t2 commits writes to BOTH a and b; t1 then reads b:
	// extension must fail because a changed after t1 read it.
	designsAndClocks(t, func(t *testing.T, d Design, cs ClockStrategy) {
		tm, _ := newTestTMClock(t, d, cs, nil)
		t1, t2 := tm.NewTx(), tm.NewTx()
		var a, b uint64
		tm.Atomic(t1, func(tx *Tx) {
			a, b = tx.Alloc(1), tx.Alloc(1)
			tx.Store(a, 10)
			tx.Store(b, 20)
		})

		t1.Begin(false)
		if !attempt(func() { _ = t1.Load(a) }) {
			t.Fatal("t1 read aborted")
		}
		tm.Atomic(t2, func(tx *Tx) {
			tx.Store(a, 11)
			tx.Store(b, 21)
		})
		if attempt(func() { _ = t1.Load(b) }) {
			t.Fatal("t1 read of b should abort: snapshot not extensible")
		}
		if got := t1.TxStats().AbortsByKind[txn.AbortExtend]; got != 1 {
			t.Errorf("extend aborts = %d, want 1", got)
		}
	})
}

func TestCommitValidationFailure(t *testing.T) {
	// t1 reads a, t2 commits a write to a, t1 writes b and tries to
	// commit: read-set validation must fail. Under every clock strategy:
	// the ts == start+1 skip must never swallow this conflict.
	designsAndClocks(t, func(t *testing.T, d Design, cs ClockStrategy) {
		tm, _ := newTestTMClock(t, d, cs, nil)
		t1, t2 := tm.NewTx(), tm.NewTx()
		var a, b uint64
		tm.Atomic(t1, func(tx *Tx) {
			a, b = tx.Alloc(1), tx.Alloc(1)
			tx.Store(a, 10)
		})

		t1.Begin(false)
		if !attempt(func() {
			_ = t1.Load(a)
			t1.Store(b, 1)
		}) {
			t.Fatal("unexpected abort")
		}
		tm.Atomic(t2, func(tx *Tx) { tx.Store(a, 11) })
		if t1.Commit() {
			t.Fatal("t1 commit should fail validation")
		}
		if got := t1.TxStats().AbortsByKind[txn.AbortValidate]; got != 1 {
			t.Errorf("validate aborts = %d, want 1", got)
		}
	})
}

func TestReadOnlyAbortsInsteadOfExtending(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, nil)
	t1, t2 := tm.NewTx(), tm.NewTx()
	var a, b uint64
	tm.Atomic(t1, func(tx *Tx) {
		a, b = tx.Alloc(1), tx.Alloc(1)
	})

	t1.Begin(true)
	if !attempt(func() { _ = t1.Load(a) }) {
		t.Fatal("unexpected abort")
	}
	tm.Atomic(t2, func(tx *Tx) { tx.Store(b, 1) })
	if attempt(func() { _ = t1.Load(b) }) {
		t.Fatal("read-only tx should abort on newer version (no read set to extend)")
	}
	if got := t1.TxStats().AbortsByKind[txn.AbortExtend]; got != 1 {
		t.Errorf("extend aborts = %d, want 1", got)
	}
}

func TestConsistentReadsNoTornSnapshot(t *testing.T) {
	// Invariant x+y == 100. t1 reads x, t2 moves 10 from x to y, t1 reads
	// y: the snapshot must be consistent — either extension covers both
	// or the transaction aborts. It must never see x_old with y_new.
	bothDesigns(t, func(t *testing.T, d Design) {
		tm, _ := newTestTM(t, d, nil)
		t1, t2 := tm.NewTx(), tm.NewTx()
		var x, y uint64
		tm.Atomic(t1, func(tx *Tx) {
			x, y = tx.Alloc(1), tx.Alloc(1)
			tx.Store(x, 60)
			tx.Store(y, 40)
		})

		t1.Begin(false)
		var vx, vy uint64
		okX := attempt(func() { vx = t1.Load(x) })
		if !okX {
			t.Fatal("unexpected abort reading x")
		}
		tm.Atomic(t2, func(tx *Tx) {
			tx.Store(x, tx.Load(x)-10)
			tx.Store(y, tx.Load(y)+10)
		})
		if attempt(func() { vy = t1.Load(y) }) {
			if vx+vy != 100 {
				t.Fatalf("torn snapshot: x=%d y=%d", vx, vy)
			}
			// Extension failed is also acceptable; if we got here the
			// snapshot extended and both values are from the new state.
		}
	})
}

func TestWriteThroughDirtyReadPrevented(t *testing.T) {
	// Write-through writes to memory before commit; a concurrent reader
	// must abort rather than observe the uncommitted value.
	tm, _ := newTestTM(t, WriteThrough, nil)
	t1, t2 := tm.NewTx(), tm.NewTx()
	var a uint64
	tm.Atomic(t1, func(tx *Tx) { a = tx.Alloc(1); tx.Store(a, 1) })

	t1.Begin(false)
	if !attempt(func() { t1.Store(a, 999) }) {
		t.Fatal("unexpected abort")
	}
	// Memory now holds 999 under lock.
	if got := tm.Space().Load(1); got != 999 && a == 1 {
		_ = got // not asserting exact address; the point is the read below
	}
	t2.Begin(false)
	if attempt(func() { _ = t2.Load(a) }) {
		t.Fatal("reader must abort on locked location, not see dirty data")
	}
	// t1 aborts; memory restored; a new reader sees the committed value.
	t1.rollback(txn.AbortExplicit)
	tm.Atomic(t2, func(tx *Tx) {
		if got := tx.Load(a); got != 1 {
			t.Errorf("after abort read = %d, want 1", got)
		}
	})
}

func TestSerializableIncrements(t *testing.T) {
	// Two descriptors alternately incrementing the same counter through
	// full Atomic blocks must produce exactly the sum of commits.
	designsAndClocks(t, func(t *testing.T, d Design, cs ClockStrategy) {
		tm, _ := newTestTMClock(t, d, cs, nil)
		t1, t2 := tm.NewTx(), tm.NewTx()
		var a uint64
		tm.Atomic(t1, func(tx *Tx) { a = tx.Alloc(1) })
		const n = 100
		for i := 0; i < n; i++ {
			tm.Atomic(t1, func(tx *Tx) { tx.Store(a, tx.Load(a)+1) })
			tm.Atomic(t2, func(tx *Tx) { tx.Store(a, tx.Load(a)+1) })
		}
		tm.Atomic(t1, func(tx *Tx) {
			if got := tx.Load(a); got != 2*n {
				t.Errorf("counter = %d, want %d", got, 2*n)
			}
		})
	})
}

func TestLockReleasedAfterCommitHasNewVersion(t *testing.T) {
	// Single-threaded, every strategy issues dense timestamps (Lazy reads
	// the clock it just advanced; TicketBatch drains its block in order),
	// so the released version is exactly clock+1.
	designsAndClocks(t, func(t *testing.T, d Design, cs ClockStrategy) {
		tm, _ := newTestTMClock(t, d, cs, nil)
		tx := tm.NewTx()
		var a uint64
		tm.Atomic(tx, func(tx *Tx) { a = tx.Alloc(1) })
		clockBefore := tm.ClockValue()
		tm.Atomic(tx, func(tx *Tx) { tx.Store(a, 5) })
		g := tm.geo.Load()
		lw := g.loadLock(g.lockIndex(a))
		if isOwned(lw) {
			t.Fatal("lock owned after commit")
		}
		if got := version(d, lw); got != clockBefore+1 {
			t.Errorf("lock version = %d, want %d", got, clockBefore+1)
		}
	})
}
