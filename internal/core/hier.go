package core

// Hierarchical locking (paper Section 3.2).
//
// Beside the lock array of l entries the TM keeps a much smaller array of
// h counters. Every address maps to one counter, consistently with its
// lock mapping (same lock implies same counter). Each transaction records,
// on first access (read or write) to a bucket, the counter's current
// value; lock acquisitions increment the shared counter. Validation may
// then skip a whole bucket when the counter changed only by this
// transaction's own increments: no competing transaction can have locked
// any address in it since the snapshot. Read sets are partitioned per
// bucket so the skip drops entire slices.
//
// Deviation from the paper (documented in DESIGN.md): the paper
// increments the counter only on a transaction's *first* write per bucket
// (a write-mask bit), and validation skips when the counter is unchanged
// or changed by exactly that own first-write increment. That formulation
// has an unsound window: a writer W that performed its first bucket write
// (and increment) *before* a reader R snapshots the counter can acquire
// further locks in the same bucket afterwards without incrementing again;
// R's fast path then sees an unchanged counter and skips validating a
// read that W made stale. This implementation therefore increments on
// *every* lock acquisition and tracks the transaction's own per-bucket
// acquisition count: the skip condition counter == snapshot + own
// acquisitions makes every foreign acquisition after the snapshot
// visible. The cost model the paper describes (more atomic operations for
// larger h) is unchanged in character; writers touching w distinct locks
// in a bucket pay w increments instead of one.
//
// The optional second level (Config.Hier2) realizes the paper's closing
// remark that "this scheme can be generalized 'hierarchically' to
// multiple levels of nesting": a coarser array of counters, each covering
// a group of first-level buckets, lets validation skip whole groups with
// a single check before falling back to per-bucket and per-entry work.

// hierRecordRead returns the read-set partition index for addr, recording
// the bucket's counter on first contact. Only called with hierarchical
// locking enabled; with h == 1 everything lives in partition 0 and Begin
// pre-arms the single active bucket.
func (tx *Tx) hierRecordRead(addr uint64) uint64 {
	g := tx.geo
	b := g.hierIndex(addr)
	if !tx.rmask.has(b) {
		tx.rmask.set(b)
		tx.hsnap[b] = g.hier[b].v.Load()
		tx.hactive = append(tx.hactive, uint8(b))
		if g.hier2Enabled() {
			if b2 := g.hier2Index(b); !tx.rmask2.has(b2) {
				tx.rmask2.set(b2)
				tx.hsnap2[b2] = g.hier2[b2].v.Load()
			}
		}
	}
	return b
}

// hierRecordWrite records a lock acquisition: first contact snapshots the
// counter (the snapshot must precede our own increments for the
// counter == snapshot + own-acquisitions fast-path rule), then the shared
// counter is incremented to signal competing readers. Called once per
// acquisition attempt; a failed CAS retries through here, which bumps
// both the shared counter and the own count consistently (competitors
// merely lose a skip opportunity). Only called with hierarchical locking
// enabled.
func (tx *Tx) hierRecordWrite(addr uint64) {
	g := tx.geo
	b := g.hierIndex(addr)
	if !tx.rmask.has(b) {
		tx.rmask.set(b)
		tx.hsnap[b] = g.hier[b].v.Load()
		tx.hactive = append(tx.hactive, uint8(b))
		if g.hier2Enabled() {
			if b2 := g.hier2Index(b); !tx.rmask2.has(b2) {
				tx.rmask2.set(b2)
				tx.hsnap2[b2] = g.hier2[b2].v.Load()
			}
		}
	}
	g.hier[b].v.Add(1)
	tx.hacq[b]++
	if g.hier2Enabled() {
		b2 := g.hier2Index(b)
		g.hier2[b2].v.Add(1)
		tx.hacq2[b2]++
	}
}

// ReadSetSize returns the number of read-set entries of the current
// attempt (diagnostics; read-only attempts keep none).
func (tx *Tx) ReadSetSize() int {
	n := 0
	for _, p := range tx.rparts {
		n += len(p)
	}
	return n
}

// WriteSetSize returns the number of write-set / owned-lock entries of the
// current attempt.
func (tx *Tx) WriteSetSize() int {
	if tx.design == WriteThrough {
		return len(tx.owned)
	}
	return len(tx.wset)
}
