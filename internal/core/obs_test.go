package core_test

import (
	"testing"

	"tinystm/internal/core"
	"tinystm/internal/mem"
	"tinystm/internal/obs"
	"tinystm/internal/txn"
)

// TestObsInstrumentation proves the observed atomic loop fills the
// commit/abort histograms and the flight recorder, and that detaching
// the hook stops recording.
func TestObsInstrumentation(t *testing.T) {
	space := mem.NewSpace(1 << 12)
	tm := core.MustNew(core.Config{Space: space})
	o := obs.NewTMObs(obs.NewRecorder(256, 1))
	tm.SetObs(o)
	if tm.Obs() != o {
		t.Fatal("Obs() does not return the installed hook")
	}

	tx := tm.NewTx()
	const addr = uint64(0)
	const n = 50
	for i := 0; i < n; i++ {
		tm.Atomic(tx, func(tx *core.Tx) { tx.Store(addr, tx.Load(addr)+1) })
	}
	cs := o.CommitNs.Snapshot()
	if cs.Count != n {
		t.Fatalf("commit histogram count = %d, want %d", cs.Count, n)
	}
	if cs.Sum == 0 || cs.Max == 0 {
		t.Fatal("commit durations were not timed")
	}

	// Force one explicit abort (Retry) and check it lands under its
	// cause; the block commits on its second attempt.
	tm.Atomic(tx, func(tx *core.Tx) {
		if o.AbortNs[txn.AbortExplicit].Snapshot().Count == 0 {
			tx.Retry()
		}
	})
	if got := o.AbortNs[txn.AbortExplicit].Snapshot().Count; got != 1 {
		t.Fatalf("explicit-abort histogram count = %d, want 1", got)
	}

	// Every block was sampled (every=1): the trace must hold commits with
	// durations and the TM's geometry.
	evs := o.Rec.Dump(0)
	if len(evs) == 0 {
		t.Fatal("flight recorder is empty")
	}
	p := tm.Params()
	var commits int
	for _, e := range evs {
		if e.Locks != p.Locks || uint(e.Shifts) != p.Shifts || e.Hier != p.Hier {
			t.Fatalf("event geometry (%d,%d,%d) != TM params %+v", e.Locks, e.Shifts, e.Hier, p)
		}
		if e.Kind == obs.EvCommit {
			commits++
			if e.DurNs == 0 {
				t.Fatal("commit event missing duration")
			}
		}
	}
	if commits == 0 {
		t.Fatal("no commit events recorded")
	}

	// Detach: no further recording.
	tm.SetObs(nil)
	tm.Atomic(tx, func(tx *core.Tx) { tx.Store(addr, 0) })
	if got := o.CommitNs.Snapshot().Count; got != cs.Count+1 {
		t.Fatalf("detached hook still recorded: %d", got)
	}
}
