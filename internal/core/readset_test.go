package core

import (
	"testing"

	"tinystm/internal/txn"
)

func TestDuplicateReadSuppression(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, nil)
	tx := tm.NewTx()
	var a uint64
	tm.Atomic(tx, func(tx *Tx) { a = tx.Alloc(4) })
	before := tm.Stats()
	tm.Atomic(tx, func(tx *Tx) {
		for i := 0; i < 10; i++ {
			_ = tx.Load(a) // same stripe, back-to-back
		}
		if got := tx.ReadSetSize(); got != 1 {
			t.Errorf("read set after 10 identical loads = %d, want 1", got)
		}
		tx.Store(a+1, 1) // make it an update commit so stats flush
	})
	d := tm.Stats().Sub(before)
	if d.DupReadsSkipped != 9 {
		t.Errorf("DupReadsSkipped = %d, want 9", d.DupReadsSkipped)
	}
}

func TestDuplicateReadSuppressionSameLockDifferentAddr(t *testing.T) {
	// With a high shift, adjacent words share a stripe: re-reads of the
	// neighbouring word dedup against the same (lock, version) tail.
	tm, _ := newTestTM(t, WriteBack, func(c *Config) { c.Shifts = 8 })
	tx := tm.NewTx()
	var a uint64
	tm.Atomic(tx, func(tx *Tx) { a = tx.Alloc(2) })
	tm.Atomic(tx, func(tx *Tx) {
		_ = tx.Load(a)
		_ = tx.Load(a + 1)
		if got := tx.ReadSetSize(); got != 1 {
			t.Errorf("read set = %d, want 1 (same stripe)", got)
		}
	})
}

func TestNoSuppressionAcrossAlternatingStripes(t *testing.T) {
	// a and b live on different locks; alternating loads must all be
	// recorded (only adjacent repeats dedup — exactness over recall).
	tm, _ := newTestTM(t, WriteBack, nil)
	tx := tm.NewTx()
	var a, b uint64
	tm.Atomic(tx, func(tx *Tx) { a, b = tx.Alloc(1), tx.Alloc(1) })
	tm.Atomic(tx, func(tx *Tx) {
		_ = tx.Load(a)
		_ = tx.Load(b)
		_ = tx.Load(a)
		_ = tx.Load(b)
		if got := tx.ReadSetSize(); got != 4 {
			t.Errorf("read set = %d, want 4 (no adjacent repeats)", got)
		}
	})
}

func TestSuppressedReadStillValidated(t *testing.T) {
	// The surviving entry must still catch a conflicting write: t1 reads
	// a twice (second read suppressed), t2 commits a write to a, t1's
	// commit must fail validation exactly as without suppression.
	tm, _ := newTestTM(t, WriteBack, nil)
	t1, t2 := tm.NewTx(), tm.NewTx()
	var a, b uint64
	tm.Atomic(t1, func(tx *Tx) { a, b = tx.Alloc(1), tx.Alloc(1) })

	t1.Begin(false)
	if !attempt(func() {
		_ = t1.Load(a)
		_ = t1.Load(a)
		t1.Store(b, 1)
	}) {
		t.Fatal("unexpected abort")
	}
	tm.Atomic(t2, func(tx *Tx) { tx.Store(a, 11) })
	if t1.Commit() {
		t.Fatal("commit should fail validation")
	}
	if got := t1.TxStats().AbortsByKind[txn.AbortValidate]; got != 1 {
		t.Errorf("validate aborts = %d, want 1", got)
	}
}

func TestSuppressionWithHierPartitions(t *testing.T) {
	// Partitioned read sets dedup per partition tail; the hierarchical
	// bookkeeping must stay consistent (bucket counters recorded once).
	tm, _ := newTestTM(t, WriteBack, func(c *Config) { c.Hier = 16 })
	tx := tm.NewTx()
	var a uint64
	const words = 64
	tm.Atomic(tx, func(tx *Tx) { a = tx.Alloc(words) })
	tm.Atomic(tx, func(tx *Tx) {
		for pass := 0; pass < 2; pass++ {
			for i := uint64(0); i < words; i++ {
				_ = tx.Load(a + i)
				_ = tx.Load(a + i) // adjacent repeat inside a partition
			}
		}
		if got := tx.ReadSetSize(); got > 2*words {
			t.Errorf("read set = %d, want <= %d", got, 2*words)
		}
		tx.Store(a, 1)
	})
}

// TestSmallTxAllocationFree: the inline first segments must keep a small
// read-write transaction off the heap entirely (steady state).
func TestSmallTxAllocationFree(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, nil)
	tx := tm.NewTx()
	var a uint64
	tm.Atomic(tx, func(tx *Tx) { a = tx.Alloc(4) })
	fn := func(tx *Tx) {
		v := tx.Load(a)
		tx.Store(a+1, v+1)
		tx.Store(a+2, v+2)
	}
	// Warm up (first Begin sizes rparts).
	tm.Atomic(tx, fn)
	avg := testing.AllocsPerRun(200, func() { tm.Atomic(tx, fn) })
	if avg != 0 {
		t.Errorf("small transaction allocates %.2f objects/run, want 0", avg)
	}
}
