package core

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestConcurrentFreezeInitiatorsSerialize(t *testing.T) {
	// Multiple goroutines freezing simultaneously must serialize without
	// deadlock and the TM must end up unfrozen.
	tm, _ := newTestTM(t, WriteBack, nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				tm.fz.freeze()
				tm.fz.unfreeze()
			}
		}()
	}
	wg.Wait()
	if tm.Frozen() {
		t.Fatal("TM left frozen")
	}
	// Still fully operational.
	tx := tm.NewTx()
	tm.Atomic(tx, func(tx *Tx) { _ = tx.Alloc(1) })
}

func TestFreezeWaitsForActiveTransactions(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, nil)
	tx := tm.NewTx()
	var a uint64
	tm.Atomic(tx, func(tx *Tx) { a = tx.Alloc(1) })

	// Hold an active transaction; a freeze must block until it ends.
	tx.Begin(false)
	if !attempt(func() { tx.Store(a, 1) }) {
		t.Fatal("unexpected abort")
	}
	frozen := make(chan struct{})
	go func() {
		tm.fz.freeze()
		close(frozen)
	}()
	select {
	case <-frozen:
		t.Fatal("freeze completed while a transaction was active")
	default:
	}
	if !tx.Commit() {
		t.Fatal("commit failed")
	}
	<-frozen // must complete now
	tm.fz.unfreeze()
}

func TestReconfigureWhileIdleIsImmediate(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, nil)
	for i := 0; i < 50; i++ {
		p := Params{Locks: 1 << uint(8+i%4), Shifts: uint(i % 3), Hier: 1 << uint(i%3)}
		if err := tm.Reconfigure(p); err != nil {
			t.Fatalf("Reconfigure %d: %v", i, err)
		}
		if tm.Params() != p {
			t.Fatalf("params = %+v, want %+v", tm.Params(), p)
		}
	}
}

func TestGeometryMappingQuick(t *testing.T) {
	// Properties: lock and hierarchical indices are always in range, and
	// the shift groups exactly 2^shifts consecutive words per lock.
	f := func(addr uint64, locksExp, shiftRaw, hierExp uint8) bool {
		le := int(locksExp%16) + 4 // 2^4 .. 2^19
		he := int(hierExp) % 5     // 1 .. 16
		sh := uint(shiftRaw % 8)
		if he > le {
			he = le
		}
		g := newGeometry(Params{Locks: 1 << le, Shifts: sh, Hier: 1 << he}, 1)
		li := g.lockIndex(addr)
		if li > g.lockMask {
			return false
		}
		if g.hierEnabled() {
			if hi := g.hierIndex(addr); hi > g.hierMask {
				return false
			}
			// Same lock implies same counter.
			other := addr ^ 1<<(uint(le)+sh+3) // differs above the lock bits
			if g.lockIndex(addr) == g.lockIndex(other) &&
				g.hierIndex(addr) != g.hierIndex(other) {
				return false
			}
		}
		// All addresses within one 2^shifts-aligned group share a lock.
		base := addr &^ ((1 << sh) - 1)
		for w := uint64(0); w < 1<<sh; w++ {
			if g.lockIndex(base+w) != g.lockIndex(base) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleFreePanicsInsideTx(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, nil)
	tx := tm.NewTx()
	var a uint64
	tm.Atomic(tx, func(tx *Tx) { a = tx.Alloc(2) })
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	tm.Atomic(tx, func(tx *Tx) {
		tx.Free(a, 2)
		tx.Free(a, 2)
	})
}

func TestReadOnlyFreeUpgrades(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, nil)
	tx := tm.NewTx()
	var a uint64
	tm.Atomic(tx, func(tx *Tx) { a = tx.Alloc(2) })
	runs := 0
	tm.AtomicRO(tx, func(tx *Tx) {
		//stm:allow-effect deliberate retry counter: the test asserts the upgrade re-runs the body
		runs++
		//stm:allow-write deliberate: Free in an RO body is exactly the upgrade under test
		tx.Free(a, 2)
	})
	if runs != 2 {
		t.Errorf("runs = %d, want 2 (upgrade retry)", runs)
	}
}

func TestAllocOnlyTransactionCommits(t *testing.T) {
	// A transaction that only allocates has no write set; it must commit
	// through the read-only path and keep its allocation.
	tm, sp := newTestTM(t, WriteBack, nil)
	tx := tm.NewTx()
	live := sp.LiveWords()
	var a uint64
	tm.Atomic(tx, func(tx *Tx) { a = tx.Alloc(4) })
	if a == 0 {
		t.Fatal("nil allocation")
	}
	if got := sp.LiveWords(); got != live+4 {
		t.Errorf("live = %d, want %d", got, live+4)
	}
	if tx.LastCommitTS() != 0 {
		t.Errorf("alloc-only commit took a timestamp: %d", tx.LastCommitTS())
	}
}
