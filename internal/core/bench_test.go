package core

import (
	"testing"

	"tinystm/internal/mem"
)

// Micro-benchmarks for the primitive STM operations, including the
// ablation pairs DESIGN.md calls out: write-back vs write-through,
// hierarchical fast path on vs off, and read-only vs update reads.

func benchTM(b *testing.B, d Design, hier uint64) (*TM, *Tx) {
	b.Helper()
	sp := mem.NewSpace(1 << 20)
	tm := MustNew(Config{Space: sp, Locks: 1 << 16, Design: d, Hier: hier})
	return tm, tm.NewTx()
}

func BenchmarkAtomicEmpty(b *testing.B) {
	tm, tx := benchTM(b, WriteBack, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Atomic(tx, func(tx *Tx) {})
	}
}

func BenchmarkLoadUpdateTx(b *testing.B) {
	tm, tx := benchTM(b, WriteBack, 1)
	var base uint64
	tm.Atomic(tx, func(tx *Tx) {
		base = tx.Alloc(64)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Atomic(tx, func(tx *Tx) {
			for j := uint64(0); j < 64; j++ {
				_ = tx.Load(base + j)
			}
			tx.Store(base, 1) // keep it an update transaction
		})
	}
}

func BenchmarkLoadReadOnlyTx(b *testing.B) {
	tm, tx := benchTM(b, WriteBack, 1)
	var base uint64
	tm.Atomic(tx, func(tx *Tx) {
		base = tx.Alloc(64)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.AtomicRO(tx, func(tx *Tx) {
			for j := uint64(0); j < 64; j++ {
				_ = tx.Load(base + j)
			}
		})
	}
}

func benchStores(b *testing.B, d Design) {
	tm, tx := benchTM(b, d, 1)
	var base uint64
	tm.Atomic(tx, func(tx *Tx) {
		base = tx.Alloc(64)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Atomic(tx, func(tx *Tx) {
			for j := uint64(0); j < 64; j++ {
				tx.Store(base+j, uint64(i))
			}
		})
	}
}

func BenchmarkStoreWriteBack(b *testing.B)    { benchStores(b, WriteBack) }
func BenchmarkStoreWriteThrough(b *testing.B) { benchStores(b, WriteThrough) }

func benchValidation2(b *testing.B, hier, hier2 uint64) {
	// An update transaction with a large read set, forced to validate by
	// interleaving commits from a second descriptor.
	sp := mem.NewSpace(1 << 20)
	tm := MustNew(Config{Space: sp, Locks: 1 << 16, Design: WriteBack,
		Hier: hier, Hier2: hier2})
	tx := tm.NewTx()
	other := tm.NewTx()
	var base, far uint64
	tm.Atomic(tx, func(tx *Tx) {
		base = tx.Alloc(512)
		far = tx.Alloc(1)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Bump the clock so the reader cannot take the ts==start+1
		// commit fast path.
		tm.Atomic(other, func(o *Tx) { o.Store(far, uint64(i)) })
		tm.Atomic(tx, func(tx *Tx) {
			for j := uint64(0); j < 512; j++ {
				_ = tx.Load(base + j)
			}
			tx.Store(base, uint64(i))
		})
	}
}

func BenchmarkValidationNoHier(b *testing.B)        { benchValidation2(b, 1, 1) }
func BenchmarkValidationHier16(b *testing.B)        { benchValidation2(b, 16, 1) }
func BenchmarkValidationHier64(b *testing.B)        { benchValidation2(b, 64, 1) }
func BenchmarkValidationHier256(b *testing.B)       { benchValidation2(b, 256, 1) }
func BenchmarkValidationHier256Level8(b *testing.B) { benchValidation2(b, 256, 8) }

func benchReadWriteMix(b *testing.B, d Design) {
	tm, tx := benchTM(b, d, 1)
	var base uint64
	tm.Atomic(tx, func(tx *Tx) {
		base = tx.Alloc(128)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Atomic(tx, func(tx *Tx) {
			for j := uint64(0); j < 128; j += 4 {
				v := tx.Load(base + j)
				tx.Store(base+j, v+1)
			}
		})
	}
}

func BenchmarkReadWriteMixWB(b *testing.B) { benchReadWriteMix(b, WriteBack) }
func BenchmarkReadWriteMixWT(b *testing.B) { benchReadWriteMix(b, WriteThrough) }

func BenchmarkReadAfterWriteSameStripe(b *testing.B) {
	// High shift forces all addresses onto one lock: write-back must walk
	// its per-lock chain on every read-after-write.
	sp := mem.NewSpace(1 << 20)
	tm := MustNew(Config{Space: sp, Locks: 1 << 10, Shifts: 8, Design: WriteBack})
	tx := tm.NewTx()
	var base uint64
	tm.Atomic(tx, func(tx *Tx) {
		base = tx.Alloc(16)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Atomic(tx, func(tx *Tx) {
			for j := uint64(0); j < 16; j++ {
				tx.Store(base+j, uint64(i))
			}
			for j := uint64(0); j < 16; j++ {
				_ = tx.Load(base + j)
			}
		})
	}
}

func BenchmarkAllocFree(b *testing.B) {
	tm, tx := benchTM(b, WriteBack, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Atomic(tx, func(tx *Tx) {
			a := tx.Alloc(4)
			tx.Store(a, 1)
			tx.Free(a, 4)
		})
	}
}
