package core

import (
	"sync/atomic"

	"tinystm/internal/txn"
)

// txStats holds one descriptor's counters. They are written only by the
// owning thread but read by TM.Stats from arbitrary goroutines, so all
// access is atomic; an uncontended atomic add costs roughly one locked
// instruction and the hot loops (validation) batch into locals first.
type txStats struct {
	commits          atomic.Uint64
	aborts           atomic.Uint64
	abortsByKind     [txn.NAbortKinds]atomic.Uint64
	extensions       atomic.Uint64
	locksValidated   atomic.Uint64
	locksSkipped     atomic.Uint64
	dupReadsSkipped  atomic.Uint64
	ticketsDiscarded atomic.Uint64
}

func (s *txStats) snapshotInto(out *txn.Stats) {
	out.Commits += s.commits.Load()
	out.Aborts += s.aborts.Load()
	for i := range s.abortsByKind {
		out.AbortsByKind[i] += s.abortsByKind[i].Load()
	}
	out.Extensions += s.extensions.Load()
	out.LocksValidated += s.locksValidated.Load()
	out.LocksSkipped += s.locksSkipped.Load()
	out.DupReadsSkipped += s.dupReadsSkipped.Load()
	out.TicketsDiscarded += s.ticketsDiscarded.Load()
}
