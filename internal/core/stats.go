package core

import (
	"sync/atomic"

	"tinystm/internal/txn"
)

// txStats holds one descriptor's counters. They are written only by the
// owning thread but read by TM.Stats from arbitrary goroutines, so all
// access is atomic; an uncontended atomic add costs roughly one locked
// instruction and the hot loops (validation) batch into locals first.
type txStats struct {
	commits          atomic.Uint64
	aborts           atomic.Uint64
	abortsByKind     [txn.NAbortKinds]atomic.Uint64
	extensions       atomic.Uint64
	locksValidated   atomic.Uint64
	locksSkipped     atomic.Uint64
	dupReadsSkipped  atomic.Uint64
	ticketsDiscarded atomic.Uint64
	snapLiveReads    atomic.Uint64
	snapVersionReads atomic.Uint64
	redoRecords      atomic.Uint64
}

// reset zeroes every counter; used when a released descriptor's totals
// have been folded into the TM-level retired aggregate. Field-wise Stores
// rather than struct assignment: the atomic types must not be copied.
func (s *txStats) reset() {
	s.commits.Store(0)
	s.aborts.Store(0)
	for i := range s.abortsByKind {
		s.abortsByKind[i].Store(0)
	}
	s.extensions.Store(0)
	s.locksValidated.Store(0)
	s.locksSkipped.Store(0)
	s.dupReadsSkipped.Store(0)
	s.ticketsDiscarded.Store(0)
	s.snapLiveReads.Store(0)
	s.snapVersionReads.Store(0)
	s.redoRecords.Store(0)
}

func (s *txStats) snapshotInto(out *txn.Stats) {
	out.Commits += s.commits.Load()
	out.Aborts += s.aborts.Load()
	for i := range s.abortsByKind {
		out.AbortsByKind[i] += s.abortsByKind[i].Load()
	}
	out.Extensions += s.extensions.Load()
	out.LocksValidated += s.locksValidated.Load()
	out.LocksSkipped += s.locksSkipped.Load()
	out.DupReadsSkipped += s.dupReadsSkipped.Load()
	out.TicketsDiscarded += s.ticketsDiscarded.Load()
	out.SnapshotLiveReads += s.snapLiveReads.Load()
	out.SnapshotVersionReads += s.snapVersionReads.Load()
	out.RedoRecords += s.redoRecords.Load()
}
