package core

// Snapshot execution mode: wait-free read-only transactions over the
// commit-ordered MVCC sidecar (Config.Snapshots, package mvcc).
//
// A snapshot transaction picks its start timestamp S once at begin and
// never moves it: every Load returns the value that was committed at S.
// The fast path is the live word — when the covering stripe's version is
// still <= S, the current memory value IS the value at S. Only when a
// writer has moved the stripe past S does the read fall back to the
// sidecar, which retains the superseded values together with their
// validity intervals. There is no read set, no snapshot extension and no
// commit-time validation: the snapshot is consistent by construction, so
// the O(reads) validation work of a classic read-only transaction drops
// to zero and concurrent writers can never abort it. The only abort a
// snapshot transaction can suffer is AbortSnapshotTooOld — its snapshot
// fell behind the sidecar's trim horizon (or it waited out its spin
// budget behind an in-flight writer) — and the retry restarts it on a
// fresh snapshot.
//
// Update commits pay for this: with snapshots enabled, the commit path
// captures the value each written word is about to supersede and
// publishes those pre-images into the sidecar BEFORE releasing its locks
// (see mvcc.Publish for why the ordering matters), at commit timestamp
// ts. Publication happens per update commit regardless of whether any
// snapshot is running; the per-shard version budget bounds the memory and
// the tuning runtime walks it to match the live read/write mix.

import (
	"errors"
	"runtime"

	"tinystm/internal/mem"
	"tinystm/internal/mvcc"
	"tinystm/internal/txn"
)

// errSnapshotsDisabled is returned by the snapshot knob setters when the
// TM was built without Config.Snapshots.
var errSnapshotsDisabled = errors.New("core: snapshots disabled (enable Config.Snapshots)")

// snapSpinBudget bounds how many times a snapshot read re-examines a
// stripe owned by an in-flight writer before giving up on this snapshot.
// Write-back holds stripe locks only across the commit write-back phase,
// so the window is short; write-through holds them from encounter time
// and long writers can exhaust the budget — the retry then restarts on a
// fresh snapshot past the writer.
const snapSpinBudget = 512

// SnapshotsEnabled reports whether the MVCC sidecar is attached.
func (tm *TM) SnapshotsEnabled() bool { return tm.mvcc != nil }

// VersionBudget returns the sidecar's per-shard version budget (zero when
// snapshots are disabled).
func (tm *TM) VersionBudget() int {
	if tm.mvcc == nil {
		return 0
	}
	return tm.mvcc.Budget()
}

// SetVersionBudget replaces the sidecar's per-shard version budget on the
// live TM — the snapshot subsystem's dynamic tuning knob, the analogue of
// Reconfigure for the (Locks, Shifts, Hier) triple but with no world
// freeze: trimming simply starts honoring the new bound.
func (tm *TM) SetVersionBudget(n int) error {
	if tm.mvcc == nil {
		return errSnapshotsDisabled
	}
	return tm.mvcc.SetBudget(n)
}

// SnapshotCounts returns the aggregate snapshot counters: too-old aborts,
// sidecar reads, versions published and versions trimmed. O(1) and
// lock-free like CommitAbortCounts; the tuning runtime differentiates
// them per period to walk the version budget.
func (tm *TM) SnapshotCounts() (tooOld, sidecarReads, published, trimmed uint64) {
	tooOld = tm.aggSnapTooOld.Load()
	sidecarReads = tm.aggSnapReads.Load()
	if tm.mvcc != nil {
		published, trimmed = tm.mvcc.Counts()
	}
	return tooOld, sidecarReads, published, trimmed
}

// RetainedVersions reports how many versions the sidecar currently holds
// (diagnostics, leak tests); zero when snapshots are disabled.
func (tm *TM) RetainedVersions() int {
	if tm.mvcc == nil {
		return 0
	}
	return tm.mvcc.Retained()
}

// ActiveSnapshots reports how many snapshot transactions are registered
// with the sidecar's horizon tracking (diagnostics, leak tests).
func (tm *TM) ActiveSnapshots() int {
	if tm.mvcc == nil {
		return 0
	}
	return tm.mvcc.ActiveSnapshots()
}

// AtomicSnap runs fn as a snapshot-mode read-only transaction, retrying
// on a fresh snapshot whenever the current one falls off the retained
// horizon. If fn writes, the block transparently restarts as a regular
// update transaction (like AtomicRO's upgrade). Without Config.Snapshots
// it falls back to AtomicRO.
func (tm *TM) AtomicSnap(tx *Tx, fn func(*Tx)) {
	if tm.mvcc == nil {
		tm.AtomicRO(tx, fn)
		return
	}
	if tx.tm != tm {
		panic("core: descriptor belongs to a different TM")
	}
	if tx.inTx {
		// Flat nesting: an inner block merges into the enclosing
		// transaction, whatever mode it runs in.
		fn(tx)
		return
	}
	tx.attempts = 0
	tx.upgr = false
	for {
		tx.attempts++
		tx.maybeRollOverOnBegin()
		tx.BeginSnap()
		if tx.runBody(fn) && tx.Commit() {
			return
		}
		if tx.upgr {
			// fn wrote: snapshot mode cannot serve it; rerun the whole
			// block as a regular update transaction.
			tm.atomic(tx, fn, false)
			return
		}
		// AbortSnapshotTooOld (or a cooperative kill): retry on a fresh
		// snapshot. No backoff — the fresh snapshot is taken at the
		// current clock, past whatever trimmed the old one.
	}
}

// BeginSnap starts a snapshot-mode read-only attempt: the snapshot
// timestamp is the current clock value and is registered with the
// sidecar's horizon tracking until commit/rollback. Most callers use
// TM.AtomicSnap. Without Config.Snapshots it degrades to a classic
// read-only Begin.
func (tx *Tx) BeginSnap() {
	if tx.tm.mvcc == nil {
		tx.Begin(true)
		return
	}
	if tx.inTx {
		panic("core: Begin on descriptor already in a transaction")
	}
	if tx.released {
		panic("core: Begin on released descriptor")
	}
	tx.tm.fz.enter()
	tx.resetHier()
	tx.geo = tx.tm.geo.Load()
	tx.design = tx.tm.design
	tx.verShift = 1
	if tx.design == WriteThrough {
		tx.verShift = 1 + incBits
	}
	tx.yieldEvery = tx.tm.yieldN
	if tx.yieldEvery > 0 {
		tx.opBudget = tx.yieldEvery
	} else {
		tx.opBudget = opBudgetIdle
	}
	// The contention-management policy is not consulted (snapshot
	// attempts own no locks and conflict with nobody), but the attempt
	// epoch is opened so the shared rollback/commit bookkeeping stays
	// uniform.
	tx.cmst.BeginAttempt()
	tx.inTx = true
	tx.ro = true
	tx.snap = true
	tx.wset = tx.wset[:0]
	tx.owned = tx.owned[:0]
	tx.undo = tx.undo[:0]
	tx.allocs = tx.allocs[:0]
	tx.frees = tx.frees[:0]
	tx.redo = tx.redo[:0]
	tx.redoTicket = nil
	// Register with the sidecar BEFORE taking the snapshot timestamp.
	// Publishers skip version retention while no snapshot is registered,
	// and every clock strategy makes a commit's timestamp visible before
	// its publication-skip check: a clock value read AFTER our
	// registration is therefore >= the timestamp of every commit that
	// skipped before seeing us, so the snapshot can never need a version
	// that was legitimately skipped.
	tx.tm.mvcc.Enter(tx.slot, tx.tm.clk.now())
	tx.start = tx.tm.clk.now()
	tx.end = tx.start
	// startEpoch pins retired memory blocks (package reclaim) exactly as
	// for update transactions: a block freed at ts > start must survive
	// until this snapshot finishes. The sidecar registration (at a clock
	// value <= start, conservative for trimming) additionally pins
	// retained versions where the budget allows.
	tx.startEpoch.Store(tx.start + 1)
}

// InSnapshot reports whether the current attempt runs in snapshot mode.
func (tx *Tx) InSnapshot() bool { return tx.snap }

// loadSnap serves one snapshot-mode read: live word when the stripe has
// not moved past the snapshot, sidecar version otherwise.
func (tx *Tx) loadSnap(addr uint64) uint64 {
	a := mem.Addr(addr)
	g := tx.geo
	li := g.lockIndex(addr)
	snap := tx.start
	for spin := 0; ; spin++ {
		lw := g.loadLock(li)
		if !isOwned(lw) {
			if lw>>tx.verShift <= snap {
				// The live value became current at or before the snapshot
				// and has not been superseded: it IS the value at snap.
				// The re-read detects a racing acquisition/release between
				// the lock read and the value read.
				val := tx.tm.space.Load(a)
				if g.loadLock(li) == lw {
					tx.snapLiveReads++
					return val
				}
				continue
			}
			// The stripe moved past the snapshot while unlocked:
			// publishers deliver pre-images before releasing their locks,
			// so everything there is to know is already in the sidecar —
			// a miss here is persistent and waiting cannot help.
			val, res := tx.tm.mvcc.Read(li, addr, snap)
			switch res {
			case mvcc.ReadHit:
				tx.snapVersionReads++
				return val
			case mvcc.ReadLiveValid:
				// Only a NEIGHBOR under the stripe moved past the
				// snapshot; this address's live value provably predates
				// it. Serve it, re-validating against the original lock
				// word (an intervening commit restarts the loop).
				v := tx.tm.space.Load(a)
				if g.loadLock(li) == lw {
					tx.snapLiveReads++
					return v
				}
				continue
			default:
				// ReadTooOld, or a miss: the value at snap predates the
				// stripe's retained history. Restart on a fresh snapshot.
				tx.abort(txn.AbortSnapshotTooOld)
			}
		}
		// An in-flight writer owns the stripe. If it writes this very
		// address, its pre-image appears BEFORE it releases (it is past
		// the point of no return once it publishes), so poll the sidecar
		// occasionally; otherwise just wait for the release — write-back
		// commits hold stripe locks only across the write-back phase.
		if spin&15 == 0 {
			if val, res := tx.tm.mvcc.Read(li, addr, snap); res == mvcc.ReadHit {
				tx.snapVersionReads++
				return val
			} else if res == mvcc.ReadTooOld {
				tx.abort(txn.AbortSnapshotTooOld)
			}
		}
		if spin >= snapSpinBudget {
			// A write-through transaction can hold its encounter-time
			// locks for its whole execution; give up on this snapshot
			// rather than wait unboundedly.
			tx.abort(txn.AbortSnapshotTooOld)
		}
		if spin&15 == 15 {
			// Let the lock owner run; essential on few-core hosts.
			runtime.Gosched()
		}
	}
}

// publishVersions delivers the pre-images this commit supersedes to the
// sidecar at commit timestamp ts. Called while the write locks are still
// held (see mvcc.Publish for the ordering contract). Words this very
// transaction allocated carry no pre-image (the prior bits are allocator
// garbage and no snapshot can reach them before this commit links them);
// they are published as birth records so the sidecar learns their exact
// validity start.
func (tx *Tx) publishVersions(ts uint64) {
	pub := tx.pub[:0]
	// EVERY word of every block this commit allocated is born at ts —
	// including words the transaction never stored to (Alloc zeroes them;
	// a grown hash directory's empty bucket heads are read by scans but
	// never written). Without the birth, alias pressure on such a word's
	// stripe would leave snapshot readers with an unresolvable miss.
	for _, a := range tx.allocs {
		for w := 0; w < a.words; w++ {
			addr := uint64(a.addr) + uint64(w)
			pub = append(pub, mvcc.Version{Stripe: tx.geo.lockIndex(addr), Addr: addr, Birth: true})
		}
	}
	if tx.design == WriteBack {
		for i := range tx.wset {
			e := &tx.wset[i]
			if tx.isFreshAlloc(uint64(e.addr)) {
				continue
			}
			pub = append(pub, mvcc.Version{
				Stripe: e.lockIdx,
				Addr:   uint64(e.addr),
				Val:    e.old,
				From:   versionWB(e.prevLock),
			})
		}
	} else {
		// Write-through: the undo log holds the superseded values — the
		// FIRST record per address (later ones captured this transaction's
		// own intermediate writes). The dedupe scratch map is reused
		// across commits (this runs while every write lock is still
		// held; allocating here would stretch the critical section), and
		// the stripe's pre-acquisition version comes from a linear scan
		// of the owned-lock records — transactions hold few stripes.
		if tx.pubSeen == nil {
			tx.pubSeen = make(map[mem.Addr]struct{}, 16)
		} else {
			clear(tx.pubSeen)
		}
		for i := range tx.undo {
			u := &tx.undo[i]
			if _, dup := tx.pubSeen[u.addr]; dup {
				continue
			}
			tx.pubSeen[u.addr] = struct{}{}
			if tx.isFreshAlloc(uint64(u.addr)) {
				continue
			}
			li := tx.geo.lockIndex(uint64(u.addr))
			var from uint64
			for _, rec := range tx.owned {
				if rec.lockIdx == li {
					from = versionWT(rec.prevLock)
					break
				}
			}
			pub = append(pub, mvcc.Version{
				Stripe: li,
				Addr:   uint64(u.addr),
				Val:    u.old,
				From:   from,
			})
		}
	}
	tx.pub = pub
	tx.tm.mvcc.Publish(ts, pub)
}

// isFreshAlloc reports whether addr lies inside a block this transaction
// allocated.
func (tx *Tx) isFreshAlloc(addr uint64) bool {
	for _, a := range tx.allocs {
		if addr >= uint64(a.addr) && addr < uint64(a.addr)+uint64(a.words) {
			return true
		}
	}
	return false
}
