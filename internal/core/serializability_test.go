package core

import (
	"sort"
	"sync"
	"testing"

	"tinystm/internal/rng"
)

// Serializability checker: concurrent update transactions log the values
// they read and wrote plus their commit timestamp; afterwards the
// committed history is replayed in timestamp order against a sequential
// model. Every logged read must equal the model state at the
// transaction's serialization point — the defining property of the
// time-based algorithm (update transactions serialize exactly in commit-
// timestamp order).

type loggedTx struct {
	ts     uint64
	reads  [](struct{ addr, val uint64 })
	writes [](struct{ addr, val uint64 })
}

func runSerializabilityCheck(t *testing.T, tm *TM, workers, txPerWorker, words int) {
	t.Helper()
	setup := tm.NewTx()
	var base uint64
	tm.Atomic(setup, func(tx *Tx) {
		base = tx.Alloc(words)
	})

	var mu sync.Mutex
	var history []loggedTx

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := rng.NewThread(1234, id)
			tx := tm.NewTx()
			for i := 0; i < txPerWorker; i++ {
				var rec loggedTx
				// All reads strictly before all writes so logged reads
				// are never served from the own write set.
				rAddrs := []uint64{
					base + uint64(r.Intn(words)),
					base + uint64(r.Intn(words)),
					base + uint64(r.Intn(words)),
				}
				wAddrs := []uint64{
					base + uint64(r.Intn(words)),
					base + uint64(r.Intn(words)),
				}
				val := uint64(id)<<32 | uint64(i+1)
				tm.Atomic(tx, func(tx *Tx) {
					rec = loggedTx{}
					for _, a := range rAddrs {
						rec.reads = append(rec.reads,
							struct{ addr, val uint64 }{a, tx.Load(a)})
					}
					for k, a := range wAddrs {
						v := val + uint64(k)<<16
						tx.Store(a, v)
						rec.writes = append(rec.writes,
							struct{ addr, val uint64 }{a, v})
					}
				})
				rec.ts = tx.LastCommitTS()
				if rec.ts == 0 {
					t.Error("update commit reported zero timestamp")
					return
				}
				mu.Lock()
				history = append(history, rec)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	// Timestamps must be unique (each update commit increments the
	// clock exactly once) and the replay must match every read.
	sort.Slice(history, func(i, j int) bool { return history[i].ts < history[j].ts })
	state := make(map[uint64]uint64, words)
	for i, rec := range history {
		if i > 0 && rec.ts == history[i-1].ts {
			t.Fatalf("duplicate commit timestamp %d", rec.ts)
		}
		for _, rd := range rec.reads {
			// Later writes in the same transaction may target the same
			// address; reads were all performed first, so they must see
			// the pre-transaction state.
			if got := state[rd.addr]; got != rd.val {
				t.Fatalf("tx@%d read addr %d = %d, but serial replay has %d",
					rec.ts, rd.addr, rd.val, got)
			}
		}
		for _, wr := range rec.writes {
			state[wr.addr] = wr.val
		}
	}
	// The final memory must equal the replayed state.
	tm.Atomic(setup, func(tx *Tx) {
		for a, v := range state {
			if got := tx.Load(a); got != v {
				t.Fatalf("final memory addr %d = %d, replay has %d", a, got, v)
			}
		}
	})
}

func TestSerializabilityWriteBack(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, nil)
	runSerializabilityCheck(t, tm, 4, 300, 8)
}

func TestSerializabilityWriteThrough(t *testing.T) {
	tm, _ := newTestTM(t, WriteThrough, nil)
	runSerializabilityCheck(t, tm, 4, 300, 8)
}

func TestSerializabilityTinyLockArray(t *testing.T) {
	// Heavy false sharing must not break the serialization order.
	tm, _ := newTestTM(t, WriteBack, func(c *Config) { c.Locks = 4 })
	runSerializabilityCheck(t, tm, 4, 200, 8)
}

func TestSerializabilityWithHier(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, func(c *Config) { c.Hier = 16 })
	runSerializabilityCheck(t, tm, 4, 200, 8)
}

func TestSerializabilityHighShift(t *testing.T) {
	tm, _ := newTestTM(t, WriteThrough, func(c *Config) { c.Shifts = 4 })
	runSerializabilityCheck(t, tm, 4, 200, 8)
}
