package core

import (
	"sort"
	"sync"
	"testing"

	"tinystm/internal/rng"
)

// Serializability checker: concurrent update transactions log the values
// they read and wrote plus their commit timestamp; afterwards the
// committed history is replayed in timestamp order against a sequential
// model. Every logged read must equal the model state at the
// transaction's serialization point — the defining property of the
// time-based algorithm (update transactions serialize exactly in commit-
// timestamp order).

type loggedTx struct {
	ts     uint64
	reads  [](struct{ addr, val uint64 })
	writes [](struct{ addr, val uint64 })
}

func runSerializabilityCheck(t *testing.T, tm *TM, workers, txPerWorker, words int) {
	t.Helper()
	setup := tm.NewTx()
	var base uint64
	tm.Atomic(setup, func(tx *Tx) {
		base = tx.Alloc(words)
	})

	var mu sync.Mutex
	var history []loggedTx

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := rng.NewThread(1234, id)
			tx := tm.NewTx()
			for i := 0; i < txPerWorker; i++ {
				var rec loggedTx
				// All reads strictly before all writes so logged reads
				// are never served from the own write set.
				rAddrs := []uint64{
					base + uint64(r.Intn(words)),
					base + uint64(r.Intn(words)),
					base + uint64(r.Intn(words)),
				}
				wAddrs := []uint64{
					base + uint64(r.Intn(words)),
					base + uint64(r.Intn(words)),
				}
				val := uint64(id)<<32 | uint64(i+1)
				tm.Atomic(tx, func(tx *Tx) {
					rec = loggedTx{}
					for _, a := range rAddrs {
						rec.reads = append(rec.reads,
							struct{ addr, val uint64 }{a, tx.Load(a)})
					}
					for k, a := range wAddrs {
						v := val + uint64(k)<<16
						tx.Store(a, v)
						rec.writes = append(rec.writes,
							struct{ addr, val uint64 }{a, v})
					}
				})
				rec.ts = tx.LastCommitTS()
				if rec.ts == 0 {
					t.Error("update commit reported zero timestamp")
					return
				}
				mu.Lock()
				history = append(history, rec)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	// FetchInc and TicketBatch issue globally unique timestamps; Lazy
	// (GV5) lets concurrent committers share one, so duplicates are only
	// a bug under the former two. The replay walks timestamp order and,
	// within an equal-timestamp group, searches for a serial order that
	// matches every logged read (for a correct STM one always exists:
	// same-timestamp conflicts under Lazy are acyclic because both
	// transactions validated before either released).
	sort.Slice(history, func(i, j int) bool { return history[i].ts < history[j].ts })
	uniqueTS := tm.Clock() != Lazy
	state := make(map[uint64]uint64, words)
	for i := 0; i < len(history); {
		j := i
		for j < len(history) && history[j].ts == history[i].ts {
			j++
		}
		group := history[i:j]
		if len(group) > 1 && uniqueTS {
			t.Fatalf("duplicate commit timestamp %d under %v clock", history[i].ts, tm.Clock())
		}
		if !replayGroup(group, make([]bool, len(group)), state) {
			t.Fatalf("no serial order explains the %d transactions at timestamp %d",
				len(group), history[i].ts)
		}
		i = j
	}
	// The final memory must equal the replayed state.
	tm.Atomic(setup, func(tx *Tx) {
		for a, v := range state {
			if got := tx.Load(a); got != v {
				//stm:allow-effect test-only: a failed assertion ends the test, and the throwaway TM dies with it
				t.Fatalf("final memory addr %d = %d, replay has %d", a, got, v)
			}
		}
	})
}

// replayGroup searches (with backtracking; groups are tiny) for an order
// of the equal-timestamp transactions under which every logged read —
// performed strictly before the transaction's writes — matches the serial
// model, applying writes to state as it commits to a prefix. Reads within
// a transaction see the pre-transaction state, so a candidate fits when
// all its reads match the current state.
func replayGroup(group []loggedTx, used []bool, state map[uint64]uint64) bool {
	remaining := false
	for _, u := range used {
		if !u {
			remaining = true
			break
		}
	}
	if !remaining {
		return true
	}
next:
	for k := range group {
		if used[k] {
			continue
		}
		for _, rd := range group[k].reads {
			if state[rd.addr] != rd.val {
				continue next
			}
		}
		// Tentatively serialize group[k] here.
		type undo struct{ addr, old uint64 }
		var undos []undo
		for _, wr := range group[k].writes {
			undos = append(undos, undo{wr.addr, state[wr.addr]})
			state[wr.addr] = wr.val
		}
		used[k] = true
		if replayGroup(group, used, state) {
			return true
		}
		used[k] = false
		for i := len(undos) - 1; i >= 0; i-- {
			state[undos[i].addr] = undos[i].old
		}
	}
	return false
}

func TestSerializabilityWriteBack(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, nil)
	runSerializabilityCheck(t, tm, 4, 300, 8)
}

func TestSerializabilityWriteThrough(t *testing.T) {
	tm, _ := newTestTM(t, WriteThrough, nil)
	runSerializabilityCheck(t, tm, 4, 300, 8)
}

func TestSerializabilityTinyLockArray(t *testing.T) {
	// Heavy false sharing must not break the serialization order.
	tm, _ := newTestTM(t, WriteBack, func(c *Config) { c.Locks = 4 })
	runSerializabilityCheck(t, tm, 4, 200, 8)
}

func TestSerializabilityWithHier(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, func(c *Config) { c.Hier = 16 })
	runSerializabilityCheck(t, tm, 4, 200, 8)
}

func TestSerializabilityHighShift(t *testing.T) {
	tm, _ := newTestTM(t, WriteThrough, func(c *Config) { c.Shifts = 4 })
	runSerializabilityCheck(t, tm, 4, 200, 8)
}

func TestSerializabilityClockStrategies(t *testing.T) {
	// The defining property must survive every commit-clock strategy.
	// YieldEvery forces fine-grained interleaving so commits genuinely
	// race (Lazy then actually produces shared timestamps and TicketBatch
	// actually discards stale reservations on few-core hosts).
	designsAndClocks(t, func(t *testing.T, d Design, cs ClockStrategy) {
		tm, _ := newTestTMClock(t, d, cs, func(c *Config) { c.YieldEvery = 4 })
		runSerializabilityCheck(t, tm, 4, 200, 8)
	})
}

func TestSerializabilityTicketSmallBatch(t *testing.T) {
	// ClockBatch 2 maximizes refill traffic; a tiny lock array maximizes
	// conflicts hitting the staleness check.
	tm, _ := newTestTM(t, WriteBack, func(c *Config) {
		c.Clock = TicketBatch
		c.ClockBatch = 2
		c.Locks = 16
		c.YieldEvery = 4
	})
	runSerializabilityCheck(t, tm, 4, 200, 8)
}

func TestReplayGroupSolver(t *testing.T) {
	// The equal-timestamp solver itself: a group whose only consistent
	// order is (reader-of-old-x, writer-of-x) — i.e. the greedy-looking
	// first candidate is wrong — and an inconsistent group.
	rw := func(reads, writes [](struct{ addr, val uint64 })) loggedTx {
		return loggedTx{ts: 7, reads: reads, writes: writes}
	}
	pair := func(a, v uint64) struct{ addr, val uint64 } {
		return struct{ addr, val uint64 }{a, v}
	}
	st := map[uint64]uint64{1: 10, 2: 20}
	writer := rw(nil, [](struct{ addr, val uint64 }){pair(1, 11)})
	reader := rw([](struct{ addr, val uint64 }){pair(1, 10)},
		[](struct{ addr, val uint64 }){pair(2, 21)})
	group := []loggedTx{writer, reader} // listed writer-first on purpose
	if !replayGroup(group, make([]bool, 2), st) {
		t.Fatal("solver failed to find the reader-then-writer order")
	}
	if st[1] != 11 || st[2] != 21 {
		t.Fatalf("state after group = %v, want writes of both applied", st)
	}

	st = map[uint64]uint64{1: 10}
	bad := []loggedTx{
		rw([](struct{ addr, val uint64 }){pair(1, 99)}, nil), // read value never written
	}
	if replayGroup(bad, make([]bool, 1), st) {
		t.Fatal("solver accepted an impossible read")
	}
}
