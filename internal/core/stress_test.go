package core

import (
	"sync"
	"testing"

	"tinystm/internal/rng"
)

// runBankStress moves money between accounts from several goroutines and
// checks the conservation invariant. Shared helper for stress-style tests.
func runBankStress(t *testing.T, tm *TM, workers, iters int) {
	t.Helper()
	const accounts = 64
	const initial = 1000
	setup := tm.NewTx()
	var base uint64
	tm.Atomic(setup, func(tx *Tx) {
		base = tx.Alloc(accounts)
		for i := uint64(0); i < accounts; i++ {
			tx.Store(base+i, initial)
		}
	})

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := rng.NewThread(42, id)
			tx := tm.NewTx()
			for i := 0; i < iters; i++ {
				from := uint64(r.Intn(accounts))
				to := uint64(r.Intn(accounts))
				amt := uint64(r.Intn(10))
				tm.Atomic(tx, func(tx *Tx) {
					f := tx.Load(base + from)
					if f < amt {
						return
					}
					tx.Store(base+from, f-amt)
					tx.Store(base+to, tx.Load(base+to)+amt)
				})
				if i%16 == 0 {
					// Interleave read-only audits.
					tm.AtomicRO(tx, func(tx *Tx) {
						var sum uint64
						for j := uint64(0); j < accounts; j++ {
							sum += tx.Load(base + j)
						}
						if sum != accounts*initial {
							t.Errorf("torn audit: sum=%d want %d", sum, accounts*initial)
						}
					})
				}
			}
		}(w)
	}
	wg.Wait()

	tm.Atomic(setup, func(tx *Tx) {
		var sum uint64
		for j := uint64(0); j < accounts; j++ {
			sum += tx.Load(base + j)
		}
		if sum != accounts*initial {
			t.Errorf("final sum = %d, want %d", sum, accounts*initial)
		}
	})
}

func TestBankInvariantWriteBack(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, nil)
	runBankStress(t, tm, 4, 500)
}

func TestBankInvariantWriteThrough(t *testing.T) {
	tm, _ := newTestTM(t, WriteThrough, nil)
	runBankStress(t, tm, 4, 500)
}

func TestBankInvariantTinyLockArray(t *testing.T) {
	// 4 locks: extreme false sharing; correctness must be unaffected.
	bothDesigns(t, func(t *testing.T, d Design) {
		tm, _ := newTestTM(t, d, func(c *Config) { c.Locks = 4 })
		runBankStress(t, tm, 4, 300)
	})
}

func TestBankInvariantHighShift(t *testing.T) {
	bothDesigns(t, func(t *testing.T, d Design) {
		tm, _ := newTestTM(t, d, func(c *Config) { c.Shifts = 6 })
		runBankStress(t, tm, 4, 300)
	})
}

func TestBankInvariantWithBackoff(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, func(c *Config) { c.BackoffOnAbort = true })
	runBankStress(t, tm, 4, 300)
}

func TestConcurrentAllocFree(t *testing.T) {
	bothDesigns(t, func(t *testing.T, d Design) {
		tm, sp := newTestTM(t, d, nil)
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				tx := tm.NewTx()
				var mine []uint64
				for i := 0; i < 200; i++ {
					// Record the committed address only after Atomic
					// returns: an aborted attempt rolls its Alloc back,
					// and appending inside the body would keep the dead
					// address and later Free an uncommitted block.
					var a uint64
					tm.Atomic(tx, func(tx *Tx) {
						a = tx.Alloc(3)
						tx.Store(a, uint64(id))
						tx.Store(a+1, uint64(i))
						tx.Store(a+2, uint64(id*i))
					})
					mine = append(mine, a)
					if len(mine) > 8 {
						victim := mine[0]
						mine = mine[1:]
						tm.Atomic(tx, func(tx *Tx) { tx.Free(victim, 3) })
					}
				}
			}(w)
		}
		wg.Wait()
		if sp.LiveWords() == 0 {
			t.Error("expected some live words")
		}
	})
}
