package core

import (
	"testing"

	"tinystm/internal/mem"
	"tinystm/internal/txn"
)

func TestHierFastPathSkipsValidation(t *testing.T) {
	// With hierarchical locking, an update transaction whose buckets saw
	// no foreign writes must skip per-entry validation entirely.
	tm, _ := newTestTM(t, WriteBack, func(c *Config) { c.Hier = 4 })
	t1, t2 := tm.NewTx(), tm.NewTx()
	var a uint64
	tm.Atomic(t1, func(tx *Tx) {
		a = tx.Alloc(32)
		for i := uint64(0); i < 32; i++ {
			tx.Store(a+i, i)
		}
	})

	// Force a validating commit: bump the clock with an unrelated commit
	// *before* t1 starts so ts != start+1, while touching an address far
	// away (different bucket is not guaranteed, so commit it first —
	// counters recorded at first access already include it).
	var far uint64
	tm.Atomic(t2, func(tx *Tx) { far = tx.Alloc(1); tx.Store(far, 1) })

	before := t1.TxStats()
	t1.Begin(false)
	if !attempt(func() {
		for i := uint64(0); i < 32; i++ {
			_ = t1.Load(a + i)
		}
		t1.Store(a, 100)
	}) {
		t.Fatal("unexpected abort")
	}
	// Another commit between begin and commit forces validation.
	tm.Atomic(t2, func(tx *Tx) { tx.Store(far, 2) })
	if !t1.Commit() {
		t.Fatal("commit failed; far address should be in a different stripe history")
	}
	d := t1.TxStats().Sub(before)
	if d.LocksSkipped == 0 {
		t.Errorf("expected skipped validation entries, got skipped=%d checked=%d",
			d.LocksSkipped, d.LocksValidated)
	}
}

func TestHierFallbackStillValidatesCorrectly(t *testing.T) {
	// When a foreign transaction writes into a bucket we read, the fast
	// path must not mask the conflict: validation must fail.
	tm, _ := newTestTM(t, WriteBack, func(c *Config) { c.Hier = 4 })
	t1, t2 := tm.NewTx(), tm.NewTx()
	var a, b uint64
	tm.Atomic(t1, func(tx *Tx) {
		a, b = tx.Alloc(1), tx.Alloc(1)
		tx.Store(a, 10)
	})

	t1.Begin(false)
	if !attempt(func() {
		_ = t1.Load(a)
		t1.Store(b, 1)
	}) {
		t.Fatal("unexpected abort")
	}
	tm.Atomic(t2, func(tx *Tx) { tx.Store(a, 11) })
	if t1.Commit() {
		t.Fatal("commit must fail: bucket counter changed and entry is stale")
	}
	if got := t1.TxStats().AbortsByKind[txn.AbortValidate]; got != 1 {
		t.Errorf("validate aborts = %d, want 1", got)
	}
}

func TestHierOwnWriteCounterRule(t *testing.T) {
	// A transaction that both reads and writes in the same bucket must
	// still use the fast path: counter == snapshot+1 with the write-mask
	// bit set.
	tm, _ := newTestTM(t, WriteBack, func(c *Config) { c.Hier = 4 })
	t1, t2 := tm.NewTx(), tm.NewTx()
	var a uint64
	tm.Atomic(t1, func(tx *Tx) {
		a = tx.Alloc(16)
		for i := uint64(0); i < 16; i++ {
			tx.Store(a+i, i)
		}
	})
	var far uint64
	tm.Atomic(t2, func(tx *Tx) { far = tx.Alloc(1) })

	before := t1.TxStats()
	t1.Begin(false)
	if !attempt(func() {
		for i := uint64(0); i < 16; i++ {
			_ = t1.Load(a + i)
		}
		t1.Store(a+1, 99) // same bucket as the reads (same stripe region)
	}) {
		t.Fatal("unexpected abort")
	}
	tm.Atomic(t2, func(tx *Tx) { tx.Store(far, 1) }) // force validation
	if !t1.Commit() {
		t.Fatal("commit failed")
	}
	d := t1.TxStats().Sub(before)
	if d.LocksSkipped == 0 {
		t.Errorf("own-write bucket should still fast-path: skipped=%d checked=%d",
			d.LocksSkipped, d.LocksValidated)
	}
}

func TestHierCounterPerAcquisition(t *testing.T) {
	// Counters are bumped once per lock acquisition (see the deviation
	// note in hier.go): repeated stores under one lock bump once; stores
	// under two locks in the same bucket bump twice.
	tm, _ := newTestTM(t, WriteBack, func(c *Config) {
		c.Locks = 1 << 8
		c.Shifts = 2 // 4 consecutive words share a lock
		c.Hier = 4
	})
	tx := tm.NewTx()
	var a uint64
	tm.Atomic(tx, func(tx *Tx) { a = tx.Alloc(16) })
	g := tm.geo.Load()

	// Same lock (addresses within one 2^2-word stripe): one increment.
	b := g.hierIndex(a)
	before := g.hier[b].v.Load()
	tm.Atomic(tx, func(tx *Tx) {
		tx.Store(a, 1)
		tx.Store(a+1, 2)
		tx.Store(a+2, 3)
	})
	if got := g.hier[b].v.Load() - before; got != 1 {
		t.Errorf("same-lock stores bumped counter %d times, want 1", got)
	}

	// Two different locks in the same bucket: find a second stripe with
	// the same hier index (stripe base + lockCount*stripeWidth wraps to
	// the same lock only after the full array; easier: a+4 has the next
	// lock; same bucket iff hierIndex matches).
	if g.hierIndex(a) == g.hierIndex(a+4) && g.lockIndex(a) != g.lockIndex(a+4) {
		before = g.hier[b].v.Load()
		tm.Atomic(tx, func(tx *Tx) {
			tx.Store(a, 9)
			tx.Store(a+4, 9)
		})
		if got := g.hier[b].v.Load() - before; got != 2 {
			t.Errorf("two-lock stores bumped counter %d times, want 2", got)
		}
	}
}

func TestHierLateAcquisitionInSnapshottedBucketIsDetected(t *testing.T) {
	// The counterexample to the paper's first-write-only increment rule
	// (see hier.go): writer W increments the bucket counter before
	// reader R snapshots it, then acquires a *second* lock in the same
	// bucket after R has read that address. R's validation must not take
	// the fast path — with per-acquisition counting, W's late
	// acquisition is visible and R aborts.
	tm, _ := newTestTM(t, WriteBack, func(c *Config) {
		c.Locks = 1 << 8
		c.Shifts = 0
		c.Hier = 4
	})
	w, r := tm.NewTx(), tm.NewTx()
	var a1, a2, other uint64
	setup := tm.NewTx()
	tm.Atomic(setup, func(tx *Tx) {
		base := tx.Alloc(16)
		a1, a2 = base, base+4 // same bucket (4 divides both), different locks
		other = base + 9
		tx.Store(a2, 10)
	})
	g := tm.geo.Load()
	if g.hierIndex(a1) != g.hierIndex(a2) || g.lockIndex(a1) == g.lockIndex(a2) {
		t.Skip("geometry did not produce two locks in one bucket")
	}

	// W: first write to the bucket (increments counter), holds the lock.
	w.Begin(false)
	if !attempt(func() { w.Store(a1, 1) }) {
		t.Fatal("unexpected abort")
	}
	// R: snapshots the bucket counter *after* W's increment by reading
	// a2, and writes elsewhere so commit validates.
	r.Begin(false)
	if !attempt(func() {
		_ = r.Load(a2)
		r.Store(other, 1)
	}) {
		t.Fatal("unexpected abort")
	}
	// W: second acquisition in the same bucket — the one the paper's
	// write-mask rule would hide — then commit, making R's read stale.
	if !attempt(func() { w.Store(a2, 11) }) {
		t.Fatal("W's second store aborted")
	}
	if !w.Commit() {
		t.Fatal("W commit failed")
	}
	if r.Commit() {
		t.Fatal("R committed with a stale read: hierarchical fast path unsound")
	}
}

func TestHier2FastPathAndCorrectness(t *testing.T) {
	// Two-level hierarchy: clean coarse counters must skip groups, and
	// the bank invariant must hold under contention.
	tm, _ := newTestTM(t, WriteBack, func(c *Config) {
		c.Hier = 64
		c.Hier2 = 8
	})
	runBankStress(t, tm, 4, 300)
	s := tm.Stats()
	if s.Commits == 0 {
		t.Fatal("no commits")
	}
}

func TestHier2SkipsViaCoarseCounter(t *testing.T) {
	// A validating commit whose coarse group saw no foreign acquisitions
	// must report skipped entries.
	tm, _ := newTestTM(t, WriteBack, func(c *Config) {
		c.Hier = 64
		c.Hier2 = 4
	})
	t1, t2 := tm.NewTx(), tm.NewTx()
	var a, far uint64
	tm.Atomic(t1, func(tx *Tx) {
		a = tx.Alloc(32)
		for i := uint64(0); i < 32; i++ {
			tx.Store(a+i, i)
		}
	})
	tm.Atomic(t2, func(tx *Tx) { far = tx.Alloc(1); tx.Store(far, 1) })

	before := t1.TxStats()
	t1.Begin(false)
	if !attempt(func() {
		for i := uint64(0); i < 32; i++ {
			_ = t1.Load(a + i)
		}
		t1.Store(a, 100)
	}) {
		t.Fatal("unexpected abort")
	}
	tm.Atomic(t2, func(tx *Tx) { tx.Store(far, 2) }) // force validation
	if !t1.Commit() {
		t.Fatal("commit failed")
	}
	d := t1.TxStats().Sub(before)
	if d.LocksSkipped == 0 {
		t.Errorf("two-level fast path never skipped: checked=%d", d.LocksValidated)
	}
}

func TestHier2SerializabilityAndReconfigure(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, func(c *Config) {
		c.Hier = 32
		c.Hier2 = 4
	})
	runSerializabilityCheck(t, tm, 4, 200, 8)
	// Reconfigure shrinking h below Hier2 must clamp, not fail.
	if err := tm.Reconfigure(Params{Locks: 1 << 10, Shifts: 0, Hier: 2}); err != nil {
		t.Fatalf("Reconfigure with h < Hier2: %v", err)
	}
	runSerializabilityCheck(t, tm, 2, 100, 8)
}

func TestHier2ConfigValidation(t *testing.T) {
	for _, c := range []struct {
		hier, hier2 uint64
		ok          bool
	}{
		{16, 4, true},
		{16, 16, true},
		{16, 1, true},
		{1, 1, true},
		{1, 4, false},   // second level requires a first level
		{16, 32, false}, // coarser than fine level
		{16, 3, false},  // not a power of two
	} {
		sp := mem.NewSpace(64)
		_, err := New(Config{Space: sp, Locks: 1 << 10, Hier: c.hier, Hier2: c.hier2})
		if (err == nil) != c.ok {
			t.Errorf("Hier=%d Hier2=%d: err=%v, want ok=%v", c.hier, c.hier2, err, c.ok)
		}
	}
}

func TestHierConsistencyLockImpliesCounter(t *testing.T) {
	// Property from Section 3.2: two addresses mapping to the same lock
	// must map to the same counter, across geometries.
	for _, p := range []Params{
		{Locks: 1 << 4, Shifts: 0, Hier: 4},
		{Locks: 1 << 8, Shifts: 2, Hier: 16},
		{Locks: 1 << 10, Shifts: 5, Hier: 64},
	} {
		g := newGeometry(p, 1)
		for addr := uint64(0); addr < 1<<12; addr++ {
			other := addr + (p.Locks << p.Shifts) // same lock by construction
			if g.lockIndex(addr) != g.lockIndex(other) {
				t.Fatalf("construction broken for %+v", p)
			}
			if g.hierIndex(addr) != g.hierIndex(other) {
				t.Fatalf("same lock, different counter: params %+v addr %d", p, addr)
			}
		}
	}
}

func TestHierDisabledUsesSinglePartition(t *testing.T) {
	tm, _ := newTestTM(t, WriteBack, nil) // Hier defaults to 1
	tx := tm.NewTx()
	var a uint64
	tm.Atomic(tx, func(tx *Tx) { a = tx.Alloc(4) })
	tm.Atomic(tx, func(tx *Tx) {
		_ = tx.Load(a)
		_ = tx.Load(a + 3)
		if tx.nparts != 1 {
			t.Errorf("nparts = %d, want 1 with hier disabled", tx.nparts)
		}
		tx.Store(a, 1)
	})
}

func TestHierCorrectnessUnderContention(t *testing.T) {
	// Bank invariant with hierarchical locking enabled and a tiny lock
	// array (to maximize false sharing): total must stay constant.
	for _, h := range []uint64{4, 16, 64} {
		tm, _ := newTestTM(t, WriteBack, func(c *Config) {
			c.Locks = 1 << 6
			c.Hier = h
		})
		runBankStress(t, tm, 4, 200)
	}
}
