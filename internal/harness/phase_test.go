package harness

import (
	"sync"
	"sync/atomic"
	"testing"

	"tinystm/internal/core"
	"tinystm/internal/mem"
	"tinystm/internal/rng"
)

// fakeTx satisfies txn.Tx without an STM; phase dispatch is pure plumbing.
type fakeTx struct{}

func (fakeTx) Load(uint64) uint64   { return 0 }
func (fakeTx) Store(uint64, uint64) {}
func (fakeTx) Alloc(int) uint64     { return 0 }
func (fakeTx) Free(uint64, int)     {}

func TestPhasedOpDispatchesActivePhase(t *testing.T) {
	var hits [3]int
	ops := make([]OpFunc[fakeTx], 3)
	for i := range ops {
		i := i
		ops[i] = func(*Worker, fakeTx) { hits[i]++ }
	}
	p := NewPhasedOp(ops...)
	op := p.Op()
	w := &Worker{}
	op(w, fakeTx{})
	p.SetPhase(2)
	op(w, fakeTx{})
	op(w, fakeTx{})
	p.SetPhase(0)
	op(w, fakeTx{})
	if hits != [3]int{2, 0, 2} {
		t.Fatalf("hits = %v, want [2 0 2]", hits)
	}
	if p.Phase() != 0 || p.Phases() != 3 {
		t.Fatalf("Phase/Phases = %d/%d", p.Phase(), p.Phases())
	}
}

func TestPhasedOpBounds(t *testing.T) {
	p := NewPhasedOp(func(*Worker, fakeTx) {})
	for _, i := range []int{-1, 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetPhase(%d) did not panic", i)
				}
			}()
			p.SetPhase(i)
		}()
	}
}

// Flipping the phase while workers run must be race-free and take effect:
// counts accumulate in the new phase after the flip.
func TestPhasedOpConcurrentFlip(t *testing.T) {
	var a, b atomic.Uint64
	p := NewPhasedOp(
		func(*Worker, fakeTx) { a.Add(1) },
		func(*Worker, fakeTx) { b.Add(1) },
	)
	op := p.Op()
	var stopFlag atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := &Worker{ID: id}
			for !stopFlag.Load() {
				op(w, fakeTx{})
			}
		}(i)
	}
	for a.Load() < 1000 {
	}
	p.SetPhase(1)
	base := b.Load()
	for b.Load() < base+1000 {
	}
	stopFlag.Store(true)
	wg.Wait()
	if b.Load() == 0 {
		t.Fatal("phase flip never took effect")
	}
}

// IntsetPhases drives a real STM through an update-rate flip over one
// shared set.
func TestIntsetPhasesOverSharedSet(t *testing.T) {
	sp := mem.NewSpace(1 << 16)
	tm := core.MustNew(core.Config{Space: sp, Locks: 1 << 8})
	base := IntsetParams{Kind: KindList, InitialSize: 32, UpdatePct: 0}
	set := BuildIntset[*core.Tx](tm, base, 1)
	hot := base
	hot.UpdatePct = 100
	p := IntsetPhases[*core.Tx](tm, set, base, hot)
	op := p.Op()

	w := &Worker{ID: 0, Rng: rng.NewThread(1, 0)}
	tx := tm.NewTx()
	for i := 0; i < 50; i++ {
		op(w, tx)
	}
	s0 := tm.Stats()
	if s0.Commits == 0 {
		t.Fatal("phase 0 ran no transactions")
	}
	p.SetPhase(1)
	for i := 0; i < 50; i++ {
		op(w, tx)
	}
	// Phase 1 is 100% updates: the alternating add/remove mix must have
	// committed update transactions (alloc/free activity distinguishes it
	// from the pure-lookup phase 0, which never writes).
	s1 := tm.Stats().Sub(s0)
	if s1.Commits == 0 {
		t.Fatal("phase 1 ran no transactions")
	}
}
