package harness

import (
	"sync"
	"time"

	"tinystm/internal/obs"
	"tinystm/internal/rng"
	"tinystm/internal/txn"
)

// OpenLoop drives a workload open-loop: requests arrive on a fixed
// schedule (Rate per second) regardless of whether earlier requests have
// completed, the way service traffic reaches a server. This is the dual of
// Bench.Run's closed loop, where each worker issues its next operation
// only after the previous one returns and the offered load therefore
// adapts itself to the system's speed. Under open-loop load, a slow
// configuration builds queueing delay instead of quietly offering less —
// exactly the regime an online tuner must be evaluated in.
type OpenLoop struct {
	// Rate is the arrival rate in requests per second. Required.
	Rate float64
	// Duration is the length of the arrival schedule.
	Duration time.Duration
	// Workers is the service concurrency: goroutines that pick arrivals
	// off the queue and execute them. Required.
	Workers int
	// Queue bounds the arrival queue. Arrivals that find the queue full
	// are dropped and counted (the open-loop analogue of load shedding);
	// an unbounded queue would just hide overload in memory growth.
	// Default: 4 × Workers.
	Queue int
	// Seed derives each worker's private generator.
	Seed uint64
	// Latency, when non-nil, receives every request's arrival-to-
	// completion latency (nanoseconds) instead of a private histogram —
	// pass the server's own request histogram to measure client-observed
	// and server-observed latency on one instrument.
	Latency *obs.Histogram
	// NewOp builds one worker's request function and an optional cleanup
	// run when the worker exits. The error return counts failed requests
	// (e.g. HTTP errors); transactional ops that cannot fail return nil.
	NewOp func(w *Worker) (op func(w *Worker) error, cleanup func())
}

// OpenLoopResult summarizes one open-loop run.
type OpenLoopResult struct {
	// Offered counts arrivals placed on the queue; Dropped counts
	// arrivals discarded because the queue was full. Offered + Dropped
	// is the full schedule.
	Offered, Dropped uint64
	// Completed counts requests that finished; Errors how many of those
	// returned an error.
	Completed, Errors uint64
	Elapsed           time.Duration
	// Throughput is completed requests per second of elapsed time.
	Throughput float64
	// Goodput is successfully completed requests (Completed - Errors) per
	// second of elapsed time: the number an admission-control comparison
	// must rank by, since refusing work raises Throughput's denominator
	// without serving anyone.
	Goodput float64
	// Latency is the run's histogram snapshot (nanoseconds), measured
	// from scheduled arrival to completion so queueing delay is included
	// (the open-loop convention; a closed loop's "service time only"
	// latency hides overload entirely). The convenience quantiles below
	// are read from it; Latency.Quantile serves any other.
	Latency            obs.Snapshot
	P50, P95, P99, Max time.Duration
}

// TxOp adapts a transactional OpFunc to OpenLoop.NewOp: each worker gets
// its own descriptor, released when the worker exits.
func TxOp[T txn.Tx](sys txn.System[T], op OpFunc[T]) func(w *Worker) (func(*Worker) error, func()) {
	return func(w *Worker) (func(*Worker) error, func()) {
		tx := sys.NewTx()
		return func(w *Worker) error {
			op(w, tx)
			return nil
		}, func() { releaseTx(tx) }
	}
}

// Run executes the open-loop schedule and returns the summary.
func (o OpenLoop) Run() OpenLoopResult {
	if o.Rate <= 0 {
		panic("harness: OpenLoop.Rate must be positive")
	}
	if o.Workers <= 0 {
		panic("harness: OpenLoop.Workers must be positive")
	}
	if o.NewOp == nil {
		panic("harness: OpenLoop.NewOp is required")
	}
	queue := o.Queue
	if queue <= 0 {
		queue = 4 * o.Workers
	}
	hist := o.Latency
	var base obs.Snapshot
	if hist == nil {
		hist = obs.NewHistogram()
	} else {
		// Shared instrument: report only this run's delta.
		base = hist.Snapshot()
	}

	arrivals := make(chan time.Time, queue)
	var res OpenLoopResult
	//stm:allow-atomic merges per-worker error counts; not STM-managed state
	var mu sync.Mutex
	var errors uint64

	var wg sync.WaitGroup
	for i := 0; i < o.Workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := &Worker{ID: id, Rng: rng.NewThread(o.Seed, id)}
			op, cleanup := o.NewOp(w)
			if cleanup != nil {
				defer cleanup()
			}
			var errs uint64
			for at := range arrivals {
				err := op(w)
				w.Ops++
				hist.Record(uint64(time.Since(at)))
				if err != nil {
					errs++
				}
			}
			mu.Lock()
			errors += errs
			mu.Unlock()
		}(i)
	}

	// Pacer: arrival n is scheduled at start + n/Rate. When the pacer
	// falls behind wall-clock (coarse sleeps), it emits the overdue
	// arrivals in a burst — the schedule, not the pacer's progress,
	// defines the offered load.
	interval := time.Duration(float64(time.Second) / o.Rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	start := time.Now()
	deadline := start.Add(o.Duration)
	for next := start; next.Before(deadline); next = next.Add(interval) {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		select {
		case arrivals <- next:
			res.Offered++
		default:
			res.Dropped++
		}
	}
	close(arrivals)
	wg.Wait()
	res.Elapsed = time.Since(start)

	cur := hist.Snapshot()
	res.Latency = cur.Sub(&base)
	res.Errors = errors
	res.Completed = res.Latency.Count
	if secs := res.Elapsed.Seconds(); secs > 0 {
		res.Throughput = float64(res.Completed) / secs
		res.Goodput = float64(res.Completed-res.Errors) / secs
	}
	if res.Latency.Count > 0 {
		res.P50 = time.Duration(res.Latency.Quantile(0.50))
		res.P95 = time.Duration(res.Latency.Quantile(0.95))
		res.P99 = time.Duration(res.Latency.Quantile(0.99))
		res.Max = time.Duration(res.Latency.Max)
	}
	return res
}
