package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table renders aligned benchmark output, with an optional CSV mode so
// figures can be re-plotted from the harness output directly.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "# %s\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// RenderCSV writes the table as CSV (no quoting needed: cells are
// numbers and simple labels).
func (t *Table) RenderCSV(w io.Writer) {
	if len(t.Headers) > 0 {
		fmt.Fprintln(w, strings.Join(t.Headers, ","))
	}
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}
