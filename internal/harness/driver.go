// Package harness drives timed STM benchmarks: it spawns worker
// goroutines that execute a workload operation in a loop, measures
// committed-transaction throughput and abort rates from the STM's own
// counters, and renders the tables the paper's figures plot.
//
// The driver is generic over the transaction type so each STM runs with
// static dispatch; a benchmark configuration is one Bench value.
package harness

import (
	"sync"
	"sync/atomic"
	"time"

	"tinystm/internal/rng"
	"tinystm/internal/txn"
)

// Worker carries per-thread benchmark state. The paper's update
// transactions "alternatively add a new element and remove the last
// inserted element"; LastVal/HasLast implement that alternation.
type Worker struct {
	ID  int
	Rng *rng.Rand

	LastVal uint64
	HasLast bool

	// Ops counts completed operation invocations (not transactions; one
	// op may run several atomic blocks).
	Ops uint64
}

// OpFunc performs one benchmark operation using the worker's descriptor.
type OpFunc[T txn.Tx] func(w *Worker, tx T)

// Bench describes one timed run.
type Bench[T txn.Tx] struct {
	Sys      txn.System[T]
	Threads  int
	Duration time.Duration
	// Warmup runs the workload without measuring before the timed
	// window, letting caches and allocator free lists settle.
	Warmup time.Duration
	Seed   uint64
	Op     OpFunc[T]
}

// Result summarizes a timed run.
type Result struct {
	Threads  int
	Duration time.Duration
	// Delta holds the STM counters accumulated during the measured
	// window (commits, aborts by kind, validation fast-path counters).
	Delta txn.Stats
	// Throughput is committed transactions per second.
	Throughput float64
	// AbortRate is aborts per second.
	AbortRate float64
	// Ops is the number of workload operations completed.
	Ops uint64
}

// Run executes the benchmark and returns its result.
func (b Bench[T]) Run() Result {
	if b.Threads <= 0 {
		panic("harness: Threads must be positive")
	}
	if b.Op == nil {
		panic("harness: Op is required")
	}

	//stm:allow-atomic harness control plane: stop signal for workers
	var stop atomic.Bool
	//stm:allow-atomic harness control plane: measurement-window gate
	var measuring atomic.Bool
	//stm:allow-atomic throughput tally read after workers join
	var opsMeasured atomic.Uint64

	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < b.Threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := &Worker{ID: id, Rng: rng.NewThread(b.Seed, id)}
			tx := b.Sys.NewTx()
			defer releaseTx(tx)
			<-start
			for !stop.Load() {
				b.Op(w, tx)
				w.Ops++
				if measuring.Load() {
					opsMeasured.Add(1)
				}
			}
		}(i)
	}

	close(start)
	if b.Warmup > 0 {
		time.Sleep(b.Warmup)
	}
	before := b.Sys.Stats()
	measuring.Store(true)
	t0 := time.Now()
	time.Sleep(b.Duration)
	elapsed := time.Since(t0)
	after := b.Sys.Stats()
	measuring.Store(false)
	stop.Store(true)
	wg.Wait()

	delta := after.Sub(before)
	secs := elapsed.Seconds()
	return Result{
		Threads:    b.Threads,
		Duration:   elapsed,
		Delta:      delta,
		Throughput: float64(delta.Commits) / secs,
		AbortRate:  float64(delta.Aborts) / secs,
		Ops:        opsMeasured.Load(),
	}
}
