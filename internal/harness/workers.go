package harness

import (
	"sync"
	"sync/atomic"

	"tinystm/internal/rng"
	"tinystm/internal/txn"
)

// Workers is an open-ended worker pool: unlike Bench.Run, which measures
// one fixed window, a Workers pool keeps executing the operation until
// stopped while the caller samples throughput externally (the shape the
// dynamic-tuning experiments need: the tuner reconfigures the TM while the
// workload keeps running).
type Workers struct {
	//stm:allow-atomic pool stop signal; coordinates goroutines, not STM data
	stop atomic.Bool
	wg   sync.WaitGroup
}

// StartWorkers launches threads goroutines running op in a loop.
func StartWorkers[T txn.Tx](sys txn.System[T], threads int, seed uint64, op OpFunc[T]) *Workers {
	if threads <= 0 {
		panic("harness: threads must be positive")
	}
	ws := &Workers{}
	for i := 0; i < threads; i++ {
		ws.wg.Add(1)
		go func(id int) {
			defer ws.wg.Done()
			w := &Worker{ID: id, Rng: rng.NewThread(seed, id)}
			tx := sys.NewTx()
			defer releaseTx(tx)
			for !ws.stop.Load() {
				op(w, tx)
				w.Ops++
			}
		}(i)
	}
	return ws
}

// releaseTx hands a descriptor back to its system when the STM supports
// recycling (core.Tx does; the txn.Tx interface itself does not require
// it). Without this, repeated worker-pool lifetimes on one long-lived TM
// leak a descriptor slot per worker per cycle until the slot space is
// exhausted.
func releaseTx(tx any) {
	if r, ok := tx.(interface{ Release() }); ok {
		r.Release()
	}
}

// Stop terminates the pool and waits for all workers to exit.
func (ws *Workers) Stop() {
	ws.stop.Store(true)
	ws.wg.Wait()
}
