package harness

import (
	"sync/atomic"

	"tinystm/internal/intset"
	"tinystm/internal/txn"
)

// PhasedOp multiplexes several workload operations behind one OpFunc and
// lets the caller flip the active phase while workers run. This is the
// harness's phase-shift mode: a mid-run flip of the update rate or the
// working-set size changes the workload's optimal STM configuration, which
// is exactly what an online tuner must re-adapt to.
type PhasedOp[T txn.Tx] struct {
	//stm:allow-atomic workload phase selector flipped by the driver mid-run
	phase atomic.Int32
	ops   []OpFunc[T]
}

// NewPhasedOp builds a phased operation starting in phase 0.
func NewPhasedOp[T txn.Tx](ops ...OpFunc[T]) *PhasedOp[T] {
	if len(ops) == 0 {
		panic("harness: NewPhasedOp needs at least one phase")
	}
	return &PhasedOp[T]{ops: ops}
}

// Op returns the worker-facing operation: each invocation dispatches to
// the currently active phase (one atomic load per operation).
func (p *PhasedOp[T]) Op() OpFunc[T] {
	return func(w *Worker, tx T) {
		p.ops[p.phase.Load()](w, tx)
	}
}

// SetPhase switches every worker to phase i on their next operation.
func (p *PhasedOp[T]) SetPhase(i int) {
	if i < 0 || i >= len(p.ops) {
		panic("harness: phase out of range")
	}
	p.phase.Store(int32(i))
}

// Phase returns the active phase index.
func (p *PhasedOp[T]) Phase() int { return int(p.phase.Load()) }

// Phases returns the number of phases.
func (p *PhasedOp[T]) Phases() int { return len(p.ops) }

// IntsetPhases builds a PhasedOp over one shared set from several
// IntsetParams variants — typically the same structure with different
// UpdatePct (update-rate flip) or Range (working-set-size flip). The set
// should have been built from the first variant; all variants must use the
// set's Kind.
func IntsetPhases[T txn.Tx](sys txn.System[T], set intset.Set[T], variants ...IntsetParams) *PhasedOp[T] {
	if len(variants) == 0 {
		panic("harness: IntsetPhases needs at least one variant")
	}
	ops := make([]OpFunc[T], len(variants))
	for i, v := range variants {
		ops[i] = IntsetOp[T](sys, set, v)
	}
	return NewPhasedOp(ops...)
}
