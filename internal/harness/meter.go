package harness

import (
	"time"

	"tinystm/internal/txn"
)

// Meter measures committed-transaction throughput over successive
// intervals from an STM's global counters; the dynamic tuner samples it
// once per tuning period ("we measure the throughput over a period of
// approximately one second", Section 4.2).
type Meter struct {
	stats func() txn.Stats
	last  txn.Stats
	lastT time.Time
	now   func() time.Time
}

// NewMeter builds a meter over a stats source (typically tm.Stats).
func NewMeter(stats func() txn.Stats) *Meter {
	return NewMeterClock(stats, time.Now)
}

// NewMeterClock injects a clock source; tests use a fake clock to make
// interval arithmetic deterministic.
func NewMeterClock(stats func() txn.Stats, now func() time.Time) *Meter {
	return &Meter{stats: stats, last: stats(), lastT: now(), now: now}
}

// Sample returns the throughput (commits/second) and raw counter delta
// since the previous Sample (or since construction).
func (m *Meter) Sample() (float64, txn.Stats) {
	cur := m.stats()
	t := m.now()
	delta := cur.Sub(m.last)
	secs := t.Sub(m.lastT).Seconds()
	m.last, m.lastT = cur, t
	if secs <= 0 {
		return 0, delta
	}
	return float64(delta.Commits) / secs, delta
}
