package harness_test

import (
	"runtime"
	"testing"

	"tinystm/internal/core"
	"tinystm/internal/harness"
)

func TestWorkersRunUntilStopped(t *testing.T) {
	tm := newTM(t)
	tx := tm.NewTx()
	var a uint64
	tm.Atomic(tx, func(tx *core.Tx) { a = tx.Alloc(1) })

	ws := harness.StartWorkers[*core.Tx](tm, 3, 7, func(w *harness.Worker, tx *core.Tx) {
		tm.Atomic(tx, func(tx *core.Tx) { tx.Store(a, tx.Load(a)+1) })
	})
	// Wait until some work has demonstrably happened.
	for tm.Stats().Commits < 100 {
		runtime.Gosched()
	}
	ws.Stop()
	afterStop := tm.Stats().Commits
	// No further commits after Stop returns.
	for i := 0; i < 100; i++ {
		runtime.Gosched()
	}
	if got := tm.Stats().Commits; got != afterStop {
		t.Errorf("commits advanced after Stop: %d -> %d", afterStop, got)
	}
}

func TestWorkersReconfigureWhileRunning(t *testing.T) {
	// The tuning loop's core interaction: reconfiguring a TM while a
	// worker pool hammers it must not deadlock or corrupt.
	tm := newTM(t)
	set := harness.BuildIntset[*core.Tx](tm, harness.IntsetParams{
		Kind: harness.KindList, InitialSize: 64, UpdatePct: 50,
	}, 3)
	ws := harness.StartWorkers[*core.Tx](tm, 2, 3, harness.IntsetOp[*core.Tx](tm, set,
		harness.IntsetParams{Kind: harness.KindList, InitialSize: 64, UpdatePct: 50}))
	for i := 0; i < 10; i++ {
		p := core.Params{Locks: 1 << uint(8+i%4), Shifts: uint(i % 3), Hier: 1 << uint(i%3)}
		if err := tm.Reconfigure(p); err != nil {
			t.Fatalf("Reconfigure: %v", err)
		}
	}
	ws.Stop()
	tx := tm.NewTx()
	tm.Atomic(tx, func(tx *core.Tx) {
		if set.Size(tx) < 0 {
			t.Error("impossible size")
		}
	})
}

func TestWorkersReleaseDescriptors(t *testing.T) {
	// Repeated pool lifetimes on one long-lived TM must recycle descriptor
	// slots, not mint fresh ones per cycle (the maxSlots-exhaustion leak).
	tm := newTM(t)
	tx := tm.NewTx()
	var a uint64
	tm.Atomic(tx, func(tx *core.Tx) { a = tx.Alloc(1) })
	tx.Release()

	const threads, cycles = 3, 20
	for c := 0; c < cycles; c++ {
		before := tm.Stats().Commits
		ws := harness.StartWorkers[*core.Tx](tm, threads, 7, func(w *harness.Worker, tx *core.Tx) {
			tm.Atomic(tx, func(tx *core.Tx) { tx.Store(a, tx.Load(a)+1) })
		})
		for tm.Stats().Commits < before+10 {
			runtime.Gosched()
		}
		ws.Stop()
	}
	minted, free := tm.DescriptorCounts()
	if minted > threads+1 {
		t.Errorf("%d worker-pool cycles minted %d descriptors, want <= %d (slots recycled)",
			cycles, minted, threads+1)
	}
	if free != minted {
		t.Errorf("descriptors outstanding after all pools stopped: minted %d, free %d", minted, free)
	}
}

func TestWorkersPanicsOnBadThreads(t *testing.T) {
	tm := newTM(t)
	defer func() {
		if recover() == nil {
			t.Error("StartWorkers(0) did not panic")
		}
	}()
	harness.StartWorkers[*core.Tx](tm, 0, 1, func(*harness.Worker, *core.Tx) {})
}
