package harness_test

import (
	"strings"
	"testing"
	"time"

	"tinystm/internal/core"
	"tinystm/internal/harness"
	"tinystm/internal/mem"
	"tinystm/internal/rng"
	"tinystm/internal/txn"
)

func newRng(seed uint64) *rng.Rand { return rng.New(seed) }

func newTM(t testing.TB) *core.TM {
	t.Helper()
	sp := mem.NewSpace(1 << 22)
	return core.MustNew(core.Config{Space: sp, Locks: 1 << 12})
}

func TestRunCountsCommits(t *testing.T) {
	tm := newTM(t)
	set := harness.BuildIntset[*core.Tx](tm, harness.IntsetParams{
		Kind: harness.KindList, InitialSize: 32, UpdatePct: 20,
	}, 1)
	res := harness.Bench[*core.Tx]{
		Sys:      tm,
		Threads:  2,
		Duration: 50 * time.Millisecond,
		Seed:     7,
		Op: harness.IntsetOp[*core.Tx](tm, set, harness.IntsetParams{
			Kind: harness.KindList, InitialSize: 32, UpdatePct: 20,
		}),
	}.Run()
	if res.Delta.Commits == 0 {
		t.Fatal("no commits measured")
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput = %f", res.Throughput)
	}
	if res.Ops == 0 {
		t.Fatal("no ops recorded")
	}
	if res.Threads != 2 {
		t.Errorf("threads = %d", res.Threads)
	}
}

func TestBuildIntsetPopulatesExactly(t *testing.T) {
	tm := newTM(t)
	for _, kind := range []harness.Kind{
		harness.KindList, harness.KindRBTree, harness.KindSkipList, harness.KindHashSet,
	} {
		set := harness.BuildIntset[*core.Tx](tm, harness.IntsetParams{
			Kind: kind, InitialSize: 100,
		}, 3)
		tx := tm.NewTx()
		var size int
		tm.Atomic(tx, func(tx *core.Tx) { size = set.Size(tx) })
		if size != 100 {
			t.Errorf("%v: size = %d, want 100", kind, size)
		}
	}
}

func TestIntsetOpAlternatesInsertRemove(t *testing.T) {
	// With UpdatePct=100 the set size must stay within [initial,
	// initial+1] for a single worker (insert, remove, insert, ...).
	tm := newTM(t)
	p := harness.IntsetParams{Kind: harness.KindList, InitialSize: 16, UpdatePct: 100}
	set := harness.BuildIntset[*core.Tx](tm, p, 5)
	op := harness.IntsetOp[*core.Tx](tm, set, p)
	w := &harness.Worker{ID: 0, Rng: newRng(9)}
	tx := tm.NewTx()
	for i := 0; i < 50; i++ {
		op(w, tx)
		var size int
		tm.Atomic(tx, func(tx *core.Tx) { size = set.Size(tx) })
		if size < 16 || size > 17 {
			t.Fatalf("op %d: size = %d, want 16 or 17", i, size)
		}
	}
}

func TestOverwriteRequiresList(t *testing.T) {
	tm := newTM(t)
	p := harness.IntsetParams{Kind: harness.KindRBTree, InitialSize: 8, OverwritePct: 5}
	set := harness.BuildIntset[*core.Tx](tm, p, 5)
	defer func() {
		if recover() == nil {
			t.Error("OverwritePct with rbtree did not panic")
		}
	}()
	harness.IntsetOp[*core.Tx](tm, set, p)
}

func TestOverwriteOpProducesWrites(t *testing.T) {
	tm := newTM(t)
	p := harness.IntsetParams{Kind: harness.KindList, InitialSize: 64, OverwritePct: 100}
	set := harness.BuildIntset[*core.Tx](tm, p, 5)
	op := harness.IntsetOp[*core.Tx](tm, set, p)
	w := &harness.Worker{ID: 0, Rng: newRng(11)}
	tx := tm.NewTx()
	before := tm.Stats()
	for i := 0; i < 20; i++ {
		op(w, tx)
	}
	d := tm.Stats().Sub(before)
	if d.Commits != 20 {
		t.Errorf("commits = %d, want 20", d.Commits)
	}
}

func TestMeterDeltas(t *testing.T) {
	var s txn.Stats
	now := time.Unix(0, 0)
	m := harness.NewMeterClock(func() txn.Stats { return s }, func() time.Time { return now })
	s.Commits = 500
	now = now.Add(time.Second)
	tp, delta := m.Sample()
	if tp != 500 {
		t.Errorf("tp = %f, want 500", tp)
	}
	if delta.Commits != 500 {
		t.Errorf("delta = %d, want 500", delta.Commits)
	}
	// Second interval: 250 more commits over 500ms → 500/s.
	s.Commits = 750
	now = now.Add(500 * time.Millisecond)
	tp, _ = m.Sample()
	if tp != 500 {
		t.Errorf("tp = %f, want 500", tp)
	}
}

func TestMeterZeroElapsed(t *testing.T) {
	var s txn.Stats
	now := time.Unix(0, 0)
	m := harness.NewMeterClock(func() txn.Stats { return s }, func() time.Time { return now })
	tp, _ := m.Sample() // zero elapsed: no division by zero
	if tp != 0 {
		t.Errorf("tp = %f, want 0", tp)
	}
}

func TestTableRender(t *testing.T) {
	tbl := harness.Table{
		Title:   "demo",
		Headers: []string{"threads", "tp"},
	}
	tbl.AddRow(1, 1234.5)
	tbl.AddRow(8, "9999.9")
	var sb strings.Builder
	tbl.Render(&sb)
	out := sb.String()
	for _, want := range []string{"# demo", "threads", "1234.5", "9999.9"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	var csv strings.Builder
	tbl.RenderCSV(&csv)
	if !strings.HasPrefix(csv.String(), "threads,tp\n1,1234.5\n") {
		t.Errorf("csv wrong:\n%s", csv.String())
	}
}

func TestKindString(t *testing.T) {
	names := map[harness.Kind]string{
		harness.KindList:     "linked list",
		harness.KindRBTree:   "red-black tree",
		harness.KindSkipList: "skip list",
		harness.KindHashSet:  "hash set",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestBenchPanicsOnBadConfig(t *testing.T) {
	tm := newTM(t)
	for name, b := range map[string]harness.Bench[*core.Tx]{
		"no threads": {Sys: tm, Threads: 0, Duration: time.Millisecond, Op: func(*harness.Worker, *core.Tx) {}},
		"no op":      {Sys: tm, Threads: 1, Duration: time.Millisecond},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			b.Run()
		}()
	}
}
