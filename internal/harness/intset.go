package harness

import (
	"fmt"

	"tinystm/internal/intset"
	"tinystm/internal/rng"
	"tinystm/internal/txn"
)

// Kind selects a data structure for the integer-set workloads.
type Kind int

const (
	// KindList is the sorted linked list of Section 3.3.
	KindList Kind = iota
	// KindRBTree is the STAMP red-black tree of Section 3.3.
	KindRBTree
	// KindSkipList is an extension workload.
	KindSkipList
	// KindHashSet is an extension workload.
	KindHashSet
)

// String names the kind as the paper's figures do.
func (k Kind) String() string {
	switch k {
	case KindList:
		return "linked list"
	case KindRBTree:
		return "red-black tree"
	case KindSkipList:
		return "skip list"
	case KindHashSet:
		return "hash set"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// IntsetParams configures the paper's harness (Section 3.3): a structure
// populated with InitialSize elements whose size stays almost constant;
// update transactions alternately add a fresh element and remove the last
// inserted one, so they always write.
type IntsetParams struct {
	Kind        Kind
	InitialSize int
	// Range is the value domain [1, Range]; 0 defaults to 2×InitialSize
	// (the classic intset setting that keeps ~50% membership).
	Range uint64
	// UpdatePct is the percentage of update transactions (0..100).
	UpdatePct int
	// OverwritePct switches the list workload to the Figure 4 (right)
	// variant: that percentage of transactions traverse-and-overwrite up
	// to a random value, producing large write sets. Only valid with
	// KindList; UpdatePct is ignored when non-zero.
	OverwritePct int
}

func (p IntsetParams) withDefaults() IntsetParams {
	if p.Range == 0 {
		p.Range = 2 * uint64(p.InitialSize)
	}
	return p
}

// BuildIntset allocates the structure and populates it with InitialSize
// distinct random elements, returning the bound Set.
func BuildIntset[T txn.Tx](sys txn.System[T], p IntsetParams, seed uint64) intset.Set[T] {
	p = p.withDefaults()
	r := rng.New(seed)
	tx := sys.NewTx()
	defer releaseTx(tx)
	var set intset.Set[T]
	sys.Atomic(tx, func(tx T) {
		switch p.Kind {
		case KindList:
			set = intset.List[T]{Head: intset.NewList(tx)}
		case KindRBTree:
			set = intset.Tree[T]{Root: intset.NewTree(tx)}
		case KindSkipList:
			set = intset.SkipList[T]{Head: intset.NewSkipList(tx), Rng: r}
		case KindHashSet:
			set = intset.HashSet[T]{Handle: intset.NewHashSet(tx, 256)}
		default:
			panic("harness: unknown Kind")
		}
	})
	// Populate outside a single giant transaction: one insert per
	// transaction mirrors the original harness and keeps the write sets
	// small.
	inserted := 0
	for inserted < p.InitialSize {
		v := r.Uint64n(p.Range) + 1
		var ok bool
		sys.Atomic(tx, func(tx T) { ok = set.Insert(tx, v) })
		if ok {
			inserted++
		}
	}
	return set
}

// IntsetOp returns the per-operation function implementing the paper's
// transaction mix against the given set.
func IntsetOp[T txn.Tx](sys txn.System[T], set intset.Set[T], p IntsetParams) OpFunc[T] {
	p = p.withDefaults()
	if p.OverwritePct > 0 {
		l, ok := any(set).(intset.List[T])
		if !ok {
			panic("harness: OverwritePct requires KindList")
		}
		return func(w *Worker, tx T) {
			v := w.Rng.Uint64n(p.Range) + 1
			if w.Rng.Percent(p.OverwritePct) {
				sys.Atomic(tx, func(tx T) { intset.ListOverwrite(tx, l.Head, v) })
			} else {
				sys.AtomicRO(tx, func(tx T) { intset.ListContains(tx, l.Head, v) })
			}
		}
	}
	return func(w *Worker, tx T) {
		// Skip lists draw tower heights from the worker's generator; the
		// Set value carries the setup generator, so rebind per worker.
		s := set
		if sl, ok := any(set).(intset.SkipList[T]); ok {
			s = intset.SkipList[T]{Head: sl.Head, Rng: w.Rng}
		}
		if w.Rng.Percent(p.UpdatePct) {
			if w.HasLast {
				// Remove the last inserted element: guaranteed present
				// (only we could have inserted it; see BuildIntset).
				sys.Atomic(tx, func(tx T) { s.Remove(tx, w.LastVal) })
				w.HasLast = false
				return
			}
			// Add a fresh element, drawing until the insert succeeds so
			// the transaction always writes (paper Section 3.3).
			sys.Atomic(tx, func(tx T) {
				for {
					v := w.Rng.Uint64n(p.Range) + 1
					if s.Insert(tx, v) {
						w.LastVal = v
						break
					}
				}
			})
			w.HasLast = true
			return
		}
		v := w.Rng.Uint64n(p.Range) + 1
		sys.AtomicRO(tx, func(tx T) { s.Contains(tx, v) })
	}
}
