package harness

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"tinystm/internal/core"
	"tinystm/internal/mem"
)

func TestOpenLoopCompletesSchedule(t *testing.T) {
	var done atomic.Uint64
	res := OpenLoop{
		Rate: 2000, Duration: 200 * time.Millisecond, Workers: 4, Seed: 1,
		NewOp: func(w *Worker) (func(*Worker) error, func()) {
			return func(*Worker) error {
				done.Add(1)
				return nil
			}, nil
		},
	}.Run()
	if res.Completed != done.Load() {
		t.Fatalf("completed %d != op invocations %d", res.Completed, done.Load())
	}
	if res.Completed+res.Dropped < 300 {
		t.Fatalf("schedule too small: completed=%d dropped=%d", res.Completed, res.Dropped)
	}
	if res.Offered != res.Completed {
		t.Fatalf("offered %d != completed %d with a fast op", res.Offered, res.Completed)
	}
	if res.Throughput <= 0 || res.P50 < 0 || res.Max < res.P99 {
		t.Fatalf("implausible summary: %+v", res)
	}
}

func TestOpenLoopCountsErrorsAndDrops(t *testing.T) {
	boom := errors.New("boom")
	res := OpenLoop{
		Rate: 5000, Duration: 100 * time.Millisecond, Workers: 1, Queue: 1, Seed: 1,
		NewOp: func(w *Worker) (func(*Worker) error, func()) {
			return func(*Worker) error {
				time.Sleep(2 * time.Millisecond) // slow server: queue overflows
				return boom
			}, nil
		},
	}.Run()
	if res.Errors != res.Completed || res.Completed == 0 {
		t.Fatalf("every completion should be an error: %+v", res)
	}
	if res.Dropped == 0 {
		t.Fatalf("a saturated 1-worker/1-queue run must shed load: %+v", res)
	}
}

// TestOpenLoopTxOpReleasesDescriptors pins the slot-recycling contract for
// open-loop workers: descriptors go back to the TM when workers exit.
func TestOpenLoopTxOpReleasesDescriptors(t *testing.T) {
	tm := core.MustNew(core.Config{Space: mem.NewSpace(1 << 12)})
	addr := uint64(0)
	seedTx := tm.NewTx()
	tm.Atomic(seedTx, func(tx *core.Tx) { addr = tx.Alloc(1) })
	seedTx.Release()

	for round := 0; round < 3; round++ {
		OpenLoop{
			Rate: 20000, Duration: 20 * time.Millisecond, Workers: 8, Seed: 42,
			NewOp: TxOp[*core.Tx](tm, func(w *Worker, tx *core.Tx) {
				tm.Atomic(tx, func(tx *core.Tx) { tx.Store(addr, tx.Load(addr)+1) })
			}),
		}.Run()
	}
	minted, free := tm.DescriptorCounts()
	if minted > 9 { // 8 workers + the seeding descriptor
		t.Fatalf("worker descriptors not recycled: minted %d across rounds", minted)
	}
	if free != minted {
		t.Fatalf("all descriptors should be back on the free list: minted=%d free=%d", minted, free)
	}
}
