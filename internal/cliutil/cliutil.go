// Package cliutil holds the small amount of flag plumbing shared by the
// benchmark executables in cmd/.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"tinystm/internal/core"
	"tinystm/internal/experiments"
	"tinystm/internal/harness"
)

// ParseInts parses a comma-separated integer list ("1,2,4,6,8").
func ParseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("cliutil: bad integer %q: %w", p, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cliutil: empty list %q", s)
	}
	return out, nil
}

// ParseUints parses a comma-separated list of unsigned integers.
func ParseUints(s string) ([]uint, error) {
	ints, err := ParseInts(s)
	if err != nil {
		return nil, err
	}
	out := make([]uint, len(ints))
	for i, v := range ints {
		if v < 0 {
			return nil, fmt.Errorf("cliutil: negative value %d", v)
		}
		out[i] = uint(v)
	}
	return out, nil
}

// ParseUint64s parses a comma-separated list of uint64s.
func ParseUint64s(s string) ([]uint64, error) {
	ints, err := ParseInts(s)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, len(ints))
	for i, v := range ints {
		if v < 0 {
			return nil, fmt.Errorf("cliutil: negative value %d", v)
		}
		out[i] = uint64(v)
	}
	return out, nil
}

// ParseKind maps a benchmark name to a harness kind.
func ParseKind(s string) (harness.Kind, error) {
	switch strings.ToLower(s) {
	case "list", "linkedlist", "ll":
		return harness.KindList, nil
	case "rbtree", "tree", "rb":
		return harness.KindRBTree, nil
	case "skiplist", "skip":
		return harness.KindSkipList, nil
	case "hashset", "hash":
		return harness.KindHashSet, nil
	default:
		return 0, fmt.Errorf("cliutil: unknown benchmark %q (list, rbtree, skiplist, hashset)", s)
	}
}

// Scale assembles an experiments.Scale from common flag values.
func Scale(duration, warmup time.Duration, threads []int, seed uint64, quick bool, yield int) experiments.Scale {
	if quick {
		sc := experiments.QuickScale()
		sc.Threads = threads
		sc.YieldEvery = yield
		return sc
	}
	sc := experiments.PaperScale()
	sc.Duration = duration
	sc.Warmup = warmup
	sc.Threads = threads
	sc.Seed = seed
	sc.YieldEvery = yield
	return sc
}

// ParseDesign maps a short name to a core memory-access design.
func ParseDesign(s string) (core.Design, error) {
	switch strings.ToLower(s) {
	case "wb", "writeback", "write-back":
		return core.WriteBack, nil
	case "wt", "writethrough", "write-through":
		return core.WriteThrough, nil
	default:
		return 0, fmt.Errorf("cliutil: unknown design %q (wb, wt)", s)
	}
}

// ParsePow2 parses an unsigned value that may be written either as a
// plain decimal ("65536") or as a power of two ("2^16").
func ParsePow2(s string) (uint64, error) {
	s = strings.TrimSpace(s)
	if rest, ok := strings.CutPrefix(s, "2^"); ok {
		exp, err := strconv.ParseUint(rest, 10, 6)
		if err != nil || exp > 63 {
			return 0, fmt.Errorf("cliutil: bad exponent in %q", s)
		}
		return 1 << exp, nil
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("cliutil: bad value %q: %w", s, err)
	}
	return v, nil
}

// ParseParams parses the tunable triple "locks,shifts,h" used by the
// -geometry flags of cmd/stmkvd and cmd/stmbench. Locks and h accept
// either decimal or "2^k" notation, so "2^16,0,1" and "65536,0,1" are the
// same configuration.
func ParseParams(s string) (core.Params, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return core.Params{}, fmt.Errorf("cliutil: geometry %q must be locks,shifts,h", s)
	}
	locks, err := ParsePow2(parts[0])
	if err != nil {
		return core.Params{}, err
	}
	shifts, err := strconv.ParseUint(strings.TrimSpace(parts[1]), 10, 6)
	if err != nil {
		return core.Params{}, fmt.Errorf("cliutil: bad shifts %q: %w", parts[1], err)
	}
	hier, err := ParsePow2(parts[2])
	if err != nil {
		return core.Params{}, err
	}
	return core.Params{Locks: locks, Shifts: uint(shifts), Hier: hier}, nil
}
