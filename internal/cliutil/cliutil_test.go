package cliutil

import (
	"reflect"
	"testing"
	"time"

	"tinystm/internal/core"
	"tinystm/internal/harness"
)

func TestParseInts(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		ok   bool
	}{
		{"1,2,4,6,8", []int{1, 2, 4, 6, 8}, true},
		{" 1, 2 ", []int{1, 2}, true},
		{"7", []int{7}, true},
		{"1,,2", []int{1, 2}, true},
		{"", nil, false},
		{"a,b", nil, false},
		{"1,x", nil, false},
	}
	for _, c := range cases {
		got, err := ParseInts(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseInts(%q) err = %v, ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseInts(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseUints(t *testing.T) {
	got, err := ParseUints("0,3,6")
	if err != nil || !reflect.DeepEqual(got, []uint{0, 3, 6}) {
		t.Errorf("ParseUints = %v, %v", got, err)
	}
	if _, err := ParseUints("-1"); err == nil {
		t.Error("negative accepted")
	}
}

func TestParseUint64s(t *testing.T) {
	got, err := ParseUint64s("4,16,64")
	if err != nil || !reflect.DeepEqual(got, []uint64{4, 16, 64}) {
		t.Errorf("ParseUint64s = %v, %v", got, err)
	}
	if _, err := ParseUint64s("-2"); err == nil {
		t.Error("negative accepted")
	}
}

func TestParseKind(t *testing.T) {
	cases := map[string]harness.Kind{
		"list": harness.KindList, "LL": harness.KindList,
		"rbtree": harness.KindRBTree, "RB": harness.KindRBTree, "tree": harness.KindRBTree,
		"skiplist": harness.KindSkipList, "skip": harness.KindSkipList,
		"hashset": harness.KindHashSet, "hash": harness.KindHashSet,
	}
	for in, want := range cases {
		got, err := ParseKind(in)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseKind("btree"); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestScale(t *testing.T) {
	sc := Scale(2*time.Second, 100*time.Millisecond, []int{1, 4}, 7, false, 0)
	if sc.Duration != 2*time.Second || sc.Warmup != 100*time.Millisecond {
		t.Errorf("scale durations wrong: %+v", sc)
	}
	if !reflect.DeepEqual(sc.Threads, []int{1, 4}) || sc.Seed != 7 {
		t.Errorf("scale threads/seed wrong: %+v", sc)
	}
	q := Scale(2*time.Second, 0, []int{1}, 7, true, 4)
	if q.Duration >= time.Second {
		t.Errorf("quick scale not quick: %+v", q)
	}
	if !reflect.DeepEqual(q.Threads, []int{1}) {
		t.Errorf("quick scale threads not overridden: %+v", q)
	}
}

func TestParseDesign(t *testing.T) {
	if d, err := ParseDesign("wb"); err != nil || d != core.WriteBack {
		t.Errorf("wb: %v %v", d, err)
	}
	if d, err := ParseDesign("WT"); err != nil || d != core.WriteThrough {
		t.Errorf("WT: %v %v", d, err)
	}
	if d, err := ParseDesign("write-through"); err != nil || d != core.WriteThrough {
		t.Errorf("write-through: %v %v", d, err)
	}
	if _, err := ParseDesign("bogus"); err == nil {
		t.Error("unknown design accepted")
	}
}

func TestParsePow2(t *testing.T) {
	cases := map[string]uint64{"65536": 65536, "2^16": 1 << 16, "2^0": 1, " 2^4 ": 16, "1": 1}
	for in, want := range cases {
		got, err := ParsePow2(in)
		if err != nil || got != want {
			t.Errorf("ParsePow2(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "2^", "2^64", "2^x", "-4", "four"} {
		if _, err := ParsePow2(bad); err == nil {
			t.Errorf("ParsePow2(%q) accepted", bad)
		}
	}
}

func TestParseParams(t *testing.T) {
	p, err := ParseParams("2^16,0,1")
	if err != nil || p != (core.Params{Locks: 1 << 16, Shifts: 0, Hier: 1}) {
		t.Errorf("2^16,0,1: %+v %v", p, err)
	}
	p, err = ParseParams("1024, 2, 2^3")
	if err != nil || p != (core.Params{Locks: 1024, Shifts: 2, Hier: 8}) {
		t.Errorf("1024,2,2^3: %+v %v", p, err)
	}
	for _, bad := range []string{"", "1,2", "1,2,3,4", "x,0,1", "16,-1,1", "16,0,z"} {
		if _, err := ParseParams(bad); err == nil {
			t.Errorf("ParseParams(%q) accepted", bad)
		}
	}
}
