package mvcc

import (
	"sync"
	"testing"
)

// newTestStore builds a store and registers one far-past snapshot reader
// in slot 0 so publications are retained (with no registered snapshot the
// store intentionally skips version retention). Tests that need precise
// pinning behavior manage the registry themselves.
func newTestStore(t *testing.T, shards, budget int) *Store {
	t.Helper()
	s := New(Config{Words: 1 << 16, Shards: shards, Budget: budget})
	s.EnsureSlots(2)
	s.Enter(1, 1<<40) // far-future reader: retains without pinning
	return s
}

func TestPublishAndRead(t *testing.T) {
	s := newTestStore(t, 4, 16)
	// Address 100 on stripe 7: value 11 current [5, 9), superseded at 9.
	s.Publish(9, []Version{{Stripe: 7, Addr: 100, Val: 11, From: 5}})

	if v, res := s.Read(7, 100, 6); res != ReadHit || v != 11 {
		t.Fatalf("Read(snap=6) = (%d, %v), want (11, hit)", v, res)
	}
	if v, res := s.Read(7, 100, 5); res != ReadHit || v != 11 {
		t.Fatalf("Read(snap=5) = (%d, %v), want interval-start hit", v, res)
	}
	if _, res := s.Read(7, 100, 9); res != ReadLiveValid {
		// The supersede at 9 wrote the current live value: snapshots >= 9
		// may serve it straight from memory.
		t.Fatalf("Read(snap=9) = %v, want live-valid (live value owns 9)", res)
	}
	if _, res := s.Read(7, 100, 4); res != ReadMiss {
		t.Fatalf("Read(snap=4) = %v; 4 predates the interval, want miss", res)
	}
	if _, res := s.Read(7, 999, 6); res != ReadMiss {
		t.Fatalf("Read of unpublished address = %v, want miss", res)
	}
	if p, tr := s.Counts(); p != 1 || tr != 0 {
		t.Fatalf("Counts = (%d, %d), want (1, 0)", p, tr)
	}
}

func TestReadNewestMatchingInterval(t *testing.T) {
	s := newTestStore(t, 1, 16)
	// Successive versions of one address: 1 current [1,4), 2 current [4,8).
	s.Publish(4, []Version{{Stripe: 0, Addr: 50, Val: 1, From: 1}})
	s.Publish(8, []Version{{Stripe: 0, Addr: 50, Val: 2, From: 4}})
	for snap, want := range map[uint64]uint64{1: 1, 3: 1, 4: 2, 7: 2} {
		if v, res := s.Read(0, 50, snap); res != ReadHit || v != want {
			t.Fatalf("Read(snap=%d) = (%d, %v), want (%d, hit)", snap, v, res, want)
		}
	}
	if _, res := s.Read(0, 50, 8); res != ReadLiveValid {
		t.Fatalf("Read(snap=8) = %v, want live-valid", res)
	}
}

func TestWrittenRecordTightensIntervals(t *testing.T) {
	s := newTestStore(t, 1, 16)
	// Address X superseded at 5 (interval [2,5)). Another address under
	// the same stripe commits at 7, so X's next supersede at 9 sees
	// stripe version 7 — conservatively [7,9). The written record must
	// tighten it to the exact [5,9).
	s.Publish(5, []Version{{Stripe: 3, Addr: 10, Val: 100, From: 2}})
	s.Publish(7, []Version{{Stripe: 3, Addr: 11, Val: 200, From: 4}})
	s.Publish(9, []Version{{Stripe: 3, Addr: 10, Val: 101, From: 7}})
	if v, res := s.Read(3, 10, 6); res != ReadHit || v != 101 {
		t.Fatalf("Read(snap=6) = (%d, %v), want tightened hit (101, hit)", v, res)
	}
	if v, res := s.Read(3, 10, 3); res != ReadHit || v != 100 {
		t.Fatalf("Read(snap=3) = (%d, %v), want (100, hit)", v, res)
	}
}

func TestBirthProvesLiveValid(t *testing.T) {
	s := newTestStore(t, 1, 16)
	// A freshly allocated word is born at 6: no entry is retained, but
	// any snapshot >= 6 may serve the live word even when the stripe
	// version has moved past it.
	s.Publish(6, []Version{{Stripe: 0, Addr: 70, Birth: true}})
	if p, _ := s.Counts(); p != 0 {
		t.Fatalf("birth retained %d entries, want 0", p)
	}
	if _, res := s.Read(0, 70, 8); res != ReadLiveValid {
		t.Fatalf("Read(birth, snap=8) = %v, want live-valid", res)
	}
	if _, res := s.Read(0, 70, 5); res != ReadMiss {
		t.Fatalf("Read(birth, snap=5) = %v, want miss (predates the birth)", res)
	}
	// The first supersede's interval starts exactly at the birth.
	s.Publish(12, []Version{{Stripe: 0, Addr: 70, Val: 1, From: 11}})
	if v, res := s.Read(0, 70, 7); res != ReadHit || v != 1 {
		t.Fatalf("Read(snap=7) = (%d, %v), want birth-tightened hit (1, hit)", v, res)
	}
}

func TestNoSnapshotSkipsRetention(t *testing.T) {
	s := New(Config{Words: 1 << 16, Shards: 1, Budget: 16})
	s.EnsureSlots(1)
	// No snapshot registered: publication maintains written[] only.
	s.Publish(5, []Version{{Stripe: 0, Addr: 10, Val: 100, From: 2}})
	if p, _ := s.Counts(); p != 0 {
		t.Fatalf("published %d entries with no snapshot registered", p)
	}
	if r := s.Retained(); r != 0 {
		t.Fatalf("retained %d entries with no snapshot registered", r)
	}
	// The written record still proves live-validity for later snapshots.
	if _, res := s.Read(0, 10, 6); res != ReadLiveValid {
		t.Fatalf("Read(snap=6) = %v, want live-valid", res)
	}
	// An older snapshot misses conservatively (never wrong data).
	if _, res := s.Read(0, 10, 4); res != ReadMiss {
		t.Fatalf("Read(snap=4) = %v, want miss", res)
	}
	// Once a snapshot registers, retention resumes.
	s.Enter(0, 6)
	s.Publish(9, []Version{{Stripe: 0, Addr: 10, Val: 101, From: 5}})
	if v, res := s.Read(0, 10, 6); res != ReadHit || v != 101 {
		t.Fatalf("Read(snap=6) after retention resumed = (%d, %v), want (101, hit)", v, res)
	}
}

func TestTrimRaisesHorizon(t *testing.T) {
	s := newTestStore(t, 1, 4)
	for ts := uint64(2); ts <= 20; ts += 2 {
		s.Publish(ts, []Version{{Stripe: 0, Addr: ts, Val: ts, From: ts - 1}})
	}
	if r := s.Retained(); r > 4 {
		t.Fatalf("retained %d versions over budget 4 with no pinning snapshot", r)
	}
	if h := s.Horizon(0); h == 0 {
		t.Fatal("trimming dropped versions without raising the horizon")
	}
	// A snapshot below the horizon must be told it is too old (address
	// choice: one with a written record newer than the snapshot).
	if _, res := s.Read(0, 2, 1); res != ReadTooOld {
		t.Fatalf("Read below the trim horizon = %v, want too-old", res)
	}
	if _, tr := s.Counts(); tr == 0 {
		t.Fatal("trimmed counter did not advance")
	}
}

func TestActiveSnapshotPinsVersions(t *testing.T) {
	s := New(Config{Words: 1 << 16, Shards: 1, Budget: 4})
	s.EnsureSlots(1)
	s.Enter(0, 3) // active snapshot at ts 3
	for ts := uint64(4); ts <= 12; ts++ {
		s.Publish(ts, []Version{{Stripe: 0, Addr: ts, Val: ts, From: ts - 1}})
	}
	// All versions have until > 3, so within the hard cap none may be
	// dropped: the snapshot still needs them.
	if h := s.Horizon(0); h > 3 {
		t.Fatalf("horizon %d advanced past the active snapshot at 3", h)
	}
	if r := s.Retained(); r <= 4 {
		t.Fatalf("retained %d; expected overshoot above budget to protect the snapshot", r)
	}
	// Past the hard cap (4*budget) trimming proceeds anyway.
	for ts := uint64(13); ts <= 40; ts++ {
		s.Publish(ts, []Version{{Stripe: 0, Addr: ts, Val: ts, From: ts - 1}})
	}
	if r := s.Retained(); r > 4*4 {
		t.Fatalf("retained %d versions beyond the hard cap", r)
	}
	// Once the pinning snapshot moves far ahead, the next publication
	// trims back to budget.
	s.Enter(0, 1<<40)
	s.Publish(41, []Version{{Stripe: 0, Addr: 41, Val: 41, From: 40}})
	if r := s.Retained(); r > 4 {
		t.Fatalf("retained %d versions after the pinning snapshot left", r)
	}
}

func TestSetBudget(t *testing.T) {
	s := newTestStore(t, 1, 8)
	if err := s.SetBudget(0); err == nil {
		t.Fatal("SetBudget(0) accepted")
	}
	if err := s.SetBudget(MaxBudget + 1); err == nil {
		t.Fatal("SetBudget over MaxBudget accepted")
	}
	if err := s.SetBudget(2); err != nil {
		t.Fatal(err)
	}
	for ts := uint64(2); ts <= 10; ts++ {
		s.Publish(ts, []Version{{Stripe: 0, Addr: ts, Val: ts, From: ts - 1}})
	}
	if r := s.Retained(); r > 2 {
		t.Fatalf("retained %d versions over the shrunk budget 2", r)
	}
}

func TestReset(t *testing.T) {
	s := newTestStore(t, 2, 2)
	for ts := uint64(2); ts <= 10; ts++ {
		s.Publish(ts, []Version{{Stripe: ts % 2, Addr: ts, Val: ts, From: ts - 1}})
	}
	s.Reset()
	if r := s.Retained(); r != 0 {
		t.Fatalf("retained %d versions after Reset", r)
	}
	if h := s.Horizon(0); h != 0 {
		t.Fatalf("horizon %d after Reset, want 0", h)
	}
	// The written array survives the reset (wiping it would make the
	// stop-the-world pause O(arena)); a stale record can only describe a
	// word not written since, whose live value is valid at any new-epoch
	// snapshot — so this reads live-valid, never a retained interval.
	if _, res := s.Read(0, 4, 9); res != ReadLiveValid {
		t.Fatalf("Read after Reset = %v, want live-valid (stale written record)", res)
	}
	if _, res := s.Read(0, 4, 3); res != ReadMiss {
		t.Fatalf("Read after Reset below the stale record = %v, want miss", res)
	}
}

func TestConcurrentPublishRead(t *testing.T) {
	s := newTestStore(t, 4, 128)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ts := uint64(2)
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Publish(ts, []Version{{Stripe: uint64(w), Addr: uint64(w)*1000 + ts, Val: ts, From: ts - 1}})
				ts++
			}
		}(w)
	}
	for i := 0; i < 10000; i++ {
		s.Read(uint64(i%4), uint64(i%60000), uint64(i))
	}
	close(stop)
	wg.Wait()
}
