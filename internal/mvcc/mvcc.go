// Package mvcc implements the commit-ordered version sidecar that backs
// the STM's wait-free read-only snapshot mode.
//
// The single-version TL2/TinySTM design makes long read-only transactions
// the worst-case workload: every concurrent update invalidates their read
// set, so a full-table scan under write pressure aborts repeatedly and may
// starve. The sidecar removes that pathology the way dynamic-multiversion
// systems (Multiverse) do: committing update transactions publish the
// values they supersede — pre-images — tagged with the commit-timestamp
// interval during which each value was current. A snapshot reader picks a
// start timestamp S once and then serves every read either from the live
// word or from the newest retained version whose validity interval
// contains S. No read set, no validation, no aborts — unless S falls
// behind the retained horizon.
//
// Two structures carry the load:
//
//   - written: a flat array with one word per arena word holding the
//     commit timestamp of the address's last transactional write (its
//     birth, for freshly allocated words). It answers the dominant
//     snapshot-read question — "is the live value still the value at S?"
//     — with one lock-free atomic load, even when a NEIGHBOR under the
//     same lock stripe has pushed the stripe version past S. It also
//     gives publishers the exact validity start of each pre-image.
//   - per-stripe shards of retained pre-images: a FIFO dequeue in
//     publication order (bounded by a live-tunable version budget) plus a
//     per-address chain (each entry links its predecessor), so a stale
//     read walks only that address's versions, newest first. Only reads
//     of addresses actually overwritten since the snapshot take the
//     shard lock — work proportional to true conflicts.
//
// Trimming is epoch-based via reclaim.SnapshotRegistry: versions still
// inside an active snapshot's window are kept while the shard is below a
// hard cap, and every dropped version raises the shard's horizon so a
// reader that could have needed it fails fast with a snapshot-too-old
// verdict instead of reading a gap. When NO snapshot is registered at
// all, publishers skip version retention entirely and only maintain the
// written array — a snapshot beginning mid-skip may lose its first
// attempt to a conservative miss, never read wrong data.
package mvcc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"tinystm/internal/reclaim"
)

// Version is one pre-image delivered by a committing update transaction:
// Val was the committed value of Addr until the publishing commit's
// timestamp superseded it (the validity start is recovered exactly from
// the written array).
type Version struct {
	// Stripe is the lock index covering Addr; it selects the shard.
	Stripe uint64
	// Addr is the word address.
	Addr uint64
	// Val is the superseded value.
	Val uint64
	// From is the version the covering stripe carried when the publisher
	// acquired it: a conservative lower bound on when Val became current,
	// used only when the written array has no exact record yet.
	From uint64
	// Birth marks a freshly allocated word the publishing commit
	// populated: there is no pre-image to retain (the prior bits belong
	// to no reachable object), but recording the birth timestamp in the
	// written array matters — it is the exact validity start of the
	// address's first supersede, and it proves to readers that the live
	// value covers any snapshot at or after it.
	Birth bool
}

// entry is one retained version: Val was current for snapshots in
// [from, until). prev is the absolute dequeue position of the previous
// entry for the same address (-1 when none), forming the per-address
// lookup chain.
type entry struct {
	addr  uint64
	val   uint64
	from  uint64
	until uint64
	prev  int64
}

// shard is one independently locked slice of the version store.
type shard struct {
	mu sync.Mutex
	// entries[head:] are the live versions in publication order. The
	// dequeue position of entries[i] is absBase+i — absolute positions
	// are stable across trims and compactions, so the prev chains and
	// the newest map never need rewriting. Trims advance head; the slice
	// is compacted only when the dead prefix outgrows the live half
	// (amortized O(1) per trimmed version — an explicit copy per trim
	// would go quadratic whenever a pinning snapshot holds a shard at
	// its hard cap).
	entries []entry
	head    int
	absBase int64
	// horizon is the trim watermark: a snapshot with start < horizon may
	// be missing a version this shard already dropped and must abort
	// (snapshot too old). Monotone non-decreasing between Resets.
	horizon uint64
	// newest maps an address to the absolute position of its newest
	// retained entry (the chain head). Advisory: a missing address reads
	// as a conservative miss, so the map is cleared wholesale when it
	// outgrows its cap and on Reset.
	newest map[uint64]int64
	// minVer/minVal/minOK cache the snapshot registry's Min() keyed by
	// its change counter, so steady-state trimming does not take the
	// registry lock on every publication.
	minVer uint64
	minVal uint64
	minOK  bool
}

// Config parameterizes a Store.
type Config struct {
	// Words is the arena size the sidecar covers (mem.Space.Cap): the
	// written array holds one timestamp per word. Required.
	Words int
	// Shards is the number of independently locked version-store shards
	// (power of two). Default 64.
	Shards int
	// Budget is the per-shard retained-version budget. Trimming starts
	// once a shard exceeds it; the hard cap (budget * hardCapMult) bounds
	// the overshoot granted to versions pinned by active snapshots.
	// Default 512. Live-tunable via SetBudget.
	Budget int
}

const (
	defaultShards = 64
	defaultBudget = 512
	// hardCapMult bounds how far a shard may overshoot its budget to
	// protect versions an active snapshot still needs; past it, trimming
	// proceeds anyway and the snapshot aborts too-old on its next miss.
	hardCapMult = 4
	// mapCapMult bounds each shard's newest map at mapCapMult*budget
	// distinct addresses (minimum mapCapFloor); overflow clears it — the
	// index is an optimization, not a correctness requirement.
	mapCapMult  = 8
	mapCapFloor = 4096
	// MaxBudget bounds SetBudget (and the tuner's walk): past a point a
	// bigger buffer only adds memory.
	MaxBudget = 1 << 20
)

// Store is the sharded version sidecar. All methods are safe for
// concurrent use.
type Store struct {
	// written[a] is the commit timestamp of the last transactional write
	// to arena word a (0: never written since the last Reset). Lock-free
	// on both sides; the one word per arena word is the sidecar's main
	// memory cost, paid only when Config.Snapshots is on.
	written []atomic.Uint64

	shards []shard
	mask   uint64
	budget atomic.Int64

	published atomic.Uint64
	trimmed   atomic.Uint64

	reg reclaim.SnapshotRegistry
}

// New builds a Store with cfg (zero fields replaced by defaults).
func New(cfg Config) *Store {
	if cfg.Words <= 0 {
		panic("mvcc: Config.Words is required")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = defaultShards
	}
	if cfg.Shards&(cfg.Shards-1) != 0 {
		panic(fmt.Sprintf("mvcc: Shards (%d) must be a power of two", cfg.Shards))
	}
	if cfg.Budget <= 0 {
		cfg.Budget = defaultBudget
	}
	s := &Store{
		written: make([]atomic.Uint64, cfg.Words),
		shards:  make([]shard, cfg.Shards),
		mask:    uint64(cfg.Shards - 1),
	}
	s.budget.Store(int64(cfg.Budget))
	return s
}

// Budget returns the current per-shard version budget.
func (s *Store) Budget() int { return int(s.budget.Load()) }

// SetBudget replaces the per-shard version budget on the live store.
// Shrinking takes effect lazily: each shard trims down to the new budget
// on its next publication.
func (s *Store) SetBudget(n int) error {
	if n < 1 || n > MaxBudget {
		return fmt.Errorf("mvcc: budget (%d) out of range [1,%d]", n, MaxBudget)
	}
	s.budget.Store(int64(n))
	return nil
}

// Counts returns the lifetime published/trimmed version totals.
func (s *Store) Counts() (published, trimmed uint64) {
	return s.published.Load(), s.trimmed.Load()
}

// Retained reports the number of versions currently held across all
// shards (diagnostics, leak tests).
func (s *Store) Retained() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.entries) - sh.head
		sh.mu.Unlock()
	}
	return n
}

// Enter registers an active snapshot at timestamp ts for descriptor slot.
func (s *Store) Enter(slot int, ts uint64) { s.reg.Enter(slot, ts) }

// Leave clears slot's snapshot registration. Idempotent; Tx.Release calls
// it defensively so a recycled descriptor can never pin the horizon.
func (s *Store) Leave(slot int) { s.reg.Leave(slot) }

// EnsureSlots sizes the snapshot registry for at least n descriptor slots.
func (s *Store) EnsureSlots(n int) { s.reg.Ensure(n) }

// ActiveSnapshots reports how many snapshots are currently registered.
func (s *Store) ActiveSnapshots() int { return s.reg.Live() }

// MinSnapshot returns the oldest registered snapshot (tests).
func (s *Store) MinSnapshot() (uint64, bool) { return s.reg.Min() }

// Publish records the pre-images superseded by a commit at timestamp ts.
// Callers MUST deliver versions while still holding the covering write
// locks (after writing values to memory, before releasing the locks at
// ts): per-stripe publication then follows lock-acquisition order, which
// keeps each address's written record, prev chain and `until` sequence
// monotone, and means a snapshot reader that observes a released stripe
// version newer than its snapshot will always find the matching
// pre-image already retained (or a raised horizon), never a publication
// still in flight.
//
// While no snapshot is registered, only the written array is maintained:
// versions whose whole validity window nobody can ever observe are not
// worth retaining, and the skip keeps the no-reader overhead of an
// update commit at one atomic store per written word. A snapshot racing
// its registration against the skip decision can miss at most the racy
// commits' versions and restarts once on a fresh snapshot.
func (s *Store) Publish(ts uint64, vs []Version) {
	if len(vs) == 0 {
		return
	}
	if s.reg.Live() == 0 {
		for i := range vs {
			s.written[vs[i].Addr].Store(ts)
		}
		return
	}
	// Group consecutive same-shard versions under one lock acquisition:
	// writes to one data structure cluster in nearby stripes.
	i := 0
	for i < len(vs) {
		if vs[i].Birth {
			// Births never retain an entry; the written record alone
			// carries the information.
			s.written[vs[i].Addr].Store(ts)
			i++
			continue
		}
		si := vs[i].Stripe & s.mask
		j := i + 1
		for j < len(vs) && !vs[j].Birth && vs[j].Stripe&s.mask == si {
			j++
		}
		sh := &s.shards[si]
		sh.mu.Lock()
		if sh.newest == nil {
			sh.newest = make(map[uint64]int64, 64)
		}
		mapCap := int(s.budget.Load()) * mapCapMult
		if mapCap < mapCapFloor {
			mapCap = mapCapFloor
		}
		for k := i; k < j; k++ {
			v := &vs[k]
			// The written record is the exact validity start of this
			// pre-image; the stripe version is the conservative fallback
			// for addresses last written before the sidecar existed.
			from := v.From
			if w := s.written[v.Addr].Load(); w != 0 && w < from {
				from = w
			}
			prev := int64(-1)
			if abs, ok := sh.newest[v.Addr]; ok {
				prev = abs
			} else if len(sh.newest) >= mapCap {
				clear(sh.newest)
			}
			s.written[v.Addr].Store(ts)
			if from >= ts {
				// An empty validity window serves no snapshot.
				continue
			}
			abs := sh.absBase + int64(len(sh.entries))
			sh.entries = append(sh.entries, entry{addr: v.Addr, val: v.Val, from: from, until: ts, prev: prev})
			sh.newest[v.Addr] = abs
			s.published.Add(1)
		}
		s.trimLocked(sh)
		sh.mu.Unlock()
		i = j
	}
}

// trimLocked enforces the budget on one shard. Caller holds sh.mu.
func (s *Store) trimLocked(sh *shard) {
	budget := int(s.budget.Load())
	if len(sh.entries)-sh.head <= budget {
		return
	}
	// The oldest-active-snapshot question is answered from the shard's
	// cache while the registry's change counter is unchanged: trimming
	// runs on every over-budget publication and must not funnel all
	// publishers through the registry lock.
	if ver := s.reg.Version(); ver != sh.minVer {
		sh.minVal, sh.minOK = s.reg.Min()
		sh.minVer = ver
	}
	minSnap, anyActive := sh.minVal, sh.minOK
	hardCap := budget * hardCapMult
	drop := 0
	for len(sh.entries)-sh.head-drop > budget {
		e := &sh.entries[sh.head+drop]
		if anyActive && e.until > minSnap && len(sh.entries)-sh.head-drop <= hardCap {
			// Still inside an active snapshot's window: keep it while the
			// overshoot stays bounded. Past the hard cap the snapshot
			// loses — it will abort too-old and retry fresh.
			break
		}
		if e.until > sh.horizon {
			sh.horizon = e.until
		}
		drop++
	}
	if drop > 0 {
		sh.head += drop
		s.trimmed.Add(uint64(drop))
		if live := len(sh.entries) - sh.head; sh.head > live {
			// Compact once the dead prefix dominates; each live entry is
			// moved at most once per halving. Absolute positions are
			// preserved by advancing absBase.
			sh.absBase += int64(sh.head)
			n := copy(sh.entries, sh.entries[sh.head:])
			sh.entries = sh.entries[:n]
			sh.head = 0
		}
	}
}

// ReadResult classifies one sidecar lookup.
type ReadResult int

const (
	// ReadHit: the returned value was current at the snapshot.
	ReadHit ReadResult = iota
	// ReadLiveValid: the address's last write provably predates the
	// snapshot — its CURRENT live value was already current at the
	// snapshot, and the caller may serve it from memory (re-validating
	// the lock word). This is the lock-free common case when only a
	// NEIGHBOR under the same stripe moved the stripe version.
	ReadLiveValid
	// ReadMiss: the value current at the snapshot was never retained
	// (written before the sidecar could record it, or superseded while
	// no snapshot was registered). On an unlocked stripe this is
	// persistent — publication precedes lock release, so waiting cannot
	// help; behind an in-flight writer the pre-image may still arrive.
	ReadMiss
	// ReadTooOld: the shard has trimmed past the snapshot; the version —
	// if one ever existed — may be gone and the snapshot must restart.
	ReadTooOld
)

// String names the outcome (tests, diagnostics).
func (r ReadResult) String() string {
	switch r {
	case ReadHit:
		return "hit"
	case ReadLiveValid:
		return "live-valid"
	case ReadMiss:
		return "miss"
	case ReadTooOld:
		return "too-old"
	default:
		return fmt.Sprintf("ReadResult(%d)", int(r))
	}
}

// Read serves a snapshot read of addr at snapshot snap. The dominant
// outcome — the address itself has not been written past snap, whatever
// its stripe version says — is decided by one lock-free atomic load of
// the written record; only reads of addresses genuinely overwritten
// since the snapshot take the shard lock and walk the address's chain,
// newest first.
func (s *Store) Read(stripe, addr, snap uint64) (val uint64, res ReadResult) {
	if w := s.written[addr].Load(); w != 0 && w <= snap {
		// Last write at w <= snap and (per-address monotonicity) nothing
		// newer at the moment of the load: the live word is the value at
		// snap. The caller re-validates the lock word, which catches a
		// supersede racing this decision.
		return 0, ReadLiveValid
	}
	sh := &s.shards[stripe&s.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if snap < sh.horizon {
		return 0, ReadTooOld
	}
	abs, ok := sh.newest[addr]
	if !ok {
		return 0, ReadMiss
	}
	for ; abs >= sh.absBase+int64(sh.head); abs = sh.entries[abs-sh.absBase].prev {
		e := &sh.entries[abs-sh.absBase]
		if e.from <= snap {
			if snap < e.until {
				return e.val, ReadHit
			}
			// Per-address untils are monotone: older entries end even
			// earlier, so no interval can cover snap.
			break
		}
	}
	return 0, ReadMiss
}

// Horizon returns the trim watermark of the shard covering stripe (tests).
func (s *Store) Horizon(stripe uint64) uint64 {
	sh := &s.shards[stripe&s.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.horizon
}

// Reset drops every retained version and rewinds all horizons. Only
// callable at a global quiescence point (the STM's freeze barrier):
// clock roll-over and reconfiguration rewind the clock, making old-epoch
// version INTERVALS meaningless, and no snapshot can be active behind
// the barrier.
//
// The written array is deliberately NOT wiped — that would make every
// Reconfigure's stop-the-world pause O(arena words) instead of
// O(shards+budget) — because stale records are harmless: every
// transactional write of the new epoch refreshes its word's record
// (retention-skip and birth paths included), so a stale record can only
// describe a word NOT written since the reset. Such a word's live value
// has been its committed value since before the barrier, which makes it
// valid at every new-epoch snapshot: a stale `w <= snap` live-valid
// verdict serves a correct value, a stale `w > snap` just falls through
// to the conservative miss path, and a stale `w` tightening a first
// new-epoch supersede's interval only extends it over a span the
// superseded value provably covered.
func (s *Store) Reset() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.entries = sh.entries[:0]
		sh.head = 0
		sh.absBase = 0
		sh.horizon = 0
		clear(sh.newest) // old-epoch chain positions are gone with the entries
		sh.mu.Unlock()
	}
}
