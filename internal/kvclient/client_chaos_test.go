package kvclient_test

// Chaos tests: a real kvserver behind an internal/netchaos proxy, the
// client talking through the proxy. These pin the client's failure
// semantics — pending calls fail fast when the connection dies
// mid-pipeline, op timeouts fire against stalls, CRC catches corruption,
// and the breaker walks a full open → half-open → closed cycle across a
// blackout.

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"tinystm/internal/kvclient"
	"tinystm/internal/kvserver"
	"tinystm/internal/netchaos"
	"tinystm/internal/resilience"
)

// chaosHarness is a kvserver proto listener fronted by a netchaos proxy.
type chaosHarness struct {
	srv   *kvserver.Server
	proxy *netchaos.Proxy
}

func startChaos(t *testing.T, chaos netchaos.Config) *chaosHarness {
	t.Helper()
	srv, err := kvserver.New(kvserver.Config{SpaceWords: 1 << 16, Snapshots: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go srv.ServeProto(lis)
	chaos.Target = lis.Addr().String()
	proxy, err := netchaos.New(chaos)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Close)
	return &chaosHarness{srv: srv, proxy: proxy}
}

func (h *chaosHarness) client(t *testing.T, opts kvclient.Options) *kvclient.Client {
	t.Helper()
	c := kvclient.New(h.proxy.Addr(), opts)
	t.Cleanup(c.Close)
	return c
}

// waitRecovered loops an op until the client works again (each failed
// call redials), failing the test if it never does.
func waitRecovered(t *testing.T, c *kvclient.Client) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := c.Put(999, 999); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestResetMidPipelineFailsPendingFast is the pinning test for the
// pending-map fix: kill the connection with a pipeline full of in-flight
// calls and every one of them must return promptly (ErrConn), no caller
// may hang, and the client must recover on redial.
func TestResetMidPipelineFailsPendingFast(t *testing.T) {
	// Responses stall for a long time, so issued calls pile up pending.
	h := startChaos(t, netchaos.Config{Seed: 7, StallEvery: 256, StallFor: 30 * time.Second})
	c := h.client(t, kvclient.Options{})

	const callers = 24
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := c.Put(uint64(i), uint64(i))
			errs <- err
		}(i)
	}
	// Give the pipeline time to fill and hit the stall, then sever every
	// link mid-flight.
	time.Sleep(300 * time.Millisecond)
	h.proxy.KillAll()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("pending calls hung after the connection died mid-pipeline")
	}
	close(errs)
	connErrs := 0
	for err := range errs {
		if err == nil {
			continue // raced ahead of the stall threshold
		}
		if !errors.Is(err, kvclient.ErrConn) {
			t.Fatalf("pending call failed with %v, want ErrConn", err)
		}
		connErrs++
	}
	if connErrs == 0 {
		t.Fatal("no pending call observed the reset; stall never engaged")
	}
	waitRecovered(t, c)
}

// TestOpTimeoutFiresAgainstStall checks the client-side deadline: a
// stalled response turns into ErrDeadline after OpTimeout, not a hang.
func TestOpTimeoutFiresAgainstStall(t *testing.T) {
	h := startChaos(t, netchaos.Config{Seed: 3, StallEvery: 128, StallFor: 20 * time.Second})
	c := h.client(t, kvclient.Options{OpTimeout: 200 * time.Millisecond})

	sawDeadline := false
	for i := 0; i < 200 && !sawDeadline; i++ {
		start := time.Now()
		_, err := c.Put(uint64(i), 1)
		if errors.Is(err, kvclient.ErrDeadline) {
			if d := time.Since(start); d > 2*time.Second {
				t.Fatalf("deadline error took %v, want ~200ms", d)
			}
			sawDeadline = true
		} else if err != nil && !errors.Is(err, kvclient.ErrConn) {
			t.Fatal(err)
		}
	}
	if !sawDeadline {
		t.Fatal("200 ops through a stalling proxy and no ErrDeadline")
	}
}

// TestCorruptionIsCaughtByCRC runs traffic through a byte-flipping proxy:
// every corruption must surface as an error — ErrConn when the CRC
// refuses the frame, ErrDeadline when the flip hit a length prefix and
// wedged the stream mid-frame (the op timeout then kills the
// connection) — never as silently wrong data.
func TestCorruptionIsCaughtByCRC(t *testing.T) {
	h := startChaos(t, netchaos.Config{Seed: 11, CorruptEvery: 512})
	c := h.client(t, kvclient.Options{OpTimeout: 500 * time.Millisecond})

	sawConn := false
	for i := 0; i < 500; i++ {
		key := uint64(i)
		if _, err := c.Put(key, key*3); err != nil {
			if !errors.Is(err, kvclient.ErrConn) && !errors.Is(err, kvclient.ErrDeadline) {
				t.Fatalf("op failed with %v, want ErrConn or ErrDeadline", err)
			}
			if errors.Is(err, kvclient.ErrConn) {
				sawConn = true
			}
			continue
		}
		val, found, err := c.Get(key)
		if err != nil {
			if !errors.Is(err, kvclient.ErrConn) && !errors.Is(err, kvclient.ErrDeadline) {
				t.Fatalf("Get failed with %v, want ErrConn or ErrDeadline", err)
			}
			if errors.Is(err, kvclient.ErrConn) {
				sawConn = true
			}
			continue
		}
		if !found || val != key*3 {
			t.Fatalf("silent corruption: Get(%d) = (%d, %v), want %d", key, val, found, key*3)
		}
	}
	if !sawConn {
		t.Fatal("byte flips every ~512 bytes never surfaced as a connection error")
	}
	if h.proxy.Stats().Corrupted == 0 {
		t.Fatal("proxy claims it corrupted nothing")
	}
}

// TestRetriesAbsorbResets turns on the retry budget against a resetting
// proxy: individual attempts die mid-pipeline but the calls themselves
// succeed, with the retry count bounded by the budget.
func TestRetriesAbsorbResets(t *testing.T) {
	h := startChaos(t, netchaos.Config{Seed: 5, ResetEvery: 4096})
	budget := resilience.NewRetryBudget(nil)
	c := h.client(t, kvclient.Options{
		Retry: &resilience.RetryConfig{MaxAttempts: 5, BaseBackoff: time.Millisecond, Budget: budget},
	})

	const callers, opsEach = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for w := 0; w < callers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				key := uint64(w)<<32 | uint64(i)
				if _, err := c.Put(key, key); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatalf("retries failed to absorb resets: %v", err)
	}
	st := c.ResilienceStats()
	if st.Retries == 0 {
		t.Fatal("resets every ~4KiB and zero retries recorded")
	}
	if st.Budget.Denied > 0 && st.Retries == 0 {
		t.Fatal("budget denied retries before any were spent")
	}
	if h.proxy.Stats().Resets == 0 {
		t.Fatal("proxy claims it reset nothing")
	}
}

// TestBreakerFullCycleOverBlackout drives the breaker through a complete
// open → half-open → closed cycle with a real blackout window: the
// backend goes dark (accept-then-reset), the breaker opens and fails
// calls locally, the backend recovers, the probe closes it again.
func TestBreakerFullCycleOverBlackout(t *testing.T) {
	h := startChaos(t, netchaos.Config{Seed: 9})
	c := h.client(t, kvclient.Options{
		Breaker: &resilience.BreakerConfig{FailureThreshold: 3, Cooldown: 100 * time.Millisecond},
	})

	// Healthy baseline.
	if _, err := c.Put(1, 1); err != nil {
		t.Fatal(err)
	}

	h.proxy.SetBlackout(true)
	// Every call now dies (live conn severed, redials reset on accept);
	// after FailureThreshold deaths the breaker opens and calls start
	// failing locally without touching the network.
	sawOpen := false
	for i := 0; i < 200 && !sawOpen; i++ {
		_, err := c.Put(2, 2)
		if errors.Is(err, kvclient.ErrBreakerOpen) {
			sawOpen = true
		} else if err == nil {
			t.Fatal("write succeeded through a blackout")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !sawOpen {
		t.Fatal("breaker never opened against a blacked-out backend")
	}

	h.proxy.SetBlackout(false)
	// Once the cooldown lapses, one probe redials, succeeds, and closes
	// the breaker.
	waitRecovered(t, c)

	st := c.ResilienceStats()
	if st.Breaker.Opens == 0 || st.Breaker.Probes == 0 || st.Breaker.Closes == 0 {
		t.Fatalf("breaker counters %+v, want a full open/probe/close cycle", st.Breaker)
	}
	if st.BreakerState != "closed" {
		t.Fatalf("breaker state %q after recovery, want closed", st.BreakerState)
	}
	// The cycle must not have poisoned normal operation.
	if val, found, err := c.Get(1); err != nil || !found || val != 1 {
		t.Fatalf("post-cycle Get = (%d, %v, %v), want (1, true)", val, found, err)
	}
}

// TestPartialWritesReassemble runs the full protocol through a 3-byte
// chunker: framing must reassemble regardless of read boundaries.
func TestPartialWritesReassemble(t *testing.T) {
	h := startChaos(t, netchaos.Config{Seed: 2, ChunkBytes: 3})
	c := h.client(t, kvclient.Options{})
	for i := uint64(0); i < 32; i++ {
		if _, err := c.Put(i, i+100); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 32; i++ {
		val, found, err := c.Get(i)
		if err != nil || !found || val != i+100 {
			t.Fatalf("Get(%d) = (%d, %v, %v) through chunked transport", i, val, found, err)
		}
	}
}
