// Package kvclient is the pipelined client for the kvproto binary
// protocol. One Client owns one TCP connection and multiplexes any
// number of concurrent callers over it: each call claims a request id,
// registers a completion channel, and the shared writer/reader pair
// streams frames both ways — thousands of requests in flight, responses
// matched by id as they complete out of order. This is what makes the
// binary surface measure the STM instead of connection handling: no
// per-request dial, no per-request goroutine on the server's HTTP mux,
// no JSON.
//
// The client redials lazily: a broken connection fails every in-flight
// call with ErrConn, and the next call dials fresh (one dial at a time —
// concurrent callers wait for the single in-flight dial instead of
// stampeding the server). Status-level unavailability (WAL replay,
// degraded mode, admission refusal, brownout) comes back as
// ErrUnavailable — retryable, the 503 analogue — while StatusError is
// terminal.
//
// The client carries the full client-side resilience stack, all opt-in
// via Options: per-op deadlines propagated on the wire (OpTimeout), a
// token-bucket retry budget shared across the connection (Retry), and a
// circuit breaker in front of redial (Breaker). The breaker counts
// failed dials AND connections dying under the client — a breaker that
// only watched dials would never open against a proxy that accepts and
// then resets — and any decoded response closes it.
package kvclient

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"tinystm/internal/kvproto"
	"tinystm/internal/resilience"
)

// Sentinel errors. Wrapped errors carry detail; test with errors.Is.
var (
	// ErrUnavailable is a server-side StatusUnavailable: retry later.
	ErrUnavailable = errors.New("kvclient: server unavailable")
	// ErrConn is a transport failure: the connection died with calls in
	// flight. The calls' outcomes are unknown (a mutation may or may not
	// have committed); the client redials on the next call.
	ErrConn = errors.New("kvclient: connection failed")
	// ErrClosed reports a call on a Close()d client.
	ErrClosed = errors.New("kvclient: client closed")
	// ErrDeadline reports an op that exceeded its OpTimeout — either
	// client-side (no response in time; outcome unknown) or server-side
	// (the server shed it before running it; it did NOT execute).
	ErrDeadline = errors.New("kvclient: deadline exceeded")
	// ErrBreakerOpen reports a call refused locally because the circuit
	// breaker is open: the backend looked dead recently and the cooldown
	// has not elapsed. Nothing was sent.
	ErrBreakerOpen = errors.New("kvclient: circuit breaker open")
)

// Retryable is the default retry classification: transport failures,
// server unavailability and a locally-open breaker are worth retrying
// (the breaker admits its probe when the cooldown lapses); deadline
// errors are not — the op's time budget is already spent.
func Retryable(err error) bool {
	return errors.Is(err, ErrUnavailable) || errors.Is(err, ErrConn) || errors.Is(err, ErrBreakerOpen)
}

// Options tune a Client.
type Options struct {
	// MaxInflight bounds concurrently outstanding requests on the
	// connection (default 1024). Callers past the bound block.
	MaxInflight int
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// OpTimeout is the per-op deadline (0: none). It is enforced
	// client-side AND propagated on the wire, so the server sheds the op
	// wherever it is queued when the budget runs out. A client-side
	// timeout also fails the connection (in-flight siblings get ErrConn):
	// a stream that missed a deadline may be wedged mid-frame forever.
	OpTimeout time.Duration
	// Retry enables automatic retries of Retryable errors under a
	// token-bucket budget (nil: no retries). A nil Retry.Retryable takes
	// the package's Retryable; set Retry.Budget to share one budget
	// across clients.
	Retry *resilience.RetryConfig
	// Breaker enables a circuit breaker in front of redial (nil: none).
	Breaker *resilience.BreakerConfig
}

func (o Options) withDefaults() Options {
	if o.MaxInflight <= 0 {
		o.MaxInflight = 1024
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	return o
}

// Client is a pipelined kvproto client. Safe for concurrent use; the
// zero value is not usable, call New.
type Client struct {
	addr string
	opts Options

	// inflight is the pipelining bound, shared across redials.
	inflight chan struct{}

	retrier *resilience.Retrier
	breaker *resilience.Breaker

	//stm:allow-atomic client-side connection bookkeeping; no STM in this process
	mu      sync.Mutex
	conn    *clientConn // current connection, nil before first use / after failure
	dialing *dialState  // single-flight dial in progress, nil otherwise
	nextID  uint64
	closed  bool
}

// dialState is one single-flight dial: concurrent callers wait on done
// and read conn/err afterwards (written before close(done)).
type dialState struct {
	done chan struct{}
	conn *clientConn
	err  error
}

// clientConn is one connection generation: its socket, writer queue and
// pending-call table die together, so a redial can never cross-deliver
// a stale response to a new call.
type clientConn struct {
	c      net.Conn
	out    chan []byte
	dead   chan struct{} // closed by fail(); unblocks the writer and senders
	onFail func(error)   // breaker notification hook, called once

	//stm:allow-atomic guards the pending-call table on the client side
	mu      sync.Mutex
	pending map[uint64]chan outcome
	err     error // set once broken; guards against late registrations
}

// outcome is what a waiting call receives.
type outcome struct {
	resp *kvproto.Response
	err  error
}

// New builds a client for addr ("host:port"). The connection is dialed
// lazily on first use.
func New(addr string, opts Options) *Client {
	opts = opts.withDefaults()
	c := &Client{
		addr:     addr,
		opts:     opts,
		inflight: make(chan struct{}, opts.MaxInflight),
	}
	if opts.Retry != nil {
		rc := *opts.Retry
		if rc.Retryable == nil {
			rc.Retryable = Retryable
		}
		c.retrier = resilience.NewRetrier(rc)
	}
	if opts.Breaker != nil {
		c.breaker = resilience.NewBreaker(opts.Breaker)
	}
	return c
}

// Close fails in-flight calls and tears down the connection. The client
// cannot be reused. Close never blocks behind an in-flight dial; the
// dialer notices and discards its fresh connection.
func (c *Client) Close() {
	c.mu.Lock()
	c.closed = true
	conn := c.conn
	c.conn = nil
	c.mu.Unlock()
	if conn != nil {
		conn.fail(ErrClosed)
	}
}

// getConn returns the live connection, dialing when necessary. Dials
// are single-flight: one caller dials, everyone else waits for its
// result — a dead server costs one connection attempt per redial, not
// one per blocked caller.
func (c *Client) getConn() (*clientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if c.conn != nil {
		conn := c.conn
		c.mu.Unlock()
		return conn, nil
	}
	if st := c.dialing; st != nil {
		c.mu.Unlock()
		<-st.done
		return st.conn, st.err
	}
	st := &dialState{done: make(chan struct{})}
	c.dialing = st
	c.mu.Unlock()

	conn, err := c.dial()

	c.mu.Lock()
	c.dialing = nil
	closedNow := c.closed
	if err == nil && !closedNow {
		c.conn = conn
	}
	c.mu.Unlock()
	if err == nil && closedNow {
		conn.fail(ErrClosed)
		conn, err = nil, ErrClosed
	}
	st.conn, st.err = conn, err
	close(st.done)
	return conn, err
}

// dial establishes one connection generation, consulting the breaker.
func (c *Client) dial() (*clientConn, error) {
	if c.breaker != nil && !c.breaker.Allow() {
		return nil, fmt.Errorf("%w: %s", ErrBreakerOpen, c.addr)
	}
	sock, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		if c.breaker != nil {
			c.breaker.Failure()
		}
		return nil, fmt.Errorf("%w: dial %s: %v", ErrConn, c.addr, err)
	}
	conn := &clientConn{
		c:       sock,
		out:     make(chan []byte, c.opts.MaxInflight),
		dead:    make(chan struct{}),
		pending: make(map[uint64]chan outcome),
		onFail: func(err error) {
			// A connection dying under us is a breaker failure; our own
			// Close is not.
			if c.breaker != nil && !errors.Is(err, ErrClosed) {
				c.breaker.Failure()
			}
		},
	}
	go conn.writeLoop()
	go func() {
		conn.readLoop()
		// The connection is dead; detach it so the next call redials.
		c.mu.Lock()
		if c.conn == conn {
			c.conn = nil
		}
		c.mu.Unlock()
	}()
	return conn, nil
}

// writeLoop streams queued frames out, flushing only when the queue runs
// dry: pipelined callers share flushes, a lone caller flushes at once.
func (cc *clientConn) writeLoop() {
	bw := bufio.NewWriterSize(cc.c, 64<<10)
	for {
		var frame []byte
		select {
		case frame = <-cc.out:
		case <-cc.dead:
			return
		}
		if _, err := bw.Write(frame); err != nil {
			cc.fail(fmt.Errorf("%w: write: %v", ErrConn, err))
			return
		}
		if len(cc.out) == 0 {
			if err := bw.Flush(); err != nil {
				cc.fail(fmt.Errorf("%w: flush: %v", ErrConn, err))
				return
			}
		}
	}
}

// readLoop matches responses to waiting calls by id until the stream
// breaks, then fails everything still pending.
func (cc *clientConn) readLoop() {
	var buf []byte
	for {
		payload, err := kvproto.ReadFrame(cc.c, buf)
		if err != nil {
			cc.fail(fmt.Errorf("%w: read: %v", ErrConn, err))
			return
		}
		buf = payload
		resp, err := kvproto.DecodeResponse(payload)
		if err != nil {
			cc.fail(fmt.Errorf("%w: decode: %v", ErrConn, err))
			return
		}
		cc.mu.Lock()
		ch, ok := cc.pending[resp.ID]
		if ok {
			delete(cc.pending, resp.ID)
		}
		cc.mu.Unlock()
		if ok {
			ch <- outcome{resp: resp}
		}
	}
}

// fail breaks the connection once: closes the socket, fails every
// pending call, and poisons the table against late registrations. Every
// pending channel is buffered, so delivery never blocks and callers
// that already gave up (op timeout) cost nothing.
func (cc *clientConn) fail(err error) {
	cc.mu.Lock()
	if cc.err != nil {
		cc.mu.Unlock()
		return
	}
	cc.err = err
	pending := cc.pending
	cc.pending = nil
	cc.mu.Unlock()
	close(cc.dead)
	cc.c.Close()
	if cc.onFail != nil {
		cc.onFail(err)
	}
	for _, ch := range pending {
		ch <- outcome{err: err}
	}
}

// register claims a slot in the pending table; fails fast on a broken
// connection.
func (cc *clientConn) register(id uint64, ch chan outcome) error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.err != nil {
		return cc.err
	}
	cc.pending[id] = ch
	return nil
}

// roundTrip sends one request and waits for its response, retrying
// under the budget when configured. Concurrent roundTrips pipeline on
// the shared connection.
func (c *Client) roundTrip(req *kvproto.Request) (*kvproto.Response, error) {
	if c.retrier == nil {
		return c.attempt(req)
	}
	var resp *kvproto.Response
	err := c.retrier.Do(func() error {
		var aerr error
		resp, aerr = c.attempt(req)
		return aerr
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// attempt is one send/receive try. The req's ID is (re)assigned here, so
// a retried request is a fresh id on whatever connection is current.
func (c *Client) attempt(req *kvproto.Request) (*kvproto.Response, error) {
	c.inflight <- struct{}{}
	defer func() { <-c.inflight }()

	var timeout <-chan time.Time
	if c.opts.OpTimeout > 0 {
		req.TimeoutMs = resilience.TimeoutMs(c.opts.OpTimeout)
		timer := time.NewTimer(c.opts.OpTimeout)
		defer timer.Stop()
		timeout = timer.C
	}

	conn, err := c.getConn()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.nextID++
	req.ID = c.nextID
	c.mu.Unlock()

	payload, err := kvproto.AppendRequest(nil, req)
	if err != nil {
		return nil, err
	}
	frame, err := kvproto.AppendFrame(nil, payload)
	if err != nil {
		return nil, err
	}
	ch := make(chan outcome, 1)
	if err := conn.register(req.ID, ch); err != nil {
		return nil, err
	}
	// A dead connection has already delivered this call's failure to ch;
	// the select keeps the send from blocking on a writer that is gone.
	//
	// An op timeout fails the WHOLE connection, not just this call: the
	// stream is FIFO per direction, and a stream that did not deliver in
	// time may be wedged mid-frame forever (a corrupted length prefix
	// stalls ReadFrame indefinitely — the CRC only vets a frame once its
	// claimed length has arrived). Redial is cheap; trusting a stuck
	// stream is not.
	select {
	case conn.out <- frame:
	case <-conn.dead:
	case <-timeout:
		conn.fail(fmt.Errorf("%w: op timed out after %v before send; stream no longer trusted", ErrConn, c.opts.OpTimeout))
		return nil, fmt.Errorf("%w: %v elapsed before send", ErrDeadline, c.opts.OpTimeout)
	}
	var out outcome
	select {
	case out = <-ch:
	case <-timeout:
		conn.fail(fmt.Errorf("%w: op timed out after %v; stream no longer trusted", ErrConn, c.opts.OpTimeout))
		return nil, fmt.Errorf("%w: no response within %v", ErrDeadline, c.opts.OpTimeout)
	}
	if out.err != nil {
		return nil, out.err
	}
	// Any decoded response proves the server end-to-end healthy.
	if c.breaker != nil {
		c.breaker.Success()
	}
	switch out.resp.Status {
	case kvproto.StatusOK:
		return out.resp, nil
	case kvproto.StatusUnavailable:
		return nil, fmt.Errorf("%w: %s", ErrUnavailable, out.resp.Msg)
	case kvproto.StatusDeadlineExceeded:
		return nil, fmt.Errorf("%w: server shed: %s", ErrDeadline, out.resp.Msg)
	default:
		return nil, fmt.Errorf("kvclient: server error: %s", out.resp.Msg)
	}
}

// ResilienceStats snapshots the client's retry and breaker activity.
type ResilienceStats struct {
	// Retries counts retry attempts performed; Budget is the shared
	// bucket's state (zero when retries are off or budget-less).
	Retries uint64
	Budget  resilience.BudgetStats
	// Breaker is the transition counters and BreakerState the current
	// position ("" when no breaker is configured).
	Breaker      resilience.BreakerCounts
	BreakerState string
}

// ResilienceStats reports retry/breaker counters for summaries.
func (c *Client) ResilienceStats() ResilienceStats {
	var st ResilienceStats
	if c.retrier != nil {
		st.Retries = c.retrier.Retries()
		if b := c.opts.Retry.Budget; b != nil {
			st.Budget = b.Stats()
		}
	}
	if c.breaker != nil {
		st.Breaker = c.breaker.Counts()
		st.BreakerState = c.breaker.State().String()
	}
	return st
}

// Get reads one key.
func (c *Client) Get(key uint64) (val uint64, found bool, err error) {
	resp, err := c.roundTrip(&kvproto.Request{Op: kvproto.OpGet, Key: key})
	if err != nil {
		return 0, false, err
	}
	return resp.Val, resp.Found, nil
}

// Put upserts key; inserted reports whether it was absent.
func (c *Client) Put(key, val uint64) (inserted bool, err error) {
	resp, err := c.roundTrip(&kvproto.Request{Op: kvproto.OpPut, Key: key, Val: val})
	if err != nil {
		return false, err
	}
	return resp.OK, nil
}

// Delete removes key; found reports whether it existed.
func (c *Client) Delete(key uint64) (found bool, err error) {
	resp, err := c.roundTrip(&kvproto.Request{Op: kvproto.OpDelete, Key: key})
	if err != nil {
		return false, err
	}
	return resp.Found, nil
}

// CAS swaps key from old to new atomically.
func (c *Client) CAS(key, old, new uint64) (ok bool, err error) {
	resp, err := c.roundTrip(&kvproto.Request{Op: kvproto.OpCAS, Key: key, Old: old, Val: new})
	if err != nil {
		return false, err
	}
	return resp.OK, nil
}

// Add atomically adds delta to key (missing keys start at zero) and
// returns the new value.
func (c *Client) Add(key, delta uint64) (val uint64, err error) {
	resp, err := c.roundTrip(&kvproto.Request{Op: kvproto.OpAdd, Key: key, Val: delta})
	if err != nil {
		return 0, err
	}
	return resp.Val, nil
}

// Batch runs ops as one atomic transaction.
func (c *Client) Batch(ops []kvproto.BatchOp) ([]kvproto.BatchResult, error) {
	resp, err := c.roundTrip(&kvproto.Request{Op: kvproto.OpBatch, Ops: ops})
	if err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// Scan returns up to limit pairs (0: server default) plus the exact
// total key count and whether the walk ran as a snapshot.
func (c *Client) Scan(limit uint32) (pairs []kvproto.KV, total uint64, snapshot bool, err error) {
	resp, err := c.roundTrip(&kvproto.Request{Op: kvproto.OpScan, Limit: limit})
	if err != nil {
		return nil, 0, false, err
	}
	return resp.Pairs, resp.Total, resp.Snapshot, nil
}

// Stats fetches the server's core counters.
func (c *Client) Stats() (kvproto.Stats, error) {
	resp, err := c.roundTrip(&kvproto.Request{Op: kvproto.OpStats})
	if err != nil {
		return kvproto.Stats{}, err
	}
	return resp.Stats, nil
}
