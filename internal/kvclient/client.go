// Package kvclient is the pipelined client for the kvproto binary
// protocol. One Client owns one TCP connection and multiplexes any
// number of concurrent callers over it: each call claims a request id,
// registers a completion channel, and the shared writer/reader pair
// streams frames both ways — thousands of requests in flight, responses
// matched by id as they complete out of order. This is what makes the
// binary surface measure the STM instead of connection handling: no
// per-request dial, no per-request goroutine on the server's HTTP mux,
// no JSON.
//
// The client redials lazily: a broken connection fails every in-flight
// call with ErrConn, and the next call dials fresh. Status-level
// unavailability (WAL replay, degraded mode, admission refusal) comes
// back as ErrUnavailable — retryable, the 503 analogue — while
// StatusError is terminal.
package kvclient

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"tinystm/internal/kvproto"
)

// Sentinel errors. Wrapped errors carry detail; test with errors.Is.
var (
	// ErrUnavailable is a server-side StatusUnavailable: retry later.
	ErrUnavailable = errors.New("kvclient: server unavailable")
	// ErrConn is a transport failure: the connection died with calls in
	// flight. The calls' outcomes are unknown (a mutation may or may not
	// have committed); the client redials on the next call.
	ErrConn = errors.New("kvclient: connection failed")
	// ErrClosed reports a call on a Close()d client.
	ErrClosed = errors.New("kvclient: client closed")
)

// Options tune a Client.
type Options struct {
	// MaxInflight bounds concurrently outstanding requests on the
	// connection (default 1024). Callers past the bound block.
	MaxInflight int
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxInflight <= 0 {
		o.MaxInflight = 1024
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	return o
}

// Client is a pipelined kvproto client. Safe for concurrent use; the
// zero value is not usable, call New.
type Client struct {
	addr string
	opts Options

	// inflight is the pipelining bound, shared across redials.
	inflight chan struct{}

	//stm:allow-atomic client-side connection bookkeeping; no STM in this process
	mu     sync.Mutex
	conn   *clientConn // current connection, nil before first use / after failure
	nextID uint64
	closed bool
}

// clientConn is one connection generation: its socket, writer queue and
// pending-call table die together, so a redial can never cross-deliver
// a stale response to a new call.
type clientConn struct {
	c    net.Conn
	out  chan []byte
	dead chan struct{} // closed by fail(); unblocks the writer and senders

	//stm:allow-atomic guards the pending-call table on the client side
	mu      sync.Mutex
	pending map[uint64]chan outcome
	err     error // set once broken; guards against late registrations
}

// outcome is what a waiting call receives.
type outcome struct {
	resp *kvproto.Response
	err  error
}

// New builds a client for addr ("host:port"). The connection is dialed
// lazily on first use.
func New(addr string, opts Options) *Client {
	opts = opts.withDefaults()
	return &Client{
		addr:     addr,
		opts:     opts,
		inflight: make(chan struct{}, opts.MaxInflight),
	}
}

// Close fails in-flight calls and tears down the connection. The client
// cannot be reused.
func (c *Client) Close() {
	c.mu.Lock()
	c.closed = true
	conn := c.conn
	c.conn = nil
	c.mu.Unlock()
	if conn != nil {
		conn.fail(ErrClosed)
	}
}

// getConn returns the live connection, dialing when necessary.
func (c *Client) getConn() (*clientConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if c.conn != nil {
		return c.conn, nil
	}
	sock, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", ErrConn, c.addr, err)
	}
	conn := &clientConn{
		c:       sock,
		out:     make(chan []byte, c.opts.MaxInflight),
		dead:    make(chan struct{}),
		pending: make(map[uint64]chan outcome),
	}
	go conn.writeLoop()
	go func() {
		conn.readLoop()
		// The connection is dead; detach it so the next call redials.
		c.mu.Lock()
		if c.conn == conn {
			c.conn = nil
		}
		c.mu.Unlock()
	}()
	c.conn = conn
	return conn, nil
}

// writeLoop streams queued frames out, flushing only when the queue runs
// dry: pipelined callers share flushes, a lone caller flushes at once.
func (cc *clientConn) writeLoop() {
	bw := bufio.NewWriterSize(cc.c, 64<<10)
	for {
		var frame []byte
		select {
		case frame = <-cc.out:
		case <-cc.dead:
			return
		}
		if _, err := bw.Write(frame); err != nil {
			cc.fail(fmt.Errorf("%w: write: %v", ErrConn, err))
			return
		}
		if len(cc.out) == 0 {
			if err := bw.Flush(); err != nil {
				cc.fail(fmt.Errorf("%w: flush: %v", ErrConn, err))
				return
			}
		}
	}
}

// readLoop matches responses to waiting calls by id until the stream
// breaks, then fails everything still pending.
func (cc *clientConn) readLoop() {
	var buf []byte
	for {
		payload, err := kvproto.ReadFrame(cc.c, buf)
		if err != nil {
			cc.fail(fmt.Errorf("%w: read: %v", ErrConn, err))
			return
		}
		buf = payload
		resp, err := kvproto.DecodeResponse(payload)
		if err != nil {
			cc.fail(fmt.Errorf("%w: decode: %v", ErrConn, err))
			return
		}
		cc.mu.Lock()
		ch, ok := cc.pending[resp.ID]
		if ok {
			delete(cc.pending, resp.ID)
		}
		cc.mu.Unlock()
		if ok {
			ch <- outcome{resp: resp}
		}
	}
}

// fail breaks the connection once: closes the socket, fails every
// pending call, and poisons the table against late registrations.
func (cc *clientConn) fail(err error) {
	cc.mu.Lock()
	if cc.err != nil {
		cc.mu.Unlock()
		return
	}
	cc.err = err
	pending := cc.pending
	cc.pending = nil
	cc.mu.Unlock()
	close(cc.dead)
	cc.c.Close()
	for _, ch := range pending {
		ch <- outcome{err: err}
	}
}

// register claims a slot in the pending table; fails fast on a broken
// connection.
func (cc *clientConn) register(id uint64, ch chan outcome) error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.err != nil {
		return cc.err
	}
	cc.pending[id] = ch
	return nil
}

// roundTrip sends one request and waits for its response. Concurrent
// roundTrips pipeline on the shared connection.
func (c *Client) roundTrip(req *kvproto.Request) (*kvproto.Response, error) {
	c.inflight <- struct{}{}
	defer func() { <-c.inflight }()

	conn, err := c.getConn()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.nextID++
	req.ID = c.nextID
	c.mu.Unlock()

	payload, err := kvproto.AppendRequest(nil, req)
	if err != nil {
		return nil, err
	}
	frame, err := kvproto.AppendFrame(nil, payload)
	if err != nil {
		return nil, err
	}
	ch := make(chan outcome, 1)
	if err := conn.register(req.ID, ch); err != nil {
		return nil, err
	}
	// A dead connection has already delivered this call's failure to ch;
	// the select keeps the send from blocking on a writer that is gone.
	select {
	case conn.out <- frame:
	case <-conn.dead:
	}
	out := <-ch
	if out.err != nil {
		return nil, out.err
	}
	switch out.resp.Status {
	case kvproto.StatusOK:
		return out.resp, nil
	case kvproto.StatusUnavailable:
		return nil, fmt.Errorf("%w: %s", ErrUnavailable, out.resp.Msg)
	default:
		return nil, fmt.Errorf("kvclient: server error: %s", out.resp.Msg)
	}
}

// Get reads one key.
func (c *Client) Get(key uint64) (val uint64, found bool, err error) {
	resp, err := c.roundTrip(&kvproto.Request{Op: kvproto.OpGet, Key: key})
	if err != nil {
		return 0, false, err
	}
	return resp.Val, resp.Found, nil
}

// Put upserts key; inserted reports whether it was absent.
func (c *Client) Put(key, val uint64) (inserted bool, err error) {
	resp, err := c.roundTrip(&kvproto.Request{Op: kvproto.OpPut, Key: key, Val: val})
	if err != nil {
		return false, err
	}
	return resp.OK, nil
}

// Delete removes key; found reports whether it existed.
func (c *Client) Delete(key uint64) (found bool, err error) {
	resp, err := c.roundTrip(&kvproto.Request{Op: kvproto.OpDelete, Key: key})
	if err != nil {
		return false, err
	}
	return resp.Found, nil
}

// CAS swaps key from old to new atomically.
func (c *Client) CAS(key, old, new uint64) (ok bool, err error) {
	resp, err := c.roundTrip(&kvproto.Request{Op: kvproto.OpCAS, Key: key, Old: old, Val: new})
	if err != nil {
		return false, err
	}
	return resp.OK, nil
}

// Add atomically adds delta to key (missing keys start at zero) and
// returns the new value.
func (c *Client) Add(key, delta uint64) (val uint64, err error) {
	resp, err := c.roundTrip(&kvproto.Request{Op: kvproto.OpAdd, Key: key, Val: delta})
	if err != nil {
		return 0, err
	}
	return resp.Val, nil
}

// Batch runs ops as one atomic transaction.
func (c *Client) Batch(ops []kvproto.BatchOp) ([]kvproto.BatchResult, error) {
	resp, err := c.roundTrip(&kvproto.Request{Op: kvproto.OpBatch, Ops: ops})
	if err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// Scan returns up to limit pairs (0: server default) plus the exact
// total key count and whether the walk ran as a snapshot.
func (c *Client) Scan(limit uint32) (pairs []kvproto.KV, total uint64, snapshot bool, err error) {
	resp, err := c.roundTrip(&kvproto.Request{Op: kvproto.OpScan, Limit: limit})
	if err != nil {
		return nil, 0, false, err
	}
	return resp.Pairs, resp.Total, resp.Snapshot, nil
}

// Stats fetches the server's core counters.
func (c *Client) Stats() (kvproto.Stats, error) {
	resp, err := c.roundTrip(&kvproto.Request{Op: kvproto.OpStats})
	if err != nil {
		return kvproto.Stats{}, err
	}
	return resp.Stats, nil
}
