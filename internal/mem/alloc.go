package mem

import "sync"

// allocator is a simple size-class free-list allocator over a word range.
//
// Blocks are allocated by bumping a frontier pointer; freed blocks are
// pushed onto a per-size free list and reused verbatim. There is no
// coalescing: transactional workloads in this repository allocate a small
// set of fixed node sizes (list nodes, tree nodes, reservation records),
// for which segregated free lists are both fast and fragmentation-free.
// Size classes larger than maxSizeClass share one list searched linearly;
// in practice nothing in the repository allocates blocks that large.
type allocator struct {
	mu       sync.Mutex
	next     uint64 // bump frontier
	limit    uint64 // one past the last usable word
	free     [maxSizeClass + 1][]uint64
	big      []bigBlock // rarely used overflow list
	liveWrds uint64
}

const maxSizeClass = 64

type bigBlock struct {
	addr uint64
	size uint64
}

func (al *allocator) init(start, limit uint64) {
	al.next = start
	al.limit = limit
}

// take reserves n contiguous words, returning 0 when exhausted.
func (al *allocator) take(n uint64) uint64 {
	al.mu.Lock()
	defer al.mu.Unlock()
	if n <= maxSizeClass {
		if l := al.free[n]; len(l) > 0 {
			a := l[len(l)-1]
			al.free[n] = l[:len(l)-1]
			al.liveWrds += n
			return a
		}
	} else {
		for i, b := range al.big {
			if b.size == n {
				al.big[i] = al.big[len(al.big)-1]
				al.big = al.big[:len(al.big)-1]
				al.liveWrds += n
				return b.addr
			}
		}
	}
	if al.next+n > al.limit {
		return 0
	}
	a := al.next
	al.next += n
	al.liveWrds += n
	return a
}

func (al *allocator) give(a, n uint64) {
	al.mu.Lock()
	defer al.mu.Unlock()
	if n <= maxSizeClass {
		al.free[n] = append(al.free[n], a)
	} else {
		al.big = append(al.big, bigBlock{addr: a, size: n})
	}
	al.liveWrds -= n
}

func (al *allocator) live() uint64 {
	al.mu.Lock()
	defer al.mu.Unlock()
	return al.liveWrds
}
