package mem

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestNewSpacePanicsOnTinyCapacity(t *testing.T) {
	for _, n := range []int{-1, 0, 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSpace(%d) did not panic", n)
				}
			}()
			NewSpace(n)
		}()
	}
}

func TestAllocNeverReturnsNil(t *testing.T) {
	s := NewSpace(64)
	for i := 0; i < 10; i++ {
		a := s.Alloc(4)
		if a == Nil {
			t.Fatalf("alloc %d exhausted prematurely", i)
		}
	}
}

func TestAllocExhaustionReturnsNil(t *testing.T) {
	s := NewSpace(8)
	if a := s.Alloc(7); a == Nil { // 1 reserved + 7 = 8
		t.Fatal("first alloc failed")
	}
	if a := s.Alloc(1); a != Nil {
		t.Fatalf("expected exhaustion, got %d", a)
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	s := NewSpace(16)
	a := s.Alloc(2)
	s.Store(a, 123)
	s.Store(a+1, 456)
	if got := s.Load(a); got != 123 {
		t.Errorf("Load = %d, want 123", got)
	}
	if got := s.Load(a + 1); got != 456 {
		t.Errorf("Load = %d, want 456", got)
	}
}

func TestCompareAndSwap(t *testing.T) {
	s := NewSpace(16)
	a := s.Alloc(1)
	if !s.CompareAndSwap(a, 0, 5) {
		t.Fatal("CAS from zero failed")
	}
	if s.CompareAndSwap(a, 0, 6) {
		t.Fatal("CAS with stale old succeeded")
	}
	if got := s.Load(a); got != 5 {
		t.Errorf("value = %d, want 5", got)
	}
}

func TestFreeReuse(t *testing.T) {
	s := NewSpace(32)
	a := s.Alloc(4)
	s.Free(a, 4)
	b := s.Alloc(4)
	if b != a {
		t.Errorf("free-list reuse expected: got %d, want %d", b, a)
	}
}

func TestAllocZeroesReusedBlock(t *testing.T) {
	s := NewSpace(32)
	a := s.Alloc(4)
	for i := Addr(0); i < 4; i++ {
		s.Store(a+i, ^uint64(0))
	}
	s.Free(a, 4)
	b := s.Alloc(4)
	for i := Addr(0); i < 4; i++ {
		if got := s.Load(b + i); got != 0 {
			t.Errorf("word %d = %d, want 0", i, got)
		}
	}
}

func TestFreeNilIsNoop(t *testing.T) {
	s := NewSpace(16)
	s.Free(Nil, 4) // must not panic
}

func TestFreeInvalidPanics(t *testing.T) {
	s := NewSpace(16)
	a := s.Alloc(2)
	for name, f := range map[string]func(){
		"zero size":     func() { s.Free(a, 0) },
		"negative size": func() { s.Free(a, -1) },
		"out of range":  func() { s.Free(15, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAllocNonPositivePanics(t *testing.T) {
	s := NewSpace(16)
	for _, n := range []int{0, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Alloc(%d) did not panic", n)
				}
			}()
			s.Alloc(n)
		}()
	}
}

func TestLiveWordsAccounting(t *testing.T) {
	s := NewSpace(64)
	if s.LiveWords() != 0 {
		t.Fatalf("fresh space live = %d", s.LiveWords())
	}
	a := s.Alloc(5)
	b := s.Alloc(3)
	if s.LiveWords() != 8 {
		t.Errorf("live = %d, want 8", s.LiveWords())
	}
	s.Free(a, 5)
	if s.LiveWords() != 3 {
		t.Errorf("live = %d, want 3", s.LiveWords())
	}
	s.Free(b, 3)
	if s.LiveWords() != 0 {
		t.Errorf("live = %d, want 0", s.LiveWords())
	}
}

func TestBigBlockFreeList(t *testing.T) {
	s := NewSpace(1024)
	a := s.Alloc(100) // beyond maxSizeClass
	s.Free(a, 100)
	b := s.Alloc(100)
	if b != a {
		t.Errorf("big block not reused: got %d want %d", b, a)
	}
}

// TestAllocDisjointQuick: random alloc/free sequences never hand out
// overlapping live blocks.
func TestAllocDisjointQuick(t *testing.T) {
	f := func(sizes []uint8) bool {
		s := NewSpace(1 << 16)
		type blk struct {
			a Addr
			n int
		}
		var live []blk
		owner := map[Addr]bool{}
		for i, raw := range sizes {
			n := int(raw%16) + 1
			if i%3 == 2 && len(live) > 0 {
				victim := live[0]
				live = live[1:]
				for w := Addr(0); w < Addr(victim.n); w++ {
					delete(owner, victim.a+w)
				}
				s.Free(victim.a, victim.n)
				continue
			}
			a := s.Alloc(n)
			if a == Nil {
				return true // exhaustion is acceptable
			}
			for w := Addr(0); w < Addr(n); w++ {
				if owner[a+w] {
					return false // overlap!
				}
				owner[a+w] = true
			}
			live = append(live, blk{a, n})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	s := NewSpace(1 << 18)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var mine []Addr
			for i := 0; i < 500; i++ {
				a := s.Alloc(3)
				if a == Nil {
					t.Error("exhausted")
					return
				}
				s.Store(a, uint64(id))
				mine = append(mine, a)
				if len(mine) > 4 {
					victim := mine[0]
					mine = mine[1:]
					if got := s.Load(victim); got != uint64(id) {
						t.Errorf("cross-thread scribble: got %d want %d", got, id)
						return
					}
					s.Free(victim, 3)
				}
			}
		}(w)
	}
	wg.Wait()
}
