// Package mem provides the word-addressed transactional memory arena that
// both STM implementations operate on.
//
// The paper's TinySTM is a word-based STM over raw process memory: the STM
// hashes machine addresses into a lock array. Go's garbage collector and
// pointer rules make raw-address striping unsafe, so this package supplies
// the closest controlled equivalent: a flat array of 64-bit words in which
// an address (Addr) is a word index. The allocator hands out contiguous
// index ranges, so spatial locality — the property the paper's #shifts
// tuning parameter exploits — behaves exactly as with native pointers, and
// false sharing between neighbouring allocations is preserved.
//
// All word accesses go through sync/atomic: with the write-through design
// transactions write to memory before commit, so plain loads would race.
package mem

import (
	"fmt"
	"sync/atomic"
)

// Addr is a word address inside a Space: the index of a 64-bit word.
// Addr 0 is reserved as the nil address; the allocator never returns it.
type Addr uint64

// Nil is the reserved null address.
const Nil Addr = 0

// Space is a flat, fixed-capacity arena of 64-bit words. Word reads and
// writes are individually atomic; transactional consistency across words is
// the STM's job, not the Space's.
type Space struct {
	words []uint64
	alloc allocator
}

// NewSpace returns a Space holding capacity words. The first word is
// reserved so that Addr 0 can serve as nil. It panics if capacity < 2.
func NewSpace(capacity int) *Space {
	if capacity < 2 {
		panic("mem: space capacity must be at least 2 words")
	}
	s := &Space{words: make([]uint64, capacity)}
	s.alloc.init(1, uint64(capacity)) // word 0 reserved
	return s
}

// Cap returns the total capacity in words, including the reserved word.
func (s *Space) Cap() int { return len(s.words) }

// Load atomically reads the word at a.
func (s *Space) Load(a Addr) uint64 {
	return atomic.LoadUint64(&s.words[a])
}

// Store atomically writes the word at a.
func (s *Space) Store(a Addr, v uint64) {
	atomic.StoreUint64(&s.words[a], v)
}

// CompareAndSwap atomically replaces the word at a if it equals old.
func (s *Space) CompareAndSwap(a Addr, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&s.words[a], old, new)
}

// Alloc reserves n contiguous words and returns the address of the first.
// The words are zeroed. It returns Nil if the space is exhausted.
func (s *Space) Alloc(n int) Addr {
	if n <= 0 {
		panic(fmt.Sprintf("mem: Alloc(%d): size must be positive", n))
	}
	a := s.alloc.take(uint64(n))
	if a == 0 {
		return Nil
	}
	for i := Addr(a); i < Addr(a)+Addr(n); i++ {
		atomic.StoreUint64(&s.words[i], 0)
	}
	return Addr(a)
}

// Free returns the n-word block at a to the allocator. Freeing Nil is a
// no-op. The caller must pass the same n used at Alloc time.
func (s *Space) Free(a Addr, n int) {
	if a == Nil {
		return
	}
	if n <= 0 {
		panic(fmt.Sprintf("mem: Free(%d, %d): size must be positive", a, n))
	}
	if uint64(a)+uint64(n) > uint64(len(s.words)) {
		panic(fmt.Sprintf("mem: Free(%d, %d): out of range", a, n))
	}
	s.alloc.give(uint64(a), uint64(n))
}

// LiveWords reports the number of words currently allocated (excluding the
// reserved word). Intended for tests and leak accounting.
func (s *Space) LiveWords() uint64 { return s.alloc.live() }
