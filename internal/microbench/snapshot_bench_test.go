package microbench

import (
	"testing"

	"tinystm/internal/core"
	"tinystm/internal/kvstore"
	"tinystm/internal/mem"
	"tinystm/internal/rng"
)

// Snapshot-sidecar cost benchmarks: the acceptance question is what
// version publication costs the paths that do NOT benefit from it. The
// KVGet pair bounds the single-key read overhead (one predictable branch
// in Load); the KVPut pair prices publication on the update commit path
// (pre-image capture + sidecar delivery — with no snapshot registered,
// one atomic store per written word); the Scan pair prices snapshot-mode
// execution itself against a classic read-only scan, single-threaded and
// uncontended.

func benchStore(b *testing.B, snapshots bool) *kvstore.Store[*core.Tx] {
	b.Helper()
	tm := core.MustNew(core.Config{
		Space:     mem.NewSpace(1 << 20),
		Snapshots: snapshots,
	})
	s := kvstore.NewStore[*core.Tx](tm, 8, 64)
	for k := uint64(0); k < 4096; k++ {
		s.Put(k, k)
	}
	return s
}

func benchKVGet(b *testing.B, snapshots bool) {
	s := benchStore(b, snapshots)
	defer s.Close()
	r := rng.New(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(r.Uint64n(4096))
	}
}

func BenchmarkKVGetSnapshotsOff(b *testing.B) { benchKVGet(b, false) }
func BenchmarkKVGetSnapshotsOn(b *testing.B)  { benchKVGet(b, true) }

func benchKVPut(b *testing.B, snapshots bool) {
	s := benchStore(b, snapshots)
	defer s.Close()
	r := rng.New(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put(r.Uint64n(4096), uint64(i))
	}
}

func BenchmarkKVPutSnapshotsOff(b *testing.B) { benchKVPut(b, false) }
func BenchmarkKVPutSnapshotsOn(b *testing.B)  { benchKVPut(b, true) }

func benchScan(b *testing.B, snapshots bool) {
	s := benchStore(b, snapshots)
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, total := s.Scan(1); total != 4096 {
			b.Fatalf("scan walked %d keys", total)
		}
	}
}

func BenchmarkKVScanSnapshotsOff(b *testing.B) { benchScan(b, false) }
func BenchmarkKVScanSnapshotsOn(b *testing.B)  { benchScan(b, true) }
