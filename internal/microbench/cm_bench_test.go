package microbench

import (
	"testing"

	"tinystm/internal/cm"
	"tinystm/internal/core"
	"tinystm/internal/mem"
)

// Contention-management benchmarks. Two questions matter for the policy
// hook on the hot path:
//
//  1. What does the hook cost when nothing conflicts? (BenchmarkCMHook*:
//     single-threaded update transactions — the policy's OnStart/OnCommit
//     interface calls are the only addition over the pre-policy code.)
//  2. How do the policies compare when everything conflicts?
//     (BenchmarkCMContended*: GOMAXPROCS goroutines incrementing one hot
//     word — a pure retry storm where the policy choice dominates.)

func cmTM(b *testing.B, k cm.Kind) *core.TM {
	b.Helper()
	return core.MustNew(core.Config{
		Space: mem.NewSpace(1 << 16), Locks: 1 << 10, CM: k,
		CMKnobs: cm.Knobs{SerializerMinAborts: 1},
	})
}

func benchmarkCMHook(b *testing.B, k cm.Kind) {
	tm := cmTM(b, k)
	tx := tm.NewTx()
	var a uint64
	tm.Atomic(tx, func(t *core.Tx) { a = t.Alloc(1) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Atomic(tx, func(t *core.Tx) { t.Store(a, t.Load(a)+1) })
	}
}

func BenchmarkCMHookSuicide(b *testing.B)    { benchmarkCMHook(b, cm.Suicide) }
func BenchmarkCMHookBackoff(b *testing.B)    { benchmarkCMHook(b, cm.Backoff) }
func BenchmarkCMHookKarma(b *testing.B)      { benchmarkCMHook(b, cm.Karma) }
func BenchmarkCMHookTimestamp(b *testing.B)  { benchmarkCMHook(b, cm.Timestamp) }
func BenchmarkCMHookSerializer(b *testing.B) { benchmarkCMHook(b, cm.Serializer) }

func benchmarkCMContended(b *testing.B, k cm.Kind) {
	tm := cmTM(b, k)
	setup := tm.NewTx()
	var a uint64
	tm.Atomic(setup, func(t *core.Tx) { a = t.Alloc(1) })
	setup.Release()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		tx := tm.NewTx()
		defer tx.Release()
		for pb.Next() {
			tm.Atomic(tx, func(t *core.Tx) { t.Store(a, t.Load(a)+1) })
		}
	})
}

func BenchmarkCMContendedSuicide(b *testing.B)    { benchmarkCMContended(b, cm.Suicide) }
func BenchmarkCMContendedBackoff(b *testing.B)    { benchmarkCMContended(b, cm.Backoff) }
func BenchmarkCMContendedKarma(b *testing.B)      { benchmarkCMContended(b, cm.Karma) }
func BenchmarkCMContendedTimestamp(b *testing.B)  { benchmarkCMContended(b, cm.Timestamp) }
func BenchmarkCMContendedSerializer(b *testing.B) { benchmarkCMContended(b, cm.Serializer) }
