// Commit-clock strategy and read-path microbenchmarks.
//
// The clock benchmarks isolate the cost structure the strategies trade
// against each other: BenchmarkCommitClockSerial is the uncontended
// per-commit instruction cost (FetchInc's atomic vs Lazy's load+CAS vs
// TicketBatch's amortized fetch-and-add), while
// BenchmarkCommitClockParallel hammers disjoint counters from every
// processor so the shared clock line is the only contended state — the
// regime the paper's Section 3.1 clock-management discussion is about.
//
// The read-set benchmarks measure duplicate-read suppression:
// BenchmarkReadSetDuplicates re-reads one stripe (the suppressed case,
// read set stays at one entry) versus BenchmarkReadSetDistinct touching
// as many distinct stripes (nothing suppressible), with update commits so
// the recorded entries also pay their validation cost.
package microbench

import (
	"testing"

	"tinystm/internal/core"
	"tinystm/internal/mem"
)

func clockTM(clk core.ClockStrategy) (*core.TM, uint64) {
	sp := mem.NewSpace(1 << 20)
	tm := core.MustNew(core.Config{Space: sp, Locks: 1 << 16, Clock: clk})
	tx := tm.NewTx()
	var base uint64
	tm.Atomic(tx, func(tx *core.Tx) {
		base = tx.Alloc(1 << 10)
		for i := uint64(0); i < 1<<10; i++ {
			tx.Store(base+i, 0)
		}
	})
	return tm, base
}

func BenchmarkCommitClockSerial(b *testing.B) {
	for _, clk := range core.AllClockStrategies {
		b.Run(clk.String(), func(b *testing.B) {
			tm, base := clockTM(clk)
			tx := tm.NewTx()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tm.Atomic(tx, func(tx *core.Tx) {
					tx.Store(base, tx.Load(base)+1)
				})
			}
		})
	}
}

func BenchmarkCommitClockParallel(b *testing.B) {
	for _, clk := range core.AllClockStrategies {
		b.Run(clk.String(), func(b *testing.B) {
			tm, base := clockTM(clk)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				tx := tm.NewTx()
				// Disjoint cache-line-spread counters: commits never
				// conflict on data, so the clock is the only shared write.
				mine := base + (uint64(tx.Slot())*8)%(1<<10)
				for pb.Next() {
					tm.Atomic(tx, func(tx *core.Tx) {
						tx.Store(mine, tx.Load(mine)+1)
					})
				}
			})
		})
	}
}

func readSetTM() (*core.TM, uint64) {
	sp := mem.NewSpace(1 << 20)
	tm := core.MustNew(core.Config{Space: sp, Locks: 1 << 16})
	tx := tm.NewTx()
	var base uint64
	tm.Atomic(tx, func(tx *core.Tx) {
		base = tx.Alloc(256)
		for i := uint64(0); i < 256; i++ {
			tx.Store(base+i, uint64(i))
		}
	})
	return tm, base
}

const readSetSpan = 64

func BenchmarkReadSetDuplicates(b *testing.B) {
	tm, base := readSetTM()
	tx := tm.NewTx()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Atomic(tx, func(tx *core.Tx) {
			var s uint64
			for j := 0; j < readSetSpan; j++ {
				s += tx.Load(base) // same stripe: suppressed after the first
			}
			tx.Store(base+128, s)
		})
	}
}

func BenchmarkReadSetDistinct(b *testing.B) {
	tm, base := readSetTM()
	tx := tm.NewTx()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Atomic(tx, func(tx *core.Tx) {
			var s uint64
			for j := uint64(0); j < readSetSpan; j++ {
				s += tx.Load(base + j) // distinct stripes: all recorded
			}
			tx.Store(base+128, s)
		})
	}
}
