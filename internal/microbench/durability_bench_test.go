package microbench

import (
	"sync/atomic"
	"testing"

	"tinystm/internal/core"
	"tinystm/internal/kvstore"
	"tinystm/internal/mem"
	"tinystm/internal/rng"
	"tinystm/internal/txn"
	"tinystm/internal/wal"
)

// Durability ack-mode benchmarks: what a Put costs with no WAL at all
// (Off), with redo records captured and logged but acked immediately
// (Async), and acked only after the group-commit fsync (Group). These run
// against the real filesystem (b.TempDir) so Group pays genuine fsyncs;
// the parallel variant is the honest one — group commit amortizes the
// fsync across concurrent committers, which a single-threaded loop cannot
// show. Deliberately named outside the CI benchdiff gate's filter: fsync
// latency is machine noise the >20% regression gate must not flake on.
// The ISSUE-6 acceptance number (group within 2x of off, parallel) comes
// from BenchmarkDurabilityPutParallel*.

type benchSink struct{ log *wal.Log }

func (s benchSink) WaitDurable(t txn.DurableTicket) error { return t.(*wal.Pending).Wait() }

// benchDurableStore builds a store in one of the three ack modes; mode is
// "off", "async" or "group".
func benchDurableStore(b *testing.B, mode string) *kvstore.Store[*core.Tx] {
	b.Helper()
	tm := core.MustNew(core.Config{Space: mem.NewSpace(1 << 20)})
	s := kvstore.NewStore[*core.Tx](tm, 8, 64)
	if mode != "off" {
		l, err := wal.Open(wal.Config{Dir: b.TempDir(), FS: wal.OS})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() {
			tm.SetRedoHook(nil)
			l.Close()
		})
		var sink kvstore.DurabilitySink
		if mode == "group" {
			sink = benchSink{log: l}
		}
		if err := s.EnableDurability(sink); err != nil {
			b.Fatal(err)
		}
		tm.SetRedoHook(func(epoch, ts uint64, ops []txn.RedoOp) txn.DurableTicket {
			return l.Append(epoch, ts, ops)
		})
	}
	for k := uint64(0); k < 4096; k++ {
		s.Put(k, k)
	}
	return s
}

func benchDurabilityPut(b *testing.B, mode string) {
	s := benchDurableStore(b, mode)
	defer s.Close()
	r := rng.New(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put(r.Uint64n(4096), uint64(i))
	}
}

func BenchmarkDurabilityPutOff(b *testing.B)   { benchDurabilityPut(b, "off") }
func BenchmarkDurabilityPutAsync(b *testing.B) { benchDurabilityPut(b, "async") }
func BenchmarkDurabilityPutGroup(b *testing.B) { benchDurabilityPut(b, "group") }

func benchDurabilityPutParallel(b *testing.B, mode string) {
	s := benchDurableStore(b, mode)
	defer s.Close()
	var seed atomic.Uint64
	// Group commit's whole point is amortizing the fsync across concurrent
	// committers; a handful of workers can only form a handful-sized
	// batch. Oversubscribe well past GOMAXPROCS so the flusher sees
	// server-like batch widths.
	b.SetParallelism(256)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := rng.NewThread(7, int(seed.Add(1)))
		for pb.Next() {
			s.Put(r.Uint64n(4096), r.Uint64())
		}
	})
}

func BenchmarkDurabilityPutParallelOff(b *testing.B)   { benchDurabilityPutParallel(b, "off") }
func BenchmarkDurabilityPutParallelGroup(b *testing.B) { benchDurabilityPutParallel(b, "group") }
