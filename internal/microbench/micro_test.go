// Package microbench holds head-to-head single-threaded benchmarks of
// TinySTM and TL2 on identical workloads. These isolate per-operation
// constant factors from the contention effects the paper's figures
// measure: with one thread there are no conflicts, so the numbers below
// are pure instruction-path costs.
package microbench

import (
	"testing"

	"tinystm/internal/core"
	"tinystm/internal/harness"
	"tinystm/internal/mem"
	"tinystm/internal/rng"
	"tinystm/internal/tl2"
)

func coreOp(b *testing.B, updatePct int, d core.Design) (harness.OpFunc[*core.Tx], *harness.Worker, *core.Tx) {
	b.Helper()
	sp := mem.NewSpace(1 << 20)
	tm := core.MustNew(core.Config{Space: sp, Locks: 1 << 20, Design: d})
	ip := harness.IntsetParams{Kind: harness.KindList, InitialSize: 256, UpdatePct: updatePct}
	set := harness.BuildIntset[*core.Tx](tm, ip, 1)
	return harness.IntsetOp[*core.Tx](tm, set, ip),
		&harness.Worker{ID: 0, Rng: rng.New(7)}, tm.NewTx()
}

func tl2Op(b *testing.B, updatePct int) (harness.OpFunc[*tl2.Tx], *harness.Worker, *tl2.Tx) {
	b.Helper()
	sp := mem.NewSpace(1 << 20)
	tm := tl2.MustNew(tl2.Config{Space: sp, Locks: 1 << 20})
	ip := harness.IntsetParams{Kind: harness.KindList, InitialSize: 256, UpdatePct: updatePct}
	set := harness.BuildIntset[*tl2.Tx](tm, ip, 1)
	return harness.IntsetOp[*tl2.Tx](tm, set, ip),
		&harness.Worker{ID: 0, Rng: rng.New(7)}, tm.NewTx()
}

func BenchmarkListReadOnlyTinySTMWB(b *testing.B) {
	op, w, tx := coreOp(b, 0, core.WriteBack)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op(w, tx)
	}
}

func BenchmarkListReadOnlyTinySTMWT(b *testing.B) {
	op, w, tx := coreOp(b, 0, core.WriteThrough)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op(w, tx)
	}
}

func BenchmarkListReadOnlyTL2(b *testing.B) {
	op, w, tx := tl2Op(b, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op(w, tx)
	}
}

func BenchmarkListUpdateTinySTMWB(b *testing.B) {
	op, w, tx := coreOp(b, 100, core.WriteBack)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op(w, tx)
	}
}

func BenchmarkListUpdateTinySTMWT(b *testing.B) {
	op, w, tx := coreOp(b, 100, core.WriteThrough)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op(w, tx)
	}
}

func BenchmarkListUpdateTL2(b *testing.B) {
	op, w, tx := tl2Op(b, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op(w, tx)
	}
}
