// Package cm implements pluggable contention management for the word-based
// STMs of this repository: the policy that decides how a transaction reacts
// to a conflict (abort and retry, wait for the owner, or request the
// owner's abort where legal) and what happens between retries.
//
// The source paper fixes conflict resolution — "a transaction can try to
// wait for some time or abort immediately; we use the latter option" — and
// tunes only the lock-table geometry. This package makes the resolution
// policy a first-class, runtime-switchable tuning dimension alongside
// (#locks, #shifts, h): the literature (Scherer & Scott's Karma/Timestamp
// family; Yoo & Lee's adaptive transaction scheduling) shows the policy
// choice dominates throughput once abort rates climb.
//
// The package is STM-agnostic: it knows nothing about lock words, clocks
// or memory spaces. An STM embeds one State per transaction descriptor,
// drives the bookkeeping calls (BeginAttempt/EndAttempt, NoteAbort/
// NoteCommit) from its transaction lifecycle, and consults the active
// Policy at its conflict checkpoints. Kills are cooperative: a winning
// policy *requests* the owner's abort (RequestKill); the victim notices at
// its next conflict or commit checkpoint — never inside a critical
// publication sequence — so a kill is always legal.
package cm

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Kind identifies one of the concrete contention-management policies.
type Kind int

const (
	// Suicide aborts self immediately on any conflict (the paper's
	// choice, and the default): minimal overhead, livelock-prone under
	// heavy contention.
	Suicide Kind = iota
	// Backoff is Suicide plus bounded randomized exponential backoff
	// between retries (subsumes the old Config.BackoffOnAbort boolean).
	Backoff
	// Karma accumulates priority from work done (reads + writes),
	// carried across retries: a transaction that keeps losing grows
	// karma until it out-prioritizes its competitors, then waits out or
	// kills the lock owner instead of aborting.
	Karma
	// Timestamp is older-transaction-wins wait/die: descriptors draw an
	// age at the first attempt of an atomic block and keep it across
	// retries; on conflict the older side waits (and requests the
	// younger's abort) while the younger side dies immediately.
	Timestamp
	// Serializer is ATS-style adaptive serialization: when the observed
	// global abort rate crosses a threshold, repeatedly-aborting
	// transactions funnel through a single serialization token instead
	// of livelocking against each other.
	Serializer
	nKinds
)

// NKinds is the number of policies.
const NKinds = int(nKinds)

// AllKinds lists every policy in escalation order: each successive entry
// invests more bookkeeping/waiting to resolve heavier contention.
var AllKinds = []Kind{Suicide, Backoff, Karma, Timestamp, Serializer}

// String returns the flag-friendly lower-case policy name.
func (k Kind) String() string {
	switch k {
	case Suicide:
		return "suicide"
	case Backoff:
		return "backoff"
	case Karma:
		return "karma"
	case Timestamp:
		return "timestamp"
	case Serializer:
		return "serializer"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Valid reports whether k names a concrete policy.
func (k Kind) Valid() bool { return k >= Suicide && k < nKinds }

// ParseKind parses a policy name as accepted by the -cm flags.
func ParseKind(s string) (Kind, error) {
	for _, k := range AllKinds {
		if strings.EqualFold(s, k.String()) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("cm: unknown policy %q (want suicide, backoff, karma, timestamp or serializer)", s)
}

// ConflictKind tells the policy which access found the foreign lock.
type ConflictKind int

const (
	// ReadConflict: a transactional load found the covering lock owned.
	ReadConflict ConflictKind = iota
	// WriteConflict: a store (or commit-time lock acquisition) found the
	// covering lock owned.
	WriteConflict
)

// Decision is the policy's verdict on one conflict observation.
type Decision int

const (
	// Abort: abort self now; the atomic retry loop re-runs the block.
	Abort Decision = iota
	// Wait: let the owner run, then re-check the lock; the STM calls
	// OnConflict again (with spins+1) if it is still held.
	Wait
	// KillOther: request the owner's cooperative abort, then behave like
	// Wait — the victim releases its locks when it notices the request.
	KillOther
)

// String names the decision (diagnostics and tests).
func (d Decision) String() string {
	switch d {
	case Abort:
		return "abort"
	case Wait:
		return "wait"
	case KillOther:
		return "kill"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// Sampler supplies monotonically increasing global (commits, aborts)
// aggregates; the Serializer policy differentiates them to estimate the
// live abort rate. core.TM's CommitAbortCounts has exactly this shape.
type Sampler func() (commits, aborts uint64)

// Knobs tunes the concrete policies. The zero value selects the defaults
// documented on each field.
type Knobs struct {
	// BackoffFloorExp and BackoffCapExp bound the Backoff policy's
	// randomized spin window: retry n draws from [0, 2^min(floor-1+n,
	// cap)). Defaults 6 and 16 — identical to the pre-policy
	// Config.BackoffOnAbort behaviour, whose regression tests pin them.
	BackoffFloorExp uint
	BackoffCapExp   uint
	// Patience bounds how many times a winning Karma/Timestamp
	// transaction re-checks a conflicting lock (with a yield between
	// re-checks) before giving up and aborting anyway: the liveness
	// backstop against waiting on an owner that never advances.
	// Default 1024.
	Patience int
	// SerializerAbortRatio is the global abort ratio aborts/(commits +
	// aborts) above which the Serializer starts funneling repeat
	// offenders through the token. Default 0.5.
	SerializerAbortRatio float64
	// SerializerMinAborts is how many consecutive aborts a transaction
	// must suffer before it is eligible for the token. Default 2.
	SerializerMinAborts uint64
}

func (k Knobs) withDefaults() Knobs {
	if k.BackoffFloorExp == 0 {
		k.BackoffFloorExp = 6
	}
	if k.BackoffCapExp == 0 {
		k.BackoffCapExp = 16
	}
	// Clamp to sane shifts: anything >= 64 would overflow the window to
	// zero (divide-by-zero in Spins), and >32 is already absurd spinning.
	if k.BackoffFloorExp > 32 {
		k.BackoffFloorExp = 32
	}
	if k.BackoffCapExp > 32 {
		k.BackoffCapExp = 32
	}
	if k.BackoffFloorExp > k.BackoffCapExp {
		k.BackoffFloorExp = k.BackoffCapExp
	}
	if k.Patience == 0 {
		k.Patience = 1024
	}
	if k.SerializerAbortRatio == 0 {
		k.SerializerAbortRatio = 0.5
	}
	if k.SerializerMinAborts == 0 {
		k.SerializerMinAborts = 2
	}
	return k
}

// Policy decides conflict resolution and observes transaction outcomes.
// Implementations must be safe for concurrent use by many descriptors; the
// self/other State arguments carry all per-transaction state.
type Policy interface {
	// Kind identifies the policy.
	Kind() Kind
	// OnStart is called once per atomic block, at the first attempt.
	OnStart(self *State)
	// OnConflict is called when self finds a lock owned by another
	// transaction. other is the owner's state, nil when the owner could
	// not be identified (it must then be treated as unbeatable); spins
	// counts how many times this same conflict has already been
	// re-checked after a Wait/KillOther.
	OnConflict(self, other *State, k ConflictKind, spins int) Decision
	// OnAbort is called after a failed attempt has been rolled back,
	// before the retry. It may block (backoff spinning, waiting for the
	// serialization token).
	OnAbort(self *State)
	// OnCommit is called after a successful commit.
	OnCommit(self *State)
	// Detach releases any policy-held resources recorded in self (e.g.
	// the serialization token). STMs call it when a descriptor switches
	// to a different policy instance or is released for reuse.
	Detach(self *State)
}

// New constructs the policy for kind k. sample may be nil; the Serializer
// then triggers on consecutive aborts alone.
func New(k Kind, kn Knobs, sample Sampler) Policy {
	kn = kn.withDefaults()
	switch k {
	case Suicide:
		return suicide{}
	case Backoff:
		return backoff{kn: kn}
	case Karma:
		return karma{kn: kn}
	case Timestamp:
		return &timestamp{kn: kn}
	case Serializer:
		return newSerializer(kn, sample)
	default:
		panic(fmt.Sprintf("cm: unknown policy kind %d", int(k)))
	}
}

// State is the per-descriptor contention-management state an STM embeds in
// its transaction descriptor. The owning goroutine drives the lifecycle
// calls; the atomic fields are additionally read (and doomed written) by
// competing transactions' policies.
type State struct {
	// epoch publishes the current attempt's identity while the attempt
	// is active (zero when idle). Attempt identities are unique per
	// descriptor (a private sequence), so a kill request recorded for an
	// attempt that already finished can never doom a later one.
	epoch atomic.Uint64
	// doomed holds the epoch of the attempt a competitor asked to die.
	doomed atomic.Uint64
	// prio is accumulated work (Karma): accesses performed by aborted
	// attempts of the current atomic block. Reset at commit.
	prio atomic.Uint64
	// birth is the Timestamp policy's age: drawn once per atomic block,
	// kept across retries, cleared at commit. Smaller is older; zero
	// means unassigned.
	birth atomic.Uint64

	// Owner-private fields (never touched by competitors).
	seq    uint64 // attempt-epoch generator
	aborts uint64 // consecutive aborts of the current atomic block
	rng    uint64 // xorshift state for randomized backoff
	token  bool   // Serializer: holding the serialization token
}

// Seed initializes the descriptor's private backoff generator. STMs call
// it once per descriptor with a distinct value (the slot index): the
// whole point of randomized backoff is that CONCURRENT descriptors draw
// DIFFERENT spin sequences — identically seeded generators replay the
// same interleaving every retry, exactly the lockstep the jitter exists
// to break.
func (s *State) Seed(v uint64) {
	s.rng = 0x9e3779b97f4a7c15 ^ v
	if s.rng == 0 {
		s.rng = 1
	}
}

// BeginAttempt opens a new attempt: a fresh epoch is published so stale
// kill requests (targeting earlier attempts) are ignored.
func (s *State) BeginAttempt() {
	s.seq++
	s.epoch.Store(s.seq)
}

// EndAttempt closes the current attempt (commit or rollback).
func (s *State) EndAttempt() {
	s.epoch.Store(0)
}

// Doomed reports whether a competitor requested the abort of the attempt
// currently in flight. STMs check it at conflict and commit checkpoints —
// never inside a publication sequence — and abort when it fires.
func (s *State) Doomed() bool {
	e := s.epoch.Load()
	return e != 0 && s.doomed.Load() == e
}

// Epoch returns the identity of the attempt currently in flight (zero
// when idle). Kill initiators snapshot it while they can still prove the
// conflict (the victim owns the contended lock) and pass it to
// RequestKill, pinning the request to exactly that attempt. Nil-safe.
func (s *State) Epoch() uint64 {
	if s == nil {
		return 0
	}
	return s.epoch.Load()
}

// RequestKill asks the transaction behind s to abort the attempt
// identified by epoch (from a prior Epoch() observation). Returns false
// when that attempt is no longer in flight — a victim that committed and
// moved on is never doomed by a stale verdict. Safe from any goroutine;
// the remaining check-to-store race is benign: a stale epoch stored into
// doomed matches no current attempt. Nil-safe.
func (s *State) RequestKill(epoch uint64) bool {
	if s == nil || epoch == 0 || s.epoch.Load() != epoch {
		return false
	}
	s.doomed.Store(epoch)
	return true
}

// NoteAbort records a failed attempt: work accesses accrue as Karma
// priority and the consecutive-abort count grows. Called by the STM after
// rollback, before the policy's OnAbort.
func (s *State) NoteAbort(work uint64) {
	s.aborts++
	if work != 0 {
		s.prio.Add(work)
	}
}

// NoteCommit resets the per-block state: accumulated priority, age and the
// consecutive-abort count all clear on success.
func (s *State) NoteCommit() {
	s.aborts = 0
	s.prio.Store(0)
	s.birth.Store(0)
}

// Priority returns the accumulated Karma priority.
func (s *State) Priority() uint64 { return s.prio.Load() }

// Birth returns the Timestamp age (zero when unassigned).
func (s *State) Birth() uint64 { return s.birth.Load() }

// ConsecAborts returns the consecutive-abort count of the current block.
func (s *State) ConsecAborts() uint64 { return s.aborts }

// HoldsToken reports whether s holds the Serializer token (tests).
func (s *State) HoldsToken() bool { return s.token }
