package cm

import (
	"testing"
)

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range AllKinds {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("ParseKind accepted an unknown name")
	}
	if !Suicide.Valid() || !Serializer.Valid() || Kind(99).Valid() {
		t.Error("Valid() wrong")
	}
	if len(AllKinds) != NKinds {
		t.Errorf("AllKinds lists %d kinds, want %d", len(AllKinds), NKinds)
	}
}

// Window must reproduce the pre-policy backoff schedule exactly: floor at
// 2^6 on the first retry, doubling, capped at 2^16.
func TestWindowFloorAndCap(t *testing.T) {
	cases := []struct {
		attempts int
		want     uint64
	}{
		{1, 1 << 6}, {2, 1 << 7}, {5, 1 << 10}, {11, 1 << 16}, {12, 1 << 16}, {100, 1 << 16},
	}
	for _, c := range cases {
		if got := Window(c.attempts, 0, 0); got != c.want {
			t.Errorf("Window(%d) = %d, want %d", c.attempts, got, c.want)
		}
	}
	// Custom exponents shift the schedule.
	if got := Window(1, 4, 8); got != 1<<4 {
		t.Errorf("Window(1,4,8) = %d, want %d", got, 1<<4)
	}
	if got := Window(20, 4, 8); got != 1<<8 {
		t.Errorf("Window(20,4,8) = %d, want %d", got, 1<<8)
	}
	// Absurd exponents must never overflow the window to zero (Spins
	// would divide by it), whether they arrive raw or through Knobs.
	var rng uint64
	if w := Window(100, 64, 64); w == 0 {
		t.Fatal("Window overflowed to 0")
	}
	_ = Spins(&rng, 100, 64, 200) // must not panic
	kn := Knobs{BackoffFloorExp: 64, BackoffCapExp: 70}.withDefaults()
	if kn.BackoffFloorExp > 32 || kn.BackoffCapExp > 32 || kn.BackoffFloorExp > kn.BackoffCapExp {
		t.Errorf("knob exponents not clamped: %+v", kn)
	}
}

func TestSpinsInWindowAndSeeded(t *testing.T) {
	var rng uint64 // zero: must self-seed, not divide by modulo of a dead generator
	seen := false
	for i := 0; i < 1000; i++ {
		s := Spins(&rng, 1, 0, 0)
		if s >= Window(1, 0, 0) {
			t.Fatalf("draw %d outside window", s)
		}
		if s > Window(1, 0, 0)/2 {
			seen = true
		}
	}
	if !seen {
		t.Error("draws never reached the upper half of the window")
	}
}

// Kill requests are epoch-scoped: a request against attempt n must not
// doom attempt n+1, and a request pinned to an epoch that already ended
// must be refused outright.
func TestKillRequestEpochScoped(t *testing.T) {
	var s State
	if s.Epoch() != 0 {
		t.Error("idle descriptor has a nonzero epoch")
	}
	if s.RequestKill(s.Epoch()) {
		t.Error("RequestKill succeeded with no attempt in flight")
	}
	s.BeginAttempt()
	if s.Doomed() {
		t.Error("fresh attempt already doomed")
	}
	e := s.Epoch()
	if !s.RequestKill(e) {
		t.Error("RequestKill failed on a live attempt")
	}
	if !s.Doomed() {
		t.Error("kill request not visible")
	}
	s.EndAttempt()
	if s.Doomed() {
		t.Error("idle descriptor doomed")
	}
	s.BeginAttempt()
	if s.Doomed() {
		t.Error("stale kill request doomed the next attempt")
	}
	// A verdict decided against the PREVIOUS attempt must be refused:
	// the victim moved on, there is nothing legal left to kill.
	if s.RequestKill(e) {
		t.Error("RequestKill accepted a stale epoch")
	}
	if s.Doomed() {
		t.Error("stale verdict doomed an innocent attempt")
	}
	// Nil receivers are safe (unknown owners).
	var nilState *State
	if nilState.Epoch() != 0 || nilState.RequestKill(1) {
		t.Error("nil State not inert")
	}
}

// Distinctly seeded descriptors must draw distinct backoff sequences:
// identical sequences would re-synchronize the very conflicts the jitter
// is supposed to break up.
func TestSeededStatesDrawDistinctSequences(t *testing.T) {
	var a, b State
	a.Seed(1)
	b.Seed(2)
	same := true
	for i := 0; i < 16; i++ {
		if Spins(&a.rng, 5, 0, 0) != Spins(&b.rng, 5, 0, 0) {
			same = false
		}
	}
	if same {
		t.Fatal("descriptors seeded differently drew identical spin sequences")
	}
}

func TestStateBookkeeping(t *testing.T) {
	var s State
	s.NoteAbort(10)
	s.NoteAbort(5)
	if s.Priority() != 15 || s.ConsecAborts() != 2 {
		t.Errorf("prio=%d aborts=%d, want 15, 2", s.Priority(), s.ConsecAborts())
	}
	s.NoteCommit()
	if s.Priority() != 0 || s.ConsecAborts() != 0 || s.Birth() != 0 {
		t.Error("NoteCommit did not reset the block state")
	}
}

func TestKnobsDefaults(t *testing.T) {
	kn := Knobs{}.withDefaults()
	if kn.BackoffFloorExp != 6 || kn.BackoffCapExp != 16 || kn.Patience != 1024 {
		t.Errorf("unexpected defaults: %+v", kn)
	}
	if kn.SerializerAbortRatio != 0.5 || kn.SerializerMinAborts != 2 {
		t.Errorf("unexpected serializer defaults: %+v", kn)
	}
	// Explicit values survive.
	kn = Knobs{BackoffFloorExp: 3, Patience: 7}.withDefaults()
	if kn.BackoffFloorExp != 3 || kn.Patience != 7 {
		t.Errorf("explicit knobs overridden: %+v", kn)
	}
}

func TestNewConstructsEveryKind(t *testing.T) {
	for _, k := range AllKinds {
		p := New(k, Knobs{}, nil)
		if p.Kind() != k {
			t.Errorf("New(%v).Kind() = %v", k, p.Kind())
		}
	}
}
