package cm

import (
	"sync"
	"testing"
)

// inTx returns a State with an attempt in flight and the given accrued
// priority.
func inTx(prio uint64) *State {
	s := &State{}
	s.prio.Store(prio)
	s.BeginAttempt()
	return s
}

func TestSuicideAlwaysAborts(t *testing.T) {
	p := New(Suicide, Knobs{}, nil)
	if d := p.OnConflict(inTx(0), inTx(100), ReadConflict, 0); d != Abort {
		t.Errorf("suicide decided %v, want abort", d)
	}
}

func TestKarmaDecisions(t *testing.T) {
	p := New(Karma, Knobs{Patience: 4}, nil)
	cases := []struct {
		name   string
		mine   uint64 // banked (abort-earned) priority
		theirs uint64
		spins  int
		want   Decision
	}{
		{"loser aborts", 0, 10, 0, Abort},
		// Ties go to the lock owner (encounter-time ownership is the
		// tiebreak): a first-attempt challenger can never kill a
		// first-attempt owner, however large its in-flight work.
		{"tie aborts", 10, 10, 0, Abort},
		{"winner kills first", 20, 10, 0, KillOther},
		{"winner then waits", 20, 10, 1, Wait},
		{"patience exhausted", 20, 10, 4, Abort},
	}
	for _, c := range cases {
		self, other := inTx(c.mine), inTx(c.theirs)
		if d := p.OnConflict(self, other, WriteConflict, c.spins); d != c.want {
			t.Errorf("%s: got %v, want %v", c.name, d, c.want)
		}
	}
	// Unknown owner: never wait on what cannot be reasoned about.
	if d := p.OnConflict(inTx(100), nil, ReadConflict, 0); d != Abort {
		t.Error("karma waited on a nil owner")
	}
}

func TestTimestampWaitDie(t *testing.T) {
	p := New(Timestamp, Knobs{Patience: 4}, nil).(*timestamp)
	older, younger := inTx(0), inTx(0)
	p.OnStart(older)
	p.OnStart(younger)
	if ob, yb := older.Birth(), younger.Birth(); !(ob != 0 && yb != 0 && ob < yb) {
		t.Fatalf("births not ordered: %d, %d", ob, yb)
	}
	// Younger conflicting with older's lock: dies.
	if d := p.OnConflict(younger, older, ReadConflict, 0); d != Abort {
		t.Errorf("younger decided %v, want abort", d)
	}
	// Older conflicting with younger's lock: kills, then waits, then
	// gives up at patience.
	if d := p.OnConflict(older, younger, ReadConflict, 0); d != KillOther {
		t.Errorf("older decided %v, want kill", d)
	}
	if d := p.OnConflict(older, younger, ReadConflict, 2); d != Wait {
		t.Errorf("older decided %v, want wait", d)
	}
	if d := p.OnConflict(older, younger, ReadConflict, 4); d != Abort {
		t.Errorf("older decided %v at patience, want abort", d)
	}
	// The age survives aborts (a block only gets relatively older) and
	// clears at commit.
	younger.NoteAbort(1)
	b := younger.Birth()
	p.OnStart(younger)
	if younger.Birth() != b {
		t.Error("abort reassigned the age")
	}
	younger.NoteCommit()
	p.OnStart(younger)
	if younger.Birth() == b || younger.Birth() == 0 {
		t.Error("commit did not refresh the age")
	}
}

// The serializer must hand the token to repeat offenders when the abort
// ratio is high, keep it across further aborts, and release it at commit
// (or detach).
func TestSerializerTokenLifecycle(t *testing.T) {
	p := New(Serializer, Knobs{SerializerMinAborts: 2}, nil) // nil sampler: ratio pinned to 1
	s := inTx(0)
	s.NoteAbort(1)
	p.OnAbort(s)
	if s.HoldsToken() {
		t.Fatal("token granted below the consecutive-abort threshold")
	}
	s.NoteAbort(1)
	p.OnAbort(s) // second abort: acquires
	if !s.HoldsToken() {
		t.Fatal("token not granted at the threshold")
	}
	// A competitor must now block; prove it by trying a bounded
	// acquisition from another goroutine after the holder commits.
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s2 := inTx(0)
		s2.NoteAbort(1)
		s2.NoteAbort(1)
		p.OnAbort(s2) // blocks until the holder releases
		if !s2.HoldsToken() {
			t.Error("second borrower did not get the token")
		}
		s2.NoteCommit()
		p.OnCommit(s2)
		close(done)
	}()
	s.NoteAbort(1)
	p.OnAbort(s) // still held: no double-acquire deadlock
	s.NoteCommit()
	p.OnCommit(s)
	if s.HoldsToken() {
		t.Error("commit did not release the token")
	}
	wg.Wait()
	<-done

	// Detach releases too (policy switch / descriptor release path).
	s.BeginAttempt()
	s.NoteAbort(1)
	s.NoteAbort(1)
	p.OnAbort(s)
	if !s.HoldsToken() {
		t.Fatal("token not re-granted")
	}
	p.Detach(s)
	if s.HoldsToken() {
		t.Error("Detach did not release the token")
	}
}

// With a sampler reporting a calm system the serializer must stay out of
// the way entirely.
func TestSerializerRespectsAbortRatio(t *testing.T) {
	commits := uint64(0)
	sample := func() (uint64, uint64) { return commits, 0 } // zero aborts
	p := New(Serializer, Knobs{SerializerMinAborts: 1}, sample)
	s := inTx(0)
	for i := 0; i < 10; i++ {
		commits += 100 // plenty of window, all commits
		s.NoteAbort(1)
		p.OnAbort(s)
		if s.HoldsToken() {
			t.Fatal("serializer engaged on a calm system")
		}
	}
}
