package cm

import "runtime"

// Window returns the randomized-backoff spin window for the given retry
// count: 2^min(floorExp-1+attempts, capExp) iterations. Zero exponents
// select the defaults (6 and 16), making the first retry draw from [0,64)
// — without the floor the first window would be [0,1] and hot conflicts
// would re-collide immediately — while the cap keeps the worst case at
// 2^16. core's backoffWindow regression tests pin exactly this shape.
func Window(attempts int, floorExp, capExp uint) uint64 {
	if floorExp == 0 {
		floorExp = 6
	}
	if capExp == 0 {
		capExp = 16
	}
	shift := int(floorExp) - 1 + attempts
	if shift > int(capExp) {
		shift = int(capExp)
	}
	switch {
	case shift < 0:
		shift = 0
	case shift > 62:
		// A 64-bit shift would make the window 0 and the Spins modulo
		// divide by zero; Knobs.withDefaults clamps the exponents, but
		// Window is callable with raw values.
		shift = 62
	}
	return uint64(1) << uint(shift)
}

// Spins draws the next randomized spin count from the caller's private
// xorshift state (seeded on first use if zero), uniform over the retry's
// Window. Splitting the draw from the spinning lets tests observe the
// distribution without burning cycles.
func Spins(rng *uint64, attempts int, floorExp, capExp uint) uint64 {
	x := *rng
	if x == 0 {
		x = 0x9e3779b97f4a7c15
	}
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*rng = x
	return x % Window(attempts, floorExp, capExp)
}

// SpinWait busy-waits for the given number of iterations, yielding the
// processor periodically: on a single-core host an unbroken spin burns the
// whole scheduler slice while the conflicting transaction waits to run.
func SpinWait(spins uint64) {
	for i := uint64(0); i < spins; i++ {
		if i&255 == 255 {
			runtime.Gosched()
		}
	}
}
