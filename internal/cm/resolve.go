package cm

import "runtime"

// Outcome is ResolveConflict's verdict.
type Outcome int

const (
	// Freed: the contended lock was observed free; retry the access.
	Freed Outcome = iota
	// Aborted: the policy decided self should abort.
	Aborted
	// Killed: a competitor's kill request arrived while waiting; abort
	// self as killed.
	Killed
)

// ResolveConflict drives the policy wait/kill loop for one conflict: the
// single implementation of the kill-epoch protocol both STMs call into.
//
// probe re-reads the contended lock and returns the current owner's State
// (nil when the owner cannot be identified) and whether the lock is still
// owned; it is called once per re-check, between policy consultations.
//
// Two invariants live here and nowhere else:
//
//   - The owner-epoch snapshot precedes the ownership re-check at the
//     loop head. Epochs are monotone, so RequestKill — which refuses a
//     changed epoch — can only doom an attempt that actually held the
//     lock while we conflicted, never a later innocent attempt of the
//     same descriptor.
//   - An ownership handoff restarts the spin count: OnConflict's spins
//     parameter counts re-checks of one conflict, and winners issue
//     KillOther only at spins==0 — without the reset a new owner would
//     never be asked to die.
func ResolveConflict(pol Policy, self *State, k ConflictKind,
	probe func() (*State, bool)) Outcome {
	other, owned := probe()
	if !owned {
		return Freed
	}
	otherEpoch := other.Epoch()
	for spins := 0; ; spins++ {
		cur, owned := probe()
		if !owned {
			return Freed
		}
		if cur != other {
			other = cur
			otherEpoch = other.Epoch()
			spins = -1
			continue
		}
		switch pol.OnConflict(self, other, k, spins) {
		case Abort:
			return Aborted
		case KillOther:
			other.RequestKill(otherEpoch)
		}
		// Let the owner run before the next re-check. The policy bounds
		// how often we come back here (its Patience); Suicide-style
		// policies never reach this.
		runtime.Gosched()
		if self.Doomed() {
			return Killed
		}
	}
}
