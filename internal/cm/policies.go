package cm

import (
	"math"
	"sync"
	"sync/atomic"
)

// suicide aborts self immediately on every conflict: the paper's fixed
// choice, kept as the zero-cost default.
type suicide struct{}

func (suicide) Kind() Kind                                             { return Suicide }
func (suicide) OnStart(*State)                                         {}
func (suicide) OnConflict(_, _ *State, _ ConflictKind, _ int) Decision { return Abort }
func (suicide) OnAbort(*State)                                         {}
func (suicide) OnCommit(*State)                                        {}
func (suicide) Detach(*State)                                          {}

// backoff is suicide plus bounded randomized exponential backoff between
// retries, desynchronizing hot conflicts so they stop re-colliding.
type backoff struct{ kn Knobs }

func (backoff) Kind() Kind                                             { return Backoff }
func (backoff) OnStart(*State)                                         {}
func (backoff) OnConflict(_, _ *State, _ ConflictKind, _ int) Decision { return Abort }
func (backoff) OnCommit(*State)                                        {}
func (backoff) Detach(*State)                                          {}

func (b backoff) OnAbort(s *State) {
	// s.aborts was just incremented by NoteAbort: the first failed
	// attempt draws from the floor window, later ones from doubled
	// windows up to the cap — the same schedule the old
	// Config.BackoffOnAbort implemented.
	SpinWait(Spins(&s.rng, int(s.aborts), b.kn.BackoffFloorExp, b.kn.BackoffCapExp))
}

// karma prioritizes by work performed: every access of an aborted attempt
// accrues one karma point (NoteAbort), carried across retries and cleared
// at commit. A conflicting transaction with strictly more karma than the
// lock owner requests the owner's abort and waits it out; one with less
// (or equal) karma aborts itself, banking its work as karma for the next
// round. Repeated losers therefore grow until they win — the
// starvation-resistance property Scherer & Scott designed Karma for.
type karma struct{ kn Knobs }

func (karma) Kind() Kind      { return Karma }
func (karma) OnStart(*State)  {}
func (karma) OnCommit(*State) {}
func (karma) Detach(*State)   {}

// OnAbort backs off randomly before the retry (Karma + backoff is Scherer
// & Scott's "Polka", their best performer). The randomization is
// load-bearing, not a tweak: equal-priority conflicts abort both sides,
// and on a few-core host identically timed retries replay the exact
// interleaving forever — a deterministic lockstep livelock. The jittered
// window desynchronizes the retries so one side gets through.
func (k karma) OnAbort(s *State) {
	SpinWait(Spins(&s.rng, int(s.aborts), k.kn.BackoffFloorExp, k.kn.BackoffCapExp))
}

func (k karma) OnConflict(self, other *State, _ ConflictKind, spins int) Decision {
	if other == nil {
		return Abort
	}
	// Banked priority only, on BOTH sides. Counting our own in-flight
	// work but not the owner's would let any small
	// challenger out-prioritize a large first-attempt owner — the exact
	// inversion of the starvation protection Karma promises — and makes
	// symmetric conflicts mutually "winning" (both kill, both wait).
	// With banked-only comparison, ties go to the lock owner
	// (encounter-time ownership is the tiebreak) and losers bank their
	// work via NoteAbort, growing until they genuinely out-rank.
	mine := self.prio.Load()
	theirs := other.prio.Load()
	if mine <= theirs {
		return Abort
	}
	// We out-prioritize the owner: ask it to die and wait boundedly for
	// the lock to clear (the bound is the liveness backstop — the owner
	// may be about to commit, which also clears the lock).
	if spins >= k.kn.Patience {
		return Abort
	}
	if spins == 0 {
		return KillOther
	}
	return Wait
}

// timestamp is older-transaction-wins wait/die: each atomic block draws a
// unique age at its first attempt and keeps it across retries (so a block
// can only get relatively older, never starve). On conflict the older side
// requests the younger owner's abort and waits; the younger side dies
// immediately. Ages are totally ordered, so waits cannot cycle.
type timestamp struct {
	kn Knobs
}

// timestampAge is the age source for every Timestamp instance. Package
// level on purpose: a live SetCM builds a fresh policy instance, and an
// instance-local counter restarting at zero would make new blocks read as
// older than long-retrying ones whose birth predates the switch —
// inverting wait/die's starvation freedom exactly when it matters. A
// process-wide monotone counter keeps all births totally ordered across
// switches (and, harmlessly, across TMs).
var timestampAge atomic.Uint64

func (t *timestamp) Kind() Kind      { return Timestamp }
func (t *timestamp) OnCommit(*State) {}
func (t *timestamp) Detach(*State)   {}

// OnAbort backs off randomly before the retry: the age order picks the
// winner, but dying sides still need desynchronization or they re-collide
// in lockstep (see karma.OnAbort).
func (t *timestamp) OnAbort(s *State) {
	SpinWait(Spins(&s.rng, int(s.aborts), t.kn.BackoffFloorExp, t.kn.BackoffCapExp))
}

func (t *timestamp) OnStart(self *State) {
	if self.birth.Load() == 0 {
		self.birth.Store(timestampAge.Add(1))
	}
}

func (t *timestamp) OnConflict(self, other *State, _ ConflictKind, spins int) Decision {
	if other == nil {
		return Abort
	}
	sb := self.birth.Load()
	if sb == 0 {
		// Untracked self (low-level Begin outside an atomic block):
		// behave like suicide.
		return Abort
	}
	if ob := other.birth.Load(); ob != 0 && ob < sb {
		return Abort // the owner is older: die, keeping our age
	}
	// We are older than the owner (or the owner is untracked, i.e.
	// youngest): win — request its abort and wait the lock out.
	if spins >= t.kn.Patience {
		return Abort
	}
	if spins == 0 {
		return KillOther
	}
	return Wait
}

// serializer implements ATS-style adaptive serialization (Yoo & Lee):
// while the global abort ratio stays healthy it behaves like suicide, but
// once the ratio crosses the threshold, transactions that keep aborting
// must acquire a single serialization token before retrying and hold it
// through commit — contended transactions then run one at a time instead
// of livelocking, trading parallelism for guaranteed progress.
type serializer struct {
	kn     Knobs
	sample Sampler

	// tokenMu is the serialization token. It is locked in OnAbort (by
	// the descriptor's goroutine, with no transactional state held) and
	// released at the token holder's next commit or detach.
	tokenMu sync.Mutex

	// Abort-ratio estimation over windows of the sampled aggregates;
	// ratioBits caches the latest estimate (float64 bits) so OnAbort
	// reads it without recomputing per call. probes gates how often the
	// sampler actually runs — see ratio().
	statMu       sync.Mutex
	lastC, lastA uint64
	ratioBits    atomic.Uint64
	probes       atomic.Uint64
}

// ratioWindow is the minimum number of (commit + abort) events between
// abort-ratio refreshes: tiny windows would make the trigger noisy.
// ratioProbeMask makes only one in every 8 ratio() calls pay for the
// sampler at all — the function runs on every abort of every eligible
// transaction, precisely during the storms this policy targets, and the
// sampler may be O(#descriptors) (tl2).
const (
	ratioWindow    = 64
	ratioProbeMask = 7
)

func newSerializer(kn Knobs, sample Sampler) *serializer {
	return &serializer{kn: kn, sample: sample}
}

func (s *serializer) Kind() Kind     { return Serializer }
func (s *serializer) OnStart(*State) {}

func (s *serializer) OnConflict(_, _ *State, _ ConflictKind, _ int) Decision {
	return Abort
}

// ratio returns the current abort-ratio estimate, refreshing it at most
// on every eighth call (and then only if the refresh slot is free and a
// full event window accumulated) — aborting goroutines must never queue
// behind each other here. Without a sampler the policy serializes on
// consecutive aborts alone (ratio pinned to 1).
func (s *serializer) ratio() float64 {
	if s.sample == nil {
		return 1
	}
	if s.probes.Add(1)&ratioProbeMask == 0 && s.statMu.TryLock() {
		c, a := s.sample()
		if dc, da := c-s.lastC, a-s.lastA; dc+da >= ratioWindow {
			s.lastC, s.lastA = c, a
			s.ratioBits.Store(math.Float64bits(float64(da) / float64(dc+da)))
		}
		s.statMu.Unlock()
	}
	return math.Float64frombits(s.ratioBits.Load())
}

func (s *serializer) OnAbort(st *State) {
	if st.token {
		return // already serialized: keep the token until commit
	}
	if st.aborts < s.kn.SerializerMinAborts {
		return
	}
	if s.ratio() < s.kn.SerializerAbortRatio {
		return
	}
	s.tokenMu.Lock()
	st.token = true
}

func (s *serializer) OnCommit(st *State) {
	if st.token {
		st.token = false
		s.tokenMu.Unlock()
	}
}

func (s *serializer) Detach(st *State) {
	if st.token {
		st.token = false
		s.tokenMu.Unlock()
	}
}
