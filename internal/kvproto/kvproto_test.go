package kvproto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"
)

func frameOf(t testing.TB, payload []byte) []byte {
	t.Helper()
	f, err := AppendFrame(nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		{0x00},
		[]byte("hello"),
		bytes.Repeat([]byte{0xAB}, MaxFrame),
	}
	var buf []byte
	for _, p := range payloads {
		got, err := ReadFrame(bytes.NewReader(frameOf(t, p)), buf)
		if err != nil {
			t.Fatalf("ReadFrame(%d bytes): %v", len(p), err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("round trip of %d bytes returned %d bytes", len(p), len(got))
		}
		buf = got // exercise buffer reuse across sizes
	}
}

func TestFrameErrors(t *testing.T) {
	if _, err := AppendFrame(nil, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized AppendFrame: %v, want ErrFrameTooLarge", err)
	}

	// Oversized length field: an HTTP request line read as a frame header
	// must be rejected before any allocation.
	hdr := []byte("GET / HT")
	if _, err := ReadFrame(bytes.NewReader(hdr), nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("HTTP request line: %v, want ErrFrameTooLarge", err)
	}

	// Corrupted payload: CRC mismatch.
	f := frameOf(t, []byte("payload"))
	f[len(f)-1] ^= 0xFF
	if _, err := ReadFrame(bytes.NewReader(f), nil); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupted payload: %v, want ErrChecksum", err)
	}

	// Corrupted header CRC field.
	f = frameOf(t, []byte("payload"))
	f[5] ^= 0x01
	if _, err := ReadFrame(bytes.NewReader(f), nil); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupted CRC: %v, want ErrChecksum", err)
	}

	// Truncated stream mid-payload.
	f = frameOf(t, []byte("payload"))
	if _, err := ReadFrame(bytes.NewReader(f[:len(f)-3]), nil); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated payload: %v, want ErrUnexpectedEOF", err)
	}

	// Truncated stream mid-header.
	if _, err := ReadFrame(bytes.NewReader(f[:4]), nil); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated header: %v, want ErrUnexpectedEOF", err)
	}

	// Clean EOF between frames is a clean EOF, not an error wrap.
	if _, err := ReadFrame(bytes.NewReader(nil), nil); err != io.EOF {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
}

func sampleRequests() []*Request {
	return []*Request{
		{ID: 1, Op: OpGet, Key: 42},
		{ID: 2, Op: OpPut, Key: 42, Val: 7},
		{ID: 3, Op: OpDelete, Key: 42},
		{ID: 4, Op: OpCAS, Key: 42, Old: 7, Val: 8},
		{ID: 5, Op: OpAdd, Key: 42, Val: ^uint64(0)}, // delta -1
		{ID: 6, Op: OpScan, Limit: 100},
		{ID: 7, Op: OpScan},
		{ID: 8, Op: OpStats},
		{ID: 9, Op: OpBatch, Ops: []BatchOp{
			{Op: OpPut, Key: 1, Val: 2},
			{Op: OpGet, Key: 1},
			{Op: OpCAS, Key: 1, Old: 2, Val: 3},
			{Op: OpAdd, Key: 1, Val: 10},
			{Op: OpDelete, Key: 1},
		}},
		{ID: 10, Op: OpBatch, Ops: []BatchOp{}},
		{ID: ^uint64(0), Op: OpGet, Key: ^uint64(0)},
		// Deadline-bearing requests (op byte bit 7 + u32 budget). These
		// also seed the fuzz corpus with flagged frames.
		{ID: 11, Op: OpGet, Key: 42, TimeoutMs: 250},
		{ID: 12, Op: OpPut, Key: 42, Val: 7, TimeoutMs: 1},
		{ID: 13, Op: OpScan, Limit: 10, TimeoutMs: 3600000},
		{ID: 14, Op: OpBatch, TimeoutMs: 50, Ops: []BatchOp{{Op: OpAdd, Key: 1, Val: 2}}},
		{ID: 15, Op: OpStats, TimeoutMs: ^uint32(0)},
	}
}

func sampleResponses() []*Response {
	return []*Response{
		{ID: 1, Op: OpGet, Found: true, Val: 7},
		{ID: 2, Op: OpGet},
		{ID: 3, Op: OpPut, OK: true},
		{ID: 4, Op: OpDelete, Found: true},
		{ID: 5, Op: OpCAS, OK: true},
		{ID: 6, Op: OpAdd, Val: 9},
		{ID: 7, Op: OpScan, Snapshot: true, Total: 3, Pairs: []KV{{1, 2}, {3, 4}, {5, 6}}},
		{ID: 8, Op: OpScan, Total: 0},
		{ID: 9, Op: OpStats, Stats: Stats{Commits: 10, Aborts: 3, Keys: 5, AdmissionWidth: 8}},
		{ID: 10, Op: OpBatch, Results: []BatchResult{
			{Val: 1, Found: true}, {OK: true}, {},
		}},
		{ID: 11, Op: OpGet, Status: StatusUnavailable, Msg: "replaying WAL"},
		{ID: 12, Op: OpPut, Status: StatusError, Msg: "space exhausted"},
		{ID: 13, Op: OpBatch, Status: StatusError, Msg: ""},
		{ID: 14, Op: OpScan, Status: StatusDeadlineExceeded, Msg: "deadline exceeded at gate"},
	}
}

func TestRequestRoundTrip(t *testing.T) {
	for _, req := range sampleRequests() {
		p, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatalf("%v request: encode: %v", req.Op, err)
		}
		got, err := DecodeRequest(p)
		if err != nil {
			t.Fatalf("%v request: decode: %v", req.Op, err)
		}
		// An encoded empty batch decodes as an empty (non-nil) slice.
		want := *req
		if want.Op == OpBatch && want.Ops == nil {
			want.Ops = []BatchOp{}
		}
		if !reflect.DeepEqual(got, &want) {
			t.Fatalf("%v request round trip:\n got %+v\nwant %+v", req.Op, got, &want)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for _, resp := range sampleResponses() {
		p, err := AppendResponse(nil, resp)
		if err != nil {
			t.Fatalf("%v response: encode: %v", resp.Op, err)
		}
		got, err := DecodeResponse(p)
		if err != nil {
			t.Fatalf("%v response: decode: %v", resp.Op, err)
		}
		want := *resp
		if want.Status == StatusOK && want.Op == OpBatch && want.Results == nil {
			want.Results = []BatchResult{}
		}
		if !reflect.DeepEqual(got, &want) {
			t.Fatalf("%v response round trip:\n got %+v\nwant %+v", resp.Op, got, &want)
		}
	}
}

func TestDecodeRequestErrors(t *testing.T) {
	valid, err := AppendRequest(nil, &Request{ID: 1, Op: OpCAS, Key: 1, Old: 2, Val: 3})
	if err != nil {
		t.Fatal(err)
	}

	// Every strict prefix of a valid payload is truncated.
	for n := 0; n < len(valid); n++ {
		if _, err := DecodeRequest(valid[:n]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("prefix of %d bytes: %v, want ErrTruncated", n, err)
		}
	}
	// Any suffix padding is trailing bytes.
	if _, err := DecodeRequest(append(append([]byte{}, valid...), 0)); !errors.Is(err, ErrTrailingBytes) {
		t.Fatalf("padded payload: %v, want ErrTrailingBytes", err)
	}

	// Unknown op codes: 0 and one past the end.
	bad := append(binary.LittleEndian.AppendUint64(nil, 1), 0)
	if _, err := DecodeRequest(bad); !errors.Is(err, ErrBadOp) {
		t.Fatalf("op 0: %v, want ErrBadOp", err)
	}
	bad = append(binary.LittleEndian.AppendUint64(nil, 1), byte(opEnd))
	if _, err := DecodeRequest(bad); !errors.Is(err, ErrBadOp) {
		t.Fatalf("op %d: %v, want ErrBadOp", opEnd, err)
	}

	// A batch sub-op outside OpGet..OpAdd (e.g. a nested OpBatch).
	nested := append(binary.LittleEndian.AppendUint64(nil, 1), byte(OpBatch))
	nested = binary.LittleEndian.AppendUint32(nested, 1)
	nested = append(nested, byte(OpBatch))
	nested = append(nested, make([]byte, 24)...)
	if _, err := DecodeRequest(nested); !errors.Is(err, ErrBadOp) {
		t.Fatalf("nested batch: %v, want ErrBadOp", err)
	}

	// A batch count beyond MaxBatchOps must be rejected by value, and a
	// huge count whose ops are absent must be rejected BEFORE allocating.
	big := append(binary.LittleEndian.AppendUint64(nil, 1), byte(OpBatch))
	big = binary.LittleEndian.AppendUint32(big, MaxBatchOps+1)
	if _, err := DecodeRequest(big); !errors.Is(err, ErrTooManyOps) {
		t.Fatalf("oversized batch count: %v, want ErrTooManyOps", err)
	}
	lying := append(binary.LittleEndian.AppendUint64(nil, 1), byte(OpBatch))
	lying = binary.LittleEndian.AppendUint32(lying, MaxBatchOps)
	if _, err := DecodeRequest(lying); !errors.Is(err, ErrTruncated) {
		t.Fatalf("lying batch count: %v, want ErrTruncated", err)
	}

	// Oversized batch refuses to encode, too.
	huge := &Request{Op: OpBatch, Ops: make([]BatchOp, MaxBatchOps+1)}
	if _, err := AppendRequest(nil, huge); !errors.Is(err, ErrTooManyOps) {
		t.Fatalf("oversized batch encode: %v, want ErrTooManyOps", err)
	}
	if _, err := AppendRequest(nil, &Request{Op: 0}); !errors.Is(err, ErrBadOp) {
		t.Fatalf("invalid op encode: %v, want ErrBadOp", err)
	}
}

func TestDeadlineCodecRules(t *testing.T) {
	// Canonical: TimeoutMs == 0 encodes with a CLEAR flag and no field,
	// so the flagged-with-zero-budget payload is rejected on decode.
	bad := append(binary.LittleEndian.AppendUint64(nil, 1), byte(OpGet)|opDeadlineFlag)
	bad = binary.LittleEndian.AppendUint32(bad, 0)
	bad = binary.LittleEndian.AppendUint64(bad, 42)
	if _, err := DecodeRequest(bad); !errors.Is(err, ErrBadDeadline) {
		t.Fatalf("flagged zero budget: %v, want ErrBadDeadline", err)
	}

	// The op code under the flag must still be valid.
	bad = append(binary.LittleEndian.AppendUint64(nil, 1), byte(opEnd)|opDeadlineFlag)
	bad = binary.LittleEndian.AppendUint32(bad, 100)
	if _, err := DecodeRequest(bad); !errors.Is(err, ErrBadOp) {
		t.Fatalf("flagged invalid op: %v, want ErrBadOp", err)
	}

	// A flag with the deadline field missing is truncated.
	bad = append(binary.LittleEndian.AppendUint64(nil, 1), byte(OpStats)|opDeadlineFlag)
	if _, err := DecodeRequest(bad); !errors.Is(err, ErrTruncated) {
		t.Fatalf("flag without field: %v, want ErrTruncated", err)
	}

	// Batch SUB-op bytes carry no deadline flag: a flagged sub-op is a
	// bad op, not a deadline.
	nested := append(binary.LittleEndian.AppendUint64(nil, 1), byte(OpBatch))
	nested = binary.LittleEndian.AppendUint32(nested, 1)
	nested = append(nested, byte(OpGet)|opDeadlineFlag)
	nested = append(nested, make([]byte, 24)...)
	if _, err := DecodeRequest(nested); !errors.Is(err, ErrBadOp) {
		t.Fatalf("flagged batch sub-op: %v, want ErrBadOp", err)
	}

	// Deadline-bearing payloads re-encode byte-identically (canonical).
	req := &Request{ID: 9, Op: OpCAS, Key: 1, Old: 2, Val: 3, TimeoutMs: 75}
	p, err := AppendRequest(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRequest(p)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := AppendRequest(nil, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, p2) {
		t.Fatal("deadline-bearing request did not re-encode canonically")
	}
}

func TestDecodeResponseErrors(t *testing.T) {
	valid, err := AppendResponse(nil, &Response{ID: 1, Op: OpScan, Total: 2, Pairs: []KV{{1, 2}, {3, 4}}})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(valid); n++ {
		if _, err := DecodeResponse(valid[:n]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("prefix of %d bytes: %v, want ErrTruncated", n, err)
		}
	}
	if _, err := DecodeResponse(append(append([]byte{}, valid...), 0)); !errors.Is(err, ErrTrailingBytes) {
		t.Fatalf("padded payload: %v, want ErrTrailingBytes", err)
	}

	// Invalid status byte.
	bad := binary.LittleEndian.AppendUint64(nil, 1)
	bad = append(bad, byte(OpGet), byte(statusEnd))
	if _, err := DecodeResponse(bad); err == nil {
		t.Fatal("invalid status accepted")
	}

	// A scan pair count whose pairs are absent: rejected before allocation.
	lying := binary.LittleEndian.AppendUint64(nil, 1)
	lying = append(lying, byte(OpScan), byte(StatusOK), 0)
	lying = binary.LittleEndian.AppendUint64(lying, 0)
	lying = binary.LittleEndian.AppendUint32(lying, MaxScanPairs)
	if _, err := DecodeResponse(lying); !errors.Is(err, ErrTruncated) {
		t.Fatalf("lying scan count: %v, want ErrTruncated", err)
	}
	lying = lying[:len(lying)-4]
	lying = binary.LittleEndian.AppendUint32(lying, MaxScanPairs+1)
	if _, err := DecodeResponse(lying); !errors.Is(err, ErrTooManyPairs) {
		t.Fatalf("oversized scan count: %v, want ErrTooManyPairs", err)
	}

	// An error message is capped at 4 KiB on encode and round-trips.
	long := &Response{ID: 1, Op: OpGet, Status: StatusError, Msg: string(bytes.Repeat([]byte{'x'}, 1<<13))}
	p, err := AppendResponse(nil, long)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResponse(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Msg) != 1<<12 {
		t.Fatalf("oversized Msg encoded as %d bytes, want capped at %d", len(got.Msg), 1<<12)
	}

	// Oversized pair list refuses to encode.
	if _, err := AppendResponse(nil, &Response{Op: OpScan, Pairs: make([]KV, MaxScanPairs+1)}); !errors.Is(err, ErrTooManyPairs) {
		t.Fatalf("oversized scan encode: %v, want ErrTooManyPairs", err)
	}
}

// TestPipelinedStream drives many frames through one buffer, decoding
// out of a single stream the way a connection reader does.
func TestPipelinedStream(t *testing.T) {
	var stream bytes.Buffer
	reqs := sampleRequests()
	for _, req := range reqs {
		p, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatal(err)
		}
		f, err := AppendFrame(nil, p)
		if err != nil {
			t.Fatal(err)
		}
		stream.Write(f)
	}
	var buf []byte
	for i, want := range reqs {
		p, err := ReadFrame(&stream, buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		buf = p
		got, err := DecodeRequest(p)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.ID != want.ID || got.Op != want.Op {
			t.Fatalf("frame %d decoded as (id %d, op %v), want (id %d, op %v)",
				i, got.ID, got.Op, want.ID, want.Op)
		}
	}
	if _, err := ReadFrame(&stream, buf); err != io.EOF {
		t.Fatalf("stream end: %v, want io.EOF", err)
	}
}

func BenchmarkProtoEncode(b *testing.B) {
	req := &Request{ID: 1, Op: OpCAS, Key: 42, Old: 7, Val: 8}
	var payload, frame []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		payload, err = AppendRequest(payload[:0], req)
		if err != nil {
			b.Fatal(err)
		}
		frame, err = AppendFrame(frame[:0], payload)
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = frame
}

func BenchmarkProtoDecode(b *testing.B) {
	p, err := AppendRequest(nil, &Request{ID: 1, Op: OpCAS, Key: 42, Old: 7, Val: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeRequest(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProtoRoundTrip(b *testing.B) {
	req := &Request{ID: 1, Op: OpPut, Key: 42, Val: 7}
	resp := &Response{ID: 1, Op: OpPut, OK: true}
	var frame, buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := AppendRequest(frame[:0], req)
		if err != nil {
			b.Fatal(err)
		}
		f, err := AppendFrame(nil, p)
		if err != nil {
			b.Fatal(err)
		}
		frame = p
		payload, err := ReadFrame(bytes.NewReader(f), buf)
		if err != nil {
			b.Fatal(err)
		}
		buf = payload
		if _, err := DecodeRequest(payload); err != nil {
			b.Fatal(err)
		}
		rp, err := AppendResponse(nil, resp)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeResponse(rp); err != nil {
			b.Fatal(err)
		}
	}
}
