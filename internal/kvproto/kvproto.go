// Package kvproto is the length-prefixed binary wire protocol of the
// STM-backed key-value store: the hot-path replacement for the HTTP/JSON
// surface, so server-side numbers measure the STM instead of codec
// overhead.
//
// Framing. Every message travels in one frame:
//
//	offset  size  field
//	0       4     payload length N (little-endian uint32, <= MaxFrame)
//	4       4     CRC-32C (Castagnoli) of the payload
//	8       N     payload
//
// A reader that sees a length above MaxFrame or a CRC mismatch has lost
// framing synchronization (or is talking to something that is not this
// protocol — an HTTP request line decodes as an absurd length) and must
// drop the connection; there is no way to resynchronize a byte stream.
//
// Payloads. A request payload is
//
//	id u64 | op u8 | [deadline u32] | body
//
// where bit 7 of the op byte gates the optional deadline field: when
// set, a uint32 RELATIVE deadline budget in milliseconds follows the op
// byte (and must be nonzero — the canonical encoding of "no deadline"
// is a clear flag and no field). The budget re-anchors at server
// receipt, so clock skew cannot expire it in flight. A response payload
// is
//
//	id u64 | op u8 | status u8 | body
//
// with all integers little-endian. The id is chosen by the client and
// echoed verbatim: a connection may carry thousands of requests in
// flight, and responses complete OUT OF ORDER — the id, not arrival
// order, matches a response to its request. Op-specific bodies mirror
// the HTTP surface (Get/Put/Delete/CAS/Add/Batch/Scan/Stats); see
// appendRequestBody / appendResponseBody for the exact layouts.
//
// Decoding arbitrary bytes must never panic: DecodeRequest and
// DecodeResponse validate every length and bound before reading, and the
// fuzz targets in this package enforce it.
package kvproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame limits.
const (
	// HeaderSize is the fixed frame header: length + CRC.
	HeaderSize = 8
	// MaxFrame bounds one payload. Large enough for a full Scan response
	// (MaxScanPairs pairs) with room to spare; small enough that a
	// desynchronized or hostile stream cannot make the reader allocate
	// unboundedly.
	MaxFrame = 1 << 20
	// MaxBatchOps bounds one Batch request, mirroring the server's
	// per-transaction batch cap.
	MaxBatchOps = 1024
	// MaxScanPairs bounds one Scan response's pair list.
	MaxScanPairs = 4096
)

// Op identifies one operation, mirroring the HTTP endpoint set.
type Op uint8

// The operation set. Batch bodies reuse OpGet..OpAdd as sub-op codes.
const (
	OpGet Op = iota + 1
	OpPut
	OpDelete
	OpCAS
	OpAdd
	OpBatch
	OpScan
	OpStats
	opEnd // one past the last valid op
)

// String returns the op's wire name.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpCAS:
		return "cas"
	case OpAdd:
		return "add"
	case OpBatch:
		return "batch"
	case OpScan:
		return "scan"
	case OpStats:
		return "stats"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Valid reports whether o names a real operation.
func (o Op) Valid() bool { return o >= OpGet && o < opEnd }

// opDeadlineFlag is bit 7 of a request's op byte: set when the optional
// uint32 deadline field follows. The op code proper lives in bits 0-6.
const opDeadlineFlag = 0x80

// Status is a response's outcome class.
type Status uint8

const (
	// StatusOK carries the op's result (which may still be "not found" —
	// that is data, not an error).
	StatusOK Status = iota
	// StatusUnavailable means the server cannot serve the op right now —
	// WAL replay, degraded read-only mode, a durability wait that failed,
	// shutdown. Retryable: the HTTP analogue is 503.
	StatusUnavailable
	// StatusError is a terminal failure: malformed request, op the server
	// does not understand, arena exhaustion. Not retryable.
	StatusError
	// StatusDeadlineExceeded means the request's deadline budget expired
	// before the server finished (or started) it and the work was shed.
	// Not retryable as-is: the client's budget is spent.
	StatusDeadlineExceeded
	statusEnd
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusUnavailable:
		return "unavailable"
	case StatusError:
		return "error"
	case StatusDeadlineExceeded:
		return "deadline_exceeded"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// BatchOp is one sub-operation of a Batch request. Val is the value for
// OpPut, the delta for OpAdd and the new value for OpCAS; Old is OpCAS's
// expected value.
type BatchOp struct {
	Op       Op
	Key, Val uint64
	Old      uint64
}

// BatchResult is the outcome of one Batch sub-operation.
type BatchResult struct {
	Val   uint64
	Found bool
	OK    bool
}

// KV is one Scan pair.
type KV struct{ Key, Val uint64 }

// Stats is the OpStats response body: the counters a load generator or
// smoke test wants without parsing the HTTP /stats document.
type Stats struct {
	Commits, Aborts uint64
	Keys            uint64
	// AdmissionWidth is the update-admission gate's current width, 0 when
	// the gate is off.
	AdmissionWidth uint32
}

// Request is one decoded request. Exactly the fields named by Op are
// meaningful; the rest stay zero on the wire.
type Request struct {
	ID uint64
	Op Op
	// Key/Val/Old serve Get, Put, Delete, CAS and Add (Val is Put's
	// value, Add's delta, CAS's new value; Old is CAS's expected value).
	Key, Val, Old uint64
	// TimeoutMs is the optional relative deadline budget in
	// milliseconds; 0 means no deadline (and no wire field).
	TimeoutMs uint32
	// Limit caps a Scan's returned pairs (0: server default).
	Limit uint32
	// Ops is the Batch body.
	Ops []BatchOp
}

// Response is one decoded response.
type Response struct {
	ID     uint64
	Op     Op
	Status Status
	// Msg explains a non-OK status.
	Msg string
	// Found/OK/Val serve the single-key ops (Get: Found+Val; Put: OK =
	// inserted; Delete: Found; CAS: OK; Add: Val).
	Found bool
	OK    bool
	Val   uint64
	// Scan body.
	Total    uint64
	Snapshot bool
	Pairs    []KV
	// Batch body.
	Results []BatchResult
	// Stats body.
	Stats Stats
}

// Wire protocol errors. ErrFrame covers everything that breaks framing
// synchronization (oversized length, CRC mismatch, truncated header);
// decode errors cover a well-framed payload with malformed contents.
var (
	ErrFrameTooLarge = errors.New("kvproto: frame exceeds MaxFrame")
	ErrChecksum      = errors.New("kvproto: frame checksum mismatch")
	ErrTruncated     = errors.New("kvproto: truncated payload")
	ErrBadOp         = errors.New("kvproto: unknown op code")
	ErrTooManyOps    = errors.New("kvproto: batch exceeds MaxBatchOps")
	ErrTooManyPairs  = errors.New("kvproto: scan exceeds MaxScanPairs")
	ErrTrailingBytes = errors.New("kvproto: trailing bytes after payload")
	ErrReservedBits  = errors.New("kvproto: reserved flag bits set")
	ErrMsgTooLong    = errors.New("kvproto: error message exceeds cap")
	ErrBadDeadline   = errors.New("kvproto: deadline flag set with zero budget")
)

// maxMsg caps a non-OK response's explanatory message. The codec is
// canonical — every accepted payload re-encodes byte-identically — so
// the decoder rejects what the encoder would not produce.
const maxMsg = 1 << 12

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame appends the frame header + payload to dst and returns the
// extended slice. The payload must not exceed MaxFrame.
func AppendFrame(dst, payload []byte) ([]byte, error) {
	if len(payload) > MaxFrame {
		return dst, ErrFrameTooLarge
	}
	var hdr [HeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...), nil
}

// ReadFrame reads one frame from r, reusing buf when it is large enough,
// and returns the verified payload. Any error invalidates the stream:
// the caller must drop the connection (framing cannot resynchronize).
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if crc32.Checksum(buf, castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, ErrChecksum
	}
	return buf, nil
}

// AppendRequest appends req's payload (no frame header) to dst.
func AppendRequest(dst []byte, req *Request) ([]byte, error) {
	if !req.Op.Valid() {
		return dst, ErrBadOp
	}
	dst = binary.LittleEndian.AppendUint64(dst, req.ID)
	opByte := byte(req.Op)
	if req.TimeoutMs > 0 {
		opByte |= opDeadlineFlag
	}
	dst = append(dst, opByte)
	if req.TimeoutMs > 0 {
		dst = binary.LittleEndian.AppendUint32(dst, req.TimeoutMs)
	}
	return appendRequestBody(dst, req)
}

func appendRequestBody(dst []byte, req *Request) ([]byte, error) {
	switch req.Op {
	case OpGet, OpDelete:
		dst = binary.LittleEndian.AppendUint64(dst, req.Key)
	case OpPut, OpAdd:
		dst = binary.LittleEndian.AppendUint64(dst, req.Key)
		dst = binary.LittleEndian.AppendUint64(dst, req.Val)
	case OpCAS:
		dst = binary.LittleEndian.AppendUint64(dst, req.Key)
		dst = binary.LittleEndian.AppendUint64(dst, req.Old)
		dst = binary.LittleEndian.AppendUint64(dst, req.Val)
	case OpScan:
		dst = binary.LittleEndian.AppendUint32(dst, req.Limit)
	case OpStats:
	case OpBatch:
		if len(req.Ops) > MaxBatchOps {
			return dst, ErrTooManyOps
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(req.Ops)))
		for _, o := range req.Ops {
			if o.Op < OpGet || o.Op > OpAdd {
				return dst, ErrBadOp
			}
			dst = append(dst, byte(o.Op))
			dst = binary.LittleEndian.AppendUint64(dst, o.Key)
			dst = binary.LittleEndian.AppendUint64(dst, o.Val)
			dst = binary.LittleEndian.AppendUint64(dst, o.Old)
		}
	}
	return dst, nil
}

// DecodeRequest parses one request payload. It never panics on malformed
// input and rejects trailing bytes (a frame carries exactly one message).
func DecodeRequest(p []byte) (*Request, error) {
	d := decoder{buf: p}
	req := &Request{}
	req.ID = d.u64()
	opByte := d.u8()
	req.Op = Op(opByte &^ opDeadlineFlag)
	if d.err == nil && !req.Op.Valid() {
		return nil, ErrBadOp
	}
	if opByte&opDeadlineFlag != 0 {
		req.TimeoutMs = d.u32()
		if d.err == nil && req.TimeoutMs == 0 {
			// Canonical: "no deadline" is encoded as a clear flag, so a
			// flagged zero budget is something our encoder never emits.
			return nil, ErrBadDeadline
		}
	}
	switch req.Op {
	case OpGet, OpDelete:
		req.Key = d.u64()
	case OpPut, OpAdd:
		req.Key, req.Val = d.u64(), d.u64()
	case OpCAS:
		req.Key, req.Old, req.Val = d.u64(), d.u64(), d.u64()
	case OpScan:
		req.Limit = d.u32()
	case OpStats:
	case OpBatch:
		n := d.u32()
		if d.err == nil && n > MaxBatchOps {
			return nil, ErrTooManyOps
		}
		if d.err == nil && int(n)*25 > d.remaining() {
			// Each sub-op is 25 bytes; reject the count before allocating.
			return nil, ErrTruncated
		}
		if d.err == nil {
			req.Ops = make([]BatchOp, n)
			for i := range req.Ops {
				o := &req.Ops[i]
				o.Op = Op(d.u8())
				if d.err == nil && (o.Op < OpGet || o.Op > OpAdd) {
					return nil, ErrBadOp
				}
				o.Key, o.Val, o.Old = d.u64(), d.u64(), d.u64()
			}
		}
	}
	return finish(&d, req)
}

// AppendResponse appends resp's payload (no frame header) to dst.
func AppendResponse(dst []byte, resp *Response) ([]byte, error) {
	if !resp.Op.Valid() {
		return dst, ErrBadOp
	}
	if resp.Status >= statusEnd {
		return dst, fmt.Errorf("kvproto: invalid status %d", resp.Status)
	}
	dst = binary.LittleEndian.AppendUint64(dst, resp.ID)
	dst = append(dst, byte(resp.Op), byte(resp.Status))
	if resp.Status != StatusOK {
		msg := resp.Msg
		if len(msg) > maxMsg {
			msg = msg[:maxMsg]
		}
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(msg)))
		return append(dst, msg...), nil
	}
	return appendResponseBody(dst, resp)
}

func appendResponseBody(dst []byte, resp *Response) ([]byte, error) {
	switch resp.Op {
	case OpGet:
		dst = append(dst, flags(resp.Found, resp.OK))
		dst = binary.LittleEndian.AppendUint64(dst, resp.Val)
	case OpPut, OpDelete, OpCAS:
		dst = append(dst, flags(resp.Found, resp.OK))
	case OpAdd:
		dst = binary.LittleEndian.AppendUint64(dst, resp.Val)
	case OpBatch:
		if len(resp.Results) > MaxBatchOps {
			return dst, ErrTooManyOps
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(resp.Results)))
		for _, r := range resp.Results {
			dst = append(dst, flags(r.Found, r.OK))
			dst = binary.LittleEndian.AppendUint64(dst, r.Val)
		}
	case OpScan:
		if len(resp.Pairs) > MaxScanPairs {
			return dst, ErrTooManyPairs
		}
		dst = append(dst, flags(resp.Snapshot, false))
		dst = binary.LittleEndian.AppendUint64(dst, resp.Total)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(resp.Pairs)))
		for _, kv := range resp.Pairs {
			dst = binary.LittleEndian.AppendUint64(dst, kv.Key)
			dst = binary.LittleEndian.AppendUint64(dst, kv.Val)
		}
	case OpStats:
		dst = binary.LittleEndian.AppendUint64(dst, resp.Stats.Commits)
		dst = binary.LittleEndian.AppendUint64(dst, resp.Stats.Aborts)
		dst = binary.LittleEndian.AppendUint64(dst, resp.Stats.Keys)
		dst = binary.LittleEndian.AppendUint32(dst, resp.Stats.AdmissionWidth)
	}
	return dst, nil
}

// DecodeResponse parses one response payload; like DecodeRequest it never
// panics and rejects trailing bytes.
func DecodeResponse(p []byte) (*Response, error) {
	d := decoder{buf: p}
	resp := &Response{}
	resp.ID = d.u64()
	resp.Op = Op(d.u8())
	resp.Status = Status(d.u8())
	if d.err == nil && !resp.Op.Valid() {
		return nil, ErrBadOp
	}
	if d.err == nil && resp.Status >= statusEnd {
		return nil, fmt.Errorf("kvproto: invalid status %d", resp.Status)
	}
	if d.err == nil && resp.Status != StatusOK {
		n := d.u16()
		if d.err == nil && int(n) > maxMsg {
			return nil, ErrMsgTooLong
		}
		resp.Msg = string(d.bytes(int(n)))
		return finish(&d, resp)
	}
	switch resp.Op {
	case OpGet:
		resp.Found, resp.OK = d.flags2()
		resp.Val = d.u64()
	case OpPut, OpDelete, OpCAS:
		resp.Found, resp.OK = d.flags2()
	case OpAdd:
		resp.Val = d.u64()
	case OpBatch:
		n := d.u32()
		if d.err == nil && n > MaxBatchOps {
			return nil, ErrTooManyOps
		}
		if d.err == nil && int(n)*9 > d.remaining() {
			return nil, ErrTruncated
		}
		if d.err == nil {
			resp.Results = make([]BatchResult, n)
			for i := range resp.Results {
				resp.Results[i].Found, resp.Results[i].OK = d.flags2()
				resp.Results[i].Val = d.u64()
			}
		}
	case OpScan:
		resp.Snapshot = d.flag1()
		resp.Total = d.u64()
		n := d.u32()
		if d.err == nil && n > MaxScanPairs {
			return nil, ErrTooManyPairs
		}
		if d.err == nil && int(n)*16 > d.remaining() {
			return nil, ErrTruncated
		}
		if d.err == nil && n > 0 {
			resp.Pairs = make([]KV, n)
			for i := range resp.Pairs {
				resp.Pairs[i].Key, resp.Pairs[i].Val = d.u64(), d.u64()
			}
		}
	case OpStats:
		resp.Stats.Commits = d.u64()
		resp.Stats.Aborts = d.u64()
		resp.Stats.Keys = d.u64()
		resp.Stats.AdmissionWidth = d.u32()
	}
	return finish(&d, resp)
}

// flags packs the two response booleans into one byte; bit 0 is
// Found/Snapshot, bit 1 is OK.
func flags(a, b bool) byte {
	var f byte
	if a {
		f |= 1
	}
	if b {
		f |= 2
	}
	return f
}

func unflags(f byte) (a, b bool) { return f&1 != 0, f&2 != 0 }

// flags2 reads a two-boolean flag byte, rejecting reserved bits (the
// decoder must not accept what the encoder cannot produce).
func (d *decoder) flags2() (a, b bool) {
	f := d.u8()
	if d.err == nil && f&^3 != 0 {
		d.err = ErrReservedBits
	}
	return unflags(f)
}

// flag1 is flags2 for bodies that use only bit 0.
func (d *decoder) flag1() bool {
	f := d.u8()
	if d.err == nil && f&^1 != 0 {
		d.err = ErrReservedBits
	}
	return f&1 != 0
}

// decoder is a bounds-checked little-endian reader: the first short read
// latches ErrTruncated and every later read returns zero, so decode
// logic stays linear with one error check at the end.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) remaining() int { return len(d.buf) - d.off }

func (d *decoder) bytes(n int) []byte {
	if d.err != nil || n < 0 || d.remaining() < n {
		if d.err == nil {
			d.err = ErrTruncated
		}
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u8() byte {
	b := d.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u16() uint16 {
	b := d.bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// finish returns v only when the whole payload was consumed exactly.
func finish[V any](d *decoder, v V) (V, error) {
	var zero V
	if d.err != nil {
		return zero, d.err
	}
	if d.remaining() != 0 {
		return zero, ErrTrailingBytes
	}
	return v, nil
}
