package kvproto

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

// FuzzDecodeFrame feeds arbitrary byte streams through the full receive
// path — ReadFrame, then both decoders — and enforces the package
// contract: malformed input returns an error, it never panics and never
// over-allocates past the framing bounds.
func FuzzDecodeFrame(f *testing.F) {
	// Seed corpus: every sample message as a well-formed frame, plus the
	// classic confusions (HTTP text, truncations, corrupted CRC).
	for _, req := range sampleRequests() {
		if p, err := AppendRequest(nil, req); err == nil {
			if fr, err := AppendFrame(nil, p); err == nil {
				f.Add(fr)
			}
		}
	}
	for _, resp := range sampleResponses() {
		if p, err := AppendResponse(nil, resp); err == nil {
			if fr, err := AppendFrame(nil, p); err == nil {
				f.Add(fr)
			}
		}
	}
	f.Add([]byte("GET /kv/42 HTTP/1.1\r\n\r\n"))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	good, _ := AppendFrame(nil, []byte("payload"))
	f.Add(good[:len(good)-2])

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := ReadFrame(bytes.NewReader(data), nil)
		if err != nil {
			if err == io.EOF && len(data) > 0 && len(data) < HeaderSize {
				t.Fatalf("partial header returned clean EOF")
			}
			return
		}
		// A verified payload may still be malformed; decoding must simply
		// not panic either way.
		if req, err := DecodeRequest(payload); err == nil && !req.Op.Valid() {
			t.Fatalf("DecodeRequest accepted invalid op %d", req.Op)
		}
		if resp, err := DecodeResponse(payload); err == nil && !resp.Op.Valid() {
			t.Fatalf("DecodeResponse accepted invalid op %d", resp.Op)
		}
	})
}

// FuzzRoundTrip checks that whatever DecodeRequest accepts re-encodes to
// the identical payload (the codec is canonical: one message, one byte
// string), and likewise for responses.
func FuzzRoundTrip(f *testing.F) {
	for _, req := range sampleRequests() {
		if p, err := AppendRequest(nil, req); err == nil {
			f.Add(p)
		}
	}
	for _, resp := range sampleResponses() {
		if p, err := AppendResponse(nil, resp); err == nil {
			f.Add(p)
		}
	}

	f.Fuzz(func(t *testing.T, payload []byte) {
		if req, err := DecodeRequest(payload); err == nil {
			out, err := AppendRequest(nil, req)
			if err != nil {
				t.Fatalf("accepted request %+v failed to re-encode: %v", req, err)
			}
			if !bytes.Equal(out, payload) {
				t.Fatalf("request re-encode diverged:\n in  %x\n out %x", payload, out)
			}
			again, err := DecodeRequest(out)
			if err != nil || !reflect.DeepEqual(req, again) {
				t.Fatalf("request double decode diverged: %v", err)
			}
		}
		if resp, err := DecodeResponse(payload); err == nil {
			out, err := AppendResponse(nil, resp)
			if err != nil {
				t.Fatalf("accepted response %+v failed to re-encode: %v", resp, err)
			}
			if !bytes.Equal(out, payload) {
				t.Fatalf("response re-encode diverged:\n in  %x\n out %x", payload, out)
			}
		}
	})
}
