package tl2_test

import (
	"testing"

	"tinystm/internal/mem"
	"tinystm/internal/obs"
	"tinystm/internal/tl2"
)

// TestObsInstrumentation proves TL2's observed atomic loop fills the
// commit histogram and the flight recorder with its static geometry.
func TestObsInstrumentation(t *testing.T) {
	tm := tl2.MustNew(tl2.Config{Space: mem.NewSpace(1 << 12), Locks: 1 << 8, Shifts: 2})
	o := obs.NewTMObs(obs.NewRecorder(64, 1))
	tm.SetObs(o)
	if tm.Obs() != o {
		t.Fatal("Obs() does not return the installed hook")
	}

	tx := tm.NewTx()
	const n = 20
	for i := 0; i < n; i++ {
		tm.Atomic(tx, func(tx *tl2.Tx) { tx.Store(0, tx.Load(0)+1) })
	}
	if got := o.CommitNs.Snapshot().Count; got != n {
		t.Fatalf("commit histogram count = %d, want %d", got, n)
	}
	evs := o.Rec.Dump(0)
	if len(evs) == 0 {
		t.Fatal("flight recorder is empty")
	}
	for _, e := range evs {
		if e.Locks != 1<<8 || e.Shifts != 2 || e.Hier != 0 {
			t.Fatalf("event geometry (%d,%d,%d), want (256,2,0)", e.Locks, e.Shifts, e.Hier)
		}
	}

	tm.SetObs(nil)
	tm.Atomic(tx, func(tx *tl2.Tx) { tx.Store(0, 0) })
	if got := o.CommitNs.Snapshot().Count; got != n {
		t.Fatalf("detached hook still recorded: %d", got)
	}
}
