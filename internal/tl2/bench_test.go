package tl2

import (
	"testing"

	"tinystm/internal/mem"
)

func benchTM(b *testing.B) (*TM, *Tx) {
	b.Helper()
	sp := mem.NewSpace(1 << 20)
	tm := MustNew(Config{Space: sp, Locks: 1 << 16})
	return tm, tm.NewTx()
}

func BenchmarkAtomicEmpty(b *testing.B) {
	tm, tx := benchTM(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Atomic(tx, func(tx *Tx) {})
	}
}

func BenchmarkLoadUpdateTx(b *testing.B) {
	tm, tx := benchTM(b)
	var base uint64
	tm.Atomic(tx, func(tx *Tx) { base = tx.Alloc(64) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Atomic(tx, func(tx *Tx) {
			for j := uint64(0); j < 64; j++ {
				_ = tx.Load(base + j)
			}
			tx.Store(base, 1)
		})
	}
}

func BenchmarkStores(b *testing.B) {
	tm, tx := benchTM(b)
	var base uint64
	tm.Atomic(tx, func(tx *Tx) { base = tx.Alloc(64) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Atomic(tx, func(tx *Tx) {
			for j := uint64(0); j < 64; j++ {
				tx.Store(base+j, uint64(i))
			}
		})
	}
}

// BenchmarkReadAfterWriteLargeWriteSet exposes the cost the paper
// attributes to TL2: read-after-write needs a Bloom-filter probe plus a
// write-set scan, which degrades as write sets grow (TinySTM's per-lock
// chains stay O(1); compare with core's
// BenchmarkReadAfterWriteSameStripe).
func BenchmarkReadAfterWriteLargeWriteSet(b *testing.B) {
	tm, tx := benchTM(b)
	var base uint64
	tm.Atomic(tx, func(tx *Tx) { base = tx.Alloc(256) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Atomic(tx, func(tx *Tx) {
			for j := uint64(0); j < 256; j++ {
				tx.Store(base+j, uint64(i))
			}
			for j := uint64(0); j < 256; j++ {
				_ = tx.Load(base + j)
			}
		})
	}
}
