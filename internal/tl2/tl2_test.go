package tl2

import (
	"runtime"
	"sync"
	"testing"

	"tinystm/internal/mem"
	"tinystm/internal/rng"
	"tinystm/internal/txn"
)

func newTestTM(t testing.TB, over func(*Config)) (*TM, *mem.Space) {
	t.Helper()
	sp := mem.NewSpace(1 << 20)
	cfg := Config{Space: sp, Locks: 1 << 10}
	if over != nil {
		over(&cfg)
	}
	tm, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tm, sp
}

func attempt(fn func()) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, is := r.(abortSignal); is {
				ok = false
				return
			}
			panic(r)
		}
	}()
	fn()
	return true
}

func TestConfigValidation(t *testing.T) {
	sp := mem.NewSpace(16)
	if _, err := New(Config{}); err == nil {
		t.Error("nil space accepted")
	}
	if _, err := New(Config{Space: sp, Locks: 3}); err == nil {
		t.Error("non-pow2 locks accepted")
	}
	if _, err := New(Config{Space: sp, Shifts: 60}); err == nil {
		t.Error("huge shift accepted")
	}
	if _, err := New(Config{Space: sp}); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
}

func TestAtomicCommitPublishes(t *testing.T) {
	tm, sp := newTestTM(t, nil)
	tx := tm.NewTx()
	var a uint64
	tm.Atomic(tx, func(tx *Tx) {
		a = tx.Alloc(2)
		tx.Store(a, 41)
		tx.Store(a+1, 42)
	})
	if sp.Load(mem.Addr(a)) != 41 || sp.Load(mem.Addr(a+1)) != 42 {
		t.Error("committed values not in memory")
	}
}

func TestBufferedWritesInvisibleUntilCommit(t *testing.T) {
	// Commit-time locking: another transaction reading mid-flight sees
	// the old value and does NOT conflict (the defining TL2 behaviour the
	// paper contrasts with encounter-time locking).
	tm, _ := newTestTM(t, nil)
	t1, t2 := tm.NewTx(), tm.NewTx()
	var a uint64
	tm.Atomic(t1, func(tx *Tx) { a = tx.Alloc(1); tx.Store(a, 1) })

	t1.Begin(false)
	if !attempt(func() { t1.Store(a, 99) }) {
		t.Fatal("unexpected abort")
	}
	// t2 reads concurrently: no lock is held yet, old value visible.
	tm.Atomic(t2, func(tx *Tx) {
		if got := tx.Load(a); got != 1 {
			t.Errorf("concurrent read = %d, want 1 (buffered write invisible)", got)
		}
	})
	if !t1.Commit() {
		t.Fatal("t1 commit failed")
	}
	tm.Atomic(t2, func(tx *Tx) {
		if got := tx.Load(a); got != 99 {
			t.Errorf("after commit read = %d, want 99", got)
		}
	})
}

func TestReadAfterWriteThroughBloom(t *testing.T) {
	tm, _ := newTestTM(t, nil)
	tx := tm.NewTx()
	tm.Atomic(tx, func(tx *Tx) {
		a := tx.Alloc(4)
		tx.Store(a, 7)
		if got := tx.Load(a); got != 7 {
			t.Errorf("read-after-write = %d, want 7", got)
		}
		tx.Store(a, 8)
		if got := tx.Load(a); got != 8 {
			t.Errorf("write-after-write read = %d, want 8", got)
		}
		// A non-written neighbour must come from memory (0).
		if got := tx.Load(a + 1); got != 0 {
			t.Errorf("neighbour = %d, want 0", got)
		}
	})
}

func TestWriteSetDeduplicates(t *testing.T) {
	tm, _ := newTestTM(t, nil)
	tx := tm.NewTx()
	tm.Atomic(tx, func(tx *Tx) {
		a := tx.Alloc(1)
		for i := uint64(0); i < 100; i++ {
			tx.Store(a, i)
		}
		if len(tx.wset) != 1 {
			t.Errorf("write set size = %d, want 1 (deduplicated)", len(tx.wset))
		}
	})
}

func TestLateConflictDetection(t *testing.T) {
	// t1 buffers a write; t2 commits a write to the same address; t1's
	// commit must fail validation (it read the address first).
	tm, _ := newTestTM(t, nil)
	t1, t2 := tm.NewTx(), tm.NewTx()
	var a uint64
	tm.Atomic(t1, func(tx *Tx) { a = tx.Alloc(1); tx.Store(a, 1) })

	t1.Begin(false)
	if !attempt(func() {
		v := t1.Load(a)
		t1.Store(a, v+1)
	}) {
		t.Fatal("unexpected abort")
	}
	tm.Atomic(t2, func(tx *Tx) { tx.Store(a, 10) })
	if t1.Commit() {
		t.Fatal("t1 commit must fail: its read of a is stale")
	}
	if got := t1.TxStats().AbortsByKind[txn.AbortValidate]; got != 1 {
		t.Errorf("validate aborts = %d, want 1", got)
	}
	// No lost update: value stays 10.
	tm.Atomic(t2, func(tx *Tx) {
		if got := tx.Load(a); got != 10 {
			t.Errorf("value = %d, want 10", got)
		}
	})
}

func TestBlindWriteConflictAtCommit(t *testing.T) {
	// Two blind writers: the second to commit must win or abort at lock
	// acquisition, never corrupt.
	tm, _ := newTestTM(t, nil)
	t1, t2 := tm.NewTx(), tm.NewTx()
	var a uint64
	tm.Atomic(t1, func(tx *Tx) { a = tx.Alloc(1) })

	t1.Begin(false)
	if !attempt(func() { t1.Store(a, 1) }) {
		t.Fatal("unexpected abort")
	}
	t2.Begin(false)
	if !attempt(func() { t2.Store(a, 2) }) {
		t.Fatal("unexpected abort")
	}
	if !t1.Commit() {
		t.Fatal("t1 commit failed")
	}
	// t2 is a blind write with no reads: lock acquisition succeeds and
	// the write serializes after t1.
	if !t2.Commit() {
		t.Log("t2 aborted at commit (acceptable under contention)")
	}
}

func TestNoExtension(t *testing.T) {
	// Unlike TinySTM, a TL2 transaction reading a version newer than rv
	// aborts even when the read set is intact.
	tm, _ := newTestTM(t, nil)
	t1, t2 := tm.NewTx(), tm.NewTx()
	var a, b uint64
	tm.Atomic(t1, func(tx *Tx) { a, b = tx.Alloc(1), tx.Alloc(1) })

	t1.Begin(false)
	if !attempt(func() { _ = t1.Load(a) }) {
		t.Fatal("unexpected abort")
	}
	tm.Atomic(t2, func(tx *Tx) { tx.Store(b, 1) }) // unrelated write
	if attempt(func() { _ = t1.Load(b) }) {
		t.Fatal("TL2 must abort on version > rv (no snapshot extension)")
	}
	if got := t1.TxStats().AbortsByKind[txn.AbortExtend]; got != 1 {
		t.Errorf("extend aborts = %d, want 1", got)
	}
}

func TestReadOnlyMode(t *testing.T) {
	tm, _ := newTestTM(t, nil)
	tx := tm.NewTx()
	var a uint64
	tm.Atomic(tx, func(tx *Tx) { a = tx.Alloc(1); tx.Store(a, 5) })
	tm.AtomicRO(tx, func(tx *Tx) {
		if got := tx.Load(a); got != 5 {
			t.Errorf("RO read = %d, want 5", got)
		}
		if len(tx.rset) != 0 {
			t.Errorf("RO kept a read set of %d", len(tx.rset))
		}
	})
	// Upgrade on write.
	runs := 0
	tm.AtomicRO(tx, func(tx *Tx) {
		//stm:allow-effect deliberate retry counter: the test asserts the upgrade re-runs the body
		runs++
		//stm:allow-write deliberate: the write IS the upgrade under test
		tx.Store(a, 6)
	})
	if runs != 2 {
		t.Errorf("runs = %d, want 2 (upgrade retry)", runs)
	}
}

func TestFlatNesting(t *testing.T) {
	tm, _ := newTestTM(t, nil)
	tx := tm.NewTx()
	tm.Atomic(tx, func(outer *Tx) {
		a := outer.Alloc(1)
		//stm:allow-effect deliberate: flat nesting (inner block merges into the outer) is under test
		tm.Atomic(tx, func(inner *Tx) { inner.Store(a, 5) })
		if got := outer.Load(a); got != 5 {
			t.Errorf("nested write invisible: %d", got)
		}
	})
	if tm.Stats().Commits != 1 {
		t.Errorf("commits = %d, want 1", tm.Stats().Commits)
	}
}

func TestForeignPanicPropagates(t *testing.T) {
	tm, sp := newTestTM(t, nil)
	tx := tm.NewTx()
	var a uint64
	tm.Atomic(tx, func(tx *Tx) { a = tx.Alloc(1); tx.Store(a, 1) })
	func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Errorf("recovered %v", r)
			}
		}()
		tm.Atomic(tx, func(tx *Tx) {
			tx.Store(a, 99)
			panic("boom")
		})
	}()
	if got := sp.Load(mem.Addr(a)); got != 1 {
		t.Errorf("memory = %d, want 1", got)
	}
}

func TestFreeDeferredAndLocked(t *testing.T) {
	tm, sp := newTestTM(t, nil)
	t1, t2 := tm.NewTx(), tm.NewTx()
	var a, b uint64
	tm.Atomic(t1, func(tx *Tx) {
		a = tx.Alloc(2)
		b = tx.Alloc(1)
		tx.Store(a, 3)
	})
	live := sp.LiveWords()

	// Reader vs free: the reader's commit must fail after the free.
	t1.Begin(false)
	if !attempt(func() {
		_ = t1.Load(a)
		t1.Store(b, 1)
	}) {
		t.Fatal("unexpected abort")
	}
	tm.Atomic(t2, func(tx *Tx) { tx.Free(a, 2) })
	if t1.Commit() {
		t.Fatal("t1 must fail: read block freed")
	}
	_ = live
}

func TestRetry(t *testing.T) {
	tm, _ := newTestTM(t, nil)
	tx := tm.NewTx()
	runs := 0
	tm.Atomic(tx, func(tx *Tx) {
		//stm:allow-effect deliberate retry counter: the test asserts Retry re-runs the body
		runs++
		if runs < 3 {
			tx.Retry()
		}
	})
	if runs != 3 {
		t.Errorf("runs = %d, want 3", runs)
	}
}

func TestAtomicRetriesUntilLockReleased(t *testing.T) {
	tm, _ := newTestTM(t, nil)
	t1, t2 := tm.NewTx(), tm.NewTx()
	var a uint64
	tm.Atomic(t1, func(tx *Tx) { a = tx.Alloc(1) })

	t2.Begin(false)
	if !attempt(func() { t2.Store(a, 5) }) {
		t.Fatal("unexpected abort")
	}
	// Acquire commit locks on t2 but pause before finishing: simulate by
	// starting commit in a goroutine after the reader spins. Simpler: t2
	// commits fully; t1 then increments. The interesting interleaving —
	// reading while locked — is exercised probabilistically in the bank
	// stress below and deterministically here via a manual lock.
	if !t2.Commit() {
		t.Fatal("t2 commit failed")
	}
	done := make(chan struct{})
	go func() {
		tm.Atomic(t1, func(tx *Tx) { tx.Store(a, tx.Load(a)+1) })
		close(done)
	}()
	for {
		select {
		case <-done:
			tm.Atomic(t2, func(tx *Tx) {
				if got := tx.Load(a); got != 6 {
					t.Errorf("value = %d, want 6", got)
				}
			})
			return
		default:
			runtime.Gosched()
		}
	}
}

func TestBankInvariant(t *testing.T) {
	tm, _ := newTestTM(t, nil)
	const accounts = 64
	const initial = 1000
	setup := tm.NewTx()
	var base uint64
	tm.Atomic(setup, func(tx *Tx) {
		base = tx.Alloc(accounts)
		for i := uint64(0); i < accounts; i++ {
			tx.Store(base+i, initial)
		}
	})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := rng.NewThread(7, id)
			tx := tm.NewTx()
			for i := 0; i < 400; i++ {
				from := uint64(r.Intn(accounts))
				to := uint64(r.Intn(accounts))
				amt := uint64(r.Intn(10))
				tm.Atomic(tx, func(tx *Tx) {
					f := tx.Load(base + from)
					if f < amt {
						return
					}
					tx.Store(base+from, f-amt)
					tx.Store(base+to, tx.Load(base+to)+amt)
				})
				if i%16 == 0 {
					tm.AtomicRO(tx, func(tx *Tx) {
						var sum uint64
						for j := uint64(0); j < accounts; j++ {
							sum += tx.Load(base + j)
						}
						if sum != accounts*initial {
							t.Errorf("torn audit: %d", sum)
						}
					})
				}
			}
		}(w)
	}
	wg.Wait()
	tm.Atomic(setup, func(tx *Tx) {
		var sum uint64
		for j := uint64(0); j < accounts; j++ {
			sum += tx.Load(base + j)
		}
		if sum != accounts*initial {
			t.Errorf("final sum = %d, want %d", sum, accounts*initial)
		}
	})
}

func TestStatsAccounting(t *testing.T) {
	tm, _ := newTestTM(t, nil)
	tx := tm.NewTx()
	var a uint64
	for i := 0; i < 5; i++ {
		tm.Atomic(tx, func(tx *Tx) {
			if a == 0 {
				a = tx.Alloc(1)
			}
			tx.Store(a, uint64(i))
		})
	}
	if got := tm.Stats().Commits; got != 5 {
		t.Errorf("commits = %d, want 5", got)
	}
}

func TestBloomBitDeterministic(t *testing.T) {
	for _, a := range []mem.Addr{1, 2, 100, 1 << 20} {
		if bloomBit(a) != bloomBit(a) {
			t.Fatal("bloomBit not deterministic")
		}
		if bloomBit(a) == 0 {
			t.Fatal("bloomBit returned zero mask")
		}
	}
}
