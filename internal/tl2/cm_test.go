package tl2

import (
	"sync"
	"testing"

	"tinystm/internal/cm"
	"tinystm/internal/mem"
	"tinystm/internal/rng"
)

// The bank-invariant stress must hold under every contention-management
// policy: TL2's hook sits on the speculative-read conflict and the
// commit-time lock acquisition, where waits and kills are the dangerous
// cases (locks are held while waiting).
func TestBankInvariantAllPolicies(t *testing.T) {
	for _, k := range cm.AllKinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			tm, _ := newTestTM(t, func(c *Config) {
				c.CM = k
				c.CMKnobs = cm.Knobs{SerializerMinAborts: 1}
			})
			const accounts = 32
			const initial = 100
			setup := tm.NewTx()
			var base uint64
			tm.Atomic(setup, func(tx *Tx) {
				base = tx.Alloc(accounts)
				for i := uint64(0); i < accounts; i++ {
					tx.Store(base+i, initial)
				}
			})
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					r := rng.NewThread(11, id)
					tx := tm.NewTx()
					for i := 0; i < 300; i++ {
						from := uint64(r.Intn(accounts))
						to := uint64(r.Intn(accounts))
						tm.Atomic(tx, func(tx *Tx) {
							f := tx.Load(base + from)
							if f < 1 {
								return
							}
							tx.Store(base+from, f-1)
							tx.Store(base+to, tx.Load(base+to)+1)
						})
					}
				}(w)
			}
			wg.Wait()
			tm.Atomic(setup, func(tx *Tx) {
				var sum uint64
				for j := uint64(0); j < accounts; j++ {
					sum += tx.Load(base + j)
				}
				if sum != accounts*initial {
					t.Errorf("money not conserved under %v: %d", k, sum)
				}
			})
		})
	}
}

func TestConfigRejectsBadCM(t *testing.T) {
	sp := mem.NewSpace(1 << 12)
	if _, err := New(Config{Space: sp, CM: cm.Kind(42)}); err == nil {
		t.Fatal("New accepted an invalid CM kind")
	}
	tm, err := New(Config{Space: sp, CM: cm.Timestamp})
	if err != nil {
		t.Fatal(err)
	}
	if tm.CM() != cm.Timestamp {
		t.Errorf("CM() = %v", tm.CM())
	}
}

// CommitAbortCounts (the Serializer's sampler) must be monotonic and match
// Stats at quiescence.
func TestCommitAbortCountsMatchesStats(t *testing.T) {
	tm, _ := newTestTM(t, nil)
	tx := tm.NewTx()
	var a uint64
	tm.Atomic(tx, func(tx *Tx) { a = tx.Alloc(1) })
	for i := 0; i < 50; i++ {
		tm.Atomic(tx, func(tx *Tx) { tx.Store(a, tx.Load(a)+1) })
	}
	c, ab := tm.CommitAbortCounts()
	s := tm.Stats()
	if c != s.Commits || ab != s.Aborts {
		t.Fatalf("CommitAbortCounts = (%d,%d), Stats = (%d,%d)", c, ab, s.Commits, s.Aborts)
	}
}
