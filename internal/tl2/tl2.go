// Package tl2 implements the Transactional Locking II algorithm (Dice,
// Shalev, Shavit — DISC 2006) as the comparison baseline of the paper.
//
// TL2 is word-based and time-based like TinySTM but differs on the axes
// the paper's evaluation isolates:
//
//   - commit-time locking: writes are buffered and locks acquired only at
//     commit, so conflicting transactions may perform long doomed
//     traversals (the linked-list behaviour in Figures 3 and 4);
//   - no snapshot extension: a read observing a version newer than the
//     transaction's read version aborts immediately;
//   - read-after-write goes through a Bloom filter plus a write-set scan
//     ("which may be costly when write sets grow large", Section 3.1).
//
// The lock array geometry (#locks, #shifts) is parameterized exactly like
// TinySTM's so the same sweeps can be applied; TL2 has no hierarchical
// array. Memory reclamation reuses the quiescence scheme of package
// reclaim.
package tl2

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"tinystm/internal/cm"
	"tinystm/internal/mem"
	"tinystm/internal/obs"
	"tinystm/internal/reclaim"
	"tinystm/internal/txn"
)

// Config parameterizes a TL2 instance.
type Config struct {
	// Space is the memory arena. Required.
	Space *mem.Space
	// Locks is the lock-array size; power of two. Default 2^20 (TL2's
	// reference implementation ships a large fixed table).
	Locks uint64
	// Shifts is the address right-shift applied before lock hashing.
	Shifts uint
	// YieldEvery, when positive, yields the processor after every N
	// transactional loads — the same multi-core interleaving simulation
	// as core.Config.YieldEvery, applied to the baseline for fairness.
	YieldEvery int
	// CM selects the contention-management policy (package cm) applied
	// where the hook maps onto TL2 cleanly: speculative-read conflicts
	// and commit-time lock acquisition. Default Suicide — the reference
	// TL2's abort-immediately choice. Unlike core's, TL2's policy is
	// fixed at construction (the baseline is not dynamically tuned).
	CM cm.Kind
	// CMKnobs tunes the selected policy (zero: cm defaults).
	CMKnobs cm.Knobs
}

func (c Config) withDefaults() Config {
	if c.Locks == 0 {
		c.Locks = 1 << 20
	}
	return c
}

func (c Config) validate() error {
	if c.Space == nil {
		return fmt.Errorf("tl2: Config.Space is required")
	}
	if c.Locks == 0 || bits.OnesCount64(c.Locks) != 1 {
		return fmt.Errorf("tl2: Locks (%d) must be a power of two", c.Locks)
	}
	if c.Shifts > 32 {
		return fmt.Errorf("tl2: Shifts (%d) out of range [0,32]", c.Shifts)
	}
	if !c.CM.Valid() {
		return fmt.Errorf("tl2: unknown contention-management policy %d", int(c.CM))
	}
	return nil
}

// Lock-word layout: bit 0 = owned; unlocked words carry version<<1;
// locked words carry the owner slot plus the index of the owner's
// acquired-lock record, whose saved pre-acquisition version commit-time
// validation needs for self-locked read-set stripes.
const (
	lockBit   = uint64(1)
	entryBits = 40
	entryMask = (uint64(1) << entryBits) - 1
)

func isOwned(lw uint64) bool { return lw&lockBit != 0 }
func mkOwned(slot, entry int) uint64 {
	return uint64(slot)<<(1+entryBits) | uint64(entry)<<1 | lockBit
}
func ownerSlot(lw uint64) int     { return int(lw >> (1 + entryBits)) }
func ownerEntry(lw uint64) int    { return int(lw >> 1 & entryMask) }
func mkVersion(ver uint64) uint64 { return ver << 1 }
func versionOf(lw uint64) uint64  { return lw >> 1 }
func maxClock() uint64            { return 1<<62 - 1 }

// TM is a TL2 runtime over one mem.Space.
type TM struct {
	space    *mem.Space
	locks    []uint64
	lockMask uint64
	shifts   uint
	yieldN   int
	pol      cm.Policy

	_     [64]byte
	clock atomic.Uint64
	_     [64]byte

	// obsHook is the installed observability sink (SetObs); nil when
	// detached. One pointer load per atomic block when disabled.
	obsHook atomic.Pointer[obs.TMObs]

	pool  reclaim.Pool
	mu    sync.Mutex
	descs []*Tx
	// descsPub is the lock-free owner-slot lookup for conflict
	// resolution (maps a lock word's owner to its cm.State).
	descsPub atomic.Pointer[[]*Tx]
}

// New creates a TL2 runtime.
func New(cfg Config) (*TM, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	tm := &TM{
		space:    cfg.Space,
		locks:    make([]uint64, cfg.Locks),
		lockMask: cfg.Locks - 1,
		shifts:   cfg.Shifts,
		yieldN:   cfg.YieldEvery,
	}
	tm.pol = cm.New(cfg.CM, cfg.CMKnobs, tm.CommitAbortCounts)
	return tm, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config) *TM {
	tm, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return tm
}

// Space returns the protected arena.
func (tm *TM) Space() *mem.Space { return tm.space }

func (tm *TM) lockIndex(addr uint64) uint64 { return (addr >> tm.shifts) & tm.lockMask }

func (tm *TM) loadLock(li uint64) uint64 { return atomic.LoadUint64(&tm.locks[li]) }

func (tm *TM) storeLock(li uint64, lw uint64) { atomic.StoreUint64(&tm.locks[li], lw) }

func (tm *TM) casLock(li uint64, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&tm.locks[li], old, new)
}

// NewTx registers and returns a descriptor for one worker goroutine.
func (tm *TM) NewTx() *Tx {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	tx := &Tx{tm: tm, slot: len(tm.descs)}
	tx.cmst.Seed(uint64(tx.slot + 1))
	tm.descs = append(tm.descs, tx)
	pub := make([]*Tx, len(tm.descs))
	copy(pub, tm.descs)
	tm.descsPub.Store(&pub)
	return tx
}

// CM returns the contention-management policy this TM runs.
func (tm *TM) CM() cm.Kind { return tm.pol.Kind() }

// stateOf maps an owner slot to its descriptor's contention-management
// state; nil when unknown.
func (tm *TM) stateOf(slot int) *cm.State {
	ds := tm.descsPub.Load()
	if ds == nil || slot < 0 || slot >= len(*ds) {
		return nil
	}
	return &(*ds)[slot].cmst
}

func (tm *TM) minActiveStart() uint64 {
	tm.mu.Lock()
	descs := tm.descs
	tm.mu.Unlock()
	min := ^uint64(0)
	for _, tx := range descs {
		if e := tx.startEpoch.Load(); e != 0 && e-1 < min {
			min = e - 1
		}
	}
	return min
}

const drainThreshold = 128

func (tm *TM) maybeDrainLimbo() {
	if tm.pool.Len() < drainThreshold {
		return
	}
	for _, b := range tm.pool.Drain(tm.minActiveStart()) {
		tm.space.Free(mem.Addr(b.Addr), b.Words)
	}
}

// Atomic runs fn as an update-capable transaction, retrying until commit.
func (tm *TM) Atomic(tx *Tx, fn func(*Tx)) { tm.atomic(tx, fn, false) }

// AtomicRO runs fn read-only: no read set is kept (TL2's read-only mode);
// if fn writes, the attempt restarts in update mode.
func (tm *TM) AtomicRO(tx *Tx, fn func(*Tx)) { tm.atomic(tx, fn, true) }

func (tm *TM) atomic(tx *Tx, fn func(*Tx), ro bool) {
	if tx.tm != tm {
		panic("tl2: descriptor belongs to a different TM")
	}
	if tx.inTx {
		fn(tx) // flat nesting
		return
	}
	o := tm.obsHook.Load()
	if o == nil {
		// Uninstrumented fast path: no clock reads, no sampling draw.
		tx.upgr = false
		attempts := 0
		for {
			attempts++
			tx.Begin(ro && !tx.upgr)
			if attempts == 1 {
				tm.pol.OnStart(&tx.cmst)
			}
			if tx.runBody(fn) && tx.Commit() {
				tm.pol.OnCommit(&tx.cmst)
				return
			}
			tm.pol.OnAbort(&tx.cmst)
		}
	}
	tm.atomicObserved(tx, fn, ro, o)
}

// atomicObserved is the instrumented twin of the atomic retry loop: it
// times every attempt into the commit/abort histograms and, for sampled
// blocks, emits the begin/retry/abort/commit event trace. TL2's geometry
// is static, so events carry the construction-time lock table (Hier 0 —
// TL2 has no hierarchical layer).
func (tm *TM) atomicObserved(tx *Tx, fn func(*Tx), ro bool, o *obs.TMObs) {
	sampled := o.SampleTx()
	tx.upgr = false
	attempts := 0
	for {
		attempts++
		if sampled {
			e := tm.baseEvent(tx, obs.EvRetry, attempts)
			if attempts == 1 {
				e.Kind = obs.EvBegin
			}
			o.Trace(e)
		}
		t0 := time.Now()
		tx.Begin(ro && !tx.upgr)
		if attempts == 1 {
			tm.pol.OnStart(&tx.cmst)
		}
		if tx.runBody(fn) && tx.Commit() {
			d := uint64(time.Since(t0))
			o.OnCommit(d)
			if sampled {
				e := tm.baseEvent(tx, obs.EvCommit, attempts)
				e.DurNs = d
				o.Trace(e)
			}
			tm.pol.OnCommit(&tx.cmst)
			return
		}
		d := uint64(time.Since(t0))
		o.OnAbort(d, tx.lastAbort)
		if sampled {
			e := tm.baseEvent(tx, obs.EvAbort, attempts)
			e.Cause = tx.lastAbort
			e.DurNs = d
			o.Trace(e)
		}
		tm.pol.OnAbort(&tx.cmst)
	}
}

func (tm *TM) baseEvent(tx *Tx, kind obs.EventKind, attempts int) obs.Event {
	return obs.Event{
		TimeUnixNano: time.Now().UnixNano(),
		Kind:         kind,
		CM:           tm.pol.Kind(),
		Slot:         uint32(tx.slot),
		Attempt:      uint32(attempts),
		Locks:        uint64(len(tm.locks)),
		Shifts:       uint32(tm.shifts),
	}
}

// SetObs installs (or, with nil, detaches) the observability sink:
// commit/abort duration histograms plus the sampled flight recorder.
func (tm *TM) SetObs(o *obs.TMObs) { tm.obsHook.Store(o) }

// Obs returns the installed observability sink, nil when detached.
func (tm *TM) Obs() *obs.TMObs { return tm.obsHook.Load() }

// CommitAbortCounts returns aggregate commit/abort counters summed over
// all descriptors. Lock-free (it walks the published descriptor
// snapshot); the Serializer policy samples it to estimate the live abort
// rate.
func (tm *TM) CommitAbortCounts() (commits, aborts uint64) {
	ds := tm.descsPub.Load()
	if ds == nil {
		return 0, 0
	}
	for _, tx := range *ds {
		commits += tx.commits.Load()
		aborts += tx.aborts.Load()
	}
	return commits, aborts
}

// Stats sums counters across descriptors.
func (tm *TM) Stats() txn.Stats {
	var s txn.Stats
	tm.mu.Lock()
	descs := tm.descs
	tm.mu.Unlock()
	for _, tx := range descs {
		s.Commits += tx.commits.Load()
		s.Aborts += tx.aborts.Load()
		for i := range tx.abortsByKind {
			s.AbortsByKind[i] += tx.abortsByKind[i].Load()
		}
		s.LocksValidated += tx.locksValidated.Load()
	}
	return s
}

var (
	_ txn.Tx          = (*Tx)(nil)
	_ txn.System[*Tx] = (*TM)(nil)
)
