package tl2

import (
	"runtime"
	"sync/atomic"

	"tinystm/internal/cm"
	"tinystm/internal/mem"
	"tinystm/internal/txn"
)

type abortSignal struct{}

type wsetEntry struct {
	addr  mem.Addr
	value uint64
}

type lockRec struct {
	lockIdx  uint64
	prevLock uint64
}

// Tx is a TL2 transaction descriptor, affine to one goroutine.
type Tx struct {
	tm   *TM
	slot int
	inTx bool
	ro   bool
	upgr bool

	rv uint64 // read version (snapshot)

	yieldEvery int
	opCount    int

	rset  []uint64 // lock indices read (validated at commit)
	wset  []wsetEntry
	bloom uint64 // write-set membership filter (one word, one hash)

	acquired []lockRec // commit-time locks held, for release on failure

	allocs []allocRec
	frees  []allocRec

	// cmst is the contention-management state competitors reach through
	// the TM's slot table (priority, age, kill requests).
	cmst cm.State

	startEpoch atomic.Uint64

	// lastCommitTS records the write version of the most recent update
	// commit (zero for read-only commits).
	lastCommitTS uint64

	// lastAbort classifies the most recent rollback, read by the atomic
	// retry loop's instrumentation to bucket the failed attempt's
	// duration by cause.
	lastAbort txn.AbortKind

	commits        atomic.Uint64
	aborts         atomic.Uint64
	abortsByKind   [txn.NAbortKinds]atomic.Uint64
	locksValidated atomic.Uint64
}

type allocRec struct {
	addr  mem.Addr
	words int
}

// bloomBit maps an address to its filter bit; a 64-bit single-hash Bloom
// filter mirrors the reference TL2's write-set lookaside: effective for
// small write sets, degrading to full scans for large ones (the behaviour
// the paper contrasts with TinySTM's per-lock chains).
func bloomBit(a mem.Addr) uint64 {
	return 1 << ((uint64(a) * 0x9e3779b97f4a7c15) >> 58)
}

// Begin starts an attempt. Exported for tests that craft interleavings.
func (tx *Tx) Begin(readOnly bool) {
	if tx.inTx {
		panic("tl2: Begin on descriptor already in a transaction")
	}
	tx.cmst.BeginAttempt()
	tx.inTx = true
	tx.ro = readOnly
	tx.yieldEvery = tx.tm.yieldN
	tx.rv = tx.tm.clock.Load()
	tx.startEpoch.Store(tx.rv + 1)
	tx.rset = tx.rset[:0]
	tx.wset = tx.wset[:0]
	tx.bloom = 0
	tx.acquired = tx.acquired[:0]
	tx.allocs = tx.allocs[:0]
	tx.frees = tx.frees[:0]
}

// InTx reports whether the descriptor is inside a transaction.
func (tx *Tx) InTx() bool { return tx.inTx }

func (tx *Tx) abort(kind txn.AbortKind) {
	tx.rollback(kind)
	panic(abortSignal{})
}

func (tx *Tx) rollback(kind txn.AbortKind) {
	for _, rec := range tx.acquired {
		tx.tm.storeLock(rec.lockIdx, rec.prevLock)
	}
	for _, a := range tx.allocs {
		tx.tm.space.Free(a.addr, a.words)
	}
	tx.aborts.Add(1)
	tx.abortsByKind[kind].Add(1)
	tx.lastAbort = kind
	tx.cmst.NoteAbort(uint64(len(tx.rset) + len(tx.wset)))
	tx.cmst.EndAttempt()
	tx.inTx = false
	tx.startEpoch.Store(0)
}

func (tx *Tx) runBody(fn func(*Tx)) (ok bool) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if _, is := r.(abortSignal); is {
			ok = false
			return
		}
		if tx.inTx {
			tx.rollback(txn.AbortExplicit)
		}
		// The atomic block ends abnormally: release any policy-held
		// resources (the OnCommit/OnAbort hooks will not run) and clear
		// the per-block priority/age so a reused descriptor starts
		// fresh.
		tx.tm.pol.Detach(&tx.cmst)
		tx.cmst.NoteCommit()
		panic(r)
	}()
	fn(tx)
	return true
}

// resolveConflict consults the contention-management policy about a lock
// held by another transaction; the wait/kill protocol itself lives in
// cm.ResolveConflict, shared with core.
func (tx *Tx) resolveConflict(li uint64, k cm.ConflictKind) cm.Outcome {
	return cm.ResolveConflict(tx.tm.pol, &tx.cmst, k,
		func() (*cm.State, bool) {
			lw := tx.tm.loadLock(li)
			if !isOwned(lw) {
				return nil, false
			}
			return tx.tm.stateOf(ownerSlot(lw)), true
		})
}

// Load returns the word at addr under TL2's read rule: speculative reads
// must observe an unlocked location with version <= rv; otherwise the
// transaction aborts (TL2 has no snapshot extension).
func (tx *Tx) Load(addr uint64) uint64 {
	if !tx.inTx {
		panic("tl2: Load outside transaction")
	}
	if tx.yieldEvery != 0 {
		tx.opCount++
		if tx.opCount >= tx.yieldEvery {
			tx.opCount = 0
			runtime.Gosched()
		}
	}
	a := mem.Addr(addr)
	// Read-after-write: Bloom filter, then newest-first scan.
	if tx.bloom&bloomBit(a) != 0 {
		for i := len(tx.wset) - 1; i >= 0; i-- {
			if tx.wset[i].addr == a {
				return tx.wset[i].value
			}
		}
	}
	li := tx.tm.lockIndex(addr)
	lw := tx.tm.loadLock(li)
	var val uint64
	for {
		if isOwned(lw) {
			// Speculative read hit a committing writer's lock: the
			// contention-management policy decides (the reference TL2
			// aborts immediately, which Suicide reproduces).
			switch tx.resolveConflict(li, cm.ReadConflict) {
			case cm.Freed:
				lw = tx.tm.loadLock(li)
				continue
			case cm.Killed:
				tx.abort(txn.AbortKilled)
			}
			tx.abort(txn.AbortReadConflict)
		}
		val = tx.tm.space.Load(a)
		lw2 := tx.tm.loadLock(li)
		if lw2 == lw {
			break
		}
		lw = lw2
	}
	if versionOf(lw) > tx.rv {
		tx.abort(txn.AbortExtend)
	}
	if !tx.ro {
		tx.rset = append(tx.rset, li)
	}
	return val
}

// Store buffers the write; locks are acquired at commit time.
func (tx *Tx) Store(addr uint64, v uint64) {
	if !tx.inTx {
		panic("tl2: Store outside transaction")
	}
	if tx.ro {
		tx.upgr = true
		tx.abort(txn.AbortUpgrade)
	}
	a := mem.Addr(addr)
	if tx.bloom&bloomBit(a) != 0 {
		for i := len(tx.wset) - 1; i >= 0; i-- {
			if tx.wset[i].addr == a {
				tx.wset[i].value = v
				return
			}
		}
	}
	tx.bloom |= bloomBit(a)
	tx.wset = append(tx.wset, wsetEntry{addr: a, value: v})
}

// Alloc reserves n fresh words, released if the transaction aborts.
func (tx *Tx) Alloc(n int) uint64 {
	if !tx.inTx {
		panic("tl2: Alloc outside transaction")
	}
	if tx.ro {
		tx.upgr = true
		tx.abort(txn.AbortUpgrade)
	}
	a := tx.tm.space.Alloc(n)
	if a == mem.Nil {
		panic(txn.ErrSpaceExhausted)
	}
	tx.allocs = append(tx.allocs, allocRec{addr: a, words: n})
	return uint64(a)
}

// Free schedules the block for release at commit. Each covered word is
// re-written with its current value so commit-time locking covers the
// free (a free is semantically an update).
func (tx *Tx) Free(addr uint64, n int) {
	if !tx.inTx {
		panic("tl2: Free outside transaction")
	}
	if tx.ro {
		tx.upgr = true
		tx.abort(txn.AbortUpgrade)
	}
	for w := uint64(0); w < uint64(n); w++ {
		v := tx.Load(addr + w)
		tx.Store(addr+w, v)
	}
	tx.frees = append(tx.frees, allocRec{addr: mem.Addr(addr), words: n})
}

// Commit runs TL2's commit protocol: acquire write locks, fetch the write
// version, validate the read set (unless wv == rv+1), publish, release.
// Returns false with the transaction rolled back if it must retry.
func (tx *Tx) Commit() bool {
	if !tx.inTx {
		panic("tl2: Commit outside transaction")
	}
	if tx.cmst.Doomed() {
		// A competitor's policy asked us to die; before any lock is
		// acquired or value published this is always legal.
		tx.rollback(txn.AbortKilled)
		return false
	}
	if len(tx.wset) == 0 {
		tx.lastCommitTS = 0
		tx.commits.Add(1)
		tx.cmst.NoteCommit()
		tx.cmst.EndAttempt()
		tx.inTx = false
		tx.startEpoch.Store(0)
		return true
	}

	// Phase 1: lock the write set. On conflict the contention-management
	// policy decides (the reference implementation aborts, possibly
	// after a brief spin — exactly the Suicide/Backoff pair). Waiting
	// here happens while holding locks, so the kill-request checkpoint
	// below keeps cycles from deadlocking: one of the parties notices it
	// was asked to die and releases.
	for _, e := range tx.wset {
		li := tx.tm.lockIndex(uint64(e.addr))
		for {
			lw := tx.tm.loadLock(li)
			if isOwned(lw) {
				if ownerSlot(lw) == tx.slot {
					break // stripe already locked by an earlier entry
				}
				if tx.cmst.Doomed() {
					tx.rollback(txn.AbortKilled)
					return false
				}
				switch tx.resolveConflict(li, cm.WriteConflict) {
				case cm.Freed:
					continue
				case cm.Killed:
					tx.rollback(txn.AbortKilled)
					return false
				}
				tx.rollback(txn.AbortWriteConflict)
				return false
			}
			if tx.tm.casLock(li, lw, mkOwned(tx.slot, len(tx.acquired))) {
				tx.acquired = append(tx.acquired, lockRec{lockIdx: li, prevLock: lw})
				break
			}
			// CAS lost a race: re-read the lock word and re-decide.
		}
	}

	// Phase 2: write version.
	wv := tx.tm.clock.Add(1)
	if wv >= maxClock() {
		panic("tl2: global version clock exhausted")
	}

	// Phase 3: read-set validation (skipped when nothing committed in
	// between, mirroring TL2's rv+1 special case).
	if wv != tx.rv+1 {
		n := uint64(0)
		for _, li := range tx.rset {
			n++
			lw := tx.tm.loadLock(li)
			if isOwned(lw) {
				if ownerSlot(lw) != tx.slot {
					tx.locksValidated.Add(n)
					tx.rollback(txn.AbortValidate)
					return false
				}
				// Self-locked: the stripe's pre-acquisition version
				// must still be within the snapshot, otherwise our
				// earlier read was stale (lost-update hazard).
				if versionOf(tx.acquired[ownerEntry(lw)].prevLock) > tx.rv {
					tx.locksValidated.Add(n)
					tx.rollback(txn.AbortValidate)
					return false
				}
				continue
			}
			if versionOf(lw) > tx.rv {
				tx.locksValidated.Add(n)
				tx.rollback(txn.AbortValidate)
				return false
			}
		}
		tx.locksValidated.Add(n)
	}

	// Phase 4: publish values, then release locks at wv.
	for _, e := range tx.wset {
		tx.tm.space.Store(e.addr, e.value)
	}
	newLW := mkVersion(wv)
	for _, rec := range tx.acquired {
		tx.tm.storeLock(rec.lockIdx, newLW)
	}

	for _, f := range tx.frees {
		tx.tm.pool.Retire(uint64(f.addr), f.words, wv)
	}
	tx.lastCommitTS = wv
	tx.commits.Add(1)
	tx.cmst.NoteCommit()
	tx.cmst.EndAttempt()
	tx.inTx = false
	tx.startEpoch.Store(0)
	if len(tx.frees) > 0 {
		tx.tm.maybeDrainLimbo()
	}
	return true
}

// Retry aborts the attempt explicitly; Atomic re-runs the block.
func (tx *Tx) Retry() {
	if !tx.inTx {
		panic("tl2: Retry outside transaction")
	}
	tx.abort(txn.AbortExplicit)
}

// LastCommitTS returns the write version of the descriptor's most recent
// update commit (zero if it was read-only). Update transactions serialize
// in write-version order.
func (tx *Tx) LastCommitTS() uint64 { return tx.lastCommitTS }

// TxStats returns this descriptor's counters.
func (tx *Tx) TxStats() txn.Stats {
	var s txn.Stats
	s.Commits = tx.commits.Load()
	s.Aborts = tx.aborts.Load()
	for i := range tx.abortsByKind {
		s.AbortsByKind[i] = tx.abortsByKind[i].Load()
	}
	s.LocksValidated = tx.locksValidated.Load()
	return s
}
