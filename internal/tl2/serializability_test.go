package tl2

import (
	"sort"
	"sync"
	"testing"

	"tinystm/internal/rng"
)

// The TL2 analogue of core's serializability checker: update transactions
// serialize in write-version order; replaying the committed history must
// reproduce every logged read.

type loggedTx struct {
	ts     uint64
	reads  [](struct{ addr, val uint64 })
	writes [](struct{ addr, val uint64 })
}

func TestSerializability(t *testing.T) {
	tm, _ := newTestTM(t, nil)
	const (
		workers     = 4
		txPerWorker = 300
		words       = 8
	)
	setup := tm.NewTx()
	var base uint64
	tm.Atomic(setup, func(tx *Tx) { base = tx.Alloc(words) })

	var mu sync.Mutex
	var history []loggedTx

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := rng.NewThread(99, id)
			tx := tm.NewTx()
			for i := 0; i < txPerWorker; i++ {
				var rec loggedTx
				rAddrs := []uint64{
					base + uint64(r.Intn(words)),
					base + uint64(r.Intn(words)),
				}
				wAddrs := []uint64{
					base + uint64(r.Intn(words)),
					base + uint64(r.Intn(words)),
				}
				val := uint64(id)<<32 | uint64(i+1)
				tm.Atomic(tx, func(tx *Tx) {
					rec = loggedTx{}
					for _, a := range rAddrs {
						rec.reads = append(rec.reads,
							struct{ addr, val uint64 }{a, tx.Load(a)})
					}
					for k, a := range wAddrs {
						v := val + uint64(k)<<16
						tx.Store(a, v)
						rec.writes = append(rec.writes,
							struct{ addr, val uint64 }{a, v})
					}
				})
				rec.ts = tx.LastCommitTS()
				if rec.ts == 0 {
					t.Error("update commit reported zero write version")
					return
				}
				mu.Lock()
				history = append(history, rec)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	sort.Slice(history, func(i, j int) bool { return history[i].ts < history[j].ts })
	state := make(map[uint64]uint64, words)
	for i, rec := range history {
		if i > 0 && rec.ts == history[i-1].ts {
			t.Fatalf("duplicate write version %d", rec.ts)
		}
		for _, rd := range rec.reads {
			if got := state[rd.addr]; got != rd.val {
				t.Fatalf("tx@%d read addr %d = %d, but serial replay has %d",
					rec.ts, rd.addr, rd.val, got)
			}
		}
		for _, wr := range rec.writes {
			state[wr.addr] = wr.val
		}
	}
	tm.Atomic(setup, func(tx *Tx) {
		for a, v := range state {
			if got := tx.Load(a); got != v {
				//stm:allow-effect test-only: a failed assertion ends the test, and the throwaway TM dies with it
				t.Fatalf("final memory addr %d = %d, replay has %d", a, got, v)
			}
		}
	})
}
