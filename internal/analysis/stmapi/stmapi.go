// Package stmapi recognizes the repo's STM API shapes in type-checked
// syntax: atomic-runner calls (Atomic / AtomicRO / AtomicSnap and
// in-package wrappers around them), transaction descriptors, descriptor
// sources (NewTx, TxPool.Get) and the transactional map's mutating
// operations. The analyzers under internal/analysis share these
// recognizers so they agree on what "a transactional body" is.
//
// Matching is by method name plus type shape, not by import path: the
// same analyzers then work against internal/core, internal/tl2, the
// generic txn.System[T] interface, and the small stub packages in each
// analyzer's testdata tree.
package stmapi

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BodyKind classifies the execution mode a transactional body runs under.
type BodyKind int

// The execution modes.
const (
	NotBody BodyKind = iota
	// Update: Atomic — the body may write; it re-executes on abort.
	Update
	// ReadOnly: AtomicRO — no read set extension, must not write.
	ReadOnly
	// Snapshot: AtomicSnap — MVCC snapshot mode, must not write.
	Snapshot
)

// String returns the runner method name for the kind.
func (k BodyKind) String() string {
	switch k {
	case Update:
		return "Atomic"
	case ReadOnly:
		return "AtomicRO"
	case Snapshot:
		return "AtomicSnap"
	default:
		return "NotBody"
	}
}

// ReadOnlyKind reports whether k forbids writes.
func (k BodyKind) ReadOnlyKind() bool { return k == ReadOnly || k == Snapshot }

var runnerNames = map[string]BodyKind{
	"Atomic":     Update,
	"AtomicRO":   ReadOnly,
	"AtomicSnap": Snapshot,
}

// ClassifyRunner reports whether call is a direct atomic-runner method
// call — x.Atomic(tx, fn), x.AtomicRO(tx, fn), x.AtomicSnap(tx, fn) —
// returning its kind and the body argument.
func ClassifyRunner(info *types.Info, call *ast.CallExpr) (BodyKind, ast.Expr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return NotBody, nil
	}
	kind, ok := runnerNames[sel.Sel.Name]
	if !ok || len(call.Args) != 2 {
		return NotBody, nil
	}
	sig, ok := info.TypeOf(call.Args[1]).Underlying().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 0 {
		return NotBody, nil
	}
	return kind, call.Args[1]
}

// WrapperInfo describes an in-package function that forwards one of its
// func-typed parameters to an atomic runner (e.g. kvstore's
// Store.atomicRO). Calls to such a function run the forwarded argument as
// a transactional body of the recorded kind.
type WrapperInfo struct {
	Kind      BodyKind
	BodyParam int
}

// Wrappers maps a package function (its origin object) to wrapper info.
type Wrappers map[*types.Func]WrapperInfo

// FindWrappers scans the package for one-level runner wrappers. A
// function that forwards its parameter to both a read-only and a snapshot
// runner (the snapshot-or-fallback pattern) is classified ReadOnly.
func FindWrappers(info *types.Info, files []*ast.File) Wrappers {
	w := make(Wrappers)
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			params := paramObjects(info, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				kind, body := ClassifyRunner(info, call)
				if kind == NotBody {
					return true
				}
				id, ok := body.(*ast.Ident)
				if !ok {
					return true
				}
				bodyObj := info.Uses[id]
				for i, p := range params {
					if p != nil && p == bodyObj {
						prev, seen := w[obj]
						k := kind
						if seen {
							k = weakerKind(prev.Kind, kind)
						}
						w[obj] = WrapperInfo{Kind: k, BodyParam: i}
					}
				}
				return true
			})
		}
	}
	return w
}

// weakerKind merges two runner kinds a wrapper may dispatch to: any
// read-only path makes the wrapper read-only for checking purposes.
func weakerKind(a, b BodyKind) BodyKind {
	if a == ReadOnly || b == ReadOnly {
		return ReadOnly
	}
	if a == Snapshot || b == Snapshot {
		return Snapshot
	}
	return Update
}

func paramObjects(info *types.Info, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			out = append(out, info.Defs[name])
		}
		if len(field.Names) == 0 {
			out = append(out, nil)
		}
	}
	return out
}

// ClassifyCall extends ClassifyRunner with the package's wrappers.
func ClassifyCall(info *types.Info, wrappers Wrappers, call *ast.CallExpr) (BodyKind, ast.Expr) {
	if kind, body := ClassifyRunner(info, call); kind != NotBody {
		return kind, body
	}
	fn := CalleeFunc(info, call)
	if fn == nil {
		return NotBody, nil
	}
	wi, ok := wrappers[fn.Origin()]
	if !ok || wi.BodyParam >= len(call.Args) {
		return NotBody, nil
	}
	return wi.Kind, call.Args[wi.BodyParam]
}

// CalleeFunc resolves the called function or method object, if any.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// IsTxLike reports whether t is a transaction-descriptor type: a (pointer
// to a) named type called Tx, the txn.Tx interface, or a type parameter
// whose constraint carries a Store method (the harness's generic T).
func IsTxLike(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch tt := t.(type) {
	case *types.Named:
		if tt.Obj().Name() == "Tx" {
			return true
		}
		return hasStoreMethod(t)
	case *types.TypeParam:
		return hasStoreMethod(tt.Constraint())
	case *types.Interface:
		return hasStoreMethod(tt)
	}
	return false
}

// hasStoreMethod reports whether t's method set contains
// Store(uint64, uint64).
func hasStoreMethod(t types.Type) bool {
	if t == nil {
		return false
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		for i := 0; i < iface.NumMethods(); i++ {
			if isStoreSig(iface.Method(i)) {
				return true
			}
		}
		return false
	}
	ms := types.NewMethodSet(types.NewPointer(t))
	for i := 0; i < ms.Len(); i++ {
		if m, ok := ms.At(i).Obj().(*types.Func); ok && isStoreSig(m) {
			return true
		}
	}
	return false
}

func isStoreSig(m *types.Func) bool {
	if m.Name() != "Store" {
		return false
	}
	sig, ok := m.Type().(*types.Signature)
	return ok && sig.Params().Len() == 2 && sig.Results().Len() == 0
}

// ResolveBody resolves a runner's body argument to a function literal:
// either the literal itself or, via bodies, a local variable bound to one.
func ResolveBody(bodies map[types.Object]*ast.FuncLit, info *types.Info, expr ast.Expr) *ast.FuncLit {
	switch e := ast.Unparen(expr).(type) {
	case *ast.FuncLit:
		return e
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return bodies[obj]
		}
	}
	return nil
}

// LocalFuncLits indexes `v := func(...){...}` bindings across the package
// so a runner call's body argument can be resolved when it is a variable.
// Only single-assignment bindings are recorded: a rebound variable could
// alias several literals.
func LocalFuncLits(info *types.Info, files []*ast.File) map[types.Object]*ast.FuncLit {
	out := make(map[types.Object]*ast.FuncLit)
	rebound := make(map[types.Object]bool)
	bind := func(id *ast.Ident, rhs ast.Expr) {
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
		if !ok || out[obj] != nil || rebound[obj] {
			rebound[obj] = true
			delete(out, obj)
			return
		}
		out[obj] = lit
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) != len(st.Rhs) {
					return true
				}
				for i, lhs := range st.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if _, isLit := ast.Unparen(st.Rhs[i]).(*ast.FuncLit); isLit {
							bind(id, st.Rhs[i])
						}
					}
				}
			case *ast.ValueSpec:
				if len(st.Names) != len(st.Values) {
					return true
				}
				for i, id := range st.Names {
					if _, isLit := ast.Unparen(st.Values[i]).(*ast.FuncLit); isLit {
						bind(id, st.Values[i])
					}
				}
			}
			return true
		})
	}
	return out
}

// FuncDecls indexes the package's function declarations by their (origin)
// object, for in-package call-graph walks.
func FuncDecls(info *types.Info, files []*ast.File) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
					out[obj] = fd
				}
			}
		}
	}
	return out
}

// MutatorCall reports whether call is a transactional write: tx.Store /
// tx.Free on a descriptor, or a map-style mutator — a method named Put,
// Delete, CAS, Add or Grow whose first argument is a descriptor.
// The returned label names the operation for diagnostics.
func MutatorCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	switch name {
	case "Store", "Free":
		if len(call.Args) == 2 && IsTxLike(info.TypeOf(sel.X)) {
			return "tx." + name, true
		}
	case "Put", "Delete", "CAS", "Add", "Grow":
		if len(call.Args) >= 1 && IsTxLike(info.TypeOf(call.Args[0])) {
			return name, true
		}
	}
	return "", false
}

// RedoCall reports whether call records a redo operation: a method named
// Redo taking one argument, on a descriptor or with a RedoOp argument
// (covers the any(tx).(redoer).Redo capability-assertion form).
func RedoCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Redo" || len(call.Args) != 1 {
		return false
	}
	if IsTxLike(info.TypeOf(sel.X)) {
		return true
	}
	if named, ok := derefNamed(info.TypeOf(call.Args[0])); ok && named.Obj().Name() == "RedoOp" {
		return true
	}
	return false
}

// TxSourceCall reports whether call mints or borrows a descriptor:
// x.NewTx() (result is a descriptor) or pool.Get() on a TxPool. The label
// names the source for diagnostics.
func TxSourceCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return "", false
	}
	switch sel.Sel.Name {
	case "NewTx":
		if IsTxLike(info.TypeOf(call)) {
			return "NewTx", true
		}
	case "Get":
		if named, ok := derefNamed(info.TypeOf(sel.X)); ok && named.Obj().Name() == "TxPool" && IsTxLike(info.TypeOf(call)) {
			return "TxPool.Get", true
		}
	}
	return "", false
}

func derefNamed(t types.Type) (*types.Named, bool) {
	if t == nil {
		return nil, false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return n, ok
}

// PosWithin reports whether pos lies within node's source range.
func PosWithin(pos token.Pos, node ast.Node) bool {
	return node != nil && node.Pos() <= pos && pos < node.End()
}

// OpaqueCallee reports whether a call-graph walk should treat fn as a
// leaf. Methods on descriptor (TxLike) types and the atomic runners
// themselves are the STM runtime: walking into tx.Load would surface the
// runtime's own rollback writes as body violations, and a nested runner
// call is txbody's nesting diagnostic, not a reachable-write chain.
func OpaqueCallee(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	recv := sig.Recv()
	if recv == nil {
		return false
	}
	if IsTxLike(recv.Type()) {
		return true
	}
	switch fn.Name() {
	case "Atomic", "AtomicRO", "AtomicSnap":
		return true
	}
	return false
}
