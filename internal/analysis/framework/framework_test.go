package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// allowSrc exercises the three annotation placements: own-line targeting
// the next code line, stacked markers (the second comment line is not
// code, so both target the same statement), and the trailing form.
const allowSrc = `package p

func f() {
	x := 1
	//stm:allow-effect reason one
	//stm:allow-write reason two
	x = 2
	x = 3 //stm:allow-effect trailing form
	_ = x
}
`

func parseAllowSrc(t *testing.T) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow.go", allowSrc, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return &Package{Fset: fset, Files: []*ast.File{f}}
}

func lineStart(t *testing.T, pkg *Package, line int) token.Pos {
	t.Helper()
	return pkg.Fset.File(pkg.Files[0].Pos()).LineStart(line)
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text, want string
	}{
		{"//stm:allow-write reason", "write"},
		{"// stm:allow-effect", "effect"},
		{"//stm:allow-unreleased: with punctuation", "unreleased"},
		{"//stm:allowwrite missing dash", ""},
		{"// just prose about stm:allow-write", ""},
		{"//stm:allow-", ""},
	}
	for _, c := range cases {
		if got := parseAllow(c.text); got != c.want {
			t.Errorf("parseAllow(%q) = %q, want %q", c.text, got, c.want)
		}
	}
}

func TestCollectAllowsTargeting(t *testing.T) {
	pkg := parseAllowSrc(t)

	effect := collectAllows(pkg, "effect")
	if len(effect) != 2 {
		t.Fatalf("effect allows = %d, want 2", len(effect))
	}
	// The own-line marker skips the stacked //stm:allow-write comment
	// line and lands on the statement both markers cover.
	if effect[0].targetLine != 7 {
		t.Errorf("stacked own-line marker targets line %d, want 7", effect[0].targetLine)
	}
	if effect[1].targetLine != 8 {
		t.Errorf("trailing marker targets line %d, want 8 (its own line)", effect[1].targetLine)
	}

	write := collectAllows(pkg, "write")
	if len(write) != 1 || write[0].targetLine != 7 {
		t.Fatalf("write allows = %+v, want one targeting line 7", write)
	}
}

func TestApplyAllowsSuppressionAndStale(t *testing.T) {
	pkg := parseAllowSrc(t)
	a := &Analyzer{Name: "txbody", Marker: "effect"}

	diags := []Diagnostic{
		{Pos: lineStart(t, pkg, 7), Message: "covered by the stacked marker"},
		{Pos: lineStart(t, pkg, 8), Message: "covered by the trailing marker"},
		{Pos: lineStart(t, pkg, 4), Message: "not annotated"},
	}
	kept := applyAllows(pkg, a, diags)
	if len(kept) != 1 || kept[0].Message != "not annotated" {
		t.Fatalf("kept = %+v, want only the unannotated diagnostic", kept)
	}

	// With nothing to suppress, both effect markers must be reported
	// stale; the write marker belongs to another analyzer and is not.
	stale := applyAllows(pkg, a, nil)
	if len(stale) != 2 {
		t.Fatalf("stale diagnostics = %d, want 2", len(stale))
	}
	for _, d := range stale {
		if !strings.Contains(d.Message, "stale //stm:allow-effect annotation") {
			t.Errorf("unexpected stale message %q", d.Message)
		}
	}
}
