// Package framework is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis driver surface: Analyzer, Pass, Diagnostic,
// a package loader and an annotation (suppression) layer.
//
// Why not x/tools itself? The repo builds hermetically from the Go
// toolchain alone — no module downloads — and go/analysis is not part of
// the standard library. The API here mirrors go/analysis closely enough
// (an Analyzer has a Name, a Doc and a Run(*Pass) function; a Pass carries
// the fset, the syntax trees and the go/types information of one package)
// that each analyzer under internal/analysis/ can be ported to a real
// x/tools multichecker by swapping the import, should the dependency ever
// be vendored. Type information for dependencies comes from the gc
// compiler's export data via `go list -export` (see load.go), exactly the
// mechanism go/packages uses under the hood.
//
// # Annotations
//
// Every analyzer declares a Marker, e.g. "write" for the rowrite analyzer.
// A comment of the form
//
//	//stm:allow-write — reason the violation is intentional
//
// suppresses that analyzer's diagnostics on the annotated line: the
// comment's own line when code shares it (trailing form), otherwise the
// next line containing code (comment-only and blank lines are skipped, so
// several //stm:allow-* markers can stack above one statement). An
// annotation that suppresses nothing is itself reported as a diagnostic —
// stale escape hatches must not accumulate.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AllowPrefix is the comment prefix shared by all suppression annotations.
const AllowPrefix = "stm:allow-"

// An Analyzer describes one static check over a package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is the one-paragraph description printed by `stmlint -list`.
	Doc string
	// Marker is the annotation suffix: a diagnostic from this analyzer is
	// suppressed by a `//stm:allow-<Marker>` comment on its line.
	Marker string
	// Run reports diagnostics on the pass via Pass.Reportf.
	Run func(*Pass) error
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass carries the loaded state of one package to an analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	PkgPath   string
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file. Analyzers whose
// invariant only concerns long-lived production code (release, rawatomic)
// use it to skip test files wholesale.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// A Finding is a fully resolved diagnostic: position plus the analyzer
// that produced it.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Position, f.Message, f.Analyzer)
}

// RunAnalyzers runs each analyzer over pkg, applies the //stm:allow-*
// suppression layer and returns the surviving findings sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			PkgPath:   pkg.PkgPath,
			TypesInfo: pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.PkgPath, err)
		}
		for _, d := range applyAllows(pkg, a, pass.diags) {
			out = append(out, Finding{
				Analyzer: a.Name,
				Position: pkg.Fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Position, out[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// allowComment is one //stm:allow-<marker> annotation and the code line
// it governs.
type allowComment struct {
	pos        token.Pos
	marker     string
	file       string
	targetLine int // 0 when no code line follows the comment
}

// applyAllows removes diagnostics covered by this analyzer's annotations
// and appends a stale-annotation diagnostic for every annotation of this
// analyzer's marker that covered nothing.
func applyAllows(pkg *Package, a *Analyzer, diags []Diagnostic) []Diagnostic {
	allows := collectAllows(pkg, a.Marker)
	if len(allows) == 0 {
		return diags
	}
	used := make([]bool, len(allows))
	var kept []Diagnostic
	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		suppressed := false
		for i, al := range allows {
			if al.file == p.Filename && al.targetLine == p.Line {
				used[i] = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for i, al := range allows {
		if !used[i] {
			kept = append(kept, Diagnostic{
				Pos: al.pos,
				Message: fmt.Sprintf("stale //%s%s annotation: it suppresses no %s diagnostic (remove it)",
					AllowPrefix, al.marker, a.Name),
			})
		}
	}
	return kept
}

// collectAllows finds this marker's annotations across the package and
// resolves each to the code line it governs.
func collectAllows(pkg *Package, marker string) []allowComment {
	var out []allowComment
	for _, f := range pkg.Files {
		codeLines := codeLineSet(pkg.Fset, f)
		tf := pkg.Fset.File(f.Pos())
		if tf == nil {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := parseAllow(c.Text)
				if m != marker {
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				target := 0
				if codeLines[p.Line] {
					target = p.Line // trailing form
				} else {
					for ln := p.Line + 1; ln <= tf.LineCount(); ln++ {
						if codeLines[ln] {
							target = ln
							break
						}
					}
				}
				out = append(out, allowComment{
					pos:        c.Pos(),
					marker:     marker,
					file:       p.Filename,
					targetLine: target,
				})
			}
		}
	}
	return out
}

// parseAllow extracts the marker name from an //stm:allow-<name> comment,
// returning "" for any other comment. Anything after the name (a reason,
// recommended) is ignored.
func parseAllow(text string) string {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, AllowPrefix) {
		return ""
	}
	rest := text[len(AllowPrefix):]
	end := 0
	for end < len(rest) {
		ch := rest[end]
		if ch >= 'a' && ch <= 'z' || ch == '-' {
			end++
			continue
		}
		break
	}
	return rest[:end]
}

// codeLineSet returns the set of lines in f that contain code tokens
// (comments excluded).
func codeLineSet(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		case *ast.File:
			return true
		}
		lines[fset.Position(n.Pos()).Line] = true
		lines[fset.Position(n.End()).Line] = true
		return true
	})
	return lines
}
