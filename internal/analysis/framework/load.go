package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// A Package is one loaded-and-type-checked analysis unit.
type Package struct {
	PkgPath string
	Name    string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// TypeErrors collects go/types errors; analysis still runs on a
	// partially checked package, but drivers should surface these.
	TypeErrors []error
	// Kind is "prod" (GoFiles only), "test" (GoFiles+TestGoFiles) or
	// "xtest" (the external _test package), or "stub" for analysistest
	// packages loaded from a testdata/src tree.
	Kind string
}

// A Loader loads module packages (via the go command) or testdata stub
// packages, type-checking target sources against gc export data produced
// by `go list -export` — the same data go/packages serves, with no
// dependency outside the standard library and the toolchain.
type Loader struct {
	// Dir is the module root all go commands run in.
	Dir string
	// StubRoot, when set, is an analysistest-style source root: import
	// paths are resolved against StubRoot/<path> before the module and
	// the standard library.
	StubRoot string
	// IncludeTests selects the augmented (test-file) variant of each
	// target package plus its external _test package.
	IncludeTests bool

	Fset *token.FileSet

	exportImp   types.ImporterFrom
	exportPaths map[string]string
	overrides   map[string]*types.Package
	stubCache   map[string]*stubEntry
}

type stubEntry struct {
	pkg      *Package
	checking bool
}

// NewLoader returns a loader rooted at dir.
func NewLoader(dir string) *Loader {
	l := &Loader{
		Dir:         dir,
		Fset:        token.NewFileSet(),
		exportPaths: make(map[string]string),
		overrides:   make(map[string]*types.Package),
		stubCache:   make(map[string]*stubEntry),
	}
	l.exportImp = importer.ForCompiler(l.Fset, "gc", l.lookupExport).(types.ImporterFrom)
	return l
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath   string
	Name         string
	Dir          string
	Export       string
	ForTest      string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Error        *struct{ Err string }
}

// Load loads the packages matching patterns and returns one analysis unit
// per package (plus external test packages when IncludeTests is set).
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	targets, err := l.goList(append([]string{"-e", "-json", "--"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	l.warmExports(patterns)

	var out []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", t.ImportPath, t.Error.Err)
		}
		if t.Name == "" || len(t.GoFiles) == 0 && len(t.TestGoFiles) == 0 {
			continue
		}
		files := t.GoFiles
		kind := "prod"
		if l.IncludeTests && len(t.TestGoFiles) > 0 {
			files = append(append([]string{}, t.GoFiles...), t.TestGoFiles...)
			kind = "test"
		}
		pkg, err := l.checkSource(t.ImportPath, t.Name, t.Dir, files, kind)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
		if l.IncludeTests && len(t.XTestGoFiles) > 0 {
			// The external test package imports the package under test;
			// route that import to the augmented source-checked variant so
			// in-package test helpers exported for _test files resolve.
			l.overrides[t.ImportPath] = pkg.Types
			xpkg, err := l.checkSource(t.ImportPath+"_test", t.Name+"_test", t.Dir, t.XTestGoFiles, "xtest")
			delete(l.overrides, t.ImportPath)
			if err != nil {
				return nil, err
			}
			out = append(out, xpkg)
		}
	}
	return out, nil
}

// LoadStub loads one package from the StubRoot tree (analysistest).
func (l *Loader) LoadStub(path string) (*Package, error) {
	if l.StubRoot == "" {
		return nil, fmt.Errorf("loader has no StubRoot")
	}
	e, err := l.loadStubEntry(path)
	if err != nil {
		return nil, err
	}
	return e.pkg, nil
}

func (l *Loader) loadStubEntry(path string) (*stubEntry, error) {
	if e, ok := l.stubCache[path]; ok {
		if e.checking {
			return nil, fmt.Errorf("import cycle through stub package %q", path)
		}
		return e, nil
	}
	dir := filepath.Join(l.StubRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, "_") {
			continue
		}
		files = append(files, name)
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in stub package %s", dir)
	}
	e := &stubEntry{checking: true}
	l.stubCache[path] = e
	pkg, err := l.checkSource(path, "", dir, files, "stub")
	e.checking = false
	if err != nil {
		delete(l.stubCache, path)
		return nil, err
	}
	e.pkg = pkg
	return e, nil
}

// checkSource parses the named files in dir and type-checks them as one
// package, resolving imports through the loader.
func (l *Loader) checkSource(pkgPath, name, dir string, files []string, kind string) (*Package, error) {
	var syntax []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(l.Fset, filepath.Join(dir, f), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, af)
	}
	if name == "" && len(syntax) > 0 {
		name = syntax[0].Name.Name
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	pkg := &Package{
		PkgPath: pkgPath,
		Name:    name,
		Dir:     dir,
		Fset:    l.Fset,
		Files:   syntax,
		Info:    info,
		Kind:    kind,
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(pkgPath, l.Fset, syntax, info)
	pkg.Types = tpkg
	return pkg, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.Dir, 0)
}

// ImportFrom implements types.ImporterFrom: overrides first, then stub
// packages, then gc export data (module + standard library).
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.overrides[path]; ok {
		return p, nil
	}
	if l.StubRoot != "" {
		if st, err := os.Stat(filepath.Join(l.StubRoot, filepath.FromSlash(path))); err == nil && st.IsDir() {
			e, err := l.loadStubEntry(path)
			if err != nil {
				return nil, err
			}
			return e.pkg.Types, nil
		}
	}
	return l.exportImp.ImportFrom(path, dir, mode)
}

// lookupExport hands the gc importer a reader over path's export data,
// asking the go command to (re)build it if the build cache is cold.
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	if p, ok := l.exportPaths[path]; ok {
		if p == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(p)
	}
	out, err := l.goRaw("list", "-export", "-f", "{{.Export}}", path)
	p := strings.TrimSpace(string(out))
	if err != nil || p == "" {
		l.exportPaths[path] = ""
		if err != nil {
			return nil, fmt.Errorf("go list -export %s: %w", path, err)
		}
		return nil, fmt.Errorf("no export data for %q", path)
	}
	l.exportPaths[path] = p
	return os.Open(p)
}

// warmExports pre-resolves export data for the targets' whole dependency
// graph (test imports included) with a single go invocation, so the
// per-import fallback in lookupExport stays the exception.
func (l *Loader) warmExports(patterns []string) {
	args := append([]string{"-deps", "-test", "-export", "-e", "-json", "--"}, patterns...)
	pkgs, err := l.goList(args...)
	if err != nil {
		return // lookupExport will resolve paths one by one
	}
	for _, p := range pkgs {
		// Skip per-test-binary rebuilds ("pkg [other.test]"): their export
		// data describes a variant compilation of the same import path.
		if p.ForTest != "" || p.Export == "" {
			continue
		}
		if _, ok := l.exportPaths[p.ImportPath]; !ok {
			l.exportPaths[p.ImportPath] = p.Export
		}
	}
}

func (l *Loader) goList(args ...string) ([]*listPkg, error) {
	out, err := l.goRaw(append([]string{"list"}, args...)...)
	if err != nil && len(bytes.TrimSpace(out)) == 0 {
		return nil, err
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

func (l *Loader) goRaw(args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return out, fmt.Errorf("go %s: %v: %s", strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}
