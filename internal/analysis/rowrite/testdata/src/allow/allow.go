// Package allow exercises //stm:allow-write suppression and stale
// annotation detection for the rowrite analyzer.
package allow

import "stm"

func upgradeOnWrite(tm *stm.TM) {
	tx := tm.NewTx()
	defer tx.Release()
	tm.AtomicRO(tx, func(tx *stm.Tx) {
		v := tx.Load(1)
		//stm:allow-write deliberate: triggers the RO->update upgrade path
		tx.Store(1, v+1)
	})
}

func suppressesOnlyTheNextLine(tm *stm.TM, m *stm.Map) {
	tx := tm.NewTx()
	defer tx.Release()
	tm.AtomicRO(tx, func(tx *stm.Tx) {
		//stm:allow-write covers the Put only
		m.Put(tx, 1, 2)
		m.Delete(tx, 3) // want `Delete inside AtomicRO body`
	})
}

func stale(tm *stm.TM) {
	tx := tm.NewTx()
	defer tx.Release()
	tm.AtomicRO(tx, func(tx *stm.Tx) {
		//stm:allow-write nothing below writes // want `stale //stm:allow-write annotation`
		_ = tx.Load(1)
	})
}
