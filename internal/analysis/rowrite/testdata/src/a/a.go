// Package a exercises rowrite violations: writes reachable from
// read-only and snapshot bodies.
package a

import "stm"

func inline(tm *stm.TM, m *stm.Map) {
	tx := tm.NewTx()
	defer tx.Release()
	tm.AtomicRO(tx, func(tx *stm.Tx) {
		tx.Store(1, 2) // want `tx.Store inside AtomicRO body`
	})
	tm.AtomicSnap(tx, func(tx *stm.Tx) {
		tx.Free(1, 1) // want `tx.Free inside AtomicSnap body`
	})
	tm.AtomicRO(tx, func(tx *stm.Tx) {
		m.Put(tx, 1, 2) // want `Put inside AtomicRO body`
	})
}

func helperWrite(tx *stm.Tx, m *stm.Map) {
	m.Delete(tx, 9)
}

func throughHelper(tm *stm.TM, m *stm.Map) {
	tx := tm.NewTx()
	defer tx.Release()
	tm.AtomicRO(tx, func(tx *stm.Tx) {
		helperWrite(tx, m) // want `AtomicRO body reaches a write: Delete`
	})
}

func sharedBody(tm *stm.TM, m *stm.Map, ro bool) {
	tx := tm.NewTx()
	defer tx.Release()
	body := func(tx *stm.Tx) {
		m.CAS(tx, 1, 2, 3)
	}
	if ro {
		tm.AtomicRO(tx, body) // want `AtomicRO body reaches a write: CAS`
	} else {
		tm.Atomic(tx, body)
	}
}

// store wraps the runner the way kvstore does; the wrapper's body
// argument must still be analyzed as a read-only body.
type store struct {
	tm *stm.TM
	m  *stm.Map
}

func (s *store) atomicRO(tx *stm.Tx, fn func(*stm.Tx)) {
	s.tm.AtomicRO(tx, fn)
}

func viaWrapper(s *store) {
	tx := s.tm.NewTx()
	defer tx.Release()
	s.atomicRO(tx, func(tx *stm.Tx) {
		tx.Store(3, 4) // want `tx.Store inside AtomicRO body`
	})
}

func readsAreFine(tm *stm.TM, m *stm.Map) uint64 {
	tx := tm.NewTx()
	defer tx.Release()
	var v uint64
	tm.AtomicRO(tx, func(tx *stm.Tx) {
		v = tx.Load(1)
		_, _ = m.Get(tx, 2)
	})
	return v
}
