// Package rowrite checks that read-only and snapshot transaction bodies
// never write: no tx.Store / tx.Free, and no mutating transactional-map
// operation (Put, Delete, CAS, Add, Grow taking a descriptor). AtomicRO
// bodies that write trigger the upgrade-on-write abort and restart as
// update transactions — correct but silently twice the work; AtomicSnap
// bodies that write abandon their wait-free guarantee the same way. A
// body that intends the upgrade documents it with //stm:allow-write.
//
// The check walks the in-package call graph: a body that calls a helper
// which writes is flagged at the runner call site (the helper may be
// shared with update bodies, so the helper itself is not the violation).
package rowrite

import (
	"fmt"
	"go/ast"
	"go/types"

	"tinystm/internal/analysis/framework"
	"tinystm/internal/analysis/stmapi"
)

// Analyzer is the rowrite analyzer.
var Analyzer = &framework.Analyzer{
	Name:   "rowrite",
	Doc:    "report writes reachable inside AtomicRO / AtomicSnap bodies",
	Marker: "write",
	Run:    run,
}

// maxDepth bounds the in-package call-graph walk.
const maxDepth = 10

func run(pass *framework.Pass) error {
	info := pass.TypesInfo
	wrappers := stmapi.FindWrappers(info, pass.Files)
	funcLits := stmapi.LocalFuncLits(info, pass.Files)
	decls := stmapi.FuncDecls(info, pass.Files)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind, bodyArg := stmapi.ClassifyCall(info, wrappers, call)
			if !kind.ReadOnlyKind() {
				return true
			}
			body := stmapi.ResolveBody(funcLits, info, bodyArg)
			if body == nil {
				return true
			}
			w := &walker{
				pass:    pass,
				info:    info,
				decls:   decls,
				kind:    kind,
				visited: make(map[*types.Func]bool),
			}
			// Inline literal: report at each write. Resolved through a
			// variable: the literal may be shared with update runners (the
			// batch-apply pattern), so report at the runner call site.
			if lit, isInline := ast.Unparen(bodyArg).(*ast.FuncLit); isInline {
				w.walkNode(lit.Body, nil, 0, nil)
			} else {
				w.reportAt = call
				w.walkNode(body.Body, nil, 0, nil)
			}
			return true
		})
	}
	return nil
}

type walker struct {
	pass    *framework.Pass
	info    *types.Info
	decls   map[*types.Func]*ast.FuncDecl
	kind    stmapi.BodyKind
	visited map[*types.Func]bool
	// reportAt, when set, anchors diagnostics at the runner call instead
	// of the write site (body resolved through a shared variable).
	reportAt *ast.CallExpr
	reported map[string]bool
}

// walkNode scans one function body. via names the call chain from the
// transactional body to this function; anchor, when non-nil, is the
// top-level call inside the body that led into helper code — diagnostics
// for nested writes land there, so the annotation goes next to the body's
// own code, not inside a helper shared with update bodies.
func (w *walker) walkNode(n ast.Node, via []string, depth int, anchor *ast.CallExpr) {
	if depth > maxDepth {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if label, isMut := stmapi.MutatorCall(w.info, call); isMut {
			w.report(call, anchor, label, via)
			return true
		}
		fn := stmapi.CalleeFunc(w.info, call)
		if fn == nil {
			return true
		}
		orig := fn.Origin()
		if w.visited[orig] || stmapi.OpaqueCallee(orig) {
			return true
		}
		if decl, ok := w.decls[orig]; ok {
			w.visited[orig] = true
			next := anchor
			if next == nil {
				next = call
			}
			w.walkNode(decl.Body, append(via, orig.Name()), depth+1, next)
		}
		return true
	})
}

func (w *walker) report(call, anchor *ast.CallExpr, label string, via []string) {
	chain := ""
	for _, v := range via {
		chain += v + " -> "
	}
	if chain != "" {
		chain = " via " + chain[:len(chain)-4]
	}
	at := w.reportAt
	if at == nil {
		at = anchor
	}
	if at == nil {
		// Write lexically inside the body literal.
		w.pass.Reportf(call.Pos(), "%s inside %s body: read-only bodies must not write (//stm:allow-write documents an intended upgrade-on-write)",
			label, w.kind)
		return
	}
	// Reached through a helper or a shared body variable: anchor the
	// diagnostic where the caller can annotate it, one per anchor (the
	// first write found stands in for the rest).
	key := fmt.Sprintf("%d", at.Pos())
	if w.reported == nil {
		w.reported = make(map[string]bool)
	}
	if w.reported[key] {
		return
	}
	w.reported[key] = true
	p := w.pass.Fset.Position(call.Pos())
	w.pass.Reportf(at.Pos(), "%s body reaches a write: %s at %s:%d%s (read-only bodies must not write; //stm:allow-write documents an intended upgrade-on-write)",
		w.kind, label, p.Filename, p.Line, chain)
}
