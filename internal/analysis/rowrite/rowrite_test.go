package rowrite_test

import (
	"testing"

	"tinystm/internal/analysis/analysistest"
	"tinystm/internal/analysis/rowrite"
)

func TestRoWrite(t *testing.T) {
	analysistest.Run(t, "testdata", rowrite.Analyzer, "a", "allow")
}
