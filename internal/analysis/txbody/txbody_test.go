package txbody_test

import (
	"testing"

	"tinystm/internal/analysis/analysistest"
	"tinystm/internal/analysis/txbody"
)

func TestTxBody(t *testing.T) {
	analysistest.Run(t, "testdata", txbody.Analyzer, "a", "allow")
}
