// Package txbody checks that closures passed to Atomic / AtomicRO /
// AtomicSnap are safe to re-execute: transactional bodies run again from
// the top every time the attempt aborts (conflict, validation failure,
// snapshot-too-old, cooperative kill), so anything a body does besides
// transactional loads and stores happens once per ATTEMPT, not once per
// commit.
//
// Flagged, lexically inside a body (nested closures included):
//
//   - non-idempotent mutation of captured state with no in-body reset:
//     x++, x += e, x = append(x, ...) on a variable declared outside the
//     body. A plain re-assignment (x = e) or truncation (x = x[:0])
//     earlier in the body counts as a reset and legitimizes later
//     accumulation — re-execution then starts clean.
//   - channel sends, close, and goroutine launches: they cannot be undone
//     by rollback and duplicate on retry.
//   - sync.Mutex / sync.RWMutex lock operations: an abort unwinds by
//     panic, skipping the unlock, and a retry double-locks.
//   - I/O (fmt print family, package log, package os calls, os.File
//     writes, print/println builtins): duplicated on retry.
//   - time.Now / time.Since / time.Sleep and math/rand calls: each retry
//     observes (or produces) a different value, so the committed state
//     depends on the abort history.
//   - nested Atomic* runner calls: transactions do not nest.
//   - t.Fatal / t.Skip family: they stop the goroutine via runtime.Goexit,
//     which is not a panic, so the STM's rollback-on-panic never runs and
//     the attempt's locks and descriptor state leak.
//
// Intentional violations are annotated //stm:allow-effect with a reason.
package txbody

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tinystm/internal/analysis/framework"
	"tinystm/internal/analysis/stmapi"
)

// Analyzer is the txbody analyzer.
var Analyzer = &framework.Analyzer{
	Name:   "txbody",
	Doc:    "report side effects in transactional bodies, which re-execute on abort",
	Marker: "effect",
	Run:    run,
}

func run(pass *framework.Pass) error {
	info := pass.TypesInfo
	wrappers := stmapi.FindWrappers(info, pass.Files)
	funcLits := stmapi.LocalFuncLits(info, pass.Files)
	seen := make(map[*ast.FuncLit]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind, bodyArg := stmapi.ClassifyCall(info, wrappers, call)
			if kind == stmapi.NotBody {
				return true
			}
			body := stmapi.ResolveBody(funcLits, info, bodyArg)
			if body == nil || seen[body] {
				return true
			}
			seen[body] = true
			checkBody(pass, kind, body)
			return true
		})
	}
	return nil
}

func checkBody(pass *framework.Pass, kind stmapi.BodyKind, body *ast.FuncLit) {
	info := pass.TypesInfo
	resets := collectResets(info, body)
	ast.Inspect(body.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(st.Arrow, "channel send inside %s body: bodies re-execute on abort, duplicating the send", kind)
		case *ast.GoStmt:
			pass.Reportf(st.Go, "goroutine launched inside %s body: bodies re-execute on abort, duplicating the launch", kind)
		case *ast.IncDecStmt:
			if obj := capturedVar(info, body, st.X); obj != nil && !resetBefore(resets, obj, st.Pos()) {
				pass.Reportf(st.Pos(), "captured variable %q mutated non-idempotently inside %s body with no in-body reset: retries accumulate", obj.Name(), kind)
			}
		case *ast.AssignStmt:
			checkAssign(pass, kind, body, resets, st)
		case *ast.CallExpr:
			checkCall(pass, kind, st)
		}
		return true
	})
}

// checkAssign flags compound assignment and self-append on captured
// variables.
func checkAssign(pass *framework.Pass, kind stmapi.BodyKind, body *ast.FuncLit, resets []reset, st *ast.AssignStmt) {
	info := pass.TypesInfo
	switch st.Tok {
	case token.ASSIGN, token.DEFINE:
		if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
			return
		}
		obj := capturedVar(info, body, st.Lhs[0])
		if obj == nil {
			return
		}
		// x = append(x, ...) grows captured state across retries unless a
		// reset precedes it.
		call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fn.Name != "append" || len(call.Args) == 0 {
			return
		}
		if arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && info.Uses[arg] == obj && !resetBefore(resets, obj, st.Pos()) {
			pass.Reportf(st.Pos(), "captured slice %q appended to inside %s body with no in-body reset: retries accumulate", obj.Name(), kind)
		}
	default:
		// Compound assignment: +=, -=, |=, ...
		if len(st.Lhs) != 1 {
			return
		}
		if obj := capturedVar(info, body, st.Lhs[0]); obj != nil && !resetBefore(resets, obj, st.Pos()) {
			pass.Reportf(st.Pos(), "captured variable %q mutated non-idempotently inside %s body with no in-body reset: retries accumulate", obj.Name(), kind)
		}
	}
}

func checkCall(pass *framework.Pass, kind stmapi.BodyKind, call *ast.CallExpr) {
	info := pass.TypesInfo
	if k, _ := stmapi.ClassifyRunner(info, call); k != stmapi.NotBody {
		pass.Reportf(call.Pos(), "nested %s call inside %s body: transactions do not nest, and the inner commit survives an outer abort", k, kind)
		return
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		// A shadowing user function resolves to *types.Func; only the
		// predeclared builtins (object *types.Builtin) are the real thing.
		_, isBuiltin := info.Uses[fun].(*types.Builtin)
		if fun.Name == "close" && isBuiltin {
			pass.Reportf(call.Pos(), "channel close inside %s body: bodies re-execute on abort", kind)
		}
		if (fun.Name == "print" || fun.Name == "println") && isBuiltin {
			pass.Reportf(call.Pos(), "%s inside %s body: I/O re-executes on abort", fun.Name, kind)
		}
	case *ast.SelectorExpr:
		checkSelectorCall(pass, kind, call, fun)
	}
}

func checkSelectorCall(pass *framework.Pass, kind stmapi.BodyKind, call *ast.CallExpr, sel *ast.SelectorExpr) {
	info := pass.TypesInfo
	name := sel.Sel.Name

	// Qualified package calls: pkg.Func(...).
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkgName, ok := info.Uses[id].(*types.PkgName); ok {
			checkPkgCall(pass, kind, call, pkgName.Imported().Path(), name)
			return
		}
	}

	recv := info.TypeOf(sel.X)
	switch {
	case isSyncLock(recv) && lockMethod(name):
		pass.Reportf(call.Pos(), "%s.%s inside %s body: aborts unwind by panic past the unlock and the retry double-locks", typeShort(recv), name, kind)
	case isNamedFrom(recv, "testing") && fatalMethod(name):
		pass.Reportf(call.Pos(), "t.%s inside %s body: it exits via runtime.Goexit, skipping the STM's rollback (locks and descriptor state leak)", name, kind)
	case isTestingTB(recv) && fatalMethod(name):
		pass.Reportf(call.Pos(), "t.%s inside %s body: it exits via runtime.Goexit, skipping the STM's rollback (locks and descriptor state leak)", name, kind)
	case isNamedType(recv, "os", "File") && (name == "Write" || name == "WriteString" || name == "WriteAt" || name == "Close" || name == "Sync"):
		pass.Reportf(call.Pos(), "os.File.%s inside %s body: I/O re-executes on abort", name, kind)
	case isNamedType(recv, "math/rand", "Rand") || isNamedType(recv, "math/rand/v2", "Rand"):
		pass.Reportf(call.Pos(), "rand.Rand.%s inside %s body: the generator state advances per attempt, so retries observe different values", name, kind)
	}
}

func checkPkgCall(pass *framework.Pass, kind stmapi.BodyKind, call *ast.CallExpr, pkgPath, name string) {
	switch pkgPath {
	case "fmt":
		// Print*, Fprint* — Sprint* is pure and fine.
		if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") {
			pass.Reportf(call.Pos(), "fmt.%s inside %s body: I/O re-executes on abort", name, kind)
		}
	case "log":
		pass.Reportf(call.Pos(), "log.%s inside %s body: I/O re-executes on abort (and log.Fatal exits without rollback)", name, kind)
	case "os":
		pass.Reportf(call.Pos(), "os.%s inside %s body: process/file-system effects re-execute on abort", name, kind)
	case "time":
		switch name {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(), "time.%s inside %s body: each retry observes a different value, so committed state depends on the abort history", name, kind)
		case "Sleep", "Tick", "After":
			pass.Reportf(call.Pos(), "time.%s inside %s body: stalling a body holds its encounter-time locks across the wait", name, kind)
		}
	case "math/rand", "math/rand/v2":
		pass.Reportf(call.Pos(), "rand.%s inside %s body: the generator state advances per attempt, so retries observe different values", name, kind)
	}
}

// reset is one idempotent re-assignment of a captured variable inside the
// body: `x = e` where e does not read x, or the truncation `x = x[:0]`.
type reset struct {
	obj types.Object
	pos token.Pos
}

func collectResets(info *types.Info, body *ast.FuncLit) []reset {
	var out []reset
	ast.Inspect(body.Body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || st.Tok != token.ASSIGN {
			return true
		}
		for i, lhs := range st.Lhs {
			if i >= len(st.Rhs) {
				break
			}
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Uses[id]
			if obj == nil {
				continue
			}
			if isReset(info, obj, st.Rhs[i]) {
				out = append(out, reset{obj: obj, pos: st.Pos()})
			}
		}
		return true
	})
	return out
}

// isReset reports whether rhs is an idempotent value for obj: an
// expression that does not read obj, or obj[:0].
func isReset(info *types.Info, obj types.Object, rhs ast.Expr) bool {
	rhs = ast.Unparen(rhs)
	if sl, ok := rhs.(*ast.SliceExpr); ok {
		if id, ok := ast.Unparen(sl.X).(*ast.Ident); ok && info.Uses[id] == obj {
			// x[:0] (and x[:n] generally) restarts the slice.
			return sl.Low == nil
		}
	}
	reads := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			reads = true
		}
		return !reads
	})
	return !reads
}

func resetBefore(resets []reset, obj types.Object, pos token.Pos) bool {
	for _, r := range resets {
		if r.obj == obj && r.pos < pos {
			return true
		}
	}
	return false
}

// capturedVar resolves expr to a variable declared OUTSIDE the body
// literal (captured by reference), or nil.
func capturedVar(info *types.Info, body *ast.FuncLit, expr ast.Expr) types.Object {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		return nil
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return nil
	}
	if stmapi.PosWithin(obj.Pos(), body) {
		return nil // declared inside the body: each attempt gets a fresh one
	}
	return obj
}

func lockMethod(name string) bool {
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
		return true
	}
	return false
}

func fatalMethod(name string) bool {
	switch name {
	case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow":
		return true
	}
	return false
}

func isSyncLock(t types.Type) bool {
	return isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex")
}

func isNamedType(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// isNamedFrom reports whether t is declared in pkgPath (any name) —
// matches *testing.T, *testing.B, *testing.F.
func isNamedFrom(t types.Type, pkgPath string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// isTestingTB matches the testing.TB interface by name and package.
func isTestingTB(t types.Type) bool {
	return isNamedType(t, "testing", "TB")
}

func typeShort(t types.Type) string {
	if t == nil {
		return "?"
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		if n.Obj().Pkg() != nil {
			return n.Obj().Pkg().Name() + "." + n.Obj().Name()
		}
		return n.Obj().Name()
	}
	return t.String()
}
