// Package stm is a minimal stand-in for the repo's STM surface: just
// enough type shape (names, signatures) for the analyzers' recognizers.
package stm

// RedoOp mirrors txn.RedoOp.
type RedoOp struct {
	Kind int
	Key  uint64
	Val  uint64
}

// Tx is a transaction descriptor.
type Tx struct{ released bool }

func (tx *Tx) Load(addr uint64) uint64     { return 0 }
func (tx *Tx) Store(addr uint64, v uint64) {}
func (tx *Tx) Alloc(n int) uint64          { return 0 }
func (tx *Tx) Free(addr uint64, n int)     {}
func (tx *Tx) Release()                    { tx.released = true }
func (tx *Tx) Begin(readOnly bool)         {}
func (tx *Tx) Commit() bool                { return true }
func (tx *Tx) Redo(op RedoOp)              {}

// TM mints descriptors and runs atomic blocks.
type TM struct{}

func (tm *TM) NewTx() *Tx                      { return &Tx{} }
func (tm *TM) Atomic(tx *Tx, fn func(*Tx))     { fn(tx) }
func (tm *TM) AtomicRO(tx *Tx, fn func(*Tx))   { fn(tx) }
func (tm *TM) AtomicSnap(tx *Tx, fn func(*Tx)) { fn(tx) }

// TxPool recycles descriptors.
type TxPool struct{ tm TM }

func (p *TxPool) Get() *Tx   { return p.tm.NewTx() }
func (p *TxPool) Put(tx *Tx) { tx.Release() }

// Map is a transactional map.
type Map struct{}

func (m *Map) Get(tx *Tx, k uint64) (uint64, bool) { return 0, false }
func (m *Map) Put(tx *Tx, k, v uint64) bool        { return true }
func (m *Map) Delete(tx *Tx, k uint64) bool        { return false }
func (m *Map) CAS(tx *Tx, k, old, nv uint64) bool  { return false }
func (m *Map) Add(tx *Tx, k, d uint64) uint64      { return 0 }
