// Package allow exercises //stm:allow-effect: a marker suppresses the
// diagnostic on the next code line only, and an unused marker is itself
// reported as stale.
package allow

import "stm"

func suppressed(tm *stm.TM) int {
	tx := tm.NewTx()
	defer tx.Release()
	runs := 0
	tm.Atomic(tx, func(tx *stm.Tx) {
		//stm:allow-effect deliberate retry counter for the test
		runs++
		_ = tx.Load(1)
	})
	return runs
}

func suppressesOnlyTheNextLine(tm *stm.TM) (int, int) {
	tx := tm.NewTx()
	defer tx.Release()
	a, b := 0, 0
	tm.Atomic(tx, func(tx *stm.Tx) {
		//stm:allow-effect covers a only, not b
		a++
		b++ // want `captured variable "b" mutated non-idempotently inside Atomic body`
	})
	return a, b
}

func stale(tm *stm.TM) {
	tx := tm.NewTx()
	defer tx.Release()
	tm.Atomic(tx, func(tx *stm.Tx) {
		//stm:allow-effect nothing here violates anything // want `stale //stm:allow-effect annotation`
		_ = tx.Load(1)
	})
}
