// Package a exercises txbody violations: effects inside atomic bodies
// that re-execute on abort.
package a

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"stm"
)

func capturedState(tm *stm.TM, ch chan uint64) {
	tx := tm.NewTx()
	defer tx.Release()
	var hits []uint64
	count := 0
	tm.Atomic(tx, func(tx *stm.Tx) {
		v := tx.Load(1)
		hits = append(hits, v) // want `captured slice "hits" appended to inside Atomic body`
		count++                // want `captured variable "count" mutated non-idempotently inside Atomic body`
		ch <- v                // want `channel send inside Atomic body`
	})
}

func concurrencyEffects(tm *stm.TM, mu *sync.Mutex, done chan struct{}) {
	tx := tm.NewTx()
	defer tx.Release()
	tm.Atomic(tx, func(tx *stm.Tx) {
		go func() { <-done }() // want `goroutine launched inside Atomic body`
		mu.Lock()              // want `sync.Mutex.Lock inside Atomic body`
		_ = tx.Load(1)
		mu.Unlock() // want `sync.Mutex.Unlock inside Atomic body`
		close(done) // want `channel close inside Atomic body`
	})
}

func ioAndTime(tm *stm.TM) {
	tx := tm.NewTx()
	defer tx.Release()
	tm.AtomicRO(tx, func(tx *stm.Tx) {
		v := tx.Load(2)
		fmt.Println(v)               // want `fmt.Println inside AtomicRO body: I/O re-executes on abort`
		println(v)                   // want `println inside AtomicRO body: I/O re-executes on abort`
		_ = time.Now()               // want `time.Now inside AtomicRO body`
		time.Sleep(time.Millisecond) // want `time.Sleep inside AtomicRO body`
	})
}

func nestedAndFatal(t *testing.T, tm *stm.TM) {
	tx := tm.NewTx()
	defer tx.Release()
	tm.Atomic(tx, func(tx *stm.Tx) {
		if tx.Load(3) == 0 {
			t.Fatal("boom") // want `t.Fatal inside Atomic body: it exits via runtime.Goexit`
		}
		tm.Atomic(tx, func(tx *stm.Tx) { // want `nested Atomic call inside Atomic body`
			tx.Store(3, 1)
		})
	})
}

// resetMakesItIdempotent shows the clean pattern: accumulation preceded
// by an in-body reset is per-attempt state, not cross-retry leakage.
func resetMakesItIdempotent(tm *stm.TM) (int, []uint64) {
	tx := tm.NewTx()
	defer tx.Release()
	var hits []uint64
	total := 0
	tm.AtomicRO(tx, func(tx *stm.Tx) {
		hits = hits[:0]
		total = 0
		for i := uint64(0); i < 4; i++ {
			hits = append(hits, tx.Load(i))
			total += int(tx.Load(i))
		}
	})
	return total, hits
}
