// Package analysistest runs one analyzer over a self-contained testdata
// source tree and checks its diagnostics against // want annotations,
// mirroring golang.org/x/tools/go/analysis/analysistest.
//
// A test package lives under <testdata>/src/<path>/ and is type-checked
// with the loader's stub resolution: imports resolve against sibling
// directories under src/ first, then the real module and standard
// library. Expectations are trailing comments:
//
//	mine = append(mine, v) // want `appended to`
//
// Each back- or double-quoted string is a regular expression that must
// match exactly one diagnostic reported on that line AFTER the
// //stm:allow-* suppression layer ran — so a test can assert both that an
// annotated line yields nothing and that a stale annotation is reported.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"tinystm/internal/analysis/framework"
)

// Run loads each package path from testdata/src, applies the analyzer and
// reports any mismatch between diagnostics and // want expectations as
// test errors.
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgs ...string) {
	t.Helper()
	// The loader's Dir anchors `go list` for stdlib/module imports the
	// stubs may pull in; the test's working directory (the analyzer
	// package) is inside the module, testdata/ itself is not.
	loader := framework.NewLoader(".")
	loader.StubRoot = testdata + "/src"
	for _, path := range pkgs {
		pkg, err := loader.LoadStub(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		if len(pkg.TypeErrors) > 0 {
			t.Fatalf("package %s does not type-check: %v", path, pkg.TypeErrors[0])
		}
		findings, err := framework.RunAnalyzers(pkg, []*framework.Analyzer{a})
		if err != nil {
			t.Fatalf("run %s on %s: %v", a.Name, path, err)
		}
		check(t, pkg, findings)
	}
}

// expectation is one `// want` regexp and whether a finding consumed it.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	used bool
}

func check(t *testing.T, pkg *framework.Package, findings []framework.Finding) {
	t.Helper()
	var expects []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Pos())
				for _, raw := range parseWant(t, pos.String(), c.Text) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, raw, err)
						return
					}
					expects = append(expects, &expectation{
						file: pos.Filename, line: pos.Line, re: re, raw: raw,
					})
				}
			}
		}
	}
	for _, f := range findings {
		matched := false
		for _, e := range expects {
			if e.used || e.file != f.Position.Filename || e.line != f.Position.Line {
				continue
			}
			if e.re.MatchString(f.Message) {
				e.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for _, e := range expects {
		if !e.used {
			t.Errorf("%s:%d: no diagnostic matching %q", e.file, e.line, e.raw)
		}
	}
}

// parseWant extracts the quoted regexp strings from a comment containing
// a `want` marker; it returns nil for ordinary comments.
func parseWant(t *testing.T, pos, text string) []string {
	i := wantIndex(text)
	if i < 0 {
		return nil
	}
	rest := strings.TrimSpace(text[i+len("want"):])
	var out []string
	for rest != "" {
		switch rest[0] {
		case '`':
			j := strings.IndexByte(rest[1:], '`')
			if j < 0 {
				t.Fatalf("%s: unterminated ` in want comment", pos)
				return nil
			}
			out = append(out, rest[1:1+j])
			rest = strings.TrimSpace(rest[j+2:])
		case '"':
			s, tail, err := unquotePrefix(rest)
			if err != nil {
				t.Fatalf("%s: bad quoted want pattern: %v", pos, err)
				return nil
			}
			out = append(out, s)
			rest = strings.TrimSpace(tail)
		default:
			t.Fatalf("%s: want expects quoted patterns, found %q", pos, rest)
			return nil
		}
	}
	if len(out) == 0 {
		t.Fatalf("%s: want comment with no patterns", pos)
	}
	return out
}

// wantIndex finds the `want` keyword introducing expectations in a
// comment, requiring a word boundary so prose mentioning "want" in the
// middle of a sentence is not misparsed (the keyword must be followed by
// a quoted pattern).
func wantIndex(text string) int {
	for i := 0; i+4 <= len(text); i++ {
		if text[i:i+4] != "want" {
			continue
		}
		if i > 0 {
			if b := text[i-1]; b != ' ' && b != '\t' && b != '/' {
				continue
			}
		}
		rest := strings.TrimSpace(text[i+4:])
		if rest != "" && (rest[0] == '"' || rest[0] == '`') {
			return i
		}
	}
	return -1
}

// unquotePrefix unquotes the leading double-quoted Go string of s and
// returns it with the remainder.
func unquotePrefix(s string) (string, string, error) {
	for j := 1; j < len(s); j++ {
		if s[j] == '"' && s[j-1] != '\\' {
			v, err := strconv.Unquote(s[:j+1])
			if err != nil {
				return "", "", fmt.Errorf("unquote %s: %w", s[:j+1], err)
			}
			return v, s[j+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated string in want comment: %s", s)
}
