// Package stmlint registers the full suite of STM invariant analyzers.
// cmd/stmlint runs them as a multichecker; the analysistest harness runs
// them one at a time over testdata trees.
package stmlint

import (
	"tinystm/internal/analysis/framework"
	"tinystm/internal/analysis/rawatomic"
	"tinystm/internal/analysis/redoscope"
	"tinystm/internal/analysis/release"
	"tinystm/internal/analysis/rowrite"
	"tinystm/internal/analysis/txbody"
)

// All returns every registered analyzer, in reporting order.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		txbody.Analyzer,
		rowrite.Analyzer,
		release.Analyzer,
		redoscope.Analyzer,
		rawatomic.Analyzer,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *framework.Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
