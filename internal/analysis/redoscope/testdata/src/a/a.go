// Package a exercises redoscope violations: Redo calls outside
// update-transaction bodies.
package a

import "stm"

func inReadOnlyBody(tm *stm.TM, tx *stm.Tx) {
	tm.AtomicRO(tx, func(tx *stm.Tx) {
		tx.Redo(stm.RedoOp{Key: 1}) // want `Redo inside AtomicRO body`
	})
}

func inSnapshotBody(tm *stm.TM, tx *stm.Tx) {
	tm.AtomicSnap(tx, func(tx *stm.Tx) {
		tx.Redo(stm.RedoOp{Key: 1}) // want `Redo inside AtomicSnap body`
	})
}

func logPut(tx *stm.Tx, k, v uint64) {
	tx.Redo(stm.RedoOp{Key: k, Val: v})
}

func reachedThroughHelper(tm *stm.TM, tx *stm.Tx) {
	body := func(tx *stm.Tx) {
		logPut(tx, 1, 2)
	}
	tm.AtomicRO(tx, body) // want `AtomicRO body reaches Redo`
}

func structuralTransaction(tm *stm.TM) {
	tx := tm.NewTx()
	defer tx.Release()
	tx.Begin(false)
	tx.Redo(stm.RedoOp{Key: 1}) // want `Redo on descriptor "tx" driven by a raw Begin`
	tx.Commit()
}

// updateBodiesMayRedo is the legitimate shape: redo records belong to
// update-transaction bodies.
func updateBodiesMayRedo(tm *stm.TM, tx *stm.Tx) {
	tm.Atomic(tx, func(tx *stm.Tx) {
		tx.Store(1, 2)
		tx.Redo(stm.RedoOp{Key: 1, Val: 2})
	})
}
