// Package allow exercises //stm:allow-redo suppression and stale
// annotation detection for the redoscope analyzer.
package allow

import "stm"

func guardedSharedBody(tm *stm.TM, tx *stm.Tx) {
	body := func(tx *stm.Tx) {
		tx.Redo(stm.RedoOp{Key: 1})
	}
	//stm:allow-redo shared batch body; the all-read guard never reaches Redo here
	tm.AtomicRO(tx, body)
}

func stale(tm *stm.TM, tx *stm.Tx) {
	//stm:allow-redo nothing below records redo // want `stale //stm:allow-redo annotation`
	tm.AtomicRO(tx, func(tx *stm.Tx) { _ = tx.Load(1) })
}
