package redoscope_test

import (
	"testing"

	"tinystm/internal/analysis/analysistest"
	"tinystm/internal/analysis/redoscope"
)

func TestRedoScope(t *testing.T) {
	analysistest.Run(t, "testdata", redoscope.Analyzer, "a", "allow")
}
