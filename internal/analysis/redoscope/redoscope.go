// Package redoscope checks that Tx.Redo — the durability layer's redo
// capture — is only invoked from update-transaction bodies. Redo records
// describe logical state changes; a read-only or snapshot body has none,
// and a structural transaction (raw Begin/Commit on a descriptor: shard
// growth, recovery loading) must never be logged, because replay folds
// the log into logical key/value state only.
//
// Three shapes are flagged:
//
//   - Redo lexically inside an AtomicRO / AtomicSnap body;
//   - Redo reachable from an AtomicRO / AtomicSnap body through
//     in-package helpers (reported at the runner call site);
//   - Redo on a descriptor that the same function drives with a raw
//     Begin — a structural transaction.
//
// Helpers that take a descriptor parameter and call Redo (the kvstore
// composition pattern) are fine: the caller's execution mode decides, and
// the caller is where a violation is reported.
package redoscope

import (
	"fmt"
	"go/ast"
	"go/types"

	"tinystm/internal/analysis/framework"
	"tinystm/internal/analysis/stmapi"
)

// Analyzer is the redoscope analyzer.
var Analyzer = &framework.Analyzer{
	Name:   "redoscope",
	Doc:    "report Tx.Redo outside update-transaction bodies",
	Marker: "redo",
	Run:    run,
}

const maxDepth = 10

func run(pass *framework.Pass) error {
	info := pass.TypesInfo
	wrappers := stmapi.FindWrappers(info, pass.Files)
	funcLits := stmapi.LocalFuncLits(info, pass.Files)
	decls := stmapi.FuncDecls(info, pass.Files)

	for _, f := range pass.Files {
		// Rule 1+2: Redo reachable under a read-only runner.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind, bodyArg := stmapi.ClassifyCall(info, wrappers, call)
			if !kind.ReadOnlyKind() {
				return true
			}
			body := stmapi.ResolveBody(funcLits, info, bodyArg)
			if body == nil {
				return true
			}
			w := &walker{pass: pass, info: info, decls: decls, kind: kind, visited: make(map[*types.Func]bool)}
			if _, isInline := ast.Unparen(bodyArg).(*ast.FuncLit); !isInline {
				w.reportAt = call
			}
			w.walk(body.Body, nil, 0)
			return true
		})

		// Rule 3: Redo on a structurally driven descriptor. A function
		// that calls x.Begin(...) runs x outside any Atomic retry loop;
		// Redo on that x would log a structural transaction.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			structural := make(map[types.Object]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if sel.Sel.Name == "Begin" && stmapi.IsTxLike(info.TypeOf(sel.X)) {
					if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil {
							structural[obj] = true
						}
					}
				}
				return true
			})
			if len(structural) == 0 {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !stmapi.RedoCall(info, call) {
					return true
				}
				sel := call.Fun.(*ast.SelectorExpr)
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil && structural[obj] {
						pass.Reportf(call.Pos(), "Redo on descriptor %q driven by a raw Begin: structural transactions must not be logged (redo records are for update-transaction bodies only)", id.Name)
					}
				}
				return true
			})
		}
	}
	return nil
}

type walker struct {
	pass     *framework.Pass
	info     *types.Info
	decls    map[*types.Func]*ast.FuncDecl
	kind     stmapi.BodyKind
	visited  map[*types.Func]bool
	reportAt *ast.CallExpr
	reported map[string]bool
}

func (w *walker) walk(n ast.Node, via []string, depth int) {
	if depth > maxDepth {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if stmapi.RedoCall(w.info, call) {
			w.report(call, via)
			return true
		}
		fn := stmapi.CalleeFunc(w.info, call)
		if fn == nil {
			return true
		}
		orig := fn.Origin()
		if w.visited[orig] || stmapi.OpaqueCallee(orig) {
			return true
		}
		if decl, ok := w.decls[orig]; ok {
			w.visited[orig] = true
			w.walk(decl.Body, append(via, orig.Name()), depth+1)
		}
		return true
	})
}

func (w *walker) report(call *ast.CallExpr, via []string) {
	chain := ""
	for _, v := range via {
		chain += v + " -> "
	}
	if chain != "" {
		chain = " via " + chain[:len(chain)-4]
	}
	if w.reportAt != nil {
		p := w.pass.Fset.Position(call.Pos())
		key := fmt.Sprintf("%s|%d", chain, w.reportAt.Pos())
		if w.reported == nil {
			w.reported = make(map[string]bool)
		}
		if w.reported[key] {
			return
		}
		w.reported[key] = true
		w.pass.Reportf(w.reportAt.Pos(), "%s body reaches Redo at %s:%d%s: redo records belong to update-transaction bodies only", w.kind, p.Filename, p.Line, chain)
		return
	}
	w.pass.Reportf(call.Pos(), "Redo inside %s body%s: redo records belong to update-transaction bodies only", w.kind, chain)
}
