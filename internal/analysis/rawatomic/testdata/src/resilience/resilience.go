// Package resilience carries the name of the client-side resilience
// layer: retry budgets, breakers and the brownout ladder guard network
// state, not transactional memory, so — like the STM runtime layers —
// nothing here is flagged.
package resilience

import (
	"sync"
	"sync/atomic"
)

type budget struct {
	mu     sync.Mutex
	tokens float64
	denied atomic.Uint64
}

func (b *budget) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		b.denied.Add(1)
		return false
	}
	b.tokens--
	return true
}
