// Package app is NOT an allowlisted STM implementation layer, so raw
// synchronization primitives are flagged here.
package app

import (
	"sync"
	"sync/atomic"
)

type widget struct {
	mu sync.Mutex    // want `sync.Mutex field in package "app"`
	n  atomic.Uint64 // want `atomic.Uint64 field in package "app"`
}

type guarded struct {
	rw *sync.RWMutex // want `sync.RWMutex field in package "app"`
}

var ready atomic.Bool // want `atomic.Bool variable in package "app"`

var counter uint64

func bump() uint64 {
	return atomic.AddUint64(&counter, 1) // want `call to atomic.AddUint64 in package "app"`
}

//stm:allow-atomic control-plane flag; this state is outside transactional control
var stop atomic.Bool

//stm:allow-atomic covers only the next declaration // want `stale //stm:allow-atomic annotation`
var plain int

func use(w *widget, g *guarded) (uint64, bool, int) {
	_ = w
	_ = g
	return bump(), ready.Load() || stop.Load(), plain
}
