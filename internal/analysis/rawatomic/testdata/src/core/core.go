// Package core carries the name of an allowlisted STM implementation
// layer: raw synchronization is this layer's job, so nothing here is
// flagged.
package core

import (
	"sync"
	"sync/atomic"
)

type lockTable struct {
	mu    sync.Mutex
	clock atomic.Uint64
}

func (t *lockTable) tick() uint64 {
	return t.clock.Add(1)
}

func (t *lockTable) withLock(fn func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fn()
}
