// Package netchaos carries the name of the fault-injecting proxy layer:
// its fault switches and counters are socket-side test infrastructure,
// so — like the STM runtime layers — nothing here is flagged.
package netchaos

import "sync/atomic"

type proxy struct {
	blackout atomic.Bool
	resets   atomic.Uint64
}

func (p *proxy) sever() {
	if p.blackout.Load() {
		p.resets.Add(1)
	}
}
