// Package obs carries the name of the observability layer: lock-free
// histograms and the seqlock ring ARE atomics by design, so — like the
// STM runtime layers — nothing here is flagged.
package obs

import "sync/atomic"

type histogram struct {
	counts [8]atomic.Uint64
	max    atomic.Uint64
}

func (h *histogram) record(v uint64) {
	h.counts[v&7].Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}
