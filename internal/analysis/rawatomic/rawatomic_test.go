package rawatomic_test

import (
	"testing"

	"tinystm/internal/analysis/analysistest"
	"tinystm/internal/analysis/rawatomic"
)

func TestRawAtomic(t *testing.T) {
	analysistest.Run(t, "testdata", rawatomic.Analyzer, "app", "core", "obs", "resilience", "netchaos")
}
