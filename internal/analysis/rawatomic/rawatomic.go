// Package rawatomic checks that raw shared-memory synchronization —
// sync.Mutex / sync.RWMutex and the sync/atomic package — stays inside
// the STM's own implementation layers. Application-level packages built
// on the STM must route shared state through transactions: a raw mutex or
// atomic next to transactional accesses reintroduces exactly the
// ad-hoc-synchronization bugs the STM exists to remove, and its effects
// are invisible to conflict detection and rollback.
//
// The allowlist names the packages that ARE the implementation: the
// word-based and object-based runtimes, the MVCC sidecar, epoch
// reclamation, the WAL, contention management, the tuning loop, and the
// arena allocator. Everything else gets one diagnostic per declaration
// (a field or variable of a mutex/atomic type) and per direct
// sync/atomic call; an intentional use — a pool free-list, a stats
// counter read outside any transaction — is annotated
// //stm:allow-atomic with the reason on the line above.
//
// Test files are skipped: tests freely use atomics for counters and
// barriers around the code under test.
package rawatomic

import (
	"go/ast"
	"go/types"
	"strings"

	"tinystm/internal/analysis/framework"
)

// Analyzer is the rawatomic analyzer.
var Analyzer = &framework.Analyzer{
	Name:   "rawatomic",
	Doc:    "report sync.Mutex / sync/atomic use outside the STM implementation layers",
	Marker: "atomic",
	Run:    run,
}

// allowedLayers are the final import-path segments of packages that
// implement the STM itself and legitimately use raw synchronization.
var allowedLayers = map[string]bool{
	"core":    true, // word-based STM runtime
	"tl2":     true, // commit-time locking runtime
	"mvcc":    true, // multi-version sidecar
	"reclaim": true, // epoch-based reclamation
	"wal":     true, // write-ahead log
	"cm":      true, // contention managers
	"tuning":  true, // online tuning loop
	"mem":     true, // transactional arena allocator
	"obs":     true, // observability: lock-free histograms, seqlock ring, registry
	// Client-side and test-harness infrastructure: these packages talk to
	// the server over sockets, never to transactional memory, so their
	// counters, breakers and fault switches are legitimately raw.
	"resilience": true, // retry budgets, circuit breaker, brownout ladder
	"netchaos":   true, // fault-injecting TCP proxy (tests and smoke only)
}

func run(pass *framework.Pass) error {
	if seg := lastSegment(pass.PkgPath); allowedLayers[seg] {
		return nil
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.Field:
				if name := syncTypeName(info.TypeOf(d.Type)); name != "" {
					pass.Reportf(d.Pos(), "%s field in package %q: raw synchronization belongs to the STM layers; route shared state through transactions (//stm:allow-atomic with a reason if this state is genuinely outside transactional control)", name, lastSegment(pass.PkgPath))
				}
			case *ast.ValueSpec:
				if name := declaredSyncType(info, d); name != "" {
					pass.Reportf(d.Pos(), "%s variable in package %q: raw synchronization belongs to the STM layers; route shared state through transactions (//stm:allow-atomic with a reason if this state is genuinely outside transactional control)", name, lastSegment(pass.PkgPath))
				}
			case *ast.CallExpr:
				if name := atomicPkgCall(info, d); name != "" {
					pass.Reportf(d.Pos(), "call to %s in package %q: raw atomics bypass conflict detection and rollback; use transactional accesses (//stm:allow-atomic with a reason if this word is genuinely outside transactional control)", name, lastSegment(pass.PkgPath))
				}
			}
			return true
		})
	}
	return nil
}

func lastSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// syncTypeName reports the display name when t is (or directly contains,
// for arrays/slices/pointers) a sync.Mutex, sync.RWMutex, or a
// sync/atomic type; "" otherwise.
func syncTypeName(t types.Type) string {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
			continue
		case *types.Slice:
			t = tt.Elem()
			continue
		case *types.Array:
			t = tt.Elem()
			continue
		}
		break
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	switch obj.Pkg().Path() {
	case "sync":
		switch obj.Name() {
		case "Mutex", "RWMutex":
			return "sync." + obj.Name()
		}
	case "sync/atomic":
		return "atomic." + obj.Name()
	}
	return ""
}

// declaredSyncType reports the sync type name when a var/const spec
// declares a value of a flagged type, via an explicit type or an
// initializer expression.
func declaredSyncType(info *types.Info, vs *ast.ValueSpec) string {
	if vs.Type != nil {
		return syncTypeName(info.TypeOf(vs.Type))
	}
	for _, v := range vs.Values {
		if name := syncTypeName(info.TypeOf(v)); name != "" {
			return name
		}
	}
	return ""
}

// atomicPkgCall reports "atomic.F" when call invokes a function from
// sync/atomic (LoadUint64, CompareAndSwapPointer, …); "" otherwise.
func atomicPkgCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pkg, ok := info.Uses[id].(*types.PkgName)
	if !ok || pkg.Imported().Path() != "sync/atomic" {
		return ""
	}
	return "atomic." + sel.Sel.Name
}
