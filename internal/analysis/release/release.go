// Package release checks that every transaction descriptor minted with
// NewTx or borrowed from a TxPool with Get is handed back — Release for
// minted descriptors, Put for borrowed ones — on every exit path of the
// function that created it. A descriptor that is dropped instead retains
// its TM slot forever; enough of them exhaust maxSlots and park every new
// transaction (the PR 2 slot-exhaustion failure mode, of which this
// analyzer is the static twin).
//
// The analysis is intraprocedural and ownership-based:
//
//   - Passing the descriptor to an atomic runner (Atomic / AtomicRO /
//     AtomicSnap or an in-package wrapper) is a borrow, not a transfer:
//     the creator still owns it.
//   - Passing it to any other function, returning it, or storing it into
//     a structure transfers ownership; the analysis then trusts the new
//     owner and stops (no diagnostic).
//   - A deferred Release/Put covers every subsequent exit, panics
//     included, and is the recommended form. A non-deferred release only
//     covers the paths that reach it: each return reachable first is
//     reported, and a release that sits after an atomic-runner call on
//     the same descriptor is reported too — a foreign panic unwinding out
//     of the body would skip it.
//
// Test files are skipped: tests mint throwaway TMs whose descriptors die
// with the process. Intentional leaks (none are known) would be annotated
// //stm:allow-unreleased with a reason.
package release

import (
	"go/ast"
	"go/types"
	"strings"

	"tinystm/internal/analysis/framework"
	"tinystm/internal/analysis/stmapi"
)

// Analyzer is the release analyzer.
var Analyzer = &framework.Analyzer{
	Name:   "release",
	Doc:    "report descriptors (NewTx / TxPool.Get) not released on every exit path",
	Marker: "unreleased",
	Run:    run,
}

func run(pass *framework.Pass) error {
	info := pass.TypesInfo
	wrappers := stmapi.FindWrappers(info, pass.Files)
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		// Visit every function body (declarations and literals).
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFunc(pass, wrappers, body)
			}
			return true
		})
	}
	return nil
}

// creation is one descriptor-minting statement.
type creation struct {
	obj   types.Object
	label string // "NewTx" or "TxPool.Get"
	stmt  ast.Stmt
}

func checkFunc(pass *framework.Pass, wrappers stmapi.Wrappers, body *ast.BlockStmt) {
	info := pass.TypesInfo
	for _, c := range findCreations(info, body) {
		// Creations inside nested function literals are handled when the
		// literal itself is visited.
		if inNestedFunc(body, c.stmt) {
			continue
		}
		t := &tracker{pass: pass, info: info, wrappers: wrappers, c: c}
		if t.escapes(body) {
			continue // ownership transferred: trust the new owner
		}
		path := pathTo(body, c.stmt)
		if path == nil {
			continue
		}
		t.walkFrom(path)
	}
}

// findCreations scans body (nested literals excluded by the caller) for
// `x := tm.NewTx()` / `x := pool.Get()` statements.
func findCreations(info *types.Info, body *ast.BlockStmt) []creation {
	var out []creation
	ast.Inspect(body, func(n ast.Node) bool {
		st, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		switch s := st.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			label, ok := stmapi.TxSourceCall(info, call)
			if !ok {
				return true
			}
			id, ok := s.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj != nil {
				out = append(out, creation{obj: obj, label: label, stmt: s})
			}
		case *ast.DeclStmt:
			gd, ok := s.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || len(vs.Values) != 1 {
					continue
				}
				call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr)
				if !ok {
					continue
				}
				label, ok := stmapi.TxSourceCall(info, call)
				if !ok {
					continue
				}
				if obj := info.Defs[vs.Names[0]]; obj != nil {
					out = append(out, creation{obj: obj, label: label, stmt: s})
				}
			}
		}
		return true
	})
	return out
}

// inNestedFunc reports whether stmt sits inside a function literal nested
// in body.
func inNestedFunc(body *ast.BlockStmt, stmt ast.Stmt) bool {
	nested := false
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			if stmapi.PosWithin(stmt.Pos(), lit) {
				nested = true
			}
			return false
		}
		return true
	})
	return nested
}

type tracker struct {
	pass     *framework.Pass
	info     *types.Info
	wrappers stmapi.Wrappers
	c        creation
	// sawRunner is set once an atomic-runner call borrows the descriptor
	// along the current path; a later non-deferred release is then only
	// reached when no foreign panic unwound out of the body.
	sawRunner bool
}

// usesOf classifies every use of the descriptor in expr context.

// escapes reports whether the descriptor's ownership leaves this function:
// any use that is not a method call on it, a borrow by an atomic runner,
// or a recognized release.
func (t *tracker) escapes(body *ast.BlockStmt) bool {
	escaped := false
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok || t.info.Uses[id] != t.c.obj {
			return true
		}
		if !t.benignUse(id, stack) {
			escaped = true
		}
		return true
	})
	return escaped
}

// benignUse decides whether one identifier occurrence keeps ownership
// here: method-call receivers, release calls, and atomic-runner borrows.
func (t *tracker) benignUse(id *ast.Ident, stack []ast.Node) bool {
	// stack ends with id itself; parent is stack[len-2].
	if len(stack) < 2 {
		return false
	}
	parent := stack[len(stack)-2]
	// x.Method(...): the selector's parent must be the call's Fun.
	if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == id && len(stack) >= 3 {
		if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok && call.Fun == sel {
			return true
		}
		return false // x.field or method value: treated as escape
	}
	if call, ok := parent.(*ast.CallExpr); ok && call.Fun != id {
		// x as a call argument.
		if t.isReleaseCall(call) {
			return true
		}
		if kind, _ := stmapi.ClassifyCall(t.info, t.wrappers, call); kind != stmapi.NotBody {
			return true // borrowed by an atomic runner
		}
		return false
	}
	return false
}

// isReleaseCall reports whether call releases the tracked descriptor:
// x.Release(), pool.Put(x), or a call to a function named release/Release
// with x among its arguments (the kvstore helper pattern).
func (t *tracker) isReleaseCall(call *ast.CallExpr) bool {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Release":
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && t.info.Uses[id] == t.c.obj && len(call.Args) == 0 {
				return true
			}
		case "Put":
			if len(call.Args) == 1 {
				if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && t.info.Uses[id] == t.c.obj {
					return true
				}
			}
		}
	}
	name := calleeName(call)
	if strings.EqualFold(name, "release") {
		for _, a := range call.Args {
			if id, ok := ast.Unparen(a).(*ast.Ident); ok && t.info.Uses[id] == t.c.obj {
				return true
			}
		}
	}
	return false
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// pathStep is one level of the statement-list chain from the function
// body down to the creation statement.
type pathStep struct {
	list []ast.Stmt
	idx  int
	// loop marks lists that are loop bodies: falling off the end starts a
	// new iteration, which re-mints a descriptor, so the old one must be
	// released by then.
	loop bool
}

// pathTo builds the chain of enclosing statement lists from body down to
// target. Returns nil when target is not reachable through plain blocks
// (e.g. inside an if-init statement).
func pathTo(body *ast.BlockStmt, target ast.Stmt) []pathStep {
	var path []pathStep
	var find func(list []ast.Stmt, loop bool) bool
	find = func(list []ast.Stmt, loop bool) bool {
		for i, st := range list {
			if st == target {
				path = append(path, pathStep{list: list, idx: i, loop: loop})
				return true
			}
			if !stmapi.PosWithin(target.Pos(), st) {
				continue
			}
			path = append(path, pathStep{list: list, idx: i, loop: loop})
			for _, sub := range subLists(st) {
				if find(sub.list, sub.loop) {
					return true
				}
			}
			return false // inside a construct we do not model (if-init, …)
		}
		return false
	}
	if !find(body.List, false) {
		return nil
	}
	return path
}

type subList struct {
	list []ast.Stmt
	loop bool
}

func subLists(st ast.Stmt) []subList {
	switch s := st.(type) {
	case *ast.BlockStmt:
		return []subList{{list: s.List}}
	case *ast.IfStmt:
		out := []subList{{list: s.Body.List}}
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			out = append(out, subList{list: e.List})
		case *ast.IfStmt:
			out = append(out, subLists(e)...)
		}
		return out
	case *ast.ForStmt:
		return []subList{{list: s.Body.List, loop: true}}
	case *ast.RangeStmt:
		return []subList{{list: s.Body.List, loop: true}}
	case *ast.SwitchStmt:
		return clauseLists(s.Body)
	case *ast.TypeSwitchStmt:
		return clauseLists(s.Body)
	case *ast.SelectStmt:
		return clauseLists(s.Body)
	case *ast.LabeledStmt:
		return subLists(s.Stmt)
	}
	return nil
}

func clauseLists(body *ast.BlockStmt) []subList {
	var out []subList
	for _, c := range body.List {
		switch cl := c.(type) {
		case *ast.CaseClause:
			out = append(out, subList{list: cl.Body})
		case *ast.CommClause:
			out = append(out, subList{list: cl.Body})
		}
	}
	return out
}

// walkFrom walks the continuation of the creation: the rest of its own
// statement list, then the rest of each enclosing list, innermost first.
// A loop-body boundary or the function end reached without a release is a
// leak; so is every return statement reached first.
func (t *tracker) walkFrom(path []pathStep) {
	released := false
	for level := len(path) - 1; level >= 0; level-- {
		step := path[level]
		var res walkResult
		res, released = t.walkSeq(step.list[step.idx+1:], released)
		if released {
			return
		}
		if res == stopped {
			return // terminator or covered by defer on every continuation
		}
		if step.loop {
			t.pass.Reportf(t.c.stmt.Pos(), "descriptor %q from %s is not released before the next loop iteration (each iteration mints another; call Release/Put or hoist the descriptor out of the loop)", objName(t.c.obj), t.c.label)
			return
		}
	}
	t.pass.Reportf(t.c.stmt.Pos(), "descriptor %q from %s is not released before the function returns (add `defer tx.Release()` / `defer pool.Put(tx)` right after minting it)", objName(t.c.obj), t.c.label)
}

type walkResult int

const (
	fellThrough walkResult = iota
	stopped                // path terminated (return reported, panic, exit)
)

// walkSeq walks one statement list with the given released state,
// reporting leaks at returns. It returns how the sequence ends and the
// released state at its end.
func (t *tracker) walkSeq(list []ast.Stmt, released bool) (walkResult, bool) {
	for _, st := range list {
		if released {
			return fellThrough, true
		}
		switch s := st.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
				if t.isReleaseCall(call) {
					if t.sawRunner {
						t.pass.Reportf(call.Pos(), "descriptor %q from %s is released only on non-panic paths: a foreign panic unwinding out of the atomic body skips this release — use defer", objName(t.c.obj), t.c.label)
					}
					released = true
					continue
				}
				if t.isTerminatorCall(call) {
					return stopped, released
				}
				if t.borrowsObj(call) {
					t.sawRunner = true
				}
			}
		case *ast.DeferStmt:
			if t.deferReleases(s) {
				released = true
				continue
			}
		case *ast.ReturnStmt:
			t.pass.Reportf(s.Pos(), "descriptor %q from %s is not released on this return path (release it before returning, or `defer` the release right after minting)", objName(t.c.obj), t.c.label)
			return stopped, released
		case *ast.IfStmt:
			res := t.walkIf(s, released)
			if res.allReleased {
				released = true
				continue
			}
			if res.allStopped {
				return stopped, released
			}
		case *ast.BlockStmt:
			var res walkResult
			res, released = t.walkSeq(s.List, released)
			if res == stopped {
				return stopped, released
			}
		case *ast.ForStmt:
			t.walkSeq(s.Body.List, released) // body may run zero times
		case *ast.RangeStmt:
			t.walkSeq(s.Body.List, released)
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			all := true
			for _, sub := range subLists(s) {
				res, rel := t.walkSeq(sub.list, released)
				if !(rel || res == stopped) {
					all = false
				}
			}
			// Without a default clause the zero-clause path falls through
			// unreleased, so `all` alone cannot prove release.
			if all && hasDefault(s) {
				return stopped, released
			}
		case *ast.LabeledStmt:
			var res walkResult
			res, released = t.walkSeq([]ast.Stmt{s.Stmt}, released)
			if res == stopped {
				return stopped, released
			}
		}
	}
	return fellThrough, released
}

type ifResult struct {
	allReleased bool
	allStopped  bool
}

func (t *tracker) walkIf(s *ast.IfStmt, released bool) ifResult {
	thenRes, thenRel := t.walkSeq(s.Body.List, released)
	elseRes, elseRel := fellThrough, released
	switch e := s.Else.(type) {
	case *ast.BlockStmt:
		elseRes, elseRel = t.walkSeq(e.List, released)
	case *ast.IfStmt:
		r := t.walkIf(e, released)
		if r.allReleased {
			elseRel = true
		}
		if r.allStopped {
			elseRes = stopped
		}
	case nil:
		// No else: the fall-through path keeps the pre-if state.
		return ifResult{}
	}
	return ifResult{
		allReleased: thenRel && elseRel,
		allStopped: thenRes == stopped && elseRes == stopped &&
			// A stop that was a reported leak still ends the path; for
			// control-flow purposes both count as "does not continue".
			true,
	}
}

func hasDefault(st ast.Stmt) bool {
	var body *ast.BlockStmt
	switch s := st.(type) {
	case *ast.SwitchStmt:
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	default:
		return false
	}
	for _, c := range body.List {
		switch cl := c.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				return true
			}
		case *ast.CommClause:
			if cl.Comm == nil {
				return true
			}
		}
	}
	return false
}

// deferReleases reports whether a defer statement releases the tracked
// descriptor, directly or via a closure.
func (t *tracker) deferReleases(s *ast.DeferStmt) bool {
	if t.isReleaseCall(s.Call) {
		return true
	}
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		found := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && t.isReleaseCall(call) {
				found = true
			}
			return !found
		})
		return found
	}
	return false
}

// borrowsObj reports whether call is an atomic-runner call taking the
// tracked descriptor (a borrow whose body can panic with a foreign panic).
func (t *tracker) borrowsObj(call *ast.CallExpr) bool {
	kind, _ := stmapi.ClassifyCall(t.info, t.wrappers, call)
	if kind == stmapi.NotBody {
		return false
	}
	for _, a := range call.Args {
		if id, ok := ast.Unparen(a).(*ast.Ident); ok && t.info.Uses[id] == t.c.obj {
			return true
		}
	}
	return false
}

// isTerminatorCall reports calls that never return: panic, os.Exit,
// log.Fatal*, runtime.Goexit, t.Fatal family.
func (t *tracker) isTerminatorCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic" && t.info.Uses[fun] == nil
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if id, ok := fun.X.(*ast.Ident); ok {
			if pkg, ok := t.info.Uses[id].(*types.PkgName); ok {
				path := pkg.Imported().Path()
				switch {
				case path == "os" && name == "Exit":
					return true
				case path == "log" && strings.HasPrefix(name, "Fatal"):
					return true
				case path == "runtime" && name == "Goexit":
					return true
				}
				return false
			}
		}
		switch name {
		case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow":
			// t.Fatal family on a testing receiver.
			return isTestingRecv(t.info.TypeOf(fun.X))
		}
	}
	return false
}

func isTestingRecv(tt types.Type) bool {
	if tt == nil {
		return false
	}
	if p, ok := tt.(*types.Pointer); ok {
		tt = p.Elem()
	}
	n, ok := tt.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "testing"
}

func objName(obj types.Object) string { return obj.Name() }
