package release_test

import (
	"testing"

	"tinystm/internal/analysis/analysistest"
	"tinystm/internal/analysis/release"
)

func TestRelease(t *testing.T) {
	analysistest.Run(t, "testdata", release.Analyzer, "a", "allow")
}
