// Package allow exercises //stm:allow-unreleased suppression and stale
// annotation detection for the release analyzer.
package allow

import "stm"

func processLifetime(tm *stm.TM) {
	//stm:allow-unreleased deliberate: parked for the process lifetime
	tx := tm.NewTx()
	tm.Atomic(tx, func(tx *stm.Tx) { tx.Store(1, 2) })
}

func stale(tm *stm.TM) {
	//stm:allow-unreleased nothing leaks below // want `stale //stm:allow-unreleased annotation`
	tx := tm.NewTx()
	defer tx.Release()
}
