// Package a exercises release violations: minted descriptors that are
// not handed back on every path.
package a

import "stm"

func leakAtFunctionEnd(tm *stm.TM) {
	tx := tm.NewTx() // want `descriptor "tx" from NewTx is not released before the function returns`
	tm.Atomic(tx, func(tx *stm.Tx) { tx.Store(1, 2) })
}

func leakOnOnePath(tm *stm.TM, cond bool) int {
	tx := tm.NewTx()
	if cond {
		return 0 // want `descriptor "tx" from NewTx is not released on this return path`
	}
	tx.Release()
	return 1
}

func leakPerIteration(pool *stm.TxPool, n int) {
	for i := 0; i < n; i++ {
		tx := pool.Get() // want `descriptor "tx" from TxPool.Get is not released before the next loop iteration`
		tx.Begin(false)
		tx.Commit()
	}
}

func releasedOnlyOnNonPanicPaths(tm *stm.TM) {
	tx := tm.NewTx()
	tm.Atomic(tx, func(tx *stm.Tx) { tx.Store(1, 2) })
	tx.Release() // want `released only on non-panic paths`
}

func deferIsClean(tm *stm.TM) {
	tx := tm.NewTx()
	defer tx.Release()
	tm.Atomic(tx, func(tx *stm.Tx) { tx.Store(1, 2) })
}

func deferPutIsClean(pool *stm.TxPool, cond bool) {
	tx := pool.Get()
	defer pool.Put(tx)
	if cond {
		return
	}
	tx.Begin(false)
	tx.Commit()
}

func bothBranchesRelease(tm *stm.TM, cond bool) {
	tx := tm.NewTx()
	if cond {
		tx.Release()
	} else {
		tx.Release()
	}
}

// escape: ownership moves to the caller, so this function owes no
// release.
func mintForCaller(tm *stm.TM) *stm.Tx {
	tx := tm.NewTx()
	return tx
}
