package obs

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"tinystm/internal/cm"
	"tinystm/internal/txn"
)

// EventKind names one step of a sampled transaction's life.
type EventKind uint8

// The flight-recorder event kinds. A sampled atomic block emits EvBegin
// on its first attempt, EvRetry at the start of every later attempt,
// EvAbort for each failed attempt (Cause carries the classification —
// conflicts, validation, a contention manager's kill, ...), and EvCommit
// when it finally publishes.
const (
	EvBegin EventKind = iota
	EvRetry
	EvAbort
	EvCommit
)

// String returns the wire name of the event kind.
func (k EventKind) String() string {
	switch k {
	case EvBegin:
		return "begin"
	case EvRetry:
		return "retry"
	case EvAbort:
		return "abort"
	case EvCommit:
		return "commit"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one flight-recorder entry: a timestamped step of one sampled
// transaction, with the STM geometry and contention-management policy
// that were live when it happened.
type Event struct {
	// Seq is the recorder-global sequence number (1-based, gap-free
	// among retained events).
	Seq uint64
	// TimeUnixNano is the wall-clock timestamp.
	TimeUnixNano int64
	Kind         EventKind
	// Cause classifies an EvAbort (meaningless otherwise).
	Cause txn.AbortKind
	// CM is the contention-management policy live at the event.
	CM cm.Kind
	// Slot is the transaction descriptor's slot; Attempt the 1-based
	// attempt number within the atomic block.
	Slot    uint32
	Attempt uint32
	// DurNs is the attempt's duration for EvAbort/EvCommit (0 for
	// begin/retry, which mark attempt starts).
	DurNs uint64
	// Locks/Shifts/Hier are the lock-table geometry live at the event.
	Locks  uint64
	Shifts uint32
	Hier   uint64
}

// String renders one human-readable trace line.
func (e Event) String() string {
	s := fmt.Sprintf("#%d t=%d slot=%d attempt=%d %s", e.Seq, e.TimeUnixNano, e.Slot, e.Attempt, e.Kind)
	if e.Kind == EvAbort {
		s += " cause=" + e.Cause.String()
	}
	if e.Kind == EvAbort || e.Kind == EvCommit {
		s += fmt.Sprintf(" dur=%dns", e.DurNs)
	}
	return s + fmt.Sprintf(" geo=(%d,%d,%d) cm=%v", e.Locks, e.Shifts, e.Hier, e.CM)
}

// recSlot is one ring entry: a seqlock version word plus the event
// packed into atomic words, so concurrent writers and dump readers stay
// race-free without any lock. ver holds the claiming sequence number
// while the words are consistent and 0 while a writer is mid-store; a
// reader accepts a slot only when ver reads the expected sequence on
// both sides of the word loads.
type recSlot struct {
	ver atomic.Uint64
	w   [6]atomic.Uint64
}

// Recorder is the bounded lock-free flight recorder: a power-of-two ring
// of seqlock slots plus a sampling tick. Writers claim a slot with one
// atomic add and overwrite the oldest entry; there is no reader
// coordination and no backpressure — dumping is best-effort forensics.
type Recorder struct {
	every uint64
	mask  uint64
	tick  atomic.Uint64
	pos   atomic.Uint64
	slots []recSlot
}

// NewRecorder builds a recorder retaining the last `capacity` events
// (rounded up to a power of two, floor 16) and sampling one atomic
// block in `every` (floor 1 = every block).
func NewRecorder(capacity int, every uint64) *Recorder {
	if capacity < 16 {
		capacity = 16
	}
	c := 1 << bits.Len(uint(capacity-1)) // next power of two
	if every < 1 {
		every = 1
	}
	return &Recorder{every: every, mask: uint64(c - 1), slots: make([]recSlot, c)}
}

// Cap returns the ring capacity.
func (r *Recorder) Cap() int { return len(r.slots) }

// SampleEvery returns the sampling rate (1 = every transaction).
func (r *Recorder) SampleEvery() uint64 { return r.every }

// Sample draws the per-transaction sampling decision: true for one
// atomic block in every; the caller then records that block's whole
// lifecycle. One atomic add.
func (r *Recorder) Sample() bool {
	return (r.tick.Add(1)-1)%r.every == 0
}

// Record appends one event, overwriting the oldest when the ring is
// full. Lock-free and allocation-free: one atomic add to claim the slot
// and eight atomic stores. e.Seq is assigned by the recorder.
func (r *Recorder) Record(e Event) {
	seq := r.pos.Add(1)
	s := &r.slots[(seq-1)&r.mask]
	s.ver.Store(0) // mark torn while the words change
	s.w[0].Store(uint64(e.TimeUnixNano))
	s.w[1].Store(uint64(e.Kind) | uint64(e.Cause)<<8 | uint64(e.CM)<<16 | uint64(e.Attempt)<<32)
	s.w[2].Store(uint64(e.Slot) | uint64(e.Shifts)<<32)
	s.w[3].Store(e.DurNs)
	s.w[4].Store(e.Locks)
	s.w[5].Store(e.Hier)
	s.ver.Store(seq)
}

// Recorded returns how many events have ever been recorded.
func (r *Recorder) Recorded() uint64 { return r.pos.Load() }

// Dump returns up to limit of the most recent events, oldest first
// (limit <= 0 means the whole retained window). Entries a concurrent
// writer is overwriting mid-read are skipped — a dump under load is a
// best-effort snapshot, never a torn one.
func (r *Recorder) Dump(limit int) []Event {
	end := r.pos.Load()
	n := uint64(len(r.slots))
	if end < n {
		n = end
	}
	if limit > 0 && uint64(limit) < n {
		n = uint64(limit)
	}
	out := make([]Event, 0, n)
	for seq := end - n + 1; seq <= end; seq++ {
		s := &r.slots[(seq-1)&r.mask]
		if s.ver.Load() != seq {
			continue // overwritten (or being written) by a newer claim
		}
		var w [6]uint64
		for i := range w {
			w[i] = s.w[i].Load()
		}
		if s.ver.Load() != seq {
			continue // a writer moved in between the loads
		}
		out = append(out, Event{
			Seq:          seq,
			TimeUnixNano: int64(w[0]),
			Kind:         EventKind(w[1] & 0xff),
			Cause:        txn.AbortKind((w[1] >> 8) & 0xff),
			CM:           cm.Kind((w[1] >> 16) & 0xff),
			Attempt:      uint32(w[1] >> 32),
			Slot:         uint32(w[2] & 0xffffffff),
			Shifts:       uint32(w[2] >> 32),
			DurNs:        w[3],
			Locks:        w[4],
			Hier:         w[5],
		})
	}
	return out
}
