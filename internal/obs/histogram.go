// Package obs is the observability layer: lock-free log-linear
// histograms, a dependency-free Prometheus text-format registry, and a
// sampled per-transaction flight recorder. Everything on a record path
// is wait-free (a handful of uncontended atomic adds), allocation-free
// and safe for any number of concurrent writers — it is designed to sit
// inside the STM commit path, the WAL flusher and the server's request
// handlers without perturbing what it measures.
//
// The paper's whole premise is an STM that watches itself run; this
// package is where the watching happens. Aggregate counters answer "how
// much", the histograms answer "how slow at which quantile", and the
// flight recorder answers the forensic "what exactly did transaction X
// live through" that neither can.
package obs

import (
	"math/bits"
	"sync/atomic"
)

// The histogram is HDR-style log-linear: values below subBuckets are
// recorded exactly; above that, each power-of-two range is split into
// subBuckets linear sub-buckets, so the relative quantile error is
// bounded by 1/subBuckets (~3%) across the whole uint64 range. Bucket
// index computation is one bits.Len64 plus shifts — O(1), no loops.
const (
	subBits    = 5
	subBuckets = 1 << subBits // 32 linear sub-buckets per power of two
	// groups covers bit lengths subBits+1 .. 64.
	groups = 64 - subBits
	// NumBuckets is the fixed bucket count of every Histogram (~15 KiB
	// of counters); all histograms share one layout, which is what makes
	// snapshots mergeable and subtractable without metadata.
	NumBuckets = subBuckets + groups*subBuckets
)

// bucketIndex maps a value to its bucket. Exact for v < subBuckets.
func bucketIndex(v uint64) int {
	if v < subBuckets {
		return int(v)
	}
	n := bits.Len64(v) // subBits+1 .. 64
	shift := uint(n - subBits - 1)
	sub := v >> shift // in [subBuckets, 2*subBuckets)
	return int(shift)*subBuckets + int(sub)
}

// bucketUpper returns the largest value the bucket holds (its inclusive
// upper bound — the quantile estimate reported for hits in it).
func bucketUpper(i int) uint64 {
	if i < subBuckets {
		return uint64(i)
	}
	g := uint(i/subBuckets - 1)
	sub := uint64(i%subBuckets) + subBuckets
	return (sub+1)<<g - 1
}

// Histogram is a fixed-layout log-linear histogram with atomic-counter
// buckets. Record is O(1), lock-free and allocation-free; Snapshot gives
// a consistent-enough point-in-time copy for quantile extraction,
// merging and period deltas. The zero value is ready to use, but a
// Histogram must not be copied after first use — always share pointers.
type Histogram struct {
	counts [NumBuckets]atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Record adds one observation. Wait-free: two atomic adds plus a
// load-then-CAS max update that almost always skips the CAS.
func (h *Histogram) Record(v uint64) {
	h.counts[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur {
			return
		}
		if h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Snapshot copies the counters. Buckets are read individually (no global
// lock), so a snapshot taken under concurrent recording is a slightly
// torn but monotone view — fine for monitoring, and Sub between two
// snapshots of the same histogram is always non-negative per bucket.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// Snapshot is a point-in-time copy of a Histogram: plain counters,
// shareable and mergeable off the hot path.
type Snapshot struct {
	Counts [NumBuckets]uint64
	// Count is the total number of observations and Sum their sum; Max
	// is the exact largest value recorded.
	Count, Sum, Max uint64
}

// Merge folds o into s (for combining per-worker or per-surface
// histograms into one distribution).
func (s *Snapshot) Merge(o *Snapshot) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Sub returns the delta distribution s - o, where o is an EARLIER
// snapshot of the same histogram: the observations recorded between the
// two. Max cannot be differenced and is carried from s (an upper bound
// for the interval).
func (s *Snapshot) Sub(o *Snapshot) Snapshot {
	var d Snapshot
	for i := range s.Counts {
		c := s.Counts[i] - o.Counts[i]
		d.Counts[i] = c
		d.Count += c
	}
	d.Sum = s.Sum - o.Sum
	d.Max = s.Max
	return d
}

// Quantile returns the q-quantile (q in [0,1]) as the upper bound of the
// bucket holding it, clamped to the exact recorded Max. Zero when empty.
func (s *Snapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var cum uint64
	for i := range s.Counts {
		cum += s.Counts[i]
		if cum > rank {
			u := bucketUpper(i)
			if u > s.Max {
				u = s.Max
			}
			return u
		}
	}
	return s.Max
}

// CumulativeLE returns how many observations were <= bound — the
// Prometheus `le` bucket semantics. Buckets are ~3% wide, so a bound
// falling inside one is answered with the count up to the bucket BELOW
// it (never an overcount).
func (s *Snapshot) CumulativeLE(bound uint64) uint64 {
	i := bucketIndex(bound)
	if bucketUpper(i) > bound {
		i--
	}
	var cum uint64
	for j := 0; j <= i; j++ {
		cum += s.Counts[j]
	}
	return cum
}

// Mean returns the average observation, 0 when empty.
func (s *Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
