package obs

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry renders registered instruments in the Prometheus text
// exposition format (version 0.0.4) without importing any client
// library. Registration happens at construction time (it panics on
// invalid or conflicting registrations, like prometheus.MustRegister);
// scraping takes one mutex around the render, never touching a record
// path.
type Registry struct {
	mu       sync.Mutex
	fams     map[string]*family
	onScrape []func()
}

// Labels is one instrument's constant label set; rendered sorted by key.
type Labels map[string]string

// Counter is a monotonically increasing counter instrument.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n; Inc by one.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

type family struct {
	name, help string
	kind       metricKind
	metrics    []*metric
}

type metric struct {
	labels string // pre-rendered, sorted: `k1="v1",k2="v2"` or ""
	ctr    *Counter
	fn     func() float64 // counterFunc / gaugeFunc value source
	hist   *Histogram
	scale  float64  // multiplies raw histogram values on exposition (ns -> s: 1e-9)
	bounds []uint64 // `le` boundaries in RAW histogram units, ascending
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// renderLabels validates and renders a label set sorted by key.
func renderLabels(ls Labels) string {
	if len(ls) == 0 {
		return ""
	}
	keys := make([]string, 0, len(ls))
	for k := range ls {
		if !nameRE.MatchString(k) {
			panic(fmt.Sprintf("obs: invalid label name %q", k))
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q supplies the surrounding quotes and escapes `\`, `"` and
		// newlines exactly as the exposition format requires.
		fmt.Fprintf(&b, "%s=%q", k, ls[k])
	}
	return b.String()
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// register adds one metric to its family, creating or type-checking it.
func (r *Registry) register(name, help string, kind metricKind, m *metric) {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.fams[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as both %v and %v", name, f.kind, kind))
	}
	for _, ex := range f.metrics {
		if ex.labels == m.labels {
			panic(fmt.Sprintf("obs: duplicate metric %s{%s}", name, m.labels))
		}
	}
	f.metrics = append(f.metrics, m)
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string, ls Labels) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, &metric{labels: renderLabels(ls), ctr: c})
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time (for totals another layer already maintains).
func (r *Registry) CounterFunc(name, help string, ls Labels, fn func() float64) {
	r.register(name, help, kindCounter, &metric{labels: renderLabels(ls), fn: fn})
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, ls Labels, fn func() float64) {
	r.register(name, help, kindGauge, &metric{labels: renderLabels(ls), fn: fn})
}

// Histogram registers h for exposition as `name_bucket`/`name_sum`/
// `name_count`. bounds are the `le` boundaries in h's RAW units,
// ascending; scale converts raw units for exposition (latencies are
// recorded in nanoseconds and exposed in seconds with scale 1e-9).
func (r *Registry) Histogram(name, help string, ls Labels, h *Histogram, scale float64, bounds []uint64) {
	if h == nil {
		panic("obs: Histogram registered with nil histogram")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	r.register(name, help, kindHistogram, &metric{
		labels: renderLabels(ls), hist: h, scale: scale, bounds: bounds,
	})
}

// OnScrape registers a hook run (under the registry lock) at the start
// of every scrape — the place to refresh cached snapshots that several
// CounterFunc/GaugeFunc closures then read consistently.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onScrape = append(r.onScrape, fn)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders every family, sorted by name, in the text
// exposition format.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, fn := range r.onScrape {
		fn()
	}
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		f := r.fams[n]
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		ms := make([]*metric, len(f.metrics))
		copy(ms, f.metrics)
		sort.Slice(ms, func(i, j int) bool { return ms[i].labels < ms[j].labels })
		for _, m := range ms {
			switch {
			case m.hist != nil:
				writeHistogram(&b, f.name, m)
			case m.ctr != nil:
				writeSample(&b, f.name, m.labels, strconv.FormatUint(m.ctr.Value(), 10))
			default:
				writeSample(&b, f.name, m.labels, formatFloat(m.fn()))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSample(b *strings.Builder, name, labels, value string) {
	if labels == "" {
		fmt.Fprintf(b, "%s %s\n", name, value)
		return
	}
	fmt.Fprintf(b, "%s{%s} %s\n", name, labels, value)
}

func writeHistogram(b *strings.Builder, name string, m *metric) {
	snap := m.hist.Snapshot()
	join := func(extra string) string {
		if m.labels == "" {
			return extra
		}
		return m.labels + "," + extra
	}
	for _, bound := range m.bounds {
		// 12 significant digits ('g' drops trailing zeros) absorbs the
		// binary-float noise of bound*1e-9 so 1000ns renders as 1e-06.
		le := strconv.FormatFloat(float64(bound)*m.scale, 'g', 12, 64)
		writeSample(b, name+"_bucket", join(`le="`+le+`"`),
			strconv.FormatUint(snap.CumulativeLE(bound), 10))
	}
	writeSample(b, name+"_bucket", join(`le="+Inf"`), strconv.FormatUint(snap.Count, 10))
	writeSample(b, name+"_sum", m.labels, formatFloat(float64(snap.Sum)*m.scale))
	writeSample(b, name+"_count", m.labels, strconv.FormatUint(snap.Count, 10))
}

// Handler serves the registry over HTTP (the /metrics endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// LatencyBounds is the default `le` boundary set for latency histograms
// recorded in nanoseconds: 1µs .. 10s, roughly log-spaced.
func LatencyBounds() []uint64 {
	return []uint64{
		1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
		100_000, 250_000, 500_000, 1_000_000, 2_500_000, 5_000_000,
		10_000_000, 25_000_000, 50_000_000, 100_000_000, 250_000_000, 500_000_000,
		1_000_000_000, 2_500_000_000, 5_000_000_000, 10_000_000_000,
	}
}

// SizeBounds is the default `le` boundary set for size/count histograms
// (batch sizes): powers of two 1 .. 4096.
func SizeBounds() []uint64 {
	return []uint64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
}
