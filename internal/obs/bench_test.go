package obs

import (
	"testing"

	"tinystm/internal/txn"
)

// The ObsRecord* benchmarks are in the benchdiff gate: the record path
// must stay at single-digit-nanosecond cost so instrumentation can sit
// inside the STM commit path without perturbing what it measures.

func BenchmarkObsRecord(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(uint64(i)<<8 + 137)
	}
}

func BenchmarkObsRecordSample(b *testing.B) {
	r := NewRecorder(4096, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Sample()
	}
}

func BenchmarkObsRecordFlight(b *testing.B) {
	r := NewRecorder(4096, 1)
	e := Event{TimeUnixNano: 1, Kind: EvCommit, Slot: 3, Attempt: 1, DurNs: 1200, Locks: 1 << 20}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(e)
	}
}

func BenchmarkObsRecordTMAbort(b *testing.B) {
	o := NewTMObs(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.OnAbort(uint64(i), txn.AbortReadConflict)
	}
}

// Parallel contention picture; intentionally named outside the ObsRecord
// benchdiff-gate prefix (throughput under contention is machine-shaped).
func BenchmarkObsParallelHistogram(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := uint64(0)
		for pb.Next() {
			v += 997
			h.Record(v)
		}
	})
}

func BenchmarkObsParallelFlight(b *testing.B) {
	r := NewRecorder(4096, 1)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		e := Event{Kind: EvCommit, DurNs: 1}
		for pb.Next() {
			r.Record(e)
		}
	})
}
