package obs

import (
	"math/rand"
	"sync"
	"testing"
)

func TestBucketIndexExactLowRange(t *testing.T) {
	for v := uint64(0); v < subBuckets; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Fatalf("bucketIndex(%d) = %d, want exact", v, got)
		}
		if up := bucketUpper(int(v)); up != v {
			t.Fatalf("bucketUpper(%d) = %d, want %d", v, up, v)
		}
	}
}

func TestBucketIndexMonotoneAndBounded(t *testing.T) {
	// Every value maps inside [0, NumBuckets); indices are monotone in
	// the value; the value never exceeds its bucket's upper bound.
	vals := []uint64{0, 1, 31, 32, 33, 63, 64, 65, 127, 128, 1000, 1 << 20, 1<<40 + 12345, 1<<63 - 1, 1 << 63, ^uint64(0)}
	prev := -1
	for _, v := range vals {
		i := bucketIndex(v)
		if i < 0 || i >= NumBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range [0,%d)", v, i, NumBuckets)
		}
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d", v)
		}
		prev = i
		if up := bucketUpper(i); up < v {
			t.Fatalf("value %d above its bucket upper %d (bucket %d)", v, up, i)
		}
	}
	if bucketIndex(^uint64(0)) != NumBuckets-1 {
		t.Fatalf("max uint64 must land in the last bucket, got %d", bucketIndex(^uint64(0)))
	}
}

func TestBucketRelativeError(t *testing.T) {
	// Log-linear guarantee: the bucket upper bound overestimates a
	// contained value by at most 1/subBuckets (plus rounding).
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		v := uint64(rng.Int63())
		up := bucketUpper(bucketIndex(v))
		if float64(up-v) > float64(v)/subBuckets+1 {
			t.Fatalf("value %d: upper %d exceeds %.1f%% relative error", v, up, 100.0/subBuckets)
		}
	}
}

func TestQuantileUniform(t *testing.T) {
	h := NewHistogram()
	for v := uint64(1); v <= 100_000; v++ {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != 100_000 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Max != 100_000 {
		t.Fatalf("max = %d", s.Max)
	}
	for _, tc := range []struct {
		q    float64
		want uint64
	}{{0.50, 50_000}, {0.95, 95_000}, {0.99, 99_000}, {1.0, 100_000}} {
		got := s.Quantile(tc.q)
		lo := tc.want - tc.want/subBuckets - 1
		hi := tc.want + tc.want/subBuckets + tc.want/subBuckets/2 + 1
		if got < lo || got > hi {
			t.Errorf("q%.2f = %d, want within ~3%% of %d", tc.q, got, tc.want)
		}
	}
	if got := s.Quantile(0); got > 1+1 {
		t.Errorf("q0 = %d, want ~1", got)
	}
}

func TestQuantileEmptyAndSingle(t *testing.T) {
	h := NewHistogram()
	s := h.Snapshot()
	if s.Quantile(0.5) != 0 || s.Count != 0 {
		t.Fatal("empty histogram must report zero")
	}
	h.Record(42)
	s = h.Snapshot()
	if got := s.Quantile(0.5); got != 42 {
		t.Fatalf("single-value q50 = %d, want exactly 42 (max clamp)", got)
	}
	if got := s.Quantile(1.0); got != 42 {
		t.Fatalf("single-value q100 = %d, want 42", got)
	}
}

func TestCumulativeLE(t *testing.T) {
	h := NewHistogram()
	for _, v := range []uint64{1, 2, 3, 10, 100, 1000, 100_000} {
		h.Record(v)
	}
	s := h.Snapshot()
	for _, tc := range []struct {
		bound, want uint64
	}{{0, 0}, {1, 1}, {3, 3}, {9, 4 - 1}, {10, 4}, {999, 5}, {^uint64(0), 7}} {
		if got := s.CumulativeLE(tc.bound); got != tc.want {
			t.Errorf("CumulativeLE(%d) = %d, want %d", tc.bound, got, tc.want)
		}
	}
}

func TestSnapshotMergeAndSub(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for v := uint64(0); v < 1000; v++ {
		a.Record(v)
		b.Record(v * 10)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	merged := sa
	merged.Merge(&sb)
	if merged.Count != 2000 {
		t.Fatalf("merged count = %d", merged.Count)
	}
	if merged.Sum != sa.Sum+sb.Sum {
		t.Fatalf("merged sum = %d", merged.Sum)
	}
	if merged.Max != sb.Max {
		t.Fatalf("merged max = %d, want %d", merged.Max, sb.Max)
	}

	// Delta: record more into a, subtract the earlier snapshot.
	for v := uint64(0); v < 500; v++ {
		a.Record(1 << 20)
	}
	s2 := a.Snapshot()
	d := s2.Sub(&sa)
	if d.Count != 500 {
		t.Fatalf("delta count = %d, want 500", d.Count)
	}
	if q := d.Quantile(0.5); q < (1<<20)-(1<<20)/subBuckets || q > (1<<20)+(1<<20)/subBuckets {
		t.Fatalf("delta q50 = %d, want ~%d", q, 1<<20)
	}
}

// TestConcurrentRecordMerge hammers one histogram from many goroutines
// (run under -race in CI) and checks nothing is lost: the bucket totals,
// count, sum and max must all reconcile exactly once the writers stop.
func TestConcurrentRecordMerge(t *testing.T) {
	h := NewHistogram()
	const workers = 8
	const perWorker = 20_000
	var wg sync.WaitGroup
	var wantSum uint64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var localSum uint64
			for i := 0; i < perWorker; i++ {
				v := uint64(rng.Int63n(1 << 30))
				h.Record(v)
				localSum += v
			}
			mu.Lock()
			wantSum += localSum
			mu.Unlock()
		}(int64(w))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("count = %d, want %d (lost updates)", s.Count, workers*perWorker)
	}
	if s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
	var bucketTotal uint64
	for _, c := range s.Counts {
		bucketTotal += c
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, s.Count)
	}
	if s.Max == 0 || s.Max >= 1<<30 {
		t.Fatalf("max = %d out of recorded range", s.Max)
	}
	if q := s.Quantile(0.5); q == 0 || q > 1<<30 {
		t.Fatalf("q50 = %d implausible for uniform [0,2^30)", q)
	}
}

// TestRecordAllocFree pins the record-path allocation contract.
func TestRecordAllocFree(t *testing.T) {
	h := NewHistogram()
	if n := testing.AllocsPerRun(1000, func() { h.Record(12345) }); n != 0 {
		t.Fatalf("Record allocates %v times per op, want 0", n)
	}
}
