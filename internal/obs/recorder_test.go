package obs

import (
	"sync"
	"testing"

	"tinystm/internal/cm"
	"tinystm/internal/txn"
)

func TestRecorderCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 16}, {1, 16}, {16, 16}, {17, 32}, {100, 128}, {4096, 4096}, {5000, 8192},
	} {
		if got := NewRecorder(tc.in, 1).Cap(); got != tc.want {
			t.Errorf("NewRecorder(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
	if got := NewRecorder(16, 0).SampleEvery(); got != 1 {
		t.Errorf("every floor: got %d, want 1", got)
	}
}

func TestRecorderWraparound(t *testing.T) {
	r := NewRecorder(16, 1)
	const total = 40
	for i := 1; i <= total; i++ {
		r.Record(Event{TimeUnixNano: int64(i), Kind: EvCommit, Slot: uint32(i), Attempt: 1, DurNs: uint64(i) * 10})
	}
	if r.Recorded() != total {
		t.Fatalf("Recorded = %d, want %d", r.Recorded(), total)
	}
	got := r.Dump(0)
	if len(got) != 16 {
		t.Fatalf("Dump retained %d events, want 16", len(got))
	}
	// Oldest-first, the last 16 sequence numbers, payloads intact.
	for i, e := range got {
		wantSeq := uint64(total - 16 + 1 + i)
		if e.Seq != wantSeq {
			t.Fatalf("event %d: seq %d, want %d", i, e.Seq, wantSeq)
		}
		if e.TimeUnixNano != int64(wantSeq) || e.Slot != uint32(wantSeq) || e.DurNs != wantSeq*10 {
			t.Fatalf("event %d: payload %+v does not match seq %d", i, e, wantSeq)
		}
	}

	if lim := r.Dump(4); len(lim) != 4 || lim[0].Seq != total-3 || lim[3].Seq != total {
		t.Fatalf("Dump(4) = seqs %v, want [37 38 39 40]", seqsOf(lim))
	}
}

func seqsOf(es []Event) []uint64 {
	out := make([]uint64, len(es))
	for i, e := range es {
		out[i] = e.Seq
	}
	return out
}

func TestRecorderRoundTripFields(t *testing.T) {
	r := NewRecorder(16, 1)
	in := Event{
		TimeUnixNano: 1_700_000_000_123_456_789,
		Kind:         EvAbort,
		Cause:        txn.AbortKilled,
		CM:           cm.Karma,
		Slot:         12345,
		Attempt:      7,
		DurNs:        987_654,
		Locks:        1 << 20,
		Shifts:       4,
		Hier:         64,
	}
	r.Record(in)
	out := r.Dump(0)
	if len(out) != 1 {
		t.Fatalf("dump len %d", len(out))
	}
	in.Seq = 1
	if out[0] != in {
		t.Fatalf("round trip mangled the event:\n got %+v\nwant %+v", out[0], in)
	}
}

func TestRecorderSamplingRate(t *testing.T) {
	r := NewRecorder(16, 4)
	hits := 0
	for i := 0; i < 100; i++ {
		if r.Sample() {
			hits++
		}
	}
	if hits != 25 {
		t.Fatalf("every=4: %d/100 sampled, want 25", hits)
	}
	// every=1 samples everything.
	r1 := NewRecorder(16, 1)
	for i := 0; i < 10; i++ {
		if !r1.Sample() {
			t.Fatal("every=1 must sample every transaction")
		}
	}
}

func TestRecorderSkipsTornSlot(t *testing.T) {
	r := NewRecorder(16, 1)
	for i := 1; i <= 8; i++ {
		r.Record(Event{Slot: uint32(i)})
	}
	// Simulate a writer caught mid-store on seq 3: ver is parked at 0.
	r.slots[2].ver.Store(0)
	got := r.Dump(0)
	if len(got) != 7 {
		t.Fatalf("dump returned %d events, want 7 (torn slot skipped)", len(got))
	}
	for _, e := range got {
		if e.Seq == 3 {
			t.Fatal("torn slot 3 leaked into the dump")
		}
	}
}

// TestRecorderConcurrent interleaves writers and dumpers under -race: every
// dumped event must be internally consistent (payload matches its Seq),
// which the seqlock guarantees even while slots are being overwritten.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(64, 1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if r.Sample() {
					r.Record(Event{Kind: EvCommit, DurNs: 1})
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		for _, e := range r.Dump(0) {
			if e.Kind != EvCommit || e.DurNs != 1 {
				t.Errorf("torn event leaked: %+v", e)
			}
		}
	}
	close(stop)
	wg.Wait()
}
