package obs

import (
	"sync/atomic"

	"tinystm/internal/txn"
)

// TMObs bundles the STM-level instruments one TM records into: the
// committed-attempt duration histogram, one aborted-attempt duration
// histogram per abort cause, and (optionally) the flight recorder. An
// installed *TMObs sits behind one atomic pointer in the TM; a nil one
// costs the transaction loop a single predictable branch.
type TMObs struct {
	// CommitNs is the duration of successful attempts (Begin to
	// published Commit), in nanoseconds.
	CommitNs *Histogram
	// AbortNs[k] is the duration of attempts that rolled back with
	// cause k, in nanoseconds.
	AbortNs [txn.NAbortKinds]*Histogram
	// Rec, when non-nil, receives the sampled per-transaction event
	// trace.
	Rec *Recorder
}

// NewTMObs allocates every histogram; rec may be nil (no flight
// recording, histograms only).
func NewTMObs(rec *Recorder) *TMObs {
	o := &TMObs{CommitNs: NewHistogram(), Rec: rec}
	for i := range o.AbortNs {
		o.AbortNs[i] = NewHistogram()
	}
	return o
}

// OnCommit records a successful attempt's duration.
func (o *TMObs) OnCommit(durNs uint64) { o.CommitNs.Record(durNs) }

// OnAbort records a failed attempt's duration under its cause.
func (o *TMObs) OnAbort(durNs uint64, cause txn.AbortKind) {
	if cause < 0 || int(cause) >= len(o.AbortNs) {
		cause = 0
	}
	o.AbortNs[cause].Record(durNs)
}

// SampleTx draws the flight-recorder sampling decision for one atomic
// block; false when no recorder is attached.
func (o *TMObs) SampleTx() bool { return o.Rec != nil && o.Rec.Sample() }

// Trace appends one event to the flight recorder (no-op without one).
func (o *TMObs) Trace(e Event) {
	if o.Rec != nil {
		o.Rec.Record(e)
	}
}

// ShardHeat is the per-shard heat map: one op counter and one abort
// counter per store shard, recorded by kvstore from each operation's
// attempt count. It is the measurement the per-shard tuning-partition
// work needs — which shards are hot, and where the aborts concentrate.
type ShardHeat struct {
	ops    []atomic.Uint64
	aborts []atomic.Uint64
}

// NewShardHeat builds counters for `shards` shards.
func NewShardHeat(shards int) *ShardHeat {
	return &ShardHeat{ops: make([]atomic.Uint64, shards), aborts: make([]atomic.Uint64, shards)}
}

// Record notes one completed single-key operation against shard sh that
// took `attempts` attempts to commit: one op, attempts-1 aborts.
func (h *ShardHeat) Record(sh uint64, attempts int) {
	if sh >= uint64(len(h.ops)) {
		return
	}
	h.ops[sh].Add(1)
	if attempts > 1 {
		h.aborts[sh].Add(uint64(attempts - 1))
	}
}

// Shards returns the shard count.
func (h *ShardHeat) Shards() int { return len(h.ops) }

// Ops returns shard i's completed-operation count.
func (h *ShardHeat) Ops(i int) uint64 { return h.ops[i].Load() }

// Aborts returns shard i's accumulated abort (retry) count.
func (h *ShardHeat) Aborts(i int) uint64 { return h.aborts[i].Load() }
