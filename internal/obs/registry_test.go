package obs

import (
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// buildFixedRegistry assembles a registry with deterministic contents
// covering every instrument kind, label rendering (sorting, escaping)
// and histogram exposition.
func buildFixedRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Operations completed.", nil)
	c.Add(41)
	c.Inc()
	// Two label sets in one family, registered out of sorted order, with
	// label keys given out of sorted order too.
	r.Counter("test_requests_total", "Requests by surface and op.",
		Labels{"op": "put", "surface": "http"}).Add(7)
	r.Counter("test_requests_total", "Requests by surface and op.",
		Labels{"surface": "binary", "op": "get"}).Add(3)
	r.GaugeFunc("test_width", "Current admission width.", nil, func() float64 { return 12 })
	r.CounterFunc("test_derived_total", `Escapes: backslash \ quote " done.`, Labels{"path": `C:\x`, "q": `a"b`},
		func() float64 { return 5 })

	h := NewHistogram()
	for _, v := range []uint64{500, 1_500, 1_500, 40_000, 2_000_000} {
		h.Record(v)
	}
	r.Histogram("test_latency_seconds", "Request latency.\nMulti-line help.", nil,
		h, 1e-9, []uint64{1_000, 10_000, 100_000, 1_000_000})

	sz := NewHistogram()
	for _, v := range []uint64{1, 2, 2, 4, 100} {
		sz.Record(v)
	}
	r.Histogram("test_batch_ops", "Batch sizes.", Labels{"kind": "wal"}, sz, 1, []uint64{1, 2, 4, 8, 64})
	return r
}

func TestExpositionGolden(t *testing.T) {
	var b strings.Builder
	if err := buildFixedRegistry().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	golden := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden file:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestHandlerContentType(t *testing.T) {
	rec := httptest.NewRecorder()
	buildFixedRegistry().Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "test_ops_total 42") {
		t.Fatalf("body missing counter sample:\n%s", rec.Body.String())
	}
}

func TestOnScrapeHookRunsPerScrape(t *testing.T) {
	r := NewRegistry()
	n := 0
	var cached float64
	r.OnScrape(func() { n++; cached = float64(n * 10) })
	r.GaugeFunc("test_cached", "Value refreshed by the scrape hook.", nil, func() float64 { return cached })
	var b strings.Builder
	_ = r.WriteText(&b)
	_ = r.WriteText(&b)
	if n != 2 {
		t.Fatalf("hook ran %d times, want 2", n)
	}
	if !strings.Contains(b.String(), "test_cached 20") {
		t.Fatalf("second scrape did not see refreshed cache:\n%s", b.String())
	}
}

func TestRegistryPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("invalid name", func() { NewRegistry().Counter("bad-name", "", nil) })
	expectPanic("invalid label", func() { NewRegistry().Counter("ok", "", Labels{"bad-key": "v"}) })
	expectPanic("dup labels", func() {
		r := NewRegistry()
		r.Counter("ok_total", "", Labels{"a": "1"})
		r.Counter("ok_total", "", Labels{"a": "1"})
	})
	expectPanic("kind conflict", func() {
		r := NewRegistry()
		r.Counter("ok_total", "", nil)
		r.GaugeFunc("ok_total", "", Labels{"a": "1"}, func() float64 { return 0 })
	})
	expectPanic("nil histogram", func() { NewRegistry().Histogram("h", "", nil, nil, 1, nil) })
	expectPanic("bounds not ascending", func() {
		NewRegistry().Histogram("h", "", nil, NewHistogram(), 1, []uint64{10, 5})
	})
}
