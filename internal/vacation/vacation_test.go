package vacation_test

import (
	"sync"
	"testing"

	"tinystm/internal/core"
	"tinystm/internal/mem"
	"tinystm/internal/rng"
	"tinystm/internal/tl2"
	"tinystm/internal/txn"
	"tinystm/internal/vacation"
)

func newCore(t testing.TB, d core.Design) *core.TM {
	t.Helper()
	sp := mem.NewSpace(1 << 22)
	return core.MustNew(core.Config{Space: sp, Locks: 1 << 14, Design: d})
}

func smallParams() vacation.Params {
	return vacation.Params{Relations: 64, QueryPct: 90, UserPct: 80, QueriesPerTx: 4}
}

func TestSetupConsistent(t *testing.T) {
	tm := newCore(t, core.WriteBack)
	m := vacation.Setup[*core.Tx](tm, smallParams(), 1)
	tx := tm.NewTx()
	tm.Atomic(tx, func(tx *core.Tx) {
		if err := vacation.CheckConsistency(tx, m); err != nil {
			//stm:allow-effect test-only: a failed assertion ends the test, and the throwaway TM dies with it
			t.Fatal(err)
		}
		if used := vacation.TotalReserved(tx, m); used != 0 {
			t.Errorf("fresh system has %d reservations", used)
		}
	})
}

func TestMakeReservationReserves(t *testing.T) {
	tm := newCore(t, core.WriteBack)
	m := vacation.Setup[*core.Tx](tm, smallParams(), 2)
	tx := tm.NewTx()
	r := rng.New(3)
	made := 0
	for i := 0; i < 50; i++ {
		// Count only after Atomic returns: an aborted attempt would
		// re-run the body and double-count an increment made inside it.
		var ok bool
		tm.Atomic(tx, func(tx *core.Tx) {
			ok = vacation.MakeReservation(tx, m, r)
		})
		if ok {
			made++
		}
	}
	if made == 0 {
		t.Fatal("no reservation ever made (tables populated, should succeed)")
	}
	tm.Atomic(tx, func(tx *core.Tx) {
		used := vacation.TotalReserved(tx, m)
		infos := vacation.CustomerInfoCount(tx, m)
		if used == 0 {
			t.Error("no seats marked used")
		}
		if used != infos {
			t.Errorf("used seats %d != customer info nodes %d", used, infos)
		}
		if err := vacation.CheckConsistency(tx, m); err != nil {
			//stm:allow-effect test-only: a failed assertion ends the test, and the throwaway TM dies with it
			t.Fatal(err)
		}
	})
}

func TestDeleteCustomerCancelsAll(t *testing.T) {
	tm := newCore(t, core.WriteBack)
	m := vacation.Setup[*core.Tx](tm, smallParams(), 4)
	tx := tm.NewTx()
	r := rng.New(5)
	for i := 0; i < 100; i++ {
		tm.Atomic(tx, func(tx *core.Tx) { vacation.MakeReservation(tx, m, r) })
	}
	// Delete every reachable customer, then nothing may remain reserved.
	deleted := 0
	var billed uint64
	for i := 0; i < 2000; i++ {
		// Tally after Atomic returns: increments inside the body would
		// double-count on abort-and-retry.
		var bill uint64
		var ok bool
		tm.Atomic(tx, func(tx *core.Tx) {
			bill, ok = vacation.DeleteCustomer(tx, m, r)
		})
		if ok {
			deleted++
			billed += bill
		}
	}
	tm.Atomic(tx, func(tx *core.Tx) {
		if used := vacation.TotalReserved(tx, m); used != 0 && deleted > 0 {
			// Customers not hit by the random draws may persist; delete
			// deterministically via info count check instead.
			infos := vacation.CustomerInfoCount(tx, m)
			if used != infos {
				t.Errorf("used %d != infos %d after deletions", used, infos)
			}
		}
		if err := vacation.CheckConsistency(tx, m); err != nil {
			//stm:allow-effect test-only: a failed assertion ends the test, and the throwaway TM dies with it
			t.Fatal(err)
		}
	})
	if deleted == 0 {
		t.Error("no customer was ever deleted")
	}
	if billed == 0 {
		t.Error("deleted customers had zero total bill")
	}
}

func TestUpdateTablesKeepsInvariants(t *testing.T) {
	tm := newCore(t, core.WriteBack)
	m := vacation.Setup[*core.Tx](tm, smallParams(), 6)
	tx := tm.NewTx()
	r := rng.New(7)
	for i := 0; i < 300; i++ {
		tm.Atomic(tx, func(tx *core.Tx) { vacation.UpdateTables(tx, m, r) })
	}
	tm.Atomic(tx, func(tx *core.Tx) {
		if err := vacation.CheckConsistency(tx, m); err != nil {
			//stm:allow-effect test-only: a failed assertion ends the test, and the throwaway TM dies with it
			t.Fatal(err)
		}
	})
}

func runMixedWorkload[T txn.Tx](t *testing.T, sys txn.System[T], workers, iters int) *vacation.Manager {
	t.Helper()
	m := vacation.Setup(sys, smallParams(), 8)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := rng.NewThread(9, id)
			tx := sys.NewTx()
			for i := 0; i < iters; i++ {
				switch r.Intn(100) {
				case 0, 1, 2, 3, 4, 5, 6, 7, 8, 9:
					sys.Atomic(tx, func(tx T) { vacation.DeleteCustomer(tx, m, r) })
				case 10, 11, 12, 13, 14:
					sys.Atomic(tx, func(tx T) { vacation.UpdateTables(tx, m, r) })
				default:
					sys.Atomic(tx, func(tx T) { vacation.MakeReservation(tx, m, r) })
				}
			}
		}(w)
	}
	wg.Wait()
	return m
}

func TestConcurrentMixedWorkloadConsistency(t *testing.T) {
	for _, d := range []core.Design{core.WriteBack, core.WriteThrough} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			tm := newCore(t, d)
			m := runMixedWorkload[*core.Tx](t, tm, 4, 150)
			tx := tm.NewTx()
			tm.Atomic(tx, func(tx *core.Tx) {
				if err := vacation.CheckConsistency(tx, m); err != nil {
					//stm:allow-effect test-only: a failed assertion ends the test, and the throwaway TM dies with it
					t.Fatal(err)
				}
				if used, infos := vacation.TotalReserved(tx, m), vacation.CustomerInfoCount(tx, m); used != infos {
					t.Errorf("used %d != infos %d", used, infos)
				}
			})
		})
	}
	t.Run("tl2", func(t *testing.T) {
		sp := mem.NewSpace(1 << 22)
		tm := tl2.MustNew(tl2.Config{Space: sp, Locks: 1 << 14})
		m := runMixedWorkload[*tl2.Tx](t, tm, 4, 150)
		tx := tm.NewTx()
		tm.Atomic(tx, func(tx *tl2.Tx) {
			if err := vacation.CheckConsistency(tx, m); err != nil {
				//stm:allow-effect test-only: a failed assertion ends the test, and the throwaway TM dies with it
				t.Fatal(err)
			}
		})
	})
}

func TestDefaultParams(t *testing.T) {
	p := vacation.DefaultParams()
	if p.Relations == 0 || p.QueryPct == 0 || p.UserPct == 0 || p.QueriesPerTx == 0 {
		t.Errorf("defaults incomplete: %+v", p)
	}
	m := vacation.Setup[*core.Tx](newCore(t, core.WriteBack), vacation.Params{Relations: 8}, 1)
	got := m.Params()
	if got.Relations != 8 {
		t.Errorf("Relations = %d, want 8", got.Relations)
	}
	if got.QueryPct != vacation.DefaultParams().QueryPct {
		t.Errorf("QueryPct default not applied: %+v", got)
	}
}
