// Package vacation re-creates the STAMP Vacation benchmark the paper uses
// in Figure 7: a travel reservation system whose tables live in
// transactional red-black trees.
//
// The manager keeps four relations — cars, flights, rooms (id →
// reservation record) and customers (id → reservation list) — and clients
// issue three transaction kinds:
//
//   - MakeReservation: query n random items across the three resource
//     tables, pick the highest-priced available item per resource, then
//     reserve them for a customer (inserted on demand);
//   - DeleteCustomer: compute a customer's bill, cancel all their
//     reservations and remove them;
//   - UpdateTables: add capacity to, or retire, n random resource records.
//
// Records are multi-word blocks allocated from the same transactional
// space, so every field access goes through the STM exactly as STAMP's
// field accesses go through TL2/TinySTM in the original evaluation.
package vacation

import (
	"fmt"

	"tinystm/internal/intset"
	"tinystm/internal/rng"
	"tinystm/internal/txn"
)

// ResType identifies a resource table.
type ResType int

// Resource kinds.
const (
	Car ResType = iota
	Flight
	Room
	numResTypes
)

// String names the resource.
func (r ResType) String() string {
	switch r {
	case Car:
		return "car"
	case Flight:
		return "flight"
	case Room:
		return "room"
	default:
		return fmt.Sprintf("ResType(%d)", int(r))
	}
}

// Reservation record layout (4 words), mirroring STAMP's reservation_t.
const (
	resUsed  = 0
	resFree  = 1
	resTotal = 2
	resPrice = 3
	resWords = 4
)

// Customer record layout (1 word): head of the reservation-info list.
const custWords = 1

// Reservation-info list node layout (4 words).
const (
	infoType  = 0
	infoID    = 1
	infoPrice = 2
	infoNext  = 3
	infoWords = 4
)

// Params configures the workload mix (STAMP's -n/-q/-u/-r flags).
type Params struct {
	// Relations is the number of records per table (-r).
	Relations int
	// QueryPct is the fraction of relations queries may touch (-q).
	QueryPct int
	// UserPct is the percentage of MakeReservation transactions (-u);
	// the remainder splits evenly between DeleteCustomer and
	// UpdateTables, as in STAMP's client.
	UserPct int
	// QueriesPerTx is the number of items each transaction examines (-n).
	QueriesPerTx int
}

// DefaultParams matches STAMP's "low contention" configuration scaled to
// this repository's harness.
func DefaultParams() Params {
	return Params{Relations: 1 << 12, QueryPct: 90, UserPct: 80, QueriesPerTx: 4}
}

func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.Relations == 0 {
		p.Relations = d.Relations
	}
	if p.QueryPct == 0 {
		p.QueryPct = d.QueryPct
	}
	if p.UserPct == 0 {
		p.UserPct = d.UserPct
	}
	if p.QueriesPerTx == 0 {
		p.QueriesPerTx = d.QueriesPerTx
	}
	return p
}

func (p Params) queryRange() uint64 {
	qr := uint64(p.Relations) * uint64(p.QueryPct) / 100
	if qr == 0 {
		qr = 1
	}
	return qr
}

// Manager holds the four relations. The handles are tree roots inside the
// transactional space; a Manager value can be shared across workers.
type Manager struct {
	cars      uint64
	flights   uint64
	rooms     uint64
	customers uint64
	params    Params
}

// table returns the tree handle for a resource type.
func (m *Manager) table(t ResType) uint64 {
	switch t {
	case Car:
		return m.cars
	case Flight:
		return m.flights
	case Room:
		return m.rooms
	default:
		panic("vacation: bad resource type")
	}
}

// Setup builds and populates a manager: each table receives Relations
// records with STAMP's capacity (100..500 in steps of 100) and price
// (50..550 in steps of 50) distributions.
func Setup[T txn.Tx](sys txn.System[T], p Params, seed uint64) *Manager {
	p = p.withDefaults()
	m := &Manager{params: p}
	tx := sys.NewTx()
	defer release(tx)
	r := rng.New(seed)
	sys.Atomic(tx, func(tx T) {
		m.cars = intset.NewTree(tx)
		m.flights = intset.NewTree(tx)
		m.rooms = intset.NewTree(tx)
		m.customers = intset.NewTree(tx)
	})
	for _, tbl := range []uint64{m.cars, m.flights, m.rooms} {
		tbl := tbl
		for id := 1; id <= p.Relations; id++ {
			id := uint64(id)
			total := uint64(r.Intn(5)+1) * 100
			price := uint64(r.Intn(5)*50 + 50)
			sys.Atomic(tx, func(tx T) {
				rec := tx.Alloc(resWords)
				tx.Store(rec+resUsed, 0)
				tx.Store(rec+resFree, total)
				tx.Store(rec+resTotal, total)
				tx.Store(rec+resPrice, price)
				intset.TreeInsert(tx, tbl, id, rec)
			})
		}
	}
	return m
}

// release hands a descriptor back when the system supports recycling.
// Setup minted one descriptor per call and dropped it, which retained a
// TM slot forever — enough Setups would exhaust maxSlots.
func release(tx any) {
	if r, ok := tx.(interface{ Release() }); ok {
		r.Release()
	}
}

// Params returns the workload parameters the manager was built with.
func (m *Manager) Params() Params { return m.params }

// MakeReservation runs one user transaction for a random customer drawn
// from rnd, inside tx (which must already be in an atomic block). It
// reports whether any reservation was made.
func MakeReservation[T txn.Tx](tx T, m *Manager, rnd *rng.Rand) bool {
	p := m.params
	qr := p.queryRange()
	customerID := rnd.Uint64n(qr) + 1

	var chosen [numResTypes]uint64 // record address per type (0 = none)
	var chosenID [numResTypes]uint64
	var maxPrice [numResTypes]uint64

	for i := 0; i < p.QueriesPerTx; i++ {
		t := ResType(rnd.Intn(int(numResTypes)))
		id := rnd.Uint64n(qr) + 1
		rec, ok := intset.TreeLookup(tx, m.table(t), id)
		if !ok {
			continue
		}
		price := tx.Load(rec + resPrice)
		if tx.Load(rec+resFree) > 0 && price > maxPrice[t] {
			chosen[t], chosenID[t], maxPrice[t] = rec, id, price
		}
	}

	found := false
	for t := ResType(0); t < numResTypes; t++ {
		if chosen[t] != 0 {
			found = true
			break
		}
	}
	if !found {
		return false
	}

	cust := customerLookupOrInsert(tx, m, customerID)
	for t := ResType(0); t < numResTypes; t++ {
		rec := chosen[t]
		if rec == 0 {
			continue
		}
		// Reserve: free--, used++ (availability was checked above inside
		// this same transaction, so it still holds).
		tx.Store(rec+resFree, tx.Load(rec+resFree)-1)
		tx.Store(rec+resUsed, tx.Load(rec+resUsed)+1)
		// Prepend to the customer's reservation list.
		info := tx.Alloc(infoWords)
		tx.Store(info+infoType, uint64(t))
		tx.Store(info+infoID, chosenID[t])
		tx.Store(info+infoPrice, maxPrice[t])
		tx.Store(info+infoNext, tx.Load(cust))
		tx.Store(cust, info)
	}
	return true
}

func customerLookupOrInsert[T txn.Tx](tx T, m *Manager, id uint64) uint64 {
	if rec, ok := intset.TreeLookup(tx, m.customers, id); ok {
		return rec
	}
	rec := tx.Alloc(custWords)
	tx.Store(rec, 0)
	intset.TreeInsert(tx, m.customers, id, rec)
	return rec
}

// DeleteCustomer cancels all reservations of a random customer and
// removes them, returning the billed total and whether the customer
// existed.
func DeleteCustomer[T txn.Tx](tx T, m *Manager, rnd *rng.Rand) (uint64, bool) {
	qr := m.params.queryRange()
	id := rnd.Uint64n(qr) + 1
	cust, ok := intset.TreeLookup(tx, m.customers, id)
	if !ok {
		return 0, false
	}
	var bill uint64
	node := tx.Load(cust)
	for node != 0 {
		bill += tx.Load(node + infoPrice)
		t := ResType(tx.Load(node + infoType))
		rid := tx.Load(node + infoID)
		if rec, ok := intset.TreeLookup(tx, m.table(t), rid); ok {
			// Cancel: used--, free++.
			tx.Store(rec+resUsed, tx.Load(rec+resUsed)-1)
			tx.Store(rec+resFree, tx.Load(rec+resFree)+1)
		}
		next := tx.Load(node + infoNext)
		tx.Free(node, infoWords)
		node = next
	}
	intset.TreeRemove(tx, m.customers, id)
	tx.Free(cust, custWords)
	return bill, true
}

// UpdateTables grows or retires n random records (STAMP's manager
// "update tables" administrative transaction).
func UpdateTables[T txn.Tx](tx T, m *Manager, rnd *rng.Rand) {
	p := m.params
	qr := p.queryRange()
	for i := 0; i < p.QueriesPerTx; i++ {
		t := ResType(rnd.Intn(int(numResTypes)))
		id := rnd.Uint64n(qr) + 1
		tbl := m.table(t)
		if rnd.Intn(2) == 0 {
			// Add capacity (or a new record).
			if rec, ok := intset.TreeLookup(tx, tbl, id); ok {
				tx.Store(rec+resFree, tx.Load(rec+resFree)+100)
				tx.Store(rec+resTotal, tx.Load(rec+resTotal)+100)
			} else {
				price := uint64(rnd.Intn(5)*50 + 50)
				rec := tx.Alloc(resWords)
				tx.Store(rec+resUsed, 0)
				tx.Store(rec+resFree, 100)
				tx.Store(rec+resTotal, 100)
				tx.Store(rec+resPrice, price)
				intset.TreeInsert(tx, tbl, id, rec)
			}
			continue
		}
		// Retire capacity; records whose free capacity cannot absorb the
		// cut are left alone (reservations must stay backed), and empty
		// unreserved records are deleted.
		rec, ok := intset.TreeLookup(tx, tbl, id)
		if !ok {
			continue
		}
		free := tx.Load(rec + resFree)
		total := tx.Load(rec + resTotal)
		if free < 100 {
			continue
		}
		if total == 100 && tx.Load(rec+resUsed) == 0 {
			intset.TreeRemove(tx, tbl, id)
			tx.Free(rec, resWords)
			continue
		}
		if total < 200 {
			continue
		}
		tx.Store(rec+resFree, free-100)
		tx.Store(rec+resTotal, total-100)
	}
}

// CheckConsistency verifies used+free == total and non-negative fields on
// every record, plus the red-black invariants of all four trees. Returns
// the first violation.
func CheckConsistency[T txn.Tx](tx T, m *Manager) error {
	for t := ResType(0); t < numResTypes; t++ {
		tbl := m.table(t)
		if err := intset.TreeValidate(tx, tbl); err != nil {
			return fmt.Errorf("vacation: %v table: %w", t, err)
		}
		for _, id := range intset.TreeSnapshot(tx, tbl) {
			rec, _ := intset.TreeLookup(tx, tbl, id)
			used := tx.Load(rec + resUsed)
			free := tx.Load(rec + resFree)
			total := tx.Load(rec + resTotal)
			if used+free != total {
				return fmt.Errorf("vacation: %v %d: used %d + free %d != total %d",
					t, id, used, free, total)
			}
		}
	}
	return intset.TreeValidate(tx, m.customers)
}

// TotalReserved sums used seats across all resource tables (test hook:
// it must equal the number of live customer reservation-info nodes).
func TotalReserved[T txn.Tx](tx T, m *Manager) uint64 {
	var used uint64
	for t := ResType(0); t < numResTypes; t++ {
		tbl := m.table(t)
		for _, id := range intset.TreeSnapshot(tx, tbl) {
			rec, _ := intset.TreeLookup(tx, tbl, id)
			used += tx.Load(rec + resUsed)
		}
	}
	return used
}

// CustomerInfoCount counts reservation-info nodes across all customers.
func CustomerInfoCount[T txn.Tx](tx T, m *Manager) uint64 {
	var n uint64
	for _, id := range intset.TreeSnapshot(tx, m.customers) {
		cust, _ := intset.TreeLookup(tx, m.customers, id)
		for node := tx.Load(cust); node != 0; node = tx.Load(node + infoNext) {
			n++
		}
	}
	return n
}
