package vacation

import (
	"tinystm/internal/harness"
	"tinystm/internal/txn"
)

// Op returns the harness operation implementing STAMP's client mix:
// UserPct% MakeReservation, with the remainder split evenly between
// DeleteCustomer and UpdateTables.
func Op[T txn.Tx](sys txn.System[T], m *Manager) harness.OpFunc[T] {
	p := m.params
	return func(w *harness.Worker, tx T) {
		roll := w.Rng.Intn(100)
		switch {
		case roll < p.UserPct:
			sys.Atomic(tx, func(tx T) { MakeReservation(tx, m, w.Rng) })
		case roll < p.UserPct+(100-p.UserPct)/2:
			sys.Atomic(tx, func(tx T) { DeleteCustomer(tx, m, w.Rng) })
		default:
			sys.Atomic(tx, func(tx T) { UpdateTables(tx, m, w.Rng) })
		}
	}
}
