package experiments

import (
	"fmt"

	"tinystm/internal/cm"
	"tinystm/internal/core"
	"tinystm/internal/harness"
	"tinystm/internal/txn"
)

// CMSweep holds throughput, abort and kill rates over the (contention-
// management policy × threads) grid: the conflict-resolution dimension
// added on top of the paper's (#locks, #shifts, h) triple. It quantifies
// when each policy wins: Suicide under light contention (zero overhead),
// Backoff/Karma/Timestamp as aborts climb, Serializer when retry storms
// would otherwise livelock.
type CMSweep struct {
	Title   string
	Threads []int
	Kinds   []cm.Kind
	// Values[k][t] is throughput at Kinds[k], Threads[t]; Aborts and
	// Kills are aborts/s and policy-requested kills/s at the same point.
	Values [][]float64
	Aborts [][]float64
	Kills  [][]float64
}

// ToTable flattens the sweep into rows (policy, threads, throughput,
// aborts, kills).
func (r CMSweep) ToTable() harness.Table {
	tbl := harness.Table{Title: r.Title,
		Headers: []string{"cm", "threads", "throughput (10^3/s)", "aborts (10^3/s)", "kills (10^3/s)"}}
	for ki, k := range r.Kinds {
		for ti, th := range r.Threads {
			tbl.AddRow(k.String(), th,
				fmt.Sprintf("%.1f", r.Values[ki][ti]/1000),
				fmt.Sprintf("%.1f", r.Aborts[ki][ti]/1000),
				fmt.Sprintf("%.1f", r.Kills[ki][ti]/1000))
		}
	}
	return tbl
}

// Best returns the policy with the highest throughput at the largest
// thread count.
func (r CMSweep) Best() (cm.Kind, float64) {
	best, bestTp := r.Kinds[0], -1.0
	last := len(r.Threads) - 1
	for ki, k := range r.Kinds {
		if tp := r.Values[ki][last]; tp > bestTp {
			best, bestTp = k, tp
		}
	}
	return best, bestTp
}

// SweepCMPolicies measures an intset workload under each contention-
// management policy across the scale's thread counts (TinySTM; the
// geometry and clock are fixed so the policy is the one moving part).
func SweepCMPolicies(sc Scale, d core.Design, geo core.Params,
	ip harness.IntsetParams, kinds []cm.Kind) CMSweep {
	sys := TinySTMWB
	if d == core.WriteThrough {
		sys = TinySTMWT
	}
	r := CMSweep{
		Title: fmt.Sprintf("cm-policy sweep: %v %v, size=%d, update=%d%%",
			d, ip.Kind, ip.InitialSize, ip.UpdatePct),
		Threads: sc.Threads, Kinds: kinds,
	}
	for _, k := range kinds {
		scc := sc
		scc.CM = k
		tps := make([]float64, len(sc.Threads))
		abr := make([]float64, len(sc.Threads))
		kil := make([]float64, len(sc.Threads))
		for ti, th := range sc.Threads {
			p := RunIntsetPoint(scc, sys, geo, ip, th)
			tps[ti] = p.Throughput
			abr[ti] = p.AbortRate
			if secs := p.Result.Duration.Seconds(); secs > 0 {
				kil[ti] = float64(p.Result.Delta.AbortsByKind[txn.AbortKilled]) / secs
			}
		}
		r.Values = append(r.Values, tps)
		r.Aborts = append(r.Aborts, abr)
		r.Kills = append(r.Kills, kil)
	}
	return r
}
