package experiments

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"tinystm/internal/core"
	"tinystm/internal/harness"
	"tinystm/internal/kvclient"
	"tinystm/internal/kvserver"
	"tinystm/internal/rng"
	"tinystm/internal/tuning"
)

// ProtoConfig parameterizes ProtoSweep: live kvserver instances measured
// over their two wire surfaces (HTTP+JSON vs. the kvproto binary
// protocol) and, separately, under a hot-key write storm with the
// admission gate off vs. on. Every point is a closed loop of Workers
// clients hammering a freshly built server, so the comparison isolates
// the protocol and the gate, not the arrival schedule.
type ProtoConfig struct {
	// Keys is the preloaded keyspace; Theta its Zipfian skew for the
	// surface comparison.
	Keys  uint64
	Theta float64
	// ReadPcts are the surface-comparison mixes: each entry is a read
	// percentage measured over both surfaces at equal Workers.
	ReadPcts []int
	// Workers is the client concurrency per point.
	Workers int
	// Duration is the measured window per point.
	Duration time.Duration
	// StormTheta and StormReadPct shape the admission-comparison storm:
	// heavily skewed keys, write-dominated (the default is 90% writes on
	// a 0.99-skew keyspace — the regime where optimistic STM livelocks).
	StormTheta   float64
	StormReadPct int
	// AdmissionWidth is the gate's initial width for the admission-on
	// storm arm; the tuner walks it from there.
	AdmissionWidth int
	// Period is the admission tuner's control period.
	Period time.Duration
	Seed   uint64
}

// DefaultProtoConfig scales the sweep to sc.
func DefaultProtoConfig(sc Scale) ProtoConfig {
	return ProtoConfig{
		Keys:           4096,
		Theta:          0.6,
		ReadPcts:       []int{95, 50, 10},
		Workers:        sc.Threads[len(sc.Threads)-1] * 4,
		Duration:       2 * sc.Duration,
		StormTheta:     0.99,
		StormReadPct:   10,
		AdmissionWidth: 64,
		Period:         sc.Duration / 4,
		Seed:           sc.Seed,
	}
}

// ProtoPoint is one measured client/server run.
type ProtoPoint struct {
	// Surface is "http" or "binary"; Gate "off", "on" or "" (surface
	// comparison points carry no gate).
	Surface string
	Gate    string
	ReadPct int
	// Ops counts completed operations; Errors how many failed.
	Ops, Errors uint64
	Elapsed     time.Duration
	// OpsPerSec is completed operations per second; Goodput the same
	// minus errors — the number the admission comparison ranks by.
	OpsPerSec, Goodput float64
	// Commits/Aborts are server-side TM deltas; AbortRatio is
	// aborts/(commits+aborts).
	Commits, Aborts uint64
	AbortRatio      float64
	// AdmWidth is the gate's final width (0 when ungated); AdmMoves the
	// number of width adaptations the tuner applied.
	AdmWidth, AdmMoves int
}

// ProtoSweepResult is the outcome of one ProtoSweep.
type ProtoSweepResult struct {
	// Surface pairs HTTP and binary points per read mix.
	Surface []ProtoPoint
	// Storm is the hot-key write-storm comparison: binary surface,
	// admission off then on.
	Storm []ProtoPoint
}

// SurfaceTable renders the HTTP-vs-binary comparison.
func (r ProtoSweepResult) SurfaceTable() harness.Table {
	tbl := harness.Table{
		Title:   "wire surface: HTTP+JSON vs. binary kvproto (equal workers)",
		Headers: []string{"surface", "read%", "ops (10^3)", "op/s (10^3)", "errors", "aborts"},
	}
	for _, p := range r.Surface {
		tbl.AddRow(p.Surface, p.ReadPct,
			fmt.Sprintf("%.1f", float64(p.Ops)/1000),
			fmt.Sprintf("%.1f", p.OpsPerSec/1000),
			p.Errors, p.Aborts)
	}
	return tbl
}

// StormTable renders the admission-off vs. admission-on storm comparison.
func (r ProtoSweepResult) StormTable() harness.Table {
	tbl := harness.Table{
		Title:   "hot-key write storm: admission control off vs. on (binary surface)",
		Headers: []string{"admission", "goodput (10^3/s)", "errors", "abort ratio", "adm width", "adm moves"},
	}
	for _, p := range r.Storm {
		adm := "-"
		if p.AdmWidth > 0 {
			adm = fmt.Sprintf("%d", p.AdmWidth)
		}
		tbl.AddRow(p.Gate,
			fmt.Sprintf("%.1f", p.Goodput/1000),
			p.Errors,
			fmt.Sprintf("%.3f", p.AbortRatio),
			adm, p.AdmMoves)
	}
	return tbl
}

// protoServerScaffold is one live server plus whichever wire surface the
// point measures.
type protoServerScaffold struct {
	srv   *kvserver.Server
	close func()
	// op runs one client operation: p<readPct reads, else increments.
	op func(r *rng.Rand, key uint64, read bool) error
}

// newProtoServer builds a server (good fixed geometry unless tuned — the
// sweep measures the wire and the gate, not the lock table) and exposes
// the requested surface.
func newProtoServer(sc Scale, cfg kvserver.Config, surface string, workers int) (*protoServerScaffold, error) {
	cfg.SpaceWords = sc.SpaceWords
	cfg.Snapshots = true
	if cfg.Geometry == (core.Params{}) {
		cfg.Geometry = defaultGeometry
	}
	srv, err := kvserver.New(cfg)
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, err
	}
	sf := &protoServerScaffold{srv: srv}
	switch surface {
	case "http":
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(l)
		base := "http://" + l.Addr().String()
		client := &http.Client{Transport: &http.Transport{
			MaxIdleConns: 2 * workers, MaxIdleConnsPerHost: 2 * workers,
		}}
		sf.op = func(r *rng.Rand, key uint64, read bool) error {
			if read {
				return httpGet(client, base, key)
			}
			return httpAdd(client, base, key)
		}
		sf.close = func() {
			hs.Close()
			client.CloseIdleConnections()
			srv.Close()
		}
	case "binary":
		go srv.ServeProto(l)
		c := kvclient.New(l.Addr().String(), kvclient.Options{MaxInflight: 4 * workers})
		sf.op = func(r *rng.Rand, key uint64, read bool) error {
			if read {
				_, _, err := c.Get(key)
				return err
			}
			_, err := c.Add(key, 1)
			return err
		}
		sf.close = func() {
			c.Close()
			l.Close()
			srv.Close()
		}
	default:
		l.Close()
		srv.Close()
		return nil, fmt.Errorf("experiments: unknown surface %q", surface)
	}
	return sf, nil
}

func httpGet(c *http.Client, base string, key uint64) error {
	resp, err := c.Get(fmt.Sprintf("%s/kv/%d", base, key))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var sink [512]byte
	for {
		if _, err := resp.Body.Read(sink[:]); err != nil {
			break
		}
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("GET status %d", resp.StatusCode)
	}
	return nil
}

func httpAdd(c *http.Client, base string, key uint64) error {
	resp, err := c.Post(fmt.Sprintf("%s/kv/%d/add", base, key),
		"application/json", bytes.NewReader([]byte(`{"delta":1}`)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var sink [512]byte
	for {
		if _, err := resp.Body.Read(sink[:]); err != nil {
			break
		}
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("ADD status %d", resp.StatusCode)
	}
	return nil
}

// runProtoPoint preloads the keyspace over the wire, then runs the
// closed loop and collects server-side deltas.
func runProtoPoint(sc Scale, cfg ProtoConfig, surface string, readPct int, theta float64, scfg kvserver.Config) (ProtoPoint, error) {
	sf, err := newProtoServer(sc, scfg, surface, cfg.Workers)
	if err != nil {
		return ProtoPoint{}, err
	}
	defer sf.close()

	// Preload through the surface under test so cache and connection
	// state are warm before the window opens.
	pre := rng.New(cfg.Seed)
	for k := uint64(0); k < cfg.Keys; k++ {
		if err := sf.op(pre, k, false); err != nil {
			return ProtoPoint{}, fmt.Errorf("experiments: proto preload key %d over %s: %w", k, surface, err)
		}
	}

	zipf := rng.NewZipf(cfg.Keys, theta)
	before := sf.srv.TM().Stats()
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	results := make([]struct{ ops, errs uint64 }, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.NewThread(cfg.Seed, w)
			for time.Now().Before(deadline) {
				key := zipf.Next(r)
				if err := sf.op(r, key, r.Intn(100) < readPct); err != nil {
					results[w].errs++
				}
				results[w].ops++
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	delta := sf.srv.TM().Stats().Sub(before)

	p := ProtoPoint{
		Surface: surface, ReadPct: readPct, Elapsed: elapsed,
		Commits: delta.Commits, Aborts: delta.Aborts,
	}
	for _, r := range results {
		p.Ops += r.ops
		p.Errors += r.errs
	}
	if secs := elapsed.Seconds(); secs > 0 {
		p.OpsPerSec = float64(p.Ops) / secs
		p.Goodput = float64(p.Ops-p.Errors) / secs
	}
	if total := delta.Commits + delta.Aborts; total > 0 {
		p.AbortRatio = float64(delta.Aborts) / float64(total)
	}
	if rt := sf.srv.Runtime(); rt != nil {
		p.AdmWidth = rt.AdmissionWidth()
		p.AdmMoves = rt.AdmissionMoves()
	}
	return p, nil
}

// ProtoSweep measures (1) the two wire surfaces at equal concurrency
// across read mixes and (2) the hot-key write storm with the admission
// gate off vs. on (tuned). Panics on scaffold failures, like the other
// sweeps: a point that cannot even start is a harness bug, not a result.
func ProtoSweep(sc Scale, cfg ProtoConfig) ProtoSweepResult {
	var r ProtoSweepResult
	for _, readPct := range cfg.ReadPcts {
		for _, surface := range []string{"http", "binary"} {
			pt, err := runProtoPoint(sc, cfg, surface, readPct, cfg.Theta, kvserver.Config{})
			if err != nil {
				panic(err)
			}
			r.Surface = append(r.Surface, pt)
		}
	}

	// Storm arms: identical workload, binary surface; the only difference
	// is the gate. The admission-on arm pins the geometry bounds so the
	// runtime's only live dimension is the gate width.
	off, err := runProtoPoint(sc, cfg, "binary", cfg.StormReadPct, cfg.StormTheta, kvserver.Config{})
	if err != nil {
		panic(err)
	}
	off.Gate = "off"
	r.Storm = append(r.Storm, off)

	pinned := tuning.Bounds{
		MinLocks: defaultGeometry.Locks, MaxLocks: defaultGeometry.Locks,
		MinShifts: defaultGeometry.Shifts, MaxShifts: defaultGeometry.Shifts,
		MinHier: defaultGeometry.Hier, MaxHier: defaultGeometry.Hier,
	}
	onCfg := kvserver.Config{
		Autotune:       true,
		AdmissionWidth: cfg.AdmissionWidth,
		TuneAdmission:  true,
		Period:         cfg.Period,
		Samples:        1,
		Bounds:         pinned,
		Geometry:       defaultGeometry,
		Seed:           cfg.Seed,
	}
	on, err := runProtoPoint(sc, cfg, "binary", cfg.StormReadPct, cfg.StormTheta, onCfg)
	if err != nil {
		panic(err)
	}
	on.Gate = "on"
	r.Storm = append(r.Storm, on)
	return r
}
