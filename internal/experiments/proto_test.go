package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestProtoSweepQuick runs the full sweep shape at toy scale: both wire
// surfaces answer, the storm arms differ only in the gate, and the
// tables carry the admission columns.
func TestProtoSweepQuick(t *testing.T) {
	sc := tinyScale()
	cfg := ProtoConfig{
		Keys:           64,
		Theta:          0.6,
		ReadPcts:       []int{50},
		Workers:        4,
		Duration:       40 * time.Millisecond,
		StormTheta:     0.99,
		StormReadPct:   10,
		AdmissionWidth: 4,
		Period:         5 * time.Millisecond,
		Seed:           42,
	}
	r := ProtoSweep(sc, cfg)
	if len(r.Surface) != 2 {
		t.Fatalf("surface points = %d, want 2", len(r.Surface))
	}
	for _, p := range r.Surface {
		if p.Ops == 0 {
			t.Fatalf("surface %q completed no ops", p.Surface)
		}
		if p.Errors != 0 {
			t.Fatalf("surface %q saw %d errors on a clean run", p.Surface, p.Errors)
		}
	}
	if r.Surface[0].Surface != "http" || r.Surface[1].Surface != "binary" {
		t.Fatalf("surface order %q, %q", r.Surface[0].Surface, r.Surface[1].Surface)
	}
	if len(r.Storm) != 2 {
		t.Fatalf("storm points = %d, want 2", len(r.Storm))
	}
	off, on := r.Storm[0], r.Storm[1]
	if off.Gate != "off" || on.Gate != "on" {
		t.Fatalf("storm gates %q, %q", off.Gate, on.Gate)
	}
	if off.AdmWidth != 0 {
		t.Fatalf("ungated storm arm reports width %d", off.AdmWidth)
	}
	if on.AdmWidth < 1 {
		t.Fatalf("gated storm arm reports width %d, want >= 1", on.AdmWidth)
	}
	if on.Ops == 0 || off.Ops == 0 {
		t.Fatal("storm arm completed no ops")
	}

	var sb strings.Builder
	st := r.SurfaceTable()
	st.Render(&sb)
	gt := r.StormTable()
	gt.Render(&sb)
	out := sb.String()
	for _, want := range []string{"binary", "http", "admission", "adm width"} {
		if !strings.Contains(out, want) {
			t.Errorf("tables missing %q", want)
		}
	}
}
