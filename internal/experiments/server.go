package experiments

import (
	"fmt"
	"time"

	"tinystm/internal/admission"
	"tinystm/internal/core"
	"tinystm/internal/harness"
	"tinystm/internal/kvstore"
	"tinystm/internal/mem"
	"tinystm/internal/obs"
	"tinystm/internal/tuning"
)

// ServerConfig parameterizes the ServerSweep experiment: open-loop,
// Zipf-skewed key-value service traffic — the load shape cmd/stmkvd sees —
// against an autotuned TM and against static baselines. Unlike the
// closed-loop AutotuneSweep, the offered load here is fixed by the arrival
// schedule, so a bad configuration surfaces as shed arrivals and queueing
// latency, not just lower throughput.
type ServerConfig struct {
	// Shards and Buckets shape the store.
	Shards, Buckets uint64
	// Keys is the preloaded keyspace.
	Keys uint64
	// Mixes are the traffic phases; the run starts in Mixes[0] and flips
	// to the next mix (cyclically) every Duration/len(Mixes), so every
	// phase gets equal time. One mix disables shifting.
	Mixes []kvstore.Mix
	// Rate is the open-loop arrival rate (requests/second); Workers the
	// service concurrency.
	Rate    float64
	Workers int
	// Duration is the length of each measured run.
	Duration time.Duration
	// Period and Samples drive the attached tuning runtime.
	Period  time.Duration
	Samples int
	// Start is the initial geometry for the autotuned run; Statics are
	// the fixed baselines.
	Start   core.Params
	Statics []core.Params
	Bounds  tuning.Bounds
	Seed    uint64
	// AdmissionWidth, when positive, puts an admission gate of that
	// initial width in front of every update transaction (reads are never
	// gated). Zero runs ungated.
	AdmissionWidth int
	// TuneAdmission attaches the gate to the autotuned run's tuning
	// runtime, which walks the width from the live abort ratio. Requires
	// AdmissionWidth > 0; static baselines keep the fixed width.
	TuneAdmission bool
}

// DefaultServerConfig is a calm-to-hot phase flip over a modest keyspace,
// starting the tuner at the deliberately bad (2^8, 0, 1).
func DefaultServerConfig(sc Scale) ServerConfig {
	calm := kvstore.Mix{Keys: 4096, Theta: 0.6, ReadPct: 85, CASPct: 5, BatchPct: 5}
	hot := kvstore.Mix{Keys: 4096, Theta: 0.99, ReadPct: 20, CASPct: 20, BatchPct: 10}
	return ServerConfig{
		Shards: 8, Buckets: 64, Keys: 4096,
		Mixes:    []kvstore.Mix{calm, hot},
		Rate:     20000,
		Workers:  sc.Threads[len(sc.Threads)-1],
		Duration: 10 * sc.Duration,
		Period:   sc.Duration,
		Samples:  1,
		Start:    core.Params{Locks: 1 << 8, Shifts: 0, Hier: 1},
		Statics: []core.Params{
			{Locks: 1 << 8, Shifts: 0, Hier: 1},
			{Locks: 1 << 16, Shifts: 0, Hier: 1},
			defaultGeometry,
		},
		Bounds: tuning.DefaultBounds(),
		Seed:   sc.Seed,
	}
}

// ServerPoint is one measured service run.
type ServerPoint struct {
	// Name is "autotuned" or "static"; Params the geometry (for the
	// autotuned run, the final one).
	Name   string
	Params core.Params
	Load   harness.OpenLoopResult
	// Commits/Aborts are the TM counter deltas over the run; Reconfigs
	// how many live reconfigurations happened during it.
	Commits, Aborts, Reconfigs uint64
	// AdmWidth is the gate's final width (0 when the run was ungated);
	// AdmMoves counts width changes the tuner applied during the run.
	AdmWidth, AdmMoves int
}

// ServerSweepResult is the outcome of one ServerSweep.
type ServerSweepResult struct {
	Autotuned ServerPoint
	Statics   []ServerPoint
	// Events is the autotuned run's tuning trace.
	Events []tuning.Event
}

// ToTable renders the autotuned-vs-static service comparison. The full
// arrival-to-completion latency distribution OpenLoop measures is
// surfaced — p50/p95/p99 — not just throughput: a configuration (or a
// tuner move) that buys commits with queueing delay shows up here first,
// which is the raw signal for the ROADMAP's latency-aware tuning.
func (r ServerSweepResult) ToTable() harness.Table {
	tbl := harness.Table{
		Title: "service load: autotuned vs. static configurations",
		Headers: []string{"configuration", "locks", "shifts", "h",
			"completed (10^3)", "req/s (10^3)", "p50", "p95", "p99", "dropped", "aborts", "reconfigs", "adm", "adm moves"},
	}
	row := func(p ServerPoint) {
		adm := "-"
		if p.AdmWidth > 0 {
			adm = fmt.Sprintf("%d", p.AdmWidth)
		}
		tbl.AddRow(p.Name, fmt.Sprintf("2^%d", log2(p.Params.Locks)), p.Params.Shifts, p.Params.Hier,
			fmt.Sprintf("%.1f", float64(p.Load.Completed)/1000),
			fmt.Sprintf("%.1f", p.Load.Throughput/1000),
			p.Load.P50.Round(10*time.Microsecond).String(),
			p.Load.P95.Round(10*time.Microsecond).String(),
			p.Load.P99.Round(10*time.Microsecond).String(),
			p.Load.Dropped, p.Aborts, p.Reconfigs, adm, p.AdmMoves)
	}
	for _, p := range r.Statics {
		row(p)
	}
	row(r.Autotuned)
	return tbl
}

// runServerPoint measures one configuration under the open-loop schedule.
// The phase flipper swaps the live mix at equal intervals.
func runServerPoint(sc Scale, cfg ServerConfig, geo core.Params, autotune bool) (ServerPoint, []tuning.Event) {
	tm := core.MustNew(core.Config{
		Space:  mem.NewSpace(sc.SpaceWords),
		Locks:  geo.Locks,
		Shifts: geo.Shifts,
		Hier:   geo.Hier,
		Clock:  sc.Clock,
	})
	m := kvstore.New[*core.Tx](tm, cfg.Shards, cfg.Buckets)
	kvstore.Preload[*core.Tx](tm, m, cfg.Keys, 1)

	// The gate fronts update transactions exactly as kvserver's handlers
	// do; kvstore.Admitter keeps the interface indirection in one place.
	var gate *admission.Gate
	var adm kvstore.Admitter
	if cfg.AdmissionWidth > 0 {
		gate = admission.New(cfg.AdmissionWidth)
		adm = gate
	}
	ops := make([]harness.OpFunc[*core.Tx], len(cfg.Mixes))
	for i, mix := range cfg.Mixes {
		ops[i] = kvstore.MixOpGated[*core.Tx](tm, m, mix, adm)
	}
	phased := harness.NewPhasedOp(ops...)
	var flipper *time.Ticker
	stopFlip := make(chan struct{})
	if len(cfg.Mixes) > 1 {
		flipper = time.NewTicker(cfg.Duration / time.Duration(len(cfg.Mixes)))
		go func() {
			for {
				select {
				case <-stopFlip:
					return
				case <-flipper.C:
					phased.SetPhase((phased.Phase() + 1) % phased.Phases())
				}
			}
		}()
	}

	// One histogram serves both readers: OpenLoop summarizes the run from
	// it, and the autotuned run's tuning events carry its per-period
	// p50/p99 deltas — the same numbers, not two measurements.
	lat := obs.NewHistogram()
	var rt *tuning.Runtime
	if autotune {
		admCfg := tuning.AdmissionConfig{Enable: cfg.TuneAdmission && gate != nil}
		if admCfg.Enable {
			admCfg.Gate = gate
		}
		rt = tuning.NewRuntime(tm, tuning.RuntimeConfig{
			Tuner:     tuning.Config{Initial: geo, Bounds: cfg.Bounds, Seed: cfg.Seed},
			Period:    cfg.Period,
			Samples:   cfg.Samples,
			Admission: admCfg,
			Latency:   lat,
		})
		if err := rt.Start(); err != nil {
			panic(fmt.Sprintf("experiments: server sweep autotune start: %v", err))
		}
	}

	before := tm.Stats()
	load := harness.OpenLoop{
		Rate: cfg.Rate, Duration: cfg.Duration, Workers: cfg.Workers, Seed: cfg.Seed,
		Latency: lat,
		NewOp:   harness.TxOp[*core.Tx](tm, phased.Op()),
	}.Run()
	var events []tuning.Event
	if rt != nil {
		rt.Stop()
		events = rt.Trace()
	}
	if flipper != nil {
		flipper.Stop()
		close(stopFlip)
	}
	delta := tm.Stats().Sub(before)

	name := "static"
	params := geo
	if autotune {
		name = "autotuned"
		params = tm.Params()
	}
	pt := ServerPoint{
		Name: name, Params: params, Load: load,
		Commits: delta.Commits, Aborts: delta.Aborts, Reconfigs: delta.Reconfigs,
	}
	if gate != nil {
		pt.AdmWidth = gate.Width()
	}
	if rt != nil {
		pt.AdmMoves = rt.AdmissionMoves()
	}
	return pt, events
}

// ServerSweep measures the autotuned configuration and every static
// baseline under identical open-loop service traffic.
func ServerSweep(sc Scale, cfg ServerConfig) ServerSweepResult {
	if len(cfg.Mixes) == 0 {
		panic("experiments: ServerConfig needs at least one mix")
	}
	var r ServerSweepResult
	r.Autotuned, r.Events = runServerPoint(sc, cfg, cfg.Start, true)
	for _, p := range cfg.Statics {
		pt, _ := runServerPoint(sc, cfg, p, false)
		r.Statics = append(r.Statics, pt)
	}
	return r
}
