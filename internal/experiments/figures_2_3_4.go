package experiments

import (
	"fmt"

	"tinystm/internal/harness"
)

// ThreadSeries is a throughput-vs-threads experiment result: one row per
// thread count, one column per system (the layout of Figures 2, 3 and 4).
type ThreadSeries struct {
	Title   string
	Systems []Sys
	Threads []int
	// Values[t][s] is the metric for Threads[t] under Systems[s].
	Values [][]float64
}

// ToTable renders the series in the paper's layout, values in the paper's
// unit of 10^3 transactions per second.
func (r ThreadSeries) ToTable(metric string) harness.Table {
	tbl := harness.Table{Title: r.Title, Headers: []string{"threads"}}
	for _, s := range r.Systems {
		tbl.Headers = append(tbl.Headers, fmt.Sprintf("%v %s (10^3/s)", s, metric))
	}
	for i, th := range r.Threads {
		row := []any{th}
		for j := range r.Systems {
			row = append(row, fmt.Sprintf("%.1f", r.Values[i][j]/1000))
		}
		tbl.AddRow(row...)
	}
	return tbl
}

// runThreadSeries measures an intset workload across thread counts and
// systems, extracting the metric via sel.
func runThreadSeries(sc Scale, title string, ip harness.IntsetParams, sel func(Point) float64) ThreadSeries {
	r := ThreadSeries{Title: title, Systems: AllSystems, Threads: sc.Threads}
	for _, th := range sc.Threads {
		row := make([]float64, len(r.Systems))
		for j, sys := range r.Systems {
			row[j] = sel(RunIntsetPoint(sc, sys, defaultGeometry, ip, th))
		}
		r.Values = append(r.Values, row)
	}
	return r
}

// Figure2 reproduces "Throughput of the red-black tree": one panel per
// (size, update-rate) pair; the paper shows (256, 20%), (4096, 20%) and
// (4096, 60%).
func Figure2(sc Scale, size, updatePct int) ThreadSeries {
	return runThreadSeries(sc,
		fmt.Sprintf("Figure 2: red-black tree, %d elements, %d%% updates", size, updatePct),
		harness.IntsetParams{Kind: harness.KindRBTree, InitialSize: size, UpdatePct: updatePct},
		func(p Point) float64 { return p.Throughput })
}

// Figure3 reproduces "Throughput of the linked list": the paper shows
// (256, 0%), (256, 20%) and (4096, 20%).
func Figure3(sc Scale, size, updatePct int) ThreadSeries {
	return runThreadSeries(sc,
		fmt.Sprintf("Figure 3: linked list, %d elements, %d%% updates", size, updatePct),
		harness.IntsetParams{Kind: harness.KindList, InitialSize: size, UpdatePct: updatePct},
		func(p Point) float64 { return p.Throughput })
}

// Figure4Aborts reproduces the abort-rate panels of Figure 4: red-black
// tree 4096/20% (left) and linked list 256/20% (center).
func Figure4Aborts(sc Scale, kind harness.Kind, size, updatePct int) ThreadSeries {
	return runThreadSeries(sc,
		fmt.Sprintf("Figure 4: aborts, %v, %d elements, %d%% updates", kind, size, updatePct),
		harness.IntsetParams{Kind: kind, InitialSize: size, UpdatePct: updatePct},
		func(p Point) float64 { return p.AbortRate })
}

// Figure4Overwrite reproduces the right panel of Figure 4: the modified
// linked list where update transactions overwrite every entry up to a
// random value ("linked list, 256 elements, 5% overwrites").
func Figure4Overwrite(sc Scale, size, overwritePct int) ThreadSeries {
	return runThreadSeries(sc,
		fmt.Sprintf("Figure 4 (right): linked list, %d elements, %d%% overwrites", size, overwritePct),
		harness.IntsetParams{Kind: harness.KindList, InitialSize: size, OverwritePct: overwritePct},
		func(p Point) float64 { return p.Throughput })
}

// SizeUpdateSurface is the Figure 5 result: throughput at the maximum
// thread count over (structure size × update rate).
type SizeUpdateSurface struct {
	Title   string
	Systems []Sys
	Sizes   []int
	Updates []int
	// Values[i][j][s]: size i, update rate j, system s.
	Values [][][]float64
}

// ToTable flattens the surface into rows (size, update, one column per
// system).
func (r SizeUpdateSurface) ToTable() harness.Table {
	tbl := harness.Table{Title: r.Title, Headers: []string{"size", "update%"}}
	for _, s := range r.Systems {
		tbl.Headers = append(tbl.Headers, fmt.Sprintf("%v (10^3/s)", s))
	}
	for i, size := range r.Sizes {
		for j, u := range r.Updates {
			row := []any{size, u}
			for s := range r.Systems {
				row = append(row, fmt.Sprintf("%.1f", r.Values[i][j][s]/1000))
			}
			tbl.AddRow(row...)
		}
	}
	return tbl
}

// Figure5 reproduces "Influence of the size of the data structures and
// update rates on throughput" (8 threads in the paper; here the maximum
// of sc.Threads).
func Figure5(sc Scale, kind harness.Kind, sizes, updates []int) SizeUpdateSurface {
	threads := sc.Threads[len(sc.Threads)-1]
	r := SizeUpdateSurface{
		Title: fmt.Sprintf("Figure 5: %v, %d threads, throughput vs size x update rate",
			kind, threads),
		Systems: AllSystems, Sizes: sizes, Updates: updates,
	}
	for _, size := range sizes {
		var perSize [][]float64
		for _, u := range updates {
			row := make([]float64, len(r.Systems))
			for s, sys := range r.Systems {
				ip := harness.IntsetParams{Kind: kind, InitialSize: size, UpdatePct: u}
				row[s] = RunIntsetPoint(sc, sys, defaultGeometry, ip, threads).Throughput
			}
			perSize = append(perSize, row)
		}
		r.Values = append(r.Values, perSize)
	}
	return r
}
