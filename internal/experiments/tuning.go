package experiments

import (
	"fmt"
	"time"

	"tinystm/internal/core"
	"tinystm/internal/harness"
	"tinystm/internal/tuning"
)

// TuneConfig parameterizes a dynamic-tuning run (Figures 10, 11, 12).
type TuneConfig struct {
	Kind      harness.Kind
	Size      int
	UpdatePct int
	Threads   int
	// Periods is the number of tuning configurations to evaluate.
	Periods int
	// Period is one measurement interval; the paper uses ~1 second and
	// takes the maximum of SamplesPerConfig=3 intervals per
	// configuration.
	Period           time.Duration
	SamplesPerConfig int
	// Start is the initial configuration; the evaluation starts at
	// (2^8, 0, 1) ("for testing purposes ... a small number of locks").
	Start  core.Params
	Bounds tuning.Bounds
	Seed   uint64
}

// DefaultTuneConfig mirrors Section 4.3's setup at the given scale.
func DefaultTuneConfig(sc Scale, kind harness.Kind) TuneConfig {
	return TuneConfig{
		Kind: kind, Size: 4096, UpdatePct: 20,
		Threads: sc.Threads[len(sc.Threads)-1],
		Periods: 40, Period: sc.Duration, SamplesPerConfig: 3,
		Start:  core.Params{Locks: 1 << 8, Shifts: 0, Hier: 1},
		Bounds: tuning.DefaultBounds(),
		Seed:   sc.Seed,
	}
}

// ValidationSample records, for one tuning configuration, the rate of
// read-set locks individually validated versus skipped via the
// hierarchical fast path (the two series of Figure 12).
type ValidationSample struct {
	Config          core.Params
	Throughput      float64
	ProcessedPerSec float64
	SkippedPerSec   float64
}

// TuneResult is the outcome of a tuning run.
type TuneResult struct {
	Trace      []tuning.TraceEntry
	Validation []ValidationSample
	Final      core.Params
	Best       core.Params
	BestTp     float64
}

// TraceTable renders the Figure 10/11 data: the configuration path and the
// throughput measured at each step, with the paper's move notation.
func (r TuneResult) TraceTable(title string) harness.Table {
	tbl := harness.Table{Title: title,
		Headers: []string{"cfg#", "locks", "shifts", "h", "throughput (10^3/s)", "move"}}
	for _, e := range r.Trace {
		move := e.Move.String()
		if e.Reversed {
			move = "-" + move // the paper's "-x": reverse then move x
		}
		tbl.AddRow(e.Index, fmt.Sprintf("2^%d", log2(e.Params.Locks)), e.Params.Shifts,
			e.Params.Hier, fmt.Sprintf("%.1f", e.Throughput/1000), move)
	}
	return tbl
}

// ValidationTable renders the Figure 12 data.
func (r TuneResult) ValidationTable() harness.Table {
	tbl := harness.Table{
		Title: "Figure 12: locks processed or skipped during validation (10^6/s)",
		Headers: []string{"cfg#", "locks", "shifts", "h",
			"processed (10^6/s)", "skipped (10^6/s)"},
	}
	for i, v := range r.Validation {
		tbl.AddRow(i, fmt.Sprintf("2^%d", log2(v.Config.Locks)), v.Config.Shifts,
			v.Config.Hier,
			fmt.Sprintf("%.2f", v.ProcessedPerSec/1e6),
			fmt.Sprintf("%.2f", v.SkippedPerSec/1e6))
	}
	return tbl
}

func log2(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// RunTuning executes the auto-tuning experiment: workers run the intset
// workload continuously while the tuner reconfigures the TM between
// measurement periods (Figures 10 and 11; the validation counters feed
// Figure 12).
func RunTuning(sc Scale, tc TuneConfig) TuneResult {
	tm := newCoreTM(sc, core.WriteBack, tc.Start)
	ip := harness.IntsetParams{Kind: tc.Kind, InitialSize: tc.Size, UpdatePct: tc.UpdatePct}
	set := harness.BuildIntset[*core.Tx](tm, ip, tc.Seed)
	op := harness.IntsetOp[*core.Tx](tm, set, ip)

	workers := harness.StartWorkers[*core.Tx](tm, tc.Threads, tc.Seed, op)
	defer workers.Stop()

	tuner := tuning.New(tuning.Config{
		Initial: tc.Start, Bounds: tc.Bounds, Seed: tc.Seed,
	})
	meter := harness.NewMeter(tm.Stats)

	var result TuneResult
	samples := tc.SamplesPerConfig
	if samples <= 0 {
		samples = 3
	}
	for i := 0; i < tc.Periods; i++ {
		cur := tuner.Current()
		// "The throughput is measured three times in every configuration
		// and the maximum of the three measurements is used" (§4.3).
		maxTp := 0.0
		var processed, skipped, elapsed float64
		for s := 0; s < samples; s++ {
			t0 := time.Now()
			time.Sleep(tc.Period)
			secs := time.Since(t0).Seconds()
			tp, delta := meter.Sample()
			if tp > maxTp {
				maxTp = tp
			}
			processed += float64(delta.LocksValidated)
			skipped += float64(delta.LocksSkipped)
			elapsed += secs
		}
		result.Validation = append(result.Validation, ValidationSample{
			Config: cur, Throughput: maxTp,
			ProcessedPerSec: processed / elapsed,
			SkippedPerSec:   skipped / elapsed,
		})
		next, _ := tuner.Step(maxTp)
		if next != cur {
			if err := tm.Reconfigure(next); err != nil {
				panic(fmt.Sprintf("experiments: reconfigure %v: %v", next, err))
			}
		}
	}
	result.Trace = tuner.Trace()
	result.Final = tuner.Current()
	result.Best, result.BestTp = tuner.Best()
	return result
}

// Figure10 runs the red-black tree auto-tuning experiment of Section 4.3.
func Figure10(sc Scale) TuneResult {
	return RunTuning(sc, DefaultTuneConfig(sc, harness.KindRBTree))
}

// Figure11 runs the linked-list auto-tuning experiment.
func Figure11(sc Scale) TuneResult {
	return RunTuning(sc, DefaultTuneConfig(sc, harness.KindList))
}

// Figure12 reuses the linked-list tuning run; its Validation samples are
// the figure's two series.
func Figure12(sc Scale) TuneResult {
	return Figure11(sc)
}
