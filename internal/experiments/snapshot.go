package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tinystm/internal/core"
	"tinystm/internal/harness"
	"tinystm/internal/kvstore"
	"tinystm/internal/mem"
	"tinystm/internal/rng"
	"tinystm/internal/txn"
)

// SnapshotConfig parameterizes the SnapshotSweep experiment: read-only
// full-table scan throughput against concurrent writers, with the MVCC
// sidecar off (classic read-only transactions, the paper's design) and on
// at each configured version budget. This is the workload the sidecar
// exists for — the long-read pathology the ROADMAP names — measured
// end to end on the kvstore.
type SnapshotConfig struct {
	// Shards and Buckets shape the store; Keys is the preloaded table
	// size (every scan walks all of them).
	Shards, Buckets, Keys uint64
	// Writers are the concurrent-update thread counts swept.
	Writers []int
	// Scanners is how many read-only scan threads run against them.
	Scanners int
	// Budgets are the per-shard version budgets measured with snapshots
	// on (each is one series next to the snapshots-off baseline).
	Budgets []int
	// Theta is the writers' Zipf skew over the keyspace.
	Theta float64
	// Duration is the measured window per point.
	Duration time.Duration
}

// DefaultSnapshotConfig scales the sweep to sc. The default table is
// large enough that one full scan spans several scheduler slices — the
// "long read-only transaction" regime the sidecar exists for: without it,
// every writer slice lands commits ahead of the scan position and the
// classic read-only scan restarts essentially forever.
func DefaultSnapshotConfig(sc Scale) SnapshotConfig {
	writers := make([]int, len(sc.Threads))
	copy(writers, sc.Threads)
	keys := uint64(400_000)
	if sc.Duration < 500*time.Millisecond {
		// Quick/CI scale: a table the measurement window can cover.
		keys = 20_000
	}
	return SnapshotConfig{
		Shards: 8, Buckets: 64, Keys: keys,
		Writers:  writers,
		Scanners: 2,
		Budgets:  []int{1024, 8192},
		Theta:    0.0,
		Duration: sc.Duration,
	}
}

// SnapshotPoint is one measured (mode, writer-count) cell.
type SnapshotPoint struct {
	// Mode is "off" or "on/<budget>".
	Mode    string
	Budget  int // zero for off
	Writers int
	// Scans counts completed full-table scans; ScanRate is scans/second
	// and KeyRate keys-read/second across all scanners.
	Scans    uint64
	ScanRate float64
	KeyRate  float64
	// ScanAborts sums the scanner descriptors' aborts, split into the
	// snapshot-too-old retries (the only kind snapshot mode may produce)
	// and everything else (the validation/extension aborts that starve a
	// classic read-only scan).
	ScanAborts   uint64
	ScanTooOld   uint64
	ScanROAborts uint64
	// WriterRate is the writers' committed transactions/second, showing
	// what version publication costs them.
	WriterRate float64
	// Published/Trimmed are the sidecar totals over the window.
	Published, Trimmed uint64
}

// SnapshotSweepResult is the outcome of one SnapshotSweep.
type SnapshotSweepResult struct {
	Points []SnapshotPoint
}

// ToTable renders the scan-throughput comparison.
func (r SnapshotSweepResult) ToTable() harness.Table {
	tbl := harness.Table{
		Title: "read-only full-table scans under write pressure: snapshots off vs. on",
		Headers: []string{"mode", "writers", "scans/s", "keys/s (10^3)",
			"scan aborts (RO)", "too-old retries", "writer txs/s (10^3)", "published", "trimmed"},
	}
	for _, p := range r.Points {
		tbl.AddRow(p.Mode, p.Writers,
			fmt.Sprintf("%.1f", p.ScanRate),
			fmt.Sprintf("%.1f", p.KeyRate/1000),
			p.ScanROAborts, p.ScanTooOld,
			fmt.Sprintf("%.1f", p.WriterRate/1000),
			p.Published, p.Trimmed)
	}
	return tbl
}

// runSnapshotPoint measures one cell: writers hammer Zipf-drawn keys
// while scanners run back-to-back full-table scans.
func runSnapshotPoint(sc Scale, cfg SnapshotConfig, writers int, snapshots bool, budget int) SnapshotPoint {
	tm := core.MustNew(core.Config{
		Space:          mem.NewSpace(sc.SpaceWords),
		Clock:          sc.Clock,
		CM:             sc.CM,
		YieldEvery:     sc.YieldEvery,
		Snapshots:      snapshots,
		SnapshotBudget: budget,
	})
	m := kvstore.New[*core.Tx](tm, cfg.Shards, cfg.Buckets)
	kvstore.Preload[*core.Tx](tm, m, cfg.Keys, 1)
	zipf := rng.NewZipf(cfg.Keys, cfg.Theta)

	//stm:allow-atomic experiment control plane: stop flag, not data under test
	var stop atomic.Bool
	var wg sync.WaitGroup
	//stm:allow-atomic per-worker commit tally aggregated outside any transaction
	var writerCommits atomic.Uint64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := rng.NewThread(sc.Seed, id)
			tx := tm.NewTx()
			defer tx.Release()
			var n uint64
			for !stop.Load() {
				key := zipf.Next(r)
				tm.Atomic(tx, func(tx *core.Tx) {
					v, _ := m.Get(tx, key)
					m.Put(tx, key, v+1)
				})
				n++
			}
			writerCommits.Add(n)
		}(w)
	}

	//stm:allow-atomic measurement counters aggregated outside any transaction
	var scans, keysRead, tooOld, roAborts, allAborts atomic.Uint64
	for s := 0; s < cfg.Scanners; s++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tx := tm.NewTx()
			defer tx.Release()
			var n, keys uint64
			// The scan body checks the stop flag every 1024 keys and
			// bails: without the check, a starving classic read-only scan
			// would retry inside one Atomic call forever and the
			// measurement could never end. Bailed/partial scans are not
			// counted as completed; their keys still count as read work.
			scan := func(tx *core.Tx) {
				keys = 0
				m.Range(tx, func(_, _ uint64) bool {
					keys++
					return keys&1023 != 0 || !stop.Load()
				})
			}
			for !stop.Load() {
				if snapshots {
					tm.AtomicSnap(tx, scan)
				} else {
					tm.AtomicRO(tx, scan)
				}
				keysRead.Add(keys)
				if keys == cfg.Keys {
					n++
				}
			}
			scans.Add(n)
			st := tx.TxStats()
			allAborts.Add(st.Aborts)
			tooOld.Add(st.AbortsByKind[txn.AbortSnapshotTooOld])
			roAborts.Add(st.AbortsByKind[txn.AbortValidate] +
				st.AbortsByKind[txn.AbortExtend] + st.AbortsByKind[txn.AbortReadConflict])
		}(writers + s)
	}

	t0 := time.Now()
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(t0).Seconds()

	mode := "off"
	if snapshots {
		mode = fmt.Sprintf("on/%d", budget)
	}
	_, _, published, trimmed := tm.SnapshotCounts()
	return SnapshotPoint{
		Mode: mode, Budget: budget, Writers: writers,
		Scans:      scans.Load(),
		ScanRate:   float64(scans.Load()) / elapsed,
		KeyRate:    float64(keysRead.Load()) / elapsed,
		ScanAborts: allAborts.Load(), ScanTooOld: tooOld.Load(), ScanROAborts: roAborts.Load(),
		WriterRate: float64(writerCommits.Load()) / elapsed,
		Published:  published, Trimmed: trimmed,
	}
}

// SnapshotSweep measures classic read-only scans and snapshot-mode scans
// at every configured budget across the writer-thread sweep.
func SnapshotSweep(sc Scale, cfg SnapshotConfig) SnapshotSweepResult {
	var r SnapshotSweepResult
	for _, w := range cfg.Writers {
		r.Points = append(r.Points, runSnapshotPoint(sc, cfg, w, false, 0))
		for _, b := range cfg.Budgets {
			r.Points = append(r.Points, runSnapshotPoint(sc, cfg, w, true, b))
		}
	}
	return r
}
