package experiments

import (
	"fmt"
	"time"

	"tinystm/internal/core"
	"tinystm/internal/harness"
	"tinystm/internal/tuning"
)

// AutotuneConfig parameterizes the AutotuneSweep experiment: the online
// tuning runtime (tuning.Runtime) against a live, optionally
// phase-shifting workload, compared with statically configured baselines.
type AutotuneConfig struct {
	// Phases are the workload mixes; the run starts in Phases[0] and the
	// workload flips to the next phase (cyclically) every ShiftEvery
	// periods when ShiftEvery > 0. A single phase disables shifting.
	Phases     []harness.IntsetParams
	ShiftEvery int
	Threads    int
	// Periods is the number of tuning decisions to observe; Period and
	// Samples mirror tuning.RuntimeConfig (max-of-Samples per decision).
	Periods int
	Period  time.Duration
	Samples int
	// Start is the initial configuration; the paper's evaluation starts
	// from a deliberately bad (2^8, 0, 1).
	Start  core.Params
	Bounds tuning.Bounds
	// TuneCM additionally enables the runtime's adaptive contention-
	// management controller (the policy ladder beside the geometry
	// hill-climber).
	TuneCM bool
	// Statics are baseline configurations each measured with a fixed
	// geometry over the Phases[0] workload for the autotuned-vs-static
	// comparison.
	Statics []core.Params
	Seed    uint64
	// OnEvent, when non-nil, observes each tuning period as it completes
	// (live trace printing in cmd/stmbench).
	OnEvent func(tuning.Event)
}

// DefaultAutotuneConfig mirrors Section 4.3's setup — list workload,
// (2^8, 0, 1) start — with a mid-run update-rate phase shift and the
// paper's fixed default geometry among the static baselines.
func DefaultAutotuneConfig(sc Scale, kind harness.Kind) AutotuneConfig {
	calm := harness.IntsetParams{Kind: kind, InitialSize: 4096, UpdatePct: 20}
	hot := calm
	hot.UpdatePct = 80
	hot.Range = 1024 // shrink the working set: conflicts concentrate
	periods := 30
	return AutotuneConfig{
		Phases: []harness.IntsetParams{calm, hot}, ShiftEvery: periods / 2,
		Threads: sc.Threads[len(sc.Threads)-1],
		Periods: periods, Period: sc.Duration, Samples: 3,
		Start:  core.Params{Locks: 1 << 8, Shifts: 0, Hier: 1},
		Bounds: tuning.DefaultBounds(),
		Statics: []core.Params{
			{Locks: 1 << 8, Shifts: 0, Hier: 1},  // the bad start itself
			{Locks: 1 << 16, Shifts: 0, Hier: 1}, // the paper's production default
			defaultGeometry,                      // 2^20, the figures' fixed geometry
		},
		Seed: sc.Seed,
	}
}

// StaticPoint is one statically configured baseline measurement under one
// workload phase.
type StaticPoint struct {
	Params     core.Params
	Phase      int
	Throughput float64
}

// AutotuneResult is the outcome of one AutotuneSweep run.
type AutotuneResult struct {
	// Events is the runtime's per-period trace; EventPhases[i] is the
	// workload phase that was active during Events[i].
	Events      []tuning.Event
	EventPhases []int
	// Best/BestTp are the best configuration the tuner saw and its
	// recorded throughput; Final is where the tuner ended.
	Best   core.Params
	BestTp float64
	Final  core.Params
	// PhaseBest[p] is the best autotuned per-period throughput observed
	// while phase p was active (zero if the run never visited the phase).
	PhaseBest []float64
	// Statics holds every (configuration × phase) baseline measurement;
	// BestStatic[p] is the best static point for phase p. Comparing
	// within a phase keeps autotuned-vs-static apples-to-apples: phases
	// differ in offered work per operation, so cross-phase throughput
	// comparison would credit the tuner with workload artifacts.
	Statics    []StaticPoint
	BestStatic []StaticPoint
}

// TraceTable renders the per-period path (configuration, throughput, move)
// like the Figure 10/11 tables, with idle periods marked.
func (r AutotuneResult) TraceTable(title string) harness.Table {
	tbl := harness.Table{Title: title,
		Headers: []string{"period", "phase", "locks", "shifts", "h", "throughput (10^3/s)", "move"}}
	for i, e := range r.Events {
		move := "idle"
		if !e.Idle {
			move = e.Move.String()
			if e.Reversed {
				move = "-" + move
			}
		}
		phase := 0
		if i < len(r.EventPhases) {
			phase = r.EventPhases[i]
		}
		tbl.AddRow(e.Period, phase, fmt.Sprintf("2^%d", log2(e.Params.Locks)), e.Params.Shifts,
			e.Params.Hier, fmt.Sprintf("%.1f", e.Throughput/1000), move)
	}
	return tbl
}

// ComparisonTable renders autotuned-vs-static throughput, phase by phase
// (throughput is only comparable within one workload phase).
func (r AutotuneResult) ComparisonTable() harness.Table {
	tbl := harness.Table{
		Title:   "autotuned vs. static configurations (per workload phase)",
		Headers: []string{"phase", "configuration", "locks", "shifts", "h", "throughput (10^3/s)"},
	}
	for phase := range r.PhaseBest {
		for _, s := range r.Statics {
			if s.Phase != phase {
				continue
			}
			tbl.AddRow(phase, "static", fmt.Sprintf("2^%d", log2(s.Params.Locks)),
				s.Params.Shifts, s.Params.Hier, fmt.Sprintf("%.1f", s.Throughput/1000))
		}
		tbl.AddRow(phase, "autotuned (best in phase)", "", "", "",
			fmt.Sprintf("%.1f", r.PhaseBest[phase]/1000))
	}
	return tbl
}

// AutotuneSweep runs the online tuning runtime against a live workload —
// no manual driving: the controller goroutine meters, decides and
// reconfigures on its own — then measures each static baseline on a fresh
// system for comparison. With ShiftEvery > 0 the workload phase flips
// mid-run, exercising re-adaptation.
func AutotuneSweep(sc Scale, ac AutotuneConfig) AutotuneResult {
	if len(ac.Phases) == 0 {
		panic("experiments: AutotuneConfig needs at least one phase")
	}
	tm := newCoreTM(sc, core.WriteBack, ac.Start)
	base := ac.Phases[0]
	set := harness.BuildIntset[*core.Tx](tm, base, ac.Seed)
	phased := harness.IntsetPhases[*core.Tx](tm, set, ac.Phases...)
	workers := harness.StartWorkers[*core.Tx](tm, ac.Threads, ac.Seed, phased.Op())
	defer workers.Stop()

	// Normalize the sample count here so the static-baseline windows below
	// match what the runtime actually does (its own default is 3).
	samples := ac.Samples
	if samples <= 0 {
		samples = 3
	}
	trace := make(chan tuning.Event, ac.Periods+8)
	rt := tuning.NewRuntime(tm, tuning.RuntimeConfig{
		Tuner:  tuning.Config{Initial: ac.Start, Bounds: ac.Bounds, Seed: ac.Seed},
		Period: ac.Period, Samples: samples, Trace: trace,
		CM: tuning.CMConfig{Enable: ac.TuneCM},
	})
	if err := rt.Start(); err != nil {
		panic(fmt.Sprintf("experiments: autotune start: %v", err))
	}

	var result AutotuneResult
	result.PhaseBest = make([]float64, len(ac.Phases))
	for len(result.Events) < ac.Periods {
		ev := <-trace
		phase := phased.Phase()
		result.Events = append(result.Events, ev)
		result.EventPhases = append(result.EventPhases, phase)
		if !ev.Idle && ev.Throughput > result.PhaseBest[phase] {
			result.PhaseBest[phase] = ev.Throughput
		}
		if ac.OnEvent != nil {
			ac.OnEvent(ev)
		}
		if ac.ShiftEvery > 0 && len(ac.Phases) > 1 && len(result.Events)%ac.ShiftEvery == 0 {
			phased.SetPhase((phase + 1) % phased.Phases())
		}
	}
	rt.Stop()
	result.Best, result.BestTp = rt.Best()
	result.Final = rt.Current()
	workers.Stop()

	// Static baselines: every configuration measured under every phase on
	// a fresh system, so each comparison is within one workload phase.
	// Each point is set up exactly like the live run — the structure is
	// built from Phases[0] and only the operation mix comes from the
	// measured phase (a phase's Range may be far below InitialSize, which
	// would make building *from* it impossible).
	bench := sc
	bench.Duration = ac.Period * time.Duration(samples)
	result.BestStatic = make([]StaticPoint, len(ac.Phases))
	for phase, ip := range ac.Phases {
		for _, p := range ac.Statics {
			stm := newCoreTM(bench, core.WriteBack, p)
			sset := harness.BuildIntset[*core.Tx](stm, base, ac.Seed)
			b := harness.Bench[*core.Tx]{
				Sys: stm, Threads: ac.Threads, Duration: bench.Duration,
				Warmup: bench.Warmup, Seed: ac.Seed,
				Op: harness.IntsetOp[*core.Tx](stm, sset, ip),
			}
			tp := repeatMax(bench, b.Run).Throughput
			sp := StaticPoint{Params: p, Phase: phase, Throughput: tp}
			result.Statics = append(result.Statics, sp)
			if tp > result.BestStatic[phase].Throughput {
				result.BestStatic[phase] = sp
			}
		}
	}
	return result
}
