// Package experiments reproduces every figure of the paper's evaluation:
// one runner per figure, shared by the command-line tools (cmd/stmbench,
// cmd/sweep, cmd/tune, cmd/vacation) and the root bench_test.go harness.
//
// Each runner builds fresh STM instances per measured point (so points are
// independent), runs the paper's workload mix, and returns structured
// results plus a rendered table with the same rows/series the paper plots.
// Scale factors the experiment sizes so the full paper-scale runs and the
// fast CI-scale runs share all code paths.
package experiments

import (
	"fmt"
	"time"

	"tinystm/internal/cm"
	"tinystm/internal/core"
	"tinystm/internal/harness"
	"tinystm/internal/mem"
	"tinystm/internal/tl2"
	"tinystm/internal/vacation"
)

// Sys identifies the STM variants the paper compares. The paper's 32-bit
// builds exist because the TL2 x86 port only compiled in 32-bit mode; this
// repository reproduces the 64-bit series.
type Sys int

// The three systems of Figures 2-5.
const (
	TinySTMWB Sys = iota
	TinySTMWT
	TL2
)

// String names the series as the paper's legends do.
func (s Sys) String() string {
	switch s {
	case TinySTMWB:
		return "TinySTM-WB"
	case TinySTMWT:
		return "TinySTM-WT"
	case TL2:
		return "TL2"
	default:
		return fmt.Sprintf("Sys(%d)", int(s))
	}
}

// AllSystems lists the series plotted in Figures 2-5.
var AllSystems = []Sys{TinySTMWB, TinySTMWT, TL2}

// Scale sets the measurement effort. The paper measures seconds-long runs
// on an 8-core Xeon; tests use milliseconds-long runs. The shapes survive
// scaling; absolute numbers do not (documented in EXPERIMENTS.md).
type Scale struct {
	Duration time.Duration
	Warmup   time.Duration
	Threads  []int
	Seed     uint64
	// SpaceWords sizes the transactional arena per point.
	SpaceWords int
	// YieldEvery simulates the paper's 8-core interleaving on few-core
	// hosts by yielding after every N transactional loads in both STMs
	// (see core.Config.YieldEvery). Zero disables the simulation: on a
	// single CPU, transactions then mostly run within one scheduler
	// slice and conflicts almost never materialize.
	YieldEvery int
	// Repeats measures each point this many times and keeps the maximum
	// throughput — the smoothing Section 4.3 applies to its tuning
	// measurements, applied here to every figure. Zero or one means a
	// single measurement.
	Repeats int
	// Clock selects the TinySTM commit-clock strategy for every measured
	// point (see core.ClockStrategy). The zero value is the paper's
	// fetch-and-increment baseline; TL2 points ignore it.
	Clock core.ClockStrategy
	// CM selects the contention-management policy for every measured
	// point, in both STMs (see cm.Kind). The zero value is the paper's
	// abort-immediately Suicide.
	CM cm.Kind
}

// PaperScale approximates the paper's measurement effort.
func PaperScale() Scale {
	return Scale{
		Duration:   time.Second,
		Warmup:     200 * time.Millisecond,
		Threads:    []int{1, 2, 4, 6, 8},
		Seed:       42,
		SpaceWords: 1 << 23,
	}
}

// QuickScale runs every code path in milliseconds (tests, smoke runs).
func QuickScale() Scale {
	return Scale{
		Duration:   25 * time.Millisecond,
		Warmup:     5 * time.Millisecond,
		Threads:    []int{1, 2},
		Seed:       42,
		SpaceWords: 1 << 20,
	}
}

// ContendedScale is PaperScale with the multi-core interleaving
// simulation enabled; use it on few-core hosts to reproduce the
// conflict-driven figures (abort rates, doomed-traversal effects).
func ContendedScale() Scale {
	sc := PaperScale()
	sc.YieldEvery = 8
	return sc
}

// Point is one measured benchmark point.
type Point struct {
	Sys        Sys
	Threads    int
	Throughput float64 // committed txs per second
	AbortRate  float64 // aborts per second
	Result     harness.Result
}

// defaultGeometry is the fixed lock-array configuration used for the
// non-sweep figures (the paper's TinySTM default: 2^20 locks, shift 0,
// hierarchy disabled for the base comparison).
var defaultGeometry = core.Params{Locks: 1 << 20, Shifts: 0, Hier: 1}

// newCoreTM builds a TinySTM instance for one measured point.
func newCoreTM(sc Scale, d core.Design, p core.Params) *core.TM {
	sp := mem.NewSpace(sc.SpaceWords)
	return core.MustNew(core.Config{
		Space: sp, Locks: p.Locks, Shifts: p.Shifts, Hier: p.Hier, Design: d,
		YieldEvery: sc.YieldEvery, Clock: sc.Clock, CM: sc.CM,
	})
}

// newTL2TM builds a TL2 instance for one measured point.
func newTL2TM(sc Scale, p core.Params) *tl2.TM {
	sp := mem.NewSpace(sc.SpaceWords)
	return tl2.MustNew(tl2.Config{
		Space: sp, Locks: p.Locks, Shifts: p.Shifts, YieldEvery: sc.YieldEvery,
		CM: sc.CM,
	})
}

// repeatMax runs measure sc.Repeats times and keeps the run with the
// highest throughput (Section 4.3's max-of-N smoothing).
func repeatMax(sc Scale, measure func() harness.Result) harness.Result {
	n := sc.Repeats
	if n < 1 {
		n = 1
	}
	best := measure()
	for i := 1; i < n; i++ {
		if r := measure(); r.Throughput > best.Throughput {
			best = r
		}
	}
	return best
}

// RunIntsetPoint measures one (system, geometry, workload, threads) point.
func RunIntsetPoint(sc Scale, sys Sys, geo core.Params, ip harness.IntsetParams, threads int) Point {
	var res harness.Result
	switch sys {
	case TinySTMWB, TinySTMWT:
		d := core.WriteBack
		if sys == TinySTMWT {
			d = core.WriteThrough
		}
		tm := newCoreTM(sc, d, geo)
		set := harness.BuildIntset[*core.Tx](tm, ip, sc.Seed)
		bench := harness.Bench[*core.Tx]{
			Sys: tm, Threads: threads, Duration: sc.Duration, Warmup: sc.Warmup,
			Seed: sc.Seed, Op: harness.IntsetOp[*core.Tx](tm, set, ip),
		}
		res = repeatMax(sc, bench.Run)
	case TL2:
		tm := newTL2TM(sc, geo)
		set := harness.BuildIntset[*tl2.Tx](tm, ip, sc.Seed)
		bench := harness.Bench[*tl2.Tx]{
			Sys: tm, Threads: threads, Duration: sc.Duration, Warmup: sc.Warmup,
			Seed: sc.Seed, Op: harness.IntsetOp[*tl2.Tx](tm, set, ip),
		}
		res = repeatMax(sc, bench.Run)
	default:
		panic("experiments: unknown system")
	}
	return Point{Sys: sys, Threads: threads,
		Throughput: res.Throughput, AbortRate: res.AbortRate, Result: res}
}

// RunVacationPoint measures one Vacation point (TinySTM only, as in the
// paper's Figure 7, which sweeps TinySTM's parameters).
func RunVacationPoint(sc Scale, d core.Design, geo core.Params, vp vacation.Params, threads int) Point {
	tm := newCoreTM(sc, d, geo)
	m := vacation.Setup[*core.Tx](tm, vp, sc.Seed)
	bench := harness.Bench[*core.Tx]{
		Sys: tm, Threads: threads, Duration: sc.Duration, Warmup: sc.Warmup,
		Seed: sc.Seed, Op: vacation.Op[*core.Tx](tm, m),
	}
	res := repeatMax(sc, bench.Run)
	s := TinySTMWB
	if d == core.WriteThrough {
		s = TinySTMWT
	}
	return Point{Sys: s, Threads: threads,
		Throughput: res.Throughput, AbortRate: res.AbortRate, Result: res}
}
