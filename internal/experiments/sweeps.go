package experiments

import (
	"fmt"

	"tinystm/internal/core"
	"tinystm/internal/harness"
	"tinystm/internal/vacation"
)

// SweepSurface holds throughput over the (#locks × #shifts) grid for one
// or more hierarchical-array sizes: the layout of Figures 6, 7 and 8.
type SweepSurface struct {
	Title     string
	LocksExps []int    // lock-array sizes as exponents (2^e)
	Shifts    []uint   // hash shift values
	Hiers     []uint64 // one surface per h
	// Values[h][l][s] is the throughput at Hiers[h], 2^LocksExps[l],
	// Shifts[s].
	Values [][][]float64
}

// ToTable flattens the surfaces into rows (h, locks, shift, throughput).
func (r SweepSurface) ToTable() harness.Table {
	tbl := harness.Table{Title: r.Title,
		Headers: []string{"h", "locks", "shifts", "throughput (10^3/s)"}}
	for hi, h := range r.Hiers {
		for li, le := range r.LocksExps {
			for si, sh := range r.Shifts {
				tbl.AddRow(h, fmt.Sprintf("2^%d", le), sh,
					fmt.Sprintf("%.1f", r.Values[hi][li][si]/1000))
			}
		}
	}
	return tbl
}

// Best returns the parameters and throughput of the best grid point.
func (r SweepSurface) Best() (core.Params, float64) {
	var best core.Params
	bestTp := -1.0
	for hi, h := range r.Hiers {
		for li, le := range r.LocksExps {
			for si, sh := range r.Shifts {
				if tp := r.Values[hi][li][si]; tp > bestTp {
					bestTp = tp
					best = core.Params{Locks: 1 << le, Shifts: sh, Hier: h}
				}
			}
		}
	}
	return best, bestTp
}

// SweepLocksShifts measures the (#locks × #shifts) grid for an intset
// workload. Figure 6 uses hiers={4}; Figure 8 uses hiers={4,16,64}.
func SweepLocksShifts(sc Scale, d core.Design, ip harness.IntsetParams,
	hiers []uint64, locksExps []int, shifts []uint) SweepSurface {
	threads := sc.Threads[len(sc.Threads)-1]
	sys := TinySTMWB
	if d == core.WriteThrough {
		sys = TinySTMWT
	}
	r := SweepSurface{
		Title: fmt.Sprintf("locks x shifts sweep: %v, size=%d, update=%d%%, threads=%d",
			ip.Kind, ip.InitialSize, ip.UpdatePct, threads),
		LocksExps: locksExps, Shifts: shifts, Hiers: hiers,
	}
	for _, h := range hiers {
		var surface [][]float64
		for _, le := range locksExps {
			row := make([]float64, len(shifts))
			for si, sh := range shifts {
				geo := core.Params{Locks: 1 << le, Shifts: sh, Hier: h}
				row[si] = RunIntsetPoint(sc, sys, geo, ip, threads).Throughput
			}
			surface = append(surface, row)
		}
		r.Values = append(r.Values, surface)
	}
	return r
}

// Figure6 reproduces "Influence of the number of locks and shifts": h=4,
// size=4096, update rate 20%, 8 threads, for the red-black tree and the
// linked list.
func Figure6(sc Scale, kind harness.Kind, locksExps []int, shifts []uint) SweepSurface {
	ip := harness.IntsetParams{Kind: kind, InitialSize: 4096, UpdatePct: 20}
	s := SweepLocksShifts(sc, core.WriteBack, ip, []uint64{4}, locksExps, shifts)
	s.Title = "Figure 6: " + s.Title
	return s
}

// Figure7 reproduces "Influence of the number of locks and shifts on the
// performance of STAMP's Vacation benchmark" (h=4, 8 threads).
func Figure7(sc Scale, vp vacation.Params, locksExps []int, shifts []uint) SweepSurface {
	threads := sc.Threads[len(sc.Threads)-1]
	r := SweepSurface{
		Title: fmt.Sprintf("Figure 7: STAMP Vacation, h=4, threads=%d, relations=%d",
			threads, vp.Relations),
		LocksExps: locksExps, Shifts: shifts, Hiers: []uint64{4},
	}
	var surface [][]float64
	for _, le := range locksExps {
		row := make([]float64, len(shifts))
		for si, sh := range shifts {
			geo := core.Params{Locks: 1 << le, Shifts: sh, Hier: 4}
			row[si] = RunVacationPoint(sc, core.WriteBack, geo, vp, threads).Throughput
		}
		surface = append(surface, row)
	}
	r.Values = append(r.Values, surface)
	return r
}

// Figure8 reproduces "Influence of the size of the hierarchical array":
// the Figure 6 grids re-run at h in {4, 16, 64}.
func Figure8(sc Scale, kind harness.Kind, locksExps []int, shifts []uint) SweepSurface {
	ip := harness.IntsetParams{Kind: kind, InitialSize: 4096, UpdatePct: 20}
	s := SweepLocksShifts(sc, core.WriteBack, ip, []uint64{4, 16, 64}, locksExps, shifts)
	s.Title = "Figure 8: " + s.Title
	return s
}

// ClockSweep holds throughput and abort rates over the (clock strategy x
// threads) grid: the commit-clock dimension added on top of the paper's
// (#locks, #shifts, h) triple. It quantifies the GV4/GV5/ticket-batch
// trade-off of Section 3.1's clock management: commit-time contention on
// the shared counter versus extra snapshot extensions (Lazy) or discarded
// reservations (TicketBatch).
type ClockSweep struct {
	Title      string
	Threads    []int
	Clocks     []core.ClockStrategy
	Values     [][]float64 // Values[c][t]: throughput at Clocks[c], Threads[t]
	Aborts     [][]float64
	Extensions [][]float64 // successful snapshot extensions per second
}

// ToTable flattens the sweep into rows (clock, threads, throughput,
// aborts, extensions).
func (r ClockSweep) ToTable() harness.Table {
	tbl := harness.Table{Title: r.Title,
		Headers: []string{"clock", "threads", "throughput (10^3/s)", "aborts (10^3/s)", "extensions (10^3/s)"}}
	for ci, cs := range r.Clocks {
		for ti, th := range r.Threads {
			tbl.AddRow(cs.String(), th,
				fmt.Sprintf("%.1f", r.Values[ci][ti]/1000),
				fmt.Sprintf("%.1f", r.Aborts[ci][ti]/1000),
				fmt.Sprintf("%.1f", r.Extensions[ci][ti]/1000))
		}
	}
	return tbl
}

// Best returns the strategy with the highest throughput at the largest
// thread count.
func (r ClockSweep) Best() (core.ClockStrategy, float64) {
	best, bestTp := r.Clocks[0], -1.0
	last := len(r.Threads) - 1
	for ci, cs := range r.Clocks {
		if tp := r.Values[ci][last]; tp > bestTp {
			best, bestTp = cs, tp
		}
	}
	return best, bestTp
}

// SweepClockStrategies measures an intset workload under each commit-clock
// strategy across the scale's thread counts (TinySTM only; the geometry is
// fixed so the clock is the one moving part).
func SweepClockStrategies(sc Scale, d core.Design, geo core.Params,
	ip harness.IntsetParams, clocks []core.ClockStrategy) ClockSweep {
	sys := TinySTMWB
	if d == core.WriteThrough {
		sys = TinySTMWT
	}
	r := ClockSweep{
		Title: fmt.Sprintf("clock-strategy sweep: %v %v, size=%d, update=%d%%",
			d, ip.Kind, ip.InitialSize, ip.UpdatePct),
		Threads: sc.Threads, Clocks: clocks,
	}
	for _, cs := range clocks {
		scc := sc
		scc.Clock = cs
		tps := make([]float64, len(sc.Threads))
		abr := make([]float64, len(sc.Threads))
		ext := make([]float64, len(sc.Threads))
		for ti, th := range sc.Threads {
			p := RunIntsetPoint(scc, sys, geo, ip, th)
			tps[ti] = p.Throughput
			abr[ti] = p.AbortRate
			if secs := p.Result.Duration.Seconds(); secs > 0 {
				ext[ti] = float64(p.Result.Delta.Extensions) / secs
			}
		}
		r.Values = append(r.Values, tps)
		r.Aborts = append(r.Aborts, abr)
		r.Extensions = append(r.Extensions, ext)
	}
	return r
}

// ImprovementCurve is one panel of Figure 9: throughput improvement (in
// percent over the panel's worst configuration) along one parameter axis.
type ImprovementCurve struct {
	Title  string
	Labels []string // x-axis labels
	Series map[string][]float64
}

// ToTable renders the curve.
func (c ImprovementCurve) ToTable() harness.Table {
	tbl := harness.Table{Title: c.Title, Headers: []string{"x"}}
	names := make([]string, 0, len(c.Series))
	for name := range c.Series {
		names = append(names, name)
	}
	// Deterministic column order.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	tbl.Headers = append(tbl.Headers, names...)
	for i, l := range c.Labels {
		row := []any{l}
		for _, n := range names {
			row = append(row, fmt.Sprintf("%.1f%%", c.Series[n][i]))
		}
		tbl.AddRow(row...)
	}
	return tbl
}

// improvement converts raw throughputs to percent over the minimum, the
// normalization Figure 9 uses ("the percentage was calculated with
// respect to the lowest throughput per individual plot").
func improvement(tps []float64) []float64 {
	min := tps[0]
	for _, v := range tps[1:] {
		if v < min {
			min = v
		}
	}
	out := make([]float64, len(tps))
	if min <= 0 {
		return out
	}
	for i, v := range tps {
		out[i] = (v - min) / min * 100
	}
	return out
}

// Figure9Locks reproduces the left panel: improvement vs #locks for the
// red-black tree (h=4/64, shift=3) and linked list (h=4/64, shift=2).
func Figure9Locks(sc Scale, locksExps []int) ImprovementCurve {
	c := ImprovementCurve{
		Title:  "Figure 9 (left): improvement vs #locks, size=4096, update=20%",
		Series: map[string][]float64{},
	}
	for _, le := range locksExps {
		c.Labels = append(c.Labels, fmt.Sprintf("2^%d", le))
	}
	threads := sc.Threads[len(sc.Threads)-1]
	cases := []struct {
		name  string
		kind  harness.Kind
		h     uint64
		shift uint
	}{
		{"rbtree h=4 shift=3", harness.KindRBTree, 4, 3},
		{"list h=4 shift=2", harness.KindList, 4, 2},
		{"rbtree h=64 shift=3", harness.KindRBTree, 64, 3},
		{"list h=64 shift=2", harness.KindList, 64, 2},
	}
	for _, cs := range cases {
		ip := harness.IntsetParams{Kind: cs.kind, InitialSize: 4096, UpdatePct: 20}
		tps := make([]float64, len(locksExps))
		for i, le := range locksExps {
			geo := core.Params{Locks: 1 << le, Shifts: cs.shift, Hier: cs.h}
			tps[i] = RunIntsetPoint(sc, TinySTMWB, geo, ip, threads).Throughput
		}
		c.Series[cs.name] = improvement(tps)
	}
	return c
}

// Figure9Shifts reproduces the middle panel: improvement vs #shifts at
// #locks=2^22 (capped at the scale's largest feasible size).
func Figure9Shifts(sc Scale, locksExp int, shifts []uint) ImprovementCurve {
	c := ImprovementCurve{
		Title:  fmt.Sprintf("Figure 9 (middle): improvement vs #shifts, locks=2^%d", locksExp),
		Series: map[string][]float64{},
	}
	for _, sh := range shifts {
		c.Labels = append(c.Labels, fmt.Sprintf("%d", sh))
	}
	threads := sc.Threads[len(sc.Threads)-1]
	for _, cs := range []struct {
		name string
		kind harness.Kind
		h    uint64
	}{
		{"rbtree h=4", harness.KindRBTree, 4},
		{"list h=4", harness.KindList, 4},
		{"rbtree h=64", harness.KindRBTree, 64},
		{"list h=64", harness.KindList, 64},
	} {
		ip := harness.IntsetParams{Kind: cs.kind, InitialSize: 4096, UpdatePct: 20}
		tps := make([]float64, len(shifts))
		for i, sh := range shifts {
			geo := core.Params{Locks: 1 << locksExp, Shifts: sh, Hier: cs.h}
			tps[i] = RunIntsetPoint(sc, TinySTMWB, geo, ip, threads).Throughput
		}
		c.Series[cs.name] = improvement(tps)
	}
	return c
}

// Figure9Hier reproduces the right panel: improvement vs h at
// #locks=2^22, shifts in {2, 3}.
func Figure9Hier(sc Scale, locksExp int, hiers []uint64) ImprovementCurve {
	c := ImprovementCurve{
		Title:  fmt.Sprintf("Figure 9 (right): improvement vs h, locks=2^%d", locksExp),
		Series: map[string][]float64{},
	}
	for _, h := range hiers {
		c.Labels = append(c.Labels, fmt.Sprintf("%d", h))
	}
	threads := sc.Threads[len(sc.Threads)-1]
	for _, cs := range []struct {
		name  string
		kind  harness.Kind
		shift uint
	}{
		{"rbtree shift=3", harness.KindRBTree, 3},
		{"list shift=3", harness.KindList, 3},
		{"rbtree shift=2", harness.KindRBTree, 2},
		{"list shift=2", harness.KindList, 2},
	} {
		ip := harness.IntsetParams{Kind: cs.kind, InitialSize: 4096, UpdatePct: 20}
		tps := make([]float64, len(hiers))
		for i, h := range hiers {
			geo := core.Params{Locks: 1 << locksExp, Shifts: cs.shift, Hier: h}
			tps[i] = RunIntsetPoint(sc, TinySTMWB, geo, ip, threads).Throughput
		}
		c.Series[cs.name] = improvement(tps)
	}
	return c
}
