package experiments

import (
	"strings"
	"testing"
	"time"

	"tinystm/internal/core"
	"tinystm/internal/harness"
	"tinystm/internal/kvstore"
	"tinystm/internal/tuning"
	"tinystm/internal/vacation"
)

// tinyScale keeps every figure runner's full code path under a second.
func tinyScale() Scale {
	return Scale{
		Duration:   10 * time.Millisecond,
		Warmup:     2 * time.Millisecond,
		Threads:    []int{1, 2},
		Seed:       42,
		SpaceWords: 1 << 20,
	}
}

func TestSysString(t *testing.T) {
	if TinySTMWB.String() != "TinySTM-WB" || TinySTMWT.String() != "TinySTM-WT" || TL2.String() != "TL2" {
		t.Error("system names wrong")
	}
}

func TestRunIntsetPointAllSystems(t *testing.T) {
	sc := tinyScale()
	ip := harness.IntsetParams{Kind: harness.KindRBTree, InitialSize: 64, UpdatePct: 20}
	for _, sys := range AllSystems {
		p := RunIntsetPoint(sc, sys, defaultGeometry, ip, 2)
		if p.Throughput <= 0 {
			t.Errorf("%v: throughput = %f", sys, p.Throughput)
		}
		if p.Result.Delta.Commits == 0 {
			t.Errorf("%v: no commits", sys)
		}
	}
}

func TestFigure2And3Shapes(t *testing.T) {
	sc := tinyScale()
	r := Figure2(sc, 64, 20)
	if len(r.Values) != len(sc.Threads) || len(r.Values[0]) != len(AllSystems) {
		t.Fatalf("figure 2 shape wrong: %dx%d", len(r.Values), len(r.Values[0]))
	}
	for i, row := range r.Values {
		for j, v := range row {
			if v <= 0 {
				t.Errorf("fig2[%d][%d] = %f", i, j, v)
			}
		}
	}
	tbl := r.ToTable("throughput")
	var sb strings.Builder
	tbl.Render(&sb)
	if !strings.Contains(sb.String(), "TinySTM-WB") {
		t.Error("table missing series header")
	}

	r3 := Figure3(sc, 64, 0)
	for _, row := range r3.Values {
		for _, v := range row {
			if v <= 0 {
				t.Error("fig3 zero throughput")
			}
		}
	}
}

func TestFigure4AbortsAndOverwrite(t *testing.T) {
	sc := tinyScale()
	// Contended list: abort rates should be measurable at 2 threads.
	r := Figure4Aborts(sc, harness.KindList, 64, 20)
	if len(r.Values) != len(sc.Threads) {
		t.Fatal("shape wrong")
	}
	// The overwrite workload aborts heavily by design; widen the window
	// so every point commits at least once.
	sc.Duration = 40 * time.Millisecond
	ov := Figure4Overwrite(sc, 64, 5)
	for _, row := range ov.Values {
		for _, v := range row {
			if v <= 0 {
				t.Error("overwrite throughput zero")
			}
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	sc := tinyScale()
	r := Figure5(sc, harness.KindRBTree, []int{32, 64}, []int{0, 20})
	if len(r.Values) != 2 || len(r.Values[0]) != 2 || len(r.Values[0][0]) != len(AllSystems) {
		t.Fatal("figure 5 shape wrong")
	}
	var sb strings.Builder
	tbl := r.ToTable()
	tbl.Render(&sb)
	if !strings.Contains(sb.String(), "update%") {
		t.Error("table missing header")
	}
}

func TestFigure6And8Sweep(t *testing.T) {
	sc := tinyScale()
	r := Figure6(sc, harness.KindRBTree, []int{8, 10}, []uint{0, 2})
	if len(r.Values) != 1 || len(r.Values[0]) != 2 || len(r.Values[0][0]) != 2 {
		t.Fatal("figure 6 shape wrong")
	}
	best, tp := r.Best()
	if tp <= 0 || best.Locks == 0 {
		t.Errorf("best = %+v / %f", best, tp)
	}

	r8 := Figure8(sc, harness.KindList, []int{8}, []uint{0})
	if len(r8.Values) != 3 { // h = 4, 16, 64
		t.Fatalf("figure 8 surfaces = %d, want 3", len(r8.Values))
	}
}

func TestFigure7Vacation(t *testing.T) {
	sc := tinyScale()
	// Vacation transactions are heavyweight and abort-prone under
	// contention; give each point a window long enough to always commit.
	sc.Duration = 40 * time.Millisecond
	vp := vacation.Params{Relations: 64, QueryPct: 90, UserPct: 80, QueriesPerTx: 2}
	r := Figure7(sc, vp, []int{10, 12}, []uint{0, 2})
	for _, row := range r.Values[0] {
		for _, v := range row {
			if v <= 0 {
				t.Error("vacation throughput zero")
			}
		}
	}
}

func TestFigure9Curves(t *testing.T) {
	sc := tinyScale()
	c := Figure9Locks(sc, []int{8, 10})
	if len(c.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(c.Series))
	}
	for name, vals := range c.Series {
		if len(vals) != 2 {
			t.Errorf("%s: %d points", name, len(vals))
		}
		min := vals[0]
		for _, v := range vals {
			if v < min {
				min = v
			}
		}
		if min != 0 {
			t.Errorf("%s: improvement minimum = %f, want 0 (normalized)", name, min)
		}
	}
	cs := Figure9Shifts(sc, 10, []uint{0, 1})
	if len(cs.Series) != 4 {
		t.Error("shift panel series wrong")
	}
	ch := Figure9Hier(sc, 10, []uint64{4, 16})
	if len(ch.Series) != 4 {
		t.Error("hier panel series wrong")
	}
	var sb strings.Builder
	tbl := ch.ToTable()
	tbl.Render(&sb)
	if !strings.Contains(sb.String(), "%") {
		t.Error("improvement table missing percentages")
	}
}

func TestRunTuningReconfigures(t *testing.T) {
	sc := tinyScale()
	tc := TuneConfig{
		Kind: harness.KindRBTree, Size: 128, UpdatePct: 20,
		Threads: 2, Periods: 8, Period: 5 * time.Millisecond,
		SamplesPerConfig: 2,
		Start:            core.Params{Locks: 1 << 8, Shifts: 0, Hier: 1},
		Bounds: tuning.Bounds{
			MinLocks: 1 << 6, MaxLocks: 1 << 12,
			MinShifts: 0, MaxShifts: 3, MinHier: 1, MaxHier: 16,
		},
		Seed: 42,
	}
	r := RunTuning(sc, tc)
	if len(r.Trace) != tc.Periods {
		t.Fatalf("trace length = %d, want %d", len(r.Trace), tc.Periods)
	}
	if len(r.Validation) != tc.Periods {
		t.Fatalf("validation samples = %d, want %d", len(r.Validation), tc.Periods)
	}
	if r.Trace[0].Params != tc.Start {
		t.Errorf("first measured config = %+v, want start", r.Trace[0].Params)
	}
	moved := false
	for _, e := range r.Trace {
		if e.Next != tc.Start {
			moved = true
		}
	}
	if !moved {
		t.Error("tuner never moved")
	}
	if r.BestTp <= 0 {
		t.Error("no best throughput recorded")
	}
	var sb strings.Builder
	tt := r.TraceTable("test")
	tt.Render(&sb)
	vt := r.ValidationTable()
	vt.Render(&sb)
	if !strings.Contains(sb.String(), "processed") {
		t.Error("validation table malformed")
	}
}

func TestLog2(t *testing.T) {
	cases := map[uint64]int{1: 0, 2: 1, 4: 2, 1 << 16: 16, 1 << 24: 24}
	for v, want := range cases {
		if got := log2(v); got != want {
			t.Errorf("log2(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestScalesAreComplete(t *testing.T) {
	for _, sc := range []Scale{PaperScale(), QuickScale()} {
		if sc.Duration == 0 || len(sc.Threads) == 0 || sc.SpaceWords == 0 {
			t.Errorf("incomplete scale: %+v", sc)
		}
	}
}

func TestContendedScaleSurfacesAborts(t *testing.T) {
	sc := tinyScale()
	sc.YieldEvery = 2
	sc.Duration = 30 * time.Millisecond
	ip := harness.IntsetParams{Kind: harness.KindList, InitialSize: 64, UpdatePct: 50}
	p := RunIntsetPoint(sc, TinySTMWB, defaultGeometry, ip, 2)
	if p.Result.Delta.Commits == 0 {
		t.Fatal("no commits under yield")
	}
	// Aborts are probabilistic but should almost always appear with
	// yield-every-2 on a contended list; warn rather than fail.
	if p.Result.Delta.Aborts == 0 {
		t.Log("no aborts surfaced; unusual under yield=2")
	}
}

func TestRepeatsKeepsMaximum(t *testing.T) {
	sc := tinyScale()
	sc.Repeats = 3
	ip := harness.IntsetParams{Kind: harness.KindRBTree, InitialSize: 64, UpdatePct: 20}
	p := RunIntsetPoint(sc, TinySTMWB, defaultGeometry, ip, 1)
	if p.Throughput <= 0 {
		t.Fatal("no throughput with repeats")
	}
}

func TestAutotuneSweepRunsAndCompares(t *testing.T) {
	sc := tinyScale()
	calm := harness.IntsetParams{Kind: harness.KindList, InitialSize: 64, UpdatePct: 20}
	hot := calm
	hot.UpdatePct = 80
	var observed int
	ac := AutotuneConfig{
		Phases: []harness.IntsetParams{calm, hot}, ShiftEvery: 3,
		Threads: 2, Periods: 6, Period: 5 * time.Millisecond, Samples: 2,
		Start: core.Params{Locks: 1 << 8, Shifts: 0, Hier: 1},
		Bounds: tuning.Bounds{
			MinLocks: 1 << 6, MaxLocks: 1 << 12,
			MinShifts: 0, MaxShifts: 3, MinHier: 1, MaxHier: 8,
		},
		Statics: []core.Params{
			{Locks: 1 << 8, Shifts: 0, Hier: 1},
			{Locks: 1 << 12, Shifts: 0, Hier: 1},
		},
		Seed:    42,
		OnEvent: func(tuning.Event) { observed++ },
	}
	r := AutotuneSweep(sc, ac)
	if len(r.Events) != ac.Periods {
		t.Fatalf("events = %d, want %d", len(r.Events), ac.Periods)
	}
	if observed != ac.Periods {
		t.Errorf("OnEvent fired %d times, want %d", observed, ac.Periods)
	}
	if len(r.EventPhases) != ac.Periods {
		t.Fatalf("event phases = %d, want %d", len(r.EventPhases), ac.Periods)
	}
	// ShiftEvery=3 over 6 periods: phases 0,0,0,1,1,1.
	for i, phase := range r.EventPhases {
		if want := i / ac.ShiftEvery; phase != want {
			t.Errorf("event %d phase = %d, want %d", i, phase, want)
		}
	}
	if len(r.Statics) != len(ac.Statics)*len(ac.Phases) {
		t.Fatalf("statics = %d, want %d", len(r.Statics), len(ac.Statics)*len(ac.Phases))
	}
	if len(r.BestStatic) != len(ac.Phases) || len(r.PhaseBest) != len(ac.Phases) {
		t.Fatalf("per-phase slices sized %d/%d, want %d", len(r.BestStatic), len(r.PhaseBest), len(ac.Phases))
	}
	for phase, bs := range r.BestStatic {
		if bs.Throughput <= 0 {
			t.Errorf("phase %d: no best static throughput", phase)
		}
		if bs.Phase != phase {
			t.Errorf("phase %d: best static tagged with phase %d", phase, bs.Phase)
		}
	}
	if r.BestTp <= 0 {
		t.Error("no autotuned best throughput")
	}
	var sb strings.Builder
	tt := r.TraceTable("test")
	tt.Render(&sb)
	ct := r.ComparisonTable()
	ct.Render(&sb)
	if !strings.Contains(sb.String(), "autotuned (best in phase)") {
		t.Error("comparison table malformed")
	}
}

func TestServerSweepQuick(t *testing.T) {
	sc := tinyScale()
	cfg := ServerConfig{
		Shards: 4, Buckets: 16, Keys: 256,
		Mixes: []kvstore.Mix{
			{Keys: 256, Theta: 0.6, ReadPct: 80, CASPct: 5, BatchPct: 5},
			{Keys: 256, Theta: 0.99, ReadPct: 20, CASPct: 10, BatchPct: 10},
		},
		Rate: 20000, Workers: 2,
		Duration: 120 * time.Millisecond,
		Period:   10 * time.Millisecond,
		Samples:  1,
		Start:    core.Params{Locks: 1 << 8, Shifts: 0, Hier: 1},
		Statics:  []core.Params{{Locks: 1 << 8, Shifts: 0, Hier: 1}, {Locks: 1 << 16, Shifts: 0, Hier: 1}},
		Bounds: tuning.Bounds{
			MinLocks: 1 << 6, MaxLocks: 1 << 12,
			MinShifts: 0, MaxShifts: 2, MinHier: 1, MaxHier: 8,
		},
		Seed: 42,
	}
	r := ServerSweep(sc, cfg)
	if r.Autotuned.Load.Completed == 0 {
		t.Fatal("autotuned run completed no requests")
	}
	if r.Autotuned.Commits == 0 {
		t.Fatal("autotuned run committed nothing")
	}
	if len(r.Events) == 0 {
		t.Fatal("no tuning events recorded under service load")
	}
	if r.Autotuned.Reconfigs == 0 {
		t.Fatal("tuner never reconfigured the live server TM")
	}
	if len(r.Statics) != len(cfg.Statics) {
		t.Fatalf("static points = %d, want %d", len(r.Statics), len(cfg.Statics))
	}
	for _, p := range r.Statics {
		if p.Load.Completed == 0 {
			t.Fatalf("static %v completed no requests", p.Params)
		}
		if p.Reconfigs != 0 {
			t.Fatalf("static %v reconfigured (%d)", p.Params, p.Reconfigs)
		}
	}
	var sb strings.Builder
	tbl := r.ToTable()
	tbl.Render(&sb)
	if !strings.Contains(sb.String(), "autotuned") {
		t.Error("sweep table malformed")
	}
	// The comparison surfaces the full latency distribution OpenLoop
	// measures, not just throughput.
	for _, col := range []string{"p50", "p95", "p99"} {
		if !strings.Contains(sb.String(), col) {
			t.Errorf("sweep table missing %s column", col)
		}
	}
}

func TestSnapshotSweepShapes(t *testing.T) {
	sc := tinyScale()
	cfg := DefaultSnapshotConfig(sc)
	cfg.Keys = 512
	cfg.Writers = []int{2}
	cfg.Budgets = []int{64}
	r := SnapshotSweep(sc, cfg)
	if len(r.Points) != 2 {
		t.Fatalf("got %d points, want 2 (off + one budget)", len(r.Points))
	}
	if r.Points[0].Mode != "off" || r.Points[1].Mode != "on/64" {
		t.Fatalf("modes %q, %q", r.Points[0].Mode, r.Points[1].Mode)
	}
	on := r.Points[1]
	if on.ScanROAborts != 0 {
		t.Errorf("snapshot scans suffered %d read-only aborts", on.ScanROAborts)
	}
	if on.KeyRate == 0 {
		t.Error("snapshot scans read no keys")
	}
	tbl := r.ToTable()
	if !strings.Contains(tbl.Title, "snapshots off vs. on") {
		t.Errorf("table title %q", tbl.Title)
	}
}
