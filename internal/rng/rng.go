// Package rng provides a small, fast, deterministic pseudo-random number
// generator for benchmark workloads and the tuning strategy.
//
// Benchmark threads each own one generator seeded from a base seed and the
// thread index, which makes every experiment reproducible without any
// cross-thread synchronization. The generator is xorshift64* (Vigna, 2014):
// a single 64-bit word of state, passes BigCrush except MatrixRank, and is
// far cheaper than math/rand for the per-operation draws benchmarks make.
package rng

// Rand is a deterministic xorshift64* generator. The zero value is invalid;
// use New. Rand is not safe for concurrent use; give each goroutine its own.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed. A zero seed is replaced with a
// fixed non-zero constant because xorshift state must never be zero.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// NewThread returns a generator for thread index tid derived from a base
// seed such that distinct threads get decorrelated streams.
func NewThread(base uint64, tid int) *Rand {
	// SplitMix64 step decorrelates consecutive thread ids.
	z := base + 0x9e3779b97f4a7c15*uint64(tid+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x853c49e6748fea9b
	}
	return &Rand{state: z}
}

// Seed resets the generator state.
func (r *Rand) Seed(seed uint64) {
	if seed == 0 {
		seed = 0x853c49e6748fea9b
	}
	r.state = seed
}

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Uint32 returns the high 32 bits of the next value.
func (r *Rand) Uint32() uint32 {
	return uint32(r.Uint64() >> 32)
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a value in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Percent returns true with probability pct/100. Values outside [0, 100]
// clamp to always-false / always-true.
func (r *Rand) Percent(pct int) bool {
	if pct <= 0 {
		return false
	}
	if pct >= 100 {
		return true
	}
	return r.Intn(100) < pct
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
