package rng

import "math"

// Zipf draws ranks in [0, n) with a Zipfian (power-law) popularity skew:
// rank 0 is the most popular, rank 1 the second most, and so on. This is
// the standard service-workload key distribution (YCSB's "zipfian"
// generator, after Gray et al., "Quickly generating billion-record
// synthetic databases", SIGMOD 1994).
//
// A Zipf value is immutable after New: all mutable state lives in the
// *Rand passed to Next, so one Zipf can be shared by any number of
// workers, each drawing through its own generator. The O(n) harmonic-sum
// precomputation happens once, in NewZipf.
type Zipf struct {
	n     uint64
	theta float64
	// Gray et al. constants: alpha = 1/(1-theta), zetan = H_{n,theta}
	// (the generalized harmonic number), eta the interpolation factor.
	alpha, zetan, eta float64
	// half is 1 + 0.5^theta, the cumulative weight threshold of rank 1.
	half float64
}

// NewZipf builds a Zipfian distribution over [0, n) with skew parameter
// theta in [0, 1). theta = 0 degenerates to uniform; the classic "zipfian"
// skew is theta = 0.99 (YCSB's default), where ~10% of the ranks receive
// ~90% of the draws. It panics if n == 0 or theta is outside [0, 1).
func NewZipf(n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("rng: NewZipf with zero n")
	}
	if theta < 0 || theta >= 1 {
		panic("rng: NewZipf theta must be in [0, 1)")
	}
	z := &Zipf{n: n, theta: theta}
	zeta := func(m uint64) float64 {
		s := 0.0
		for i := uint64(1); i <= m; i++ {
			s += 1 / math.Pow(float64(i), theta)
		}
		return s
	}
	z.zetan = zeta(n)
	zeta2 := z.zetan
	if n > 2 {
		zeta2 = zeta(2)
	}
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/z.zetan)
	z.half = 1 + math.Pow(0.5, theta)
	return z
}

// N returns the size of the rank domain.
func (z *Zipf) N() uint64 { return z.n }

// Theta returns the skew parameter.
func (z *Zipf) Theta() float64 { return z.theta }

// Next draws the next rank in [0, n) using r as the entropy source.
func (z *Zipf) Next(r *Rand) uint64 {
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < z.half {
		return 1
	}
	v := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}
