package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedResets(t *testing.T) {
	r := New(7)
	first := r.Uint64()
	r.Uint64()
	r.Seed(7)
	if got := r.Uint64(); got != first {
		t.Errorf("after reseed first draw = %d, want %d", got, first)
	}
}

func TestZeroSeedIsValid(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced a stuck stream")
	}
}

func TestThreadStreamsDiffer(t *testing.T) {
	r0, r1 := NewThread(42, 0), NewThread(42, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if r0.Uint64() == r1.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("thread streams nearly identical: %d/100 equal", same)
	}
}

func TestThreadStreamsDeterministic(t *testing.T) {
	a, b := NewThread(42, 3), NewThread(42, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("thread stream not reproducible")
		}
	}
}

func TestIntnBoundsQuick(t *testing.T) {
	r := New(1)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nBoundsQuick(t *testing.T) {
	r := New(1)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	r := New(1)
	for _, n := range []int{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			r.Intn(n)
		}()
	}
}

func TestPercentEdges(t *testing.T) {
	r := New(1)
	for i := 0; i < 50; i++ {
		if r.Percent(0) {
			t.Fatal("Percent(0) returned true")
		}
		if !r.Percent(100) {
			t.Fatal("Percent(100) returned false")
		}
		if r.Percent(-10) {
			t.Fatal("Percent(-10) returned true")
		}
		if !r.Percent(200) {
			t.Fatal("Percent(200) returned false")
		}
	}
}

func TestPercentRoughDistribution(t *testing.T) {
	r := New(99)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Percent(20) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.18 || frac > 0.22 {
		t.Errorf("Percent(20) rate = %.3f, want ~0.20", frac)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestUint32NotConstant(t *testing.T) {
	r := New(5)
	seen := map[uint32]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint32()] = true
	}
	if len(seen) < 90 {
		t.Errorf("Uint32 diversity too low: %d/100 distinct", len(seen))
	}
}
