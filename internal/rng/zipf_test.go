package rng

import (
	"math"
	"testing"
)

func TestZipfBounds(t *testing.T) {
	for _, theta := range []float64{0, 0.5, 0.99} {
		z := NewZipf(100, theta)
		r := New(7)
		for i := 0; i < 10000; i++ {
			if v := z.Next(r); v >= 100 {
				t.Fatalf("theta=%v: rank %d out of [0,100)", theta, v)
			}
		}
	}
}

func TestZipfSkewOrdersRanks(t *testing.T) {
	const n, draws = 64, 200000
	z := NewZipf(n, 0.9)
	r := New(11)
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[z.Next(r)]++
	}
	if counts[0] <= counts[n/2] || counts[0] <= counts[n-1] {
		t.Fatalf("rank 0 (%d draws) not hotter than mid (%d) / tail (%d)",
			counts[0], counts[n/2], counts[n-1])
	}
	// With theta=0.9 over 64 ranks, the top rank alone takes 1/zeta_n of
	// the mass, about 17%; uniform would give it 1/64 ~ 1.6%.
	if frac := float64(counts[0]) / draws; frac < 0.12 {
		t.Fatalf("rank 0 got %.3f of draws; expected heavy skew", frac)
	}
}

func TestZipfThetaZeroIsRoughlyUniform(t *testing.T) {
	const n, draws = 16, 160000
	z := NewZipf(n, 0)
	r := New(3)
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[z.Next(r)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.15 {
			t.Fatalf("theta=0: rank %d count %d deviates from uniform %v", i, c, want)
		}
	}
}

func TestZipfSmallDomains(t *testing.T) {
	for _, n := range []uint64{1, 2, 3} {
		z := NewZipf(n, 0.5)
		r := New(5)
		for i := 0; i < 1000; i++ {
			if v := z.Next(r); v >= n {
				t.Fatalf("n=%d: rank %d out of range", n, v)
			}
		}
	}
}
