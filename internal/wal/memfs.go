package wal

import (
	"errors"
	"fmt"
	"os"
	"path"
	"sort"
	"strings"
	"sync"
)

// Injected-fault sentinels returned by a MemFS configured to fail.
var (
	// ErrInjectedWrite is returned by writes at and after the configured
	// failure point.
	ErrInjectedWrite = errors.New("wal: injected write failure")
	// ErrInjectedSync is returned by syncs at and after the configured
	// failure point.
	ErrInjectedSync = errors.New("wal: injected sync failure")
	// ErrCrashed is returned by every operation after CrashAtWrite fired:
	// the simulated process is dead and must "reboot" via Crash().
	ErrCrashed = errors.New("wal: filesystem crashed")
)

// MemFS is a deterministic in-memory FS with fault injection, built for
// crash-recovery tests:
//
//   - Every file tracks its durable prefix (bytes covered by the last
//     Sync) separately from its live contents. Crash(keep) rewinds each
//     file to that durable prefix plus at most keep torn bytes — the
//     machine-restart view — and clears any armed fault.
//   - FailWriteAt/FailSyncAt(n) make the nth write/sync (1-based, counted
//     across all files) and every later one return an error, modelling a
//     disk that goes bad: this is how tests drive the log's sticky
//     degraded mode.
//   - CrashAtWrite(n) makes the nth write persist only a prefix of its
//     bytes and then fails every subsequent operation with ErrCrashed,
//     modelling kill -9 at an arbitrary instant; sweeping n across a
//     workload visits every crash position.
//
// Simplification, documented on purpose: metadata operations (Create,
// Remove, Rename, MkdirAll) are durable immediately, as if the directory
// were fsynced after each. The WAL still calls SyncDir so the real-OS
// path is correct; MemFS just cannot lose a rename.
type MemFS struct {
	mu    sync.Mutex
	dirs  map[string]bool
	files map[string]*memFile

	writes      int
	syncs       int
	failWriteAt int // 1-based write ordinal; 0 = disarmed
	failSyncAt  int // 1-based sync ordinal; 0 = disarmed
	crashAt     int // 1-based write ordinal; 0 = disarmed
	crashed     bool
}

type memFile struct {
	data      []byte
	syncedLen int
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{dirs: map[string]bool{".": true}, files: map[string]*memFile{}}
}

// FailWriteAt arms the write-failure fault: the nth write from now
// (1-based, across all files) and all later writes fail.
func (m *MemFS) FailWriteAt(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failWriteAt = m.writes + n
}

// FailSyncAt arms the sync-failure fault: the nth Sync from now (1-based,
// across all files) and all later syncs fail.
func (m *MemFS) FailSyncAt(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failSyncAt = m.syncs + n
}

// CrashAtWrite arms the crash fault: the nth write from now persists only
// a prefix of its bytes and every operation afterwards returns ErrCrashed
// until Crash() reboots the filesystem.
func (m *MemFS) CrashAtWrite(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashAt = m.writes + n
}

// Crash simulates a machine restart: every file rewinds to its durable
// prefix plus at most keepUnsyncedBytes of torn tail, faults are
// disarmed, and the filesystem is usable again. Open handles from before
// the crash must not be reused.
func (m *MemFS) Crash(keepUnsyncedBytes int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range m.files {
		keep := f.syncedLen
		if extra := len(f.data) - f.syncedLen; extra > 0 {
			if extra > keepUnsyncedBytes {
				extra = keepUnsyncedBytes
			}
			keep += extra
		}
		f.data = f.data[:keep]
		f.syncedLen = keep
	}
	m.crashed = false
	m.failWriteAt = 0
	m.failSyncAt = 0
	m.crashAt = 0
}

// Writes reports the number of write calls observed so far; tests use it
// to size CrashAtWrite sweeps.
func (m *MemFS) Writes() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.writes
}

func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	dir = path.Clean(dir)
	for dir != "." && dir != "/" {
		m.dirs[dir] = true
		dir = path.Dir(dir)
	}
	return nil
}

func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	dir = path.Clean(dir)
	if !m.dirs[dir] {
		return nil, &os.PathError{Op: "readdir", Path: dir, Err: os.ErrNotExist}
	}
	var names []string
	prefix := dir + "/"
	for p := range m.files {
		if strings.HasPrefix(p, prefix) && !strings.Contains(p[len(prefix):], "/") {
			names = append(names, p[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) ReadFile(p string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	f, ok := m.files[path.Clean(p)]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: p, Err: os.ErrNotExist}
	}
	out := make([]byte, len(f.data))
	copy(out, f.data)
	return out, nil
}

func (m *MemFS) Create(p string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	p = path.Clean(p)
	if !m.dirs[path.Dir(p)] {
		return nil, &os.PathError{Op: "create", Path: p, Err: os.ErrNotExist}
	}
	m.files[p] = &memFile{}
	return &memHandle{fs: m, path: p}, nil
}

func (m *MemFS) Remove(p string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	p = path.Clean(p)
	if _, ok := m.files[p]; !ok {
		return &os.PathError{Op: "remove", Path: p, Err: os.ErrNotExist}
	}
	delete(m.files, p)
	return nil
}

func (m *MemFS) Rename(oldPath, newPath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	oldPath, newPath = path.Clean(oldPath), path.Clean(newPath)
	f, ok := m.files[oldPath]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldPath, Err: os.ErrNotExist}
	}
	delete(m.files, oldPath)
	m.files[newPath] = f
	return nil
}

func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	m.syncs++
	if m.failSyncAt != 0 && m.syncs >= m.failSyncAt {
		return fmt.Errorf("syncdir %s: %w", dir, ErrInjectedSync)
	}
	return nil
}

// memHandle is an open MemFS file.
type memHandle struct {
	fs     *MemFS
	path   string
	closed bool
}

func (h *memHandle) Write(b []byte) (int, error) {
	m := h.fs
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return 0, ErrCrashed
	}
	if h.closed {
		return 0, os.ErrClosed
	}
	f, ok := m.files[h.path]
	if !ok {
		// Removed or renamed away while open; MemFS keeps it simple and
		// reports the file gone rather than modelling orphaned inodes.
		return 0, &os.PathError{Op: "write", Path: h.path, Err: os.ErrNotExist}
	}
	m.writes++
	if m.crashAt != 0 && m.writes >= m.crashAt {
		// Tear the write: persist only the first half of this buffer,
		// then die. The torn bytes sit above syncedLen, so a subsequent
		// Crash(0) discards them and Crash(n>0) keeps a prefix — both
		// shapes the torn-tail parser must survive.
		f.data = append(f.data, b[:len(b)/2]...)
		m.crashed = true
		return 0, fmt.Errorf("write %s: %w", h.path, ErrCrashed)
	}
	if m.failWriteAt != 0 && m.writes >= m.failWriteAt {
		return 0, fmt.Errorf("write %s: %w", h.path, ErrInjectedWrite)
	}
	f.data = append(f.data, b...)
	return len(b), nil
}

func (h *memHandle) Sync() error {
	m := h.fs
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	if h.closed {
		return os.ErrClosed
	}
	f, ok := m.files[h.path]
	if !ok {
		return &os.PathError{Op: "sync", Path: h.path, Err: os.ErrNotExist}
	}
	m.syncs++
	if m.failSyncAt != 0 && m.syncs >= m.failSyncAt {
		return fmt.Errorf("sync %s: %w", h.path, ErrInjectedSync)
	}
	f.syncedLen = len(f.data)
	return nil
}

func (h *memHandle) Close() error {
	m := h.fs
	m.mu.Lock()
	defer m.mu.Unlock()
	h.closed = true
	return nil
}
