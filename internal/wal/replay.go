package wal

import (
	"fmt"
	"path"
	"sort"

	"tinystm/internal/txn"
)

// ReplayStats describes what recovery found and how it was handled.
type ReplayStats struct {
	// CheckpointFound reports whether a valid checkpoint seeded the
	// state; CheckpointIndex and CheckpointPairs describe it.
	CheckpointFound bool
	CheckpointIndex uint64
	CheckpointPairs int
	// CheckpointsSkipped counts corrupt checkpoint files passed over on
	// the way to a valid one — always zero in a healthy deployment.
	CheckpointsSkipped int
	// Segments, Records and Ops count what was replayed on top of the
	// checkpoint.
	Segments int
	Records  int
	Ops      int
	// TornBytes is the length of the unparseable tail dropped from the
	// final segment — the bytes a crash caught between write and fsync.
	// Only ever non-zero for the final segment; damage anywhere else
	// fails Replay with a CorruptError instead.
	TornBytes int
	// MaxCheckpointIndex is the highest checkpoint index present on disk
	// (valid or not); the next checkpoint must be numbered above it.
	MaxCheckpointIndex uint64
}

// Replay reconstructs the key/value state from dir: newest valid
// checkpoint, then every segment in index order, records front to back,
// last write per key wins. That fold needs no (epoch, ts) reasoning
// because truncation only ever removes a prefix of segments — see the
// package comment. Returns the final state, what happened, and a
// non-nil error only for unreadable data that acked writes may be
// behind (mid-log corruption, I/O errors): the caller must fail loudly,
// not serve a hole.
//
// A missing or empty dir is a fresh boot: empty state, zero stats.
func Replay(fs FS, dir string) (map[uint64]uint64, ReplayStats, error) {
	if fs == nil {
		fs = OS
	}
	var stats ReplayStats
	if err := fs.MkdirAll(dir); err != nil {
		return nil, stats, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, stats, fmt.Errorf("wal: scan %s: %w", dir, err)
	}

	for _, name := range names {
		if i, ok := parseCkptName(name); ok && i > stats.MaxCheckpointIndex {
			stats.MaxCheckpointIndex = i
		}
	}
	state, ckptIdx, skipped, found := latestCheckpoint(fs, dir, names)
	stats.CheckpointsSkipped = skipped
	if found {
		stats.CheckpointFound = true
		stats.CheckpointIndex = ckptIdx
		stats.CheckpointPairs = len(state)
	} else {
		state = make(map[uint64]uint64)
	}

	var segs []uint64
	for _, name := range names {
		if i, ok := parseSegName(name); ok {
			segs = append(segs, i)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })

	for n, idx := range segs {
		p := path.Join(dir, segName(idx))
		data, err := fs.ReadFile(p)
		if err != nil {
			return nil, stats, fmt.Errorf("wal: read %s: %w", p, err)
		}
		last := n == len(segs)-1
		recs, torn, err := parseSegment(p, data, last)
		if err != nil {
			return nil, stats, err
		}
		stats.Segments++
		stats.TornBytes += torn
		stats.Records += len(recs)
		for i := range recs {
			for _, op := range recs[i].Ops {
				stats.Ops++
				switch op.Kind {
				case txn.RedoPut:
					state[op.Key] = op.Val
				case txn.RedoDelete:
					delete(state, op.Key)
				default:
					return nil, stats, &CorruptError{Path: p, Reason: fmt.Sprintf("unknown redo op kind %d", op.Kind)}
				}
			}
		}
	}
	return state, stats, nil
}
