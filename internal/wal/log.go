package wal

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tinystm/internal/obs"
	"tinystm/internal/txn"
)

// ErrLogClosed resolves tickets that were still staged when the log shut
// down: their records were never made durable.
var ErrLogClosed = errors.New("wal: log closed")

// Config configures a Log.
type Config struct {
	// Dir is the WAL directory (segments and checkpoints live together).
	Dir string
	// FS is the filesystem; nil means the real OS.
	FS FS
	// SegmentBytes rotates to a fresh segment once the current one grows
	// past this size. <= 0 picks a default (4 MiB).
	SegmentBytes int64
	// BatchDelay is how long the flusher dallies after waking before it
	// drains the staging stack, trading ack latency for larger batches
	// (fewer fsyncs). Zero flushes as soon as work appears.
	BatchDelay time.Duration
	// OnError, if set, is called exactly once when a write or fsync fails
	// and the log enters its sticky failed state. Called from the flusher
	// goroutine; must not block on WAL operations.
	OnError func(error)
	// FlushNs, if set, receives the duration of every write+fsync flush
	// in nanoseconds; BatchOps receives each flushed batch's record
	// count. Recorded from the flusher goroutine, off the append path.
	FlushNs  *obs.Histogram
	BatchOps *obs.Histogram
}

// Stats is a point-in-time snapshot of log counters.
type Stats struct {
	// Appends counts records staged; Batches counts flusher drains that
	// reached disk; Syncs counts fsyncs (one per batch plus segment
	// headers); Rotations counts segment rollovers.
	Appends   uint64
	Batches   uint64
	Syncs     uint64
	Rotations uint64
	// Segment is the index of the segment currently being written.
	Segment uint64
	// Failed reports the sticky failed state.
	Failed bool
}

// Pending is the durability ticket for one Append: it resolves once the
// record's batch is fsynced (nil error) or the log fails. It satisfies
// txn.DurableTicket so the STM redo hook can return it opaquely.
type Pending struct {
	rec  Record
	next *Pending
	done chan struct{}
	err  error
}

// Wait blocks until the record is durable and returns the outcome.
func (p *Pending) Wait() error {
	<-p.done
	return p.err
}

// Log is the write-ahead log: a lock-free staging stack drained by one
// flusher goroutine into checksummed, length-prefixed, fsynced segments.
type Log struct {
	cfg  Config
	head atomic.Pointer[Pending]
	wake chan struct{}

	// mu guards the current segment (file handle, index, size) and the
	// sticky failure. The flusher holds it across a batch; Rotate and
	// DropSegmentsBefore take it from checkpointer context.
	mu       sync.Mutex
	cur      File
	curIndex uint64
	curSize  int64
	failErr  error

	failed    atomic.Bool
	errorOnce sync.Once

	closing   chan struct{}
	closeOnce sync.Once
	flusherWG sync.WaitGroup

	appends   atomic.Uint64
	batches   atomic.Uint64
	syncs     atomic.Uint64
	rotations atomic.Uint64
}

// Open creates (or reopens) the log in cfg.Dir and starts the flusher.
// Existing segments are never appended to: writing always begins on a
// fresh segment numbered after the highest on disk, so every index is
// used by at most one process lifetime. Callers recover existing state
// with Replay before Open and truncate the old era once a boot
// checkpoint is durable.
func Open(cfg Config) (*Log, error) {
	if cfg.FS == nil {
		cfg.FS = OS
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = 4 << 20
	}
	if err := cfg.FS.MkdirAll(cfg.Dir); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", cfg.Dir, err)
	}
	names, err := cfg.FS.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("wal: scan %s: %w", cfg.Dir, err)
	}
	var maxSeg uint64
	for _, name := range names {
		if idx, ok := parseSegName(name); ok && idx > maxSeg {
			maxSeg = idx
		}
	}
	l := &Log{
		cfg:     cfg,
		wake:    make(chan struct{}, 1),
		closing: make(chan struct{}),
	}
	l.mu.Lock()
	err = l.openSegmentLocked(maxSeg + 1)
	l.mu.Unlock()
	if err != nil {
		return nil, err
	}
	l.flusherWG.Add(1)
	go l.run()
	return l, nil
}

// Append stages one committed transaction's redo records and returns its
// durability ticket. Safe for any number of concurrent callers; called
// from inside STM commit publication, so it must not block. The ops
// slice is copied (the transaction descriptor reuses it).
func (l *Log) Append(epoch, ts uint64, ops []txn.RedoOp) *Pending {
	p := &Pending{
		rec:  Record{Epoch: epoch, TS: ts, Ops: append([]txn.RedoOp(nil), ops...)},
		done: make(chan struct{}),
	}
	l.push(p)
	l.appends.Add(1)
	return p
}

func (l *Log) push(p *Pending) {
	for {
		old := l.head.Load()
		p.next = old
		if l.head.CompareAndSwap(old, p) {
			break
		}
	}
	select {
	case l.wake <- struct{}{}:
	default:
	}
}

// Flush blocks until everything staged before the call is durable. It
// works by staging a zero-op barrier ticket: the flusher resolves tickets
// strictly after fsyncing their batch, and the barrier's batch includes
// all earlier stages.
func (l *Log) Flush() error {
	if err := l.FailedErr(); err != nil {
		return err
	}
	p := &Pending{done: make(chan struct{})}
	l.push(p)
	return p.Wait()
}

// Rotate flushes, seals the current segment and starts a new one,
// returning the new segment's index. Everything staged before the call
// lives in segments below the returned index — the checkpointer calls
// Rotate, snapshots the store (which by then reflects every one of those
// records), writes the checkpoint, and hands the returned index to
// DropSegmentsBefore.
func (l *Log) Rotate() (uint64, error) {
	if err := l.Flush(); err != nil {
		return 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failErr != nil {
		return 0, l.failErr
	}
	if err := l.rotateLocked(); err != nil {
		l.failLocked(err)
		return 0, err
	}
	return l.curIndex, nil
}

// DropSegmentsBefore removes every segment with index < idx. Only ever
// called with an index obtained from Rotate (or Open) after a checkpoint
// covering the dropped prefix is durable: truncation must remove a
// prefix of segments, never a middle, or replay's last-record-wins fold
// stops being valid.
func (l *Log) DropSegmentsBefore(idx uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	names, err := l.cfg.FS.ReadDir(l.cfg.Dir)
	if err != nil {
		return err
	}
	removed := false
	for _, name := range names {
		if i, ok := parseSegName(name); ok && i < idx {
			if err := l.cfg.FS.Remove(path.Join(l.cfg.Dir, name)); err != nil {
				return err
			}
			removed = true
		}
	}
	if removed {
		return l.cfg.FS.SyncDir(l.cfg.Dir)
	}
	return nil
}

// FailedErr returns the sticky failure, or nil while the log is healthy.
func (l *Log) FailedErr() error {
	if !l.failed.Load() {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failErr
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	seg := l.curIndex
	l.mu.Unlock()
	return Stats{
		Appends:   l.appends.Load(),
		Batches:   l.batches.Load(),
		Syncs:     l.syncs.Load(),
		Rotations: l.rotations.Load(),
		Segment:   seg,
		Failed:    l.failed.Load(),
	}
}

// Close stops the flusher after a final drain and closes the segment.
// The caller must have stopped producing appends (detach the redo hook
// first); any ticket staged during shutdown resolves with ErrLogClosed.
func (l *Log) Close() error {
	l.closeOnce.Do(func() { close(l.closing) })
	l.flusherWG.Wait()
	// The flusher is gone; resolve any stragglers that raced the final
	// drain so no waiter hangs.
	for p := l.head.Swap(nil); p != nil; p = p.next {
		p.err = ErrLogClosed
		close(p.done)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cur != nil {
		err := l.cur.Close()
		l.cur = nil
		return err
	}
	return nil
}

// run is the flusher: wake, optionally dally to grow the batch, drain,
// write one frame, fsync once, resolve tickets, maybe rotate.
func (l *Log) run() {
	defer l.flusherWG.Done()
	for {
		select {
		case <-l.wake:
			if l.cfg.BatchDelay > 0 {
				time.Sleep(l.cfg.BatchDelay)
			}
			l.commitBatch(l.takeBatch())
		case <-l.closing:
			// Final drain: whatever is staged either gets made durable
			// (healthy log) or resolved with the sticky error.
			l.commitBatch(l.takeBatch())
			return
		}
	}
}

// takeBatch swaps the staging stack empty and returns the tickets in
// append order. The Treiber stack yields LIFO, so reverse; then a stable
// sort by (epoch, ts) makes each frame — and therefore each segment —
// timestamp-ordered. Per-key correctness never depends on the sort:
// conflicting commits serialize through their stripe lock, so append
// order already agrees with per-key timestamp order and the stable sort
// preserves it; the sort only tidies the interleaving of unrelated keys.
func (l *Log) takeBatch() []*Pending {
	top := l.head.Swap(nil)
	if top == nil {
		return nil
	}
	var batch []*Pending
	for p := top; p != nil; p = p.next {
		batch = append(batch, p)
	}
	for i, j := 0, len(batch)-1; i < j; i, j = i+1, j-1 {
		batch[i], batch[j] = batch[j], batch[i]
	}
	sort.SliceStable(batch, func(i, j int) bool {
		a, b := &batch[i].rec, &batch[j].rec
		if a.Epoch != b.Epoch {
			return a.Epoch < b.Epoch
		}
		return a.TS < b.TS
	})
	return batch
}

func (l *Log) commitBatch(batch []*Pending) {
	if len(batch) == 0 {
		return
	}
	l.mu.Lock()
	err := l.failErr
	if err == nil {
		recs := make([]Record, 0, len(batch))
		for _, p := range batch {
			if len(p.rec.Ops) > 0 {
				recs = append(recs, p.rec)
			}
		}
		if len(recs) > 0 {
			t0 := time.Now()
			err = l.writeAndSyncLocked(encodeFrame(recs))
			if l.cfg.FlushNs != nil {
				l.cfg.FlushNs.Record(uint64(time.Since(t0)))
			}
			if l.cfg.BatchOps != nil {
				l.cfg.BatchOps.Record(uint64(len(recs)))
			}
		}
		if err == nil {
			l.batches.Add(1)
			if l.curSize > l.cfg.SegmentBytes {
				// Rotation failure poisons the log but not this batch:
				// its bytes are already durable in the sealed segment.
				if rerr := l.rotateLocked(); rerr != nil {
					l.failLocked(rerr)
				}
			}
		} else {
			l.failLocked(err)
		}
	}
	l.mu.Unlock()
	for _, p := range batch {
		p.err = err
		close(p.done)
	}
}

func (l *Log) writeAndSyncLocked(frame []byte) error {
	if _, err := l.cur.Write(frame); err != nil {
		return fmt.Errorf("wal: write segment %d: %w", l.curIndex, err)
	}
	l.curSize += int64(len(frame))
	l.syncs.Add(1)
	if err := l.cur.Sync(); err != nil {
		return fmt.Errorf("wal: fsync segment %d: %w", l.curIndex, err)
	}
	return nil
}

// failLocked enters the sticky failed state. Every in-flight and future
// ticket resolves with the error; OnError fires once so the server can
// flip to degraded read-only mode.
func (l *Log) failLocked(err error) {
	if l.failErr != nil {
		return
	}
	l.failErr = err
	l.failed.Store(true)
	if l.cfg.OnError != nil {
		l.errorOnce.Do(func() { l.cfg.OnError(err) })
	}
}

// rotateLocked seals the current segment and opens the next index.
func (l *Log) rotateLocked() error {
	if err := l.cur.Close(); err != nil {
		return fmt.Errorf("wal: close segment %d: %w", l.curIndex, err)
	}
	l.cur = nil
	if err := l.openSegmentLocked(l.curIndex + 1); err != nil {
		return err
	}
	l.rotations.Add(1)
	return nil
}

// openSegmentLocked creates segment idx and makes its header — and its
// directory entry — durable before any frame can land in it, so a
// segment that exists at recovery time always starts with a parseable
// header unless the crash tore the header write itself (a torn tail in
// the final segment, which the parser tolerates).
func (l *Log) openSegmentLocked(idx uint64) error {
	p := path.Join(l.cfg.Dir, segName(idx))
	f, err := l.cfg.FS.Create(p)
	if err != nil {
		return fmt.Errorf("wal: create %s: %w", p, err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return fmt.Errorf("wal: write header %s: %w", p, err)
	}
	l.syncs.Add(1)
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: fsync header %s: %w", p, err)
	}
	if err := l.cfg.FS.SyncDir(l.cfg.Dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: fsync dir %s: %w", l.cfg.Dir, err)
	}
	l.cur = f
	l.curIndex = idx
	l.curSize = int64(len(segMagic))
	return nil
}

func segName(idx uint64) string { return fmt.Sprintf("wal-%020d.seg", idx) }

func parseSegName(name string) (uint64, bool) {
	return parseIndexedName(name, "wal-", ".seg")
}

func parseIndexedName(name, prefix, suffix string) (uint64, bool) {
	if len(name) != len(prefix)+20+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return 0, false
	}
	idx, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return idx, true
}
