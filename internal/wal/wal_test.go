package wal

import (
	"errors"
	"path"
	"sync/atomic"
	"testing"

	"tinystm/internal/txn"
)

func put(k, v uint64) txn.RedoOp { return txn.RedoOp{Kind: txn.RedoPut, Key: k, Val: v} }
func del(k uint64) txn.RedoOp    { return txn.RedoOp{Kind: txn.RedoDelete, Key: k} }
func openTest(t *testing.T, fs FS, dir string, cfg Config) *Log {
	t.Helper()
	cfg.Dir = dir
	cfg.FS = fs
	l, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func replayTest(t *testing.T, fs FS, dir string) (map[uint64]uint64, ReplayStats) {
	t.Helper()
	state, stats, err := Replay(fs, dir)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return state, stats
}

func TestFrameRoundTrip(t *testing.T) {
	recs := []Record{
		{Epoch: 1, TS: 10, Ops: []txn.RedoOp{put(1, 100), del(2)}},
		{Epoch: 1, TS: 11, Ops: []txn.RedoOp{put(3, 300)}},
		{Epoch: 2, TS: 1, Ops: nil},
	}
	seg := append([]byte(segMagic), encodeFrame(recs[:2])...)
	seg = append(seg, encodeFrame(recs[2:])...)
	got, torn, err := parseSegment("seg", seg, true)
	if err != nil || torn != 0 {
		t.Fatalf("parseSegment: torn=%d err=%v", torn, err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d records, want 3", len(got))
	}
	for i := range recs {
		if got[i].Epoch != recs[i].Epoch || got[i].TS != recs[i].TS || len(got[i].Ops) != len(recs[i].Ops) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], recs[i])
		}
		for j := range recs[i].Ops {
			if got[i].Ops[j] != recs[i].Ops[j] {
				t.Fatalf("record %d op %d mismatch", i, j)
			}
		}
	}
}

func TestAppendFlushReplay(t *testing.T) {
	fs := NewMemFS()
	l := openTest(t, fs, "wal", Config{})
	l.Append(0, 1, []txn.RedoOp{put(1, 10)})
	l.Append(0, 2, []txn.RedoOp{put(2, 20), put(1, 11)})
	l.Append(0, 3, []txn.RedoOp{del(2)})
	if err := l.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	state, stats := replayTest(t, fs, "wal")
	want := map[uint64]uint64{1: 11}
	if len(state) != len(want) || state[1] != 11 {
		t.Fatalf("state = %v, want %v", state, want)
	}
	if stats.Records != 3 || stats.Ops != 4 || stats.TornBytes != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

// A resolved ticket must mean "on stable storage": after a crash that
// discards everything unsynced, every acked record is still there.
func TestAckImpliesDurable(t *testing.T) {
	fs := NewMemFS()
	l := openTest(t, fs, "wal", Config{})
	if err := l.Append(0, 1, []txn.RedoOp{put(7, 70)}).Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	fs.Crash(0) // drop all unsynced bytes
	state, _ := replayTest(t, fs, "wal")
	if state[7] != 70 {
		t.Fatalf("acked record lost across crash: state=%v", state)
	}
}

func TestRotationAndFreshSegmentOnReopen(t *testing.T) {
	fs := NewMemFS()
	l := openTest(t, fs, "wal", Config{SegmentBytes: 64})
	for i := uint64(0); i < 20; i++ {
		if err := l.Append(0, i+1, []txn.RedoOp{put(i, i*10)}).Wait(); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if st := l.Stats(); st.Rotations == 0 {
		t.Fatalf("expected rotations, got %+v", st)
	}
	firstEra := l.Stats().Segment
	l.Close()

	state, stats := replayTest(t, fs, "wal")
	if len(state) != 20 {
		t.Fatalf("replayed %d keys, want 20 (stats %+v)", len(state), stats)
	}
	if stats.Segments < 2 {
		t.Fatalf("expected multiple segments, got %d", stats.Segments)
	}

	// Reopen: writing must continue on a strictly fresh index.
	l2 := openTest(t, fs, "wal", Config{})
	defer l2.Close()
	if l2.Stats().Segment <= firstEra {
		t.Fatalf("reopened segment %d not above prior era %d", l2.Stats().Segment, firstEra)
	}
}

func TestTornTailTolerated(t *testing.T) {
	fs := NewMemFS()
	l := openTest(t, fs, "wal", Config{})
	if err := l.Append(0, 1, []txn.RedoOp{put(1, 10)}).Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	// The next frame write tears mid-buffer and the "process" dies.
	fs.CrashAtWrite(1)
	if err := l.Append(0, 2, []txn.RedoOp{put(2, 20)}).Wait(); err == nil {
		t.Fatal("expected append to fail at crash point")
	}
	fs.Crash(3) // restart, keeping 3 torn bytes past the durable prefix
	state, stats := replayTest(t, fs, "wal")
	if state[1] != 10 {
		t.Fatalf("acked record lost: %v", state)
	}
	if _, ok := state[2]; ok {
		t.Fatalf("unacked torn record replayed: %v", state)
	}
	if stats.TornBytes == 0 {
		t.Fatal("expected TornBytes > 0")
	}
}

// corruptFile flips one byte of a MemFS file in place via the FS surface.
func corruptFile(t *testing.T, fs *MemFS, p string, off int) {
	t.Helper()
	data, err := fs.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if off < 0 {
		off = len(data) + off
	}
	data[off] ^= 0xFF
	f, err := fs.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

func TestMidLogCorruptionIsLoud(t *testing.T) {
	fs := NewMemFS()
	l := openTest(t, fs, "wal", Config{})
	if err := l.Append(0, 1, []txn.RedoOp{put(1, 10)}).Wait(); err != nil {
		t.Fatal(err)
	}
	firstSeg := segName(l.Stats().Segment)
	if _, err := l.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if err := l.Append(0, 2, []txn.RedoOp{put(2, 20)}).Wait(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Flip a payload byte in the non-final segment: CRC mismatch on a
	// fully-present frame must fail recovery, not be skipped.
	corruptFile(t, fs, path.Join("wal", firstSeg), -2)
	_, _, err := Replay(fs, "wal")
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("Replay error = %v, want CorruptError", err)
	}
}

func TestCorruptFrameInFinalSegmentIsLoud(t *testing.T) {
	fs := NewMemFS()
	l := openTest(t, fs, "wal", Config{})
	if err := l.Append(0, 1, []txn.RedoOp{put(1, 10)}).Wait(); err != nil {
		t.Fatal(err)
	}
	seg := segName(l.Stats().Segment)
	l.Close()
	// A fully-present frame with a bad checksum is corruption even in the
	// final segment: kill -9 leaves short files, it does not rewrite bytes.
	corruptFile(t, fs, path.Join("wal", seg), -2)
	if _, _, err := Replay(fs, "wal"); err == nil {
		t.Fatal("expected corruption error")
	}
}

func TestCheckpointRoundTripAndFallback(t *testing.T) {
	fs := NewMemFS()
	if err := fs.MkdirAll("wal"); err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpoint(fs, "wal", 1, 0, 5, map[uint64]uint64{1: 10, 2: 20}); err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpoint(fs, "wal", 2, 0, 9, map[uint64]uint64{1: 11}); err != nil {
		t.Fatal(err)
	}
	state, stats := replayTest(t, fs, "wal")
	if !stats.CheckpointFound || stats.CheckpointIndex != 2 || state[1] != 11 || len(state) != 1 {
		t.Fatalf("state=%v stats=%+v", state, stats)
	}

	// Corrupt the newest: recovery falls back to the older one and says so.
	corruptFile(t, fs, path.Join("wal", ckptName(2)), len(ckptMagic)+2)
	state, stats = replayTest(t, fs, "wal")
	if stats.CheckpointIndex != 1 || stats.CheckpointsSkipped != 1 || state[2] != 20 {
		t.Fatalf("fallback: state=%v stats=%+v", state, stats)
	}

	if err := RemoveCheckpointsBefore(fs, "wal", 2); err != nil {
		t.Fatal(err)
	}
	names, _ := fs.ReadDir("wal")
	for _, n := range names {
		if n == ckptName(1) {
			t.Fatal("old checkpoint not removed")
		}
	}
}

// The checkpoint-then-truncate protocol: rotate, checkpoint the state,
// drop the sealed prefix. Replay over {checkpoint + surviving segments}
// must equal the state replayed from everything.
func TestCheckpointThenTruncate(t *testing.T) {
	fs := NewMemFS()
	l := openTest(t, fs, "wal", Config{})
	expect := map[uint64]uint64{}
	app := func(ts, k, v uint64) {
		if err := l.Append(0, ts, []txn.RedoOp{put(k, v)}).Wait(); err != nil {
			t.Fatalf("append: %v", err)
		}
		expect[k] = v
	}
	app(1, 1, 10)
	app(2, 2, 20)

	sealed, err := l.Rotate()
	if err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	snap := make(map[uint64]uint64, len(expect))
	for k, v := range expect {
		snap[k] = v
	}
	if err := WriteCheckpoint(fs, "wal", 1, 0, 2, snap); err != nil {
		t.Fatal(err)
	}
	if err := l.DropSegmentsBefore(sealed); err != nil {
		t.Fatal(err)
	}

	app(3, 1, 12) // post-checkpoint tail
	app(4, 3, 30)
	l.Close()

	state, stats := replayTest(t, fs, "wal")
	if !stats.CheckpointFound {
		t.Fatalf("no checkpoint found: %+v", stats)
	}
	if len(state) != len(expect) {
		t.Fatalf("state=%v want=%v", state, expect)
	}
	for k, v := range expect {
		if state[k] != v {
			t.Fatalf("key %d = %d, want %d", k, state[k], v)
		}
	}
}

func TestSyncFailureIsStickyAndFiresOnErrorOnce(t *testing.T) {
	fs := NewMemFS()
	var fired atomic.Uint64
	l := openTest(t, fs, "wal", Config{OnError: func(error) { fired.Add(1) }})
	fs.FailSyncAt(1)
	if err := l.Append(0, 1, []txn.RedoOp{put(1, 10)}).Wait(); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("first append err = %v, want injected sync failure", err)
	}
	// Sticky: later appends fail without touching the disk again, Flush
	// reports the failure, stats say failed.
	if err := l.Append(0, 2, []txn.RedoOp{put(2, 20)}).Wait(); err == nil {
		t.Fatal("append after failure succeeded")
	}
	if err := l.Flush(); err == nil {
		t.Fatal("Flush after failure succeeded")
	}
	if !l.Stats().Failed {
		t.Fatal("stats do not report failed")
	}
	if got := fired.Load(); got != 1 {
		t.Fatalf("OnError fired %d times, want 1", got)
	}
	l.Close()
}

func TestReplayFreshDirIsEmpty(t *testing.T) {
	state, stats := replayTest(t, NewMemFS(), "nope")
	if len(state) != 0 || stats.CheckpointFound || stats.Segments != 0 {
		t.Fatalf("fresh dir: state=%v stats=%+v", state, stats)
	}
}

// The acceptance property: for EVERY possible crash position, every
// write whose ticket resolved cleanly before the crash is present after
// recovery. Sweeps CrashAtWrite across the whole workload.
func TestAckedWritesSurviveKillAtAnyPoint(t *testing.T) {
	const nOps = 25
	completed := false
	for n := 1; n < 500 && !completed; n++ {
		fs := NewMemFS()
		fs.CrashAtWrite(n)
		l, err := Open(Config{Dir: "wal", FS: fs})
		if err != nil {
			// Crashed while creating the very first segment: nothing
			// acked, nothing to check.
			fs.Crash(1)
			if state, _ := replayTest(t, fs, "wal"); len(state) != 0 {
				t.Fatalf("n=%d: state from nothing: %v", n, state)
			}
			continue
		}
		acked := map[uint64]uint64{}
		i := uint64(0)
		for ; i < nOps; i++ {
			k, v := i%7, i*100
			var op txn.RedoOp
			if i%5 == 4 {
				op = del(k)
			} else {
				op = put(k, v)
			}
			if err := l.Append(0, i+1, []txn.RedoOp{op}).Wait(); err != nil {
				break
			}
			if op.Kind == txn.RedoDelete {
				delete(acked, k)
			} else {
				acked[k] = v
			}
		}
		completed = i == nOps
		l.Close()
		fs.Crash(1) // keep one torn byte to exercise tail truncation
		state, _ := replayTest(t, fs, "wal")
		for k, v := range acked {
			got, ok := state[k]
			if !ok || got != v {
				t.Fatalf("crash at write %d: acked key %d = (%d,%v), want %d", n, k, got, ok, v)
			}
		}
		// Nothing beyond the acked prefix can have survived either: the
		// one in-flight frame was torn mid-write and must be dropped.
		if len(state) != len(acked) {
			t.Fatalf("crash at write %d: state=%v acked=%v", n, state, acked)
		}
	}
	if !completed {
		t.Fatal("sweep never ran the workload to completion; raise the bound")
	}
}
