package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path"
	"sort"
)

// Checkpoint files (ckpt-%020d.ckpt) hold one full key/value snapshot:
//
//	[8] "TSCKPT01"
//	[8] clock epoch   [8] snapshot timestamp   (informational)
//	[8] pair count
//	per pair: [8] key  [8] value   (sorted by key — deterministic bytes)
//	[4] CRC-32C of everything above
//
// A checkpoint is written to ckpt.tmp, fsynced, renamed into place, and
// the directory fsynced: it either exists whole or not at all. Old WAL
// segments are truncated only after the rename is durable, and old
// checkpoints are removed only after that, so a crash at any point
// leaves either extra segments (replay is idempotent over them) or extra
// checkpoints (recovery just picks the newest valid one).
const ckptMagic = "TSCKPT01"

const ckptTmpName = "ckpt.tmp"

func ckptName(idx uint64) string { return fmt.Sprintf("ckpt-%020d.ckpt", idx) }

func parseCkptName(name string) (uint64, bool) {
	return parseIndexedName(name, "ckpt-", ".ckpt")
}

// WriteCheckpoint durably writes snapshot pairs as checkpoint index idx.
// epoch and ts record the snapshot position for diagnostics; recovery
// never compares them (truncation discipline makes that unnecessary).
func WriteCheckpoint(fs FS, dir string, idx, epoch, ts uint64, pairs map[uint64]uint64) error {
	if fs == nil {
		fs = OS
	}
	keys := make([]uint64, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	buf := make([]byte, 0, len(ckptMagic)+24+len(pairs)*16+4)
	buf = append(buf, ckptMagic...)
	buf = le64(buf, epoch)
	buf = le64(buf, ts)
	buf = le64(buf, uint64(len(pairs)))
	for _, k := range keys {
		buf = le64(buf, k)
		buf = le64(buf, pairs[k])
	}
	buf = le32(buf, crc32.Checksum(buf, crcTable))

	tmp := path.Join(dir, ckptTmpName)
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: create checkpoint: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("wal: write checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: fsync checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: close checkpoint: %w", err)
	}
	final := path.Join(dir, ckptName(idx))
	if err := fs.Rename(tmp, final); err != nil {
		return fmt.Errorf("wal: publish checkpoint: %w", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return fmt.Errorf("wal: fsync dir after checkpoint: %w", err)
	}
	return nil
}

// loadCheckpointFile parses one checkpoint file.
func loadCheckpointFile(fs FS, p string) (map[uint64]uint64, uint64, uint64, error) {
	data, err := fs.ReadFile(p)
	if err != nil {
		return nil, 0, 0, err
	}
	if len(data) < len(ckptMagic)+24+4 {
		return nil, 0, 0, &CorruptError{Path: p, Offset: 0, Reason: "checkpoint too short"}
	}
	if string(data[:len(ckptMagic)]) != ckptMagic {
		return nil, 0, 0, &CorruptError{Path: p, Offset: 0, Reason: "bad checkpoint magic"}
	}
	body, crcBytes := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(crcBytes) {
		return nil, 0, 0, &CorruptError{Path: p, Offset: 0, Reason: "checkpoint checksum mismatch"}
	}
	off := len(ckptMagic)
	epoch := binary.LittleEndian.Uint64(body[off:])
	ts := binary.LittleEndian.Uint64(body[off+8:])
	count := binary.LittleEndian.Uint64(body[off+16:])
	off += 24
	if uint64(len(body)-off) != count*16 {
		return nil, 0, 0, &CorruptError{Path: p, Offset: off, Reason: "checkpoint pair count mismatch"}
	}
	pairs := make(map[uint64]uint64, count)
	for i := uint64(0); i < count; i++ {
		pairs[binary.LittleEndian.Uint64(body[off:])] = binary.LittleEndian.Uint64(body[off+8:])
		off += 16
	}
	return pairs, epoch, ts, nil
}

// latestCheckpoint finds the newest checkpoint in names that parses and
// checksums clean, falling back index by index. ok=false when none
// exists. A corrupt newer checkpoint is skipped, not fatal: the tmp →
// rename protocol means an interrupted writer leaves no numbered file at
// all, so a corrupt one is bit rot — and the only state we can still
// offer is the older snapshot plus whatever segments survive. The skip
// is reported through ReplayStats.CheckpointsSkipped so operators see it.
func latestCheckpoint(fs FS, dir string, names []string) (pairs map[uint64]uint64, idx uint64, skipped int, ok bool) {
	var idxs []uint64
	for _, name := range names {
		if i, o := parseCkptName(name); o {
			idxs = append(idxs, i)
		}
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] > idxs[j] })
	for _, i := range idxs {
		p, _, _, err := loadCheckpointFile(fs, path.Join(dir, ckptName(i)))
		if err != nil {
			skipped++
			continue
		}
		return p, i, skipped, true
	}
	return nil, 0, skipped, false
}

// RemoveCheckpointsBefore deletes checkpoints with index < idx and any
// leftover ckpt.tmp from an interrupted writer.
func RemoveCheckpointsBefore(fs FS, dir string, idx uint64) error {
	if fs == nil {
		fs = OS
	}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return err
	}
	removed := false
	for _, name := range names {
		if i, ok := parseCkptName(name); (ok && i < idx) || name == ckptTmpName {
			if err := fs.Remove(path.Join(dir, name)); err != nil {
				return err
			}
			removed = true
		}
	}
	if removed {
		return fs.SyncDir(dir)
	}
	return nil
}
