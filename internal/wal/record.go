package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"tinystm/internal/txn"
)

// On-disk layout.
//
// Segment files (wal-%020d.seg) open with an 8-byte magic, then carry a
// sequence of frames, one per flushed batch:
//
//	[4] "FRME"
//	[4] payload length, little-endian
//	[4] CRC-32C (Castagnoli) of the payload
//	[n] payload
//
// A payload is a record count followed by fixed-width records:
//
//	[4] record count
//	per record: [8] clock epoch  [8] commit timestamp  [4] op count
//	per op:     [1] kind (0 put, 1 delete)  [8] key  [8] value
//
// Everything little-endian. Fixed-width fields keep parsing trivially
// position-checkable: the torn-tail detector only needs "not enough bytes
// left", never a varint resynchronisation heuristic.
const (
	segMagic   = "TSWAL001"
	frameMagic = "FRME"

	frameHeaderLen = 12
	recHeaderLen   = 8 + 8 + 4
	opLen          = 1 + 8 + 8

	// maxFramePayload bounds a frame at parse time. Any length field
	// above it is corruption (or a torn length word), never a real frame:
	// the flusher cannot produce one this large before rotating.
	maxFramePayload = 1 << 28
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record is one committed transaction's redo contribution: its logical
// ops at commit position (Epoch, TS).
type Record struct {
	Epoch uint64
	TS    uint64
	Ops   []txn.RedoOp
}

// CorruptError reports non-torn damage: a frame or checkpoint that is
// fully present but fails its magic, structure, or checksum. Recovery
// treats it as fatal — unlike a torn tail, it means acked data may be
// unreadable, and silently skipping it would serve a hole.
type CorruptError struct {
	Path   string
	Offset int
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt %s at offset %d: %s", e.Path, e.Offset, e.Reason)
}

func le32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func le64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// encodeFrame serialises one batch of records into a single frame.
func encodeFrame(recs []Record) []byte {
	size := 4
	for i := range recs {
		size += recHeaderLen + len(recs[i].Ops)*opLen
	}
	payload := make([]byte, 0, size)
	payload = le32(payload, uint32(len(recs)))
	for i := range recs {
		r := &recs[i]
		payload = le64(payload, r.Epoch)
		payload = le64(payload, r.TS)
		payload = le32(payload, uint32(len(r.Ops)))
		for _, op := range r.Ops {
			payload = append(payload, byte(op.Kind))
			payload = le64(payload, op.Key)
			payload = le64(payload, op.Val)
		}
	}
	frame := make([]byte, 0, frameHeaderLen+len(payload))
	frame = append(frame, frameMagic...)
	frame = le32(frame, uint32(len(payload)))
	frame = le32(frame, crc32.Checksum(payload, crcTable))
	frame = append(frame, payload...)
	return frame
}

// decodePayload parses one checksum-verified frame payload. Structural
// errors here mean a writer bug or targeted tampering (the CRC already
// passed), so they surface as corruption.
func decodePayload(p []byte) ([]Record, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("payload shorter than record count")
	}
	n := binary.LittleEndian.Uint32(p)
	p = p[4:]
	recs := make([]Record, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(p) < recHeaderLen {
			return nil, fmt.Errorf("record %d: truncated header", i)
		}
		r := Record{
			Epoch: binary.LittleEndian.Uint64(p),
			TS:    binary.LittleEndian.Uint64(p[8:]),
		}
		nops := binary.LittleEndian.Uint32(p[16:])
		p = p[recHeaderLen:]
		if uint64(len(p)) < uint64(nops)*opLen {
			return nil, fmt.Errorf("record %d: truncated ops", i)
		}
		r.Ops = make([]txn.RedoOp, nops)
		for j := range r.Ops {
			r.Ops[j] = txn.RedoOp{
				Kind: txn.RedoKind(p[0]),
				Key:  binary.LittleEndian.Uint64(p[1:]),
				Val:  binary.LittleEndian.Uint64(p[9:]),
			}
			p = p[opLen:]
		}
		recs = append(recs, r)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%d trailing payload bytes", len(p))
	}
	return recs, nil
}

// parseSegment walks one segment file. last marks the newest segment on
// disk: only there may the data end mid-frame, the signature of a crash
// between write and fsync, in which case the good prefix is returned and
// tornBytes counts what was dropped. Everywhere else — and for any frame
// whose bytes are all present but wrong — the result is a CorruptError.
func parseSegment(path string, data []byte, last bool) (recs []Record, tornBytes int, err error) {
	torn := func(at int) ([]Record, int, error) {
		if last {
			return recs, len(data) - at, nil
		}
		return nil, 0, &CorruptError{Path: path, Offset: at, Reason: "truncated non-final segment"}
	}
	if len(data) < len(segMagic) {
		// Shorter than the file header: a crash between segment creation
		// and the header fsync (or mid-header). Nothing readable.
		return torn(0)
	}
	if string(data[:len(segMagic)]) != segMagic {
		return nil, 0, &CorruptError{Path: path, Offset: 0, Reason: "bad segment magic"}
	}
	off := len(segMagic)
	for off < len(data) {
		rem := data[off:]
		if len(rem) < frameHeaderLen {
			return torn(off)
		}
		if string(rem[:4]) != frameMagic {
			return nil, 0, &CorruptError{Path: path, Offset: off, Reason: "bad frame magic"}
		}
		plen := int(binary.LittleEndian.Uint32(rem[4:]))
		if plen > maxFramePayload {
			return nil, 0, &CorruptError{Path: path, Offset: off, Reason: "implausible frame length"}
		}
		if len(rem) < frameHeaderLen+plen {
			return torn(off)
		}
		wantCRC := binary.LittleEndian.Uint32(rem[8:])
		payload := rem[frameHeaderLen : frameHeaderLen+plen]
		if crc32.Checksum(payload, crcTable) != wantCRC {
			return nil, 0, &CorruptError{Path: path, Offset: off, Reason: "frame checksum mismatch"}
		}
		batch, derr := decodePayload(payload)
		if derr != nil {
			return nil, 0, &CorruptError{Path: path, Offset: off, Reason: derr.Error()}
		}
		recs = append(recs, batch...)
		off += frameHeaderLen + plen
	}
	return recs, 0, nil
}
