// Package wal implements a commit-timestamp-keyed write-ahead log with
// group commit, snapshot checkpoints and crash recovery for the STM
// key/value store.
//
// Committed update transactions hand their redo records (effective puts
// and deletes, tagged with the commit's clock epoch and timestamp) to
// Log.Append from inside commit publication, while the STM write locks
// are still held. That hook placement means append order agrees with
// commit-timestamp order for any two transactions touching a common key,
// so the log needs no coordination of its own: a single flusher goroutine
// drains the lock-free staging stack, sorts each batch by (epoch, ts),
// writes one checksummed frame, and fsyncs once for the whole batch.
// Callers that need ack-after-durable semantics block on the ticket
// Append returns.
//
// Recovery is a pure fold: load the newest valid checkpoint, then replay
// every remaining segment in segment-index order, applying records
// front-to-back. No (epoch, ts) filtering is required because truncation
// only ever removes a *prefix* of segments — per key, any record still on
// disk is at least as new as every record already folded into the
// checkpoint, and the last record wins. A torn tail in the final segment
// (the signature of kill -9 mid-write) is tolerated and measured;
// corruption anywhere else fails loudly.
package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the filesystem surface the WAL uses. Production code passes OS;
// tests pass a MemFS configured to tear writes or fail fsyncs at a chosen
// operation, which is how the kill-at-any-point property test drives
// recovery through every crash position deterministically.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// ReadDir returns the sorted names of dir's entries.
	ReadDir(dir string) ([]string, error)
	// ReadFile returns the full contents of the named file.
	ReadFile(path string) ([]byte, error)
	// Create creates (or truncates) the named file for writing.
	Create(path string) (File, error)
	// Remove deletes the named file.
	Remove(path string) error
	// Rename atomically renames oldPath to newPath.
	Rename(oldPath, newPath string) error
	// SyncDir fsyncs the directory itself, making renames and creates
	// within it durable.
	SyncDir(dir string) error
}

// File is a writable log file.
type File interface {
	io.Writer
	// Sync flushes written data to stable storage.
	Sync() error
	// Close closes the file.
	Close() error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) Create(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
