// Package reclaim implements quiescence-based memory reclamation for the
// STM runtimes.
//
// The paper's TinySTM frees memory "at commit time", but an unmanaged
// word-based STM cannot return a block to the allocator the instant the
// freeing transaction commits: doomed concurrent transactions that started
// before the free may still hold the block's address and read it until
// they validate and abort. The C implementation solves this with an
// epoch-based garbage collector; this package is the Go equivalent.
//
// Freed blocks are *retired* with the freeing transaction's commit
// timestamp. A retired block becomes reusable once every transaction that
// started before that timestamp has finished: transactions that started
// later observe a consistent snapshot in which the block is unreachable.
// The STM supplies the minimum start time over active transactions; the
// pool hands back every block older than it.
package reclaim

import "sync"

// Block describes one retired allocation.
type Block struct {
	Addr  uint64
	Words int
	ts    uint64
}

// Pool collects retired blocks until they are provably unreachable.
// All methods are safe for concurrent use.
type Pool struct {
	mu     sync.Mutex
	blocks []Block
}

// Retire adds a block freed by a transaction that committed at timestamp
// ts. The block's memory must remain intact until the pool returns it
// from Drain.
func (p *Pool) Retire(addr uint64, words int, ts uint64) {
	p.mu.Lock()
	p.blocks = append(p.blocks, Block{Addr: addr, Words: words, ts: ts})
	p.mu.Unlock()
}

// Len returns the number of blocks awaiting reclamation.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.blocks)
}

// Drain removes and returns every block retired at a timestamp <=
// minActiveStart (i.e. no active transaction's snapshot can reach it).
// The caller returns the blocks to its allocator.
func (p *Pool) Drain(minActiveStart uint64) []Block {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Block
	kept := p.blocks[:0]
	for _, b := range p.blocks {
		if b.ts <= minActiveStart {
			out = append(out, b)
		} else {
			kept = append(kept, b)
		}
	}
	p.blocks = kept
	return out
}

// DrainAll removes and returns every block unconditionally. Call only at a
// global quiescence point (the STM's freeze barrier), e.g. during clock
// roll-over when timestamps from the old epoch become meaningless.
func (p *Pool) DrainAll() []Block {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := p.blocks
	p.blocks = nil
	return out
}
