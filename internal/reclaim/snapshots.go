package reclaim

import (
	"sync"
	"sync/atomic"
)

// SnapshotRegistry tracks the start timestamps of in-flight snapshot
// transactions, slot-indexed by transaction descriptor. It is the
// epoch-tracking half of version-buffer trimming (package mvcc): before a
// retained version still inside an active snapshot's validity window may
// be dropped, the trimmer consults Min() — the oldest snapshot any live
// reader may hold — the same quiescence question Pool.Drain answers for
// retired memory blocks.
//
// Registration is per descriptor slot, not per goroutine: a descriptor
// runs at most one snapshot transaction at a time, and a descriptor handed
// back to its TM (Tx.Release) must detach via Leave so a recycled slot can
// never pin the horizon with a stale timestamp.
type SnapshotRegistry struct {
	// ver counts Enter/Leave transitions; callers that poll Min on a hot
	// path (version-buffer trimming) read it first and reuse their cached
	// minimum while it is unchanged, so steady-state trimming costs one
	// atomic load instead of a mutex plus a slot scan.
	ver atomic.Uint64
	// live counts registered snapshots; atomic so publishers can take
	// the "nobody is reading" fast path without the mutex.
	live  atomic.Int64
	mu    sync.Mutex
	slots []uint64 // start+1 while a snapshot is in flight; 0 when idle
}

// Version returns the registration-change counter: it advances on every
// Enter and Leave, so an unchanged Version means an unchanged Min.
func (r *SnapshotRegistry) Version() uint64 { return r.ver.Load() }

// Ensure grows the registry to cover at least n descriptor slots. Called
// on the descriptor mint path, before slot n-1 can ever register.
func (r *SnapshotRegistry) Ensure(n int) {
	r.mu.Lock()
	if n > len(r.slots) {
		grown := make([]uint64, n)
		copy(grown, r.slots)
		r.slots = grown
	}
	r.mu.Unlock()
}

// Enter records that the descriptor in slot holds an active snapshot at
// start timestamp ts.
func (r *SnapshotRegistry) Enter(slot int, ts uint64) {
	r.mu.Lock()
	if slot >= len(r.slots) {
		grown := make([]uint64, slot+1)
		copy(grown, r.slots)
		r.slots = grown
	}
	if r.slots[slot] == 0 {
		r.live.Add(1)
	}
	r.slots[slot] = ts + 1
	r.ver.Add(1)
	r.mu.Unlock()
}

// Leave clears slot's registration. Idempotent: detaching an idle slot
// (the defensive Tx.Release path) is a no-op.
func (r *SnapshotRegistry) Leave(slot int) {
	r.mu.Lock()
	if slot < len(r.slots) && r.slots[slot] != 0 {
		r.slots[slot] = 0
		r.live.Add(-1)
		r.ver.Add(1)
	}
	r.mu.Unlock()
}

// Active returns slot's registered snapshot timestamp (tests).
func (r *SnapshotRegistry) Active(slot int) (uint64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if slot >= len(r.slots) || r.slots[slot] == 0 {
		return 0, false
	}
	return r.slots[slot] - 1, true
}

// Min returns the oldest registered snapshot timestamp; ok is false when
// no snapshot is in flight (the trimmer may then drop freely).
func (r *SnapshotRegistry) Min() (min uint64, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.live.Load() == 0 {
		return 0, false
	}
	min = ^uint64(0)
	for _, s := range r.slots {
		if s != 0 && s-1 < min {
			min = s - 1
		}
	}
	return min, true
}

// Live reports how many snapshots are currently registered. Lock-free:
// publishers consult it on every update commit to skip version retention
// while nobody is reading.
func (r *SnapshotRegistry) Live() int { return int(r.live.Load()) }
