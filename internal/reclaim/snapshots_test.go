package reclaim

import "testing"

func TestSnapshotRegistry(t *testing.T) {
	var r SnapshotRegistry
	if _, ok := r.Min(); ok {
		t.Fatal("Min on empty registry reported an active snapshot")
	}
	r.Ensure(4)
	r.Enter(1, 10)
	r.Enter(3, 7)
	if min, ok := r.Min(); !ok || min != 7 {
		t.Fatalf("Min = (%d, %v), want (7, true)", min, ok)
	}
	if ts, ok := r.Active(1); !ok || ts != 10 {
		t.Fatalf("Active(1) = (%d, %v), want (10, true)", ts, ok)
	}
	if r.Live() != 2 {
		t.Fatalf("Live = %d, want 2", r.Live())
	}
	r.Leave(3)
	if min, ok := r.Min(); !ok || min != 10 {
		t.Fatalf("Min after Leave(3) = (%d, %v), want (10, true)", min, ok)
	}
	r.Leave(1)
	if _, ok := r.Min(); ok {
		t.Fatal("Min after all Leaves still reports an active snapshot")
	}
	// Leave is idempotent (the defensive Release path) and Enter past the
	// Ensure'd size grows the registry.
	r.Leave(1)
	r.Enter(9, 3)
	if min, ok := r.Min(); !ok || min != 3 {
		t.Fatalf("Min after growth Enter = (%d, %v), want (3, true)", min, ok)
	}
	// Re-Enter on the same slot replaces, not duplicates.
	r.Enter(9, 5)
	if r.Live() != 1 {
		t.Fatalf("Live after re-Enter = %d, want 1", r.Live())
	}
	// A snapshot at timestamp 0 is still a registration.
	r.Enter(2, 0)
	if min, ok := r.Min(); !ok || min != 0 {
		t.Fatalf("Min with ts-0 snapshot = (%d, %v), want (0, true)", min, ok)
	}
}
