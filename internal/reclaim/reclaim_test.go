package reclaim

import (
	"sync"
	"testing"
)

func TestDrainRespectsMinStart(t *testing.T) {
	var p Pool
	p.Retire(10, 2, 5)
	p.Retire(20, 2, 8)
	p.Retire(30, 2, 12)

	got := p.Drain(8)
	if len(got) != 2 {
		t.Fatalf("drained %d blocks, want 2", len(got))
	}
	for _, b := range got {
		if b.Addr != 10 && b.Addr != 20 {
			t.Errorf("unexpected block %d", b.Addr)
		}
	}
	if p.Len() != 1 {
		t.Errorf("remaining = %d, want 1", p.Len())
	}
}

func TestDrainAllEmptiesPool(t *testing.T) {
	var p Pool
	for i := uint64(0); i < 10; i++ {
		p.Retire(i*10, 1, i)
	}
	got := p.DrainAll()
	if len(got) != 10 {
		t.Errorf("DrainAll returned %d, want 10", len(got))
	}
	if p.Len() != 0 {
		t.Errorf("pool not empty: %d", p.Len())
	}
}

func TestDrainEqualTimestampIsReclaimable(t *testing.T) {
	// ts == minActiveStart means every active transaction started at or
	// after the freeing commit, which cannot reach the block.
	var p Pool
	p.Retire(10, 1, 7)
	if got := p.Drain(7); len(got) != 1 {
		t.Errorf("block with ts==min not drained: %d", len(got))
	}
}

func TestDrainNothingEligible(t *testing.T) {
	var p Pool
	p.Retire(10, 1, 100)
	if got := p.Drain(50); len(got) != 0 {
		t.Errorf("drained %d blocks from an ineligible pool", len(got))
	}
	if p.Len() != 1 {
		t.Errorf("pool lost a block: %d", p.Len())
	}
}

func TestEmptyPool(t *testing.T) {
	var p Pool
	if p.Len() != 0 || len(p.Drain(^uint64(0))) != 0 || len(p.DrainAll()) != 0 {
		t.Error("empty pool misbehaved")
	}
}

func TestConcurrentRetireDrain(t *testing.T) {
	var p Pool
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.Retire(uint64(id*1000+i), 1, uint64(i))
				if i%100 == 99 {
					n := len(p.Drain(uint64(i)))
					mu.Lock()
					total += n
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	total += len(p.DrainAll())
	if total != 4000 {
		t.Errorf("blocks lost or duplicated: drained %d, want 4000", total)
	}
}
