package admission

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGateBoundsConcurrency(t *testing.T) {
	const width, workers, opsEach = 4, 32, 200
	g := New(width)
	var cur, peak, total atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < opsEach; j++ {
				g.Enter()
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				total.Add(1)
				cur.Add(-1)
				g.Exit()
			}
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > width {
		t.Fatalf("observed %d concurrent updaters, gate width %d", got, width)
	}
	if got := total.Load(); got != workers*opsEach {
		t.Fatalf("completed %d ops, want %d", got, workers*opsEach)
	}
	w, inflight, admitted, _ := g.Stats()
	if w != width || inflight != 0 || admitted != workers*opsEach {
		t.Fatalf("Stats = (%d, %d, %d), want (%d, 0, %d)", w, inflight, admitted, width, workers*opsEach)
	}
}

func TestGateWidenWakesWaiters(t *testing.T) {
	g := New(1)
	g.Enter() // occupy the only slot
	entered := make(chan struct{})
	go func() {
		g.Enter()
		close(entered)
	}()
	select {
	case <-entered:
		t.Fatal("second Enter passed a width-1 gate")
	case <-time.After(20 * time.Millisecond):
	}
	if err := g.SetWidth(2); err != nil {
		t.Fatal(err)
	}
	select {
	case <-entered:
	case <-time.After(2 * time.Second):
		t.Fatal("widening the gate never woke the waiter")
	}
	g.Exit()
	g.Exit()
}

func TestGateNarrowNeverInterrupts(t *testing.T) {
	g := New(4)
	for i := 0; i < 4; i++ {
		g.Enter()
	}
	if err := g.SetWidth(1); err != nil {
		t.Fatal(err)
	}
	// The four admitted updaters still hold slots; they exit normally and
	// the gate refills at the new width.
	for i := 0; i < 4; i++ {
		g.Exit()
	}
	g.Enter()
	done := make(chan struct{})
	go func() {
		g.Enter()
		g.Exit()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("narrowed gate admitted two concurrent updaters")
	case <-time.After(20 * time.Millisecond):
	}
	g.Exit()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never admitted after Exit")
	}
}

func TestGateFloor(t *testing.T) {
	if g := New(0); g.Width() != 1 {
		t.Fatalf("New(0) width = %d, want clamped to 1", g.Width())
	}
	g := New(8)
	if err := g.SetWidth(0); err == nil {
		t.Fatal("SetWidth(0) accepted; the floor is 1")
	}
	if g.Width() != 8 {
		t.Fatalf("failed SetWidth changed the width to %d", g.Width())
	}
}

func TestGateWaitedCounter(t *testing.T) {
	g := New(1)
	g.Enter()
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.Enter()
		<-release
		g.Exit()
	}()
	// Wait until the second Enter is provably queued.
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, _, _, waited := g.Stats()
		if waited == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queued Enter never counted as waited")
		}
		time.Sleep(time.Millisecond)
	}
	g.Exit()
	close(release)
	wg.Wait()
	_, _, admitted, waited := g.Stats()
	if admitted != 2 || waited != 1 {
		t.Fatalf("counters = (admitted %d, waited %d), want (2, 1)", admitted, waited)
	}
}
