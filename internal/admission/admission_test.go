package admission

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGateBoundsConcurrency(t *testing.T) {
	const width, workers, opsEach = 4, 32, 200
	g := New(width)
	var cur, peak, total atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < opsEach; j++ {
				g.Enter()
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				total.Add(1)
				cur.Add(-1)
				g.Exit()
			}
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > width {
		t.Fatalf("observed %d concurrent updaters, gate width %d", got, width)
	}
	if got := total.Load(); got != workers*opsEach {
		t.Fatalf("completed %d ops, want %d", got, workers*opsEach)
	}
	w, inflight, admitted, _ := g.Stats()
	if w != width || inflight != 0 || admitted != workers*opsEach {
		t.Fatalf("Stats = (%d, %d, %d), want (%d, 0, %d)", w, inflight, admitted, width, workers*opsEach)
	}
}

func TestGateWidenWakesWaiters(t *testing.T) {
	g := New(1)
	g.Enter() // occupy the only slot
	entered := make(chan struct{})
	go func() {
		g.Enter()
		close(entered)
	}()
	select {
	case <-entered:
		t.Fatal("second Enter passed a width-1 gate")
	case <-time.After(20 * time.Millisecond):
	}
	if err := g.SetWidth(2); err != nil {
		t.Fatal(err)
	}
	select {
	case <-entered:
	case <-time.After(2 * time.Second):
		t.Fatal("widening the gate never woke the waiter")
	}
	g.Exit()
	g.Exit()
}

func TestGateNarrowNeverInterrupts(t *testing.T) {
	g := New(4)
	for i := 0; i < 4; i++ {
		g.Enter()
	}
	if err := g.SetWidth(1); err != nil {
		t.Fatal(err)
	}
	// The four admitted updaters still hold slots; they exit normally and
	// the gate refills at the new width.
	for i := 0; i < 4; i++ {
		g.Exit()
	}
	g.Enter()
	done := make(chan struct{})
	go func() {
		g.Enter()
		g.Exit()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("narrowed gate admitted two concurrent updaters")
	case <-time.After(20 * time.Millisecond):
	}
	g.Exit()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never admitted after Exit")
	}
}

func TestGateFloor(t *testing.T) {
	if g := New(0); g.Width() != 1 {
		t.Fatalf("New(0) width = %d, want clamped to 1", g.Width())
	}
	g := New(8)
	if err := g.SetWidth(0); err == nil {
		t.Fatal("SetWidth(0) accepted; the floor is 1")
	}
	if g.Width() != 8 {
		t.Fatalf("failed SetWidth changed the width to %d", g.Width())
	}
}

func TestGateWaitedCounter(t *testing.T) {
	g := New(1)
	g.Enter()
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.Enter()
		<-release
		g.Exit()
	}()
	// Wait until the second Enter is provably queued.
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, _, _, waited := g.Stats()
		if waited == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queued Enter never counted as waited")
		}
		time.Sleep(time.Millisecond)
	}
	g.Exit()
	close(release)
	wg.Wait()
	_, _, admitted, waited := g.Stats()
	if admitted != 2 || waited != 1 {
		t.Fatalf("counters = (admitted %d, waited %d), want (2, 1)", admitted, waited)
	}
}

func TestEnterUntilZeroDeadlineIsEnter(t *testing.T) {
	g := New(1)
	if !g.EnterUntil(time.Time{}) {
		t.Fatal("zero deadline must always claim")
	}
	g.Exit()
}

func TestEnterUntilImmediateWhenFree(t *testing.T) {
	g := New(2)
	if !g.EnterUntil(time.Now().Add(time.Hour)) {
		t.Fatal("free slot with live deadline denied")
	}
	if g.Expired() != 0 {
		t.Fatal("successful EnterUntil counted as expired")
	}
	g.Exit()
}

func TestEnterUntilExpiresAtFullGate(t *testing.T) {
	g := New(1)
	g.Enter() // occupy the only slot
	start := time.Now()
	if g.EnterUntil(start.Add(50 * time.Millisecond)) {
		t.Fatal("full gate granted a slot inside the deadline")
	}
	if d := time.Since(start); d < 50*time.Millisecond || d > 2*time.Second {
		t.Fatalf("EnterUntil returned after %v, want ~50ms", d)
	}
	if g.Expired() != 1 {
		t.Fatalf("expired = %d, want 1", g.Expired())
	}
	_, _, _, waited := g.Stats()
	if waited != 1 {
		t.Fatalf("waited = %d, want 1 (a timed-out Enter still queued)", waited)
	}
	g.Exit()
	// The gate must be fully usable afterwards: the expired waiter left
	// no claim behind.
	if !g.EnterUntil(time.Now().Add(time.Second)) {
		t.Fatal("gate unusable after an expired EnterUntil")
	}
	g.Exit()
}

func TestEnterUntilAlreadyExpired(t *testing.T) {
	g := New(1)
	// Even an EMPTY gate refuses an expired request: running it is waste.
	if g.EnterUntil(time.Now().Add(-time.Second)) {
		t.Fatal("past deadline granted a slot at an empty gate")
	}
	if g.Expired() != 1 {
		t.Fatalf("expired = %d, want 1", g.Expired())
	}
}

// TestEnterUntilPassesTheBaton pins the lost-wakeup hazard: with one
// slot, one expiring waiter and one patient waiter, the Exit that lands
// on the expiring waiter must be handed on, not swallowed.
func TestEnterUntilPassesTheBaton(t *testing.T) {
	g := New(1)
	g.Enter()

	patient := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if !g.EnterUntil(time.Time{}) {
			t.Error("patient waiter denied")
			return
		}
		close(patient)
		g.Exit()
	}()
	go func() {
		defer wg.Done()
		// Expires while queued; must not strand the patient waiter.
		if g.EnterUntil(time.Now().Add(20 * time.Millisecond)) {
			t.Error("expirer claimed a slot the test never freed in time")
			g.Exit()
		}
	}()

	// Let both goroutines queue AND the expirer give up, then free the
	// slot: the remaining signal must reach the patient waiter.
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, _, _, waited := g.Stats()
		if waited == 2 && g.Expired() == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiters never queued / expirer never expired")
		}
		time.Sleep(time.Millisecond)
	}
	g.Exit()
	select {
	case <-patient:
	case <-time.After(5 * time.Second):
		t.Fatal("patient waiter starved after expiring waiter left")
	}
	wg.Wait()
}
