// Package admission bounds the number of concurrently RUNNING update
// transactions at the server door — proactive contention management.
//
// The contention managers in internal/cm resolve conflicts after they
// happen: a transaction runs, collides, and one of the parties dies.
// Past a workload-dependent point that is pure waste — admitting more
// concurrent updaters REDUCES committed throughput, because every
// admitted transaction mostly generates aborts for the others (the
// cost-of-concurrency observation behind the ATS-style serializer, here
// applied before the conflict instead of after it). The Gate is a
// width-limited token bucket in front of the update path: at most Width
// updaters run at once, the rest queue at the door where they cost
// nothing, and the width itself is a live tuning knob walked by
// tuning.AdmissionConfig's controller from the observed abort ratio.
//
// Read-only transactions are never gated: snapshot reads are wait-free
// and classic reads conflict only with writers, so bounding writers
// already protects them.
package admission

import (
	"fmt"
	"sync"
	"time"
)

// Gate is the token bucket. The zero value is not usable; call New.
type Gate struct {
	//stm:allow-atomic gate state lives outside any transaction: it decides whether a transaction may START
	mu       sync.Mutex
	slot     *sync.Cond
	width    int // current token count; floor 1, never starves
	inflight int
	admitted uint64 // total Enters granted
	waited   uint64 // Enters that had to block first
	expired  uint64 // EnterUntils that gave up at their deadline
}

// New builds a Gate admitting at most width concurrent updaters
// (width < 1 is clamped to 1).
func New(width int) *Gate {
	if width < 1 {
		width = 1
	}
	g := &Gate{width: width}
	g.slot = sync.NewCond(&g.mu)
	return g
}

// Enter blocks until an update slot is free, then claims it. Every Enter
// must be paired with exactly one Exit.
func (g *Gate) Enter() {
	g.mu.Lock()
	if g.inflight >= g.width {
		g.waited++
		for g.inflight >= g.width {
			g.slot.Wait()
		}
	}
	g.inflight++
	g.admitted++
	g.mu.Unlock()
}

// EnterUntil is Enter with a deadline: it claims a slot like Enter, but
// gives up and returns false — WITHOUT claiming — once deadline passes.
// A zero deadline waits forever (plain Enter). This is how a
// deadline-bearing request sheds at the gate instead of occupying queue
// space for an answer nobody will read; timed-out Enters still count in
// the waited statistic (they did queue), expired in the expired one.
func (g *Gate) EnterUntil(deadline time.Time) bool {
	if deadline.IsZero() {
		g.Enter()
		return true
	}
	g.mu.Lock()
	if !time.Now().Before(deadline) {
		// Expired on arrival: never claim, even at an empty gate.
		g.expired++
		g.mu.Unlock()
		return false
	}
	if g.inflight >= g.width {
		g.waited++
		// sync.Cond has no timed wait: an AfterFunc broadcast wakes every
		// waiter at the deadline; ours notices it expired and leaves, the
		// rest re-check inflight and go back to sleep. The empty
		// lock/unlock orders the broadcast after our Wait, closing the
		// window where the timer fires between the check and the sleep.
		t := time.AfterFunc(time.Until(deadline), func() {
			g.mu.Lock()
			//lint:ignore SA2001 empty critical section orders the broadcast after Wait
			g.mu.Unlock()
			g.slot.Broadcast()
		})
		for g.inflight >= g.width {
			if !time.Now().Before(deadline) {
				g.expired++
				g.mu.Unlock()
				t.Stop()
				// Pass the baton: an Exit may have signaled exactly this
				// goroutine; hand the wakeup to a live waiter.
				g.slot.Signal()
				return false
			}
			g.slot.Wait()
		}
		t.Stop()
		if !time.Now().Before(deadline) {
			// Woken to a free slot, but too late: the client has already
			// given up on this request, so running it is pure waste.
			// Refuse, and pass the wakeup on to a live waiter.
			g.expired++
			g.mu.Unlock()
			g.slot.Signal()
			return false
		}
	}
	g.inflight++
	g.admitted++
	g.mu.Unlock()
	return true
}

// Exit releases a slot claimed by Enter.
func (g *Gate) Exit() {
	g.mu.Lock()
	if g.inflight <= 0 {
		g.mu.Unlock()
		panic("admission: Exit without matching Enter")
	}
	g.inflight--
	g.mu.Unlock()
	// Signal outside the lock: the woken waiter re-checks under mu anyway,
	// and a narrower critical section keeps the hot path short.
	g.slot.Signal()
}

// Width returns the current admission width.
func (g *Gate) Width() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.width
}

// SetWidth replaces the width on the live gate. Widening wakes queued
// waiters immediately; narrowing never interrupts updaters already
// admitted — the gate simply refills to the smaller width as they Exit.
// The floor is 1: a zero-width gate would starve updates forever.
func (g *Gate) SetWidth(w int) error {
	if w < 1 {
		return fmt.Errorf("admission: width %d below floor 1", w)
	}
	g.mu.Lock()
	grew := w > g.width
	g.width = w
	g.mu.Unlock()
	if grew {
		g.slot.Broadcast()
	}
	return nil
}

// Stats returns the gate's counters: the current width, how many
// updaters hold slots right now, how many Enters were granted in total,
// and how many of those had to wait at the door.
func (g *Gate) Stats() (width, inflight int, admitted, waited uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.width, g.inflight, g.admitted, g.waited
}

// Expired returns how many EnterUntil calls gave up at their deadline.
func (g *Gate) Expired() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.expired
}
