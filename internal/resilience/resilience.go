// Package resilience is the request-path robustness layer: deadline
// propagation, token-bucket retry budgets, a circuit breaker, and the
// overload-brownout ladder. The mechanisms are deliberately boring —
// small deterministic state machines with injectable clocks and seeded
// randomness — because every one of them sits on a failure path, and a
// failure path is exactly where surprising behavior costs the most.
//
// Deadlines are carried as RELATIVE budgets (milliseconds remaining),
// not absolute wall-clock times: the HTTP surface uses the
// TimeoutHeader request header, the binary surface a flag-bit-gated
// frame field (see kvproto). A relative budget re-anchors at server
// receipt, so client/server clock skew cannot spuriously expire (or
// immortalize) a request; the cost is that network transit does not
// consume budget, which is the right trade for a LAN service whose
// queueing delay dwarfs its propagation delay. Servers check the
// deadline at every stage where a request can have waited — admission,
// the update gate, worker dequeue, and inside long operations — and
// shed expired work instead of burning a worker on an answer nobody is
// waiting for.
//
// The retry budget, breaker and brownout ladder are the three layers of
// storm control: the budget caps how much extra load a SINGLE client
// may add when the server hiccups, the breaker stops a client from
// hammering a DEAD server at all, and the brownout ladder is the
// server's own last line — shedding work classes in priority order when
// the measured p99 says the SLO is gone.
package resilience

import (
	"errors"
	"strconv"
	"time"
)

// TimeoutHeader is the HTTP request header carrying the per-request
// deadline budget in integer milliseconds (e.g. "X-Timeout-Ms: 250").
// Zero or absent means no deadline.
const TimeoutHeader = "X-Timeout-Ms"

// MaxTimeout caps a single request's deadline budget. A budget above
// this is rejected rather than clamped: it is almost certainly a unit
// mistake (seconds or nanoseconds in a milliseconds field), and
// silently honoring it would pin server resources for hours.
const MaxTimeout = time.Hour

// ErrBadTimeout reports a deadline budget that is not a positive
// integer number of milliseconds within MaxTimeout.
var ErrBadTimeout = errors.New("resilience: timeout must be integer milliseconds in (0, 3600000]")

// ParseTimeout parses a TimeoutHeader value into a duration.
// The empty string is "no deadline" (0, nil).
func ParseTimeout(v string) (time.Duration, error) {
	if v == "" {
		return 0, nil
	}
	ms, err := strconv.ParseUint(v, 10, 32)
	if err != nil || ms == 0 || time.Duration(ms)*time.Millisecond > MaxTimeout {
		return 0, ErrBadTimeout
	}
	return time.Duration(ms) * time.Millisecond, nil
}

// TimeoutMs converts a duration to the wire representation: integer
// milliseconds, rounded UP so a sub-millisecond budget does not
// silently become "no deadline", and clamped to MaxTimeout.
func TimeoutMs(d time.Duration) uint32 {
	if d <= 0 {
		return 0
	}
	if d > MaxTimeout {
		d = MaxTimeout
	}
	ms := (d + time.Millisecond - 1) / time.Millisecond
	return uint32(ms)
}
