package resilience

import (
	"errors"
	"testing"
	"time"
)

func TestParseTimeout(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
		err  bool
	}{
		{"", 0, false},
		{"1", time.Millisecond, false},
		{"250", 250 * time.Millisecond, false},
		{"3600000", time.Hour, false},
		{"3600001", 0, true},
		{"0", 0, true},
		{"-5", 0, true},
		{"abc", 0, true},
		{"1.5", 0, true},
		{"4294967296", 0, true},
	}
	for _, c := range cases {
		got, err := ParseTimeout(c.in)
		if c.err {
			if !errors.Is(err, ErrBadTimeout) {
				t.Errorf("ParseTimeout(%q): want ErrBadTimeout, got %v", c.in, err)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("ParseTimeout(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
}

func TestTimeoutMs(t *testing.T) {
	cases := []struct {
		in   time.Duration
		want uint32
	}{
		{0, 0},
		{-time.Second, 0},
		{time.Microsecond, 1}, // rounds UP: sub-ms budget must not become "no deadline"
		{time.Millisecond, 1},
		{time.Millisecond + 1, 2},
		{250 * time.Millisecond, 250},
		{2 * time.Hour, 3600000},
	}
	for _, c := range cases {
		if got := TimeoutMs(c.in); got != c.want {
			t.Errorf("TimeoutMs(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestRetryBudgetBoundsRetries(t *testing.T) {
	b := NewRetryBudget(&RetryBudgetConfig{Tokens: 3, Ratio: 0.5})
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("retry %d: denied with tokens available", i)
		}
	}
	if b.Allow() {
		t.Fatal("empty bucket allowed a retry")
	}
	// Two successes earn one token back at ratio 0.5.
	b.Credit()
	if b.Allow() {
		t.Fatal("half a token allowed a retry")
	}
	b.Credit()
	if !b.Allow() {
		t.Fatal("earned token denied")
	}
	st := b.Stats()
	if st.Allowed != 4 || st.Denied != 2 {
		t.Fatalf("stats = %+v, want allowed=4 denied=2", st)
	}
}

func TestRetryBudgetCapsAtTokens(t *testing.T) {
	b := NewRetryBudget(&RetryBudgetConfig{Tokens: 2, Ratio: 1})
	for i := 0; i < 100; i++ {
		b.Credit()
	}
	if got := b.Stats().Tokens; got != 2 {
		t.Fatalf("tokens = %v, want capped at 2", got)
	}
}

func TestRetrierBackoffAndBudget(t *testing.T) {
	var sleeps []time.Duration
	budget := NewRetryBudget(&RetryBudgetConfig{Tokens: 2, Ratio: 0.1})
	r := NewRetrier(RetryConfig{
		MaxAttempts: 10,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  40 * time.Millisecond,
		Budget:      budget,
		Retryable:   func(error) bool { return true },
		Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
	})
	errBoom := errors.New("boom")
	calls := 0
	err := r.Do(func() error { calls++; return errBoom })
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// 1 first attempt + 2 budget-funded retries; attempt 4 denied.
	if calls != 3 {
		t.Fatalf("calls = %d, want 3 (budget of 2 retries)", calls)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(sleeps) != len(want) || sleeps[0] != want[0] || sleeps[1] != want[1] {
		t.Fatalf("sleeps = %v, want %v", sleeps, want)
	}
	if r.Retries() != 2 {
		t.Fatalf("retries = %d, want 2", r.Retries())
	}
}

func TestRetrierStopsOnNonRetryable(t *testing.T) {
	r := NewRetrier(RetryConfig{
		MaxAttempts: 5,
		Retryable:   func(error) bool { return false },
		Sleep:       func(time.Duration) { t.Fatal("slept on non-retryable error") },
	})
	calls := 0
	errBoom := errors.New("boom")
	if err := r.Do(func() error { calls++; return errBoom }); !errors.Is(err, errBoom) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want boom after 1 call", err, calls)
	}
}

func TestRetrierSucceedsAfterRetry(t *testing.T) {
	r := NewRetrier(RetryConfig{
		MaxAttempts: 5,
		Retryable:   func(error) bool { return true },
		Sleep:       func(time.Duration) {},
	})
	calls := 0
	err := r.Do(func() error {
		if calls++; calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want success on call 3", err, calls)
	}
}

// fakeClock drives the breaker deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(clk *fakeClock, threshold int) *Breaker {
	return NewBreaker(&BreakerConfig{
		FailureThreshold: threshold,
		Cooldown:         time.Second,
		Jitter:           0.2,
		Seed:             42,
		Now:              clk.now,
	})
}

func TestBreakerFullCycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newTestBreaker(clk, 3)

	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("new breaker must be closed and allowing")
	}
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("opened below threshold")
	}
	b.Failure() // third consecutive failure trips it
	if b.State() != BreakerOpen {
		t.Fatal("threshold reached but still closed")
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a dial before cooldown")
	}

	// Jitter keeps the cooldown within ±10%; at 1.1s it must have elapsed.
	clk.advance(1100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe denied")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second concurrent probe allowed while half-open")
	}
	b.Success() // probe succeeded
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("successful probe did not close the breaker")
	}
	c := b.Counts()
	if c.Opens != 1 || c.Probes != 1 || c.Closes != 1 {
		t.Fatalf("counts = %+v, want one full open->half-open->closed cycle", c)
	}
}

func TestBreakerReopensOnFailedProbe(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newTestBreaker(clk, 1)
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("threshold-1 breaker did not open on first failure")
	}
	clk.advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("probe denied after cooldown")
	}
	b.Failure() // probe failed: straight back to open
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open after failed probe", b.State())
	}
	if b.Allow() {
		t.Fatal("re-opened breaker allowed a dial before the new cooldown")
	}
	c := b.Counts()
	if c.Opens != 2 || c.Closes != 0 {
		t.Fatalf("counts = %+v, want two opens and no closes", c)
	}
}

func TestBreakerSuccessResetsConsecutiveFailures(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newTestBreaker(clk, 3)
	b.Failure()
	b.Failure()
	b.Success() // healthy response wipes the streak
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("three consecutive failures did not trip")
	}
}

func TestBreakerJitterIsDeterministic(t *testing.T) {
	until := func() time.Time {
		clk := &fakeClock{t: time.Unix(1000, 0)}
		b := newTestBreaker(clk, 1)
		b.Failure()
		b.mu.Lock()
		defer b.mu.Unlock()
		return b.openUntil
	}
	a, c := until(), until()
	if !a.Equal(c) {
		t.Fatalf("same seed, different cooldowns: %v vs %v", a, c)
	}
	cd := a.Sub(time.Unix(1000, 0))
	if cd < 900*time.Millisecond || cd >= 1100*time.Millisecond {
		t.Fatalf("jittered cooldown %v outside [0.9s, 1.1s)", cd)
	}
}

func TestBrownoutLadder(t *testing.T) {
	b := NewBrownout(BrownoutConfig{
		SLO:           10 * time.Millisecond,
		EscalateAfter: 2,
		CalmAfter:     3,
		MinSamples:    16,
	})
	hot := func() (Level, bool) { return b.Step(20*time.Millisecond, 100) }
	calm := func() (Level, bool) { return b.Step(time.Millisecond, 100) }

	if lvl, changed := hot(); lvl != LevelOff || changed {
		t.Fatalf("one hot period moved the ladder: %v %v", lvl, changed)
	}
	if lvl, changed := hot(); lvl != LevelShedScans || !changed {
		t.Fatalf("two hot periods: got %v changed=%v, want shed-scans", lvl, changed)
	}
	if !b.Sheds(ClassScan) || b.Sheds(ClassWrite) || b.Sheds(ClassRead) {
		t.Fatal("shed-scans rung must shed scans only")
	}
	hot()
	if lvl, _ := hot(); lvl != LevelShedWrites {
		t.Fatalf("level = %v, want shed-writes", lvl)
	}
	if !b.Sheds(ClassScan) || !b.Sheds(ClassWrite) || b.Sheds(ClassRead) {
		t.Fatal("shed-writes rung must shed scans and writes, not reads")
	}
	hot()
	if lvl, _ := hot(); lvl != LevelShedAll {
		t.Fatalf("level = %v, want shed-all", lvl)
	}
	if !b.Sheds(ClassRead) {
		t.Fatal("shed-all rung must shed reads")
	}
	// Ladder tops out.
	hot()
	if lvl, changed := hot(); lvl != LevelShedAll || changed {
		t.Fatal("ladder climbed past MaxLevel")
	}

	// Walk back: CalmAfter=3 calm periods per rung.
	calm()
	calm()
	if lvl, changed := calm(); lvl != LevelShedWrites || !changed {
		t.Fatalf("after 3 calm periods: %v changed=%v, want shed-writes", lvl, changed)
	}
	calm()
	calm()
	if lvl, _ := calm(); lvl != LevelShedScans {
		t.Fatal("second walk-back rung missed")
	}
	esc, deesc := b.Moves()
	if esc != 3 || deesc != 2 {
		t.Fatalf("moves = %d/%d, want 3 escalations, 2 de-escalations", esc, deesc)
	}
}

func TestBrownoutHotStreakMustBeConsecutive(t *testing.T) {
	b := NewBrownout(BrownoutConfig{SLO: 10 * time.Millisecond, EscalateAfter: 2, CalmAfter: 100, MinSamples: 1})
	b.Step(20*time.Millisecond, 10) // hot
	b.Step(time.Millisecond, 10)    // calm resets the streak
	if lvl, _ := b.Step(20*time.Millisecond, 10); lvl != LevelOff {
		t.Fatalf("level = %v, want off (streak was broken)", lvl)
	}
}

func TestBrownoutIdlePeriodsWalkBack(t *testing.T) {
	b := NewBrownout(BrownoutConfig{SLO: time.Millisecond, EscalateAfter: 1, CalmAfter: 2, MinSamples: 16})
	b.Step(time.Second, 100)
	if b.Level() != LevelShedScans {
		t.Fatal("setup: expected one rung up")
	}
	// Idle periods (below MinSamples) count as calm even though the few
	// recorded samples were slow — no traffic is no evidence of overload.
	b.Step(time.Second, 3)
	if lvl, changed := b.Step(time.Second, 0); lvl != LevelOff || !changed {
		t.Fatalf("idle periods did not walk the ladder back: %v", lvl)
	}
}
