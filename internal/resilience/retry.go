package resilience

import (
	"sync/atomic"
	"time"
)

// RetryConfig configures a Retrier. Zero values take the defaults
// noted on each field.
type RetryConfig struct {
	// MaxAttempts is the total number of attempts including the first
	// (default 4).
	MaxAttempts int
	// BaseBackoff is the sleep before the first retry; it doubles per
	// attempt up to MaxBackoff (defaults 25ms and 1s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Budget, when non-nil, is consulted before every retry and credited
	// on every success. Share one budget across all retriers talking to
	// the same backend. Nil means retries are bounded only by
	// MaxAttempts.
	Budget *RetryBudget
	// Retryable classifies errors; nil retries nothing (the Retrier
	// degrades to a single attempt).
	Retryable func(error) bool
	// Sleep is injectable for tests (default time.Sleep).
	Sleep func(time.Duration)
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 25 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Second
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	return c
}

// Retrier runs operations with capped-exponential backoff under a
// retry budget. It is stateless across calls except for counters, so
// one Retrier may be shared by any number of goroutines.
type Retrier struct {
	cfg     RetryConfig
	retries atomic.Uint64
}

// NewRetrier returns a Retrier for cfg.
func NewRetrier(cfg RetryConfig) *Retrier {
	return &Retrier{cfg: cfg.withDefaults()}
}

// Do runs fn, retrying on retryable errors while attempts and budget
// last, and returns the last error (nil on success). The backoff
// doubles per attempt: Base, 2*Base, ... capped at MaxBackoff.
func (r *Retrier) Do(fn func() error) error {
	backoff := r.cfg.BaseBackoff
	var err error
	for attempt := 1; ; attempt++ {
		if err = fn(); err == nil {
			if r.cfg.Budget != nil {
				r.cfg.Budget.Credit()
			}
			return nil
		}
		if attempt >= r.cfg.MaxAttempts || r.cfg.Retryable == nil || !r.cfg.Retryable(err) {
			return err
		}
		if r.cfg.Budget != nil && !r.cfg.Budget.Allow() {
			return err
		}
		r.retries.Add(1)
		r.cfg.Sleep(backoff)
		if backoff *= 2; backoff > r.cfg.MaxBackoff {
			backoff = r.cfg.MaxBackoff
		}
	}
}

// Retries returns how many retry attempts this Retrier has performed
// (first attempts are not counted).
func (r *Retrier) Retries() uint64 { return r.retries.Load() }
