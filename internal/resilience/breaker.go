package resilience

import (
	"sync"
	"sync/atomic"
	"time"

	"tinystm/internal/rng"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed passes all traffic (the healthy state).
	BreakerClosed BreakerState = iota
	// BreakerOpen fails fast: the backend looked dead recently and the
	// cooldown has not elapsed.
	BreakerOpen
	// BreakerHalfOpen lets exactly one probe through; its outcome
	// decides between closing and re-opening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig configures a Breaker. Zero values take the defaults
// noted on each field.
type BreakerConfig struct {
	// FailureThreshold is how many CONSECUTIVE failures trip the
	// breaker open (default 5).
	FailureThreshold int
	// Cooldown is how long the breaker stays open before allowing a
	// probe (default 1s), jittered by ±Jitter/2 so a fleet of clients
	// tripped by the same outage does not probe in lockstep.
	Cooldown time.Duration
	// Jitter is the fraction of Cooldown randomized (default 0.2:
	// cooldowns land uniformly in [0.9·Cooldown, 1.1·Cooldown)).
	Jitter float64
	// Seed seeds the jitter's deterministic generator (default 1).
	Seed uint64
	// Now is injectable for tests (default time.Now).
	Now func() time.Time
}

func (c *BreakerConfig) withDefaults() BreakerConfig {
	d := BreakerConfig{FailureThreshold: 5, Cooldown: time.Second, Jitter: 0.2, Seed: 1, Now: time.Now}
	if c != nil {
		if c.FailureThreshold > 0 {
			d.FailureThreshold = c.FailureThreshold
		}
		if c.Cooldown > 0 {
			d.Cooldown = c.Cooldown
		}
		if c.Jitter > 0 {
			d.Jitter = c.Jitter
		}
		if c.Seed != 0 {
			d.Seed = c.Seed
		}
		if c.Now != nil {
			d.Now = c.Now
		}
	}
	return d
}

// Breaker is a consecutive-failure circuit breaker. Failures are
// whatever the caller reports — for kvclient that is failed dials AND
// connections dying under it, because a breaker that only watches
// dials never opens when a proxy accepts and then resets. Success on
// the half-open probe closes the breaker; failure re-opens it for
// another jittered cooldown.
//
// State reads and the healthy-path Success are lock-free; transitions
// take a mutex (they are rare by construction).
type Breaker struct {
	cfg BreakerConfig

	state atomic.Int32
	armed atomic.Bool

	mu        sync.Mutex
	jitter    *rng.Rand
	failures  int
	openUntil time.Time
	probing   bool
	opens     uint64
	probes    uint64
	closes    uint64
}

// NewBreaker returns a closed Breaker. cfg may be nil for defaults.
func NewBreaker(cfg *BreakerConfig) *Breaker {
	d := cfg.withDefaults()
	return &Breaker{cfg: d, jitter: rng.New(d.Seed)}
}

// Allow reports whether a dial may proceed. In the open state it
// returns false until the cooldown elapses, then admits exactly one
// half-open probe; further callers keep failing fast until the probe
// reports Success or Failure.
func (b *Breaker) Allow() bool {
	if BreakerState(b.state.Load()) == BreakerClosed {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch BreakerState(b.state.Load()) {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.cfg.Now().Before(b.openUntil) {
			return false
		}
		b.state.Store(int32(BreakerHalfOpen))
		b.probing = true
		b.probes++
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		b.probes++
		return true
	}
}

// Success records a healthy response. It closes a half-open breaker
// and clears the consecutive-failure count. The no-op healthy path is
// two atomic loads.
func (b *Breaker) Success() {
	if !b.armed.Load() && BreakerState(b.state.Load()) == BreakerClosed {
		return
	}
	b.mu.Lock()
	if BreakerState(b.state.Load()) != BreakerClosed {
		b.closes++
	}
	b.state.Store(int32(BreakerClosed))
	b.failures = 0
	b.probing = false
	b.armed.Store(false)
	b.mu.Unlock()
}

// Failure records a failed dial or a connection death. The threshold's
// consecutive failure trips the breaker; a failure while half-open
// re-opens it immediately.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.armed.Store(true)
	switch BreakerState(b.state.Load()) {
	case BreakerOpen:
		// Already failing fast; late failure reports (in-flight ops on a
		// dying connection) carry no new information.
		return
	case BreakerHalfOpen:
		b.trip()
	default:
		if b.failures++; b.failures >= b.cfg.FailureThreshold {
			b.trip()
		}
	}
}

// trip opens the breaker for one jittered cooldown. Caller holds mu.
func (b *Breaker) trip() {
	b.state.Store(int32(BreakerOpen))
	b.failures = 0
	b.probing = false
	b.opens++
	cd := b.cfg.Cooldown
	if j := b.cfg.Jitter; j > 0 {
		// Uniform in [cd·(1-j/2), cd·(1+j/2)), deterministic per seed.
		u := float64(b.jitter.Uint64n(1<<20)) / (1 << 20)
		cd = time.Duration(float64(cd) * (1 - j/2 + j*u))
	}
	b.openUntil = b.cfg.Now().Add(cd)
}

// State returns the breaker's current position (lock-free).
func (b *Breaker) State() BreakerState { return BreakerState(b.state.Load()) }

// BreakerCounts are cumulative transition counters: trips to open,
// half-open probes admitted, and closes from half-open.
type BreakerCounts struct {
	Opens, Probes, Closes uint64
}

// Counts snapshots the transition counters.
func (b *Breaker) Counts() BreakerCounts {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerCounts{Opens: b.opens, Probes: b.probes, Closes: b.closes}
}
