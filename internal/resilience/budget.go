package resilience

import "sync"

// RetryBudget is a token bucket that bounds how much RETRY load a
// client may add on top of its first-attempt load. First attempts are
// free; each retry spends one token; each successful attempt earns
// back Ratio tokens (capped at Tokens). In steady state a client can
// therefore retry at most a Ratio fraction of its successful traffic —
// the classic retry-budget scheme — with a burst allowance of Tokens
// for short blips. When the bucket is empty the retry is denied and
// the caller surfaces the original error instead of amplifying an
// outage into a retry storm.
//
// One budget is shared by everything that retries against the same
// backend (all ops on a connection, or a whole load generator), so the
// bound holds for the client as a unit, not per call site.
type RetryBudget struct {
	mu      sync.Mutex
	cap     float64
	ratio   float64
	tokens  float64
	allowed uint64
	denied  uint64
}

// RetryBudgetConfig configures a RetryBudget. Zero values take the
// defaults noted on each field.
type RetryBudgetConfig struct {
	// Tokens is the bucket capacity and initial fill (default 16).
	Tokens float64
	// Ratio is the fraction of a token earned per success (default 0.1:
	// sustained retries are bounded by 10% of successful traffic).
	Ratio float64
}

func (c *RetryBudgetConfig) withDefaults() RetryBudgetConfig {
	d := RetryBudgetConfig{Tokens: 16, Ratio: 0.1}
	if c != nil {
		if c.Tokens > 0 {
			d.Tokens = c.Tokens
		}
		if c.Ratio > 0 {
			d.Ratio = c.Ratio
		}
	}
	return d
}

// NewRetryBudget returns a full bucket. cfg may be nil for defaults.
func NewRetryBudget(cfg *RetryBudgetConfig) *RetryBudget {
	d := cfg.withDefaults()
	return &RetryBudget{cap: d.Tokens, ratio: d.Ratio, tokens: d.Tokens}
}

// Allow spends one token if at least one is available and reports
// whether the retry may proceed.
func (b *RetryBudget) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		b.denied++
		return false
	}
	b.tokens--
	b.allowed++
	return true
}

// Credit records a successful attempt, earning Ratio tokens back.
func (b *RetryBudget) Credit() {
	b.mu.Lock()
	if b.tokens += b.ratio; b.tokens > b.cap {
		b.tokens = b.cap
	}
	b.mu.Unlock()
}

// BudgetStats is a point-in-time snapshot of a RetryBudget.
type BudgetStats struct {
	// Allowed and Denied count retry requests granted and refused.
	Allowed, Denied uint64
	// Tokens is the current fill, Cap the capacity, Ratio the earn rate.
	Tokens, Cap, Ratio float64
}

// Stats snapshots the budget's counters.
func (b *RetryBudget) Stats() BudgetStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BudgetStats{Allowed: b.allowed, Denied: b.denied, Tokens: b.tokens, Cap: b.cap, Ratio: b.ratio}
}
