package resilience

import (
	"sync/atomic"
	"time"
)

// Class buckets requests by how expendable they are under overload.
// Scans go first (each one holds a snapshot and streams thousands of
// pairs), then writes (they burn gate slots and WAL bandwidth), and
// reads last — a browned-out cache that still answers point reads is
// degraded, not down.
type Class int32

const (
	// ClassRead is point reads (GET, read-only batches).
	ClassRead Class = iota
	// ClassWrite is updates (PUT, DELETE, CAS, ADD, mixed batches).
	ClassWrite
	// ClassScan is range scans.
	ClassScan
	// NumClasses counts the classes (for per-class counters).
	NumClasses = 3
)

func (c Class) String() string {
	switch c {
	case ClassRead:
		return "read"
	case ClassWrite:
		return "write"
	case ClassScan:
		return "scan"
	}
	return "unknown"
}

// Level is a rung of the brownout ladder; each rung sheds one more
// class than the rung below.
type Level int32

const (
	// LevelOff sheds nothing.
	LevelOff Level = iota
	// LevelShedScans sheds scans.
	LevelShedScans
	// LevelShedWrites sheds scans and writes.
	LevelShedWrites
	// LevelShedAll sheds everything, reads included. The server is
	// protecting itself; clients see fast 503s instead of timeouts.
	LevelShedAll
	// NumLevels counts the rungs (for the one-hot state metric).
	NumLevels = 4
)

func (l Level) String() string {
	switch l {
	case LevelOff:
		return "off"
	case LevelShedScans:
		return "shed-scans"
	case LevelShedWrites:
		return "shed-writes"
	case LevelShedAll:
		return "shed-all"
	}
	return "unknown"
}

// Sheds reports whether a rung sheds a class: scans from
// LevelShedScans up, writes from LevelShedWrites up, reads only at
// LevelShedAll.
func (l Level) Sheds(c Class) bool {
	switch c {
	case ClassScan:
		return l >= LevelShedScans
	case ClassWrite:
		return l >= LevelShedWrites
	default:
		return l >= LevelShedAll
	}
}

// BrownoutConfig configures a Brownout. Zero values take the defaults
// noted on each field.
type BrownoutConfig struct {
	// SLO is the p99 latency objective; a period whose measured p99
	// exceeds it is "hot". Required (no default).
	SLO time.Duration
	// EscalateAfter is how many CONSECUTIVE hot periods climb one rung
	// (default 2 — one bad period is noise, two is a trend).
	EscalateAfter int
	// CalmAfter is how many consecutive calm periods step one rung back
	// down (default 4 — recovery is deliberately slower than escalation
	// so a marginal server does not oscillate).
	CalmAfter int
	// MinSamples is the fewest observations a period needs for its p99
	// to count as evidence of overload (default 16). Periods below it
	// count as calm: an idle server walks back down.
	MinSamples uint64
	// MaxLevel caps the ladder (default LevelShedAll).
	MaxLevel Level
}

func (c BrownoutConfig) withDefaults() BrownoutConfig {
	if c.EscalateAfter <= 0 {
		c.EscalateAfter = 2
	}
	if c.CalmAfter <= 0 {
		c.CalmAfter = 4
	}
	if c.MinSamples == 0 {
		c.MinSamples = 16
	}
	if c.MaxLevel <= 0 || c.MaxLevel > LevelShedAll {
		c.MaxLevel = LevelShedAll
	}
	return c
}

// Brownout is the overload ladder's rule engine: a pure hysteresis
// state machine stepped once per tuning period with the period's
// measured p99 (the PR-9 request histogram delta). It decides only the
// LEVEL; enforcement — answering 503 for shed classes — lives with the
// admission checks on each request surface, reading Level through one
// atomic load.
type Brownout struct {
	cfg   BrownoutConfig
	level atomic.Int32

	// Stepping state; Step is called by one controller goroutine, so
	// plain fields guarded by that single-caller discipline.
	hot  int
	calm int

	escalations   atomic.Uint64
	deescalations atomic.Uint64
}

// NewBrownout returns a ladder at LevelOff.
func NewBrownout(cfg BrownoutConfig) *Brownout {
	return &Brownout{cfg: cfg.withDefaults()}
}

// Step feeds one period's measured p99 and sample count and returns
// the (possibly new) level plus whether it changed. Single-stepper
// only: call from one controller goroutine.
func (b *Brownout) Step(p99 time.Duration, samples uint64) (Level, bool) {
	lvl := b.Level()
	if samples >= b.cfg.MinSamples && p99 > b.cfg.SLO {
		b.hot++
		b.calm = 0
		if b.hot >= b.cfg.EscalateAfter && lvl < b.cfg.MaxLevel {
			lvl++
			b.hot = 0
			b.level.Store(int32(lvl))
			b.escalations.Add(1)
			return lvl, true
		}
		return lvl, false
	}
	b.calm++
	b.hot = 0
	if b.calm >= b.cfg.CalmAfter && lvl > LevelOff {
		lvl--
		b.calm = 0
		b.level.Store(int32(lvl))
		b.deescalations.Add(1)
		return lvl, true
	}
	return lvl, false
}

// Level returns the current rung (lock-free; safe from any goroutine).
func (b *Brownout) Level() Level { return Level(b.level.Load()) }

// Sheds reports whether the current rung sheds class c.
func (b *Brownout) Sheds(c Class) bool { return b.Level().Sheds(c) }

// SLO returns the configured p99 objective.
func (b *Brownout) SLO() time.Duration { return b.cfg.SLO }

// Moves returns the cumulative escalation and de-escalation counts.
func (b *Brownout) Moves() (escalations, deescalations uint64) {
	return b.escalations.Load(), b.deescalations.Load()
}
