package intset

import "tinystm/internal/txn"

// Ordered-map extensions over the red-black tree: minimum / maximum /
// successor queries and bounded range scans. STAMP's Vacation only needs
// point lookups, but any real consumer of an ordered transactional map
// needs these, and they exercise longer read paths (good validation
// pressure for the hierarchical fast path).

// TreeMin returns the smallest key (ok=false when empty).
func TreeMin[T txn.Tx](tx T, t uint64) (key uint64, ok bool) {
	n := tx.Load(t)
	if n == 0 {
		return 0, false
	}
	for {
		l := tx.Load(n + nodeLeft)
		if l == 0 {
			return tx.Load(n + nodeKey), true
		}
		n = l
	}
}

// TreeMax returns the largest key (ok=false when empty).
func TreeMax[T txn.Tx](tx T, t uint64) (key uint64, ok bool) {
	n := tx.Load(t)
	if n == 0 {
		return 0, false
	}
	for {
		r := tx.Load(n + nodeRight)
		if r == 0 {
			return tx.Load(n + nodeKey), true
		}
		n = r
	}
}

// TreeCeiling returns the smallest key >= from (ok=false when none).
func TreeCeiling[T txn.Tx](tx T, t, from uint64) (key uint64, ok bool) {
	n := tx.Load(t)
	for n != 0 {
		k := tx.Load(n + nodeKey)
		switch {
		case k == from:
			return k, true
		case k < from:
			n = tx.Load(n + nodeRight)
		default:
			key, ok = k, true
			n = tx.Load(n + nodeLeft)
		}
	}
	return key, ok
}

// TreeFloor returns the largest key <= upTo (ok=false when none).
func TreeFloor[T txn.Tx](tx T, t, upTo uint64) (key uint64, ok bool) {
	n := tx.Load(t)
	for n != 0 {
		k := tx.Load(n + nodeKey)
		switch {
		case k == upTo:
			return k, true
		case k > upTo:
			n = tx.Load(n + nodeLeft)
		default:
			key, ok = k, true
			n = tx.Load(n + nodeRight)
		}
	}
	return key, ok
}

// TreeRange calls fn(key, value) for every key in [from, to] in ascending
// order; fn returning false stops the scan early. Returns the number of
// pairs visited.
func TreeRange[T txn.Tx](tx T, t, from, to uint64, fn func(key, val uint64) bool) int {
	visited := 0
	stop := false
	var walk func(n uint64)
	walk = func(n uint64) {
		if n == 0 || stop {
			return
		}
		k := tx.Load(n + nodeKey)
		if k > from {
			walk(tx.Load(n + nodeLeft))
		}
		if stop {
			return
		}
		if k >= from && k <= to {
			visited++
			if !fn(k, tx.Load(n+nodeVal)) {
				stop = true
				return
			}
		}
		if k < to {
			walk(tx.Load(n + nodeRight))
		}
	}
	walk(tx.Load(t))
	return visited
}
