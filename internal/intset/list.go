package intset

import "tinystm/internal/txn"

// Sorted linked list (paper Section 3.3): "the list must be traversed in
// order to add, remove, or locate entries and read sets can grow large."
//
// Node layout (2 words):
//
//	word 0: value
//	word 1: next node address (mem.Nil terminates, but the tail sentinel
//	        with MaxValue makes Nil unreachable during traversals)
//
// The list is bracketed by head (MinValue) and tail (MaxValue) sentinels,
// so traversal code needs no nil checks and update transactions always
// find a strict predecessor.

const (
	listVal   = 0
	listNext  = 1
	listWords = 2
)

// NewList allocates an empty list inside tx and returns the head sentinel
// address.
func NewList[T txn.Tx](tx T) uint64 {
	head := tx.Alloc(listWords)
	tail := tx.Alloc(listWords)
	tx.Store(head+listVal, MinValue)
	tx.Store(head+listNext, tail)
	tx.Store(tail+listVal, MaxValue)
	tx.Store(tail+listNext, 0)
	return head
}

// listSearch returns the last node with value < v and its successor.
func listSearch[T txn.Tx](tx T, head, v uint64) (prev, curr uint64) {
	prev = head
	curr = tx.Load(head + listNext)
	for tx.Load(curr+listVal) < v {
		prev = curr
		curr = tx.Load(curr + listNext)
	}
	return prev, curr
}

// ListContains reports whether v is in the list.
func ListContains[T txn.Tx](tx T, head, v uint64) bool {
	checkValue(v)
	_, curr := listSearch(tx, head, v)
	return tx.Load(curr+listVal) == v
}

// ListInsert adds v, reporting whether the list changed.
func ListInsert[T txn.Tx](tx T, head, v uint64) bool {
	checkValue(v)
	prev, curr := listSearch(tx, head, v)
	if tx.Load(curr+listVal) == v {
		return false
	}
	n := tx.Alloc(listWords)
	tx.Store(n+listVal, v)
	tx.Store(n+listNext, curr)
	tx.Store(prev+listNext, n)
	return true
}

// ListRemove deletes v, reporting whether the list changed.
func ListRemove[T txn.Tx](tx T, head, v uint64) bool {
	checkValue(v)
	prev, curr := listSearch(tx, head, v)
	if tx.Load(curr+listVal) != v {
		return false
	}
	tx.Store(prev+listNext, tx.Load(curr+listNext))
	tx.Free(curr, listWords)
	return true
}

// ListSize counts the elements (sentinels excluded).
func ListSize[T txn.Tx](tx T, head uint64) int {
	n := 0
	curr := tx.Load(head + listNext)
	for tx.Load(curr+listVal) != MaxValue {
		n++
		curr = tx.Load(curr + listNext)
	}
	return n
}

// ListOverwrite implements the modified benchmark of Figure 4 (right):
// "update transactions search for a random value and overwrite any entry
// encountered while traversing the list up to the random value." It
// rewrites each visited element with its own value (a semantic no-op with
// a full-size write set) and returns the number of overwritten entries.
func ListOverwrite[T txn.Tx](tx T, head, v uint64) int {
	checkValue(v)
	n := 0
	curr := tx.Load(head + listNext)
	for {
		cv := tx.Load(curr + listVal)
		if cv >= v || cv == MaxValue {
			return n
		}
		tx.Store(curr+listVal, cv)
		n++
		curr = tx.Load(curr + listNext)
	}
}

// ListSnapshot returns the values in order (test helper).
func ListSnapshot[T txn.Tx](tx T, head uint64) []uint64 {
	var out []uint64
	curr := tx.Load(head + listNext)
	for {
		v := tx.Load(curr + listVal)
		if v == MaxValue {
			return out
		}
		out = append(out, v)
		curr = tx.Load(curr + listNext)
	}
}

// List binds a head address into the Set interface.
type List[T txn.Tx] struct{ Head uint64 }

// Contains implements Set.
func (l List[T]) Contains(tx T, v uint64) bool { return ListContains(tx, l.Head, v) }

// Insert implements Set.
func (l List[T]) Insert(tx T, v uint64) bool { return ListInsert(tx, l.Head, v) }

// Remove implements Set.
func (l List[T]) Remove(tx T, v uint64) bool { return ListRemove(tx, l.Head, v) }

// Size implements Set.
func (l List[T]) Size(tx T) int { return ListSize(tx, l.Head) }
