// Package intset provides the transactional data structures used by the
// paper's evaluation: the sorted linked list and red-black tree of Section
// 3.3 (integer sets), the linked-list "overwrite" variant with large write
// sets (Figure 4, right), and — as extensions exercising the same STM API —
// a skip list and a hash set.
//
// Every operation is a plain function generic over the txn.Tx constraint,
// so each STM (TinySTM, TL2) gets a statically-dispatched instantiation.
// Operations must run inside an atomic block; they do not retry themselves.
//
// Values must lie strictly between MinValue and MaxValue; the two bounds
// are reserved for the head and tail sentinels.
package intset

import "tinystm/internal/txn"

const (
	// MinValue is the reserved head-sentinel value.
	MinValue uint64 = 0
	// MaxValue is the reserved tail-sentinel value.
	MaxValue uint64 = ^uint64(0)
)

// checkValue panics on reserved values; catching misuse early beats
// corrupting a benchmark silently.
func checkValue(v uint64) {
	if v == MinValue || v == MaxValue {
		panic("intset: value collides with a sentinel")
	}
}

// Set groups the operation set shared by all four structures so harness
// workloads can be written once. Implementations bind a root address and
// dispatch to the generic functions.
type Set[T txn.Tx] interface {
	Contains(tx T, v uint64) bool
	Insert(tx T, v uint64) bool
	Remove(tx T, v uint64) bool
	Size(tx T) int
}
