package intset_test

import (
	"testing"
	"testing/quick"

	"tinystm/internal/core"
	"tinystm/internal/intset"
	"tinystm/internal/rng"
)

// testing/quick property tests: arbitrary operation sequences against a
// reference map, plus structural invariants, for each data structure.

// opSeq is a quick-generatable operation script: each byte encodes one
// operation (2 bits) and a value (6 bits).
type opSeq []byte

func runScript[S intset.Set[*core.Tx]](t *testing.T, tm *core.TM, set S, script opSeq) bool {
	t.Helper()
	tx := tm.NewTx()
	ref := map[uint64]bool{}
	for _, b := range script {
		v := uint64(b&0x3f) + 1
		var got bool
		switch b >> 6 {
		case 0, 3: // bias towards inserts so structures grow
			tm.Atomic(tx, func(tx *core.Tx) { got = set.Insert(tx, v) })
			if got == ref[v] {
				return false
			}
			ref[v] = true
		case 1:
			tm.Atomic(tx, func(tx *core.Tx) { got = set.Remove(tx, v) })
			if got != ref[v] {
				return false
			}
			delete(ref, v)
		case 2:
			tm.Atomic(tx, func(tx *core.Tx) { got = set.Contains(tx, v) })
			if got != ref[v] {
				return false
			}
		}
	}
	var size int
	tm.Atomic(tx, func(tx *core.Tx) { size = set.Size(tx) })
	return size == len(ref)
}

func quickConfig() *quick.Config {
	return &quick.Config{MaxCount: 60}
}

func TestQuickListVsMap(t *testing.T) {
	f := func(script opSeq) bool {
		tm := newCoreSys(t, core.WriteBack)
		tx := tm.NewTx()
		var head uint64
		tm.Atomic(tx, func(tx *core.Tx) { head = intset.NewList(tx) })
		return runScript(t, tm, intset.List[*core.Tx]{Head: head}, script)
	}
	if err := quick.Check(f, quickConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTreeVsMapWithInvariants(t *testing.T) {
	f := func(script opSeq) bool {
		tm := newCoreSys(t, core.WriteBack)
		tx := tm.NewTx()
		var root uint64
		tm.Atomic(tx, func(tx *core.Tx) { root = intset.NewTree(tx) })
		if !runScript(t, tm, intset.Tree[*core.Tx]{Root: root}, script) {
			return false
		}
		ok := true
		tm.Atomic(tx, func(tx *core.Tx) {
			ok = intset.TreeValidate(tx, root) == nil
		})
		return ok
	}
	if err := quick.Check(f, quickConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSkipListVsMap(t *testing.T) {
	f := func(script opSeq, seed uint64) bool {
		tm := newCoreSys(t, core.WriteBack)
		tx := tm.NewTx()
		r := rng.New(seed)
		var head uint64
		tm.Atomic(tx, func(tx *core.Tx) { head = intset.NewSkipList(tx) })
		return runScript(t, tm, intset.SkipList[*core.Tx]{Head: head, Rng: r}, script)
	}
	if err := quick.Check(f, quickConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHashSetVsMap(t *testing.T) {
	f := func(script opSeq, buckets uint8) bool {
		tm := newCoreSys(t, core.WriteBack)
		tx := tm.NewTx()
		nb := int(buckets%32) + 1
		var h uint64
		tm.Atomic(tx, func(tx *core.Tx) { h = intset.NewHashSet(tx, nb) })
		return runScript(t, tm, intset.HashSet[*core.Tx]{Handle: h}, script)
	}
	if err := quick.Check(f, quickConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickListSnapshotSortedAndDistinct(t *testing.T) {
	f := func(script opSeq) bool {
		tm := newCoreSys(t, core.WriteBack)
		tx := tm.NewTx()
		var head uint64
		tm.Atomic(tx, func(tx *core.Tx) { head = intset.NewList(tx) })
		for _, b := range script {
			v := uint64(b&0x3f) + 1
			if b>>7 == 0 {
				tm.Atomic(tx, func(tx *core.Tx) { intset.ListInsert(tx, head, v) })
			} else {
				tm.Atomic(tx, func(tx *core.Tx) { intset.ListRemove(tx, head, v) })
			}
		}
		ok := true
		tm.Atomic(tx, func(tx *core.Tx) {
			snap := intset.ListSnapshot(tx, head)
			for i := 1; i < len(snap); i++ {
				if snap[i] <= snap[i-1] {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, quickConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTreeLookupAgrees(t *testing.T) {
	// TreeSet/TreeLookup must behave exactly like a map[uint64]uint64.
	f := func(pairs []uint16) bool {
		tm := newCoreSys(t, core.WriteBack)
		tx := tm.NewTx()
		var root uint64
		tm.Atomic(tx, func(tx *core.Tx) { root = intset.NewTree(tx) })
		ref := map[uint64]uint64{}
		for _, p := range pairs {
			k := uint64(p&0xff) + 1
			v := uint64(p >> 8)
			tm.Atomic(tx, func(tx *core.Tx) { intset.TreeSet(tx, root, k, v) })
			ref[k] = v
		}
		ok := true
		tm.Atomic(tx, func(tx *core.Tx) {
			for k, v := range ref {
				got, found := intset.TreeLookup(tx, root, k)
				if !found || got != v {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
