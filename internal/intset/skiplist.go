package intset

import (
	"tinystm/internal/rng"
	"tinystm/internal/txn"
)

// Transactional skip list (an extension beyond the paper's benchmarks,
// exercising variable-size nodes and multi-word link updates on the same
// STM API).
//
// Node layout (2 + level words):
//
//	word 0:      value
//	word 1:      level (number of forward links, 1..SkipMaxLevel)
//	word 2..:    forward pointers, level 0 first
//
// The head sentinel has SkipMaxLevel links and value MinValue; level-0
// links end at a tail sentinel carrying MaxValue.

// SkipMaxLevel bounds the tower height; 2^16 elements keep p=1/2 towers
// comfortably below it.
const SkipMaxLevel = 16

const (
	skipVal   = 0
	skipLevel = 1
	skipFwd   = 2
)

// NewSkipList allocates an empty skip list inside tx and returns the head
// sentinel address.
func NewSkipList[T txn.Tx](tx T) uint64 {
	head := tx.Alloc(skipFwd + SkipMaxLevel)
	tail := tx.Alloc(skipFwd + 1)
	tx.Store(head+skipVal, MinValue)
	tx.Store(head+skipLevel, SkipMaxLevel)
	tx.Store(tail+skipVal, MaxValue)
	tx.Store(tail+skipLevel, 1)
	tx.Store(tail+skipFwd, 0)
	for i := 0; i < SkipMaxLevel; i++ {
		tx.Store(head+skipFwd+uint64(i), tail)
	}
	return head
}

// skipSearch fills preds with the rightmost node < v per level and returns
// the level-0 successor.
func skipSearch[T txn.Tx](tx T, head, v uint64, preds *[SkipMaxLevel]uint64) uint64 {
	x := head
	for i := SkipMaxLevel - 1; i >= 0; i-- {
		for {
			next := tx.Load(x + skipFwd + uint64(i))
			if tx.Load(next+skipVal) >= v {
				break
			}
			x = next
		}
		preds[i] = x
	}
	return tx.Load(x + skipFwd)
}

// SkipContains reports whether v is present.
func SkipContains[T txn.Tx](tx T, head, v uint64) bool {
	checkValue(v)
	var preds [SkipMaxLevel]uint64
	curr := skipSearch(tx, head, v, &preds)
	return tx.Load(curr+skipVal) == v
}

// SkipInsert adds v with a tower height drawn from r (p = 1/2), reporting
// whether the list changed. The caller owns r; passing the worker's
// deterministic generator keeps runs reproducible.
func SkipInsert[T txn.Tx](tx T, head, v uint64, r *rng.Rand) bool {
	checkValue(v)
	var preds [SkipMaxLevel]uint64
	curr := skipSearch(tx, head, v, &preds)
	if tx.Load(curr+skipVal) == v {
		return false
	}
	level := 1
	for level < SkipMaxLevel && r.Uint64()&1 == 1 {
		level++
	}
	n := tx.Alloc(skipFwd + level)
	tx.Store(n+skipVal, v)
	tx.Store(n+skipLevel, uint64(level))
	for i := 0; i < level; i++ {
		p := preds[i]
		next := tx.Load(p + skipFwd + uint64(i))
		tx.Store(n+skipFwd+uint64(i), next)
		tx.Store(p+skipFwd+uint64(i), n)
	}
	return true
}

// SkipRemove deletes v, reporting whether the list changed.
func SkipRemove[T txn.Tx](tx T, head, v uint64) bool {
	checkValue(v)
	var preds [SkipMaxLevel]uint64
	curr := skipSearch(tx, head, v, &preds)
	if tx.Load(curr+skipVal) != v {
		return false
	}
	level := int(tx.Load(curr + skipLevel))
	for i := 0; i < level; i++ {
		p := preds[i]
		if tx.Load(p+skipFwd+uint64(i)) == curr {
			tx.Store(p+skipFwd+uint64(i), tx.Load(curr+skipFwd+uint64(i)))
		}
	}
	tx.Free(curr, skipFwd+level)
	return true
}

// SkipSize counts the elements.
func SkipSize[T txn.Tx](tx T, head uint64) int {
	n := 0
	curr := tx.Load(head + skipFwd)
	for tx.Load(curr+skipVal) != MaxValue {
		n++
		curr = tx.Load(curr + skipFwd)
	}
	return n
}

// SkipList binds a head address plus a level generator into Set.
type SkipList[T txn.Tx] struct {
	Head uint64
	Rng  *rng.Rand
}

// Contains implements Set.
func (s SkipList[T]) Contains(tx T, v uint64) bool { return SkipContains(tx, s.Head, v) }

// Insert implements Set.
func (s SkipList[T]) Insert(tx T, v uint64) bool { return SkipInsert(tx, s.Head, v, s.Rng) }

// Remove implements Set.
func (s SkipList[T]) Remove(tx T, v uint64) bool { return SkipRemove(tx, s.Head, v) }

// Size implements Set.
func (s SkipList[T]) Size(tx T) int { return SkipSize(tx, s.Head) }
