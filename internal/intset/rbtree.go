package intset

import "tinystm/internal/txn"

// Transactional red-black tree (the paper's primary micro-benchmark,
// taken from the STAMP distribution). Keys map to values so the tree
// doubles as the ordered map the Vacation benchmark needs.
//
// Node layout (6 words):
//
//	word 0: key
//	word 1: value
//	word 2: left child address (0 = nil)
//	word 3: right child address
//	word 4: parent address (0 = root's parent)
//	word 5: color (0 = black, 1 = red)
//
// A tree handle is the address of a single root word. No shared nil
// sentinel is used: a sentinel would be written by every delete fix-up,
// creating artificial conflicts between operations on disjoint subtrees —
// exactly what the paper says red-black trees avoid ("transactions
// typically access different subtrees").

const (
	nodeKey    = 0
	nodeVal    = 1
	nodeLeft   = 2
	nodeRight  = 3
	nodeParent = 4
	nodeColor  = 5
	nodeWords  = 6

	colorBlack = 0
	colorRed   = 1
)

// NewTree allocates an empty tree inside tx and returns its handle.
func NewTree[T txn.Tx](tx T) uint64 {
	root := tx.Alloc(1)
	tx.Store(root, 0)
	return root
}

// TreeLookup returns the value stored under key.
func TreeLookup[T txn.Tx](tx T, t, key uint64) (uint64, bool) {
	n := tx.Load(t)
	for n != 0 {
		k := tx.Load(n + nodeKey)
		switch {
		case key == k:
			return tx.Load(n + nodeVal), true
		case key < k:
			n = tx.Load(n + nodeLeft)
		default:
			n = tx.Load(n + nodeRight)
		}
	}
	return 0, false
}

// TreeContains reports whether key is present.
func TreeContains[T txn.Tx](tx T, t, key uint64) bool {
	_, ok := TreeLookup(tx, t, key)
	return ok
}

// TreeInsert adds key→val, reporting whether the tree changed (an
// existing key keeps its old value, as the STAMP harness expects).
func TreeInsert[T txn.Tx](tx T, t, key, val uint64) bool {
	var parent uint64
	n := tx.Load(t)
	for n != 0 {
		k := tx.Load(n + nodeKey)
		if key == k {
			return false
		}
		parent = n
		if key < k {
			n = tx.Load(n + nodeLeft)
		} else {
			n = tx.Load(n + nodeRight)
		}
	}
	z := tx.Alloc(nodeWords)
	tx.Store(z+nodeKey, key)
	tx.Store(z+nodeVal, val)
	tx.Store(z+nodeLeft, 0)
	tx.Store(z+nodeRight, 0)
	tx.Store(z+nodeParent, parent)
	tx.Store(z+nodeColor, colorRed)
	if parent == 0 {
		tx.Store(t, z)
	} else if key < tx.Load(parent+nodeKey) {
		tx.Store(parent+nodeLeft, z)
	} else {
		tx.Store(parent+nodeRight, z)
	}
	insertFixup(tx, t, z)
	return true
}

// TreeSet stores key→val, inserting or overwriting. Reports whether a new
// key was inserted.
func TreeSet[T txn.Tx](tx T, t, key, val uint64) bool {
	n := tx.Load(t)
	for n != 0 {
		k := tx.Load(n + nodeKey)
		if key == k {
			tx.Store(n+nodeVal, val)
			return false
		}
		if key < k {
			n = tx.Load(n + nodeLeft)
		} else {
			n = tx.Load(n + nodeRight)
		}
	}
	return TreeInsert(tx, t, key, val)
}

func colorOf[T txn.Tx](tx T, n uint64) uint64 {
	if n == 0 {
		return colorBlack // nil is black
	}
	return tx.Load(n + nodeColor)
}

func leftRotate[T txn.Tx](tx T, t, x uint64) {
	y := tx.Load(x + nodeRight)
	yl := tx.Load(y + nodeLeft)
	tx.Store(x+nodeRight, yl)
	if yl != 0 {
		tx.Store(yl+nodeParent, x)
	}
	p := tx.Load(x + nodeParent)
	tx.Store(y+nodeParent, p)
	if p == 0 {
		tx.Store(t, y)
	} else if tx.Load(p+nodeLeft) == x {
		tx.Store(p+nodeLeft, y)
	} else {
		tx.Store(p+nodeRight, y)
	}
	tx.Store(y+nodeLeft, x)
	tx.Store(x+nodeParent, y)
}

func rightRotate[T txn.Tx](tx T, t, x uint64) {
	y := tx.Load(x + nodeLeft)
	yr := tx.Load(y + nodeRight)
	tx.Store(x+nodeLeft, yr)
	if yr != 0 {
		tx.Store(yr+nodeParent, x)
	}
	p := tx.Load(x + nodeParent)
	tx.Store(y+nodeParent, p)
	if p == 0 {
		tx.Store(t, y)
	} else if tx.Load(p+nodeLeft) == x {
		tx.Store(p+nodeLeft, y)
	} else {
		tx.Store(p+nodeRight, y)
	}
	tx.Store(y+nodeRight, x)
	tx.Store(x+nodeParent, y)
}

func insertFixup[T txn.Tx](tx T, t, z uint64) {
	for {
		p := tx.Load(z + nodeParent)
		if p == 0 || colorOf(tx, p) == colorBlack {
			break
		}
		g := tx.Load(p + nodeParent) // non-nil: a red parent is not root
		if p == tx.Load(g+nodeLeft) {
			u := tx.Load(g + nodeRight)
			if colorOf(tx, u) == colorRed {
				tx.Store(p+nodeColor, colorBlack)
				tx.Store(u+nodeColor, colorBlack)
				tx.Store(g+nodeColor, colorRed)
				z = g
				continue
			}
			if z == tx.Load(p+nodeRight) {
				z = p
				leftRotate(tx, t, z)
				p = tx.Load(z + nodeParent)
				g = tx.Load(p + nodeParent)
			}
			tx.Store(p+nodeColor, colorBlack)
			tx.Store(g+nodeColor, colorRed)
			rightRotate(tx, t, g)
		} else {
			u := tx.Load(g + nodeLeft)
			if colorOf(tx, u) == colorRed {
				tx.Store(p+nodeColor, colorBlack)
				tx.Store(u+nodeColor, colorBlack)
				tx.Store(g+nodeColor, colorRed)
				z = g
				continue
			}
			if z == tx.Load(p+nodeLeft) {
				z = p
				rightRotate(tx, t, z)
				p = tx.Load(z + nodeParent)
				g = tx.Load(p + nodeParent)
			}
			tx.Store(p+nodeColor, colorBlack)
			tx.Store(g+nodeColor, colorRed)
			leftRotate(tx, t, g)
		}
	}
	root := tx.Load(t)
	tx.Store(root+nodeColor, colorBlack)
}

// transplant replaces u by v in u's parent (v may be nil).
func transplant[T txn.Tx](tx T, t, u, v uint64) {
	p := tx.Load(u + nodeParent)
	if p == 0 {
		tx.Store(t, v)
	} else if tx.Load(p+nodeLeft) == u {
		tx.Store(p+nodeLeft, v)
	} else {
		tx.Store(p+nodeRight, v)
	}
	if v != 0 {
		tx.Store(v+nodeParent, p)
	}
}

// TreeRemove deletes key, reporting whether the tree changed.
func TreeRemove[T txn.Tx](tx T, t, key uint64) bool {
	z := tx.Load(t)
	for z != 0 {
		k := tx.Load(z + nodeKey)
		if key == k {
			break
		}
		if key < k {
			z = tx.Load(z + nodeLeft)
		} else {
			z = tx.Load(z + nodeRight)
		}
	}
	if z == 0 {
		return false
	}

	// y is the node physically removed: z itself when it has at most one
	// child, otherwise z's in-order successor, whose key/value are copied
	// into z first (no external pointers into the tree exist, so
	// relocation by copy is safe and is what STAMP's rbtree does too).
	y := z
	if tx.Load(z+nodeLeft) != 0 && tx.Load(z+nodeRight) != 0 {
		y = tx.Load(z + nodeRight)
		for l := tx.Load(y + nodeLeft); l != 0; l = tx.Load(y + nodeLeft) {
			y = l
		}
		tx.Store(z+nodeKey, tx.Load(y+nodeKey))
		tx.Store(z+nodeVal, tx.Load(y+nodeVal))
	}

	// y has at most one child x.
	x := tx.Load(y + nodeLeft)
	if x == 0 {
		x = tx.Load(y + nodeRight)
	}
	xParent := tx.Load(y + nodeParent)
	yColor := tx.Load(y + nodeColor)
	transplant(tx, t, y, x)
	if yColor == colorBlack {
		deleteFixup(tx, t, x, xParent)
	}
	tx.Free(y, nodeWords)
	return true
}

// deleteFixup restores the red-black invariants after removing a black
// node; x (possibly nil) sits at parent, carrying the extra blackness.
func deleteFixup[T txn.Tx](tx T, t, x, parent uint64) {
	for x != tx.Load(t) && colorOf(tx, x) == colorBlack {
		if x == tx.Load(parent+nodeLeft) {
			w := tx.Load(parent + nodeRight) // non-nil by black-height
			if colorOf(tx, w) == colorRed {
				tx.Store(w+nodeColor, colorBlack)
				tx.Store(parent+nodeColor, colorRed)
				leftRotate(tx, t, parent)
				w = tx.Load(parent + nodeRight)
			}
			wl, wr := tx.Load(w+nodeLeft), tx.Load(w+nodeRight)
			if colorOf(tx, wl) == colorBlack && colorOf(tx, wr) == colorBlack {
				tx.Store(w+nodeColor, colorRed)
				x = parent
				parent = tx.Load(x + nodeParent)
				continue
			}
			if colorOf(tx, wr) == colorBlack {
				if wl != 0 {
					tx.Store(wl+nodeColor, colorBlack)
				}
				tx.Store(w+nodeColor, colorRed)
				rightRotate(tx, t, w)
				w = tx.Load(parent + nodeRight)
				wr = tx.Load(w + nodeRight)
			}
			tx.Store(w+nodeColor, tx.Load(parent+nodeColor))
			tx.Store(parent+nodeColor, colorBlack)
			if wr != 0 {
				tx.Store(wr+nodeColor, colorBlack)
			}
			leftRotate(tx, t, parent)
			break
		}
		// Mirror image.
		w := tx.Load(parent + nodeLeft)
		if colorOf(tx, w) == colorRed {
			tx.Store(w+nodeColor, colorBlack)
			tx.Store(parent+nodeColor, colorRed)
			rightRotate(tx, t, parent)
			w = tx.Load(parent + nodeLeft)
		}
		wl, wr := tx.Load(w+nodeLeft), tx.Load(w+nodeRight)
		if colorOf(tx, wl) == colorBlack && colorOf(tx, wr) == colorBlack {
			tx.Store(w+nodeColor, colorRed)
			x = parent
			parent = tx.Load(x + nodeParent)
			continue
		}
		if colorOf(tx, wl) == colorBlack {
			if wr != 0 {
				tx.Store(wr+nodeColor, colorBlack)
			}
			tx.Store(w+nodeColor, colorRed)
			leftRotate(tx, t, w)
			w = tx.Load(parent + nodeLeft)
			wl = tx.Load(w + nodeLeft)
		}
		tx.Store(w+nodeColor, tx.Load(parent+nodeColor))
		tx.Store(parent+nodeColor, colorBlack)
		if wl != 0 {
			tx.Store(wl+nodeColor, colorBlack)
		}
		rightRotate(tx, t, parent)
		break
	}
	if x != 0 {
		tx.Store(x+nodeColor, colorBlack)
	}
}

// TreeSize counts the keys.
func TreeSize[T txn.Tx](tx T, t uint64) int {
	return subtreeSize(tx, tx.Load(t))
}

func subtreeSize[T txn.Tx](tx T, n uint64) int {
	if n == 0 {
		return 0
	}
	return 1 + subtreeSize(tx, tx.Load(n+nodeLeft)) + subtreeSize(tx, tx.Load(n+nodeRight))
}

// TreeSnapshot returns all keys in order (test helper).
func TreeSnapshot[T txn.Tx](tx T, t uint64) []uint64 {
	var out []uint64
	var walk func(n uint64)
	walk = func(n uint64) {
		if n == 0 {
			return
		}
		walk(tx.Load(n + nodeLeft))
		out = append(out, tx.Load(n+nodeKey))
		walk(tx.Load(n + nodeRight))
	}
	walk(tx.Load(t))
	return out
}

// Tree binds a handle into the Set interface (values default to the key).
type Tree[T txn.Tx] struct{ Root uint64 }

// Contains implements Set.
func (r Tree[T]) Contains(tx T, v uint64) bool { return TreeContains(tx, r.Root, v) }

// Insert implements Set.
func (r Tree[T]) Insert(tx T, v uint64) bool { return TreeInsert(tx, r.Root, v, v) }

// Remove implements Set.
func (r Tree[T]) Remove(tx T, v uint64) bool { return TreeRemove(tx, r.Root, v) }

// Size implements Set.
func (r Tree[T]) Size(tx T) int { return TreeSize(tx, r.Root) }
